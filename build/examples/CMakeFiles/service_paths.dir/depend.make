# Empty dependencies file for service_paths.
# This may be replaced when dependencies are built.
