file(REMOVE_RECURSE
  "CMakeFiles/service_paths.dir/service_paths.cpp.o"
  "CMakeFiles/service_paths.dir/service_paths.cpp.o.d"
  "service_paths"
  "service_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/service_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
