file(REMOVE_RECURSE
  "CMakeFiles/nepal_shell.dir/nepal_shell.cpp.o"
  "CMakeFiles/nepal_shell.dir/nepal_shell.cpp.o.d"
  "nepal_shell"
  "nepal_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
