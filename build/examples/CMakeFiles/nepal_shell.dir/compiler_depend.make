# Empty compiler generated dependencies file for nepal_shell.
# This may be replaced when dependencies are built.
