file(REMOVE_RECURSE
  "libnepal_netmodel.a"
)
