file(REMOVE_RECURSE
  "CMakeFiles/nepal_netmodel.dir/feed.cc.o"
  "CMakeFiles/nepal_netmodel.dir/feed.cc.o.d"
  "CMakeFiles/nepal_netmodel.dir/legacy.cc.o"
  "CMakeFiles/nepal_netmodel.dir/legacy.cc.o.d"
  "CMakeFiles/nepal_netmodel.dir/virtualized.cc.o"
  "CMakeFiles/nepal_netmodel.dir/virtualized.cc.o.d"
  "libnepal_netmodel.a"
  "libnepal_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
