
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netmodel/feed.cc" "src/netmodel/CMakeFiles/nepal_netmodel.dir/feed.cc.o" "gcc" "src/netmodel/CMakeFiles/nepal_netmodel.dir/feed.cc.o.d"
  "/root/repo/src/netmodel/legacy.cc" "src/netmodel/CMakeFiles/nepal_netmodel.dir/legacy.cc.o" "gcc" "src/netmodel/CMakeFiles/nepal_netmodel.dir/legacy.cc.o.d"
  "/root/repo/src/netmodel/virtualized.cc" "src/netmodel/CMakeFiles/nepal_netmodel.dir/virtualized.cc.o" "gcc" "src/netmodel/CMakeFiles/nepal_netmodel.dir/virtualized.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/nepal_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/nepal_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nepal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
