# Empty dependencies file for nepal_netmodel.
# This may be replaced when dependencies are built.
