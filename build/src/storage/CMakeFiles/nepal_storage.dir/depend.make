# Empty dependencies file for nepal_storage.
# This may be replaced when dependencies are built.
