file(REMOVE_RECURSE
  "CMakeFiles/nepal_storage.dir/backend.cc.o"
  "CMakeFiles/nepal_storage.dir/backend.cc.o.d"
  "CMakeFiles/nepal_storage.dir/graphdb.cc.o"
  "CMakeFiles/nepal_storage.dir/graphdb.cc.o.d"
  "CMakeFiles/nepal_storage.dir/pathset.cc.o"
  "CMakeFiles/nepal_storage.dir/pathset.cc.o.d"
  "CMakeFiles/nepal_storage.dir/traverser_executor.cc.o"
  "CMakeFiles/nepal_storage.dir/traverser_executor.cc.o.d"
  "libnepal_storage.a"
  "libnepal_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
