file(REMOVE_RECURSE
  "libnepal_storage.a"
)
