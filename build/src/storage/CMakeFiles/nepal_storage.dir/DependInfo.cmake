
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/backend.cc" "src/storage/CMakeFiles/nepal_storage.dir/backend.cc.o" "gcc" "src/storage/CMakeFiles/nepal_storage.dir/backend.cc.o.d"
  "/root/repo/src/storage/graphdb.cc" "src/storage/CMakeFiles/nepal_storage.dir/graphdb.cc.o" "gcc" "src/storage/CMakeFiles/nepal_storage.dir/graphdb.cc.o.d"
  "/root/repo/src/storage/pathset.cc" "src/storage/CMakeFiles/nepal_storage.dir/pathset.cc.o" "gcc" "src/storage/CMakeFiles/nepal_storage.dir/pathset.cc.o.d"
  "/root/repo/src/storage/traverser_executor.cc" "src/storage/CMakeFiles/nepal_storage.dir/traverser_executor.cc.o" "gcc" "src/storage/CMakeFiles/nepal_storage.dir/traverser_executor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/schema/CMakeFiles/nepal_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nepal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
