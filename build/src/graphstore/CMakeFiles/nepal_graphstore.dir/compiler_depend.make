# Empty compiler generated dependencies file for nepal_graphstore.
# This may be replaced when dependencies are built.
