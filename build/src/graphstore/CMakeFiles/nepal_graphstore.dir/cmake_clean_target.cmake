file(REMOVE_RECURSE
  "libnepal_graphstore.a"
)
