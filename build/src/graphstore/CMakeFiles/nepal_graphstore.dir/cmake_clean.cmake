file(REMOVE_RECURSE
  "CMakeFiles/nepal_graphstore.dir/graph_store.cc.o"
  "CMakeFiles/nepal_graphstore.dir/graph_store.cc.o.d"
  "libnepal_graphstore.a"
  "libnepal_graphstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_graphstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
