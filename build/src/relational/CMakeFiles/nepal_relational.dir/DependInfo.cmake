
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/relational_store.cc" "src/relational/CMakeFiles/nepal_relational.dir/relational_store.cc.o" "gcc" "src/relational/CMakeFiles/nepal_relational.dir/relational_store.cc.o.d"
  "/root/repo/src/relational/sql_executor.cc" "src/relational/CMakeFiles/nepal_relational.dir/sql_executor.cc.o" "gcc" "src/relational/CMakeFiles/nepal_relational.dir/sql_executor.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/relational/CMakeFiles/nepal_relational.dir/table.cc.o" "gcc" "src/relational/CMakeFiles/nepal_relational.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/nepal_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/nepal_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nepal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
