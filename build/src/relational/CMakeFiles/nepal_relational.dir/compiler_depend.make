# Empty compiler generated dependencies file for nepal_relational.
# This may be replaced when dependencies are built.
