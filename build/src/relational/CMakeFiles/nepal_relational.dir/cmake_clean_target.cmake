file(REMOVE_RECURSE
  "libnepal_relational.a"
)
