file(REMOVE_RECURSE
  "CMakeFiles/nepal_relational.dir/relational_store.cc.o"
  "CMakeFiles/nepal_relational.dir/relational_store.cc.o.d"
  "CMakeFiles/nepal_relational.dir/sql_executor.cc.o"
  "CMakeFiles/nepal_relational.dir/sql_executor.cc.o.d"
  "CMakeFiles/nepal_relational.dir/table.cc.o"
  "CMakeFiles/nepal_relational.dir/table.cc.o.d"
  "libnepal_relational.a"
  "libnepal_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
