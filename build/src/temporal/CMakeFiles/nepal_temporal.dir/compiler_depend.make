# Empty compiler generated dependencies file for nepal_temporal.
# This may be replaced when dependencies are built.
