file(REMOVE_RECURSE
  "libnepal_temporal.a"
)
