file(REMOVE_RECURSE
  "CMakeFiles/nepal_temporal.dir/evolution.cc.o"
  "CMakeFiles/nepal_temporal.dir/evolution.cc.o.d"
  "CMakeFiles/nepal_temporal.dir/snapshot.cc.o"
  "CMakeFiles/nepal_temporal.dir/snapshot.cc.o.d"
  "libnepal_temporal.a"
  "libnepal_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
