file(REMOVE_RECURSE
  "libnepal_core.a"
)
