# Empty dependencies file for nepal_core.
# This may be replaced when dependencies are built.
