file(REMOVE_RECURSE
  "CMakeFiles/nepal_core.dir/engine.cc.o"
  "CMakeFiles/nepal_core.dir/engine.cc.o.d"
  "CMakeFiles/nepal_core.dir/executor.cc.o"
  "CMakeFiles/nepal_core.dir/executor.cc.o.d"
  "CMakeFiles/nepal_core.dir/parser.cc.o"
  "CMakeFiles/nepal_core.dir/parser.cc.o.d"
  "CMakeFiles/nepal_core.dir/plan.cc.o"
  "CMakeFiles/nepal_core.dir/plan.cc.o.d"
  "CMakeFiles/nepal_core.dir/rpe.cc.o"
  "CMakeFiles/nepal_core.dir/rpe.cc.o.d"
  "libnepal_core.a"
  "libnepal_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
