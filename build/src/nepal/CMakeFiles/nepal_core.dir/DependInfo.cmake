
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nepal/engine.cc" "src/nepal/CMakeFiles/nepal_core.dir/engine.cc.o" "gcc" "src/nepal/CMakeFiles/nepal_core.dir/engine.cc.o.d"
  "/root/repo/src/nepal/executor.cc" "src/nepal/CMakeFiles/nepal_core.dir/executor.cc.o" "gcc" "src/nepal/CMakeFiles/nepal_core.dir/executor.cc.o.d"
  "/root/repo/src/nepal/parser.cc" "src/nepal/CMakeFiles/nepal_core.dir/parser.cc.o" "gcc" "src/nepal/CMakeFiles/nepal_core.dir/parser.cc.o.d"
  "/root/repo/src/nepal/plan.cc" "src/nepal/CMakeFiles/nepal_core.dir/plan.cc.o" "gcc" "src/nepal/CMakeFiles/nepal_core.dir/plan.cc.o.d"
  "/root/repo/src/nepal/rpe.cc" "src/nepal/CMakeFiles/nepal_core.dir/rpe.cc.o" "gcc" "src/nepal/CMakeFiles/nepal_core.dir/rpe.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/nepal_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/temporal/CMakeFiles/nepal_temporal.dir/DependInfo.cmake"
  "/root/repo/build/src/schema/CMakeFiles/nepal_schema.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/nepal_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
