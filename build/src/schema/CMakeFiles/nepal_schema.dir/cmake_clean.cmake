file(REMOVE_RECURSE
  "CMakeFiles/nepal_schema.dir/dsl_parser.cc.o"
  "CMakeFiles/nepal_schema.dir/dsl_parser.cc.o.d"
  "CMakeFiles/nepal_schema.dir/record.cc.o"
  "CMakeFiles/nepal_schema.dir/record.cc.o.d"
  "CMakeFiles/nepal_schema.dir/schema.cc.o"
  "CMakeFiles/nepal_schema.dir/schema.cc.o.d"
  "libnepal_schema.a"
  "libnepal_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
