# Empty compiler generated dependencies file for nepal_schema.
# This may be replaced when dependencies are built.
