file(REMOVE_RECURSE
  "libnepal_schema.a"
)
