file(REMOVE_RECURSE
  "libnepal_common.a"
)
