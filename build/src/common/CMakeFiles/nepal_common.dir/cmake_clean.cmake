file(REMOVE_RECURSE
  "CMakeFiles/nepal_common.dir/status.cc.o"
  "CMakeFiles/nepal_common.dir/status.cc.o.d"
  "CMakeFiles/nepal_common.dir/time.cc.o"
  "CMakeFiles/nepal_common.dir/time.cc.o.d"
  "CMakeFiles/nepal_common.dir/value.cc.o"
  "CMakeFiles/nepal_common.dir/value.cc.o.d"
  "libnepal_common.a"
  "libnepal_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nepal_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
