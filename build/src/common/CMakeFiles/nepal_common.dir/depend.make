# Empty dependencies file for nepal_common.
# This may be replaced when dependencies are built.
