# Empty dependencies file for structured_data_test.
# This may be replaced when dependencies are built.
