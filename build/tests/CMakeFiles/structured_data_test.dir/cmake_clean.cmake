file(REMOVE_RECURSE
  "CMakeFiles/structured_data_test.dir/structured_data_test.cc.o"
  "CMakeFiles/structured_data_test.dir/structured_data_test.cc.o.d"
  "structured_data_test"
  "structured_data_test.pdb"
  "structured_data_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structured_data_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
