# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/engine_basic_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/schema_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/plan_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/netmodel_test[1]_include.cmake")
include("/root/repo/build/tests/federation_test[1]_include.cmake")
include("/root/repo/build/tests/engine_advanced_test[1]_include.cmake")
include("/root/repo/build/tests/structured_data_test[1]_include.cmake")
include("/root/repo/build/tests/feed_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/graphstore_test[1]_include.cmake")
