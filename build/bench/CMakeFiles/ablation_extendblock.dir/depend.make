# Empty dependencies file for ablation_extendblock.
# This may be replaced when dependencies are built.
