file(REMOVE_RECURSE
  "CMakeFiles/ablation_extendblock.dir/ablation_extendblock.cc.o"
  "CMakeFiles/ablation_extendblock.dir/ablation_extendblock.cc.o.d"
  "ablation_extendblock"
  "ablation_extendblock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_extendblock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
