# Empty dependencies file for ablation_anchors.
# This may be replaced when dependencies are built.
