file(REMOVE_RECURSE
  "CMakeFiles/ablation_anchors.dir/ablation_anchors.cc.o"
  "CMakeFiles/ablation_anchors.dir/ablation_anchors.cc.o.d"
  "ablation_anchors"
  "ablation_anchors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_anchors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
