# Empty dependencies file for table2_legacy.
# This may be replaced when dependencies are built.
