file(REMOVE_RECURSE
  "CMakeFiles/table2_legacy.dir/table2_legacy.cc.o"
  "CMakeFiles/table2_legacy.dir/table2_legacy.cc.o.d"
  "table2_legacy"
  "table2_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
