file(REMOVE_RECURSE
  "CMakeFiles/table4_storage_overhead.dir/table4_storage_overhead.cc.o"
  "CMakeFiles/table4_storage_overhead.dir/table4_storage_overhead.cc.o.d"
  "table4_storage_overhead"
  "table4_storage_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_storage_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
