# Empty dependencies file for table4_storage_overhead.
# This may be replaced when dependencies are built.
