# Empty dependencies file for history_depth_sweep.
# This may be replaced when dependencies are built.
