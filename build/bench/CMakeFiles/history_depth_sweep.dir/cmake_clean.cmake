file(REMOVE_RECURSE
  "CMakeFiles/history_depth_sweep.dir/history_depth_sweep.cc.o"
  "CMakeFiles/history_depth_sweep.dir/history_depth_sweep.cc.o.d"
  "history_depth_sweep"
  "history_depth_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_depth_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
