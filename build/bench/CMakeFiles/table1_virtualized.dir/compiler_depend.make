# Empty compiler generated dependencies file for table1_virtualized.
# This may be replaced when dependencies are built.
