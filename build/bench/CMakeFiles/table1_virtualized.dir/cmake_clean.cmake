file(REMOVE_RECURSE
  "CMakeFiles/table1_virtualized.dir/table1_virtualized.cc.o"
  "CMakeFiles/table1_virtualized.dir/table1_virtualized.cc.o.d"
  "table1_virtualized"
  "table1_virtualized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_virtualized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
