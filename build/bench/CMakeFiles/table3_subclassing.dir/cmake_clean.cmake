file(REMOVE_RECURSE
  "CMakeFiles/table3_subclassing.dir/table3_subclassing.cc.o"
  "CMakeFiles/table3_subclassing.dir/table3_subclassing.cc.o.d"
  "table3_subclassing"
  "table3_subclassing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_subclassing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
