# Empty compiler generated dependencies file for table3_subclassing.
# This may be replaced when dependencies are built.
