file(REMOVE_RECURSE
  "CMakeFiles/ingest_throughput.dir/ingest_throughput.cc.o"
  "CMakeFiles/ingest_throughput.dir/ingest_throughput.cc.o.d"
  "ingest_throughput"
  "ingest_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingest_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
