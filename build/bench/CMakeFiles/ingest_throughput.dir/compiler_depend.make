# Empty compiler generated dependencies file for ingest_throughput.
# This may be replaced when dependencies are built.
