// Observability primitives: the sharded counter/gauge/histogram metrics,
// the process-wide registry (text + JSON exposition), and the additive
// QueryStats model EXPLAIN ANALYZE builds on.

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/query_stats.h"

namespace nepal::obs {
namespace {

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAdds);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(HistogramTest, BucketAssignmentInclusiveUpperBounds) {
  Histogram h({10, 20, 30});
  for (uint64_t v : {5u, 10u, 15u, 30u, 31u}) h.Observe(v);
  Histogram::Snapshot snap = h.Snap();
  ASSERT_EQ(snap.counts.size(), 4u);  // three bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);      // 5, 10 (bounds are inclusive)
  EXPECT_EQ(snap.counts[1], 1u);      // 15
  EXPECT_EQ(snap.counts[2], 1u);      // 30
  EXPECT_EQ(snap.counts[3], 1u);      // 31 overflows
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 91u);
  // Quantiles interpolate inside a bucket but never leave its bounds.
  EXPECT_LE(snap.Quantile(0.5), 20u);
  EXPECT_GE(snap.Quantile(0.99), 30u);
}

TEST(HistogramTest, ConcurrentObserves) {
  Histogram h(DefaultLatencyBucketsNs());
  constexpr int kThreads = 4;
  constexpr int kObserves = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObserves; ++i) {
        h.Observe(static_cast<uint64_t>(i) * 1000);
      }
    });
  }
  for (auto& t : threads) t.join();
  Histogram::Snapshot snap = h.Snap();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kObserves);
  uint64_t bucket_total = 0;
  for (uint64_t c : snap.counts) bucket_total += c;
  EXPECT_EQ(bucket_total, snap.count);
}

TEST(MetricsRegistryTest, StablePointersAndRendering) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetValuesForTest();
  Counter* c = reg.GetCounter("test.obs.hits");
  EXPECT_EQ(c, reg.GetCounter("test.obs.hits"));
  c->Add(3);
  Gauge* g = reg.GetGauge("test.obs.depth");
  g->Set(5);
  Histogram* h = reg.GetHistogram("test.obs.lat", {100, 200});
  h->Observe(150);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("counter test.obs.hits 3"), std::string::npos) << text;
  EXPECT_NE(text.find("gauge test.obs.depth 5"), std::string::npos);
  EXPECT_NE(text.find("histogram test.obs.lat count=1"), std::string::npos);

  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"test.obs.hits\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\":\"+inf\""), std::string::npos);

  reg.ResetValuesForTest();
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
}

TEST(MetricsRegistryTest, ViewMetricsRenderUnderCanonicalNames) {
  // The materialized-view subsystem (src/views) publishes these exact
  // names; the shell's \metrics and the JSON exposition surface them.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetValuesForTest();
  reg.GetGauge("nepal.views.registered")->Set(2);
  reg.GetGauge("nepal.views.staleness_epochs")->Set(1);
  reg.GetCounter("nepal.views.repairs")->Add(5);
  reg.GetCounter("nepal.views.rebuilds")->Add(1);
  reg.GetCounter("nepal.views.skipped_records")->Add(7);
  reg.GetCounter("nepal.views.served")->Add(3);
  reg.GetHistogram("nepal.views.repair_ns", DefaultLatencyBucketsNs())
      ->Observe(1000);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("gauge nepal.views.registered 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gauge nepal.views.staleness_epochs 1"),
            std::string::npos);
  EXPECT_NE(text.find("counter nepal.views.repairs 5"), std::string::npos);
  EXPECT_NE(text.find("counter nepal.views.rebuilds 1"), std::string::npos);
  EXPECT_NE(text.find("counter nepal.views.skipped_records 7"),
            std::string::npos);
  EXPECT_NE(text.find("counter nepal.views.served 3"), std::string::npos);
  EXPECT_NE(text.find("histogram nepal.views.repair_ns count=1"),
            std::string::npos);

  std::string json = reg.RenderJson();
  EXPECT_NE(json.find("\"nepal.views.repairs\":5"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"nepal.views.registered\":2"), std::string::npos);
  reg.ResetValuesForTest();
}

TEST(MetricsRegistryTest, ReplicationFleetMetricsRenderUnderCanonicalNames) {
  // The replication fleet (src/replication) publishes listener-wide,
  // per-follower, semi-sync, and read-router series under these exact
  // names; the shell's \replication table and CI's fleet drill read them.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.ResetValuesForTest();
  reg.GetCounter("nepal.replication.listener.sessions")->Add(3);
  reg.GetCounter("nepal.replication.listener.resumes")->Add(1);
  reg.GetCounter("nepal.replication.listener.rebootstraps")->Add(2);
  reg.GetCounter("nepal.replication.follower.f1.frames_shipped")->Add(40);
  reg.GetCounter("nepal.replication.follower.f1.bytes_shipped")->Add(4096);
  reg.GetCounter("nepal.replication.follower.f1.acks")->Add(40);
  reg.GetGauge("nepal.replication.follower.f1.connected")->Set(1);
  reg.GetGauge("nepal.replication.follower.f1.acked_records")->Set(120);
  reg.GetGauge("nepal.replication.follower.f1.lag_records")->Set(0);
  reg.GetGauge("nepal.replication.follower.f1.staleness_ms")->Set(7);
  reg.GetCounter("nepal.replication.semisync.acked_commits")->Add(5);
  reg.GetCounter("nepal.replication.semisync.timeouts")->Add(1);
  reg.GetGauge("nepal.replication.semisync.degraded")->Set(1);
  reg.GetCounter("nepal.router.primary_reads")->Add(6);
  reg.GetCounter("nepal.router.replica_reads")->Add(9);
  reg.GetCounter("nepal.router.fallbacks")->Add(2);

  std::string text = reg.RenderText();
  EXPECT_NE(text.find("counter nepal.replication.listener.sessions 3"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("counter nepal.replication.listener.resumes 1"),
            std::string::npos);
  EXPECT_NE(text.find("counter nepal.replication.listener.rebootstraps 2"),
            std::string::npos);
  EXPECT_NE(
      text.find("counter nepal.replication.follower.f1.frames_shipped 40"),
      std::string::npos);
  EXPECT_NE(text.find("counter nepal.replication.follower.f1.acks 40"),
            std::string::npos);
  EXPECT_NE(text.find("gauge nepal.replication.follower.f1.connected 1"),
            std::string::npos);
  EXPECT_NE(text.find("gauge nepal.replication.follower.f1.acked_records 120"),
            std::string::npos);
  EXPECT_NE(text.find("gauge nepal.replication.follower.f1.staleness_ms 7"),
            std::string::npos);
  EXPECT_NE(text.find("gauge nepal.replication.semisync.degraded 1"),
            std::string::npos);
  EXPECT_NE(text.find("counter nepal.router.replica_reads 9"),
            std::string::npos);

  std::string json = reg.RenderJson();
  EXPECT_NE(
      json.find("\"nepal.replication.follower.f1.frames_shipped\":40"),
      std::string::npos)
      << json;
  EXPECT_NE(json.find("\"nepal.replication.follower.f1.connected\":1"),
            std::string::npos);
  EXPECT_NE(json.find("\"nepal.router.fallbacks\":2"), std::string::npos);
  reg.ResetValuesForTest();
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(QueryStatsTest, RecordSumsAcrossThreads) {
  QueryStatsBuilder builder;
  QueryStatsGroup* group = builder.AddGroup("var P");
  int op = group->AddOp("Extend VM()");
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([group, op] {
      for (int i = 0; i < kRecords; ++i) {
        OpSample s;
        s.rows_in = 2;
        s.rows_out = 1;
        s.wall_ns = 10;
        s.invocations = 1;
        group->Record(op, s);
      }
    });
  }
  for (auto& t : threads) t.join();
  QueryStats stats = builder.Snapshot();
  ASSERT_EQ(stats.operators.size(), 1u);
  EXPECT_EQ(stats.operators[0].rows_in, 2u * kThreads * kRecords);
  EXPECT_EQ(stats.operators[0].rows_out, 1u * kThreads * kRecords);
  EXPECT_EQ(stats.operators[0].invocations, 1u * kThreads * kRecords);
}

TEST(QueryStatsTest, SnapshotKeepsCreationOrder) {
  QueryStatsBuilder builder;
  QueryStatsGroup* a = builder.AddGroup("var A");
  QueryStatsGroup* b = builder.AddGroup("var B");
  a->AddOp("Select X()");
  a->AddOp("Extend Y()");
  b->AddOp("Select Z()");
  QueryStats stats = builder.Snapshot();
  ASSERT_EQ(stats.operators.size(), 3u);
  EXPECT_EQ(stats.operators[0].group, "var A");
  EXPECT_EQ(stats.operators[0].op, "Select X()");
  EXPECT_EQ(stats.operators[1].op, "Extend Y()");
  EXPECT_EQ(stats.operators[2].group, "var B");
}

TEST(QueryStatsTest, MergeFromMatchesByLabelAndAppendsRest) {
  QueryStats lhs;
  lhs.wall_ns = 100;
  lhs.result_rows = 2;
  lhs.operators.push_back({"var P", "Select VM()", 0, 5, 0, 1, 50, 1});
  QueryStats rhs;
  rhs.wall_ns = 40;
  rhs.result_rows = 1;
  rhs.operators.push_back({"var P", "Select VM()", 0, 3, 0, 1, 20, 1});
  rhs.operators.push_back({"var P", "Extend Host()", 3, 3, 0, 1, 10, 1});
  lhs.MergeFrom(rhs);
  ASSERT_EQ(lhs.operators.size(), 2u);
  EXPECT_EQ(lhs.operators[0].rows_out, 8u);
  EXPECT_EQ(lhs.operators[0].wall_ns, 70u);
  EXPECT_EQ(lhs.operators[0].invocations, 2u);
  EXPECT_EQ(lhs.operators[1].op, "Extend Host()");
  EXPECT_EQ(lhs.wall_ns, 140u);
  EXPECT_EQ(lhs.result_rows, 3u);
}

TEST(QueryStatsTest, ToStringRendersOperatorsAndTotals) {
  QueryStats stats;
  stats.backend = "relational";
  stats.parallelism = 4;
  stats.result_rows = 7;
  stats.wall_ns = 1500000;
  stats.operators.push_back({"var P", "Select VM()", 0, 5, 0, 1, 900000, 1});
  std::string text = stats.ToString();
  EXPECT_NE(text.find("Select VM()"), std::string::npos) << text;
  EXPECT_NE(text.find("var P"), std::string::npos);
  EXPECT_NE(text.find("7 row(s)"), std::string::npos);
  EXPECT_NE(text.find("parallelism 4"), std::string::npos);
  EXPECT_NE(text.find("relational"), std::string::npos);
}

TEST(QueryStatsTest, OperatorJsonHasAllFields) {
  OperatorStats op{"var P", "Select VM()", 1, 2, 3, 4, 5, 6};
  std::string out;
  op.AppendJson(&out);
  EXPECT_NE(out.find("\"group\":\"var P\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"rows_in\":1"), std::string::npos);
  EXPECT_NE(out.find("\"rows_out\":2"), std::string::npos);
  EXPECT_NE(out.find("\"dedup_dropped\":3"), std::string::npos);
  EXPECT_NE(out.find("\"shards\":4"), std::string::npos);
  EXPECT_NE(out.find("\"wall_ns\":5"), std::string::npos);
  EXPECT_NE(out.find("\"invocations\":6"), std::string::npos);
}

}  // namespace
}  // namespace nepal::obs
