// Tests for the inventory feed loader/exporter.

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "netmodel/feed.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;

class FeedTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    schema_ = nepal::testing::Figure3Schema();
    db_ = std::make_unique<storage::GraphDb>(
        schema_, nepal::testing::MakeBackend(GetParam(), schema_));
    loader_ = std::make_unique<netmodel::FeedLoader>(db_.get());
  }

  schema::SchemaPtr schema_;
  std::unique_ptr<storage::GraphDb> db_;
  std::unique_ptr<netmodel::FeedLoader> loader_;
};

TEST_P(FeedTest, LoadsNodesEdgesAndChurn) {
  auto stats = loader_->Load(R"(
    # comment line
    at 2017-02-15 09:00:00
    node DNS vnf vnf_type='dns'   # trailing comment
    node VFC vfc
    node VMWare vm status='Green'
    node Host host-a serial='SN1'
    edge composed_of c vnf -> vfc
    edge hosted_on h vfc -> vm
    edge OnServer p vm -> host-a

    at 2017-02-15 10:00:00
    update vm status='Red'
    at 2017-02-15 11:00:00
    delete p
  )");
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->nodes, 4u);
  EXPECT_EQ(stats->edges, 3u);
  EXPECT_EQ(stats->updates, 1u);
  EXPECT_EQ(stats->deletes, 1u);

  nql::QueryEngine engine(db_.get());
  auto past = engine.Run(
      "AT '2017-02-15 09:30' Select source(P).status From PATHS P "
      "Where P MATCHES VM()->Host()");
  ASSERT_TRUE(past.ok()) << past.status();
  ASSERT_EQ(past->rows.size(), 1u);
  EXPECT_EQ(past->rows[0].values[0], Value("Green"));
  auto now = engine.Run("Retrieve P From PATHS P Where P MATCHES VM()->Host()");
  ASSERT_TRUE(now.ok());
  EXPECT_TRUE(now->rows.empty());  // placement deleted
}

TEST_P(FeedTest, LiteralKinds) {
  ASSERT_TRUE(schema_ != nullptr);
  auto stats = loader_->Load(
      "node Host h serial='SN9'\n"
      "node Host h2 serial='SN10'\n"
      "node Switch s\n"
      "edge Connects l h -> s bandwidth=25000\n");
  ASSERT_TRUE(stats.ok()) << stats.status();
  auto edge = db_->GetCurrent(loader_->Lookup("l"));
  ASSERT_TRUE(edge.ok());
  EXPECT_EQ(edge->fields[static_cast<size_t>(
                edge->cls->FieldIndex("bandwidth"))],
            Value(25000));
}

TEST_P(FeedTest, ErrorsCarryLineNumbersAndApplyPrefix) {
  auto stats = loader_->Load(
      "node Host a serial='S1'\n"
      "node Blimp b\n");  // unknown class on line 2
  ASSERT_FALSE(stats.ok());
  // The first directive applied; the loader reports the failing one.
  EXPECT_NE(loader_->Lookup("a"), kInvalidUid);
  EXPECT_EQ(loader_->Lookup("b"), kInvalidUid);
}

TEST_P(FeedTest, RejectsMalformedDirectives) {
  EXPECT_FALSE(loader_->Load("launch Host x\n").ok());
  EXPECT_FALSE(loader_->Load("node Host\n").ok());
  EXPECT_FALSE(loader_->Load("node Host x serial'S1'\n").ok());
  EXPECT_FALSE(loader_->Load("node Host x serial='unterminated\n").ok());
  EXPECT_FALSE(
      loader_->Load("node Host x serial='S'\nedge Connects e x -> ghost\n")
          .ok());
  EXPECT_FALSE(loader_->Load("at not-a-time\n").ok());
  EXPECT_FALSE(loader_->Load("update ghost status='x'\n").ok());
  EXPECT_FALSE(loader_->Load("delete ghost\n").ok());
}

TEST_P(FeedTest, DuplicateNamesRejected) {
  EXPECT_FALSE(loader_->Load("node Host x serial='A'\n"
                             "node Switch x\n")
                   .ok());
}

TEST_P(FeedTest, ExportRoundTrips) {
  ASSERT_TRUE(loader_
                  ->Load("node DNS vnf\n"
                         "node VFC vfc\n"
                         "node VMWare vm status='Green'\n"
                         "node Host host-a serial='SN1'\n"
                         "edge composed_of c vnf -> vfc\n"
                         "edge hosted_on h vfc -> vm\n"
                         "edge OnServer p vm -> host-a\n")
                  .ok());
  size_t skipped = 0;
  std::string feed = netmodel::ExportFeed(*db_, &skipped);
  EXPECT_EQ(skipped, 0u);

  // Reload into a fresh database; query results must agree.
  auto db2 = std::make_unique<storage::GraphDb>(
      schema_, nepal::testing::MakeBackend(GetParam(), schema_));
  netmodel::FeedLoader loader2(db2.get());
  auto stats = loader2.Load(feed);
  ASSERT_TRUE(stats.ok()) << stats.status() << "\nfeed:\n" << feed;
  EXPECT_EQ(stats->nodes, 4u);
  EXPECT_EQ(stats->edges, 3u);

  nql::QueryEngine e1(db_.get()), e2(db2.get());
  const char* query =
      "Select source(P).name, target(P).name From PATHS P "
      "Where P MATCHES VNF()->[Vertical()]{1,4}->Host()";
  auto r1 = e1.Run(query);
  auto r2 = e2.Run(query);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->rows.size(), r2->rows.size());
  EXPECT_EQ(r1->rows[0].values[0], r2->rows[0].values[0]);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, FeedTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
