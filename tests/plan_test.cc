// Unit tests for the query planner: anchor enumeration and costing,
// RPE splitting around anchors, program compilation and reversal.

#include <gtest/gtest.h>

#include "graphstore/graph_store.h"
#include "nepal/parser.h"
#include "nepal/plan.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace nepal::nql {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = schema::ParseSchemaDsl(R"(
      node A : Node { val: int; }
      node B : Node {}
      edge E : Edge {}
      edge F : E {}
      allow E (Node -> Node);
    )");
    ASSERT_TRUE(s.ok()) << s.status();
    schema_ = *s;
    db_ = std::make_unique<storage::GraphDb>(
        schema_, std::make_unique<graphstore::GraphStore>(schema_));
    // Population: 100 A nodes, 5 B nodes — the planner should prefer B
    // anchors.
    for (int i = 0; i < 100; ++i) {
      a_.push_back(*db_->AddNode("A", {{"name", Value("a" +
                                                       std::to_string(i))}}));
    }
    for (int i = 0; i < 5; ++i) {
      b_.push_back(*db_->AddNode("B", {{"name", Value("b" +
                                                       std::to_string(i))}}));
    }
    for (int i = 0; i + 1 < 100; ++i) {
      ASSERT_TRUE(db_->AddEdge("E", a_[i], a_[i + 1], {}).ok());
    }
  }

  RpeNode Resolved(const std::string& text) {
    auto rpe = ParseRpe(text);
    EXPECT_TRUE(rpe.ok()) << rpe.status();
    RpeNode node = *rpe;
    EXPECT_TRUE(ResolveRpe(*schema_, 32, &node).ok());
    return node;
  }

  Result<MatchPlan> Plan(const std::string& text) {
    return PlanMatch(Resolved(text), db_->backend(), PlanOptions{});
  }

  schema::SchemaPtr schema_;
  std::unique_ptr<storage::GraphDb> db_;
  std::vector<Uid> a_, b_;
};

TEST_F(PlanTest, PrefersSelectiveAnchor) {
  auto plan = Plan("A()->[E()]{1,3}->B()");
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->anchors.size(), 1u);
  EXPECT_EQ(plan->anchors[0].anchor.cls->name(), "B");
  // B is the last atom: the whole traversal runs backwards.
  EXPECT_TRUE(plan->anchors[0].suffix.empty());
  EXPECT_FALSE(plan->anchors[0].reversed_prefix.empty());
}

TEST_F(PlanTest, IdConstraintBeatsEverything) {
  auto plan = Plan("A(id=7)->[E()]{1,3}->B()");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->anchors[0].anchor.cls->name(), "A");
  EXPECT_DOUBLE_EQ(plan->anchors[0].anchor_cost, 1.0);
  EXPECT_TRUE(plan->anchors[0].reversed_prefix.empty());
}

TEST_F(PlanTest, MidAnchorSplitsBothWays) {
  auto plan = Plan("A()->B(id=3)->A()");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->anchors[0].anchor.cls->name(), "B");
  EXPECT_FALSE(plan->anchors[0].suffix.empty());
  EXPECT_FALSE(plan->anchors[0].reversed_prefix.empty());
}

TEST_F(PlanTest, AlternationProducesAnchorPerBranch) {
  // The paper's example: (VM(id=55)|Docker(id=66)) inside a path.
  auto plan = Plan("A()->[E()]{1,3}->(A(id=55)|B(id=66))->E()->A()");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->anchors.size(), 2u);
  EXPECT_EQ(plan->anchors[0].anchor.cls->name(), "A");
  EXPECT_EQ(plan->anchors[1].anchor.cls->name(), "B");
}

TEST_F(PlanTest, RepetitionAnchorsInFirstIteration) {
  auto plan = Plan("[B()]{2,4}");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->anchors[0].anchor.cls->name(), "B");
  // The suffix must cover the remaining {1,3} iterations.
  ASSERT_EQ(plan->anchors[0].suffix.size(), 1u);
  EXPECT_EQ(plan->anchors[0].suffix[0].kind, Step::Kind::kLoop);
  EXPECT_EQ(plan->anchors[0].suffix[0].min_rep, 1);
  EXPECT_EQ(plan->anchors[0].suffix[0].max_rep, 3);
}

TEST_F(PlanTest, RejectsAllOptionalRpe) {
  // The paper's malformed example: [VNF()]{0,4}->[Vertical()]{0,4}.
  auto plan = Plan("[A()]{0,4}->[E()]{0,4}");
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kPlanError);
}

TEST_F(PlanTest, OptionalBlockDoesNotAnchorButNeighborsDo) {
  auto plan = Plan("[E()]{0,4}->B()");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->anchors[0].anchor.cls->name(), "B");
}

TEST_F(PlanTest, AlternationWithUnanchorableBranchIsRejected) {
  auto plan = Plan("([E()]{0,2}|B())->A()->A(id=1)");
  // The Alt cannot anchor (one branch is all-optional), but the trailing
  // A(id=1) can.
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->anchors[0].anchor_cost, 1.0);
}

TEST_F(PlanTest, LengthLimitEnforced) {
  auto rpe = ParseRpe("[E()]{1,100}");
  ASSERT_TRUE(rpe.ok());
  RpeNode node = *rpe;
  Status st = ResolveRpe(*schema_, 32, &node);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kPlanError);
}

TEST_F(PlanTest, ProgramReversalIsInvolutive) {
  RpeNode rpe = Resolved("A()->[E()|F()]{1,3}->(B()|A()->E())");
  Program program = CompileProgram(rpe, PlanOptions{});
  Program twice = ReverseProgram(ReverseProgram(program));
  EXPECT_EQ(ProgramToString(program), ProgramToString(twice));
}

TEST_F(PlanTest, UnrolledCompilationWhenExtendBlockDisabled) {
  PlanOptions options;
  options.loop_strategy = LoopStrategy::kUnroll;
  RpeNode rpe = Resolved("[E()]{1,3}");
  Program program = CompileProgram(rpe, options);
  // body once + nested optionals; no Loop steps anywhere.
  std::function<void(const Program&)> check = [&](const Program& p) {
    for (const Step& step : p) {
      EXPECT_NE(step.kind, Step::Kind::kLoop);
      for (const Program& branch : step.branches) check(branch);
      check(step.body);
    }
  };
  check(program);
}

TEST_F(PlanTest, EstimateUsesStatistics) {
  // The stats subsystem maintains exact per-value counters, so an equality
  // estimate is the true matching-row count rather than the count/10 + 1
  // schema hint the planner used before statistics existed.
  auto spec_for = [&](int val) {
    storage::CompiledAtom a_atom;
    a_atom.cls = schema_->FindClass("A");
    storage::FieldCondition cond;
    cond.field_index = a_atom.cls->FieldIndex("val");
    cond.field_name = "val";
    cond.op = storage::FieldCondition::Op::kEq;
    cond.value = Value(val);
    a_atom.conditions.push_back(cond);
    return a_atom.ToScanSpec();
  };
  // None of the fixture's A rows sets val: the counter proves zero matches.
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec_for(1)), 0.0);
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(db_->AddNode("A", {{"val", Value(1)}}).ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db_->AddNode("A", {{"val", Value(2)}}).ok());
  }
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec_for(1)), 7.0);
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec_for(2)), 3.0);
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec_for(99)), 0.0);
}

}  // namespace
}  // namespace nepal::nql
