// End-to-end NQL queries over the tiny Figure-3 network, run against both
// execution backends (the core retargetability property: identical results).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;
using nepal::testing::MakeTinyNetwork;
using nepal::testing::TinyNetwork;

class EngineBasicTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    net_ = MakeTinyNetwork(GetParam());
    engine_ = std::make_unique<nql::QueryEngine>(net_.db.get());
  }

  nql::QueryResult Run(const std::string& query) {
    auto result = engine_->Run(query);
    EXPECT_TRUE(result.ok()) << result.status() << "\nquery: " << query;
    return result.ok() ? *result : nql::QueryResult{};
  }

  TinyNetwork net_;
  std::unique_ptr<nql::QueryEngine> engine_;
};

TEST_P(EngineBasicTest, SingleNodeAtom) {
  auto result = Run("Retrieve P From PATHS P Where P MATCHES VM()");
  ASSERT_EQ(result.rows.size(), 3u);
  std::set<Uid> uids;
  for (const auto& row : result.rows) {
    ASSERT_EQ(row.paths.size(), 1u);
    ASSERT_EQ(row.paths[0].uids.size(), 1u);
    uids.insert(row.paths[0].uids[0]);
  }
  EXPECT_EQ(uids, (std::set<Uid>{net_.vm1, net_.vm2, net_.vm3}));
}

TEST_P(EngineBasicTest, SubclassGeneralization) {
  // Container() covers VMWare, OnMetal and Docker transitively.
  auto result = Run("Retrieve P From PATHS P Where P MATCHES Container()");
  EXPECT_EQ(result.rows.size(), 3u);
  // An exact subclass atom narrows.
  result = Run("Retrieve P From PATHS P Where P MATCHES VMWare()");
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_P(EngineBasicTest, IdPseudoField) {
  auto result = Run("Retrieve P From PATHS P Where P MATCHES Host(id=" +
                    std::to_string(net_.host1) + ")");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].paths[0].uids[0], net_.host1);
}

TEST_P(EngineBasicTest, TopDownExplicitChain) {
  // The paper's first example: explicit implementation sequence.
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES "
          "VNF()->VFC()->VM()->Host(id=" +
          std::to_string(net_.host2) + ")");
  // vnf1->vfc2->vm2->host2 and vnf2->vfc3->vm3->host2.
  ASSERT_EQ(result.rows.size(), 2u);
  for (const auto& row : result.rows) {
    // 4 nodes + 3 edges.
    EXPECT_EQ(row.paths[0].uids.size(), 7u);
    EXPECT_EQ(row.paths[0].target_uid(), net_.host2);
  }
}

TEST_P(EngineBasicTest, TopDownGenericVertical) {
  // The generic form via the Vertical superclass.
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host(id=" +
          std::to_string(net_.host1) + ")");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].paths[0].source_uid(), net_.vnf1);
}

TEST_P(EngineBasicTest, BottomUpSharedFate) {
  // Shared fate: everything that fails with host2.
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host(id=" +
          std::to_string(net_.host2) + ")");
  std::set<Uid> sources;
  for (const auto& row : result.rows) {
    sources.insert(row.paths[0].source_uid());
  }
  EXPECT_EQ(sources, (std::set<Uid>{net_.vnf1, net_.vnf2}));
}

TEST_P(EngineBasicTest, HorizontalHostToHost) {
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES "
          "Host(name='host1')->[Connects()]{1,4}->Host(name='host2')");
  // host1->sw1->sw2->host2 is the only simple path within 4 hops.
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].paths[0].uids.size(), 7u);
}

TEST_P(EngineBasicTest, EdgeAtomGetsImplicitEndpoints) {
  auto result = Run("Retrieve P From PATHS P Where P MATCHES OnServer()");
  ASSERT_EQ(result.rows.size(), 3u);
  for (const auto& row : result.rows) {
    ASSERT_EQ(row.paths[0].uids.size(), 3u);  // node, edge, node
    EXPECT_TRUE(row.paths[0].concepts[0]->is_node());
    EXPECT_TRUE(row.paths[0].concepts[1]->is_edge());
    EXPECT_TRUE(row.paths[0].concepts[2]->is_node());
  }
}

TEST_P(EngineBasicTest, NodeNodeConcatUsesImplicitEdge) {
  // VFC()->VM(): the edge between them is implicit and unconstrained.
  auto result = Run("Retrieve P From PATHS P Where P MATCHES VFC()->VM()");
  EXPECT_EQ(result.rows.size(), 3u);
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.paths[0].uids.size(), 3u);
  }
}

TEST_P(EngineBasicTest, EdgeEdgeConcatMaterializesImplicitNode) {
  // Two Connects atoms in a row: the switch between them is implicit.
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES "
          "Connects()->Connects()->Host(id=" +
          std::to_string(net_.host2) + ")");
  ASSERT_FALSE(result.rows.empty());
  for (const auto& row : result.rows) {
    EXPECT_EQ(row.paths[0].uids.size(), 5u);  // n e n e n
    EXPECT_EQ(row.paths[0].target_uid(), net_.host2);
  }
}

TEST_P(EngineBasicTest, Disjunction) {
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES (DNS()|Firewall())");
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_P(EngineBasicTest, DisjunctionOfEdgesInRepetition) {
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES "
          "VNF(id=" +
          std::to_string(net_.vnf1) +
          ")->[composed_of()|hosted_on()]{1,4}->VM()");
  // vnf1 -> vfc1 -> vm1 and vnf1 -> vfc2 -> vm2 (hosted_on covers OnVM too,
  // but not OnServer hops since they end at Host, not VM).
  std::set<Uid> targets;
  for (const auto& row : result.rows) {
    targets.insert(row.paths[0].target_uid());
  }
  EXPECT_EQ(targets, (std::set<Uid>{net_.vm1, net_.vm2}));
}

TEST_P(EngineBasicTest, FieldPredicate) {
  ASSERT_TRUE(net_.db->UpdateElement(net_.vm1, {{"status", Value("Green")}})
                  .ok());
  ASSERT_TRUE(net_.db->UpdateElement(net_.vm2, {{"status", Value("Red")}})
                  .ok());
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES VM(status='Green')");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].paths[0].uids[0], net_.vm1);
}

TEST_P(EngineBasicTest, NoPathsReturnsEmpty) {
  auto result = Run(
      "Retrieve P From PATHS P Where P MATCHES Docker()");
  EXPECT_TRUE(result.rows.empty());
}

TEST_P(EngineBasicTest, JoinOnEndpoints) {
  // The paper's Phys example, miniaturized: physical path between the hosts
  // implementing two VNFs.
  auto result = Run(
      "Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
      "Where D1 MATCHES VNF(id=" +
      std::to_string(net_.vnf1) + ")->[Vertical()]{1,6}->Host(name='host1') " +
      "And D2 MATCHES VNF(id=" + std::to_string(net_.vnf2) +
      ")->[Vertical()]{1,6}->Host() "
      "And Phys MATCHES [Connects()]{1,8} "
      "And source(Phys) = target(D1) "
      "And target(Phys) = target(D2)");
  ASSERT_FALSE(result.rows.empty());
  for (const auto& row : result.rows) {
    ASSERT_EQ(row.paths.size(), 1u);
    EXPECT_EQ(row.paths[0].source_uid(), net_.host1);
    EXPECT_EQ(row.paths[0].target_uid(), net_.host2);
  }
}

TEST_P(EngineBasicTest, NotExistsSubquery) {
  // All VMs that do not host a VFC or VNF: in the tiny network every VM
  // hosts one, so add a bare VM first.
  auto bare = net_.db->AddNode("VMWare", {{"name", Value("bare-vm")}});
  ASSERT_TRUE(bare.ok());
  auto result = Run(
      "Retrieve V From PATHS V "
      "Where V MATCHES VM() "
      "And NOT EXISTS( "
      "  Retrieve P From PATHS P "
      "  Where P MATCHES (VNF()|VFC())->[hosted_on()]{1,5}->VM() "
      "  And target(V) = target(P))");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].paths[0].uids[0], *bare);
}

TEST_P(EngineBasicTest, SelectPostProcessing) {
  auto result =
      Run("Select source(P).name, target(P).id From PATHS P "
          "Where P MATCHES VM()->Host(id=" +
          std::to_string(net_.host1) + ")");
  ASSERT_EQ(result.rows.size(), 1u);
  ASSERT_EQ(result.rows[0].values.size(), 2u);
  EXPECT_EQ(result.rows[0].values[0], Value("vm1"));
  EXPECT_EQ(result.rows[0].values[1],
            Value(static_cast<int64_t>(net_.host1)));
}

TEST_P(EngineBasicTest, FilterOnEndpointField) {
  auto result =
      Run("Retrieve P From PATHS P "
          "Where P MATCHES VM()->Host() And target(P).name = 'host2'");
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_P(EngineBasicTest, CycleFreedom) {
  // Unanchored wandering would revisit elements; ensure simple paths only.
  auto result =
      Run("Retrieve P From PATHS P Where P MATCHES "
          "Switch(name='sw1')->[Connects()]{1,6}->Switch(name='sw1')");
  // No simple path returns to sw1 without repeating an element.
  EXPECT_TRUE(result.rows.empty());
}

TEST_P(EngineBasicTest, RejectsUnanchoredRpe) {
  auto result = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES [VNF()]{0,4}->[Vertical()]{0,4}");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPlanError);
}

TEST_P(EngineBasicTest, RejectsUnknownClass) {
  auto result =
      engine_->Run("Retrieve P From PATHS P Where P MATCHES Blimp()");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_P(EngineBasicTest, RejectsUnknownFieldInAtom) {
  auto result = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES VM(flavor='large')");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(EngineBasicTest, ExplainShowsAnchor) {
  auto explained = engine_->Explain(
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host(id=" +
      std::to_string(net_.host1) + ")");
  ASSERT_TRUE(explained.ok()) << explained.status();
  // The id-constrained Host atom must be chosen as the anchor.
  EXPECT_NE(explained->find("anchor Host"), std::string::npos) << *explained;
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineBasicTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
