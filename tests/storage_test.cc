// Unit tests for the storage layer: GraphDb semantics (validation, unique
// constraints, cascades, the transaction clock) and backend behaviour
// (version chains, scans under time views, incident-edge lookups,
// statistics), run against both backends.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;
using storage::Direction;
using storage::ElementVersion;
using storage::TimeView;

class StorageTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    auto s = schema::ParseSchemaDsl(R"(
      node A : Node { val: int; serial: string unique; }
      node A1 : A {}
      node B : Node {}
      edge E : Edge { w: int; }
      edge E1 : E {}
      allow E (Node -> Node);
    )");
    ASSERT_TRUE(s.ok()) << s.status();
    schema_ = *s;
    db_ = std::make_unique<storage::GraphDb>(
        schema_, nepal::testing::MakeBackend(GetParam(), schema_));
  }

  size_t CountScan(const char* cls, const TimeView& view) {
    storage::ScanSpec spec;
    spec.cls = schema_->FindClass(cls);
    size_t n = 0;
    db_->backend().Scan(spec, view, [&](const ElementVersion&) { ++n; });
    return n;
  }

  schema::SchemaPtr schema_;
  std::unique_ptr<storage::GraphDb> db_;
};

TEST_P(StorageTest, InsertAndGetCurrent) {
  auto uid = db_->AddNode("A", {{"val", Value(7)}, {"name", Value("x")},
                                {"serial", Value("s1")}});
  ASSERT_TRUE(uid.ok()) << uid.status();
  auto v = db_->GetCurrent(*uid);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->cls->name(), "A");
  EXPECT_EQ(v->fields[static_cast<size_t>(v->cls->FieldIndex("val"))],
            Value(7));
  EXPECT_TRUE(v->is_current());
}

TEST_P(StorageTest, PolymorphicScan) {
  ASSERT_TRUE(db_->AddNode("A", {{"serial", Value("s1")}}).ok());
  ASSERT_TRUE(db_->AddNode("A1", {{"serial", Value("s2")}}).ok());
  ASSERT_TRUE(db_->AddNode("B", {}).ok());
  EXPECT_EQ(CountScan("A", TimeView::Current()), 2u);   // A + A1
  EXPECT_EQ(CountScan("A1", TimeView::Current()), 1u);
  EXPECT_EQ(CountScan("Node", TimeView::Current()), 3u);
  EXPECT_EQ(CountScan("B", TimeView::Current()), 1u);
}

TEST_P(StorageTest, UniqueConstraintEnforced) {
  ASSERT_TRUE(db_->AddNode("A", {{"serial", Value("dup")}}).ok());
  auto clash = db_->AddNode("A1", {{"serial", Value("dup")}});
  ASSERT_FALSE(clash.ok());
  EXPECT_EQ(clash.status().code(), StatusCode::kAlreadyExists);
}

TEST_P(StorageTest, UniqueValueFreedByDeleteAndUpdate) {
  Uid a = *db_->AddNode("A", {{"serial", Value("s1")}});
  ASSERT_TRUE(db_->RemoveElement(a).ok());
  EXPECT_TRUE(db_->AddNode("A", {{"serial", Value("s1")}}).ok());

  Uid b = *db_->AddNode("A", {{"serial", Value("s2")}});
  ASSERT_TRUE(db_->UpdateElement(b, {{"serial", Value("s3")}}).ok());
  EXPECT_TRUE(db_->AddNode("A", {{"serial", Value("s2")}}).ok());
  auto clash = db_->AddNode("A", {{"serial", Value("s3")}});
  EXPECT_FALSE(clash.ok());
}

TEST_P(StorageTest, RequiredFieldEnforced) {
  // `unique` in the DSL implies required.
  auto missing = db_->AddNode("A", {{"val", Value(1)}});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kSchemaViolation);
}

TEST_P(StorageTest, EdgeEndpointAndRuleChecks) {
  Uid a = *db_->AddNode("A", {{"serial", Value("s1")}});
  Uid b = *db_->AddNode("B", {});
  // Unknown endpoint.
  EXPECT_FALSE(db_->AddEdge("E", a, 9999, {}).ok());
  // Edge as endpoint.
  Uid e = *db_->AddEdge("E", a, b, {});
  EXPECT_FALSE(db_->AddEdge("E", a, e, {}).ok());
  // No rule for E1? E1 derives from E whose rule (Node->Node) applies.
  EXPECT_TRUE(db_->AddEdge("E1", b, a, {}).ok());
}

TEST_P(StorageTest, NodeRemovalCascadesToEdges) {
  Uid a = *db_->AddNode("A", {{"serial", Value("s1")}});
  Uid b = *db_->AddNode("B", {});
  Uid c = *db_->AddNode("B", {{"name", Value("c")}});
  Uid e1 = *db_->AddEdge("E", a, b, {});
  Uid e2 = *db_->AddEdge("E", c, a, {});
  Uid e3 = *db_->AddEdge("E", b, c, {});
  ASSERT_TRUE(db_->RemoveElement(a).ok());
  EXPECT_FALSE(db_->GetCurrent(e1).ok());
  EXPECT_FALSE(db_->GetCurrent(e2).ok());
  EXPECT_TRUE(db_->GetCurrent(e3).ok());
  EXPECT_EQ(db_->edge_count(), 1u);
}

TEST_P(StorageTest, ClockIsMonotone) {
  ASSERT_TRUE(db_->SetTime(db_->Now() + 100).ok());
  EXPECT_FALSE(db_->SetTime(db_->Now() - 1).ok());
}

TEST_P(StorageTest, VersionChainAcrossUpdates) {
  Timestamp t0 = db_->Now();
  Uid a = *db_->AddNode("A", {{"serial", Value("s1")}, {"val", Value(1)}});
  ASSERT_TRUE(db_->SetTime(t0 + 10).ok());
  ASSERT_TRUE(db_->UpdateElement(a, {{"val", Value(2)}}).ok());
  ASSERT_TRUE(db_->SetTime(t0 + 20).ok());
  ASSERT_TRUE(db_->RemoveElement(a).ok());

  std::vector<ElementVersion> versions;
  db_->backend().Get(a, TimeView::Range(Interval::All()),
                     [&](const ElementVersion& v) { versions.push_back(v); });
  std::sort(versions.begin(), versions.end(),
            [](const auto& x, const auto& y) {
              return x.valid.start < y.valid.start;
            });
  ASSERT_EQ(versions.size(), 2u);
  EXPECT_EQ(versions[0].valid, (Interval{t0, t0 + 10}));
  EXPECT_EQ(versions[1].valid, (Interval{t0 + 10, t0 + 20}));
  int val_idx = versions[0].cls->FieldIndex("val");
  EXPECT_EQ(versions[0].fields[static_cast<size_t>(val_idx)], Value(1));
  EXPECT_EQ(versions[1].fields[static_cast<size_t>(val_idx)], Value(2));
}

TEST_P(StorageTest, SameInstantUpdateCollapsesVersion) {
  Uid a = *db_->AddNode("A", {{"serial", Value("s1")}, {"val", Value(1)}});
  // Same transaction instant: the intermediate state never existed.
  ASSERT_TRUE(db_->UpdateElement(a, {{"val", Value(2)}}).ok());
  size_t count = 0;
  db_->backend().Get(a, TimeView::Range(Interval::All()),
                     [&](const ElementVersion&) { ++count; });
  EXPECT_EQ(count, 1u);
  auto cur = db_->GetCurrent(a);
  EXPECT_EQ(cur->fields[static_cast<size_t>(cur->cls->FieldIndex("val"))],
            Value(2));
}

TEST_P(StorageTest, ScanUnderTimeViews) {
  Timestamp t0 = db_->Now();
  Uid a = *db_->AddNode("A", {{"serial", Value("s1")}});
  ASSERT_TRUE(db_->SetTime(t0 + 10).ok());
  ASSERT_TRUE(db_->RemoveElement(a).ok());
  ASSERT_TRUE(db_->SetTime(t0 + 20).ok());
  ASSERT_TRUE(db_->AddNode("A", {{"serial", Value("s2")}}).ok());

  EXPECT_EQ(CountScan("A", TimeView::Current()), 1u);
  EXPECT_EQ(CountScan("A", TimeView::AsOf(t0 + 5)), 1u);
  EXPECT_EQ(CountScan("A", TimeView::AsOf(t0 + 15)), 0u);
  EXPECT_EQ(CountScan("A", TimeView::Range(t0, t0 + 30)), 2u);
  EXPECT_EQ(CountScan("A", TimeView::Range(t0 + 11, t0 + 19)), 0u);
}

TEST_P(StorageTest, IncidentEdgesDirectionAndClassFilter) {
  Uid a = *db_->AddNode("A", {{"serial", Value("s1")}});
  Uid b = *db_->AddNode("B", {});
  Uid e_out = *db_->AddEdge("E", a, b, {});
  Uid e1_in = *db_->AddEdge("E1", b, a, {});
  auto collect = [&](Direction dir, const char* cls) {
    std::set<Uid> uids;
    db_->backend().IncidentEdges(a, dir,
                                 cls != nullptr ? schema_->FindClass(cls)
                                                : nullptr,
                                 TimeView::Current(),
                                 [&](const ElementVersion& v) {
                                   uids.insert(v.uid);
                                 });
    return uids;
  };
  EXPECT_EQ(collect(Direction::kOut, nullptr), (std::set<Uid>{e_out}));
  EXPECT_EQ(collect(Direction::kIn, nullptr), (std::set<Uid>{e1_in}));
  EXPECT_EQ(collect(Direction::kBoth, nullptr),
            (std::set<Uid>{e_out, e1_in}));
  EXPECT_EQ(collect(Direction::kBoth, "E1"), (std::set<Uid>{e1_in}));
  EXPECT_EQ(collect(Direction::kBoth, "E"), (std::set<Uid>{e_out, e1_in}));
}

TEST_P(StorageTest, HistoricalIncidentEdges) {
  Timestamp t0 = db_->Now();
  Uid a = *db_->AddNode("A", {{"serial", Value("s1")}});
  Uid b = *db_->AddNode("B", {});
  Uid e = *db_->AddEdge("E", a, b, {});
  ASSERT_TRUE(db_->SetTime(t0 + 10).ok());
  ASSERT_TRUE(db_->RemoveElement(e).ok());
  size_t current = 0, past = 0;
  db_->backend().IncidentEdges(a, Direction::kOut, nullptr,
                               TimeView::Current(),
                               [&](const ElementVersion&) { ++current; });
  db_->backend().IncidentEdges(a, Direction::kOut, nullptr,
                               TimeView::AsOf(t0 + 5),
                               [&](const ElementVersion&) { ++past; });
  EXPECT_EQ(current, 0u);
  EXPECT_EQ(past, 1u);
}

TEST_P(StorageTest, CountsAndEstimates) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        db_->AddNode("A", {{"serial", Value("s" + std::to_string(i))},
                           {"name", Value("node-" + std::to_string(i))}})
            .ok());
  }
  EXPECT_EQ(db_->backend().CountClass(schema_->FindClass("A")), 10u);
  // uid lookup estimates to exactly 1.
  storage::ScanSpec by_uid;
  by_uid.cls = schema_->FindClass("A");
  by_uid.uid = 3;
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(by_uid), 1.0);
  // Indexed name equality uses real index statistics.
  storage::ScanSpec by_name;
  by_name.cls = schema_->FindClass("A");
  by_name.eq = std::make_pair(by_name.cls->FieldIndex("name"),
                              Value("node-3"));
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(by_name), 1.0);
}

TEST_P(StorageTest, MemoryUsageGrowsWithData) {
  size_t before = db_->backend().MemoryUsage();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        db_->AddNode("A", {{"serial", Value("s" + std::to_string(i))}}).ok());
  }
  EXPECT_GT(db_->backend().MemoryUsage(), before);
  EXPECT_EQ(db_->backend().VersionCount(), 50u);
}

TEST_P(StorageTest, RejectsWritesToMissingElements) {
  EXPECT_FALSE(db_->UpdateElement(404, {{"val", Value(1)}}).ok());
  EXPECT_FALSE(db_->RemoveElement(404).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, StorageTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
