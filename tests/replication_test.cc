// WAL-shipping replication suite: follower bootstrap and live tailing
// (byte-identical reads on both backends), retention pinning under the
// checkpoint rotate-then-prune race, slow-subscriber disconnection,
// read-only enforcement at the replica and in the engine's source
// catalog, and the headline failover drill — SIGKILL the primary
// mid-stream, promote the follower, and verify that no commit the
// primary acknowledged after follower confirmation is lost.

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "persist/durable_store.h"
#include "replication/replica_store.h"
#include "replication/transport.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

namespace fs = std::filesystem;
using nepal::testing::BackendKind;
using persist::DurableOptions;
using persist::DurableStore;
using persist::FsyncPolicy;
using replication::FdTransport;
using replication::InProcessTransport;
using replication::ReplicaOptions;
using replication::ReplicaStore;
using replication::WalShipper;

constexpr const char* kT0 = "2017-02-15 08:00:00";
constexpr const char* kT1 = "2017-02-15 09:00:00";
constexpr const char* kT2 = "2017-02-15 10:00:00";

Timestamp Ts(const char* s) {
  auto r = ParseTimestamp(s);
  EXPECT_TRUE(r.ok());
  return *r;
}

std::string FreshDir(const std::string& name) {
  std::string unique = "nepal_repl_" + name;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    unique += "_";
    unique += info->name();
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
  }
  fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory(BackendKind kind) {
  return [kind](schema::SchemaPtr s) {
    return nepal::testing::MakeBackend(kind, std::move(s));
  };
}

Result<std::unique_ptr<DurableStore>> OpenPrimary(
    const std::string& dir, BackendKind kind, DurableOptions options = {}) {
  return DurableStore::Open(dir, nepal::testing::Figure3Schema(),
                            Factory(kind), options);
}

Result<std::unique_ptr<ReplicaStore>> OpenFollower(
    DurableStore& primary, const std::string& dir, BackendKind kind,
    persist::SubscribeOptions sub_options = {}) {
  auto transport = InProcessTransport::Connect(primary, sub_options);
  if (!transport.ok()) return transport.status();
  return ReplicaStore::Open(dir, nepal::testing::Figure3Schema(),
                            Factory(kind), std::move(*transport));
}

/// Ingest batch shared by the tests: a VNF stack with a migration, an
/// update and a cascade delete — the same temporal shape recovery_test
/// uses, so byte-identical observation strings exercise history, not
/// just the current snapshot.
void IngestWorkload(storage::GraphDb& db) {
  ASSERT_TRUE(db.SetTime(Ts(kT0)).ok());
  Uid vnf = *db.AddNode("DNS", {{"name", Value("vnf")},
                                {"vnf_type", Value("dns")}});
  Uid vfc = *db.AddNode("VFC", {{"name", Value("vfc")}});
  Uid vm = *db.AddNode("VMWare", {{"name", Value("vm")},
                                  {"status", Value("Green")}});
  Uid host1 = *db.AddNode("Host", {{"name", Value("host1")},
                                   {"serial", Value("sn-1")}});
  Uid host2 = *db.AddNode("Host", {{"name", Value("host2")},
                                   {"serial", Value("sn-2")}});
  ASSERT_TRUE(
      db.AddEdge("composed_of", vnf, vfc, {{"name", Value("c1")}}).ok());
  ASSERT_TRUE(
      db.AddEdge("hosted_on", vfc, vm, {{"name", Value("h1")}}).ok());
  Uid placement1 =
      *db.AddEdge("OnServer", vm, host1, {{"name", Value("p1")}});
  ASSERT_TRUE(db.SetTime(Ts(kT1)).ok());
  ASSERT_TRUE(db.RemoveElement(placement1).ok());
  ASSERT_TRUE(
      db.AddEdge("OnServer", vm, host2, {{"name", Value("p2")}}).ok());
  ASSERT_TRUE(db.SetTime(Ts(kT2)).ok());
  ASSERT_TRUE(db.UpdateElement(vm, {{"status", Value("Red")}}).ok());
}

/// Queries spanning the current snapshot, a timeslice and a time range;
/// a follower must reproduce this string byte for byte.
std::string Observe(storage::GraphDb& db) {
  nql::QueryEngine engine(&db);
  const std::vector<std::string> queries = {
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()",
      "AT '" + std::string(kT0) +
          "' Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host()",
      "AT '" + std::string(kT0) + "' : '" + std::string(kT2) +
          "' Retrieve P From PATHS P Where P MATCHES VM(status='Red')",
      "Retrieve P From PATHS P Where P MATCHES Host()",
  };
  std::string out;
  for (const std::string& q : queries) {
    auto result = engine.Run(q);
    out += "== " + q + "\n";
    out += result.ok() ? result->ToString(/*max_rows=*/100000)
                       : result.status().ToString();
    out += "\n";
  }
  return out;
}

/// Polls until the follower has applied everything the primary appended
/// (by record count) or the deadline passes.
::testing::AssertionResult WaitForCatchUp(const DurableStore& primary,
                                          const ReplicaStore& follower,
                                          uint64_t base_appended = 0,
                                          int timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (!follower.status().ok()) {
      return ::testing::AssertionFailure()
             << "apply loop failed: " << follower.status();
    }
    if (follower.records_applied() + base_appended >=
        primary.records_appended()) {
      return ::testing::AssertionSuccess();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return ::testing::AssertionFailure()
         << "follower stuck at " << follower.records_applied()
         << " applied (primary appended " << primary.records_appended()
         << ", base " << base_appended << ")";
}

class ReplicationTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(ReplicationTest, FollowerIsByteIdenticalUnderLiveConcurrentIngest) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  IngestWorkload((*primary)->db());

  // The pre-subscribe workload travels in the bootstrap image; everything
  // after this mark must arrive as WAL frames.
  const uint64_t base = (*primary)->records_appended();
  auto follower = OpenFollower(**primary, FreshDir("f"), GetParam());
  ASSERT_TRUE(follower.ok()) << follower.status();

  // Live ingest concurrent with the follower tailing.
  std::thread writer([&] {
    auto& db = (*primary)->db();
    Timestamp t = db.Now();
    for (int i = 0; i < 200; ++i) {
      t += 1000000;
      ASSERT_TRUE(db.SetTime(t).ok());
      auto host = db.AddNode(
          "Host", {{"name", Value("lh" + std::to_string(i))},
                   {"serial", Value("lsn" + std::to_string(i))}});
      ASSERT_TRUE(host.ok()) << host.status();
      if (i % 4 == 0) {
        auto vm = db.AddNode("VMWare",
                             {{"name", Value("lv" + std::to_string(i))}});
        ASSERT_TRUE(vm.ok());
        ASSERT_TRUE(db.AddEdge("OnServer", *vm, *host, {}).ok());
      }
      if (i % 7 == 3) {
        ASSERT_TRUE(db.RemoveElement(*host).ok());
      }
    }
  });
  writer.join();

  ASSERT_TRUE(WaitForCatchUp(**primary, **follower, base));
  EXPECT_EQ(Observe((*follower)->db()), Observe((*primary)->db()));
  EXPECT_EQ((*follower)->db().node_count(), (*primary)->db().node_count());
  EXPECT_EQ((*follower)->db().edge_count(), (*primary)->db().edge_count());
}

TEST_P(ReplicationTest, FollowerOnTheOtherBackendMatchesByteForByte) {
  // The log is logical: a graphstore primary can feed a relational
  // follower and vice versa, and reads still match byte for byte.
  const BackendKind other = GetParam() == BackendKind::kGraphStore
                                ? BackendKind::kRelational
                                : BackendKind::kGraphStore;
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  const uint64_t base = (*primary)->records_appended();
  auto follower = OpenFollower(**primary, FreshDir("f"), other);
  ASSERT_TRUE(follower.ok()) << follower.status();
  IngestWorkload((*primary)->db());
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower, base));
  EXPECT_EQ(Observe((*follower)->db()), Observe((*primary)->db()));
}

TEST_P(ReplicationTest, FollowerBootstrapsFromClosedSegmentsAndLiveTail) {
  // Catch-up must read committed-but-unshipped records back from disk:
  // checkpoint first (so Subscribe does not cut a fresh image), then
  // commit a workload that therefore sits only in WAL segments.
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  IngestWorkload((*primary)->db());
  const uint64_t pre_subscribe = (*primary)->records_appended();
  ASSERT_GT(pre_subscribe, 0u);

  auto follower = OpenFollower(**primary, FreshDir("f"), GetParam());
  ASSERT_TRUE(follower.ok()) << follower.status();
  // Live tail on top of the disk catch-up.
  ASSERT_TRUE((*primary)
                  ->db()
                  .AddNode("Docker", {{"name", Value("live-tail")}})
                  .ok());
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower));
  // Every pre-subscribe record was applied (they were not in the image).
  EXPECT_GE((*follower)->records_applied(), pre_subscribe);
  EXPECT_EQ(Observe((*follower)->db()), Observe((*primary)->db()));
}

TEST_P(ReplicationTest, PruneNeverDeletesSegmentsASubscriberStillNeeds) {
  // The rotate-then-prune race: a subscriber attaches with unconsumed
  // records in the then-active segment; two checkpoints later that
  // segment is older than every retained image and Prune() would delete
  // it — retention pinning must keep it until the subscriber has read it.
  const std::string dir = FreshDir("pin");
  auto primary = OpenPrimary(dir, GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  ASSERT_TRUE((*primary)->Checkpoint().ok());  // checkpoint-2, segment 2
  IngestWorkload((*primary)->db());            // records live in segment 2

  auto sub = (*primary)->Subscribe();
  ASSERT_TRUE(sub.ok()) << sub.status();
  EXPECT_EQ((*sub)->start_seq(), 2u);
  const uint64_t appended = (*primary)->records_appended();

  // Rotate past the attach segment twice; without pinning, segment 2 is
  // now older than the oldest retained checkpoint (3) and gets deleted.
  ASSERT_TRUE((*primary)->Checkpoint().ok());  // checkpoint-3
  ASSERT_TRUE((*primary)->Checkpoint().ok());  // checkpoint-4, retains {3,4}
  EXPECT_TRUE(fs::exists(dir + "/" + persist::WalSegmentFileName(2)))
      << "prune deleted a segment the subscriber has not consumed";

  // The subscriber can still read the complete stream from its image on.
  uint64_t got = 0;
  persist::WalShipFrame frame;
  while (got < appended) {
    auto next = (*sub)->Next(&frame, std::chrono::milliseconds(1000));
    ASSERT_TRUE(next.ok()) << next.status();
    ASSERT_TRUE(*next) << "timed out after " << got << " frames";
    ++got;
  }
  EXPECT_EQ(got, appended);

  // Once the subscriber lets go, the next checkpoint prunes the segment.
  (*sub)->Cancel();
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  EXPECT_FALSE(fs::exists(dir + "/" + persist::WalSegmentFileName(2)));
}

TEST_P(ReplicationTest, LaggedSubscriberIsDisconnectedNotBlocking) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  persist::SubscribeOptions tiny;
  tiny.max_buffered_bytes = 64;  // a handful of records at most
  auto sub = (*primary)->Subscribe(tiny);
  ASSERT_TRUE(sub.ok()) << sub.status();

  // Nobody consumes; the primary must stay un-throttled and cut the
  // subscriber loose instead of buffering forever.
  IngestWorkload((*primary)->db());
  EXPECT_TRUE((*sub)->lagged());

  persist::WalShipFrame frame;
  for (;;) {
    auto next = (*sub)->Next(&frame, std::chrono::milliseconds(10));
    if (!next.ok()) {
      EXPECT_EQ(next.status().code(), StatusCode::kUnavailable);
      EXPECT_NE(next.status().message().find("lagged"), std::string::npos)
          << next.status();
      break;
    }
    ASSERT_TRUE(*next) << "subscription neither delivered nor failed";
  }
}

TEST_P(ReplicationTest, ReplicaRejectsDirectWritesAndCatalogRoutesReads) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  IngestWorkload((*primary)->db());
  const uint64_t base = (*primary)->records_appended();
  auto follower = OpenFollower(**primary, FreshDir("f"), GetParam());
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower, base));

  // Direct writes at the replica are rejected; the apply loop is the only
  // admitted writer.
  auto rejected =
      (*follower)->db().AddNode("Docker", {{"name", Value("stray")}});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kReadOnly);
  EXPECT_EQ((*follower)->db().SetTime(Ts(kT2) + 1).code(),
            StatusCode::kReadOnly);

  // Catalog: the replica serves federated reads but refuses write routing.
  {
    nql::QueryEngine engine(&(*primary)->db());
    nql::SourceDescriptor standby;
    standby.db = &(*follower)->db();
    standby.role = nql::SourceRole::kReplica;
    ASSERT_TRUE(engine.catalog().Register("standby", standby).ok());
    auto reads = engine.Run(
        "Retrieve P From PATHS P In 'standby' Where P MATCHES "
        "VM()->OnServer()->Host()");
    ASSERT_TRUE(reads.ok()) << reads.status();
    EXPECT_EQ(reads->rows.size(), 1u);
    auto writable = engine.catalog().Writable("standby");
    ASSERT_FALSE(writable.ok());
    EXPECT_EQ(writable.status().code(), StatusCode::kReadOnly);
  }

  // The replica keeps answering after the primary is gone.
  primary->reset();
  nql::QueryEngine survivor(&(*follower)->db());
  auto still = survivor.Run(
      "Retrieve P From PATHS P Where P MATCHES Host()");
  ASSERT_TRUE(still.ok()) << still.status();
  EXPECT_EQ(still->rows.size(), 2u);
}

TEST_P(ReplicationTest, PromotedFollowerAcceptsWritesAndRecovers) {
  const std::string follower_dir = FreshDir("f");
  std::string after_promotion;
  {
    auto primary = OpenPrimary(FreshDir("p"), GetParam());
    ASSERT_TRUE(primary.ok()) << primary.status();
    IngestWorkload((*primary)->db());
    const uint64_t base = (*primary)->records_appended();
    auto follower = OpenFollower(**primary, follower_dir, GetParam());
    ASSERT_TRUE(follower.ok()) << follower.status();
    ASSERT_TRUE(WaitForCatchUp(**primary, **follower, base));

    primary->reset();  // primary dies; the stream ends
    ASSERT_TRUE((*follower)->Promote().ok());
    EXPECT_TRUE((*follower)->promoted());

    // The promoted store is a writable primary in its own right: it takes
    // durable writes and can even feed a new follower.
    auto& db = (*follower)->db();
    ASSERT_TRUE(db.SetTime(db.Now() + 1000000).ok());
    ASSERT_TRUE(
        db.AddNode("Docker", {{"name", Value("post-promotion")}}).ok());
    auto next_follower =
        OpenFollower((*follower)->store(), FreshDir("f2"), GetParam());
    ASSERT_TRUE(next_follower.ok()) << next_follower.status();
    after_promotion = Observe(db);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (Observe((*next_follower)->db()) != after_promotion &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(Observe((*next_follower)->db()), after_promotion);
  }
  // And its directory recovers like any primary directory.
  auto reopened = OpenPrimary(follower_dir, GetParam());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ(Observe((*reopened)->db()), after_promotion);
}

TEST_P(ReplicationTest, SigkilledPrimaryPromoteLosesNoAcknowledgedCommit) {
  // Failover drill with semi-synchronous acknowledgment: the primary
  // treats a commit as client-acknowledged only after the follower
  // reports it applied (ack counts flow back over a socket), recording
  // each acknowledged element in an fsync'd file. SIGKILL the primary
  // mid-stream, promote the follower: every recorded element must be
  // queryable — the zero-acknowledged-loss contract of warm standby.
  signal(SIGPIPE, SIG_IGN);
  const std::string primary_dir = FreshDir("p");
  const std::string follower_dir = FreshDir("f");
  const std::string acked_path = FreshDir("acked") + ".list";
  fs::remove(acked_path);

  int ship[2];  // [0] parent/follower reads, [1] child/primary writes
  int ack[2];   // [0] child/primary reads,  [1] parent/follower writes
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, ship), 0);
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, ack), 0);

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: the primary. No gtest macros — this process dies by SIGKILL.
    close(ship[0]);
    close(ack[1]);
    auto store = OpenPrimary(primary_dir, GetParam(),
                             DurableOptions{FsyncPolicy::kAlways, 0, 2});
    if (!store.ok()) _exit(1);
    auto shipper = WalShipper::Start(**store, ship[1]);
    if (!shipper.ok()) _exit(2);
    std::ofstream acked(acked_path, std::ios::trunc);
    uint64_t acked_count = 0;
    for (int i = 0; i < 200000; ++i) {
      const std::string name = "h" + std::to_string(i);
      if (!(*store)
               ->db()
               .AddNode("Host", {{"name", Value(name)},
                                 {"serial", Value("sn" + name)}})
               .ok()) {
        _exit(3);
      }
      const uint64_t committed = (*store)->records_appended();
      // Semi-sync: block until the follower confirms this commit applied.
      while (acked_count < committed) {
        char buf[8];
        size_t done = 0;
        while (done < sizeof(buf)) {
          ssize_t r = read(ack[0], buf + done, sizeof(buf) - done);
          if (r <= 0) _exit(4);
          done += static_cast<size_t>(r);
        }
        uint64_t v = 0;
        for (int b = 7; b >= 0; --b) {
          v = (v << 8) | static_cast<unsigned char>(buf[b]);
        }
        acked_count = v;
      }
      // Only now is the commit acknowledged to the "client": record it.
      acked << name << "\n";
      acked.flush();
    }
    _exit(0);
  }

  // Parent: the follower.
  close(ship[1]);
  close(ack[0]);
  auto follower = ReplicaStore::Open(
      follower_dir, nepal::testing::Figure3Schema(), Factory(GetParam()),
      std::make_unique<FdTransport>(ship[0]));
  ASSERT_TRUE(follower.ok()) << follower.status();

  // Ack pump: report the applied count back to the primary continuously.
  std::atomic<bool> stop_acks{false};
  std::thread ack_pump([&] {
    while (!stop_acks.load()) {
      uint64_t applied = (*follower)->records_applied();
      char buf[8];
      for (int b = 0; b < 8; ++b) {
        buf[b] = static_cast<char>(applied & 0xff);
        applied >>= 8;
      }
      if (write(ack[1], buf, sizeof(buf)) != sizeof(buf)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Let commits flow, then murder the primary mid-stream.
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited before the kill";
  stop_acks.store(true);
  ack_pump.join();
  close(ack[1]);

  // The stream ends; the apply loop stops; promote.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while ((*follower)->status().ok() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE((*follower)->Promote().ok());

  // Zero acknowledged loss: every element the primary recorded as
  // acknowledged exists on the promoted follower.
  std::vector<std::string> acked_names;
  {
    std::ifstream in(acked_path);
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty()) acked_names.push_back(line);
    }
  }
  ASSERT_FALSE(acked_names.empty())
      << "the kill landed before any acknowledged commit; raise the sleep";
  nql::QueryEngine engine(&(*follower)->db());
  for (const std::string& name : acked_names) {
    auto found = engine.Run("Retrieve P From PATHS P Where P MATCHES Host("
                            "name='" + name + "')");
    ASSERT_TRUE(found.ok()) << found.status();
    EXPECT_EQ(found->rows.size(), 1u) << "acknowledged commit " << name
                                      << " lost in failover";
  }
  // The promoted follower is writable.
  ASSERT_TRUE((*follower)
                  ->db()
                  .AddNode("Docker", {{"name", Value("after-failover")}})
                  .ok());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ReplicationTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const auto& info) { return nepal::testing::BackendName(info.param); });

}  // namespace
}  // namespace nepal
