// Unit tests for the common layer: Status/Result, Value, timestamps,
// intervals and interval sets.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/time.h"
#include "common/value.h"

namespace nepal {
namespace {

// ---- Status / Result ----

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status st = Status::NotFound("no such host");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.ToString(), "NotFound: no such host");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  NEPAL_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, PropagatesThroughMacros) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto inner_fail = Quarter(6);  // 6/2 = 3, odd
  ASSERT_FALSE(inner_fail.ok());
  EXPECT_EQ(inner_fail.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---- Value ----

TEST(ValueTest, KindsAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(true).kind(), ValueKind::kBool);
  EXPECT_EQ(Value(int64_t{42}).AsInt(), 42);
  EXPECT_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("x").AsString(), "x");
  EXPECT_EQ(Value::Ip(0x7f000001).AsIp(), 0x7f000001u);
}

TEST(ValueTest, NumericComparisonAcrossKinds) {
  EXPECT_EQ(Value(int64_t{2}), Value(2.0));
  EXPECT_LT(Value(int64_t{2}), Value(2.5));
  EXPECT_LT(Value(2.5), Value(int64_t{3}));
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value(), Value(false));
  EXPECT_LT(Value(), Value("a"));
}

TEST(ValueTest, IpParsingAndFormatting) {
  auto ip = Value::ParseIp("10.1.2.3");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->ToString(), "10.1.2.3");
  EXPECT_FALSE(Value::ParseIp("10.1.2").ok());
  EXPECT_FALSE(Value::ParseIp("10.1.2.300").ok());
  EXPECT_FALSE(Value::ParseIp("10.1.2.3.4").ok());
}

TEST(ValueTest, SetSortsAndDedupes) {
  Value set = Value::Set({Value(3), Value(1), Value(3), Value(2)});
  ASSERT_EQ(set.kind(), ValueKind::kSet);
  ASSERT_EQ(set.AsList().size(), 3u);
  EXPECT_EQ(set.AsList()[0].AsInt(), 1);
  EXPECT_EQ(set.AsList()[2].AsInt(), 3);
}

TEST(ValueTest, NestedContainerEqualityAndHash) {
  Value a = Value::Map({{"rt", Value::List({Value(1), Value("if0")})}});
  Value b = Value::Map({{"rt", Value::List({Value(1), Value("if0")})}});
  Value c = Value::Map({{"rt", Value::List({Value(2), Value("if0")})}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value("hi").ToString(), "'hi'");
  EXPECT_EQ(Value::List({Value(1), Value(2)}).ToString(), "[1, 2]");
  EXPECT_EQ(Value::Map({{"k", Value(true)}}).ToString(), "{k: true}");
}

// ---- Timestamps ----

TEST(TimeTest, ParseAndFormatRoundTrip) {
  for (const char* text :
       {"2017-02-15 10:00:00", "2017-12-31 23:59:59",
        "2016-02-29 00:00:00",  // leap day
        "1999-01-01 00:00:00"}) {
    auto ts = ParseTimestamp(text);
    ASSERT_TRUE(ts.ok()) << text;
    EXPECT_EQ(FormatTimestamp(*ts), text);
  }
}

TEST(TimeTest, ShortFormsParse) {
  EXPECT_EQ(FormatTimestamp(*ParseTimestamp("2017-02-15")),
            "2017-02-15 00:00:00");
  EXPECT_EQ(FormatTimestamp(*ParseTimestamp("2017-02-15 10:30")),
            "2017-02-15 10:30:00");
  EXPECT_EQ(FormatTimestamp(*ParseTimestamp("2017-02-15 10:30:15.5")),
            "2017-02-15 10:30:15.500000");
}

TEST(TimeTest, RejectsMalformed) {
  EXPECT_FALSE(ParseTimestamp("not a time").ok());
  EXPECT_FALSE(ParseTimestamp("2017-13-01").ok());
  EXPECT_FALSE(ParseTimestamp("2017-02-30").ok());
  EXPECT_FALSE(ParseTimestamp("2017-02-15 25:00").ok());
  EXPECT_FALSE(ParseTimestamp("2017-02-15 10:00:00 tail").ok());
}

TEST(TimeTest, KnownEpochValue) {
  // 2017-01-01 00:00:00 UTC == 1483228800s.
  EXPECT_EQ(*ParseTimestamp("2017-01-01 00:00:00"), 1483228800LL * 1000000);
}

// ---- Intervals ----

TEST(IntervalTest, HalfOpenSemantics) {
  Interval iv{10, 20};
  EXPECT_TRUE(iv.Contains(10));
  EXPECT_TRUE(iv.Contains(19));
  EXPECT_FALSE(iv.Contains(20));
  EXPECT_TRUE(iv.Overlaps({19, 30}));
  EXPECT_FALSE(iv.Overlaps({20, 30}));  // touching is not overlapping
  EXPECT_TRUE(iv.Meets({20, 30}));      // but it does meet
}

TEST(IntervalTest, IntersectAndEmpty) {
  Interval a{10, 20}, b{15, 30};
  EXPECT_EQ(a.Intersect(b), (Interval{15, 20}));
  EXPECT_TRUE(a.Intersect({20, 30}).empty());
  EXPECT_TRUE((Interval{5, 5}).empty());
}

TEST(IntervalSetTest, CoalescesMeetingIntervals) {
  IntervalSet set;
  set.Add({10, 20});
  set.Add({30, 40});
  set.Add({20, 25});  // touches the first
  ASSERT_EQ(set.intervals().size(), 2u);
  EXPECT_EQ(set.intervals()[0], (Interval{10, 25}));
  EXPECT_EQ(set.intervals()[1], (Interval{30, 40}));
}

TEST(IntervalSetTest, BridgingMergesEverything) {
  IntervalSet set;
  set.Add({10, 20});
  set.Add({30, 40});
  set.Add({15, 35});
  ASSERT_EQ(set.intervals().size(), 1u);
  EXPECT_EQ(set.intervals()[0], (Interval{10, 40}));
}

TEST(IntervalSetTest, FirstLastAndContains) {
  IntervalSet set;
  EXPECT_EQ(set.FirstTime(), kTimestampMax);
  set.Add({10, 20});
  set.Add({30, kTimestampMax});
  EXPECT_EQ(set.FirstTime(), 10);
  EXPECT_EQ(set.LastTime(), kTimestampMax);
  EXPECT_TRUE(set.Contains(15));
  EXPECT_FALSE(set.Contains(25));
  EXPECT_TRUE(set.Contains(1000000));
}

TEST(IntervalSetTest, IgnoresEmptyIntervals) {
  IntervalSet set;
  set.Add({10, 10});
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSetTest, RandomizedCoalescingInvariant) {
  Rng rng(12);
  for (int round = 0; round < 50; ++round) {
    IntervalSet set;
    std::vector<Interval> added;
    for (int i = 0; i < 20; ++i) {
      Timestamp start = static_cast<Timestamp>(rng.Below(100));
      Interval iv{start, start + static_cast<Timestamp>(1 + rng.Below(10))};
      set.Add(iv);
      added.push_back(iv);
    }
    // Sorted, disjoint, non-adjacent.
    const auto& ivs = set.intervals();
    for (size_t i = 1; i < ivs.size(); ++i) {
      EXPECT_GT(ivs[i].start, ivs[i - 1].end);
    }
    // Membership agrees with the raw list.
    for (Timestamp t = 0; t < 115; ++t) {
      bool expected = false;
      for (const Interval& iv : added) expected |= iv.Contains(t);
      EXPECT_EQ(set.Contains(t), expected) << "t=" << t;
    }
  }
}

// ---- Rng determinism ----

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, RangeBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace nepal
