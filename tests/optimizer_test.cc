// Cost-based optimizer tests: anchor selection must follow the data
// distribution (golden EXPLAIN anchor-flip on both backends), dead-branch
// pruning against the allowed-edge rules, statically-empty plans,
// statistics-driven predicate pushdown, and the cost-gated loop strategy.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "nepal/parser.h"
#include "nepal/plan.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;

class OptimizerTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  std::unique_ptr<storage::GraphDb> MakeDb() {
    schema_ = nepal::testing::Figure3Schema();
    return std::make_unique<storage::GraphDb>(
        schema_, nepal::testing::MakeBackend(GetParam(), schema_));
  }

  nql::RpeNode Resolved(const storage::GraphDb& db, const std::string& text) {
    auto rpe = nql::ParseRpe(text);
    EXPECT_TRUE(rpe.ok()) << rpe.status();
    nql::RpeNode node = *rpe;
    EXPECT_TRUE(nql::ResolveRpe(db.schema(), 32, &node).ok());
    return node;
  }

  /// Builds VM -OnServer-> Host with the given populations; every VM is
  /// assigned round-robin to a host.
  std::unique_ptr<storage::GraphDb> Populated(int vms, int hosts) {
    auto db = MakeDb();
    std::vector<Uid> host_uids;
    for (int h = 0; h < hosts; ++h) {
      host_uids.push_back(
          *db->AddNode("Host", {{"name", Value("h" + std::to_string(h))}}));
    }
    for (int v = 0; v < vms; ++v) {
      Uid vm = *db->AddNode("VMWare",
                            {{"name", Value("vm" + std::to_string(v))}});
      *db->AddEdge("OnServer", vm, host_uids[v % hosts], {});
    }
    return db;
  }

  schema::SchemaPtr schema_;
};

// ---- Golden anchor flip (the heart of cost-based anchor selection) ----

TEST_P(OptimizerTest, AnchorFollowsDataDistribution) {
  const std::string query =
      "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()";
  {
    // Many VMs, few hosts: scanning hosts and walking backwards is cheaper.
    auto db = Populated(/*vms=*/60, /*hosts=*/3);
    nql::QueryEngine engine(db.get());
    auto explained = engine.Explain(query);
    ASSERT_TRUE(explained.ok()) << explained.status();
    EXPECT_NE(explained->find("anchor Host"), std::string::npos)
        << *explained;
  }
  {
    // Few VMs, many hosts: the flip side must flip the anchor.
    auto db = Populated(/*vms=*/3, /*hosts=*/60);
    nql::QueryEngine engine(db.get());
    auto explained = engine.Explain(query);
    ASSERT_TRUE(explained.ok()) << explained.status();
    EXPECT_NE(explained->find("anchor VM"), std::string::npos) << *explained;
  }
}

TEST_P(OptimizerTest, CostAnchorToggleRestoresScanOnlySelection) {
  // With the cost rule disabled, candidates are ranked by bare scan
  // estimates, so both plans exist and the optimizer totals match scans.
  auto db = Populated(60, 3);
  nql::RpeNode rpe = Resolved(*db, "VM()->OnServer()->Host()");
  nql::PlanOptions scan_only;
  scan_only.optimize_cost_anchor = false;
  auto plan = nql::PlanMatch(rpe, db->backend(), scan_only);
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->anchors.size(), 1u);
  EXPECT_EQ(plan->anchors[0].anchor.cls->name(), "Host");
  EXPECT_DOUBLE_EQ(plan->total_cost, 3.0);
  EXPECT_DOUBLE_EQ(plan->optimizer_cost, 3.0);
}

TEST_P(OptimizerTest, PlanCarriesEstimatesAndLogicalRendering) {
  auto db = Populated(60, 3);
  nql::RpeNode rpe = Resolved(*db, "VM()->OnServer()->Host()");
  auto plan = nql::PlanMatch(rpe, db->backend(), nql::PlanOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->logical.find("VM()"), std::string::npos) << plan->logical;
  ASSERT_EQ(plan->anchors.size(), 1u);
  EXPECT_GT(plan->anchors[0].anchor_cost, 0.0);
  EXPECT_GE(plan->anchors[0].est_rows, 0.0);
  // The full-model total includes traversal work on top of the anchor scan.
  EXPECT_GE(plan->optimizer_cost, plan->total_cost);
  // EXPLAIN output renders the logical plan and per-step row estimates.
  std::string text = plan->ToString();
  EXPECT_NE(text.find("logical"), std::string::npos) << text;
  EXPECT_NE(text.find("~"), std::string::npos) << text;
}

// ---- Dead-branch pruning ----

TEST_P(OptimizerTest, PrunesScheamInfeasibleAltBranch) {
  auto db = MakeDb();
  *db->AddNode("DNS", {});
  // OnServer targets Host, so OnServer()->VFC() can never match.
  nql::RpeNode rpe =
      Resolved(*db, "composed_of()->VFC()|OnServer()->VFC()");
  auto plan = nql::PlanMatch(rpe, db->backend(), nql::PlanOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->anchors.size(), 1u);
  bool logged = false;
  for (const std::string& r : plan->rewrites) {
    if (r.find("prune") != std::string::npos) logged = true;
  }
  EXPECT_TRUE(logged) << plan->ToString();
}

TEST_P(OptimizerTest, StaticallyEmptyRpeYieldsEmptyResultNotError) {
  auto db = MakeDb();
  Uid host = *db->AddNode("Host", {{"name", Value("h0")}});
  Uid vm = *db->AddNode("VMWare", {{"name", Value("vm0")}});
  *db->AddEdge("OnServer", vm, host, {});
  nql::RpeNode rpe = Resolved(*db, "OnServer()->VFC()");
  auto plan = nql::PlanMatch(rpe, db->backend(), nql::PlanOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->statically_empty);
  EXPECT_TRUE(plan->anchors.empty());
  // End to end: the engine evaluates it to zero rows without touching the
  // store.
  nql::QueryEngine engine(db.get());
  auto result = engine.Run(
      "Retrieve P From PATHS P Where P MATCHES OnServer()->VFC()");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
  // With pruning disabled the planner falls back to runtime evaluation —
  // same (empty) answer, no static shortcut.
  nql::PlanOptions no_prune;
  no_prune.optimize_prune = false;
  auto unpruned = nql::PlanMatch(rpe, db->backend(), no_prune);
  ASSERT_TRUE(unpruned.ok());
  EXPECT_FALSE(unpruned->statically_empty);
}

// ---- Predicate pushdown ----

TEST_P(OptimizerTest, PushdownPicksTheRarestEqualityByCounters) {
  auto db = MakeDb();
  for (int i = 0; i < 50; ++i) {
    *db->AddNode("VMWare", {{"name", Value("vm" + std::to_string(i))},
                            {"status", Value(i == 7 ? "Red" : "Green")}});
  }
  // status='Green' (49 rows) is listed first; name='vm7' (1 row) second.
  nql::RpeNode rpe = Resolved(*db, "VM(status='Green',name='vm7')");
  auto plan = nql::PlanMatch(rpe, db->backend(), nql::PlanOptions{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_EQ(plan->anchors.size(), 1u);
  const storage::CompiledAtom& anchor = plan->anchors[0].anchor;
  ASSERT_EQ(anchor.conditions.size(), 2u);
  ASSERT_GE(anchor.pushdown_condition, 0);
  EXPECT_EQ(anchor.conditions[static_cast<size_t>(anchor.pushdown_condition)]
                .field_name,
            "name");
  // The scan estimate reflects the pushed equality: exactly one row.
  EXPECT_DOUBLE_EQ(plan->total_cost, 1.0);
  // Toggled off, the first equality stays in the scan.
  nql::PlanOptions no_pushdown;
  no_pushdown.optimize_pushdown = false;
  auto unpushed = nql::PlanMatch(rpe, db->backend(), no_pushdown);
  ASSERT_TRUE(unpushed.ok());
  EXPECT_LE(unpushed->anchors[0].anchor.pushdown_condition, 0);
}

// ---- Cost-gated loop strategy ----

bool HasLoopStep(const nql::Program& program) {
  for (const nql::Step& step : program) {
    if (step.kind == nql::Step::Kind::kLoop) return true;
    for (const nql::Program& branch : step.branches) {
      if (HasLoopStep(branch)) return true;
    }
    if (HasLoopStep(step.body)) return true;
  }
  return false;
}

TEST_P(OptimizerTest, LoopGateUnrollsSmallFixedCountsOnly) {
  auto s = schema::ParseSchemaDsl(R"(
    node N : Node {}
    edge L : Edge {}
    allow L (N -> N);
  )");
  ASSERT_TRUE(s.ok()) << s.status();
  schema::SchemaPtr schema = *s;
  auto db = std::make_unique<storage::GraphDb>(
      schema, nepal::testing::MakeBackend(GetParam(), schema));
  std::vector<Uid> nodes;
  for (int i = 0; i < 10; ++i) nodes.push_back(*db->AddNode("N", {}));
  // Out-degree 4 everywhere: per-iteration fan-out estimate = 4.
  for (int i = 0; i < 10; ++i) {
    for (int k = 1; k <= 4; ++k) {
      *db->AddEdge("L", nodes[static_cast<size_t>(i)],
                   nodes[static_cast<size_t>((i + k) % 10)], {});
    }
  }
  auto compile = [&](const std::string& text) {
    auto rpe = nql::ParseRpe(text);
    EXPECT_TRUE(rpe.ok());
    nql::RpeNode node = *rpe;
    EXPECT_TRUE(nql::ResolveRpe(*schema, 32, &node).ok());
    return nql::CompileSeededProgram(node, db->backend(), nql::PlanOptions{},
                                     storage::TimeView::Current(), -1);
  };
  // 4^2 = 16 <= 4096: unrolled inline, no Loop operator.
  EXPECT_FALSE(HasLoopStep(compile("[L()]{2,2}")));
  // 4^8 = 65536 > 4096: the ExtendBlock delegation stays.
  EXPECT_TRUE(HasLoopStep(compile("[L()]{8,8}")));
  // Variable-count repetitions always keep the Loop operator.
  EXPECT_TRUE(HasLoopStep(compile("[L()]{1,3}")));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, OptimizerTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
