// Tests for the regular-path automaton: saturating atom counts, the
// unbounded-repetition sentinel, NFA construction shapes, and Kleene-star
// product traversal on a cyclic graph — on both backends, at parallelism
// 1 and N, checked against the bounded legacy-loop oracle.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "nepal/nfa.h"
#include "nepal/parser.h"
#include "nepal/rpe.h"
#include "tests/testutil.h"

namespace nepal::nql {
namespace {

using nepal::testing::BackendKind;
using nepal::testing::Figure3Schema;
using nepal::testing::MakeTinyNetwork;
using nepal::testing::TinyNetwork;

RpeNode MustParseRpe(const std::string& text) {
  auto r = ParseRpe(text);
  EXPECT_TRUE(r.ok()) << r.status() << "\nrpe: " << text;
  return r.ok() ? *r : RpeNode{};
}

RpeNode MustResolve(const std::string& text, int max_repetition = 32) {
  // Static: resolved atoms hold ClassDef pointers into this schema.
  static const schema::SchemaPtr schema = Figure3Schema();
  RpeNode rpe = Normalize(MustParseRpe(text));
  Status st = ResolveRpe(*schema, max_repetition, &rpe);
  EXPECT_TRUE(st.ok()) << st << "\nrpe: " << text;
  return rpe;
}

// ---- MinAtoms / MaxAtoms saturation (regression: these used to overflow
// int on nested large repetitions, which is signed-overflow UB) ----

TEST(RpeAtomCountsTest, NestedLargeRepetitionsSaturate) {
  // 32^8 atoms is far beyond INT_MAX; the counts must clamp, not wrap.
  RpeNode rpe = RpeNode::Atom("A");
  for (int i = 0; i < 8; ++i) rpe = RpeNode::Rep(std::move(rpe), 32, 32);
  EXPECT_EQ(MaxAtoms(rpe), kUnboundedRep);
  EXPECT_EQ(MinAtoms(rpe), kUnboundedRep);

  // A sequence of saturated branches stays saturated.
  RpeNode seq = RpeNode::Seq({rpe, RpeNode::Atom("B")});
  EXPECT_EQ(MaxAtoms(seq), kUnboundedRep);
  EXPECT_EQ(MinAtoms(seq), kUnboundedRep);
}

TEST(RpeAtomCountsTest, LargeButBoundedCountsAreExact) {
  RpeNode rpe = RpeNode::Rep(RpeNode::Atom("A"), 1000, 20000);
  EXPECT_EQ(MinAtoms(rpe), 1000);
  EXPECT_EQ(MaxAtoms(rpe), 20000);
}

TEST(RpeAtomCountsTest, UnboundedRepUsesSentinel) {
  RpeNode star = RpeNode::Rep(RpeNode::Atom("A"), 0, kUnboundedRep);
  EXPECT_EQ(MinAtoms(star), 0);
  EXPECT_EQ(MaxAtoms(star), kUnboundedRep);

  RpeNode plus = RpeNode::Rep(RpeNode::Atom("A"), 1, kUnboundedRep);
  EXPECT_EQ(MinAtoms(plus), 1);
  EXPECT_EQ(MaxAtoms(plus), kUnboundedRep);
}

// ---- Unbounded repetitions and the length limit ----

TEST(UnboundedRepTest, ExemptFromLengthLimit) {
  // {1,6} trips a max_repetition of 4; the open-ended forms do not (the
  // automaton bounds them dynamically).
  RpeNode bounded = Normalize(MustParseRpe("[Connects()]{1,6}"));
  schema::SchemaPtr schema = Figure3Schema();
  EXPECT_FALSE(ResolveRpe(*schema, 4, &bounded).ok());

  for (const char* text : {"[Connects()]*", "[Connects()]+",
                           "[Connects()]{2,}"}) {
    RpeNode open = Normalize(MustParseRpe(text));
    Status st = ResolveRpe(*schema, 4, &open);
    EXPECT_TRUE(st.ok()) << st << "\nrpe: " << text;
  }
}

// ---- NFA construction ----

TEST(NfaBuildTest, SingleAtom) {
  Nfa nfa = BuildNfa(MustResolve("Connects()"));
  EXPECT_EQ(nfa.num_states(), 2u);
  EXPECT_EQ(nfa.num_transitions(), 1u);
  EXPECT_FALSE(nfa.accepts_empty());
  EXPECT_TRUE(nfa.accept[1]);
}

TEST(NfaBuildTest, KleeneStarIsASelfLoop) {
  Nfa nfa = BuildNfa(MustResolve("[Connects()]*"));
  // start (accepting: zero iterations) plus one looping state.
  ASSERT_EQ(nfa.num_states(), 2u);
  EXPECT_TRUE(nfa.accepts_empty());
  EXPECT_TRUE(nfa.accept[1]);
  ASSERT_EQ(nfa.states[1].size(), 1u);
  EXPECT_EQ(nfa.states[1][0].target, 1);  // the Kleene cycle
}

TEST(NfaBuildTest, PlusRequiresOneIteration) {
  Nfa nfa = BuildNfa(MustResolve("[Connects()]+"));
  EXPECT_FALSE(nfa.accepts_empty());
  ASSERT_EQ(nfa.num_states(), 3u);
  EXPECT_FALSE(nfa.accept[0]);
  EXPECT_TRUE(nfa.accept[1]);
  EXPECT_TRUE(nfa.accept[2]);
}

TEST(NfaBuildTest, BoundedRepIsADag) {
  // {2,4}: two mandatory copies then two optional ones; each copy's end is
  // a distinct state, so iteration count is encoded in the state id.
  Nfa nfa = BuildNfa(MustResolve("[Connects()]{2,4}"));
  ASSERT_EQ(nfa.num_states(), 5u);
  EXPECT_FALSE(nfa.accepts_empty());
  EXPECT_FALSE(nfa.accept[1]);
  EXPECT_TRUE(nfa.accept[2]);
  EXPECT_TRUE(nfa.accept[3]);
  EXPECT_TRUE(nfa.accept[4]);
  // A DAG: no state reaches itself.
  for (size_t s = 0; s < nfa.num_states(); ++s) {
    for (const NfaTransition& tr : nfa.states[s]) {
      EXPECT_NE(tr.target, static_cast<int>(s));
    }
  }
}

TEST(NfaBuildTest, AlternationBody) {
  Nfa nfa = BuildNfa(MustResolve("[Connects()|VirtualConnects()]*"));
  EXPECT_TRUE(nfa.accepts_empty());
  // Start plus one state per alternative's landing point; every state can
  // take either branch again (2 transitions each).
  EXPECT_EQ(nfa.num_states(), 3u);
  EXPECT_EQ(nfa.num_transitions(), 6u);
}

TEST(NfaBuildTest, ReverseKeepsLanguageShape) {
  // Reversed star still recognizes Connects* (the construction does not
  // minimize, so only language-level shape is asserted).
  Nfa star = ReverseNfa(BuildNfa(MustResolve("[Connects()]*")));
  EXPECT_TRUE(star.accepts_empty());
  for (const auto& out : star.states) {
    for (const NfaTransition& tr : out) {
      EXPECT_EQ(tr.atom.cls->name(), "Connects");
    }
  }

  // Reversing an asymmetric sequence flips which atom leaves the start.
  Nfa seq = BuildNfa(MustResolve("Host()->Switch()"));
  Nfa rev = ReverseNfa(seq);
  EXPECT_EQ(rev.num_states(), seq.num_states());
  EXPECT_EQ(rev.num_transitions(), seq.num_transitions());
  ASSERT_FALSE(seq.states[0].empty());
  ASSERT_FALSE(rev.states[0].empty());
  EXPECT_EQ(seq.states[0][0].atom.cls->name(), "Host");
  EXPECT_EQ(rev.states[0][0].atom.cls->name(), "Switch");
}

// ---- Product traversal on a cyclic graph ----

// TinyNetwork's Connects edges run both ways (host1 <-> sw1 <-> sw2 <->
// host2, sw1 <-> rt1), so the underlay is cyclic; only the simple-path
// rule (no repeated elements) makes Kleene-star traversal finite.
class KleeneStarTest
    : public ::testing::TestWithParam<std::tuple<BackendKind, int>> {
 protected:
  void SetUp() override {
    net_ = MakeTinyNetwork(std::get<0>(GetParam()));
    nql::EngineOptions options;
    options.plan.parallelism = std::get<1>(GetParam());
    engine_ = std::make_unique<nql::QueryEngine>(net_.db.get(), options);
  }

  std::multiset<std::string> Paths(const std::string& rpe) {
    auto result = engine_->Run(
        "Retrieve P From PATHS P Where P MATCHES " + rpe);
    EXPECT_TRUE(result.ok()) << result.status() << "\nrpe: " << rpe;
    std::multiset<std::string> out;
    if (!result.ok()) return out;
    for (const auto& row : result->rows) {
      out.insert(row.paths[0].ToString());
    }
    return out;
  }

  TinyNetwork net_;
  std::unique_ptr<nql::QueryEngine> engine_;
};

TEST_P(KleeneStarTest, StarTerminatesAndMatchesBoundedOracle) {
  // The five simple Connects-paths out of host1: itself, sw1, sw1-sw2,
  // sw1-rt1, sw1-sw2-host2.
  auto star = Paths("Host(name='host1')->[Connects()->Node()]*");
  EXPECT_EQ(star.size(), 5u);
  // {0,6} covers every simple path in this graph, so the legacy loop
  // (default strategy) is an exact oracle for the automaton.
  auto bounded = Paths("Host(name='host1')->[Connects()->Node()]{0,6}");
  EXPECT_EQ(star, bounded);
}

TEST_P(KleeneStarTest, PlusDropsTheEmptyIteration) {
  auto plus = Paths("Host(name='host1')->[Connects()->Node()]+");
  EXPECT_EQ(plus.size(), 4u);
  auto bounded = Paths("Host(name='host1')->[Connects()->Node()]{1,6}");
  EXPECT_EQ(plus, bounded);
}

TEST_P(KleeneStarTest, OpenLowerBoundForm) {
  auto two_plus = Paths("Host(name='host1')->[Connects()->Node()]{2,}");
  auto bounded = Paths("Host(name='host1')->[Connects()->Node()]{2,6}");
  EXPECT_EQ(two_plus, bounded);
  EXPECT_EQ(two_plus.size(), 3u);  // sw1-sw2, sw1-rt1, sw1-sw2-host2
}

TEST_P(KleeneStarTest, BareEdgeStarMaterializesImplicitNodes) {
  // Edge-after-edge concatenation materializes the implicit node between
  // iterations, so [Connects()]* must reach exactly the same endpoints.
  auto explicit_nodes = Paths("Host(name='host1')->[Connects()->Node()]*");
  auto implicit_nodes = Paths("Host(name='host1')->[Connects()]*");
  EXPECT_EQ(explicit_nodes, implicit_nodes);
}

TEST_P(KleeneStarTest, StarOverVerticalLayers) {
  // Reachability down the hosting chain: vnf1 composed_of vfc{1,2}
  // hosted_on vm{1,2} OnServer host{1,2} — plus the bare vnf1 itself.
  auto down = Paths("VNF(name='vnf1')->[Vertical()->Node()]*");
  EXPECT_EQ(down.size(), 7u);
  auto bounded = Paths("VNF(name='vnf1')->[Vertical()->Node()]{0,4}");
  EXPECT_EQ(down, bounded);
}

TEST_P(KleeneStarTest, ExplainPrintsTheAutomaton) {
  auto result = engine_->Run(
      "EXPLAIN Retrieve P From PATHS P Where P MATCHES "
      "Host(name='host1')->[Connects()->Node()]*");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(result->explain_text.find("Automaton*"), std::string::npos)
      << result->explain_text;
  EXPECT_NE(result->explain_text.find("state 0 [start]"), std::string::npos)
      << result->explain_text;
}

INSTANTIATE_TEST_SUITE_P(
    Backends, KleeneStarTest,
    ::testing::Combine(::testing::Values(BackendKind::kGraphStore,
                                         BackendKind::kRelational),
                       ::testing::Values(1, 4)),
    [](const ::testing::TestParamInfo<KleeneStarTest::ParamType>& info) {
      return nepal::testing::BackendName(std::get<0>(info.param)) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace nepal::nql
