// Group-commit batch ingest and snapshot reads: GraphDb::ApplyBatch must
// be byte-identical to the equivalent single applies (queries, stats, WAL
// replay) on both backends, a mid-batch validation failure must leave no
// partial state, epoch-pinned snapshot reads must agree with locked reads,
// and the WAL's kInterval deadline flusher must sync an idle tail.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "obs/metrics.h"
#include "persist/durable_store.h"
#include "persist/wal.h"
#include "persist/wal_format.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

namespace fs = std::filesystem;
using nepal::testing::BackendKind;
using persist::DurableOptions;
using persist::DurableStore;
using persist::FsyncPolicy;
using storage::Mutation;

Timestamp Ts(const char* s) {
  auto r = ParseTimestamp(s);
  EXPECT_TRUE(r.ok());
  return *r;
}

constexpr const char* kT0 = "2017-03-01 08:00:00";
constexpr const char* kT1 = "2017-03-01 09:00:00";
constexpr const char* kT2 = "2017-03-01 10:00:00";
constexpr const char* kT3 = "2017-03-01 11:00:00";

std::string FreshDir(const std::string& name) {
  std::string unique = "nepal_batch_" + name;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    unique += "_";
    unique += info->name();
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
  }
  fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory(BackendKind kind) {
  return [kind](schema::SchemaPtr s) {
    return nepal::testing::MakeBackend(kind, std::move(s));
  };
}

/// The workload both the single-op and the batched ingest perform: a VNF
/// chain built at T0, a placement migration at T1, a status update at T2
/// and a cascading node removal at T3.
struct WorkloadUids {
  Uid vnf, vfc, vm, host1, host2, placement1, placement2;
};

void IngestSingly(storage::GraphDb& db, WorkloadUids* u) {
  ASSERT_TRUE(db.SetTime(Ts(kT0)).ok());
  u->vnf = *db.AddNode("DNS", {{"name", Value("vnf")},
                               {"vnf_type", Value("dns")}});
  u->vfc = *db.AddNode("VFC", {{"name", Value("vfc")}});
  u->vm = *db.AddNode("VMWare", {{"name", Value("vm")},
                                 {"status", Value("Green")}});
  u->host1 = *db.AddNode("Host", {{"name", Value("host1")},
                                  {"serial", Value("sn-1")}});
  u->host2 = *db.AddNode("Host", {{"name", Value("host2")},
                                  {"serial", Value("sn-2")}});
  ASSERT_TRUE(db.AddEdge("composed_of", u->vnf, u->vfc,
                         {{"name", Value("c1")}}).ok());
  ASSERT_TRUE(db.AddEdge("hosted_on", u->vfc, u->vm,
                         {{"name", Value("h1")}}).ok());
  u->placement1 = *db.AddEdge("OnServer", u->vm, u->host1,
                              {{"name", Value("p1")}});

  ASSERT_TRUE(db.SetTime(Ts(kT1)).ok());
  ASSERT_TRUE(db.RemoveElement(u->placement1).ok());
  u->placement2 = *db.AddEdge("OnServer", u->vm, u->host2,
                              {{"name", Value("p2")}});

  ASSERT_TRUE(db.SetTime(Ts(kT2)).ok());
  ASSERT_TRUE(db.UpdateElement(u->vm, {{"status", Value("Red")}}).ok());

  ASSERT_TRUE(db.SetTime(Ts(kT3)).ok());
  ASSERT_TRUE(db.RemoveElement(u->host1).ok());
}

void IngestBatched(storage::GraphDb& db, WorkloadUids* u) {
  // Batch 1: the T0 build-out. Edges reference nodes added by the same
  // batch via the uids assigned during the batch's apply phase — but the
  // caller does not know them yet, so the build is split where a later
  // mutation needs an earlier one's uid.
  std::vector<Mutation> nodes;
  nodes.push_back(Mutation::SetTime(Ts(kT0)));
  nodes.push_back(Mutation::AddNode("DNS", {{"name", Value("vnf")},
                                            {"vnf_type", Value("dns")}}));
  nodes.push_back(Mutation::AddNode("VFC", {{"name", Value("vfc")}}));
  nodes.push_back(Mutation::AddNode("VMWare", {{"name", Value("vm")},
                                               {"status", Value("Green")}}));
  nodes.push_back(Mutation::AddNode("Host", {{"name", Value("host1")},
                                             {"serial", Value("sn-1")}}));
  nodes.push_back(Mutation::AddNode("Host", {{"name", Value("host2")},
                                             {"serial", Value("sn-2")}}));
  ASSERT_TRUE(db.ApplyBatch(nodes).ok());
  u->vnf = nodes[1].uid;
  u->vfc = nodes[2].uid;
  u->vm = nodes[3].uid;
  u->host1 = nodes[4].uid;
  u->host2 = nodes[5].uid;

  std::vector<Mutation> edges;
  edges.push_back(Mutation::AddEdge("composed_of", u->vnf, u->vfc,
                                    {{"name", Value("c1")}}));
  edges.push_back(Mutation::AddEdge("hosted_on", u->vfc, u->vm,
                                    {{"name", Value("h1")}}));
  edges.push_back(Mutation::AddEdge("OnServer", u->vm, u->host1,
                                    {{"name", Value("p1")}}));
  ASSERT_TRUE(db.ApplyBatch(edges).ok());
  u->placement1 = edges[2].uid;

  // Batch 2: the migration — remove and re-add under one commit.
  std::vector<Mutation> migrate;
  migrate.push_back(Mutation::SetTime(Ts(kT1)));
  migrate.push_back(Mutation::Remove(u->placement1));
  migrate.push_back(Mutation::AddEdge("OnServer", u->vm, u->host2,
                                      {{"name", Value("p2")}}));
  ASSERT_TRUE(db.ApplyBatch(migrate).ok());
  u->placement2 = migrate[2].uid;

  // Batch 3: update + cascade delete, clock advancing inside the batch.
  std::vector<Mutation> tail;
  tail.push_back(Mutation::SetTime(Ts(kT2)));
  tail.push_back(Mutation::Update(u->vm, {{"status", Value("Red")}}));
  tail.push_back(Mutation::SetTime(Ts(kT3)));
  tail.push_back(Mutation::Remove(u->host1));
  ASSERT_TRUE(db.ApplyBatch(tail).ok());
}

const std::vector<std::string>& ObservationQueries() {
  static const std::vector<std::string> queries = {
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()",
      "Retrieve P From PATHS P Where P MATCHES VM(status='Red')",
      "AT '" + std::string(kT0) +
          "' Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host()",
      "AT '" + std::string(kT0) + "' : '" + std::string(kT3) +
          "' Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host()",
  };
  return queries;
}

std::string Observe(storage::GraphDb& db) {
  nql::QueryEngine engine(&db);
  std::string out;
  for (const std::string& q : ObservationQueries()) {
    auto result = engine.Run(q);
    out += "== " + q + "\n";
    out += result.ok() ? result->ToString(/*max_rows=*/100000)
                       : result.status().ToString();
    out += "\n";
  }
  return out;
}

class BatchTest : public ::testing::TestWithParam<BackendKind> {};

// ---- Tentpole: ApplyBatch == N single applies, byte for byte ----

TEST_P(BatchTest, ApplyBatchMatchesSingleAppliesByteForByte) {
  const std::string dir_single = FreshDir("single");
  const std::string dir_batch = FreshDir("batch");

  WorkloadUids single_uids{}, batch_uids{};
  std::string single_obs, batch_obs, single_stats, batch_stats;
  {
    auto store = DurableStore::Open(dir_single,
                                    nepal::testing::Figure3Schema(),
                                    Factory(GetParam()));
    ASSERT_TRUE(store.ok()) << store.status();
    IngestSingly((*store)->db(), &single_uids);
    single_obs = Observe((*store)->db());
    single_stats = (*store)->db().backend().stats().ToString();
  }
  {
    auto store = DurableStore::Open(dir_batch,
                                    nepal::testing::Figure3Schema(),
                                    Factory(GetParam()));
    ASSERT_TRUE(store.ok()) << store.status();
    IngestBatched((*store)->db(), &batch_uids);
    batch_obs = Observe((*store)->db());
    batch_stats = (*store)->db().backend().stats().ToString();
  }

  // Uid assignment, live results and maintained statistics agree.
  EXPECT_EQ(single_uids.vnf, batch_uids.vnf);
  EXPECT_EQ(single_uids.placement2, batch_uids.placement2);
  EXPECT_EQ(single_obs, batch_obs);
  EXPECT_EQ(single_stats, batch_stats);

  // The batched WAL (frame groups) replays byte-identically to the
  // single-append WAL on either execution backend: replay under backend X
  // must reproduce what live single-op ingestion on X answers (physical
  // row order is a per-backend property, so the baseline is per-backend).
  for (BackendKind kind :
       {BackendKind::kGraphStore, BackendKind::kRelational}) {
    schema::SchemaPtr schema = nepal::testing::Figure3Schema();
    storage::GraphDb live(schema, nepal::testing::MakeBackend(kind, schema));
    WorkloadUids live_uids{};
    IngestSingly(live, &live_uids);
    const std::string expected = Observe(live);
    for (const std::string& dir : {dir_single, dir_batch}) {
      auto reopened = DurableStore::Open(dir,
                                         nepal::testing::Figure3Schema(),
                                         Factory(kind));
      ASSERT_TRUE(reopened.ok())
          << nepal::testing::BackendName(kind) << ": " << reopened.status();
      EXPECT_EQ(Observe((*reopened)->db()), expected)
          << nepal::testing::BackendName(kind) << " replay of " << dir;
    }
  }
}

TEST_P(BatchTest, EmptyBatchIsANoOp) {
  auto net = nepal::testing::MakeTinyNetwork(GetParam());
  const uint64_t epoch = net.db->commit_epoch();
  std::vector<Mutation> empty;
  EXPECT_TRUE(net.db->ApplyBatch(empty).ok());
  EXPECT_EQ(net.db->commit_epoch(), epoch);
}

// ---- Satellite: mid-batch validation failure leaves zero state ----

TEST_P(BatchTest, MidBatchValidationFailureLeavesNoPartialState) {
  auto net = nepal::testing::MakeTinyNetwork(GetParam());
  auto& db = *net.db;
  const size_t nodes_before = db.node_count();
  const size_t edges_before = db.edge_count();
  const uint64_t epoch_before = db.commit_epoch();
  const std::string obs_before = Observe(db);

  // Mutation #2 references a nonexistent endpoint; #0 and #1 are valid and
  // must NOT be applied.
  std::vector<Mutation> batch;
  batch.push_back(Mutation::AddNode("Host", {{"name", Value("h-new")},
                                             {"serial", Value("sn-new")}}));
  batch.push_back(Mutation::AddNode("VMWare", {{"name", Value("v-new")}}));
  batch.push_back(Mutation::AddEdge("OnServer", /*source=*/999999,
                                    net.host1, {}));
  Status st = db.ApplyBatch(batch);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("batch mutation #2"), std::string::npos)
      << st.message();

  EXPECT_EQ(db.node_count(), nodes_before);
  EXPECT_EQ(db.edge_count(), edges_before);
  EXPECT_EQ(db.commit_epoch(), epoch_before);
  EXPECT_EQ(Observe(db), obs_before);

  // The uid allocator must not have moved: the next single add gets the
  // uid the failed batch would have assigned first.
  Uid probe_before = batch[0].uid;  // stays 0 — adds only write back on success
  EXPECT_EQ(probe_before, 0u);
  auto next = db.AddNode("Host", {{"name", Value("after")},
                                  {"serial", Value("sn-after")}});
  ASSERT_TRUE(next.ok());
  // Re-running the same failing batch still fails identically (no residue
  // in the unique index or elsewhere).
  std::vector<Mutation> again;
  again.push_back(Mutation::AddNode("Host", {{"name", Value("h-new")},
                                             {"serial", Value("sn-new")}}));
  again.push_back(Mutation::AddEdge("OnServer", /*source=*/999999,
                                    net.host1, {}));
  Status st2 = db.ApplyBatch(again);
  ASSERT_FALSE(st2.ok());
  EXPECT_NE(st2.message().find("batch mutation #1"), std::string::npos);
}

TEST_P(BatchTest, BatchDuplicateUniqueValidationCatchesIntraBatchClash) {
  auto net = nepal::testing::MakeTinyNetwork(GetParam());
  // "serial" is not unique in the Figure 3 schema; uid references are.
  // Removing the same element twice in one batch must fail validation on
  // the second occurrence (the overlay already saw it removed).
  std::vector<Mutation> batch;
  batch.push_back(Mutation::SetTime(net.db->Now() + 1000));
  batch.push_back(Mutation::Remove(net.rt1));
  batch.push_back(Mutation::Remove(net.rt1));
  const std::string obs_before = Observe(*net.db);
  Status st = net.db->ApplyBatch(batch);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("batch mutation #2"), std::string::npos)
      << st.message();
  EXPECT_EQ(Observe(*net.db), obs_before);
}

// ---- Tentpole: snapshot reads off the writer lock ----

TEST_P(BatchTest, SnapshotReadsMatchLockedReadsOnQuiescedStore) {
  auto net = nepal::testing::MakeTinyNetwork(GetParam());
  auto& db = *net.db;
  // Temporal history: a status update and a removal with advancing time,
  // so epoch patching has closed versions to reason about.
  ASSERT_TRUE(db.SetTime(db.Now() + 1000).ok());
  ASSERT_TRUE(db.UpdateElement(net.vm1, {{"status", Value("Red")}}).ok());
  ASSERT_TRUE(db.SetTime(db.Now() + 1000).ok());
  ASSERT_TRUE(db.RemoveElement(net.rt1).ok());

  nql::EngineOptions locked_opts;
  nql::EngineOptions snap_opts;
  snap_opts.snapshot_reads = true;
  nql::QueryEngine locked(&db, locked_opts);
  nql::QueryEngine snapshot(&db, snap_opts);

  const std::vector<std::string> queries = {
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()",
      // Equality predicate: the graphstore's locked read scans the eq
      // index, the epoch-pinned read scans chains sequentially — row sets
      // must agree, order may not, hence the sorted comparison below.
      "Retrieve P From PATHS P Where P MATCHES VM(status='Red')",
      "Retrieve P From PATHS P Where P MATCHES "
      "Host()->Connects()->Switch()",
      "Select count(P) From PATHS P Where P MATCHES Container()",
  };
  for (const std::string& q : queries) {
    auto locked_result = locked.Run(q);
    auto snap_result = snapshot.Run(q);
    ASSERT_TRUE(locked_result.ok()) << q << ": " << locked_result.status();
    ASSERT_TRUE(snap_result.ok()) << q << ": " << snap_result.status();
    ASSERT_EQ(locked_result->rows.size(), snap_result->rows.size()) << q;
    auto render = [](const nql::QueryResult& r) {
      std::vector<std::string> rows;
      for (const auto& row : r.rows) {
        std::string line;
        for (const auto& p : row.paths) line += p.ToString() + "|";
        for (const auto& v : row.values) line += v.ToString() + "|";
        rows.push_back(line);
      }
      std::sort(rows.begin(), rows.end());
      return rows;
    };
    EXPECT_EQ(render(*locked_result), render(*snap_result)) << q;
  }

  // EXPLAIN ANALYZE runs through the snapshot path (capture.lines stays
  // null) and must report the same per-operator row counts.
  const std::string q = "EXPLAIN ANALYZE " + queries[0];
  ASSERT_TRUE(locked.Run(q).ok());
  obs::QueryStats locked_stats = locked.LastQueryStats();
  ASSERT_TRUE(snapshot.Run(q).ok());
  obs::QueryStats snap_stats = snapshot.LastQueryStats();
  EXPECT_EQ(locked_stats.result_rows, snap_stats.result_rows);
}

TEST_P(BatchTest, SnapshotReadsDoNotSeeAConcurrentBatchPartially) {
  auto net = nepal::testing::MakeTinyNetwork(GetParam());
  auto& db = *net.db;
  nql::EngineOptions opts;
  opts.snapshot_reads = true;
  nql::QueryEngine engine(&db, opts);

  // Insert-only concurrent writer (same-instant add+remove would trip the
  // version store's "never existed" collapse; see EngineOptions doc).
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> batches{0};
  std::thread writer([&] {
    Timestamp t = db.Now();
    int i = 0;
    while (!stop.load(std::memory_order_acquire)) {
      t += 1000;
      std::vector<Mutation> nodes;
      nodes.push_back(Mutation::SetTime(t));
      nodes.push_back(Mutation::AddNode(
          "Host", {{"name", Value("bh" + std::to_string(i))},
                   {"serial", Value("bsn" + std::to_string(i))}}));
      nodes.push_back(Mutation::AddNode(
          "VMWare", {{"name", Value("bv" + std::to_string(i))}}));
      if (!db.ApplyBatch(nodes).ok()) break;
      // The placement edge references the uids assigned above; a reader's
      // snapshot sees the pair of nodes atomically, then the edge.
      std::vector<Mutation> edge;
      edge.push_back(
          Mutation::AddEdge("OnServer", nodes[2].uid, nodes[1].uid, {}));
      if (!db.ApplyBatch(edge).ok()) break;
      batches.fetch_add(1, std::memory_order_release);
      ++i;
    }
  });

  // Reader: every query runs while the writer holds / re-takes the write
  // path; snapshot mode must keep completing queries (nonzero QPS) and
  // every result must be internally consistent.
  size_t completed = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  while (std::chrono::steady_clock::now() < deadline) {
    auto r = engine.Run(
        "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()");
    ASSERT_TRUE(r.ok()) << r.status();
    ++completed;
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_GT(completed, 0u);
  EXPECT_GT(batches.load(std::memory_order_acquire), 0u)
      << "writer never committed — the reader starved the write path";
}

// ---- Satellite: WAL idle-tail deadline flush (in-process) ----

TEST(WalIdleTailTest, IntervalPolicySyncsDirtyTailWithinWindow) {
  const std::string dir = FreshDir("idle_tail");
  fs::create_directories(dir);
  auto writer = persist::WalWriter::Create(
      dir + "/wal-00000001.log", 1, 77,
      persist::WalWriterOptions{FsyncPolicy::kInterval,
                                /*fsync_interval_ms=*/30});
  ASSERT_TRUE(writer.ok()) << writer.status();

  obs::Counter* fsyncs =
      obs::MetricsRegistry::Global().GetCounter("nepal.wal.fsyncs");
  const uint64_t before = fsyncs->Value();
  // One append lands mid-window; no further append will ever arrive. The
  // bug this regresses: MaybeSync only synced on the NEXT append, so this
  // tail stayed dirty forever, violating the bounded-loss contract.
  ASSERT_TRUE((*writer)->Append("lone-record").ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (fsyncs->Value() == before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(fsyncs->Value(), before)
      << "deadline flusher never synced the idle tail";
  ASSERT_TRUE((*writer)->Close().ok());
}

TEST(WalIdleTailTest, AppendGroupFramesReadBackAsIndividualRecords) {
  const std::string dir = FreshDir("group_frames");
  fs::create_directories(dir);
  const std::string path = dir + "/wal-00000003.log";
  {
    auto writer = persist::WalWriter::Create(
        path, 3, 77, persist::WalWriterOptions{FsyncPolicy::kAlways, 0});
    ASSERT_TRUE(writer.ok()) << writer.status();
    std::vector<std::string> group;
    for (int i = 0; i < 4; ++i) {
      persist::WalRecord rec;
      rec.type = persist::WalRecordType::kRemove;
      rec.time = 100 + i;
      rec.uid = static_cast<Uid>(10 + i);
      std::string payload;
      persist::EncodeWalRecord(rec, &payload);
      group.push_back(std::move(payload));
    }
    ASSERT_TRUE((*writer)->AppendGroup(group).ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  // A group is indistinguishable from N single appends on disk.
  std::vector<Uid> seen;
  auto read = persist::ReadWalSegment(
      path, 3, 77, [&](const persist::WalRecord& rec) {
        seen.push_back(rec.uid);
        return Status::OK();
      });
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(seen, (std::vector<Uid>{10, 11, 12, 13}));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, BatchTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
