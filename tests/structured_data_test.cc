// Structured-data predicates: dotted paths into composite (data_type)
// members and map keys inside atom conditions — the feature the paper
// lists as under development, implemented here as an extension.

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;

class StructuredDataTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    auto s = schema::ParseSchemaDsl(R"(
      data_type mgmt_config { vrf: string; mtu: int; }
      data_type device_config { mgmt: mgmt_config; owner: string; }
      node Router : Node {
        config: device_config;
        tags: map<string>;
        table: list<int>;
      }
      edge link : Edge {}
      allow link (Router -> Router);
    )");
    ASSERT_TRUE(s.ok()) << s.status();
    schema_ = *s;
    db_ = std::make_unique<storage::GraphDb>(
        schema_, nepal::testing::MakeBackend(GetParam(), schema_));
    engine_ = std::make_unique<nql::QueryEngine>(db_.get());

    auto add = [&](const char* name, const char* vrf, int mtu,
                   const char* site) {
      Value config = Value::Map(
          {{"mgmt", Value::Map({{"vrf", Value(vrf)}, {"mtu", Value(mtu)}})},
           {"owner", Value("core")}});
      Value tags = Value::Map({{"site", Value(site)}});
      auto uid = db_->AddNode("Router", {{"name", Value(name)},
                                         {"config", config},
                                         {"tags", tags}});
      EXPECT_TRUE(uid.ok()) << uid.status();
      return *uid;
    };
    r1_ = add("r1", "oam", 1500, "atl");
    r2_ = add("r2", "oam", 9000, "dfw");
    r3_ = add("r3", "cust", 9000, "atl");
    ASSERT_TRUE(db_->AddEdge("link", r1_, r2_, {}).ok());
    ASSERT_TRUE(db_->AddEdge("link", r2_, r3_, {}).ok());
  }

  nql::QueryResult Run(const std::string& query) {
    auto result = engine_->Run(query);
    EXPECT_TRUE(result.ok()) << result.status() << "\nquery: " << query;
    return result.ok() ? *result : nql::QueryResult{};
  }

  schema::SchemaPtr schema_;
  std::unique_ptr<storage::GraphDb> db_;
  std::unique_ptr<nql::QueryEngine> engine_;
  Uid r1_, r2_, r3_;
};

TEST_P(StructuredDataTest, NestedCompositeMemberPredicate) {
  auto result = Run(
      "Select source(P).name From PATHS P "
      "Where P MATCHES Router(config.mgmt.vrf='oam')");
  EXPECT_EQ(result.rows.size(), 2u);
  result = Run(
      "Select source(P).name From PATHS P "
      "Where P MATCHES Router(config.mgmt.mtu>=9000)");
  EXPECT_EQ(result.rows.size(), 2u);
  result = Run(
      "Select source(P).name From PATHS P "
      "Where P MATCHES Router(config.mgmt.vrf='oam', config.mgmt.mtu<9000)");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].values[0], Value("r1"));
}

TEST_P(StructuredDataTest, MapKeyPredicate) {
  auto result = Run(
      "Select source(P).name From PATHS P "
      "Where P MATCHES Router(tags.site='atl')");
  EXPECT_EQ(result.rows.size(), 2u);
  // A key nobody carries matches nothing.
  result = Run(
      "Retrieve P From PATHS P Where P MATCHES Router(tags.rack='r9')");
  EXPECT_TRUE(result.rows.empty());
}

TEST_P(StructuredDataTest, StructuredPredicateInsidePathway) {
  auto result = Run(
      "Retrieve P From PATHS P Where P MATCHES "
      "Router(config.mgmt.vrf='oam')->link()->Router(tags.site='atl')");
  // r2 -> r3 (r2 has oam vrf, r3 sits in atl).
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].paths[0].source_uid(), r2_);
  EXPECT_EQ(result.rows[0].paths[0].target_uid(), r3_);
}

TEST_P(StructuredDataTest, MissingMemberComparesFalseNotError) {
  ASSERT_TRUE(db_->AddNode("Router", {{"name", Value("bare")}}).ok());
  auto result = Run(
      "Retrieve P From PATHS P Where P MATCHES Router(config.mgmt.mtu<99999)");
  EXPECT_EQ(result.rows.size(), 3u);  // `bare` has no config at all
}

TEST_P(StructuredDataTest, TypeErrorsAreRejectedAtResolve) {
  // Unknown member of a data type.
  auto bad = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES Router(config.mgmt.speed=1)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // Digging into a primitive.
  bad = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES Router(config.owner.x=1)");
  EXPECT_FALSE(bad.ok());
  // List elements are not addressable.
  bad = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES Router(table.first=1)");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsupported);
  // Whole-composite comparison is still unsupported.
  bad = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES Router(config='x')");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kUnsupported);
  // Literal type mismatch at the end of the path.
  bad = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES Router(config.mgmt.mtu='x')");
  EXPECT_FALSE(bad.ok());
  // id has no members.
  bad = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES Router(id.x=1)");
  EXPECT_FALSE(bad.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, StructuredDataTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
