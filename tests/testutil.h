// Shared test fixtures: the Figure-3 style schema and a small deterministic
// network instance, parameterized over both execution backends.

#ifndef NEPAL_TESTS_TESTUTIL_H_
#define NEPAL_TESTS_TESTUTIL_H_

#include <memory>
#include <string>

#include "graphstore/graph_store.h"
#include "relational/relational_store.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace nepal::testing {

enum class BackendKind { kGraphStore, kRelational };

inline std::string BackendName(BackendKind kind) {
  return kind == BackendKind::kGraphStore ? "graphstore" : "relational";
}

inline std::unique_ptr<storage::StorageBackend> MakeBackend(
    BackendKind kind, schema::SchemaPtr schema) {
  if (kind == BackendKind::kGraphStore) {
    return std::make_unique<graphstore::GraphStore>(std::move(schema));
  }
  return std::make_unique<relational::RelationalStore>(std::move(schema));
}

/// The simple underlay/overlay schema of the paper's Figure 3.
inline const char* kFigure3SchemaDsl = R"(
data_type routingTableEntry {
  address: ip;
  mask: int;
  interface: string;
}

node Service : Node {}
node VNF : Node { vnf_type: string; }
node DNS : VNF {}
node Firewall : VNF {}
node VFC : Node {}
node Container : Node { status: string; }
node VM : Container {}
node VMWare : VM {}
node OnMetal : VM {}
node Docker : Container {}
node Host : Node { serial: string; }
node Switch : Node {}
node Router : Node { routingTable: list<routingTableEntry>; }
node VirtualNetwork : Node {}
node VirtualRouter : Node {}

edge Vertical : Edge {}
edge composed_of : Vertical {}
edge hosted_on : Vertical {}
edge OnVM : hosted_on {}
edge OnServer : hosted_on {}
edge ConnectedTo : Edge {}
edge Connects : ConnectedTo { bandwidth: int; }
edge VirtualConnects : ConnectedTo { ip_address: ip; }

allow composed_of (VNF -> VFC);
allow hosted_on (VFC -> Container);
allow OnServer (Container -> Host);
allow Connects (Host -> Switch);
allow Connects (Switch -> Host);
allow Connects (Switch -> Switch);
allow Connects (Switch -> Router);
allow Connects (Router -> Switch);
allow Connects (Router -> Router);
allow VirtualConnects (VM -> VirtualNetwork);
allow VirtualConnects (VirtualNetwork -> VM);
allow VirtualConnects (VirtualNetwork -> VirtualRouter);
allow VirtualConnects (VirtualRouter -> VirtualNetwork);
)";

inline schema::SchemaPtr Figure3Schema() {
  auto result = schema::ParseSchemaDsl(kFigure3SchemaDsl);
  // Tests assert on this; fail loudly here if the DSL regresses.
  if (!result.ok()) {
    fprintf(stderr, "Figure3Schema: %s\n", result.status().ToString().c_str());
    abort();
  }
  return *result;
}

/// A tiny deterministic deployment:
///
///   vnf1(DNS)  -composed_of-> vfc1 -hosted_on-> vm1(VMWare) -OnServer-> host1
///              -composed_of-> vfc2 -hosted_on-> vm2(OnMetal) -OnServer-> host2
///   vnf2(Firewall) -composed_of-> vfc3 -hosted_on-> vm3(VMWare) -OnServer-> host2
///   host1 <-> sw1 <-> sw2 <-> host2 (Connects both ways), sw1 <-> rt1
///   vm1 <-> vnet1 <-> vrt1 <-> vnet2 <-> vm2, vm3 <-> vnet2
struct TinyNetwork {
  std::unique_ptr<storage::GraphDb> db;
  Uid vnf1, vnf2, vfc1, vfc2, vfc3;
  Uid vm1, vm2, vm3;
  Uid host1, host2, sw1, sw2, rt1;
  Uid vnet1, vnet2, vrt1;
};

inline TinyNetwork MakeTinyNetwork(BackendKind kind) {
  schema::SchemaPtr schema = Figure3Schema();
  TinyNetwork net;
  net.db = std::make_unique<storage::GraphDb>(schema,
                                              MakeBackend(kind, schema));
  auto& db = *net.db;
  auto node = [&](const char* cls, const char* name) {
    auto r = db.AddNode(cls, {{"name", Value(name)}});
    if (!r.ok()) {
      fprintf(stderr, "AddNode(%s): %s\n", cls, r.status().ToString().c_str());
      abort();
    }
    return *r;
  };
  auto edge = [&](const char* cls, Uid s, Uid t) {
    auto r = db.AddEdge(cls, s, t, {});
    if (!r.ok()) {
      fprintf(stderr, "AddEdge(%s): %s\n", cls, r.status().ToString().c_str());
      abort();
    }
    return *r;
  };
  net.vnf1 = node("DNS", "vnf1");
  net.vnf2 = node("Firewall", "vnf2");
  net.vfc1 = node("VFC", "vfc1");
  net.vfc2 = node("VFC", "vfc2");
  net.vfc3 = node("VFC", "vfc3");
  net.vm1 = node("VMWare", "vm1");
  net.vm2 = node("OnMetal", "vm2");
  net.vm3 = node("VMWare", "vm3");
  net.host1 = node("Host", "host1");
  net.host2 = node("Host", "host2");
  net.sw1 = node("Switch", "sw1");
  net.sw2 = node("Switch", "sw2");
  net.rt1 = node("Router", "rt1");
  net.vnet1 = node("VirtualNetwork", "vnet1");
  net.vnet2 = node("VirtualNetwork", "vnet2");
  net.vrt1 = node("VirtualRouter", "vrt1");

  edge("composed_of", net.vnf1, net.vfc1);
  edge("composed_of", net.vnf1, net.vfc2);
  edge("composed_of", net.vnf2, net.vfc3);
  edge("hosted_on", net.vfc1, net.vm1);
  edge("hosted_on", net.vfc2, net.vm2);
  edge("hosted_on", net.vfc3, net.vm3);
  edge("OnServer", net.vm1, net.host1);
  edge("OnServer", net.vm2, net.host2);
  edge("OnServer", net.vm3, net.host2);

  auto both = [&](const char* cls, Uid a, Uid b) {
    edge(cls, a, b);
    edge(cls, b, a);
  };
  both("Connects", net.host1, net.sw1);
  both("Connects", net.sw1, net.sw2);
  both("Connects", net.sw2, net.host2);
  both("Connects", net.sw1, net.rt1);
  both("VirtualConnects", net.vm1, net.vnet1);
  both("VirtualConnects", net.vnet1, net.vrt1);
  both("VirtualConnects", net.vrt1, net.vnet2);
  both("VirtualConnects", net.vnet2, net.vm2);
  both("VirtualConnects", net.vm3, net.vnet2);
  return net;
}

}  // namespace nepal::testing

#endif  // NEPAL_TESTS_TESTUTIL_H_
