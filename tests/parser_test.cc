// Unit tests for the NQL parser, including every query from the paper
// (Sections 3.4, 4) verbatim or near-verbatim.

#include <gtest/gtest.h>

#include "nepal/parser.h"

namespace nepal::nql {
namespace {

Query MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status() << "\nquery: " << text;
  return q.ok() ? *q : Query{};
}

RpeNode MustParseRpe(const std::string& text) {
  auto r = ParseRpe(text);
  EXPECT_TRUE(r.ok()) << r.status() << "\nrpe: " << text;
  return r.ok() ? *r : RpeNode{};
}

// ---- RPE grammar ----

TEST(RpeParserTest, AtomForms) {
  RpeNode atom = MustParseRpe("VM()");
  EXPECT_EQ(atom.kind, RpeNode::Kind::kAtom);
  EXPECT_EQ(atom.class_name, "VM");
  EXPECT_TRUE(atom.raw_conditions.empty());

  atom = MustParseRpe("VM(status='Green', id=55, weight>=2.5)");
  ASSERT_EQ(atom.raw_conditions.size(), 3u);
  EXPECT_EQ(atom.raw_conditions[0].field, "status");
  EXPECT_EQ(atom.raw_conditions[0].value, Value("Green"));
  EXPECT_EQ(atom.raw_conditions[1].field, "id");
  EXPECT_EQ(atom.raw_conditions[2].op, storage::FieldCondition::Op::kGe);
}

TEST(RpeParserTest, QualifiedClassNames) {
  RpeNode atom = MustParseRpe("Vertical:HostedOn:OnVM()");
  EXPECT_EQ(atom.class_name, "Vertical:HostedOn:OnVM");
}

TEST(RpeParserTest, ConcatenationAndPrecedence) {
  // a->b|c->d parses as Alt(Seq(a,b), Seq(c,d)).
  RpeNode rpe = MustParseRpe("A()->B()|C()->D()");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kAlt);
  ASSERT_EQ(rpe.children.size(), 2u);
  EXPECT_EQ(rpe.children[0].kind, RpeNode::Kind::kSeq);
}

TEST(RpeParserTest, RepetitionSuffixForms) {
  // Brackets with the bound outside...
  RpeNode rpe = MustParseRpe("[HostedOn()]{1,6}");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.min_rep, 1);
  EXPECT_EQ(rpe.max_rep, 6);
  // ... with the bound inside (as in the paper's subquery example) ...
  rpe = MustParseRpe("[HostedOn(){1,5}]");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.max_rep, 5);
  // ... directly on an atom ...
  rpe = MustParseRpe("Vertical(){1,6}");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  // ... on a parenthesized alternation ...
  rpe = MustParseRpe("(VM(id=55)|Docker(id=66)){1,2}");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.children[0].kind, RpeNode::Kind::kAlt);
  // ... and the paper's occasional dash form {1-3}.
  rpe = MustParseRpe("[HostedOn()]{1-3}");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.max_rep, 3);
}

TEST(RpeParserTest, NormalizationFlattens) {
  RpeNode rpe = MustParseRpe("A()->(B()->C())->D()");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kSeq);
  EXPECT_EQ(rpe.children.size(), 4u);
  // {1,1} collapses.
  rpe = MustParseRpe("[A()]{1,1}");
  EXPECT_EQ(rpe.kind, RpeNode::Kind::kAtom);
}

TEST(RpeParserTest, MinMaxAtoms) {
  RpeNode rpe = MustParseRpe("A()->[B()]{0,3}->(C()|D()->E())");
  EXPECT_EQ(MinAtoms(rpe), 2);  // A + C
  EXPECT_EQ(MaxAtoms(rpe), 6);  // A + 3B + D + E
}

TEST(RpeParserTest, Errors) {
  EXPECT_FALSE(ParseRpe("").ok());
  EXPECT_FALSE(ParseRpe("VM(").ok());
  EXPECT_FALSE(ParseRpe("VM()->").ok());
  EXPECT_FALSE(ParseRpe("[VM()]{2}").ok());
  EXPECT_FALSE(ParseRpe("VM(status=)").ok());
  EXPECT_FALSE(ParseRpe("VM() extra").ok());
}

// ---- Unbounded repetition syntax (*, +, {i,}) ----

TEST(RpeParserTest, UnboundedRepetitionForms) {
  RpeNode rpe = MustParseRpe("[Connects()]*");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.min_rep, 0);
  EXPECT_EQ(rpe.max_rep, kUnboundedRep);

  rpe = MustParseRpe("[Connects()]+");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.min_rep, 1);
  EXPECT_EQ(rpe.max_rep, kUnboundedRep);

  rpe = MustParseRpe("[Connects()]{3,}");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.min_rep, 3);
  EXPECT_EQ(rpe.max_rep, kUnboundedRep);

  // Postfix operators bind to atoms and groups too.
  rpe = MustParseRpe("Connects()*");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.min_rep, 0);
  rpe = MustParseRpe("(Connects()|VirtualConnects())+");
  ASSERT_EQ(rpe.kind, RpeNode::Kind::kRep);
  EXPECT_EQ(rpe.children[0].kind, RpeNode::Kind::kAlt);
}

TEST(RpeParserTest, UnboundedRepetitionRoundTrips) {
  // parse -> ToString -> parse is a fixpoint for the canonical forms.
  for (const char* text :
       {"[Connects()]*", "[Connects()]+", "[Connects()]{3,}",
        "Host()->[Connects()]*->Switch()",
        "A()->[B()->C()]+->(D()|E())",
        "[HostedOn()]{1,6}"}) {
    RpeNode first = Normalize(MustParseRpe(text));
    std::string rendered = first.ToString();
    RpeNode second = Normalize(MustParseRpe(rendered));
    EXPECT_EQ(rendered, second.ToString()) << "input: " << text;
  }
  // The canonical renderings themselves.
  EXPECT_EQ(MustParseRpe("[Connects()]*").ToString(), "[Connects()]*");
  EXPECT_EQ(MustParseRpe("[Connects()]+").ToString(), "[Connects()]+");
  EXPECT_EQ(MustParseRpe("[Connects()]{2,}").ToString(), "[Connects()]{2,}");
  EXPECT_EQ(MustParseRpe("[Connects()]{2,5}").ToString(),
            "[Connects()]{2,5}");
}

TEST(RpeParserTest, RepetitionBoundErrors) {
  // min > max is rejected at parse time now, not at resolution.
  EXPECT_FALSE(ParseRpe("[VM()]{3,1}").ok());
  // {,} and {,5} have no minimum.
  EXPECT_FALSE(ParseRpe("[VM()]{,}").ok());
  EXPECT_FALSE(ParseRpe("[VM()]{,5}").ok());
  // Dangling or doubled postfix operators.
  EXPECT_FALSE(ParseRpe("*").ok());
  EXPECT_FALSE(ParseRpe("VM()**").ok());
  EXPECT_FALSE(ParseRpe("[VM()]{3,}*").ok());
}

// ---- Full queries from the paper ----

TEST(QueryParserTest, PaperRetrieveExample) {
  Query q = MustParse(
      "Retrieve P From PATHS P "
      "WHERE P MATCHES VNF()->VFC()->VM()->Host(id=23245)");
  EXPECT_FALSE(q.is_select);
  ASSERT_EQ(q.retrieve_vars.size(), 1u);
  EXPECT_EQ(q.retrieve_vars[0], "P");
  ASSERT_EQ(q.range_vars.size(), 1u);
  ASSERT_EQ(q.where.size(), 1u);
  EXPECT_EQ(q.where[0].kind, Predicate::Kind::kMatches);
}

TEST(QueryParserTest, PaperJoinExample) {
  Query q = MustParse(
      "Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
      "Where D1 MATCHES VNF(id=123)->Vertical(){1,6}->Host() "
      "And D2 MATCHES VNF(id=234)->Vertical(){1,6}->Host() "
      "And Phys MATCHES ConnectsTo(){1,8} "
      "And source(Phys)=target(D1) "
      "And target(Phys)=target(D2)");
  EXPECT_EQ(q.range_vars.size(), 3u);
  EXPECT_EQ(q.where.size(), 5u);
  EXPECT_EQ(q.where[3].kind, Predicate::Kind::kCompare);
  EXPECT_EQ(q.where[3].lhs.kind, PathExpr::Kind::kSource);
  EXPECT_EQ(q.where[3].lhs.var, "Phys");
  EXPECT_EQ(q.where[3].rhs.kind, PathExpr::Kind::kTarget);
}

TEST(QueryParserTest, PaperSubqueryExample) {
  Query q = MustParse(
      "Retrieve V From PATHS V "
      "Where V MATCHES VM() "
      "And NOT EXISTS( "
      "Retrieve P from PATHS P "
      "Where P MATCHES (VNF()|VFC())->[HostedOn(){1,5}]->VM() "
      "And target(V) = target(P))");
  ASSERT_EQ(q.where.size(), 2u);
  EXPECT_EQ(q.where[1].kind, Predicate::Kind::kExists);
  EXPECT_TRUE(q.where[1].negate_exists);
  ASSERT_NE(q.where[1].subquery, nullptr);
  EXPECT_EQ(q.where[1].subquery->where.size(), 2u);
}

TEST(QueryParserTest, PaperSelectExample) {
  Query q = MustParse(
      "Select source(V).name, source(V).id From PATHS V "
      "Where V MATCHES VM()");
  EXPECT_TRUE(q.is_select);
  ASSERT_EQ(q.select_items.size(), 2u);
  EXPECT_EQ(q.select_items[0].expr.kind, PathExpr::Kind::kSource);
  EXPECT_EQ(*q.select_items[0].expr.field, "name");
  EXPECT_EQ(*q.select_items[1].expr.field, "id");
}

TEST(QueryParserTest, PaperTimesliceExample) {
  Query q = MustParse(
      "AT '2017-02-15 10:00:00' "
      "Select source(P) From PATHS P "
      "Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245)");
  ASSERT_TRUE(q.at.has_value());
  EXPECT_FALSE(q.at->is_range());
  EXPECT_EQ(FormatTimestamp(q.at->start), "2017-02-15 10:00:00");
}

TEST(QueryParserTest, PaperPerVariableTimesExample) {
  Query q = MustParse(
      "Select source(P) From PATHS P(@'2017-02-15 10:00'), "
      "Q(@'2017-02-15 11:00') "
      "Where P MATCHES VNF()->[HostedOn()]{1,6}->Host(id=23245) "
      "And Q MATCHES VNF()->[HostedOn()]{1,6}->Host(id=34356) "
      "And source(P) = source(Q)");
  // The paper's figure elides the second PATHS keyword; both forms parse.
  ASSERT_EQ(q.range_vars.size(), 2u);
  EXPECT_EQ(q.range_vars[1].name, "Q");
  ASSERT_TRUE(q.range_vars[1].at.has_value());
}

TEST(QueryParserTest, PerVariableTimesCanonicalForm) {
  Query q = MustParse(
      "Select source(P) From PATHS P(@'2017-02-15 10:00'), "
      "PATHS Q(@'2017-02-15 11:00' : '2017-02-15 12:00') "
      "Where P MATCHES VNF() And Q MATCHES VNF()");
  ASSERT_EQ(q.range_vars.size(), 2u);
  ASSERT_TRUE(q.range_vars[0].at.has_value());
  EXPECT_FALSE(q.range_vars[0].at->is_range());
  ASSERT_TRUE(q.range_vars[1].at.has_value());
  EXPECT_TRUE(q.range_vars[1].at->is_range());
}

TEST(QueryParserTest, TimeRangeAndAggregations) {
  Query q = MustParse(
      "AT '2017-02-15 9:00' : '2017-02-15 11:00' "
      "When Exists Retrieve P From PATHS P Where P MATCHES VM()");
  EXPECT_TRUE(q.at->is_range());
  EXPECT_EQ(q.agg, TemporalAgg::kWhenExists);

  q = MustParse(
      "First Time When Exists Retrieve P From PATHS P Where P MATCHES VM()");
  EXPECT_EQ(q.agg, TemporalAgg::kFirstTime);
  q = MustParse(
      "Last Time When Exists Retrieve P From PATHS P Where P MATCHES VM()");
  EXPECT_EQ(q.agg, TemporalAgg::kLastTime);
}

TEST(QueryParserTest, AggregatesAndGroupBy) {
  Query q = MustParse(
      "Select source(P).name, count(P), count(distinct target(P)), "
      "min(target(P).id), sum(length(P)) "
      "From PATHS P Where P MATCHES VM()->Host() "
      "Group By source(P).name");
  ASSERT_EQ(q.select_items.size(), 5u);
  EXPECT_EQ(q.select_items[0].agg, SelectItem::Agg::kNone);
  EXPECT_EQ(q.select_items[1].agg, SelectItem::Agg::kCount);
  EXPECT_EQ(q.select_items[2].agg, SelectItem::Agg::kCountDistinct);
  EXPECT_EQ(q.select_items[3].agg, SelectItem::Agg::kMin);
  EXPECT_EQ(q.select_items[4].agg, SelectItem::Agg::kSum);
  ASSERT_EQ(q.group_by.size(), 1u);
  EXPECT_EQ(q.group_by[0].ToString(), "source(P).name");
}

TEST(QueryParserTest, AggregateErrors) {
  EXPECT_FALSE(ParseQuery("Select count(P From PATHS P "
                          "Where P MATCHES VM()")
                   .ok());
  EXPECT_FALSE(ParseQuery("Select count(P) From PATHS P "
                          "Where P MATCHES VM() Group By")
                   .ok());
}

TEST(QueryParserTest, FederationBinding) {
  Query q = MustParse(
      "Retrieve P From PATHS P In 'siteA', PATHS Q In 'siteB' "
      "Where P MATCHES VM() And Q MATCHES VM() "
      "And source(P).name = source(Q).name");
  ASSERT_EQ(q.range_vars.size(), 2u);
  EXPECT_EQ(*q.range_vars[0].source, "siteA");
  EXPECT_EQ(*q.range_vars[1].source, "siteB");
}

TEST(QueryParserTest, KeywordsAreCaseInsensitive) {
  MustParse("retrieve P from paths P where P matches VM()");
  MustParse("RETRIEVE P FROM PATHS P WHERE P MATCHES VM()");
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("Retrieve From PATHS P Where P MATCHES VM()").ok());
  EXPECT_FALSE(ParseQuery("Retrieve P Where P MATCHES VM()").ok());
  EXPECT_FALSE(ParseQuery("Retrieve P From PATHS P").ok());
  EXPECT_FALSE(
      ParseQuery("Retrieve P From PATHS P Where P MATCHES VM() trailing")
          .ok());
  EXPECT_FALSE(ParseQuery("AT 'garbage' Retrieve P From PATHS P "
                          "Where P MATCHES VM()")
                   .ok());
  EXPECT_FALSE(ParseQuery("Retrieve P From PATHS P Where source(P) < 3").ok());
}

}  // namespace
}  // namespace nepal::nql
