// Unit tests for the schema system: builder, inheritance, DSL parsing,
// allowed-edge rules, record validation, and the TOSCA-style data types.

#include <gtest/gtest.h>

#include "schema/dsl_parser.h"
#include "schema/record.h"
#include "schema/schema.h"

namespace nepal::schema {
namespace {

SchemaPtr Build(SchemaBuilder& b) {
  auto result = b.Build();
  EXPECT_TRUE(result.ok()) << result.status();
  return result.ok() ? *result : nullptr;
}

TEST(SchemaBuilderTest, RootsExistWithNameField) {
  SchemaBuilder b;
  SchemaPtr s = Build(b);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->node_root()->name(), "Node");
  EXPECT_EQ(s->edge_root()->name(), "Edge");
  EXPECT_EQ(s->node_root()->FieldIndex("name"), 0);
  EXPECT_TRUE(s->node_root()->is_root());
}

TEST(SchemaBuilderTest, InheritanceChainAndLayout) {
  SchemaBuilder b;
  b.NodeClass("Container").Field("status", ValueKind::kString);
  b.NodeClass("VM", "Container").Field("ip", ValueKind::kIp);
  b.NodeClass("VMWare", "VM");
  SchemaPtr s = Build(b);
  const ClassDef* vmware = s->FindClass("VMWare");
  ASSERT_NE(vmware, nullptr);
  EXPECT_EQ(vmware->label_path(), "Node:Container:VM:VMWare");
  EXPECT_EQ(vmware->depth(), 3);
  // Flattened layout: name (root), status, ip.
  EXPECT_EQ(vmware->FieldIndex("name"), 0);
  EXPECT_EQ(vmware->FieldIndex("status"), 1);
  EXPECT_EQ(vmware->FieldIndex("ip"), 2);
  EXPECT_EQ(vmware->inherited_field_count(), 3u);  // everything inherited
  EXPECT_TRUE(vmware->IsSubclassOf(s->FindClass("Container")));
  EXPECT_TRUE(vmware->IsSubclassOf(s->node_root()));
  EXPECT_FALSE(s->FindClass("Container")->IsSubclassOf(vmware));
}

TEST(SchemaBuilderTest, DeclarationOrderDoesNotMatter) {
  SchemaBuilder b;
  b.NodeClass("VMWare", "VM");  // parent declared later
  b.NodeClass("VM", "Container");
  b.NodeClass("Container");
  SchemaPtr s = Build(b);
  EXPECT_EQ(s->FindClass("VMWare")->depth(), 3);
}

TEST(SchemaBuilderTest, SubtreeIntervalsMatchSubclassOf) {
  SchemaBuilder b;
  b.NodeClass("A");
  b.NodeClass("B", "A");
  b.NodeClass("C", "A");
  b.NodeClass("D", "B");
  b.EdgeClass("X");
  SchemaPtr s = Build(b);
  for (const ClassDef* a : s->classes()) {
    for (const ClassDef* c : s->classes()) {
      if (a->kind() != c->kind()) continue;
      EXPECT_EQ(a->SubtreeContains(c), c->IsSubclassOf(a))
          << a->name() << " vs " << c->name();
    }
  }
}

TEST(SchemaBuilderTest, RejectsDuplicatesAndCycles) {
  {
    SchemaBuilder b;
    b.NodeClass("A");
    b.NodeClass("A");
    EXPECT_FALSE(b.Build().ok());
  }
  {
    SchemaBuilder b;
    b.NodeClass("A", "B");
    b.NodeClass("B", "A");
    EXPECT_FALSE(b.Build().ok());
  }
  {
    SchemaBuilder b;
    b.NodeClass("A", "Missing");
    EXPECT_FALSE(b.Build().ok());
  }
}

TEST(SchemaBuilderTest, RejectsNodeDerivingFromEdge) {
  SchemaBuilder b;
  b.NodeClass("A", "Edge");
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsFieldShadowing) {
  SchemaBuilder b;
  b.NodeClass("A").Field("x", ValueKind::kInt);
  b.NodeClass("B", "A").Field("x", ValueKind::kString);
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, RejectsCyclicDataTypes) {
  SchemaBuilder b;
  b.DataType("T1").Field("a", TypeRef::Composite("T2"));
  b.DataType("T2").Field("b", TypeRef::Composite("T1"));
  EXPECT_FALSE(b.Build().ok());
}

TEST(SchemaBuilderTest, AcyclicDataTypeCompositionOk) {
  SchemaBuilder b;
  b.DataType("Inner").Field("x", ValueKind::kInt);
  b.DataType("Outer").Field("in", TypeRef::Composite("Inner").InList());
  b.NodeClass("N").Field("data", TypeRef::Composite("Outer"));
  EXPECT_TRUE(b.Build().ok());
}

TEST(SchemaTest, LeastCommonAncestor) {
  SchemaBuilder b;
  b.NodeClass("A");
  b.NodeClass("B", "A");
  b.NodeClass("C", "A");
  b.NodeClass("D", "B");
  SchemaPtr s = Build(b);
  EXPECT_EQ(s->LeastCommonAncestor(s->FindClass("D"), s->FindClass("C")),
            s->FindClass("A"));
  EXPECT_EQ(s->LeastCommonAncestor(s->FindClass("D"), s->FindClass("B")),
            s->FindClass("B"));
  EXPECT_EQ(s->LeastCommonAncestor(s->FindClass("D"), s->node_root()),
            s->node_root());
}

TEST(SchemaTest, QualifiedNameLookup) {
  SchemaBuilder b;
  b.NodeClass("Container");
  b.NodeClass("VM", "Container");
  SchemaPtr s = Build(b);
  EXPECT_NE(s->FindClass("Container:VM"), nullptr);
  EXPECT_NE(s->FindClass("Node:Container:VM"), nullptr);
  EXPECT_EQ(s->FindClass("Edge:VM"), nullptr);  // wrong chain
  EXPECT_EQ(s->FindClass("Nope:VM"), nullptr);
}

TEST(SchemaTest, EdgeRulesRespectInheritance) {
  SchemaBuilder b;
  b.NodeClass("Container");
  b.NodeClass("VM", "Container");
  b.NodeClass("Host");
  b.EdgeClass("Vertical");
  b.EdgeClass("on_server", "Vertical");
  b.AllowEdge("on_server", "Container", "Host");
  SchemaPtr s = Build(b);
  // A subclass endpoint satisfies the rule.
  EXPECT_TRUE(s->EdgeAllowed(s->FindClass("on_server"), s->FindClass("VM"),
                             s->FindClass("Host")));
  // The parent edge class has no rule of its own.
  EXPECT_FALSE(s->EdgeAllowed(s->FindClass("Vertical"), s->FindClass("VM"),
                              s->FindClass("Host")));
  // Wrong target.
  EXPECT_FALSE(s->EdgeAllowed(s->FindClass("on_server"), s->FindClass("VM"),
                              s->FindClass("Container")));
}

// ---- DSL ----

TEST(DslTest, ParsesFullFeaturedSchema) {
  auto s = ParseSchemaDsl(R"(
    # a comment
    data_type rte { address: ip; mask: int; }
    node Router : Node { table: list<rte>; }  // trailing comment
    node Core : Router {}
    edge link : Edge { mtu: int required; }
    node Port : Node { label: string unique; }
    allow link (Router -> Router);
  )");
  ASSERT_TRUE(s.ok()) << s.status();
  const ClassDef* router = (*s)->FindClass("Router");
  ASSERT_NE(router, nullptr);
  int idx = router->FieldIndex("table");
  ASSERT_GE(idx, 0);
  EXPECT_EQ(router->fields()[static_cast<size_t>(idx)].type.ToString(),
            "list<rte>");
  const ClassDef* port = (*s)->FindClass("Port");
  EXPECT_TRUE(port->fields()[static_cast<size_t>(port->FieldIndex("label"))]
                  .unique);
  const ClassDef* link = (*s)->FindClass("link");
  EXPECT_TRUE(link->fields()[static_cast<size_t>(link->FieldIndex("mtu"))]
                  .required);
}

TEST(DslTest, ErrorsCarryLineNumbers) {
  auto s = ParseSchemaDsl("node A : Node {}\nnode B Node {}\n");
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.status().message().find("line 2"), std::string::npos)
      << s.status();
}

TEST(DslTest, RejectsUnknownType) {
  EXPECT_FALSE(ParseSchemaDsl("node A : Node { x: wobble; }").ok());
}

TEST(DslTest, RoundTripsThroughToDsl) {
  const char* dsl = R"(
    data_type rte { address: ip; }
    node Router : Node { table: list<rte>; }
    edge link : Edge {}
    allow link (Router -> Router);
  )";
  auto s1 = ParseSchemaDsl(dsl);
  ASSERT_TRUE(s1.ok());
  auto s2 = ParseSchemaDsl((*s1)->ToDsl());
  ASSERT_TRUE(s2.ok()) << s2.status() << "\n" << (*s1)->ToDsl();
  EXPECT_EQ((*s1)->ToDsl(), (*s2)->ToDsl());
}

// ---- Record validation ----

class RecordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto s = ParseSchemaDsl(R"(
      data_type rte { address: ip; mask: int; interface: string; }
      node Router : Node {
        table: list<rte>;
        uptime: double;
        tags: map<string>;
      }
    )");
    ASSERT_TRUE(s.ok()) << s.status();
    schema_ = *s;
    router_ = schema_->FindClass("Router");
  }
  SchemaPtr schema_;
  const ClassDef* router_;
};

TEST_F(RecordTest, AcceptsValidStructuredData) {
  Value entry = Value::Map({{"address", *Value::ParseIp("10.0.0.1")},
                            {"mask", Value(24)},
                            {"interface", Value("eth0")}});
  auto row = ValidateRecord(
      *schema_, *router_,
      {{"name", Value("r1")},
       {"table", Value::List({entry})},
       {"uptime", Value(3)},  // int promotes to double
       {"tags", Value::Map({{"site", Value("atl")}})}});
  ASSERT_TRUE(row.ok()) << row.status();
  EXPECT_EQ((*row).size(), router_->fields().size());
}

TEST_F(RecordTest, RejectsUnknownField) {
  auto row = ValidateRecord(*schema_, *router_, {{"wobble", Value(1)}});
  ASSERT_FALSE(row.ok());
  EXPECT_EQ(row.status().code(), StatusCode::kSchemaViolation);
}

TEST_F(RecordTest, RejectsWrongPrimitiveKind) {
  auto row = ValidateRecord(*schema_, *router_, {{"name", Value(5)}});
  EXPECT_FALSE(row.ok());
}

TEST_F(RecordTest, RejectsWrongContainerShape) {
  auto row = ValidateRecord(*schema_, *router_,
                            {{"table", Value::Map({{"x", Value(1)}})}});
  EXPECT_FALSE(row.ok());
}

TEST_F(RecordTest, RejectsUnknownCompositeMember) {
  Value bad_entry = Value::Map({{"addres", *Value::ParseIp("10.0.0.1")}});
  auto row = ValidateRecord(*schema_, *router_,
                            {{"table", Value::List({bad_entry})}});
  ASSERT_FALSE(row.ok());
  EXPECT_NE(row.status().message().find("addres"), std::string::npos);
}

TEST_F(RecordTest, RejectsWrongCompositeMemberType) {
  Value bad_entry = Value::Map({{"mask", Value("not an int")}});
  auto row = ValidateRecord(*schema_, *router_,
                            {{"table", Value::List({bad_entry})}});
  EXPECT_FALSE(row.ok());
}

TEST_F(RecordTest, UpdateValidation) {
  auto changes = ValidateUpdate(*schema_, *router_,
                                {{"uptime", Value(1.5)}});
  ASSERT_TRUE(changes.ok());
  ASSERT_EQ(changes->size(), 1u);
  EXPECT_EQ((*changes)[0].first, router_->FieldIndex("uptime"));
  EXPECT_FALSE(ValidateUpdate(*schema_, *router_, {{"zz", Value(1)}}).ok());
}

}  // namespace
}  // namespace nepal::schema
