// Parallel evaluation tests: the frontier-sharded executor must return the
// same pathway sets as the serial executor, the output must be
// deterministic across thread counts, and (regression for the dedup-order
// bug) a symmetric RPE must yield the identical canonical path set no
// matter which end the planner anchors.

#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "nepal/engine.h"
#include "nepal/plan.h"
#include "nepal/rpe.h"
#include "obs/metrics.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;

// ---- ThreadPool unit tests ----

TEST(ThreadPoolTest, RunsEveryTask) {
  common::ThreadPool pool(3);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 1000; ++i) {
    tasks.push_back([&count] { count.fetch_add(1); });
  }
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  common::ThreadPool pool(0);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 10; ++i) tasks.push_back([&count] { ++count; });
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, NestedBatchesComplete) {
  // RunBatch is re-entrant from worker threads (the caller help-steals), so
  // nested fan-out must not deadlock even with fewer workers than tasks.
  common::ThreadPool& pool = common::ThreadPool::Shared();
  std::atomic<int> count{0};
  std::vector<std::function<void()>> outer;
  for (int i = 0; i < 8; ++i) {
    outer.push_back([&pool, &count] {
      std::vector<std::function<void()>> inner;
      for (int j = 0; j < 16; ++j) {
        inner.push_back([&count] { count.fetch_add(1); });
      }
      pool.RunBatch(std::move(inner));
    });
  }
  pool.RunBatch(std::move(outer));
  EXPECT_EQ(count.load(), 8 * 16);
}

TEST(ThreadPoolTest, StatsCountEveryTask) {
  common::ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back([&count] { ++count; });
  pool.RunBatch(std::move(tasks));
  common::ThreadPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.tasks_run, 100u);
  EXPECT_EQ(stats.batches, 1u);

  // The inline fast path (no workers) still counts its tasks.
  common::ThreadPool inline_pool(0);
  std::vector<std::function<void()>> inline_tasks;
  for (int i = 0; i < 5; ++i) inline_tasks.push_back([] {});
  inline_pool.RunBatch(std::move(inline_tasks));
  EXPECT_EQ(inline_pool.stats().tasks_run, 5u);
}

TEST(ThreadPoolTest, ParallelBatchUsesMultipleWorkers) {
  // Two tasks rendezvous: each only finishes once it has seen the other
  // start, so the batch can only complete if two threads really execute
  // concurrently (the deadline keeps a broken pool from hanging the test).
  common::ThreadPool pool(3);
  std::atomic<int> started{0};
  std::atomic<int> rendezvoused{0};
  auto task = [&started, &rendezvoused] {
    started.fetch_add(1);
    auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return;
      std::this_thread::yield();
    }
    rendezvoused.fetch_add(1);
  };
  std::vector<std::function<void()>> tasks = {task, task};
  pool.RunBatch(std::move(tasks));
  EXPECT_EQ(rendezvoused.load(), 2)
      << "two tasks never ran concurrently on a 3-worker pool";
  EXPECT_EQ(pool.stats().tasks_run, 2u);
}

TEST(ThreadPoolTest, ConcurrentCallersShareThePool) {
  common::ThreadPool pool(2);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> callers;
  for (int c = 0; c < 4; ++c) {
    callers.push_back([&pool, &count] {
      std::vector<std::function<void()>> tasks;
      for (int i = 0; i < 50; ++i) tasks.push_back([&count] { ++count; });
      pool.RunBatch(std::move(tasks));
    });
  }
  // Drive the four callers themselves through a second pool so RunBatch is
  // genuinely invoked from several threads at once.
  common::ThreadPool outer(4);
  outer.RunBatch(std::move(callers));
  EXPECT_EQ(count.load(), 4 * 50);
}

// ---- A deployment big enough to trigger frontier sharding ----
//
// 6 switches in a ring, 24 hosts (4 per switch, Connects both ways), two
// VMs per host, one VFC per VM, one VNF per VFC: frontiers of 48 states
// flow through the Vertical steps and 24+ through the Connects loop, well
// past the kMinStatesPerShard threshold.

struct BigNetwork {
  std::unique_ptr<storage::GraphDb> db;
  std::vector<Uid> hosts, switches, vms, vnfs;
};

BigNetwork MakeBigNetwork(BackendKind kind) {
  schema::SchemaPtr schema = nepal::testing::Figure3Schema();
  BigNetwork net;
  net.db = std::make_unique<storage::GraphDb>(
      schema, nepal::testing::MakeBackend(kind, schema));
  auto& db = *net.db;
  auto node = [&](const std::string& cls, const std::string& name,
                  const schema::FieldValues& extra = {}) {
    schema::FieldValues fields = {{"name", Value(name)}};
    for (const auto& f : extra) fields.push_back(f);
    auto r = db.AddNode(cls, fields);
    EXPECT_TRUE(r.ok()) << r.status();
    return *r;
  };
  auto edge = [&](const std::string& cls, Uid s, Uid t) {
    auto r = db.AddEdge(cls, s, t, {});
    EXPECT_TRUE(r.ok()) << r.status();
  };
  for (int s = 0; s < 6; ++s) {
    net.switches.push_back(node("Switch", "sw" + std::to_string(s)));
  }
  for (int s = 0; s < 6; ++s) {
    edge("Connects", net.switches[s], net.switches[(s + 1) % 6]);
    edge("Connects", net.switches[(s + 1) % 6], net.switches[s]);
  }
  for (int h = 0; h < 24; ++h) {
    Uid host = node("Host", "host" + std::to_string(h),
                    {{"serial", Value("rack-a")}});
    net.hosts.push_back(host);
    edge("Connects", host, net.switches[h % 6]);
    edge("Connects", net.switches[h % 6], host);
    for (int v = 0; v < 2; ++v) {
      std::string tag = std::to_string(h) + "_" + std::to_string(v);
      Uid vm = node("VMWare", "vm" + tag);
      net.vms.push_back(vm);
      edge("OnServer", vm, host);
      Uid vfc = node("VFC", "vfc" + tag);
      edge("hosted_on", vfc, vm);
      Uid vnf = node(v == 0 ? "DNS" : "Firewall", "vnf" + tag);
      net.vnfs.push_back(vnf);
      edge("composed_of", vnf, vfc);
    }
  }
  return net;
}

/// Renders a row as a stable key: every path plus the joint validity.
std::string RowKey(const nql::ResultRow& row) {
  std::string key;
  for (const auto& p : row.paths) {
    key += p.ToString();
    key += " @[" + std::to_string(p.valid.start) + "," +
           std::to_string(p.valid.end) + ") ; ";
  }
  key += "|" + std::to_string(row.valid.start) + "," +
         std::to_string(row.valid.end);
  return key;
}

std::multiset<std::string> RowKeys(const nql::QueryResult& result) {
  std::multiset<std::string> keys;
  for (const auto& row : result.rows) keys.insert(RowKey(row));
  return keys;
}

class ParallelExecTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override { net_ = MakeBigNetwork(GetParam()); }

  nql::QueryResult RunWith(int parallelism, const std::string& query) {
    nql::EngineOptions options;
    options.plan.parallelism = parallelism;
    nql::QueryEngine engine(net_.db.get(), options);
    auto result = engine.Run(query);
    EXPECT_TRUE(result.ok()) << result.status() << "\nquery: " << query;
    return result.ok() ? *result : nql::QueryResult{};
  }

  BigNetwork net_;
};

TEST_P(ParallelExecTest, ParallelMatchesSerialOnShardedFrontiers) {
  const std::string queries[] = {
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()",
      "Retrieve P From PATHS P Where P MATCHES "
      "Host()->[Connects()]{1,4}->Host()",
      "Retrieve P From PATHS P Where P MATCHES "
      "VM()->[OnServer()]{1,1}->Host()->Connects()->Switch()",
      "Retrieve P From PATHS P Where P MATCHES "
      "DNS()->composed_of()->VFC() | Firewall()->composed_of()->VFC()",
  };
  for (const std::string& q : queries) {
    nql::QueryResult serial = RunWith(1, q);
    nql::QueryResult parallel = RunWith(8, q);
    EXPECT_GT(serial.rows.size(), 0u) << q;
    EXPECT_EQ(RowKeys(serial), RowKeys(parallel)) << q;
  }
}

TEST_P(ParallelExecTest, OutputDeterministicAcrossThreadCounts) {
  // Any parallelism > 1 pins the output to canonical order, so the fully
  // rendered result must be byte-identical between 3 and 8 lanes — and
  // across repeated runs (no dependence on scheduling).
  const std::string q =
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()->[Connects()]{1,2}->Switch()";
  nql::QueryResult p3 = RunWith(3, q);
  nql::QueryResult p8 = RunWith(8, q);
  nql::QueryResult p8again = RunWith(8, q);
  ASSERT_GT(p3.rows.size(), 0u);
  EXPECT_EQ(p3.ToString(10000), p8.ToString(10000));
  EXPECT_EQ(p8.ToString(10000), p8again.ToString(10000));
  // And the set is the serial set.
  EXPECT_EQ(RowKeys(RunWith(1, q)), RowKeys(p8));
}

TEST_P(ParallelExecTest, MultiVariableJoinMatchesSerial) {
  // Two independent range variables exercise the engine's parallel
  // variable batch (both are structural, neither is seedable).
  const std::string q =
      "Retrieve P, Q From PATHS P, PATHS Q "
      "Where P MATCHES DNS()->composed_of()->VFC() "
      "And Q MATCHES Switch()->Connects()->Switch()";
  nql::QueryResult serial = RunWith(1, q);
  nql::QueryResult parallel = RunWith(8, q);
  EXPECT_GT(serial.rows.size(), 0u);
  EXPECT_EQ(RowKeys(serial), RowKeys(parallel));
}

TEST_P(ParallelExecTest, StatsPartitionInvariantWithShardingEngaged) {
  // The Connects walk pushes 24+ states through the loop step, past
  // kMinStatesPerShard, so parallelism 8 genuinely shards — and the
  // logical-invocation row counts must still match the serial run.
  const std::string q =
      "EXPLAIN ANALYZE Retrieve P From PATHS P Where P MATCHES "
      "Host()->[Connects()]{1,4}->Host()";
  obs::Counter* pool_tasks =
      obs::MetricsRegistry::Global().GetCounter("nepal.pool.tasks_run");
  const uint64_t tasks_before = pool_tasks->Value();
  auto run = [&](int parallelism) {
    nql::EngineOptions options;
    options.plan.parallelism = parallelism;
    nql::QueryEngine engine(net_.db.get(), options);
    auto result = engine.Run(q);
    EXPECT_TRUE(result.ok()) << result.status();
    return engine.LastQueryStats();
  };
  obs::QueryStats s1 = run(1);
  obs::QueryStats s8 = run(8);
  EXPECT_GT(pool_tasks->Value(), tasks_before)
      << "the parallel run should schedule thread-pool tasks";
  bool sharded = false;
  for (const auto& op : s8.operators) {
    if (op.shards > op.invocations) sharded = true;
  }
  EXPECT_TRUE(sharded) << "expected at least one operator to run sharded";
  ASSERT_EQ(s1.operators.size(), s8.operators.size());
  for (size_t i = 0; i < s1.operators.size(); ++i) {
    EXPECT_EQ(s1.operators[i].group, s8.operators[i].group);
    EXPECT_EQ(s1.operators[i].op, s8.operators[i].op);
    EXPECT_EQ(s1.operators[i].rows_in, s8.operators[i].rows_in)
        << s1.operators[i].op;
    EXPECT_EQ(s1.operators[i].rows_out, s8.operators[i].rows_out)
        << s1.operators[i].op;
  }
  EXPECT_EQ(s1.result_rows, s8.result_rows);
}

// ---- Regression: anchor-side independence of symmetric RPEs ----
//
// Every host carries serial='rack-a'; an eq condition on that non-unique,
// non-indexed field cuts the anchor's estimated cardinality, so
// Host(serial=..)->[Connects()]{1,3}->Host() anchors left while
// Host()->[Connects()]{1,3}->Host(serial=..) anchors right. Both queries
// denote the same pathway set and must return it identically.

nql::RpeNode SymmetricRpe(bool condition_on_left) {
  nql::RawCondition cond;
  cond.field = "serial";
  cond.op = storage::FieldCondition::Op::kEq;
  cond.value = Value("rack-a");
  std::vector<nql::RawCondition> conds = {cond};
  return nql::Normalize(nql::RpeNode::Seq({
      nql::RpeNode::Atom("Host", condition_on_left
                                     ? conds
                                     : std::vector<nql::RawCondition>{}),
      nql::RpeNode::Rep(nql::RpeNode::Atom("Connects"), 1, 3),
      nql::RpeNode::Atom("Host", condition_on_left
                                     ? std::vector<nql::RawCondition>{}
                                     : conds),
  }));
}

TEST_P(ParallelExecTest, SymmetricRpeAnchorsAtTheConditionedEnd) {
  // Sanity-check the test premise: the two forms really do anchor at
  // opposite ends (otherwise the symmetry test below would be vacuous).
  const auto& backend = net_.db->backend();
  nql::PlanOptions options;
  for (bool left : {true, false}) {
    nql::RpeNode rpe = SymmetricRpe(left);
    ASSERT_TRUE(nql::ResolveRpe(net_.db->schema(), 8, &rpe).ok());
    auto plan = nql::PlanMatch(rpe, backend, options);
    ASSERT_TRUE(plan.ok()) << plan.status();
    ASSERT_EQ(plan->anchors.size(), 1u);
    if (left) {
      EXPECT_TRUE(plan->anchors[0].reversed_prefix.empty())
          << "left-conditioned RPE should anchor at its first atom";
    } else {
      EXPECT_TRUE(plan->anchors[0].suffix.empty())
          << "right-conditioned RPE should anchor at its last atom";
    }
  }
}

TEST_P(ParallelExecTest, SymmetricRpeReturnsSameSetFromEitherAnchor) {
  const std::string left =
      "Retrieve P From PATHS P Where P MATCHES "
      "Host(serial='rack-a')->[Connects()]{1,3}->Host()";
  const std::string right =
      "Retrieve P From PATHS P Where P MATCHES "
      "Host()->[Connects()]{1,3}->Host(serial='rack-a')";
  for (int parallelism : {1, 8}) {
    nql::QueryResult from_left = RunWith(parallelism, left);
    nql::QueryResult from_right = RunWith(parallelism, right);
    EXPECT_GT(from_left.rows.size(), 0u);
    EXPECT_EQ(RowKeys(from_left), RowKeys(from_right))
        << "parallelism=" << parallelism;
  }
  // In parallel mode the canonical ordering makes the whole rendered
  // result identical, not just the set.
  EXPECT_EQ(RunWith(8, left).ToString(10000),
            RunWith(8, right).ToString(10000));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ParallelExecTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
