// Differential property tests.
//
// For randomized small graphs and randomized RPEs, three independent
// implementations must agree on the exact set of matching pathways:
//   1. the graphstore backend (traverser execution),
//   2. the relational backend (bulk-join execution),
//   3. a brute-force reference that enumerates every simple pathway and
//      checks it against the RPE with a direct nondeterministic simulation
//      of the paper's Section 3.3 semantics (four-way concatenation,
//      implicit endpoints, cycle-freedom).
//
// A second property checks temporal correctness: a timeslice query at time
// t over the full history must equal the same query on a fresh database
// holding only the elements alive at t.

#include <algorithm>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nepal/engine.h"
#include "nepal/executor.h"
#include "nepal/snapshot.h"
#include "persist/durable_store.h"
#include "tests/testutil.h"
#include "views/view_catalog.h"

namespace nepal {
namespace {

using storage::ElementVersion;

// ---- Reference semantics ----

/// A pathway as a concrete alternating element sequence.
using Fragment = std::vector<ElementVersion>;

/// Nondeterministic simulation state: how many elements are consumed and
/// the kind of the last *atom-consumed* element.
struct SimState {
  size_t pos;
  enum class Last { kNone, kNode, kEdge } last;
  bool operator<(const SimState& o) const {
    return pos != o.pos ? pos < o.pos : last < o.last;
  }
};

void SimAtom(const storage::CompiledAtom& atom, const Fragment& frag,
             const SimState& s, std::set<SimState>* out) {
  const bool atom_is_edge = atom.is_edge();
  auto last_kind = s.last;
  bool same_kind =
      (last_kind == SimState::Last::kEdge && atom_is_edge) ||
      (last_kind == SimState::Last::kNode && !atom_is_edge);
  size_t pos = s.pos;
  if (last_kind == SimState::Last::kNone && atom_is_edge) {
    // Implicit head node before a leading edge atom.
    if (pos < frag.size() && !frag[pos].is_edge()) ++pos;
  } else if (same_kind) {
    // One implicit, unconstrained element between same-kind atoms.
    if (pos >= frag.size()) return;
    ++pos;
  }
  if (pos >= frag.size()) return;
  const ElementVersion& elem = frag[pos];
  if (elem.is_edge() != atom_is_edge) return;
  if (!atom.Matches(elem)) return;
  out->insert(SimState{pos + 1, atom_is_edge ? SimState::Last::kEdge
                                             : SimState::Last::kNode});
}

std::set<SimState> SimRpe(const nql::RpeNode& rpe, const Fragment& frag,
                          const std::set<SimState>& in) {
  switch (rpe.kind) {
    case nql::RpeNode::Kind::kAtom: {
      std::set<SimState> out;
      for (const SimState& s : in) SimAtom(rpe.atom, frag, s, &out);
      return out;
    }
    case nql::RpeNode::Kind::kSeq: {
      std::set<SimState> cur = in;
      for (const nql::RpeNode& child : rpe.children) {
        cur = SimRpe(child, frag, cur);
        if (cur.empty()) break;
      }
      return cur;
    }
    case nql::RpeNode::Kind::kAlt: {
      std::set<SimState> out;
      for (const nql::RpeNode& child : rpe.children) {
        std::set<SimState> branch = SimRpe(child, frag, in);
        out.insert(branch.begin(), branch.end());
      }
      return out;
    }
    case nql::RpeNode::Kind::kRep: {
      std::set<SimState> out;
      std::set<SimState> cur = in;
      if (rpe.min_rep == 0) out.insert(cur.begin(), cur.end());
      for (int k = 1; k <= rpe.max_rep && !cur.empty(); ++k) {
        cur = SimRpe(rpe.children[0], frag, cur);
        if (k >= rpe.min_rep) out.insert(cur.begin(), cur.end());
      }
      return out;
    }
  }
  return {};
}

bool ReferenceMatches(const nql::RpeNode& rpe, const Fragment& frag) {
  std::set<SimState> finals =
      SimRpe(rpe, frag, {SimState{0, SimState::Last::kNone}});
  for (const SimState& s : finals) {
    if (s.pos == frag.size()) return true;
    // Implicit tail node after a trailing edge atom.
    if (s.pos == frag.size() - 1 && s.last == SimState::Last::kEdge) {
      return true;
    }
  }
  return false;
}

// ---- Random graph and RPE generation ----

constexpr const char* kPropertySchema = R"(
node A : Node { val: int; }
node A1 : A {}
node B : Node { val: int; }
edge E : Edge { w: int; }
edge E1 : E {}
edge F : Edge { w: int; }
allow E (Node -> Node);
allow F (Node -> Node);
)";

struct RandomGraph {
  std::unique_ptr<storage::GraphDb> db;
  std::vector<Uid> nodes;
};

RandomGraph MakeRandomGraph(schema::SchemaPtr schema,
                            nepal::testing::BackendKind kind, Rng* rng,
                            int num_nodes, int num_edges) {
  RandomGraph g;
  g.db = std::make_unique<storage::GraphDb>(
      schema, nepal::testing::MakeBackend(kind, schema));
  const char* node_classes[] = {"A", "A1", "B"};
  const char* edge_classes[] = {"E", "E1", "F"};
  for (int i = 0; i < num_nodes; ++i) {
    auto uid = g.db->AddNode(
        node_classes[rng->Below(3)],
        {{"name", Value("n" + std::to_string(i))},
         {"val", Value(static_cast<int64_t>(rng->Below(4)))}});
    EXPECT_TRUE(uid.ok());
    g.nodes.push_back(*uid);
  }
  for (int i = 0; i < num_edges; ++i) {
    Uid s = g.nodes[rng->Below(g.nodes.size())];
    Uid t = g.nodes[rng->Below(g.nodes.size())];
    if (s == t) continue;
    auto uid = g.db->AddEdge(
        edge_classes[rng->Below(3)], s, t,
        {{"w", Value(static_cast<int64_t>(rng->Below(4)))}});
    EXPECT_TRUE(uid.ok());
  }
  return g;
}

nql::RpeNode RandomAtom(Rng* rng) {
  static const char* kNames[] = {"A", "A1", "B", "Node",
                                 "E", "E1", "F", "Edge"};
  std::string cls = kNames[rng->Below(8)];
  std::vector<nql::RawCondition> conds;
  if (rng->Chance(0.3)) {
    nql::RawCondition cond;
    bool is_edge = cls == "E" || cls == "E1" || cls == "F" || cls == "Edge";
    cond.field = is_edge ? "w" : "val";
    if (cls == "Node" || cls == "Edge") cond.field = "name";
    using Op = storage::FieldCondition::Op;
    if (cond.field == "name") {
      cond.op = Op::kNe;
      cond.value = Value("zzz");  // matches everything with a name
    } else {
      static const Op kOps[] = {Op::kEq, Op::kNe, Op::kLt, Op::kGe};
      cond.op = kOps[rng->Below(4)];
      cond.value = Value(static_cast<int64_t>(rng->Below(4)));
    }
    conds.push_back(std::move(cond));
  }
  return nql::RpeNode::Atom(std::move(cls), std::move(conds));
}

nql::RpeNode RandomRpe(Rng* rng, int depth) {
  if (depth == 0 || rng->Chance(0.4)) return RandomAtom(rng);
  switch (rng->Below(3)) {
    case 0: {  // Seq
      std::vector<nql::RpeNode> children;
      int n = 2 + static_cast<int>(rng->Below(2));
      for (int i = 0; i < n; ++i) {
        children.push_back(RandomRpe(rng, depth - 1));
      }
      return nql::RpeNode::Seq(std::move(children));
    }
    case 1: {  // Alt
      std::vector<nql::RpeNode> children;
      int n = 2 + static_cast<int>(rng->Below(2));
      for (int i = 0; i < n; ++i) {
        children.push_back(RandomRpe(rng, depth - 1));
      }
      return nql::RpeNode::Alt(std::move(children));
    }
    default: {  // Rep
      int min_rep = static_cast<int>(rng->Below(2));
      int max_rep = min_rep + 1 + static_cast<int>(rng->Below(2));
      return nql::RpeNode::Rep(RandomRpe(rng, depth - 1), min_rep, max_rep);
    }
  }
}

/// Enumerates every simple pathway (as element sequences) up to
/// `max_elements`, in the current snapshot.
void EnumeratePathways(const storage::StorageBackend& backend,
                       const std::vector<Uid>& nodes, size_t max_elements,
                       std::vector<Fragment>* out) {
  storage::TimeView view = storage::TimeView::Current();
  std::function<void(Fragment&)> extend = [&](Fragment& frag) {
    out->push_back(frag);
    if (frag.size() + 2 > max_elements) return;
    Uid tail = frag.back().uid;
    std::vector<ElementVersion> edges;
    backend.IncidentEdges(tail, storage::Direction::kOut, nullptr, view,
                          [&](const ElementVersion& e) {
                            edges.push_back(e);
                          });
    for (const ElementVersion& e : edges) {
      bool cycle = false;
      for (const ElementVersion& seen : frag) {
        if (seen.uid == e.uid || seen.uid == e.target) cycle = true;
      }
      if (cycle) continue;
      ElementVersion far;
      bool found = false;
      backend.Get(e.target, view, [&](const ElementVersion& v) {
        far = v;
        found = true;
      });
      if (!found) continue;
      frag.push_back(e);
      frag.push_back(far);
      extend(frag);
      frag.pop_back();
      frag.pop_back();
    }
  };
  for (Uid n : nodes) {
    ElementVersion v;
    bool found = false;
    backend.Get(n, view, [&](const ElementVersion& ev) {
      v = ev;
      found = true;
    });
    if (!found) continue;
    Fragment frag = {v};
    extend(frag);
  }
}

std::string FragKey(const Fragment& frag) {
  std::string key;
  for (const ElementVersion& v : frag) {
    key += std::to_string(v.uid) + ",";
  }
  return key;
}

TEST(PropertyTest, BackendsAgreeWithReferenceSemantics) {
  schema::SchemaPtr schema = *schema::ParseSchemaDsl(kPropertySchema);
  Rng rng(20260704);
  int rpes_checked = 0;
  for (int round = 0; round < 60; ++round) {
    Rng graph_rng(rng.Next());
    RandomGraph g1 = MakeRandomGraph(schema,
                                     nepal::testing::BackendKind::kGraphStore,
                                     &graph_rng, 10, 18);

    // Build the relational twin with the same structure by copying
    // elements from the graphstore instance.
    auto g2db = std::make_unique<storage::GraphDb>(
        schema, nepal::testing::MakeBackend(
                    nepal::testing::BackendKind::kRelational, schema));
    {
      std::vector<ElementVersion> all_nodes, all_edges;
      storage::ScanSpec spec;
      spec.cls = schema->node_root();
      g1.db->backend().Scan(spec, storage::TimeView::Current(),
                            [&](const ElementVersion& v) {
                              all_nodes.push_back(v);
                            });
      spec.cls = schema->edge_root();
      g1.db->backend().Scan(spec, storage::TimeView::Current(),
                            [&](const ElementVersion& v) {
                              all_edges.push_back(v);
                            });
      std::sort(all_nodes.begin(), all_nodes.end(),
                [](const auto& a, const auto& b) { return a.uid < b.uid; });
      std::sort(all_edges.begin(), all_edges.end(),
                [](const auto& a, const auto& b) { return a.uid < b.uid; });
      std::map<Uid, Uid> remap;
      for (const ElementVersion& v : all_nodes) {
        schema::FieldValues fields;
        for (size_t i = 0; i < v.fields.size(); ++i) {
          fields.emplace_back(v.cls->fields()[i].name, v.fields[i]);
        }
        remap[v.uid] = *g2db->AddNode(v.cls->name(), fields);
        ASSERT_EQ(remap[v.uid], v.uid);  // same insertion order => same uids
      }
      for (const ElementVersion& v : all_edges) {
        schema::FieldValues fields;
        for (size_t i = 0; i < v.fields.size(); ++i) {
          fields.emplace_back(v.cls->fields()[i].name, v.fields[i]);
        }
        auto uid = g2db->AddEdge(v.cls->name(), remap[v.source],
                                 remap[v.target], fields);
        ASSERT_TRUE(uid.ok());
        ASSERT_EQ(*uid, v.uid);
      }
    }

    // All simple pathways once per graph.
    std::vector<Fragment> pathways;
    EnumeratePathways(g1.db->backend(), g1.nodes, 7, &pathways);

    nql::QueryEngine engine1(g1.db.get());
    nql::QueryEngine engine2(g2db.get());

    for (int r = 0; r < 8; ++r) {
      nql::RpeNode rpe = nql::Normalize(RandomRpe(&rng, 2));
      nql::RpeNode resolved = rpe;
      if (!nql::ResolveRpe(*schema, 8, &resolved).ok()) continue;
      // Bound the total length so the reference enumeration covers it.
      if (nql::MaxAtoms(resolved) > 3) continue;

      std::set<std::string> expected;
      for (const Fragment& frag : pathways) {
        if (ReferenceMatches(resolved, frag)) expected.insert(FragKey(frag));
      }

      std::string query =
          "Retrieve P From PATHS P Where P MATCHES " + rpe.ToString();
      auto check = [&](nql::QueryEngine& engine,
                       const char* which) -> bool {
        auto result = engine.Run(query);
        if (!result.ok()) {
          // Unanchorable RPEs are legitimately rejected; the property
          // only covers plannable queries.
          EXPECT_EQ(result.status().code(), StatusCode::kPlanError)
              << which << ": " << result.status() << "\nrpe: "
              << rpe.ToString();
          return false;
        }
        std::set<std::string> actual;
        for (const auto& row : result->rows) {
          std::string key;
          for (Uid u : row.paths[0].uids) key += std::to_string(u) + ",";
          actual.insert(key);
        }
        EXPECT_EQ(actual, expected)
            << which << " disagrees with reference\nrpe: " << rpe.ToString()
            << "\nround " << round << " rpe#" << r;
        return true;
      };
      bool planned = check(engine1, "graphstore");
      check(engine2, "relational");
      if (planned) ++rpes_checked;
    }
  }
  // The property is vacuous if everything got rejected; make sure a healthy
  // number of RPEs was actually exercised.
  EXPECT_GT(rpes_checked, 150);
}

TEST(PropertyTest, ExtendBlockAndUnrolledPlansAgree) {
  // The ExtendBlock delegation and the unrolled Union-of-optionals plan
  // are two compilations of the same repetition semantics; they must
  // return identical pathway sets.
  schema::SchemaPtr schema = *schema::ParseSchemaDsl(kPropertySchema);
  Rng rng(4242);
  int checked = 0;
  for (int round = 0; round < 25; ++round) {
    Rng graph_rng(rng.Next());
    RandomGraph g = MakeRandomGraph(schema,
                                    nepal::testing::BackendKind::kGraphStore,
                                    &graph_rng, 12, 24);
    nql::QueryEngine with_block(g.db.get());
    nql::EngineOptions unrolled_options;
    unrolled_options.plan.loop_strategy = nql::LoopStrategy::kUnroll;
    nql::QueryEngine unrolled(g.db.get(), unrolled_options);
    for (int r = 0; r < 6; ++r) {
      nql::RpeNode rpe = nql::Normalize(RandomRpe(&rng, 2));
      std::string query =
          "Retrieve P From PATHS P Where P MATCHES " + rpe.ToString();
      auto r1 = with_block.Run(query);
      auto r2 = unrolled.Run(query);
      ASSERT_EQ(r1.ok(), r2.ok()) << rpe.ToString();
      if (!r1.ok()) continue;
      std::multiset<std::string> s1, s2;
      for (const auto& row : r1->rows) s1.insert(row.paths[0].ToString());
      for (const auto& row : r2->rows) s2.insert(row.paths[0].ToString());
      EXPECT_EQ(s1, s2) << rpe.ToString();
      ++checked;
    }
  }
  EXPECT_GT(checked, 60);
}

TEST(PropertyTest, BackendsAgreeOnTimeRangeQueries) {
  // Range queries branch over versions and coalesce maximal intervals;
  // the two backends must produce identical (pathway, interval) sets.
  schema::SchemaPtr schema = *schema::ParseSchemaDsl(kPropertySchema);
  Rng rng(9001);
  const Timestamp base = *ParseTimestamp("2017-04-01 00:00:00");
  for (int round = 0; round < 15; ++round) {
    auto make_db = [&](nepal::testing::BackendKind kind) {
      return std::make_unique<storage::GraphDb>(
          schema, nepal::testing::MakeBackend(kind, schema));
    };
    auto db1 = make_db(nepal::testing::BackendKind::kGraphStore);
    auto db2 = make_db(nepal::testing::BackendKind::kRelational);
    Rng ops_rng(rng.Next());
    // Identical random op streams into both databases.
    std::vector<Uid> nodes;
    for (int step = 0; step < 60; ++step) {
      Timestamp t = base + static_cast<Timestamp>(step) * 1000000;
      ASSERT_TRUE(db1->SetTime(t).ok());
      ASSERT_TRUE(db2->SetTime(t).ok());
      double dice = ops_rng.NextDouble();
      if (dice < 0.4 || nodes.size() < 2) {
        const char* cls = ops_rng.Chance(0.5) ? "A" : "B";
        schema::FieldValues f = {
            {"name", Value("n" + std::to_string(step))},
            {"val", Value(static_cast<int64_t>(ops_rng.Below(3)))}};
        Uid u1 = *db1->AddNode(cls, f);
        Uid u2 = *db2->AddNode(cls, f);
        ASSERT_EQ(u1, u2);
        nodes.push_back(u1);
      } else if (dice < 0.7) {
        Uid s = nodes[ops_rng.Below(nodes.size())];
        Uid t2 = nodes[ops_rng.Below(nodes.size())];
        if (s == t2) continue;
        auto e1 = db1->AddEdge("E", s, t2, {});
        auto e2 = db2->AddEdge("E", s, t2, {});
        ASSERT_EQ(e1.ok(), e2.ok());
      } else if (dice < 0.9) {
        Uid u = nodes[ops_rng.Below(nodes.size())];
        Value v(static_cast<int64_t>(ops_rng.Below(3)));
        Status s1 = db1->UpdateElement(u, {{"val", v}});
        Status s2 = db2->UpdateElement(u, {{"val", v}});
        ASSERT_EQ(s1.ok(), s2.ok());
      } else {
        Uid u = nodes[ops_rng.Below(nodes.size())];
        Status s1 = db1->RemoveElement(u);
        Status s2 = db2->RemoveElement(u);
        ASSERT_EQ(s1.ok(), s2.ok());
      }
    }
    nql::QueryEngine e1(db1.get()), e2(db2.get());
    std::string range = "AT '" + FormatTimestamp(base) + "' : '" +
                        FormatTimestamp(base + 70 * 1000000) + "' ";
    for (const char* q :
         {"Retrieve P From PATHS P Where P MATCHES A(val<2)",
          "Retrieve P From PATHS P Where P MATCHES A()->E()->B()",
          "Retrieve P From PATHS P Where P MATCHES Node(name<>'zz')->"
          "[E()]{1,2}->Node(name<>'zz')"}) {
      auto r1 = e1.Run(range + q);
      auto r2 = e2.Run(range + q);
      ASSERT_TRUE(r1.ok()) << r1.status();
      ASSERT_TRUE(r2.ok()) << r2.status();
      std::multiset<std::string> s1, s2;
      for (const auto& row : r1->rows) {
        s1.insert(row.paths[0].ToString() + row.valid.ToString());
      }
      for (const auto& row : r2->rows) {
        s2.insert(row.paths[0].ToString() + row.valid.ToString());
      }
      EXPECT_EQ(s1, s2) << q;
    }
  }
}

TEST(PropertyTest, AutomatonAndUnrolledPlansAgree) {
  // The NFA product-automaton executor and the legacy unrolled
  // Union-of-optionals plan are two compilations of the same bounded
  // repetition semantics: every result row (pathway and validity
  // interval) must be byte-identical, on both backends, under Current,
  // AsOf, and Range views.
  schema::SchemaPtr schema = *schema::ParseSchemaDsl(kPropertySchema);
  Rng rng(20260808);
  const Timestamp base = *ParseTimestamp("2017-04-01 00:00:00");
  int checked = 0;
  for (auto kind : {nepal::testing::BackendKind::kGraphStore,
                    nepal::testing::BackendKind::kRelational}) {
    for (int round = 0; round < 8; ++round) {
      auto db = std::make_unique<storage::GraphDb>(
          schema, nepal::testing::MakeBackend(kind, schema));
      Rng ops_rng(rng.Next());
      // A temporal op stream, so the AsOf and Range views see a graph
      // that genuinely differs from the current snapshot.
      std::vector<Uid> nodes;
      for (int step = 0; step < 50; ++step) {
        Timestamp t = base + static_cast<Timestamp>(step) * 1000000;
        ASSERT_TRUE(db->SetTime(t).ok());
        double dice = ops_rng.NextDouble();
        if (dice < 0.45 || nodes.size() < 2) {
          const char* cls = ops_rng.Chance(0.5) ? "A" : "B";
          auto u = db->AddNode(
              cls, {{"name", Value("n" + std::to_string(step))},
                    {"val", Value(static_cast<int64_t>(ops_rng.Below(3)))}});
          ASSERT_TRUE(u.ok());
          nodes.push_back(*u);
        } else if (dice < 0.8) {
          Uid s = nodes[ops_rng.Below(nodes.size())];
          Uid t2 = nodes[ops_rng.Below(nodes.size())];
          if (s == t2) continue;
          (void)db->AddEdge(
              ops_rng.Chance(0.5) ? "E" : "F", s, t2,
              {{"w", Value(static_cast<int64_t>(ops_rng.Below(3)))}});
        } else {
          (void)db->RemoveElement(nodes[ops_rng.Below(nodes.size())]);
        }
      }
      nql::EngineOptions automaton_options;
      automaton_options.plan.loop_strategy = nql::LoopStrategy::kAutomaton;
      nql::QueryEngine automaton(db.get(), automaton_options);
      nql::EngineOptions unrolled_options;
      unrolled_options.plan.loop_strategy = nql::LoopStrategy::kUnroll;
      nql::QueryEngine unrolled(db.get(), unrolled_options);
      std::string asof = "AT '" + FormatTimestamp(base + 30 * 1000000) + "' ";
      std::string range = "AT '" + FormatTimestamp(base + 10 * 1000000) +
                          "' : '" + FormatTimestamp(base + 45 * 1000000) +
                          "' ";
      for (int r = 0; r < 5; ++r) {
        // RandomRpe only emits bounded repetitions, so the unrolled plan
        // is a valid oracle for every generated expression.
        nql::RpeNode rpe = nql::Normalize(RandomRpe(&rng, 2));
        std::string match =
            "Retrieve P From PATHS P Where P MATCHES " + rpe.ToString();
        for (const std::string& prefix : {std::string(), asof, range}) {
          auto r1 = automaton.Run(prefix + match);
          auto r2 = unrolled.Run(prefix + match);
          ASSERT_EQ(r1.ok(), r2.ok())
              << rpe.ToString() << "\nautomaton: " << r1.status()
              << "\nunrolled: " << r2.status();
          if (!r1.ok()) continue;
          // Row order is not part of the contract (the serial executors
          // emit in evaluation order); row *content* is — compare the
          // sorted serializations byte for byte.
          auto rows = [](const nql::QueryResult& res) {
            std::vector<std::string> out;
            for (const auto& row : res.rows) {
              out.push_back(row.paths[0].ToString() + " " +
                            row.valid.ToString());
            }
            std::sort(out.begin(), out.end());
            return out;
          };
          EXPECT_EQ(rows(*r1), rows(*r2))
              << rpe.ToString() << "\nview prefix: '" << prefix << "'";
          ++checked;
        }
      }
    }
  }
  EXPECT_GT(checked, 100);
}

TEST(PropertyTest, TimesliceEqualsRebuiltSnapshot) {
  schema::SchemaPtr schema = *schema::ParseSchemaDsl(kPropertySchema);
  Rng rng(777);
  for (int round = 0; round < 20; ++round) {
    // Build a history: ops at times 1000, 2000, ..., with inserts, field
    // updates and deletes. Remember the op log.
    struct Op {
      enum Kind { kAddNode, kAddEdge, kUpdate, kDelete } kind;
      std::string cls;
      std::string name;          // node identity
      std::string src, tgt;      // edge endpoints (node names)
      int64_t val = 0;
      Timestamp at = 0;
    };
    std::vector<Op> ops;
    std::vector<std::string> live_nodes;
    int counter = 0;
    const Timestamp base = *ParseTimestamp("2017-03-01 00:00:00");
    Timestamp t = base;
    for (int step = 0; step < 40; ++step) {
      t += 1000000;
      double dice = rng.NextDouble();
      if (dice < 0.45 || live_nodes.size() < 2) {
        Op op;
        op.kind = Op::kAddNode;
        op.cls = (rng.Below(2) != 0u) ? "A" : "B";
        op.name = "n" + std::to_string(counter++);
        op.val = static_cast<int64_t>(rng.Below(4));
        op.at = t;
        live_nodes.push_back(op.name);
        ops.push_back(op);
      } else if (dice < 0.75) {
        Op op;
        op.kind = Op::kAddEdge;
        op.cls = (rng.Below(2) != 0u) ? "E" : "F";
        op.name = "e" + std::to_string(counter++);
        op.src = live_nodes[rng.Below(live_nodes.size())];
        op.tgt = live_nodes[rng.Below(live_nodes.size())];
        if (op.src == op.tgt) continue;
        op.at = t;
        ops.push_back(op);
      } else if (dice < 0.9) {
        Op op;
        op.kind = Op::kUpdate;
        op.name = live_nodes[rng.Below(live_nodes.size())];
        op.val = static_cast<int64_t>(rng.Below(4));
        op.at = t;
        ops.push_back(op);
      } else {
        Op op;
        op.kind = Op::kDelete;
        size_t idx = rng.Below(live_nodes.size());
        op.name = live_nodes[idx];
        live_nodes.erase(live_nodes.begin() +
                         static_cast<std::ptrdiff_t>(idx));
        op.at = t;
        ops.push_back(op);
      }
    }

    // Replays ops with `cutoff` semantics into a database.
    auto replay = [&](Timestamp cutoff, bool temporal)
        -> std::unique_ptr<storage::GraphDb> {
      auto db = std::make_unique<storage::GraphDb>(
          schema, nepal::testing::MakeBackend(
                      nepal::testing::BackendKind::kGraphStore, schema));
      std::map<std::string, Uid> by_name;
      for (const Op& op : ops) {
        if (op.at > cutoff) break;
        if (temporal) {
          EXPECT_TRUE(db->SetTime(op.at).ok());
        }
        switch (op.kind) {
          case Op::kAddNode: {
            auto uid = db->AddNode(op.cls, {{"name", Value(op.name)},
                                            {"val", Value(op.val)}});
            EXPECT_TRUE(uid.ok()) << uid.status();
            if (uid.ok()) by_name[op.name] = *uid;
            break;
          }
          case Op::kAddEdge: {
            if (!by_name.count(op.src) || !by_name.count(op.tgt)) break;
            auto uid = db->AddEdge(op.cls, by_name[op.src], by_name[op.tgt],
                                   {{"name", Value(op.name)},
                                    {"w", Value(op.val)}});
            if (uid.ok()) by_name[op.name] = *uid;
            break;
          }
          case Op::kUpdate: {
            if (!by_name.count(op.name)) break;
            (void)db->UpdateElement(by_name[op.name],
                                    {{"val", Value(op.val)}});
            break;
          }
          case Op::kDelete: {
            if (!by_name.count(op.name)) break;
            (void)db->RemoveElement(by_name[op.name]);
            by_name.erase(op.name);
            break;
          }
        }
      }
      return db;
    };

    Timestamp full = ops.back().at;
    auto full_db = replay(full, /*temporal=*/true);
    nql::QueryEngine full_engine(full_db.get());

    // Pick three random cutoffs and compare AsOf vs rebuilt-at-cutoff.
    const char* queries[] = {
        "Retrieve P From PATHS P Where P MATCHES A()",
        "Retrieve P From PATHS P Where P MATCHES A()->[E()|F()]{1,2}->B()",
        "Retrieve P From PATHS P Where P MATCHES Node(name<>'x')->E()",
    };
    for (int c = 0; c < 3; ++c) {
      Timestamp cutoff =
          base + static_cast<Timestamp>(1 + rng.Below(41)) * 1000000;
      auto snap_db = replay(cutoff, /*temporal=*/false);
      nql::QueryEngine snap_engine(snap_db.get());
      for (const char* q : queries) {
        auto as_of = full_engine.Run("AT '" +
                                     FormatTimestamp(cutoff) + "' " + q);
        auto rebuilt = snap_engine.Run(q);
        ASSERT_TRUE(as_of.ok()) << as_of.status();
        ASSERT_TRUE(rebuilt.ok()) << rebuilt.status();
        // Compare name-sequences (uids differ between the two databases).
        auto names = [](const nql::QueryResult& result,
                        storage::GraphDb* db) {
          std::multiset<std::string> out;
          for (const auto& row : result.rows) {
            std::string key;
            for (size_t i = 0; i < row.paths[0].uids.size(); ++i) {
              ElementVersion v;
              db->backend().Get(
                  row.paths[0].uids[i],
                  storage::TimeView::Range(Interval::All()),
                  [&](const ElementVersion& ev) { v = ev; });
              key += v.fields[0].ToString() + ";";
            }
            out.insert(key);
          }
          return out;
        };
        EXPECT_EQ(names(*as_of, full_db.get()),
                  names(*rebuilt, snap_db.get()))
            << "cutoff " << FormatTimestamp(cutoff) << " query: " << q;
      }
    }
  }
}

// ---- Interval intersection canonicality (touching-endpoint hardening) ----

TEST(PropertyTest, EmptyIntersectionsAreCanonical) {
  // [a,b) ∩ [b,c) is empty (half-open semantics); every empty intersection
  // must normalize to the one canonical empty interval, never to a
  // non-canonical start > end pair that downstream code could mistake for
  // a valid period.
  const Interval none = Interval::None();
  EXPECT_TRUE(none.empty());

  // Touching endpoints, both orders.
  Interval ab{10, 20}, bc{20, 30};
  EXPECT_EQ(ab.Intersect(bc), none);
  EXPECT_EQ(bc.Intersect(ab), none);
  // Disjoint with a gap.
  EXPECT_EQ(Interval({0, 5}).Intersect({50, 60}), none);
  // Empty operand.
  EXPECT_EQ(none.Intersect(Interval::All()), none);
  EXPECT_EQ(Interval::All().Intersect(none), none);

  // Randomized: Intersect is empty exactly when the operands do not
  // overlap, every empty result is canonical, and every non-empty result
  // is the true set intersection of the two half-open ranges.
  Rng rng(112358);
  for (int i = 0; i < 20000; ++i) {
    auto pick = [&] {
      Timestamp a = static_cast<Timestamp>(rng.Below(40));
      Timestamp b = static_cast<Timestamp>(rng.Below(40));
      return Interval{a, b};
    };
    Interval x = pick(), y = pick();
    Interval got = x.Intersect(y);
    bool expect_empty = x.empty() || y.empty() || !x.Overlaps(y);
    ASSERT_EQ(got.empty(), expect_empty)
        << x.ToString() << " ∩ " << y.ToString();
    if (expect_empty) {
      ASSERT_EQ(got, none) << x.ToString() << " ∩ " << y.ToString();
    } else {
      for (Timestamp t = 0; t < 40; ++t) {
        ASSERT_EQ(got.Contains(t), x.Contains(t) && y.Contains(t))
            << x.ToString() << " ∩ " << y.ToString() << " at " << t;
      }
    }
    // An empty interval must never be added to an IntervalSet's coverage.
    IntervalSet set;
    set.Add(got);
    ASSERT_EQ(set.empty(), got.empty());
  }
}

TEST(PropertyTest, NoZeroWidthValidityReachesResultRows) {
  // Over randomized element churn (whose version boundaries routinely make
  // intervals touch), no result row of a time-range query may carry an
  // empty validity — neither the row's joint interval nor any pathway's.
  schema::SchemaPtr schema = *schema::ParseSchemaDsl(kPropertySchema);
  Rng rng(424242);
  const Timestamp base = *ParseTimestamp("2017-05-01 00:00:00");
  for (auto kind : {nepal::testing::BackendKind::kGraphStore,
                    nepal::testing::BackendKind::kRelational}) {
    for (int round = 0; round < 10; ++round) {
      auto db = std::make_unique<storage::GraphDb>(
          schema, nepal::testing::MakeBackend(kind, schema));
      Rng ops_rng(rng.Next());
      std::vector<Uid> nodes;
      for (int step = 0; step < 50; ++step) {
        ASSERT_TRUE(
            db->SetTime(base + static_cast<Timestamp>(step) * 1000000).ok());
        double dice = ops_rng.NextDouble();
        if (dice < 0.4 || nodes.size() < 2) {
          auto u = db->AddNode(
              ops_rng.Chance(0.5) ? "A" : "B",
              {{"name", Value("n" + std::to_string(step))},
               {"val", Value(static_cast<int64_t>(ops_rng.Below(3)))}});
          ASSERT_TRUE(u.ok());
          nodes.push_back(*u);
        } else if (dice < 0.7) {
          Uid s = nodes[ops_rng.Below(nodes.size())];
          Uid t = nodes[ops_rng.Below(nodes.size())];
          if (s != t) (void)db->AddEdge("E", s, t, {});
        } else if (dice < 0.9) {
          (void)db->UpdateElement(
              nodes[ops_rng.Below(nodes.size())],
              {{"val", Value(static_cast<int64_t>(ops_rng.Below(3)))}});
        } else {
          (void)db->RemoveElement(nodes[ops_rng.Below(nodes.size())]);
        }
      }
      nql::QueryEngine engine(db.get());
      std::string range = "AT '" + FormatTimestamp(base) + "' : '" +
                          FormatTimestamp(base + 60 * 1000000) + "' ";
      for (const char* q :
           {"Retrieve P From PATHS P Where P MATCHES A()->E()->Node()",
            "Retrieve P From PATHS P Where P MATCHES "
            "Node(name<>'zz')->[E()]{1,2}->Node(name<>'zz')",
            "Retrieve P, Q From PATHS P, PATHS Q "
            "Where P MATCHES A()->E()->Node() And Q MATCHES B()"}) {
        auto result = engine.Run(range + std::string(q));
        ASSERT_TRUE(result.ok()) << result.status();
        for (const auto& row : result->rows) {
          EXPECT_FALSE(row.valid.empty())
              << nepal::testing::BackendName(kind) << " row validity "
              << row.valid.ToString() << "\nquery: " << q;
          for (const auto& path : row.paths) {
            EXPECT_FALSE(path.valid.empty())
                << nepal::testing::BackendName(kind) << " pathway validity "
                << path.valid.ToString() << "\nquery: " << q;
          }
        }
      }
    }
  }
}

TEST(PropertyTest, TouchingValidityPeriodsNeverCoexist) {
  // Deterministic touching-endpoint scenario: P lives on [t0, t1), Q on
  // [t1, t2). A query-level range demands coexistence — the joint validity
  // is the empty intersection at the shared boundary t1, so no row may
  // survive.
  schema::SchemaPtr schema = *schema::ParseSchemaDsl(kPropertySchema);
  const Timestamp t0 = *ParseTimestamp("2017-06-01 00:00:00");
  const Timestamp t1 = t0 + 3600 * 1000000LL;
  const Timestamp t2 = t1 + 3600 * 1000000LL;
  for (auto kind : {nepal::testing::BackendKind::kGraphStore,
                    nepal::testing::BackendKind::kRelational}) {
    auto db = std::make_unique<storage::GraphDb>(
        schema, nepal::testing::MakeBackend(kind, schema));
    ASSERT_TRUE(db->SetTime(t0).ok());
    Uid a = *db->AddNode("A", {{"name", Value("a")}, {"val", Value(1)}});
    Uid b = *db->AddNode("B", {{"name", Value("b")}, {"val", Value(1)}});
    Uid e = *db->AddEdge("E", a, b, {});
    // At t1 the A->B edge dies and a B-side marker node is born: the edge
    // pathway's validity [t0,t1) exactly touches the marker's [t1,t2).
    ASSERT_TRUE(db->SetTime(t1).ok());
    ASSERT_TRUE(db->RemoveElement(e).ok());
    Uid marker =
        *db->AddNode("A1", {{"name", Value("m")}, {"val", Value(7)}});
    ASSERT_TRUE(db->SetTime(t2).ok());
    ASSERT_TRUE(db->RemoveElement(marker).ok());

    nql::QueryEngine engine(db.get());
    std::string range = "AT '" + FormatTimestamp(t0) + "' : '" +
                        FormatTimestamp(t2 + 1000000) + "' ";
    auto result = engine.Run(range +
                             "Retrieve P, Q From PATHS P, PATHS Q "
                             "Where P MATCHES A(name='a')->E()->B() "
                             "And Q MATCHES A1(val=7)");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_TRUE(result->rows.empty())
        << nepal::testing::BackendName(kind)
        << ": touching validity periods produced a coexistence row with "
        << "joint validity "
        << (result->rows.empty() ? "" : result->rows[0].valid.ToString());

    // Each variable alone is still found with its true (non-empty) period.
    auto p_only = engine.Run(
        range + "Retrieve P From PATHS P Where P MATCHES A(name='a')->E()->B()");
    ASSERT_TRUE(p_only.ok()) << p_only.status();
    ASSERT_EQ(p_only->rows.size(), 1u);
    EXPECT_EQ(p_only->rows[0].valid, Interval({t0, t1}));
  }
}

TEST(PropertyTest, ViewServedEqualsColdEvaluation) {
  // For random temporal graphs and random mutation streams, a
  // WAL-maintained materialized view must serve rows identical to cold
  // evaluation at its freshness epoch — on both backends, with batched and
  // single-op writes, whether the view compiles to an automaton or an
  // unrolled plan. The cold oracle always plans cost-based, so this also
  // cross-checks the view's compilation strategy.
  namespace fs = std::filesystem;
  schema::SchemaPtr schema = *schema::ParseSchemaDsl(kPropertySchema);
  Rng rng(77007);
  int checked = 0;
  for (int round = 0; round < 8; ++round) {
    for (auto kind : {nepal::testing::BackendKind::kGraphStore,
                      nepal::testing::BackendKind::kRelational}) {
      for (auto strategy :
           {nql::LoopStrategy::kAutomaton, nql::LoopStrategy::kUnroll}) {
        fs::path dir =
            fs::path(::testing::TempDir()) /
            ("nepal_prop_views_" + std::to_string(round) + "_" +
             nepal::testing::BackendName(kind) +
             (strategy == nql::LoopStrategy::kAutomaton ? "_nfa" : "_unr"));
        fs::remove_all(dir);
        persist::DurableOptions d_options;
        d_options.fsync_policy = persist::FsyncPolicy::kNone;
        auto store = persist::DurableStore::Open(
            dir.string(), schema,
            [kind](schema::SchemaPtr s) {
              return nepal::testing::MakeBackend(kind, std::move(s));
            },
            d_options);
        ASSERT_TRUE(store.ok()) << store.status();
        storage::GraphDb* db = &(*store)->db();

        const char* node_classes[] = {"A", "A1", "B"};
        const char* edge_classes[] = {"E", "E1", "F"};
        std::vector<Uid> alive;
        for (int i = 0; i < 10; ++i) {
          auto uid = db->AddNode(
              node_classes[rng.Below(3)],
              {{"name", Value("n" + std::to_string(i))},
               {"val", Value(static_cast<int64_t>(rng.Below(4)))}});
          ASSERT_TRUE(uid.ok()) << uid.status();
          alive.push_back(*uid);
        }
        for (int i = 0; i < 16; ++i) {
          Uid s = alive[rng.Below(alive.size())];
          Uid t = alive[rng.Below(alive.size())];
          if (s == t) continue;
          ASSERT_TRUE(db->AddEdge(edge_classes[rng.Below(3)], s, t,
                                  {{"w", Value(static_cast<int64_t>(
                                             rng.Below(4)))}})
                          .ok());
        }

        nql::PlanOptions view_plan;
        view_plan.loop_strategy = strategy;
        auto catalog = views::ViewCatalog::Open(store->get(), view_plan);
        ASSERT_TRUE(catalog.ok()) << catalog.status();
        nql::RpeNode rpe = RandomRpe(&rng, 2);
        Status created = (*catalog)->CreateView("v", rpe);
        if (!created.ok()) continue;  // e.g. unplannable random RPE

        // Random mutation stream: adds, updates, removes and clock steps,
        // committed alternately one-at-a-time and as atomic batches.
        Timestamp now = db->Now();
        int node_seq = 10;
        auto random_mutation = [&]() -> std::optional<storage::Mutation> {
          switch (rng.Below(5)) {
            case 0:
              return storage::Mutation::AddNode(
                  node_classes[rng.Below(3)],
                  {{"name", Value("m" + std::to_string(node_seq++))},
                   {"val", Value(static_cast<int64_t>(rng.Below(4)))}});
            case 1: {
              if (alive.size() < 2) return std::nullopt;
              Uid s = alive[rng.Below(alive.size())];
              Uid t = alive[rng.Below(alive.size())];
              if (s == t) return std::nullopt;
              return storage::Mutation::AddEdge(
                  edge_classes[rng.Below(3)], s, t,
                  {{"w", Value(static_cast<int64_t>(rng.Below(4)))}});
            }
            case 2: {
              if (alive.empty()) return std::nullopt;
              return storage::Mutation::Update(
                  alive[rng.Below(alive.size())],
                  {{"val", Value(static_cast<int64_t>(rng.Below(4)))}});
            }
            case 3: {
              if (alive.size() <= 4) return std::nullopt;
              size_t at = rng.Below(alive.size());
              Uid gone = alive[at];
              alive.erase(alive.begin() + at);
              return storage::Mutation::Remove(gone);
            }
            default:
              now += 1000000;  // +1s
              return storage::Mutation::SetTime(now);
          }
        };
        for (int op = 0; op < 30;) {
          if (rng.Chance(0.5)) {
            std::vector<storage::Mutation> batch;
            for (int j = 0; j < 4; ++j) {
              if (auto m = random_mutation()) batch.push_back(std::move(*m));
            }
            if (!batch.empty()) ASSERT_TRUE(db->ApplyBatch(batch).ok());
            for (const storage::Mutation& m : batch) {
              if (m.kind == storage::Mutation::Kind::kAddNode) {
                alive.push_back(m.uid);
              }
            }
            op += 4;
          } else {
            if (auto m = random_mutation()) {
              std::vector<storage::Mutation> one;
              one.push_back(std::move(*m));
              ASSERT_TRUE(db->ApplyBatch(one).ok());
              if (one[0].kind == storage::Mutation::Kind::kAddNode) {
                alive.push_back(one[0].uid);
              }
            }
            ++op;
          }
        }

        ASSERT_TRUE((*catalog)
                        ->WaitUntilFresh("v", db->commit_epoch(),
                                         std::chrono::milliseconds(30000))
                        .ok());
        auto sv = (*catalog)->Serve("v");
        ASSERT_TRUE(sv.has_value());

        // Cold oracle at the served epoch, cost-based plan, canonicalized.
        nql::RpeNode resolved = nql::Normalize(rpe);
        nql::PlanOptions cold_plan;
        ASSERT_TRUE(nql::ResolveRpe(db->schema(), cold_plan.max_repetition,
                                    &resolved)
                        .ok());
        nql::LockedBackend backend(db);
        auto exec = backend.CreateExecutor();
        auto cold = nql::EvaluateMatch(
            *exec, backend, resolved,
            storage::TimeView::Current().WithEpoch(sv->epoch), cold_plan);
        ASSERT_TRUE(cold.ok()) << cold.status();
        storage::CanonicalizePaths(&*cold);

        auto render = [](const storage::PathSet& paths) {
          std::vector<std::string> rows;
          for (const storage::PathState& s : paths) {
            std::string line;
            for (Uid uid : s.uids) line += std::to_string(uid) + ",";
            line += " " + s.valid.ToString();
            rows.push_back(std::move(line));
          }
          std::sort(rows.begin(), rows.end());
          return rows;
        };
        EXPECT_EQ(render(*sv->paths), render(*cold))
            << nepal::testing::BackendName(kind) << " "
            << nql::Normalize(rpe).ToString();
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 20);
}

}  // namespace
}  // namespace nepal
