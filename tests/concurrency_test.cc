// Concurrent reader/writer stress tests. A writer thread keeps advancing
// the transaction clock and mutating the deployment while several reader
// threads run queries (including parallel-executor and subquery queries).
// Every query must observe a consistent store — the engine holds the
// GraphDb shared lock for the whole evaluation — and the whole test must
// be clean under TSan (the CI Debug job builds with
// -fsanitize=thread,undefined).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;
using nepal::testing::TinyNetwork;

class ConcurrencyTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(ConcurrencyTest, WriterAndParallelReadersStayConsistent) {
  TinyNetwork net = nepal::testing::MakeTinyNetwork(GetParam());
  storage::GraphDb& db = *net.db;

  constexpr int kWriterOps = 120;
  constexpr int kReaders = 3;
  constexpr int kMinQueriesPerReader = 15;

  std::atomic<bool> writer_done{false};
  std::atomic<int> write_errors{0};

  // One writer: advances the clock every iteration and churns VM
  // placements — add a VM on a host, flip its status, remove it again.
  std::thread writer([&] {
    std::vector<Uid> spawned;
    for (int i = 0; i < kWriterOps; ++i) {
      // Monotone clock: one second per write batch.
      if (!db.SetTime(db.Now() + 1000000).ok()) ++write_errors;
      switch (i % 4) {
        case 0: {
          auto vm = db.AddNode(
              "VMWare", {{"name", Value("stress-vm-" + std::to_string(i))},
                         {"status", Value("Green")}});
          if (!vm.ok()) {
            ++write_errors;
            break;
          }
          spawned.push_back(*vm);
          Uid host = (i % 8 == 0) ? net.host1 : net.host2;
          if (!db.AddEdge("OnServer", *vm, host, {}).ok()) ++write_errors;
          break;
        }
        case 1:
          if (!db.UpdateElement(net.vm1,
                                {{"status", Value(i % 2 == 0 ? "Red"
                                                             : "Green")}})
                   .ok()) {
            ++write_errors;
          }
          break;
        case 2:
          if (!spawned.empty()) {
            // Node removal cascades onto the placement edge.
            if (!db.RemoveElement(spawned.back()).ok()) ++write_errors;
            spawned.pop_back();
          }
          break;
        default:
          if (!db.UpdateElement(net.host2,
                                {{"serial", Value("s" + std::to_string(i))}})
                   .ok()) {
            ++write_errors;
          }
          break;
      }
    }
    writer_done.store(true);
  });

  // Readers: each has its own engine with the parallel executor enabled,
  // so shared-lock acquisition, frontier sharding, and the work-stealing
  // pool all run under contention. Query #2 nests a subquery, exercising
  // the locks-already-held recursion path.
  const std::string queries[] = {
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()",
      "Retrieve P From PATHS P Where P MATCHES "
      "Host()->[Connects()]{1,3}->Host()",
      "Retrieve V From PATHS V Where V MATCHES Host() "
      "And EXISTS( Retrieve P From PATHS P "
      "  Where P MATCHES VM()->Host() And target(P) = target(V))",
      "Retrieve P From PATHS P Where P MATCHES VM(status='Green')",
  };

  std::atomic<int> read_errors{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      nql::EngineOptions options;
      options.plan.parallelism = 4;
      nql::QueryEngine engine(net.db.get(), options);
      int ran = 0;
      while (!writer_done.load() || ran < kMinQueriesPerReader) {
        const std::string& q = queries[(r + ran) % 4];
        auto result = engine.Run(q);
        if (!result.ok()) {
          ++read_errors;
          ADD_FAILURE() << "reader " << r << ": " << result.status()
                        << "\nquery: " << q;
          break;
        }
        ++ran;
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(write_errors.load(), 0);
  EXPECT_EQ(read_errors.load(), 0);

  // The store must end in a consistent, queryable state.
  nql::QueryEngine engine(net.db.get());
  auto result = engine.Run(
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->rows.size(), 0u);
}

TEST_P(ConcurrencyTest, ConcurrentReadersShareOneEngine) {
  // QueryEngine::Run is const and must be safe to call from many threads
  // on the same instance (the relational executor's TEMP-table counter is
  // the shared mutable state this guards).
  TinyNetwork net = nepal::testing::MakeTinyNetwork(GetParam());
  nql::EngineOptions options;
  options.plan.parallelism = 4;
  nql::QueryEngine engine(net.db.get(), options);

  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < 4; ++r) {
    threads.emplace_back([&, r] {
      for (int i = 0; i < 10; ++i) {
        auto result = engine.Run(
            r % 2 == 0
                ? "Retrieve P From PATHS P Where P MATCHES "
                  "VNF()->[Vertical()]{1,6}->Host()"
                : "Retrieve P From PATHS P Where P MATCHES "
                  "Host()->[Connects()]{1,3}->Host()");
        if (!result.ok() || result->rows.empty()) ++errors;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, ConcurrencyTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
