// Tests for the workload generators: structural invariants of the layered
// virtualized network and of the legacy topology, determinism, and the
// properties the benchmark harness relies on.

#include <set>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "netmodel/legacy.h"
#include "netmodel/virtualized.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

netmodel::BackendFactory GsFactory() {
  return [](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
    return nepal::testing::MakeBackend(
        nepal::testing::BackendKind::kGraphStore, std::move(s));
  };
}

TEST(VirtualizedSchemaTest, ClassCountsMatchThePaper) {
  schema::SchemaPtr s = netmodel::VirtualizedSchema();
  size_t node_classes = 0, edge_classes = 0;
  for (const schema::ClassDef* cls : s->classes()) {
    if (cls->is_root()) continue;
    (cls->is_node() ? node_classes : edge_classes)++;
  }
  EXPECT_EQ(node_classes, 54u);
  EXPECT_EQ(edge_classes, 12u);
}

TEST(VirtualizedNetworkTest, SizesAndHistoryInPaperBallpark) {
  netmodel::VirtualizedParams params;
  auto net = BuildVirtualizedNetwork(params, GsFactory());
  ASSERT_TRUE(net.ok()) << net.status();
  // Paper: about 2,000 nodes and 11,000 edges, history ~6% larger.
  EXPECT_GT(net->db->node_count(), 1500u);
  EXPECT_LT(net->db->node_count(), 3000u);
  EXPECT_GT(net->db->edge_count(), 6000u);
  EXPECT_LT(net->db->edge_count(), 14000u);
  double growth =
      static_cast<double>(net->final_version_count -
                          net->initial_version_count) /
      static_cast<double>(net->initial_version_count);
  EXPECT_GT(growth, 0.02);
  EXPECT_LT(growth, 0.15);
  EXPECT_EQ(net->vnfs.size(), 33u);  // 33 distinct VNFs, as in the paper
}

TEST(VirtualizedNetworkTest, EveryVnfReachesAHost) {
  netmodel::VirtualizedParams params;
  params.history_days = 0;
  auto net = BuildVirtualizedNetwork(params, GsFactory());
  ASSERT_TRUE(net.ok());
  nql::QueryEngine engine(net->db.get());
  for (Uid vnf : net->vnfs) {
    auto result = engine.Run(
        "Retrieve P From PATHS P Where P MATCHES VNF(id=" +
        std::to_string(vnf) + ")->[Vertical()]{1,6}->Host()");
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_FALSE(result->rows.empty()) << "VNF " << vnf;
    // Every dependency path descends VNF -> VFC -> container -> host.
    for (const auto& row : result->rows) {
      EXPECT_EQ(row.paths[0].uids.size(), 7u);
    }
  }
}

TEST(VirtualizedNetworkTest, DeterministicUnderSeed) {
  netmodel::VirtualizedParams params;
  params.history_days = 3;
  auto n1 = BuildVirtualizedNetwork(params, GsFactory());
  auto n2 = BuildVirtualizedNetwork(params, GsFactory());
  ASSERT_TRUE(n1.ok());
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n1->db->node_count(), n2->db->node_count());
  EXPECT_EQ(n1->db->edge_count(), n2->db->edge_count());
  EXPECT_EQ(n1->final_version_count, n2->final_version_count);
  params.seed = 43;
  auto n3 = BuildVirtualizedNetwork(params, GsFactory());
  ASSERT_TRUE(n3.ok());
  EXPECT_NE(n1->final_version_count, n3->final_version_count);
}

TEST(VirtualizedNetworkTest, HistoryPreservesPastPlacements) {
  netmodel::VirtualizedParams params;
  auto net = BuildVirtualizedNetwork(params, GsFactory());
  ASSERT_TRUE(net.ok());
  nql::QueryEngine engine(net->db.get());
  // The initial snapshot state is reachable with a timeslice.
  auto past = engine.Run(
      "AT '" + FormatTimestamp(net->snapshot_time) + "' " +
      "Retrieve P From PATHS P Where P MATCHES VM()->Host()");
  auto now = engine.Run(
      "Retrieve P From PATHS P Where P MATCHES VM()->Host()");
  ASSERT_TRUE(past.ok());
  ASSERT_TRUE(now.ok());
  EXPECT_FALSE(past->rows.empty());
  // Churn (migrations, scale events) changed placements.
  EXPECT_NE(past->rows.size(), now->rows.size());
}

TEST(LegacySchemaTest, SubclassedSchemaHas66EdgeClasses) {
  schema::SchemaPtr s = netmodel::LegacySubclassedSchema();
  size_t edge_classes = 0;
  for (const schema::ClassDef* cls : s->classes()) {
    if (cls->is_edge() && !cls->is_root() && cls->name() != "legacy_link") {
      ++edge_classes;
    }
  }
  EXPECT_EQ(edge_classes, 66u);
  // Every subclass derives from legacy_link.
  EXPECT_TRUE(s->FindClass("contains")->IsSubclassOf(
      s->FindClass("legacy_link")));
  EXPECT_TRUE(s->FindClass("link_type_42") != nullptr);
}

class LegacyNetworkTest : public ::testing::TestWithParam<bool> {};

TEST_P(LegacyNetworkTest, StructureAndQueries) {
  netmodel::LegacyParams params;
  params.num_devices = 120;
  params.history_days = 5;
  params.subclassed = GetParam();
  auto net = BuildLegacyNetwork(params, GsFactory());
  ASSERT_TRUE(net.ok()) << net.status();
  EXPECT_EQ(net->devices.size(), 120u);
  EXPECT_EQ(net->ports.size(), 120u * 32u);
  EXPECT_FALSE(net->chain_heads.empty());
  EXPECT_FALSE(net->egress_ports.empty());
  EXPECT_FALSE(net->hub_devices.empty());

  nql::QueryEngine engine(net->db.get());
  // Vertical navigation: every device decomposes into 32 ports + group
  // membership paths.
  auto down = engine.Run(
      "Retrieve P From PATHS P Where P MATCHES legacy_node(name='dev-0', "
      "type_indicator='device')->[" +
      net->EdgeAtom("contains") + "]{1,3}->" + net->NodeAtom("port"));
  ASSERT_TRUE(down.ok()) << down.status();
  EXPECT_GE(down->rows.size(), 32u);

  // Forward service chains exist from every chain head.
  auto v = net->db->GetCurrent(net->chain_heads[0]);
  ASSERT_TRUE(v.ok());
  std::string head =
      v->fields[static_cast<size_t>(v->cls->FieldIndex("name"))].AsString();
  auto forward = engine.Run(
      "Retrieve P From PATHS P Where P MATCHES legacy_node(name='" + head +
      "')->[" + net->EdgeAtom("service_hop") + "]{1,4}->" +
      net->NodeAtom("port"));
  ASSERT_TRUE(forward.ok());
  EXPECT_GT(forward->rows.size(), 1u);

  // The two load modes expose the same pathway semantics: class atoms in
  // subclassed mode, type_indicator predicates in single-class mode.
  double growth =
      static_cast<double>(net->final_version_count -
                          net->initial_version_count) /
      static_cast<double>(net->initial_version_count);
  EXPECT_GT(growth, 0.005);
}

TEST_P(LegacyNetworkTest, ReversePathsExplodeAtEgress) {
  netmodel::LegacyParams params;
  // Small but proportioned: with few devices the feeder pool is small, so
  // keep the in-branching low or the converging trees turn into a dense
  // multigraph with a combinatorially exploding number of simple paths.
  params.num_devices = 80;
  params.reverse_in_branching = 4;
  params.history_days = 0;
  params.subclassed = GetParam();
  auto net = BuildLegacyNetwork(params, GsFactory());
  ASSERT_TRUE(net.ok());
  nql::QueryEngine engine(net->db.get());
  auto v = net->db->GetCurrent(net->egress_ports[0]);
  std::string egress =
      v->fields[static_cast<size_t>(v->cls->FieldIndex("name"))].AsString();
  auto reverse = engine.Run(
      "Retrieve P From PATHS P Where P MATCHES " + net->NodeAtom("port") +
      "->[" + net->EdgeAtom("service_hop") + "]{1,4}->legacy_node(name='" +
      egress + "')");
  ASSERT_TRUE(reverse.ok());
  // Orders of magnitude more paths than a forward chain.
  EXPECT_GT(reverse->rows.size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Loads, LegacyNetworkTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "subclassed" : "single_class";
                         });

TEST(LegacyModesTest, BothLoadsAgreeOnPathSets) {
  // The defining property of the Section 6 reload: the subclassed graph
  // answers the same queries with the same pathways.
  netmodel::LegacyParams params;
  params.num_devices = 40;
  params.history_days = 0;
  params.subclassed = false;
  auto single = BuildLegacyNetwork(params, GsFactory());
  params.subclassed = true;
  auto sub = BuildLegacyNetwork(params, GsFactory());
  ASSERT_TRUE(single.ok());
  ASSERT_TRUE(sub.ok());
  nql::QueryEngine e1(single->db.get());
  nql::QueryEngine e2(sub->db.get());
  for (const char* port : {"dev-3-sh0-c1-p2", "dev-7-sh1-c0-p0"}) {
    auto q1 = e1.Run(
        "Select source(P).name From PATHS P Where P MATCHES " +
        single->NodeAtom("device") + "->[" + single->EdgeAtom("contains") +
        "]{1,3}->legacy_node(name='" + std::string(port) + "')");
    auto q2 = e2.Run(
        "Select source(P).name From PATHS P Where P MATCHES " +
        sub->NodeAtom("device") + "->[" + sub->EdgeAtom("contains") +
        "]{1,3}->legacy_node(name='" + std::string(port) + "')");
    ASSERT_TRUE(q1.ok());
    ASSERT_TRUE(q2.ok());
    std::multiset<std::string> s1, s2;
    for (const auto& row : q1->rows) s1.insert(row.values[0].ToString());
    for (const auto& row : q2->rows) s2.insert(row.values[0].ToString());
    EXPECT_EQ(s1, s2) << port;
  }
}

}  // namespace
}  // namespace nepal
