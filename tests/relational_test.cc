// Backend-internal tests for the mini relational engine: table layout,
// INHERITS-style subtree scans, current/history table pairs, DDL rendering,
// index behaviour, and the SQL trace of the bulk-join executor.

#include <gtest/gtest.h>

#include "relational/relational_store.h"
#include "relational/table.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace nepal::relational {
namespace {

schema::SchemaPtr TestSchema() {
  auto s = schema::ParseSchemaDsl(R"(
    node A : Node { val: int; }
    node A1 : A {}
    node A2 : A {}
    edge E : Edge {}
    edge E1 : E {}
    allow E (Node -> Node);
  )");
  EXPECT_TRUE(s.ok()) << s.status();
  return *s;
}

TEST(TableTest, InsertRemoveAndTombstones) {
  schema::SchemaPtr s = TestSchema();
  const schema::ClassDef* a = s->FindClass("A");
  Table table(a, /*is_history=*/false, {"name"});
  EXPECT_EQ(table.sql_name(), "A");

  storage::ElementVersion row;
  row.uid = 1;
  row.cls = a;
  row.fields = {Value("x"), Value(1)};
  row.valid = Interval{10, kTimestampMax};
  ASSERT_TRUE(table.Insert(row).ok());
  EXPECT_EQ(table.row_count(), 1u);
  // Duplicate uid rejected.
  EXPECT_FALSE(table.Insert(row).ok());
  // Closed rows may not enter a current table.
  storage::ElementVersion closed = row;
  closed.uid = 2;
  closed.valid = Interval{10, 20};
  EXPECT_FALSE(table.Insert(closed).ok());

  auto removed = table.Remove(1);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(table.row_count(), 0u);
  EXPECT_EQ(table.FindById(1), nullptr);
  EXPECT_FALSE(table.Remove(1).ok());
  // Tombstoned rows do not reappear in scans or index probes.
  size_t seen = 0;
  table.ScanAll([&](const storage::ElementVersion&) { ++seen; });
  EXPECT_EQ(seen, 0u);
  table.ForEachByField("name", Value("x"),
                       [&](const storage::ElementVersion&) { ++seen; });
  EXPECT_EQ(seen, 0u);
}

TEST(TableTest, HistoryTableAllowsMultipleVersions) {
  schema::SchemaPtr s = TestSchema();
  const schema::ClassDef* a = s->FindClass("A");
  Table hist(a, /*is_history=*/true, {});
  EXPECT_EQ(hist.sql_name(), "A__history");
  for (int i = 0; i < 3; ++i) {
    storage::ElementVersion row;
    row.uid = 7;
    row.cls = a;
    row.fields = {Value("x"), Value(i)};
    row.valid = Interval{i * 10, i * 10 + 10};
    ASSERT_TRUE(hist.Insert(row).ok());
  }
  size_t versions = 0;
  hist.ForEachById(7, [&](const storage::ElementVersion&) { ++versions; });
  EXPECT_EQ(versions, 3u);
}

TEST(TableTest, CreateSqlRendersInherits) {
  schema::SchemaPtr s = TestSchema();
  Table t(s->FindClass("A1"), false, {});
  EXPECT_EQ(t.ToCreateSql(),
            "CREATE TABLE A1 (id_ bigint, sys_period tstzrange) INHERITS(A);");
  Table e(s->FindClass("E"), false, {});
  EXPECT_NE(e.ToCreateSql().find("source_id_ bigint, target_id_ bigint"),
            std::string::npos);
  Table h(s->FindClass("A1"), true, {});
  EXPECT_NE(h.ToCreateSql().find("A1__history"), std::string::npos);
  EXPECT_NE(h.ToCreateSql().find("INHERITS(A__history)"), std::string::npos);
}

class RelationalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = TestSchema();
    db_ = std::make_unique<storage::GraphDb>(
        schema_, std::make_unique<RelationalStore>(schema_));
    store_ = static_cast<const RelationalStore*>(&db_->backend());
  }
  schema::SchemaPtr schema_;
  std::unique_ptr<storage::GraphDb> db_;
  const RelationalStore* store_;
};

TEST_F(RelationalStoreTest, RowsLandInTheirExactClassTable) {
  ASSERT_TRUE(db_->AddNode("A", {{"val", Value(1)}}).ok());
  ASSERT_TRUE(db_->AddNode("A1", {{"val", Value(2)}}).ok());
  ASSERT_TRUE(db_->AddNode("A1", {{"val", Value(3)}}).ok());

  auto count_rows = [&](const char* cls, bool history) {
    size_t n = 0;
    for (const Table* t : store_->SubtreeTables(schema_->FindClass(cls),
                                                history)) {
      if (t->cls() == schema_->FindClass(cls)) n = t->row_count();
    }
    return n;
  };
  EXPECT_EQ(count_rows("A", false), 1u);   // only the exact-A row
  EXPECT_EQ(count_rows("A1", false), 1u + 1u);
  // The subtree scan unions them (INHERITS semantics).
  EXPECT_EQ(store_->CountClass(schema_->FindClass("A")), 3u);
  EXPECT_EQ(store_->CountClass(schema_->FindClass("A1")), 2u);
  EXPECT_EQ(store_->CountClass(schema_->FindClass("A2")), 0u);
}

TEST_F(RelationalStoreTest, UpdateMovesOldVersionToHistoryTable) {
  Timestamp t0 = db_->Now();
  Uid a = *db_->AddNode("A", {{"val", Value(1)}});
  ASSERT_TRUE(db_->SetTime(t0 + 10).ok());
  ASSERT_TRUE(db_->UpdateElement(a, {{"val", Value(2)}}).ok());

  std::vector<const Table*> current =
      store_->SubtreeTables(schema_->FindClass("A"), false);
  std::vector<const Table*> history =
      store_->SubtreeTables(schema_->FindClass("A"), true);
  EXPECT_EQ(current[0]->row_count(), 1u);
  EXPECT_EQ(history[0]->row_count(), 1u);
  size_t open = 0;
  current[0]->ScanAll([&](const storage::ElementVersion& v) {
    EXPECT_TRUE(v.is_current());
    ++open;
  });
  history[0]->ScanAll([&](const storage::ElementVersion& v) {
    EXPECT_FALSE(v.is_current());
    EXPECT_EQ(v.valid, (Interval{t0, t0 + 10}));
  });
  EXPECT_EQ(open, 1u);
}

TEST_F(RelationalStoreTest, DdlCoversEveryClassPair) {
  std::string ddl = store_->ToCreateSql();
  for (const schema::ClassDef* cls : schema_->classes()) {
    EXPECT_NE(ddl.find("CREATE TABLE " + cls->name() + " "),
              std::string::npos)
        << cls->name();
    EXPECT_NE(ddl.find("CREATE TABLE " + cls->name() + "__history"),
              std::string::npos);
  }
}

TEST_F(RelationalStoreTest, EdgeIndexesServeIncidentLookups) {
  Uid a = *db_->AddNode("A", {});
  Uid b = *db_->AddNode("A1", {});
  Uid e = *db_->AddEdge("E1", a, b, {});
  size_t hits = 0;
  // Probing the E subtree must reach rows physically stored in E1's table.
  store_->IncidentEdges(a, storage::Direction::kOut, schema_->FindClass("E"),
                        storage::TimeView::Current(),
                        [&](const storage::ElementVersion& v) {
                          EXPECT_EQ(v.uid, e);
                          ++hits;
                        });
  EXPECT_EQ(hits, 1u);
  // Probing only E's exact sibling-free portion of the subtree still works
  // through the class filter.
  hits = 0;
  store_->IncidentEdges(a, storage::Direction::kOut,
                        schema_->FindClass("E1"),
                        storage::TimeView::Current(),
                        [&](const storage::ElementVersion&) { ++hits; });
  EXPECT_EQ(hits, 1u);
}

}  // namespace
}  // namespace nepal::relational
