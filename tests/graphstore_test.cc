// Backend-internal tests for the property-graph store: label-path typing
// (prefix matching), adjacency under deletion, field-index maintenance
// across updates, and the historical-scan index fallback.

#include <set>

#include <gtest/gtest.h>

#include "graphstore/graph_store.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace nepal::graphstore {
namespace {

schema::SchemaPtr TestSchema() {
  auto s = schema::ParseSchemaDsl(R"(
    node Container : Node { status: string; }
    node VM : Container {}
    node VMWare : VM {}
    node Docker : Container {}
    edge E : Edge {}
    allow E (Node -> Node);
  )");
  EXPECT_TRUE(s.ok()) << s.status();
  return *s;
}

class GraphStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    schema_ = TestSchema();
    db_ = std::make_unique<storage::GraphDb>(
        schema_, std::make_unique<GraphStore>(schema_));
  }

  std::set<Uid> ScanUids(const char* cls, const storage::TimeView& view,
                         std::optional<std::pair<std::string, Value>> eq =
                             std::nullopt) {
    storage::ScanSpec spec;
    spec.cls = schema_->FindClass(cls);
    if (eq) {
      spec.eq = std::make_pair(spec.cls->FieldIndex(eq->first), eq->second);
    }
    std::set<Uid> uids;
    db_->backend().Scan(spec, view, [&](const storage::ElementVersion& v) {
      uids.insert(v.uid);
    });
    return uids;
  }

  schema::SchemaPtr schema_;
  std::unique_ptr<storage::GraphDb> db_;
};

TEST_F(GraphStoreTest, LabelPathsEncodeInheritance) {
  // The element label is the full inheritance path (the Gremlin strategy);
  // class atoms match by prefix, which the pre-order subtree realizes.
  EXPECT_EQ(schema_->FindClass("VMWare")->label_path(),
            "Node:Container:VM:VMWare");
  Uid vmware = *db_->AddNode("VMWare", {});
  Uid docker = *db_->AddNode("Docker", {});
  Uid container = *db_->AddNode("Container", {});
  EXPECT_EQ(ScanUids("VM", storage::TimeView::Current()),
            (std::set<Uid>{vmware}));
  EXPECT_EQ(ScanUids("Container", storage::TimeView::Current()),
            (std::set<Uid>{vmware, docker, container}));
  EXPECT_EQ(ScanUids("Docker", storage::TimeView::Current()),
            (std::set<Uid>{docker}));
}

TEST_F(GraphStoreTest, NameIndexFollowsUpdates) {
  Uid a = *db_->AddNode("VM", {{"name", Value("alpha")}});
  EXPECT_EQ(ScanUids("VM", storage::TimeView::Current(),
                     std::make_pair(std::string("name"), Value("alpha"))),
            (std::set<Uid>{a}));
  ASSERT_TRUE(db_->SetTime(db_->Now() + 10).ok());
  ASSERT_TRUE(db_->UpdateElement(a, {{"name", Value("beta")}}).ok());
  EXPECT_TRUE(ScanUids("VM", storage::TimeView::Current(),
                       std::make_pair(std::string("name"), Value("alpha")))
                  .empty());
  EXPECT_EQ(ScanUids("VM", storage::TimeView::Current(),
                     std::make_pair(std::string("name"), Value("beta"))),
            (std::set<Uid>{a}));
}

TEST_F(GraphStoreTest, HistoricalEqScanBypassesTheIndex) {
  Timestamp t0 = db_->Now();
  Uid a = *db_->AddNode("VM", {{"name", Value("alpha")}});
  ASSERT_TRUE(db_->SetTime(t0 + 10).ok());
  ASSERT_TRUE(db_->UpdateElement(a, {{"name", Value("beta")}}).ok());
  // The index only covers current versions; the AsOf scan must still find
  // the old name by falling back to a sequential filter.
  EXPECT_EQ(ScanUids("VM", storage::TimeView::AsOf(t0 + 5),
                     std::make_pair(std::string("name"), Value("alpha"))),
            (std::set<Uid>{a}));
  EXPECT_TRUE(ScanUids("VM", storage::TimeView::AsOf(t0 + 5),
                       std::make_pair(std::string("name"), Value("beta")))
                  .empty());
}

TEST_F(GraphStoreTest, AdjacencySurvivesDeletionHistorically) {
  Timestamp t0 = db_->Now();
  Uid a = *db_->AddNode("VM", {});
  Uid b = *db_->AddNode("VM", {});
  Uid e = *db_->AddEdge("E", a, b, {});
  ASSERT_TRUE(db_->SetTime(t0 + 10).ok());
  ASSERT_TRUE(db_->RemoveElement(e).ok());
  size_t current = 0, historical = 0;
  db_->backend().IncidentEdges(a, storage::Direction::kOut, nullptr,
                               storage::TimeView::Current(),
                               [&](const auto&) { ++current; });
  db_->backend().IncidentEdges(a, storage::Direction::kOut, nullptr,
                               storage::TimeView::Range(t0, t0 + 20),
                               [&](const auto&) { ++historical; });
  EXPECT_EQ(current, 0u);
  EXPECT_EQ(historical, 1u);
}

TEST_F(GraphStoreTest, EstimateScanUsesIndexStatistics) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(db_->AddNode("VM", {{"name", Value("dup")}}).ok());
  }
  ASSERT_TRUE(db_->AddNode("VM", {{"name", Value("rare")}}).ok());
  storage::ScanSpec spec;
  spec.cls = schema_->FindClass("VM");
  spec.eq = std::make_pair(spec.cls->FieldIndex("name"), Value("rare"));
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec), 1.0);
  spec.eq = std::make_pair(spec.cls->FieldIndex("name"), Value("dup"));
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec), 20.0);
  spec.eq = std::make_pair(spec.cls->FieldIndex("name"), Value("absent"));
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec), 0.0);
  // The stats counters cover unindexed fields too: no VM sets status, so
  // the estimate is an exact zero rather than the old schema hint.
  spec.eq = std::make_pair(spec.cls->FieldIndex("status"), Value("x"));
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec), 0.0);
  // Past kMaxDistinctValues distinct values the counter saturates and the
  // estimate degrades to the schema hint (count/10 + 1).
  for (int i = 0; i < 1100; ++i) {
    ASSERT_TRUE(
        db_->AddNode("VM", {{"name", Value("u" + std::to_string(i))}}).ok());
  }
  spec.eq = std::make_pair(spec.cls->FieldIndex("name"), Value("dup"));
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec), 1121.0 / 10.0 + 1.0);
}

TEST_F(GraphStoreTest, VersionCountTracksEveryWrite) {
  Uid a = *db_->AddNode("VM", {});
  ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
  ASSERT_TRUE(db_->UpdateElement(a, {{"status", Value("Red")}}).ok());
  ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
  ASSERT_TRUE(db_->UpdateElement(a, {{"status", Value("Green")}}).ok());
  EXPECT_EQ(db_->backend().VersionCount(), 3u);
  ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
  ASSERT_TRUE(db_->RemoveElement(a).ok());
  EXPECT_EQ(db_->backend().VersionCount(), 3u);  // deletion closes, no new
}

}  // namespace
}  // namespace nepal::graphstore
