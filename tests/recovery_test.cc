// Crash-recovery fault-injection suite (the durability subsystem's
// acceptance tests): WAL round trips, torn tails, CRC damage, checkpoint
// loss, a SIGKILLed writer process, snapshot save/load, and exact
// statistics restoration — always verifying that the recovered database
// answers current, timeslice and time-range queries byte-identically on
// both execution backends.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "netmodel/feed.h"
#include "persist/durable_store.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

namespace fs = std::filesystem;
using nepal::testing::BackendKind;
using persist::DurableOptions;
using persist::DurableStore;
using persist::FsyncPolicy;

constexpr const char* kT0 = "2017-02-15 08:00:00";
constexpr const char* kT1 = "2017-02-15 09:00:00";
constexpr const char* kT2 = "2017-02-15 10:00:00";
constexpr const char* kT3 = "2017-02-15 11:00:00";
constexpr const char* kT4 = "2017-02-15 12:00:00";

Timestamp Ts(const char* s) {
  auto r = ParseTimestamp(s);
  EXPECT_TRUE(r.ok());
  return *r;
}

std::string FreshDir(const std::string& name) {
  // Suffix with the full test name (param included) so the graphstore and
  // relational instantiations of one TEST_P never share a directory when
  // ctest runs them concurrently.
  std::string unique = "nepal_rec_" + name;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    unique += "_";
    unique += info->name();
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
  }
  fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory(BackendKind kind) {
  return [kind](schema::SchemaPtr s) {
    return nepal::testing::MakeBackend(kind, std::move(s));
  };
}

Result<std::unique_ptr<DurableStore>> OpenDir(const std::string& dir,
                                              BackendKind kind,
                                              DurableOptions options = {}) {
  return DurableStore::Open(dir, nepal::testing::Figure3Schema(),
                            Factory(kind), options);
}

/// The temporal workload every recovery test replays: a VNF whose VM
/// migrates between hosts, changes status, and is finally deleted (node
/// removal cascades onto the placement edge), with the clock advancing
/// between batches.
void IngestWorkload(storage::GraphDb& db) {
  ASSERT_TRUE(db.SetTime(Ts(kT0)).ok());
  Uid vnf = *db.AddNode("DNS", {{"name", Value("vnf")},
                                {"vnf_type", Value("dns")}});
  Uid vfc = *db.AddNode("VFC", {{"name", Value("vfc")}});
  Uid vm = *db.AddNode("VMWare", {{"name", Value("vm")},
                                  {"status", Value("Green")}});
  Uid host1 = *db.AddNode("Host", {{"name", Value("host1")},
                                   {"serial", Value("sn-1")}});
  Uid host2 = *db.AddNode("Host", {{"name", Value("host2")},
                                   {"serial", Value("sn-2")}});
  ASSERT_TRUE(
      db.AddEdge("composed_of", vnf, vfc, {{"name", Value("c1")}}).ok());
  ASSERT_TRUE(
      db.AddEdge("hosted_on", vfc, vm, {{"name", Value("h1")}}).ok());
  Uid placement1 =
      *db.AddEdge("OnServer", vm, host1, {{"name", Value("p1")}});

  ASSERT_TRUE(db.SetTime(Ts(kT2)).ok());
  ASSERT_TRUE(db.RemoveElement(placement1).ok());
  ASSERT_TRUE(
      db.AddEdge("OnServer", vm, host2, {{"name", Value("p2")}}).ok());

  ASSERT_TRUE(db.SetTime(Ts(kT3)).ok());
  ASSERT_TRUE(db.UpdateElement(vm, {{"status", Value("Red")}}).ok());

  ASSERT_TRUE(db.SetTime(Ts(kT4)).ok());
  ASSERT_TRUE(db.RemoveElement(host1).ok());
}

const std::vector<std::string>& ObservationQueries() {
  static const std::vector<std::string> queries = {
      // Current snapshot.
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()",
      "Retrieve P From PATHS P Where P MATCHES Container()",
      // Timeslices before and after the migration.
      "AT '" + std::string(kT1) +
          "' Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host()",
      "AT '" + std::string(kT3) +
          "' Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host()",
      // Time-range over the whole morning (maximal validity intervals).
      "AT '" + std::string(kT0) + "' : '" + std::string(kT4) +
          "' Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host()",
      "AT '" + std::string(kT0) + "' : '" + std::string(kT4) +
          "' Retrieve P From PATHS P Where P MATCHES VM(status='Red')",
  };
  return queries;
}

/// Renders every observation query against `db`; recovery must reproduce
/// this string byte for byte.
std::string Observe(storage::GraphDb& db) {
  nql::QueryEngine engine(&db);
  std::string out;
  for (const std::string& q : ObservationQueries()) {
    auto result = engine.Run(q);
    out += "== " + q + "\n";
    out += result.ok() ? result->ToString(/*max_rows=*/100000)
                       : result.status().ToString();
    out += "\n";
  }
  return out;
}

std::string NewestFile(const std::string& dir, const std::string& prefix) {
  std::string newest;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(prefix, 0) == 0 && name > newest) newest = name;
  }
  EXPECT_FALSE(newest.empty()) << "no " << prefix << "* in " << dir;
  return dir + "/" + newest;
}

class RecoveryTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(RecoveryTest, WalReplayIsByteIdenticalOnBothBackends) {
  const std::string dir = FreshDir("roundtrip");
  {
    auto store = OpenDir(dir, GetParam());
    ASSERT_TRUE(store.ok()) << store.status();
    IngestWorkload((*store)->db());
  }

  // Replaying the log under either backend must reproduce, byte for byte,
  // what live ingestion on that backend would have answered — including
  // a WAL written by the *other* backend (the log is logical).
  for (BackendKind kind :
       {BackendKind::kGraphStore, BackendKind::kRelational}) {
    schema::SchemaPtr schema = nepal::testing::Figure3Schema();
    storage::GraphDb live(schema, nepal::testing::MakeBackend(kind, schema));
    IngestWorkload(live);
    const std::string expected = Observe(live);
    ASSERT_FALSE(expected.empty());

    auto reopened = OpenDir(dir, kind);
    ASSERT_TRUE(reopened.ok()) << reopened.status();
    EXPECT_FALSE((*reopened)->recovery_info().restored_checkpoint);
    EXPECT_GT((*reopened)->recovery_info().records_replayed, 0u);
    EXPECT_EQ(Observe((*reopened)->db()), expected)
        << "recovered on " << nepal::testing::BackendName(kind);
  }

  // The recovered database accepts further writes with replayed uids
  // cleared (the allocator resumed past the log's maximum).
  auto reopened = OpenDir(dir, GetParam());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  auto uid = (*reopened)->db().AddNode(
      "Docker", {{"name", Value("post-recovery")}});
  ASSERT_TRUE(uid.ok()) << uid.status();
  ASSERT_TRUE((*reopened)->db().RemoveElement(*uid).ok());
}

TEST_P(RecoveryTest, TornTailIsToleratedAndTruncatedRecordDropped) {
  const std::string dir = FreshDir("torn");
  std::string before_last;
  {
    auto store = OpenDir(dir, GetParam(),
                         DurableOptions{FsyncPolicy::kAlways, 0, 2});
    ASSERT_TRUE(store.ok()) << store.status();
    IngestWorkload((*store)->db());
    before_last = Observe((*store)->db());
    // One more write that the torn tail will destroy.
    ASSERT_TRUE(
        (*store)->db().AddNode("Docker", {{"name", Value("doomed")}}).ok());
  }
  // Crash simulation: clip the final record mid-frame.
  const std::string segment = NewestFile(dir, "wal-");
  const auto size = fs::file_size(segment);
  fs::resize_file(segment, size - 3);

  auto reopened = OpenDir(dir, GetParam());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_TRUE((*reopened)->recovery_info().torn_tail);
  EXPECT_EQ(Observe((*reopened)->db()), before_last);
  nql::QueryEngine engine(&(*reopened)->db());
  auto doomed =
      engine.Run("Retrieve P From PATHS P Where P MATCHES Docker()");
  ASSERT_TRUE(doomed.ok());
  EXPECT_TRUE(doomed->rows.empty());
}

TEST_P(RecoveryTest, CrcDamageFailsRecoveryWithClearError) {
  const std::string dir = FreshDir("crc");
  {
    auto store = OpenDir(dir, GetParam());
    ASSERT_TRUE(store.ok()) << store.status();
    IngestWorkload((*store)->db());
  }
  const std::string segment = NewestFile(dir, "wal-");
  std::fstream f(segment,
                 std::ios::in | std::ios::out | std::ios::binary);
  // Flip a bit inside the first record's payload (past the 24-byte segment
  // header and the 8-byte frame header).
  f.seekg(persist::kWalHeaderSize + persist::kWalFrameHeaderSize + 2);
  char byte = 0;
  f.get(byte);
  f.seekp(persist::kWalHeaderSize + persist::kWalFrameHeaderSize + 2);
  f.put(static_cast<char>(byte ^ 0x10));
  f.close();

  auto reopened = OpenDir(dir, GetParam());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  EXPECT_NE(reopened.status().message().find("crc"), std::string::npos)
      << reopened.status();
}

TEST_P(RecoveryTest, CheckpointShortensReplayAndRestoresStatsCold) {
  const std::string dir = FreshDir("ckpt");
  std::string expected;
  size_t version_count = 0;
  {
    auto store = OpenDir(dir, GetParam());
    ASSERT_TRUE(store.ok()) << store.status();
    IngestWorkload((*store)->db());
    ASSERT_TRUE((*store)->Checkpoint().ok());
    expected = Observe((*store)->db());
    version_count = (*store)->db().backend().VersionCount();
  }
  auto reopened = OpenDir(dir, GetParam());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const auto& info = (*reopened)->recovery_info();
  EXPECT_TRUE(info.restored_checkpoint);
  // Cold start: the state came from the image, not from replaying the
  // workload (nothing was written after the checkpoint).
  EXPECT_EQ(info.records_replayed, 0u);
  EXPECT_EQ((*reopened)->db().backend().VersionCount(), version_count);
  EXPECT_EQ(Observe((*reopened)->db()), expected);
}

TEST_P(RecoveryTest, DeletedNewestCheckpointFallsBackToPrevious) {
  const std::string dir = FreshDir("ckpt_delete");
  std::string expected;
  {
    auto store = OpenDir(dir, GetParam());
    ASSERT_TRUE(store.ok()) << store.status();
    IngestWorkload((*store)->db());
    ASSERT_TRUE((*store)->Checkpoint().ok());
    ASSERT_TRUE(
        (*store)->db().AddNode("Docker", {{"name", Value("late")}}).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());
    expected = Observe((*store)->db());
  }
  fs::remove(NewestFile(dir, "checkpoint-"));

  auto reopened = OpenDir(dir, GetParam());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  const auto& info = (*reopened)->recovery_info();
  EXPECT_TRUE(info.restored_checkpoint);
  EXPECT_EQ(info.checkpoint_seq, 2u);  // the retained, older image
  // The fallback image predates the late Docker node; the WAL tail written
  // after it carries that write, so nothing is lost.
  EXPECT_GT(info.records_replayed, 0u);
  EXPECT_EQ(Observe((*reopened)->db()), expected);
  nql::QueryEngine engine(&(*reopened)->db());
  auto late = engine.Run("Retrieve P From PATHS P Where P MATCHES Docker()");
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late->rows.size(), 1u);
}

TEST_P(RecoveryTest, CorruptNewestCheckpointAlsoFallsBack) {
  const std::string dir = FreshDir("ckpt_corrupt");
  std::string expected;
  {
    auto store = OpenDir(dir, GetParam());
    ASSERT_TRUE(store.ok()) << store.status();
    IngestWorkload((*store)->db());
    ASSERT_TRUE((*store)->Checkpoint().ok());
    ASSERT_TRUE(
        (*store)->db().AddNode("Docker", {{"name", Value("late")}}).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());
    expected = Observe((*store)->db());
  }
  const std::string newest = NewestFile(dir, "checkpoint-");
  std::fstream f(newest, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(100);
  char byte = 0;
  f.get(byte);
  f.seekp(100);
  f.put(static_cast<char>(byte ^ 0x20));
  f.close();

  auto reopened = OpenDir(dir, GetParam());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  EXPECT_EQ((*reopened)->recovery_info().checkpoints_skipped, 1);
  EXPECT_EQ(Observe((*reopened)->db()), expected);
}

TEST_P(RecoveryTest, MissingWalSegmentIsAClearError) {
  const std::string dir = FreshDir("gap");
  {
    auto store = OpenDir(dir, GetParam());
    ASSERT_TRUE(store.ok()) << store.status();
    IngestWorkload((*store)->db());
    ASSERT_TRUE((*store)->Checkpoint().ok());  // checkpoint 2, segment 2
    ASSERT_TRUE(
        (*store)->db().AddNode("Docker", {{"name", Value("late")}}).ok());
    ASSERT_TRUE((*store)->Checkpoint().ok());  // checkpoint 3, segment 3
  }
  // Lose the newest checkpoint AND the segment the fallback needs.
  fs::remove(NewestFile(dir, "checkpoint-"));
  fs::remove(dir + "/wal-00000002.log");

  auto reopened = OpenDir(dir, GetParam());
  ASSERT_FALSE(reopened.ok());
  EXPECT_EQ(reopened.status().code(), StatusCode::kCorruption);
  EXPECT_NE(reopened.status().message().find("missing wal segment"),
            std::string::npos)
      << reopened.status();
}

TEST_P(RecoveryTest, SigkilledWriterRecoversConsistently) {
  const std::string dir = FreshDir("sigkill");
  fs::create_directories(dir);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: ingest with per-append fsync until killed. No gtest macros
    // here — the process dies by SIGKILL, not by assertion.
    auto store = OpenDir(dir, GetParam(),
                         DurableOptions{FsyncPolicy::kAlways, 0, 2});
    if (!store.ok()) _exit(1);
    auto& db = (*store)->db();
    Timestamp t = db.Now();
    for (int i = 0; i < 200000; ++i) {
      t += 1000;
      if (!db.SetTime(t).ok()) _exit(2);
      auto host = db.AddNode(
          "Host", {{"name", Value("h" + std::to_string(i))},
                   {"serial", Value("sn" + std::to_string(i))}});
      if (!host.ok()) _exit(3);
      if (i % 3 == 0) {
        auto vm = db.AddNode("VMWare",
                             {{"name", Value("v" + std::to_string(i))}});
        if (!vm.ok()) _exit(4);
        if (!db.AddEdge("OnServer", *vm, *host, {}).ok()) _exit(5);
      }
      if (i % 50 == 7 && (*store)->Checkpoint().ok() == false) _exit(6);
    }
    _exit(0);
  }
  // Parent: let the child commit some writes, then kill it mid-ingest.
  usleep(300 * 1000);
  kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited before the kill; "
                                    << "raise the iteration count";

  // Recovery must succeed on both backends and agree byte for byte.
  std::string outputs[2];
  size_t counts[2];
  int i = 0;
  for (BackendKind kind :
       {BackendKind::kGraphStore, BackendKind::kRelational}) {
    auto store = OpenDir(dir, kind);
    ASSERT_TRUE(store.ok())
        << nepal::testing::BackendName(kind) << ": " << store.status();
    auto& db = (*store)->db();
    counts[i] = db.node_count();
    nql::QueryEngine engine(&db);
    auto hosts = engine.Run(
        "Retrieve P From PATHS P Where P MATCHES "
        "VM()->OnServer()->Host()");
    ASSERT_TRUE(hosts.ok()) << hosts.status();
    outputs[i] = hosts->ToString(/*max_rows=*/1000000);
    ++i;
  }
  EXPECT_GT(counts[0], 0u) << "the kill landed before any commit; "
                           << "raise the sleep";
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(outputs[0], outputs[1]);
}

TEST_P(RecoveryTest, IdleTailUnderIntervalFsyncSurvivesSigkill) {
  // Regression for the interval-fsync idle-tail hole: a write landing
  // mid-window on a writer that then goes quiet used to stay dirty forever
  // (MaybeSync only synced when a LATER append arrived after the window).
  // The deadline flusher must put it on disk within the window, so a
  // SIGKILL long after the append recovers the record. (SIGKILL alone
  // cannot prove the fsync — the page cache survives process death — so
  // the in-process fsync-counter test in batch_test.cc covers that half;
  // this drill covers the end-to-end recovery contract.)
  const std::string dir = FreshDir("idletail");
  fs::create_directories(dir);
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto store = OpenDir(dir, GetParam(),
                         DurableOptions{FsyncPolicy::kInterval,
                                        /*fsync_interval_ms=*/25, 2});
    if (!store.ok()) _exit(1);
    auto& db = (*store)->db();
    if (!db.AddNode("Host", {{"name", Value("lone")},
                             {"serial", Value("sn-lone")}}).ok()) {
      _exit(2);
    }
    // Go idle: no further append ever arrives to trigger a sync. Spin
    // until killed — never run Close()/destructors, they would sync.
    for (;;) usleep(100 * 1000);
  }
  // Give the deadline flusher ample slack past the 25 ms window, then
  // kill without any clean shutdown.
  usleep(600 * 1000);
  kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  auto store = OpenDir(dir, GetParam());
  ASSERT_TRUE(store.ok()) << store.status();
  EXPECT_EQ((*store)->db().node_count(), 1u)
      << "the idle-tail append was lost";
  EXPECT_GE((*store)->recovery_info().records_replayed, 1u);
}

TEST_P(RecoveryTest, SaveSnapshotLoadsOnBothBackends) {
  auto net = nepal::testing::MakeTinyNetwork(GetParam());
  ASSERT_TRUE(net.db->SetTime(net.db->Now() + 777).ok());
  ASSERT_TRUE(
      net.db->UpdateElement(net.vm1, {{"status", Value("Blue")}}).ok());

  const std::string dir = FreshDir("snapshot");
  ASSERT_TRUE(DurableStore::SaveSnapshot(dir, *net.db).ok());
  // A second save into the same directory must refuse to clobber it.
  EXPECT_EQ(DurableStore::SaveSnapshot(dir, *net.db).code(),
            StatusCode::kAlreadyExists);

  for (BackendKind kind :
       {BackendKind::kGraphStore, BackendKind::kRelational}) {
    // Loading the snapshot under either backend must answer byte-for-byte
    // what live ingestion on that backend would have answered.
    auto live = nepal::testing::MakeTinyNetwork(kind);
    ASSERT_TRUE(live.db->SetTime(live.db->Now() + 777).ok());
    ASSERT_TRUE(
        live.db->UpdateElement(live.vm1, {{"status", Value("Blue")}}).ok());
    const std::string expected = Observe(*live.db);

    // Each backend loads its own copy: opening a snapshot makes the
    // directory live (a WAL segment appears and absorbs new writes).
    const std::string copy =
        FreshDir("snapshot_" + nepal::testing::BackendName(kind));
    fs::copy(dir, copy);
    auto loaded = OpenDir(copy, kind);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_TRUE((*loaded)->recovery_info().restored_checkpoint);
    EXPECT_EQ(Observe((*loaded)->db()), expected)
        << "loaded on " << nepal::testing::BackendName(kind);
    // The loaded store is live: it accepts durable writes.
    ASSERT_TRUE(
        (*loaded)->db().AddNode("Docker", {{"name", Value("fresh")}}).ok());
  }
}

TEST_P(RecoveryTest, ColdStartRestoresStatsAndPlanChoice) {
  // 60 VMs packed onto 3 hosts: the cost-based optimizer must anchor the
  // VM->OnServer->Host pathway at Host, and a cold start from a checkpoint
  // must reach the same choice from the restored statistics alone.
  const std::string dir = FreshDir("statsparity");
  const std::string query =
      "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()";
  std::string live_stats, live_plan;
  double live_scan_vm = 0, live_scan_host = 0;
  {
    auto store = OpenDir(dir, GetParam());
    ASSERT_TRUE(store.ok()) << store.status();
    auto& db = (*store)->db();
    std::vector<Uid> hosts;
    for (int h = 0; h < 3; ++h) {
      hosts.push_back(
          *db.AddNode("Host", {{"name", Value("h" + std::to_string(h))}}));
    }
    for (int v = 0; v < 60; ++v) {
      Uid vm = *db.AddNode("VMWare",
                           {{"name", Value("vm" + std::to_string(v))}});
      ASSERT_TRUE(db.AddEdge("OnServer", vm, hosts[v % 3], {}).ok());
    }
    db.backend().stats().SerializeTo(&live_stats);
    storage::ScanSpec vm_scan, host_scan;
    vm_scan.cls = db.schema().FindClass("VM");
    host_scan.cls = db.schema().FindClass("Host");
    live_scan_vm = db.backend().EstimateScan(vm_scan);
    live_scan_host = db.backend().EstimateScan(host_scan);
    nql::QueryEngine engine(&db);
    auto explained = engine.Explain(query);
    ASSERT_TRUE(explained.ok()) << explained.status();
    live_plan = *explained;
    EXPECT_NE(live_plan.find("anchor Host"), std::string::npos) << live_plan;
    ASSERT_TRUE((*store)->Checkpoint().ok());
  }

  auto reopened = OpenDir(dir, GetParam());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  // The whole point of checkpointed statistics: nothing to replay, and no
  // per-element re-derivation on the cold path.
  EXPECT_TRUE((*reopened)->recovery_info().restored_checkpoint);
  EXPECT_EQ((*reopened)->recovery_info().records_replayed, 0u);

  auto& db = (*reopened)->db();
  std::string restored_stats;
  db.backend().stats().SerializeTo(&restored_stats);
  EXPECT_EQ(restored_stats, live_stats)
      << "restored statistics are not byte-identical to live statistics";
  storage::ScanSpec vm_scan, host_scan;
  vm_scan.cls = db.schema().FindClass("VM");
  host_scan.cls = db.schema().FindClass("Host");
  EXPECT_EQ(db.backend().EstimateScan(vm_scan), live_scan_vm);
  EXPECT_EQ(db.backend().EstimateScan(host_scan), live_scan_host);
  nql::QueryEngine engine(&db);
  auto explained = engine.Explain(query);
  ASSERT_TRUE(explained.ok()) << explained.status();
  EXPECT_EQ(*explained, live_plan)
      << "cold-start plan diverged from the live plan";
}

TEST_P(RecoveryTest, FeedExportIsSnapshotOnlyAndCountsSkipped) {
  // The inventory feed is the *other* persistence path: replayable text,
  // but current-snapshot only. The round trip must work from a recovered
  // database, count unnamed (unexportable) elements, and demonstrably
  // lose history — which is the documented reason the WAL exists.
  const std::string dir = FreshDir("feedexport");
  {
    auto store = OpenDir(dir, GetParam());
    ASSERT_TRUE(store.ok()) << store.status();
    IngestWorkload((*store)->db());
    // An unnamed node cannot be exported by name and must be skipped.
    ASSERT_TRUE((*store)->db().AddNode("Docker", {}).ok());
  }
  auto reopened = OpenDir(dir, GetParam());
  ASSERT_TRUE(reopened.ok()) << reopened.status();

  size_t skipped = 0;
  const std::string feed =
      netmodel::ExportFeed((*reopened)->db(), &skipped);
  EXPECT_EQ(skipped, 1u);  // the unnamed Docker node
  EXPECT_NE(feed.find("CURRENT snapshot only"), std::string::npos) << feed;

  schema::SchemaPtr schema = nepal::testing::Figure3Schema();
  storage::GraphDb fresh(schema, nepal::testing::MakeBackend(GetParam(),
                                                             schema));
  netmodel::FeedLoader loader(&fresh);
  auto stats = loader.Load(feed);
  ASSERT_TRUE(stats.ok()) << stats.status() << "\nfeed:\n" << feed;
  EXPECT_EQ(stats->nodes, 4u);  // vnf, vfc, vm, host2 (host1 was removed)
  EXPECT_EQ(stats->edges, 3u);

  nql::QueryEngine original(&(*reopened)->db());
  nql::QueryEngine roundtripped(&fresh);
  const std::string current =
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()";
  auto r1 = original.Run(current);
  auto r2 = roundtripped.Run(current);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->rows.size(), r2->rows.size());

  // History loss: at the pre-migration timeslice the WAL-recovered
  // database still shows the old placement (host1); the feed round trip
  // flattened history into "the current placement always existed".
  const std::string at_t1 = "AT '" + std::string(kT1) +
                            "' Select target(P).name From PATHS P "
                            "Where P MATCHES VM()->OnServer()->Host()";
  auto h1 = original.Run(at_t1);
  auto h2 = roundtripped.Run(at_t1);
  ASSERT_TRUE(h1.ok()) << h1.status();
  ASSERT_TRUE(h2.ok()) << h2.status();
  ASSERT_EQ(h1->rows.size(), 1u);
  ASSERT_EQ(h2->rows.size(), 1u);
  EXPECT_EQ(h1->rows[0].values[0], Value("host1"));
  EXPECT_EQ(h2->rows[0].values[0], Value("host2"));
}

INSTANTIATE_TEST_SUITE_P(
    Backends, RecoveryTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const auto& info) { return nepal::testing::BackendName(info.param); });

}  // namespace
}  // namespace nepal
