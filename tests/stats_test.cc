// Statistics subsystem tests: incremental maintenance of cardinalities,
// per-value counters, degree statistics and history depth on every write
// path — and the guarantee that both backends, fed identical data, produce
// identical scan estimates (EstimateScan is implemented once over the
// shared statistics).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "stats/stats.h"
#include "storage/graphdb.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;

class StatsTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    schema_ = nepal::testing::Figure3Schema();
    db_ = std::make_unique<storage::GraphDb>(
        schema_, nepal::testing::MakeBackend(GetParam(), schema_));
  }

  const stats::GraphStats& Stats() { return db_->backend().stats(); }
  const schema::ClassDef* Cls(const std::string& name) {
    return schema_->FindClass(name);
  }

  schema::SchemaPtr schema_;
  std::unique_ptr<storage::GraphDb> db_;
};

TEST_P(StatsTest, CardinalityTracksInsertAndRemove) {
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("VM")), 0.0);
  Uid a = *db_->AddNode("VMWare", {{"name", Value("a")}});
  Uid b = *db_->AddNode("OnMetal", {{"name", Value("b")}});
  *db_->AddNode("Host", {{"name", Value("h")}});
  // Subclass instances count toward every ancestor.
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("VMWare")), 1.0);
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("VM")), 2.0);
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("Container")), 2.0);
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("Node")), 3.0);
  ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
  ASSERT_TRUE(db_->RemoveElement(a).ok());
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("VM")), 1.0);
  ASSERT_TRUE(db_->RemoveElement(b).ok());
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("VM")), 0.0);
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("Node")), 1.0);
}

TEST_P(StatsTest, EqCountFollowsUpdatesAndRemoves) {
  const schema::ClassDef* vm = Cls("VMWare");
  int status = vm->FieldIndex("status");
  Uid a = *db_->AddNode("VMWare", {{"status", Value("Red")}});
  *db_->AddNode("VMWare", {{"status", Value("Red")}});
  EXPECT_EQ(Stats().EqCount(vm, status, Value("Red")), 2.0);
  EXPECT_EQ(Stats().EqCount(vm, status, Value("Green")), 0.0);
  ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
  ASSERT_TRUE(db_->UpdateElement(a, {{"status", Value("Green")}}).ok());
  EXPECT_EQ(Stats().EqCount(vm, status, Value("Red")), 1.0);
  EXPECT_EQ(Stats().EqCount(vm, status, Value("Green")), 1.0);
  ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
  ASSERT_TRUE(db_->RemoveElement(a).ok());
  EXPECT_EQ(Stats().EqCount(vm, status, Value("Green")), 0.0);
  // Counters roll up through the class hierarchy like cardinalities.
  EXPECT_EQ(Stats().EqCount(Cls("Container"), status, Value("Red")), 1.0);
}

TEST_P(StatsTest, DegreeStatsTrackEdgeLinks) {
  const schema::ClassDef* host = Cls("Host");
  const schema::ClassDef* on_server = Cls("OnServer");
  Uid h = *db_->AddNode("Host", {});
  Uid v1 = *db_->AddNode("VMWare", {});
  Uid v2 = *db_->AddNode("VMWare", {});
  Uid e1 = *db_->AddEdge("OnServer", v1, h, {});
  *db_->AddEdge("OnServer", v2, h, {});
  EXPECT_DOUBLE_EQ(Stats().AvgDegree(host, stats::DegreeDir::kIn, on_server),
                   2.0);
  EXPECT_EQ(Stats().MaxDegree(host, stats::DegreeDir::kIn, on_server), 2u);
  EXPECT_DOUBLE_EQ(
      Stats().AvgDegree(Cls("VM"), stats::DegreeDir::kOut, on_server), 1.0);
  // Degree statistics respect the edge-class subtree: OnServer is a
  // hosted_on, which is a Vertical.
  EXPECT_DOUBLE_EQ(
      Stats().AvgDegree(host, stats::DegreeDir::kIn, Cls("Vertical")), 2.0);
  EXPECT_DOUBLE_EQ(
      Stats().AvgDegree(host, stats::DegreeDir::kIn, Cls("composed_of")), 0.0);
  ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
  ASSERT_TRUE(db_->RemoveElement(e1).ok());
  EXPECT_DOUBLE_EQ(Stats().AvgDegree(host, stats::DegreeDir::kIn, on_server),
                   1.0);
}

TEST_P(StatsTest, RemovingANodeUnlinksItsIncidentEdges) {
  // Cascade deletes must keep the degree totals consistent: removing the
  // host also removes the OnServer edge, so the VM's out-degree drops too.
  Uid h = *db_->AddNode("Host", {});
  Uid v = *db_->AddNode("VMWare", {});
  *db_->AddEdge("OnServer", v, h, {});
  EXPECT_DOUBLE_EQ(
      Stats().AvgDegree(Cls("VM"), stats::DegreeDir::kOut, Cls("OnServer")),
      1.0);
  ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
  ASSERT_TRUE(db_->RemoveElement(h).ok());
  EXPECT_DOUBLE_EQ(
      Stats().AvgDegree(Cls("VM"), stats::DegreeDir::kOut, Cls("OnServer")),
      0.0);
  EXPECT_DOUBLE_EQ(Stats().Cardinality(Cls("OnServer")), 0.0);
}

TEST_P(StatsTest, HistoryDepthGrowsWithVersions) {
  Uid a = *db_->AddNode("VMWare", {{"status", Value("Red")}});
  EXPECT_DOUBLE_EQ(Stats().HistoryDepth(Cls("VM")), 1.0);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(db_->SetTime(db_->Now() + 1).ok());
    ASSERT_TRUE(
        db_->UpdateElement(a, {{"status", Value("v" + std::to_string(i))}})
            .ok());
  }
  // 4 versions over 1 current element.
  EXPECT_DOUBLE_EQ(Stats().HistoryDepth(Cls("VM")), 4.0);
  EXPECT_EQ(Stats().VersionCount(Cls("VM")), 4u);
}

TEST_P(StatsTest, EstimateScanUsesExactCountersWithClassRollup) {
  for (int i = 0; i < 4; ++i) {
    *db_->AddNode("VMWare", {{"status", Value("Red")}});
  }
  *db_->AddNode("OnMetal", {{"status", Value("Red")}});
  *db_->AddNode("OnMetal", {{"status", Value("Green")}});
  storage::ScanSpec spec;
  spec.cls = Cls("VM");
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec), 6.0);
  spec.eq = std::make_pair(spec.cls->FieldIndex("status"), Value("Red"));
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec), 5.0);
  spec.cls = Cls("OnMetal");
  spec.eq = std::make_pair(spec.cls->FieldIndex("status"), Value("Red"));
  EXPECT_DOUBLE_EQ(db_->backend().EstimateScan(spec), 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, StatsTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

// ---- Cross-backend estimate parity (the consolidated EstimateScan) ----

TEST(StatsParityTest, BackendsProduceIdenticalEstimates) {
  auto build = [](BackendKind kind) {
    schema::SchemaPtr schema = nepal::testing::Figure3Schema();
    auto db = std::make_unique<storage::GraphDb>(
        schema, nepal::testing::MakeBackend(kind, schema));
    std::vector<Uid> hosts, vms;
    for (int h = 0; h < 3; ++h) {
      hosts.push_back(*db->AddNode(
          "Host", {{"name", Value("h" + std::to_string(h))},
                   {"serial", Value(h == 0 ? "rack-a" : "rack-b")}}));
    }
    for (int v = 0; v < 12; ++v) {
      vms.push_back(*db->AddNode(
          "VMWare", {{"name", Value("vm" + std::to_string(v))},
                     {"status", Value(v % 3 == 0 ? "Red" : "Green")}}));
      *db->AddEdge("OnServer", vms.back(), hosts[v % 3], {});
    }
    return db;
  };
  auto g = build(BackendKind::kGraphStore);
  auto r = build(BackendKind::kRelational);
  const schema::Schema& schema = g->schema();
  auto check = [&](const std::string& cls, const char* field,
                   const Value& value) {
    storage::ScanSpec spec;
    spec.cls = schema.FindClass(cls);
    if (field != nullptr) {
      spec.eq = std::make_pair(spec.cls->FieldIndex(field), value);
    }
    EXPECT_DOUBLE_EQ(g->backend().EstimateScan(spec),
                     r->backend().EstimateScan(spec))
        << cls << "." << (field ? field : "<none>");
  };
  check("VM", nullptr, Value());
  check("Host", nullptr, Value());
  check("VM", "status", Value("Red"));
  check("VM", "status", Value("Green"));
  check("Host", "serial", Value("rack-a"));
  check("Host", "serial", Value("rack-z"));
  check("OnServer", nullptr, Value());
}

}  // namespace
}  // namespace nepal
