// Advanced engine behaviour: plan explanation and SQL rendering, join
// ordering and anchor import, subquery nesting, projection edge cases,
// result limits, and error reporting.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;
using nepal::testing::MakeTinyNetwork;
using nepal::testing::TinyNetwork;

class EngineAdvancedTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    net_ = MakeTinyNetwork(GetParam());
    engine_ = std::make_unique<nql::QueryEngine>(net_.db.get());
  }

  nql::QueryResult Run(const std::string& query) {
    auto result = engine_->Run(query);
    EXPECT_TRUE(result.ok()) << result.status() << "\nquery: " << query;
    return result.ok() ? *result : nql::QueryResult{};
  }

  TinyNetwork net_;
  std::unique_ptr<nql::QueryEngine> engine_;
};

TEST_P(EngineAdvancedTest, RetrieveMultipleVariables) {
  auto result = Run(
      "Retrieve P, Q From PATHS P, PATHS Q "
      "Where P MATCHES VFC()->VM() And Q MATCHES VM()->Host() "
      "And target(P) = source(Q)");
  ASSERT_EQ(result.rows.size(), 3u);
  for (const auto& row : result.rows) {
    ASSERT_EQ(row.paths.size(), 2u);
    EXPECT_EQ(row.paths[0].target_uid(), row.paths[1].source_uid());
  }
  // Projection order follows the Retrieve list, not evaluation order.
  auto flipped = Run(
      "Retrieve Q, P From PATHS P, PATHS Q "
      "Where P MATCHES VFC()->VM() And Q MATCHES VM()->Host() "
      "And target(P) = source(Q)");
  ASSERT_EQ(flipped.path_columns[0], "Q");
  EXPECT_TRUE(flipped.rows[0].paths[0].concepts.back()->name() == "Host");
}

TEST_P(EngineAdvancedTest, CrossVariableFieldJoin) {
  // Join VMs to hosts by *name pattern*: here equality of owner-ish fields
  // is simulated by joining VMs to themselves via names.
  auto result = Run(
      "Select source(P).name From PATHS P, PATHS Q "
      "Where P MATCHES VM() And Q MATCHES VM() "
      "And source(P).name = source(Q).name "
      "And source(P) = source(Q)");
  EXPECT_EQ(result.rows.size(), 3u);
}

TEST_P(EngineAdvancedTest, InequalityComparison) {
  auto result = Run(
      "Retrieve P From PATHS P, PATHS Q "
      "Where P MATCHES VM()->Host() And Q MATCHES VM()->Host() "
      "And source(P) <> source(Q) And target(P) = target(Q)");
  // vm2 and vm3 share host2: two ordered pairs.
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_P(EngineAdvancedTest, ExistsWithoutNegation) {
  auto result = Run(
      "Retrieve V From PATHS V "
      "Where V MATCHES Host() "
      "And EXISTS( Retrieve P From PATHS P "
      "  Where P MATCHES VM()->Host() And target(P) = target(V))");
  // Both hosts run VMs.
  EXPECT_EQ(result.rows.size(), 2u);
}

TEST_P(EngineAdvancedTest, NestedSubqueries) {
  // Hosts that run a VM whose VFC belongs to vnf1 — phrased with two
  // levels of EXISTS.
  auto result = Run(
      "Retrieve H From PATHS H "
      "Where H MATCHES Host() "
      "And EXISTS( Retrieve P From PATHS P "
      "  Where P MATCHES VM()->Host() And target(P) = target(H) "
      "  And EXISTS( Retrieve Q From PATHS Q "
      "    Where Q MATCHES VNF(id=" +
      std::to_string(net_.vnf1) +
      ")->[Vertical()]{1,4}->VM() "
      "    And target(Q) = source(P)))");
  std::set<Uid> hosts;
  for (const auto& row : result.rows) {
    hosts.insert(row.paths[0].uids[0]);
  }
  EXPECT_EQ(hosts, (std::set<Uid>{net_.host1, net_.host2}));
}

TEST_P(EngineAdvancedTest, CountAndGroupBy) {
  // How many VMs does each host carry?
  auto result = Run(
      "Select target(P).name, count(P) From PATHS P "
      "Where P MATCHES VM()->Host() "
      "Group By target(P).name");
  ASSERT_EQ(result.rows.size(), 2u);
  std::map<std::string, int64_t> by_host;
  for (const auto& row : result.rows) {
    by_host[row.values[0].AsString()] = row.values[1].AsInt();
  }
  EXPECT_EQ(by_host["host1"], 1);
  EXPECT_EQ(by_host["host2"], 2);
}

TEST_P(EngineAdvancedTest, GlobalAggregatesWithoutGroupBy) {
  auto result = Run(
      "Select count(P), count(distinct target(P)), min(source(P).name), "
      "max(source(P).name), sum(length(P)) "
      "From PATHS P Where P MATCHES VM()->Host()");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].values[0], Value(int64_t{3}));  // 3 placements
  EXPECT_EQ(result.rows[0].values[1], Value(int64_t{2}));  // 2 hosts
  EXPECT_EQ(result.rows[0].values[2], Value("vm1"));
  EXPECT_EQ(result.rows[0].values[3], Value("vm3"));
  EXPECT_EQ(result.rows[0].values[4], Value(int64_t{9}));  // 3 paths x 3
}

TEST_P(EngineAdvancedTest, AggregateOverEmptyResultSet) {
  auto result = Run(
      "Select count(P) From PATHS P Where P MATCHES Docker()");
  ASSERT_TRUE(result.rows.empty());  // no rows, no groups
  result = Run(
      "Select count(P), min(source(P).name) From PATHS P "
      "Where P MATCHES VM() Group By length(P)");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].values[0], Value(int64_t{3}));
}

TEST_P(EngineAdvancedTest, AggregateValidationErrors) {
  // Ungrouped plain item alongside an aggregate.
  auto bad = engine_->Run(
      "Select source(P).name, count(P) From PATHS P Where P MATCHES VM()");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  // Aggregates with Retrieve make no sense.
  bad = engine_->Run(
      "Retrieve P From PATHS P Where P MATCHES VM() Group By source(P)");
  EXPECT_FALSE(bad.ok());
  // sum over strings.
  bad = engine_->Run(
      "Select sum(source(P).name) From PATHS P Where P MATCHES VM()");
  EXPECT_FALSE(bad.ok());
}

TEST_P(EngineAdvancedTest, MaxRowsCap) {
  nql::EngineOptions options;
  options.max_rows = 2;
  nql::QueryEngine capped(net_.db.get(), options);
  auto result = capped.Run("Retrieve P From PATHS P Where P MATCHES VM()");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_P(EngineAdvancedTest, SelectLengthAndBareVariable) {
  auto result = Run(
      "Select length(P), P From PATHS P Where P MATCHES "
      "VFC(name='vfc1')->VM()");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].values[0], Value(int64_t{3}));
  EXPECT_NE(result.rows[0].values[1].AsString().find("VFC#"),
            std::string::npos);
}

TEST_P(EngineAdvancedTest, SelectUnknownFieldFails) {
  auto result = engine_->Run(
      "Select source(P).wobble From PATHS P Where P MATCHES VM()");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(EngineAdvancedTest, ErrorsOnStructuralMisuse) {
  // Unknown range variable in Retrieve.
  EXPECT_FALSE(engine_->Run("Retrieve X From PATHS P Where P MATCHES VM()")
                   .ok());
  // Variable without a MATCHES predicate.
  EXPECT_FALSE(engine_->Run("Retrieve P From PATHS P, PATHS Q "
                            "Where P MATCHES VM()")
                   .ok());
  // Duplicate variable declaration.
  EXPECT_FALSE(engine_->Run("Retrieve P From PATHS P, PATHS P "
                            "Where P MATCHES VM()")
                   .ok());
  // Two MATCHES on one variable.
  EXPECT_FALSE(engine_->Run("Retrieve P From PATHS P "
                            "Where P MATCHES VM() And P MATCHES Host()")
                   .ok());
  // Comparison referencing a variable that exists nowhere.
  EXPECT_FALSE(engine_->Run("Retrieve P From PATHS P Where P MATCHES VM() "
                            "And source(Z) = target(P)")
                   .ok());
}

TEST_P(EngineAdvancedTest, ExplainListsEveryVariableAndSeeds) {
  auto plan = engine_->Explain(
      "Retrieve Phys From PATHS D1, PATHS Phys "
      "Where D1 MATCHES VNF(id=" + std::to_string(net_.vnf1) +
      ")->[Vertical()]{1,6}->Host() "
      "And Phys MATCHES [Connects()]{1,8} "
      "And source(Phys) = target(D1)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("var D1"), std::string::npos);
  EXPECT_NE(plan->find("anchor imported via join"), std::string::npos)
      << *plan;
}

TEST_P(EngineAdvancedTest, SqlTraceOnRelationalBackend) {
  if (GetParam() != BackendKind::kRelational) GTEST_SKIP();
  auto plan = engine_->Explain(
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF(id=" + std::to_string(net_.vnf1) + ")->composed_of()->VFC()");
  ASSERT_TRUE(plan.ok());
  // The relational executor renders the paper's TEMP-table SQL shape.
  EXPECT_NE(plan->find("create TEMP table"), std::string::npos) << *plan;
  EXPECT_NE(plan->find("uid_list"), std::string::npos);
  EXPECT_NE(plan->find("curr_uid"), std::string::npos);
  EXPECT_NE(plan->find("ANY(T.uid_list)"), std::string::npos);
  // The EXPLAIN VERBOSE query form routes to the same trace.
  auto verbose = Run(
      "EXPLAIN VERBOSE Retrieve P From PATHS P Where P MATCHES "
      "VNF(id=" + std::to_string(net_.vnf1) + ")->composed_of()->VFC()");
  EXPECT_TRUE(verbose.rows.empty());
  EXPECT_NE(verbose.explain_text.find("create TEMP table"),
            std::string::npos)
      << verbose.explain_text;
}

TEST_P(EngineAdvancedTest, ExplainAnalyzeReportsPerOperatorStats) {
  const std::string query =
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()";
  auto plain = Run(query);
  ASSERT_FALSE(plain.rows.empty());
  auto analyzed = Run("EXPLAIN ANALYZE " + query);
  EXPECT_TRUE(analyzed.rows.empty());
  const std::string& text = analyzed.explain_text;
  EXPECT_NE(text.find("rows_in"), std::string::npos) << text;
  EXPECT_NE(text.find("ExtendBlock{1,6}"), std::string::npos) << text;
  EXPECT_NE(text.find("total: " + std::to_string(plain.rows.size()) +
                      " row(s)"),
            std::string::npos)
      << text;

  auto stats = engine_->LastQueryStats();
  EXPECT_EQ(stats.result_rows, plain.rows.size());
  EXPECT_GT(stats.wall_ns, 0u);
  ASSERT_FALSE(stats.operators.empty());
  bool saw_select = false;
  uint64_t op_wall = 0;
  for (const auto& op : stats.operators) {
    if (op.op.rfind("Select", 0) == 0) {
      saw_select = true;
      EXPECT_GT(op.rows_out, 0u);
    }
    op_wall += op.wall_ns;
  }
  EXPECT_TRUE(saw_select);
  EXPECT_GT(op_wall, 0u);
}

TEST_P(EngineAdvancedTest, ExplainAnalyzeStatsInvariantAcrossParallelism) {
  const std::string query =
      "EXPLAIN ANALYZE Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()";
  nql::EngineOptions serial;
  serial.plan.parallelism = 1;
  nql::EngineOptions wide;
  wide.plan.parallelism = 8;
  nql::QueryEngine e1(net_.db.get(), serial);
  nql::QueryEngine e8(net_.db.get(), wide);
  ASSERT_TRUE(e1.Run(query).ok());
  ASSERT_TRUE(e8.Run(query).ok());
  auto s1 = e1.LastQueryStats();
  auto s8 = e8.LastQueryStats();
  EXPECT_EQ(s1.parallelism, 1);
  EXPECT_EQ(s8.parallelism, 8);
  EXPECT_EQ(s1.result_rows, s8.result_rows);
  // rows_in / rows_out are recorded at the logical invocation level and
  // must be partition-invariant (see obs/query_stats.h); wall_ns and
  // shards deliberately reflect the execution strategy and are excluded.
  auto tuples = [](const obs::QueryStats& s) {
    std::vector<std::string> v;
    for (const auto& op : s.operators) {
      v.push_back(op.group + "|" + op.op + "|" + std::to_string(op.rows_in) +
                  "|" + std::to_string(op.rows_out));
    }
    return v;
  };
  EXPECT_EQ(tuples(s1), tuples(s8));
}

TEST_P(EngineAdvancedTest, ExplainModesDoNotForceSerial) {
  nql::EngineOptions wide;
  wide.plan.parallelism = 8;
  nql::QueryEngine engine(net_.db.get(), wide);
  const std::string body =
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()";
  auto plan = engine.Run("EXPLAIN " + body);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->rows.empty());
  EXPECT_NE(plan->explain_text.find("var P"), std::string::npos)
      << plan->explain_text;
  EXPECT_EQ(engine.LastQueryStats().parallelism, 8);
  ASSERT_TRUE(engine.Run("EXPLAIN ANALYZE " + body).ok());
  EXPECT_EQ(engine.LastQueryStats().parallelism, 8);
}

TEST_P(EngineAdvancedTest, TimeRangeJoinCoalescesRowIntervals) {
  // Build churn: vm1 status flips irrelevant to the join; the joined row's
  // interval must stay maximal.
  Timestamp t0 = net_.db->Now();
  ASSERT_TRUE(net_.db->SetTime(t0 + 1000).ok());
  ASSERT_TRUE(
      net_.db->UpdateElement(net_.vm1, {{"status", Value("Yellow")}}).ok());
  ASSERT_TRUE(net_.db->SetTime(t0 + 2000).ok());
  ASSERT_TRUE(
      net_.db->UpdateElement(net_.vm1, {{"status", Value("Green")}}).ok());
  auto result = Run(
      "AT '" + FormatTimestamp(t0) + "' : '" + FormatTimestamp(t0 + 5000) +
      "' Retrieve P From PATHS P Where P MATCHES VFC()->VM(id=" +
      std::to_string(net_.vm1) + ")");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].valid.end, kTimestampMax);
}

TEST_P(EngineAdvancedTest, PathwayViews) {
  // A view naming the "implementation pathways" of the inventory.
  ASSERT_TRUE(engine_
                  ->DefineView("IMPLEMENTATIONS",
                               "VNF()->[Vertical()]{1,6}->Host()")
                  .ok());
  // A view can stand in for the MATCHES predicate entirely...
  auto all = Run("Retrieve P From IMPLEMENTATIONS P Where length(P) = 7");
  EXPECT_EQ(all.rows.size(), 3u);
  // ...or be narrowed further by one (intersection semantics).
  auto narrowed = Run(
      "Retrieve P From IMPLEMENTATIONS P "
      "Where P MATCHES Node()->[Vertical()]{1,6}->Host(id=" +
      std::to_string(net_.host2) + ")");
  EXPECT_EQ(narrowed.rows.size(), 2u);
  for (const auto& row : narrowed.rows) {
    EXPECT_EQ(row.paths[0].target_uid(), net_.host2);
    EXPECT_TRUE(row.paths[0].concepts[0]->IsSubclassOf(
        net_.db->schema().FindClass("VNF")));
  }
  // Mixing views and PATHS in one query.
  auto mixed = Run(
      "Retrieve P, Q From IMPLEMENTATIONS P, PATHS Q "
      "Where Q MATCHES Host() And target(P) = target(Q) "
      "And length(P) = 7");
  EXPECT_EQ(mixed.rows.size(), 3u);
}

TEST_P(EngineAdvancedTest, ViewErrors) {
  EXPECT_FALSE(engine_->DefineView("PATHS", "VM()").ok());
  EXPECT_FALSE(engine_->DefineView("BAD", "VM(").ok());
  auto unknown = engine_->Run(
      "Retrieve P From GHOSTVIEW P Where P MATCHES VM()");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST_P(EngineAdvancedTest, DeterministicResultsAcrossRuns) {
  const std::string query =
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()";
  auto r1 = Run(query);
  auto r2 = Run(query);
  ASSERT_EQ(r1.rows.size(), r2.rows.size());
  std::multiset<std::string> s1, s2;
  for (const auto& row : r1.rows) s1.insert(row.paths[0].ToString());
  for (const auto& row : r2.rows) s2.insert(row.paths[0].ToString());
  EXPECT_EQ(s1, s2);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, EngineAdvancedTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
