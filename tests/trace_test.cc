// Span-tracing suite (obs/trace.h): ring eviction order, the zero-cost
// sampling-off fast path, partition invariance of the read-path span
// tree, and commit-to-visible joining — a follower (in-process and over
// the 0x03 wire annotation) reports the primary's trace id and its
// wire/decode/apply segments land in the primary's own span tree.

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "obs/trace.h"
#include "persist/durable_store.h"
#include "replication/replica_store.h"
#include "replication/transport.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

namespace fs = std::filesystem;
using nepal::testing::BackendKind;
using obs::Tracer;

std::string FreshDir(const std::string& name) {
  std::string unique = "nepal_trace_" + name;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    unique += "_";
    unique += info->name();
  }
  fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory() {
  return [](schema::SchemaPtr s) {
    return nepal::testing::MakeBackend(BackendKind::kGraphStore,
                                       std::move(s));
  };
}

Tracer::Options TraceAll(size_t ring = 32) {
  Tracer::Options options;
  options.sample_rate = 1.0;
  options.ring_capacity = ring;
  return options;
}

/// Restores the global tracer to its off state when a test exits.
struct TracerGuard {
  ~TracerGuard() { Tracer::Global().Configure(Tracer::Options{}); }
};

std::vector<storage::Mutation> HostBatch(size_t n, const std::string& tag) {
  std::vector<storage::Mutation> muts;
  for (size_t i = 0; i < n; ++i) {
    muts.push_back(storage::Mutation::AddNode(
        "Host", {{"name", Value("h_" + tag + "_" + std::to_string(i))},
                 {"serial", Value("sn_" + tag + "_" + std::to_string(i))}}));
  }
  return muts;
}

/// The newest completed trace with the given root name, or nullptr.
std::shared_ptr<obs::Trace> NewestTrace(const std::string& root) {
  auto completed = Tracer::Global().Completed();
  for (auto it = completed.rbegin(); it != completed.rend(); ++it) {
    if ((*it)->root_name() == root) return *it;
  }
  return nullptr;
}

TEST(TraceRingTest, EvictsOldestFirst) {
  TracerGuard guard;
  Tracer::Global().Configure(TraceAll(/*ring=*/3));
  std::vector<uint64_t> ids;
  for (int i = 0; i < 5; ++i) {
    auto trace = Tracer::Global().StartTrace("t");
    ASSERT_NE(trace, nullptr);
    ids.push_back(trace->trace_id());
    Tracer::Global().Finish(trace);
  }
  auto completed = Tracer::Global().Completed();
  ASSERT_EQ(completed.size(), 3u);
  // Oldest-first ring contents: the first two traces were evicted.
  EXPECT_EQ(completed[0]->trace_id(), ids[2]);
  EXPECT_EQ(completed[1]->trace_id(), ids[3]);
  EXPECT_EQ(completed[2]->trace_id(), ids[4]);
  EXPECT_EQ(Tracer::Global().Find(ids[0]), nullptr);
  EXPECT_NE(Tracer::Global().Find(ids[4]), nullptr);
  const Tracer::Stats stats = Tracer::Global().stats();
  EXPECT_EQ(stats.started, 5u);
  EXPECT_EQ(stats.kept, 5u);  // all were sampled; eviction is not a drop
}

TEST(TraceSamplingTest, OffModeRecordsNothing) {
  TracerGuard guard;
  Tracer::Global().Configure(Tracer::Options{});  // off
  EXPECT_FALSE(Tracer::Global().enabled());
  EXPECT_EQ(Tracer::Global().StartTrace("t"), nullptr);

  // Drive both instrumented hot paths: a batched write and a query.
  auto net = nepal::testing::MakeTinyNetwork(BackendKind::kGraphStore);
  std::vector<storage::Mutation> muts = HostBatch(4, "off");
  ASSERT_TRUE(net.db->ApplyBatch(muts).ok());
  nql::QueryEngine engine(net.db.get());
  auto result = engine.Run(
      "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()");
  ASSERT_TRUE(result.ok());

  const Tracer::Stats stats = Tracer::Global().stats();
  EXPECT_EQ(stats.started, 0u);
  EXPECT_EQ(stats.spans, 0u);
  EXPECT_TRUE(Tracer::Global().Completed().empty());
}

TEST(TraceQueryTest, SpanTreeShapeIsParallelismInvariant) {
  TracerGuard guard;
  auto net = nepal::testing::MakeTinyNetwork(BackendKind::kGraphStore);
  const std::string query =
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()";

  // (parent, name) pairs in span-id order fully describe the tree shape;
  // durations and shard counts are the only things allowed to differ.
  auto run_shape = [&](int parallelism) {
    Tracer::Global().Configure(TraceAll());
    nql::EngineOptions options;
    options.plan.parallelism = parallelism;
    nql::QueryEngine engine(net.db.get(), options);
    auto result = engine.Run(query);
    EXPECT_TRUE(result.ok());
    EXPECT_FALSE(result->rows.empty());
    auto trace = NewestTrace("query");
    EXPECT_NE(trace, nullptr);
    std::vector<std::pair<uint32_t, std::string>> shape;
    if (trace != nullptr) {
      for (const obs::SpanView& s : trace->Snapshot()) {
        shape.emplace_back(s.parent, s.name);
      }
    }
    return shape;
  };

  const auto serial = run_shape(1);
  const auto parallel = run_shape(4);
  EXPECT_EQ(serial, parallel);
  // Sanity: the tree decomposes into parse + execute + operator spans.
  ASSERT_GE(serial.size(), 3u);
  EXPECT_EQ(serial[0].second, "query");
  const auto has = [&](const std::string& name) {
    return std::any_of(serial.begin(), serial.end(),
                       [&](const auto& p) { return p.second == name; });
  };
  EXPECT_TRUE(has("parse"));
  EXPECT_TRUE(has("execute"));
}

TEST(TraceCommitTest, ApplyBatchDecomposesCommitLatency) {
  TracerGuard guard;
  const std::string dir = FreshDir("commit");
  persist::DurableOptions options;
  options.fsync_policy = persist::FsyncPolicy::kAlways;
  auto store = persist::DurableStore::Open(
      dir, nepal::testing::Figure3Schema(), Factory(), options);
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->db().SetTime(1500000000000000).ok());

  Tracer::Global().Configure(TraceAll());
  std::vector<storage::Mutation> muts = HostBatch(8, "c");
  ASSERT_TRUE((*store)->db().ApplyBatch(muts).ok());

  auto trace = NewestTrace("apply_batch");
  ASSERT_NE(trace, nullptr);
  std::vector<std::string> names;
  for (const obs::SpanView& s : trace->Snapshot()) names.push_back(s.name);
  for (const char* expect :
       {"lock_wait", "validate", "apply", "wal.encode", "wal.write",
        "wal.fsync", "publish"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expect) != names.end())
        << "missing span " << expect << " in:\n"
        << trace->ToText();
  }
  store->reset();
  fs::remove_all(dir);
}

TEST(TraceJoinTest, FollowerJoinsPrimaryTraceInProcess) {
  TracerGuard guard;
  const std::string pdir = FreshDir("join_p");
  const std::string fdir = FreshDir("join_f");
  persist::DurableOptions primary_options;
  primary_options.fsync_policy = persist::FsyncPolicy::kAlways;
  auto primary = persist::DurableStore::Open(
      pdir, nepal::testing::Figure3Schema(), Factory(), primary_options);
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE((*primary)->db().SetTime(1500000000000000).ok());

  auto transport = replication::InProcessTransport::Connect(**primary);
  ASSERT_TRUE(transport.ok());
  auto follower = replication::ReplicaStore::Open(
      fdir, nepal::testing::Figure3Schema(), Factory(),
      std::move(*transport));
  ASSERT_TRUE(follower.ok());

  Tracer::Global().Configure(TraceAll());
  std::vector<storage::Mutation> muts = HostBatch(8, "j");
  ASSERT_TRUE((*primary)->db().ApplyBatch(muts).ok());
  auto trace = NewestTrace("apply_batch");
  ASSERT_NE(trace, nullptr);
  const uint64_t trace_id = trace->trace_id();

  // The follower's apply loop joins the primary's trace: wait until its
  // last traced apply reports that very id.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while ((*follower)->last_traced_apply().trace_id != trace_id &&
         std::chrono::steady_clock::now() < deadline) {
    ASSERT_TRUE((*follower)->status().ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto traced = (*follower)->last_traced_apply();
  ASSERT_EQ(traced.trace_id, trace_id);
  EXPECT_GT(traced.frames, 0u);

  // In-process join: the follower's segments landed in the primary's own
  // span tree, so one trace now decomposes commit-to-visible end to end.
  std::vector<std::string> names;
  for (const obs::SpanView& s : trace->Snapshot()) names.push_back(s.name);
  for (const char* expect : {"wal.fsync", "publish", "wire",
                             "replica.decode", "replica.apply"}) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), expect) != names.end())
        << "missing span " << expect << " in:\n"
        << trace->ToText();
  }

  follower->reset();
  primary->reset();
  fs::remove_all(pdir);
  fs::remove_all(fdir);
}

TEST(TraceJoinTest, WireAnnotationRoundTripsThroughFdTransport) {
  TracerGuard guard;
  const std::string dir = FreshDir("wire");
  auto primary = persist::DurableStore::Open(
      dir, nepal::testing::Figure3Schema(), Factory(), {});
  ASSERT_TRUE(primary.ok());
  ASSERT_TRUE((*primary)->db().SetTime(1500000000000000).ok());

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  auto shipper = replication::WalShipper::Start(**primary, sv[0]);
  ASSERT_TRUE(shipper.ok());
  replication::FdTransport transport(sv[1]);
  auto hello = transport.Handshake();
  ASSERT_TRUE(hello.ok());

  Tracer::Global().Configure(TraceAll());
  std::vector<storage::Mutation> muts = HostBatch(4, "w");
  ASSERT_TRUE((*primary)->db().ApplyBatch(muts).ok());
  auto trace = NewestTrace("apply_batch");
  ASSERT_NE(trace, nullptr);

  // Drain frames off the wire until the annotated one arrives: it must
  // carry the primary's trace id and its root span id (always 1).
  persist::WalShipFrame frame;
  bool found = false;
  for (int i = 0; i < 2000 && !found; ++i) {
    auto got = transport.Next(&frame, std::chrono::milliseconds(10));
    ASSERT_TRUE(got.ok()) << got.status();
    if (*got && frame.trace_id != 0) found = true;
  }
  ASSERT_TRUE(found) << "no trace-annotated frame arrived on the wire";
  EXPECT_EQ(frame.trace_id, trace->trace_id());
  EXPECT_EQ(frame.root_span, trace->root_span());
  EXPECT_GT(frame.shipped_at_us, 0);
  EXPECT_FALSE(frame.payload.empty());

  (*shipper)->Stop();
  primary->reset();
  fs::remove_all(dir);
}

TEST(TraceExportTest, JsonListsKeptTraces) {
  TracerGuard guard;
  Tracer::Global().Configure(TraceAll(/*ring=*/4));
  auto trace = Tracer::Global().StartTrace("export");
  ASSERT_NE(trace, nullptr);
  const uint32_t child = trace->OpenSpan(trace->root_span(), "step");
  trace->CloseSpan(child);
  Tracer::Global().Finish(trace);

  const std::string json = Tracer::Global().ExportJson();
  EXPECT_NE(json.find("\"traces\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"root\":\"export\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"step\""), std::string::npos) << json;
}

}  // namespace
}  // namespace nepal
