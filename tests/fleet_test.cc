// Replication fleet suite: the socket listener serving many followers,
// resumable reconnects (resume within WAL retention, re-bootstrap
// beyond it), quorum-acknowledged semi-sync commit with degrade-to-async,
// re-pointing a follower at a new primary, and the engine's
// bounded-staleness read router (replica_ok / round_robin policies with
// epoch-pinned routed reads) — on both execution backends.

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "obs/metrics.h"
#include "persist/durable_store.h"
#include "replication/listener.h"
#include "replication/replica_store.h"
#include "replication/socket_util.h"
#include "replication/transport.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

namespace fs = std::filesystem;
using nepal::testing::BackendKind;
using persist::DurableOptions;
using persist::DurableStore;
using replication::ConnectOptions;
using replication::InProcessTransport;
using replication::ReplicaStore;
using replication::ReplicationListener;
using replication::SocketAddress;

std::string FreshDir(const std::string& name) {
  std::string unique = "nepal_fleet_" + name;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    unique += "_";
    unique += info->name();
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
  }
  fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  return dir.string();
}

/// Unix socket paths are capped around 104 bytes; anchor them in /tmp by
/// pid + a short tag rather than the (potentially deep) test temp dir.
SocketAddress FreshSocket(const std::string& tag) {
  SocketAddress addr;
  addr.is_unix = true;
  addr.path = "/tmp/nepal_fleet_" + std::to_string(::getpid()) + "_" + tag +
              ".sock";
  ::unlink(addr.path.c_str());
  return addr;
}

persist::BackendFactory Factory(BackendKind kind) {
  return [kind](schema::SchemaPtr s) {
    return nepal::testing::MakeBackend(kind, std::move(s));
  };
}

Result<std::unique_ptr<DurableStore>> OpenPrimary(
    const std::string& dir, BackendKind kind, DurableOptions options = {}) {
  return DurableStore::Open(dir, nepal::testing::Figure3Schema(),
                            Factory(kind), options);
}

Result<std::unique_ptr<ReplicaStore>> ConnectFollower(
    const std::string& dir, BackendKind kind, const SocketAddress& address,
    const std::string& name) {
  ConnectOptions options;
  options.name = name;
  return ReplicaStore::Connect(dir, nepal::testing::Figure3Schema(),
                               Factory(kind), address, options);
}

void AddHosts(storage::GraphDb& db, const std::string& prefix, int n) {
  for (int i = 0; i < n; ++i) {
    const std::string name = prefix + std::to_string(i);
    auto host = db.AddNode("Host", {{"name", Value(name)},
                                    {"serial", Value("sn-" + name)}});
    ASSERT_TRUE(host.ok()) << host.status();
  }
}

std::string Observe(storage::GraphDb& db) {
  nql::QueryEngine engine(&db);
  auto result = engine.Run("Retrieve P From PATHS P Where P MATCHES Host()");
  return result.ok() ? result->ToString(/*max_rows=*/100000)
                     : result.status().ToString();
}

::testing::AssertionResult WaitFor(const std::function<bool()>& pred,
                                   const char* what, int timeout_ms = 20000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return ::testing::AssertionFailure() << "timed out waiting for " << what;
}

::testing::AssertionResult WaitForCatchUp(const DurableStore& primary,
                                          const ReplicaStore& follower,
                                          int timeout_ms = 20000) {
  const uint64_t target = primary.records_appended();
  auto caught_up = [&] {
    // Generations restart the applied counter; converged content is the
    // contract, the record count only paces the poll.
    return follower.staleness_ms() < 10000 &&
           const_cast<DurableStore&>(primary).db().node_count() ==
               const_cast<ReplicaStore&>(follower).db().node_count();
  };
  (void)target;
  return WaitFor(caught_up, "follower catch-up", timeout_ms);
}

class FleetTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(FleetTest, ListenerServesFollowersWithQuorumAckedCommits) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  AddHosts((*primary)->db(), "seed", 5);

  const SocketAddress addr = FreshSocket("serve");
  auto listener = ReplicationListener::Start(**primary, addr);
  ASSERT_TRUE(listener.ok()) << listener.status();

  auto f1 = ConnectFollower(FreshDir("f1"), GetParam(), addr, "f1");
  ASSERT_TRUE(f1.ok()) << f1.status();
  auto f2 = ConnectFollower(FreshDir("f2"), GetParam(), addr, "f2");
  ASSERT_TRUE(f2.ok()) << f2.status();

  // Semi-sync: every commit from here on is held until one follower acks.
  DurableStore::SemiSyncOptions semisync;
  semisync.quorum = 1;
  semisync.timeout_ms = 15000;
  (*primary)->SetSemiSync(semisync);
  AddHosts((*primary)->db(), "live", 20);
  EXPECT_FALSE((*primary)->semisync_degraded())
      << "commits should have been acknowledged, not timed out";

  ASSERT_TRUE(WaitForCatchUp(**primary, **f1));
  ASSERT_TRUE(WaitForCatchUp(**primary, **f2));
  EXPECT_EQ(Observe((*f1)->db()), Observe((*primary)->db()));
  EXPECT_EQ(Observe((*f2)->db()), Observe((*primary)->db()));

  // Both sessions bootstrapped (fresh directories, no position to resume).
  EXPECT_EQ((*listener)->sessions_accepted(), 2u);
  EXPECT_EQ((*listener)->bootstraps(), 2u);
  EXPECT_EQ((*listener)->resumes(), 0u);
  EXPECT_EQ((*f1)->resumes(), 0u);
  EXPECT_EQ((*f1)->rebootstraps(), 0u);

  // The fleet table names both followers and tracks their ack coverage up
  // to the primary's appended-records high-water mark.
  ASSERT_TRUE(WaitFor(
      [&] {
        uint64_t acked = 0;
        for (const auto& f : (*listener)->Followers()) {
          if (f.connected && f.acked_records == (*primary)->records_appended())
            ++acked;
        }
        return acked == 2;
      },
      "both followers acking the full stream"));
  auto followers = (*listener)->Followers();
  ASSERT_EQ(followers.size(), 2u);
  for (const auto& f : followers) {
    EXPECT_TRUE(f.name == "f1" || f.name == "f2") << f.name;
    EXPECT_FALSE(f.resumed);
    EXPECT_GT(f.frames_shipped, 0u);
    EXPECT_EQ(f.lag_records, 0u);
  }

  // Per-follower metrics materialized under the follower's name.
  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_GT(reg.GetCounter("nepal.replication.follower.f1.frames_shipped")
                ->Value(),
            0u);
  EXPECT_GT(reg.GetCounter("nepal.replication.follower.f2.acks")->Value(), 0u);
  EXPECT_EQ(reg.GetGauge("nepal.replication.follower.f1.connected")->Value(),
            1);
}

TEST_P(FleetTest, FollowerResumesWithinRetentionWithoutReBootstrap) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  AddHosts((*primary)->db(), "seed", 5);

  const SocketAddress addr = FreshSocket("resume");
  auto listener = ReplicationListener::Start(**primary, addr);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto follower = ConnectFollower(FreshDir("f"), GetParam(), addr, "f1");
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower));

  // The primary restarts its listener; commits continue while the
  // follower is cut off.
  listener->reset();
  AddHosts((*primary)->db(), "while_away", 10);
  auto relisten = ReplicationListener::Start(**primary, addr);
  ASSERT_TRUE(relisten.ok()) << relisten.status();

  // The reconnect loop finds the new listener and resumes from its last
  // applied position — no checkpoint image is re-shipped.
  ASSERT_TRUE(WaitFor([&] { return (*follower)->resumes() >= 1; },
                      "follower resume"));
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower));
  EXPECT_EQ(Observe((*follower)->db()), Observe((*primary)->db()));
  EXPECT_GE((*follower)->reconnects(), 1u);
  EXPECT_EQ((*follower)->rebootstraps(), 0u);
  EXPECT_EQ((*relisten)->resumes(), 1u);
  EXPECT_EQ((*relisten)->bootstraps(), 0u);
  ASSERT_TRUE(WaitFor(
      [&] {
        auto followers = (*relisten)->Followers();
        return followers.size() == 1 && followers[0].resumed;
      },
      "resumed session in the fleet table"));
}

TEST_P(FleetTest, FollowerReBootstrapsWhenResumePositionWasPruned) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  AddHosts((*primary)->db(), "seed", 5);

  const SocketAddress addr = FreshSocket("reboot");
  auto listener = ReplicationListener::Start(**primary, addr);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto follower = ConnectFollower(FreshDir("f"), GetParam(), addr, "f1");
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower));
  storage::GraphDb* gen1 = &(*follower)->db();

  // Cut the follower off, then rotate the WAL past its position: two
  // checkpoints retain only the newest images and prune the segment the
  // follower would resume from.
  listener->reset();
  AddHosts((*primary)->db(), "while_away", 10);
  ASSERT_TRUE((*primary)->Checkpoint().ok());
  AddHosts((*primary)->db(), "more", 5);
  ASSERT_TRUE((*primary)->Checkpoint().ok());

  auto relisten = ReplicationListener::Start(**primary, addr);
  ASSERT_TRUE(relisten.ok()) << relisten.status();

  // Resume is impossible; the primary answers with a fresh bootstrap and
  // the follower swaps to a new generation.
  ASSERT_TRUE(WaitFor([&] { return (*follower)->rebootstraps() == 1; },
                      "follower re-bootstrap"));
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower));
  EXPECT_EQ(Observe((*follower)->db()), Observe((*primary)->db()));
  EXPECT_EQ((*follower)->resumes(), 0u);
  EXPECT_EQ((*relisten)->bootstraps(), 1u);
  EXPECT_EQ((*relisten)->resumes(), 0u);
  // db() now reports the new generation; the retired one stays readable
  // for queries that raced the swap.
  EXPECT_NE(&(*follower)->db(), gen1);
  EXPECT_GT(gen1->node_count(), 0u);
}

TEST_P(FleetTest, RepointedFollowerReBootstrapsFromTheNewPrimary) {
  auto primary_a = OpenPrimary(FreshDir("pa"), GetParam());
  ASSERT_TRUE(primary_a.ok()) << primary_a.status();
  AddHosts((*primary_a)->db(), "a", 5);
  auto primary_b = OpenPrimary(FreshDir("pb"), GetParam());
  ASSERT_TRUE(primary_b.ok()) << primary_b.status();
  AddHosts((*primary_b)->db(), "b", 8);

  const SocketAddress addr_a = FreshSocket("rpa");
  const SocketAddress addr_b = FreshSocket("rpb");
  auto listener_a = ReplicationListener::Start(**primary_a, addr_a);
  ASSERT_TRUE(listener_a.ok()) << listener_a.status();
  auto listener_b = ReplicationListener::Start(**primary_b, addr_b);
  ASSERT_TRUE(listener_b.ok()) << listener_b.status();

  auto follower = ConnectFollower(FreshDir("f"), GetParam(), addr_a, "f1");
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE(WaitForCatchUp(**primary_a, **follower));
  EXPECT_EQ(Observe((*follower)->db()), Observe((*primary_a)->db()));

  // Re-point at B: the applied position means nothing against another
  // primary's WAL, so the move is always a re-bootstrap.
  ASSERT_TRUE((*follower)->Repoint(addr_b).ok());
  ASSERT_TRUE(WaitFor([&] { return (*follower)->rebootstraps() == 1; },
                      "re-bootstrap from the new primary"));
  ASSERT_TRUE(WaitForCatchUp(**primary_b, **follower));
  EXPECT_EQ(Observe((*follower)->db()), Observe((*primary_b)->db()));
  AddHosts((*primary_b)->db(), "b_live", 3);
  ASSERT_TRUE(WaitForCatchUp(**primary_b, **follower));
  EXPECT_EQ(Observe((*follower)->db()), Observe((*primary_b)->db()));
}

TEST_P(FleetTest, SemiSyncDegradesToAsyncAndReArmsOnCatchUp) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();

  // Quorum of one with no follower attached: the first commit waits out
  // the (short) timeout and degrades; later commits return immediately
  // instead of paying the timeout again.
  DurableStore::SemiSyncOptions semisync;
  semisync.quorum = 1;
  semisync.timeout_ms = 100;
  (*primary)->SetSemiSync(semisync);
  EXPECT_FALSE((*primary)->semisync_degraded());

  const auto t0 = std::chrono::steady_clock::now();
  AddHosts((*primary)->db(), "unacked", 1);
  const auto first_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
  EXPECT_GE(first_ms, 90) << "the degrading commit should wait the timeout";
  EXPECT_TRUE((*primary)->semisync_degraded());

  const auto t1 = std::chrono::steady_clock::now();
  AddHosts((*primary)->db(), "degraded", 3);
  const auto rest_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t1)
                           .count();
  EXPECT_LT(rest_ms, 90) << "degraded mode must not wait per commit";
  EXPECT_TRUE((*primary)->semisync_degraded());

  // A follower catching back up to the commit token re-arms semi-sync.
  const uint64_t id = (*primary)->RegisterAckSource("manual");
  (*primary)->ReportAck(id, (*primary)->commit_token());
  (*primary)->WaitCommitted((*primary)->commit_token());
  EXPECT_FALSE((*primary)->semisync_degraded());
  (*primary)->UnregisterAckSource(id);
}

class RouterTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(RouterTest, ReplicaOkRoutesToReplicaWithinTheStalenessBound) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  AddHosts((*primary)->db(), "seed", 6);
  auto transport = InProcessTransport::Connect(**primary);
  ASSERT_TRUE(transport.ok()) << transport.status();
  auto follower =
      ReplicaStore::Open(FreshDir("f"), nepal::testing::Figure3Schema(),
                         Factory(GetParam()), std::move(*transport));
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower));

  nql::EngineOptions options;
  options.routing.policy = nql::ReadPolicy::kReplicaOk;
  options.routing.max_lag_ms = 60000;
  nql::QueryEngine engine(&(*primary)->db(), options);
  ASSERT_TRUE(
      engine.catalog().AttachReplica("standby", follower->get()).ok());

  auto primary_rows =
      nql::QueryEngine(&(*primary)->db())
          .Run("Retrieve P From PATHS P Where P MATCHES Host()");
  ASSERT_TRUE(primary_rows.ok());
  auto routed = engine.Run("Retrieve P From PATHS P Where P MATCHES Host()");
  ASSERT_TRUE(routed.ok()) << routed.status();
  EXPECT_EQ(routed->rows.size(), primary_rows->rows.size());
  nql::RouteDecision route = engine.LastRoute();
  EXPECT_TRUE(route.replica);
  EXPECT_EQ(route.source, "standby");
  EXPECT_LE(route.staleness_ms, options.routing.max_lag_ms);
  EXPECT_GT(route.epoch, 0u);
  EXPECT_EQ(route.db, &(*follower)->db());

  // Bounded staleness under live writes: every routed read either runs on
  // a replica within the bound or falls back to the primary — never on a
  // replica staler than max_lag_ms.
  std::thread writer([&] { AddHosts((*primary)->db(), "live", 50); });
  for (int i = 0; i < 40; ++i) {
    auto r = engine.Run(
        "Select count(P) From PATHS P Where P MATCHES Host()");
    ASSERT_TRUE(r.ok()) << r.status();
    nql::RouteDecision d = engine.LastRoute();
    if (d.replica) {
      EXPECT_LE(d.staleness_ms, options.routing.max_lag_ms);
    }
  }
  writer.join();

  // Explicit `In` routing still works under a routing policy: a named
  // source query is pinned to that source, not re-routed.
  auto named = engine.Run(
      "Retrieve P From PATHS P In 'standby' Where P MATCHES Host()");
  ASSERT_TRUE(named.ok()) << named.status();
}

TEST_P(RouterTest, StaleOrStoppedReplicasFallBackToThePrimary) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  AddHosts((*primary)->db(), "seed", 4);
  auto transport = InProcessTransport::Connect(**primary);
  ASSERT_TRUE(transport.ok()) << transport.status();
  auto follower =
      ReplicaStore::Open(FreshDir("f"), nepal::testing::Figure3Schema(),
                         Factory(GetParam()), std::move(*transport));
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower));

  nql::EngineOptions options;
  options.routing.policy = nql::ReadPolicy::kReplicaOk;
  options.routing.max_lag_ms = 0;  // nothing can be this fresh for long
  nql::QueryEngine engine(&(*primary)->db(), options);
  ASSERT_TRUE(
      engine.catalog().AttachReplica("standby", follower->get()).ok());

  auto& reg = obs::MetricsRegistry::Global();
  const uint64_t fallbacks_before =
      reg.GetCounter("nepal.router.fallbacks")->Value();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto r = engine.Run("Retrieve P From PATHS P Where P MATCHES Host()");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(engine.LastRoute().replica)
      << "a replica idle for 50ms cannot satisfy max_lag_ms=0";
  EXPECT_GT(reg.GetCounter("nepal.router.fallbacks")->Value(),
            fallbacks_before);

  // A promoted follower stops serving routed reads entirely.
  options.routing.max_lag_ms = 60000;
  nql::QueryEngine wide(&(*primary)->db(), options);
  ASSERT_TRUE(wide.catalog().AttachReplica("standby", follower->get()).ok());
  ASSERT_TRUE((*follower)->Promote().ok());
  EXPECT_FALSE((*follower)->serving());
  r = wide.Run("Retrieve P From PATHS P Where P MATCHES Host()");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(wide.LastRoute().replica);
}

TEST_P(RouterTest, RoundRobinSpreadsReadsAcrossPrimaryAndReplicas) {
  auto primary = OpenPrimary(FreshDir("p"), GetParam());
  ASSERT_TRUE(primary.ok()) << primary.status();
  AddHosts((*primary)->db(), "seed", 4);
  auto transport = InProcessTransport::Connect(**primary);
  ASSERT_TRUE(transport.ok()) << transport.status();
  auto follower =
      ReplicaStore::Open(FreshDir("f"), nepal::testing::Figure3Schema(),
                         Factory(GetParam()), std::move(*transport));
  ASSERT_TRUE(follower.ok()) << follower.status();
  ASSERT_TRUE(WaitForCatchUp(**primary, **follower));

  nql::EngineOptions options;
  options.routing.policy = nql::ReadPolicy::kRoundRobin;
  options.routing.max_lag_ms = 60000;
  nql::QueryEngine engine(&(*primary)->db(), options);
  ASSERT_TRUE(
      engine.catalog().AttachReplica("standby", follower->get()).ok());

  int replica_routes = 0;
  int primary_routes = 0;
  for (int i = 0; i < 10; ++i) {
    auto r = engine.Run("Retrieve P From PATHS P Where P MATCHES Host()");
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->rows.size(), 4u);
    (engine.LastRoute().replica ? replica_routes : primary_routes)++;
  }
  // One replica + the primary: strict alternation, 5 reads each.
  EXPECT_EQ(replica_routes, 5);
  EXPECT_EQ(primary_routes, 5);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, FleetTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const auto& info) { return nepal::testing::BackendName(info.param); });

INSTANTIATE_TEST_SUITE_P(
    Backends, RouterTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const auto& info) { return nepal::testing::BackendName(info.param); });

}  // namespace
}  // namespace nepal
