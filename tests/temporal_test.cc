// Time-travel queries (paper Section 4): timeslice (AT point), time-range
// with maximal validity intervals, per-variable time bindings, temporal
// aggregations, path evolution, and the update-by-snapshot service.

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "temporal/evolution.h"
#include "temporal/snapshot.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;

constexpr const char* kT0 = "2017-02-15 08:00:00";
constexpr const char* kT1 = "2017-02-15 09:00:00";
constexpr const char* kT2 = "2017-02-15 10:00:00";
constexpr const char* kT3 = "2017-02-15 11:00:00";
constexpr const char* kT4 = "2017-02-15 12:00:00";

Timestamp Ts(const char* s) {
  auto r = ParseTimestamp(s);
  EXPECT_TRUE(r.ok());
  return *r;
}

/// A VNF whose hosting moves between two hosts over the morning:
///   t0: vnf -> vfc -> vm -> host1
///   t2: vm migrates to host2
///   t3: vm status turns Red
///   t4: vm is deleted
class TemporalTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  void SetUp() override {
    schema::SchemaPtr schema = nepal::testing::Figure3Schema();
    db_ = std::make_unique<storage::GraphDb>(
        schema, nepal::testing::MakeBackend(GetParam(), schema));
    engine_ = std::make_unique<nql::QueryEngine>(db_.get());

    ASSERT_TRUE(db_->SetTime(Ts(kT0)).ok());
    vnf_ = *db_->AddNode("DNS", {{"name", Value("vnf")}});
    vfc_ = *db_->AddNode("VFC", {{"name", Value("vfc")}});
    vm_ = *db_->AddNode("VMWare",
                        {{"name", Value("vm")}, {"status", Value("Green")}});
    host1_ = *db_->AddNode("Host", {{"name", Value("host1")}});
    host2_ = *db_->AddNode("Host", {{"name", Value("host2")}});
    ASSERT_TRUE(db_->AddEdge("composed_of", vnf_, vfc_, {}).ok());
    ASSERT_TRUE(db_->AddEdge("hosted_on", vfc_, vm_, {}).ok());
    placement1_ = *db_->AddEdge("OnServer", vm_, host1_, {});

    ASSERT_TRUE(db_->SetTime(Ts(kT2)).ok());
    ASSERT_TRUE(db_->RemoveElement(placement1_).ok());
    placement2_ = *db_->AddEdge("OnServer", vm_, host2_, {});

    ASSERT_TRUE(db_->SetTime(Ts(kT3)).ok());
    ASSERT_TRUE(db_->UpdateElement(vm_, {{"status", Value("Red")}}).ok());

    ASSERT_TRUE(db_->SetTime(Ts(kT4)).ok());
    ASSERT_TRUE(db_->RemoveElement(vm_).ok());
  }

  nql::QueryResult Run(const std::string& query) {
    auto result = engine_->Run(query);
    EXPECT_TRUE(result.ok()) << result.status() << "\nquery: " << query;
    return result.ok() ? *result : nql::QueryResult{};
  }

  std::string VerticalQuery(Uid host) {
    return "Retrieve P From PATHS P Where P MATCHES "
           "VNF()->[Vertical()]{1,6}->Host(id=" +
           std::to_string(host) + ")";
  }

  std::unique_ptr<storage::GraphDb> db_;
  std::unique_ptr<nql::QueryEngine> engine_;
  Uid vnf_, vfc_, vm_, host1_, host2_, placement1_, placement2_;
};

TEST_P(TemporalTest, CurrentSnapshotSeesNothingAfterDeletion) {
  // The VM is gone now; no current path to either host.
  EXPECT_TRUE(Run(VerticalQuery(host1_)).rows.empty());
  EXPECT_TRUE(Run(VerticalQuery(host2_)).rows.empty());
}

TEST_P(TemporalTest, TimesliceSeesThePast) {
  auto at_t1 = Run("AT '" + std::string(kT1) + "' " + VerticalQuery(host1_));
  ASSERT_EQ(at_t1.rows.size(), 1u);
  EXPECT_EQ(at_t1.rows[0].paths[0].source_uid(), vnf_);

  // At t1 the VM was on host1, not host2...
  EXPECT_TRUE(
      Run("AT '" + std::string(kT1) + "' " + VerticalQuery(host2_)).rows.empty());
  // ...and after the migration, the other way round.
  EXPECT_TRUE(
      Run("AT '" + std::string(kT3) + "' " + VerticalQuery(host1_)).rows.empty());
  EXPECT_EQ(
      Run("AT '" + std::string(kT3) + "' " + VerticalQuery(host2_)).rows.size(),
      1u);
}

TEST_P(TemporalTest, TimeRangeReturnsMaximalIntervals) {
  auto result = Run("AT '" + std::string(kT0) + "' : '" + std::string(kT4) +
                    "' " + VerticalQuery(host1_));
  // The path over host1 existed exactly [t0, t2).
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].valid.start, Ts(kT0));
  EXPECT_EQ(result.rows[0].valid.end, Ts(kT2));
}

TEST_P(TemporalTest, TimeRangeCoalescesIrrelevantFieldChanges) {
  // The vm's status update at t3 creates a new version, but the pathway
  // through host2 is continuously valid [t2, t4): the result must be the
  // maximal interval, not split at t3.
  auto result = Run("AT '" + std::string(kT0) + "' : '2017-02-16 00:00' " +
                    VerticalQuery(host2_));
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].valid.start, Ts(kT2));
  EXPECT_EQ(result.rows[0].valid.end, Ts(kT4));
}

TEST_P(TemporalTest, TimeRangeSplitsOnPredicateRelevantChanges) {
  // Constraining the VM's status makes the t3 update relevant: the Green
  // pathway exists only [t2, t3).
  auto result = Run(
      "AT '" + std::string(kT0) + "' : '2017-02-16 00:00' "
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->VFC()->VM(status='Green')->Host(id=" +
      std::to_string(host2_) + ")");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].valid.start, Ts(kT2));
  EXPECT_EQ(result.rows[0].valid.end, Ts(kT3));
}

TEST_P(TemporalTest, PerVariableTimeBindings) {
  // Paper Section 4: a VNF hosted on host1 at 9:00 and host2 at 11:00.
  auto result = Run(
      "Select source(P) From PATHS P(@'" + std::string(kT1) + "'), PATHS Q(@'" +
      std::string(kT3) + "') " +
      "Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=" +
      std::to_string(host1_) +
      ") And Q MATCHES VNF()->[Vertical()]{1,6}->Host(id=" +
      std::to_string(host2_) + ") And source(P) = source(Q)");
  ASSERT_EQ(result.rows.size(), 1u);
  EXPECT_EQ(result.rows[0].values[0], Value(static_cast<int64_t>(vnf_)));
}

TEST_P(TemporalTest, PerVariableBindingsAtDisjointTimesStillJoin) {
  // With per-variable @, no coexistence is required — the same query with a
  // query-level AT range would demand it.
  auto p_at_t1_q_at_t1 = Run(
      "Select source(P) From PATHS P(@'" + std::string(kT1) +
      "'), PATHS Q(@'" + std::string(kT1) + "') " +
      "Where P MATCHES VM()->Host(id=" + std::to_string(host1_) +
      ") And Q MATCHES VM()->Host(id=" + std::to_string(host2_) +
      ") And source(P) = source(Q)");
  // At t1 the VM is only on host1; Q finds nothing.
  EXPECT_TRUE(p_at_t1_q_at_t1.rows.empty());
}

TEST_P(TemporalTest, QueryLevelRangeRequiresCoexistence) {
  // Both hosts' placements never coexist, so a joint time-range join over
  // both is empty.
  auto result = Run(
      "AT '" + std::string(kT0) + "' : '" + std::string(kT4) + "' " +
      "Retrieve P, Q From PATHS P, PATHS Q " +
      "Where P MATCHES VM()->Host(id=" + std::to_string(host1_) +
      ") And Q MATCHES VM()->Host(id=" + std::to_string(host2_) +
      ") And source(P) = source(Q)");
  EXPECT_TRUE(result.rows.empty());
}

TEST_P(TemporalTest, WhenExistsAggregation) {
  auto result = Run("AT '" + std::string(kT0) + "' : '2017-02-16 00:00' " +
                    "When Exists Retrieve P From PATHS P Where P MATCHES "
                    "VNF()->[Vertical()]{1,6}->Host()");
  // Hosted somewhere over [t0, t4) — continuous despite the migration.
  ASSERT_EQ(result.when_exists.intervals().size(), 1u);
  EXPECT_EQ(result.when_exists.intervals()[0].start, Ts(kT0));
  EXPECT_EQ(result.when_exists.intervals()[0].end, Ts(kT4));
}

TEST_P(TemporalTest, FirstAndLastTimeWhenExists) {
  std::string base =
      "Retrieve P From PATHS P Where P MATCHES VM()->Host(id=" +
      std::to_string(host2_) + ")";
  std::string range = "AT '" + std::string(kT0) + "' : '2017-02-16 00:00' ";
  auto first = Run(range + "First Time When Exists " + base);
  ASSERT_TRUE(first.agg_time.has_value());
  EXPECT_EQ(*first.agg_time, Ts(kT2));
  auto last = Run(range + "Last Time When Exists " + base);
  ASSERT_TRUE(last.agg_time.has_value());
  EXPECT_EQ(*last.agg_time, Ts(kT4));
}

TEST_P(TemporalTest, AggregationOverEmptyResult) {
  auto result = Run("AT '" + std::string(kT0) + "' : '" + std::string(kT4) +
                    "' First Time When Exists Retrieve P From PATHS P "
                    "Where P MATCHES Docker()");
  EXPECT_FALSE(result.agg_time.has_value());
  EXPECT_TRUE(result.when_exists.empty());
}

TEST_P(TemporalTest, PathEvolution) {
  std::vector<Uid> path = {vfc_, vm_};
  temporal::PathEvolution evo = temporal::TrackPathEvolution(
      db_->backend(), path, Interval{Ts(kT0), Ts("2017-02-16 00:00")});
  ASSERT_EQ(evo.elements.size(), 2u);
  // The VFC never changed.
  EXPECT_TRUE(evo.elements[0].transitions.empty());
  // The VM changed status at t3.
  ASSERT_EQ(evo.elements[1].transitions.size(), 1u);
  EXPECT_EQ(evo.elements[1].transitions[0].at, Ts(kT3));
  ASSERT_EQ(evo.elements[1].transitions[0].changes.size(), 1u);
  EXPECT_EQ(evo.elements[1].transitions[0].changes[0].field, "status");
  EXPECT_EQ(evo.elements[1].transitions[0].changes[0].after, Value("Red"));
  // The joint existence ends when the VM is deleted.
  EXPECT_EQ(evo.path_existence.LastTime(), Ts(kT4));
}

TEST_P(TemporalTest, HistoricalFieldAccessInSelect) {
  // Select over a timeslice must fetch the field value as of that time.
  auto at_t2 = Run("AT '" + std::string(kT2) + "' " +
                   "Select source(P).status From PATHS P Where P MATCHES "
                   "VM()->Host(id=" + std::to_string(host2_) + ")");
  ASSERT_EQ(at_t2.rows.size(), 1u);
  EXPECT_EQ(at_t2.rows[0].values[0], Value("Green"));
  auto at_t3 = Run("AT '" + std::string(kT3) + "' " +
                   "Select source(P).status From PATHS P Where P MATCHES "
                   "VM()->Host(id=" + std::to_string(host2_) + ")");
  ASSERT_EQ(at_t3.rows.size(), 1u);
  EXPECT_EQ(at_t3.rows[0].values[0], Value("Red"));
}

// ---- Update-by-snapshot service ----

TEST_P(TemporalTest, SnapshotUpdaterDiffsCorrectly) {
  schema::SchemaPtr schema = nepal::testing::Figure3Schema();
  storage::GraphDb db(schema, nepal::testing::MakeBackend(GetParam(), schema));
  temporal::SnapshotUpdater updater(&db);

  temporal::Snapshot snap1;
  snap1.nodes = {{"vm-a", "VMWare",
                  {{"name", Value("vm-a")}, {"status", Value("Green")}}},
                 {"host-a", "Host", {{"name", Value("host-a")}}}};
  snap1.edges = {{"pl-a", "OnServer", "vm-a", "host-a", {}}};
  auto stats1 = updater.Apply(snap1, Ts(kT1));
  ASSERT_TRUE(stats1.ok()) << stats1.status();
  EXPECT_EQ(stats1->nodes_inserted, 2u);
  EXPECT_EQ(stats1->edges_inserted, 1u);

  // Same snapshot again: nothing changes, nothing is versioned.
  size_t versions = db.backend().VersionCount();
  auto stats2 = updater.Apply(snap1, Ts(kT2));
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->unchanged, 3u);
  EXPECT_EQ(db.backend().VersionCount(), versions);

  // Field change + element disappearance.
  temporal::Snapshot snap3;
  snap3.nodes = {{"vm-a", "VMWare",
                  {{"name", Value("vm-a")}, {"status", Value("Red")}}},
                 {"host-a", "Host", {{"name", Value("host-a")}}},
                 {"host-b", "Host", {{"name", Value("host-b")}}}};
  snap3.edges = {{"pl-a", "OnServer", "vm-a", "host-b", {}}};  // rewired
  auto stats3 = updater.Apply(snap3, Ts(kT3));
  ASSERT_TRUE(stats3.ok()) << stats3.status();
  EXPECT_EQ(stats3->nodes_updated, 1u);
  EXPECT_EQ(stats3->nodes_inserted, 1u);
  EXPECT_EQ(stats3->edges_deleted, 1u);  // rewire = delete + insert
  EXPECT_EQ(stats3->edges_inserted, 1u);

  // History reflects the diff stream: at t1 the vm was Green on host-a.
  nql::QueryEngine engine(&db);
  auto past = engine.Run(
      "AT '" + std::string(kT2) +
      "' Select target(P).name From PATHS P Where P MATCHES "
      "VM(status='Green')->Host()");
  ASSERT_TRUE(past.ok()) << past.status();
  ASSERT_EQ(past->rows.size(), 1u);
  EXPECT_EQ(past->rows[0].values[0], Value("host-a"));

  Uid vm = updater.Lookup("vm-a");
  auto cur = db.GetCurrent(vm);
  ASSERT_TRUE(cur.ok());
  EXPECT_EQ(cur->fields[cur->cls->FieldIndex("status")], Value("Red"));
}

TEST_P(TemporalTest, SnapshotUpdaterRejectsDanglingEdges) {
  schema::SchemaPtr schema = nepal::testing::Figure3Schema();
  storage::GraphDb db(schema, nepal::testing::MakeBackend(GetParam(), schema));
  temporal::SnapshotUpdater updater(&db);
  temporal::Snapshot bad;
  bad.nodes = {{"vm-a", "VMWare", {}}};
  bad.edges = {{"e", "OnServer", "vm-a", "missing-host", {}}};
  auto stats = updater.Apply(bad, Ts(kT1));
  EXPECT_FALSE(stats.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, TemporalTest,
    ::testing::Values(BackendKind::kGraphStore, BackendKind::kRelational),
    [](const ::testing::TestParamInfo<BackendKind>& info) {
      return nepal::testing::BackendName(info.param);
    });

}  // namespace
}  // namespace nepal
