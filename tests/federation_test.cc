// Tests for the federation mediator: range variables bound to different
// data sources (different schemas and backends), value joins across
// sources, uid-based seeding within a source, and error handling.

#include <set>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

using nepal::testing::BackendKind;

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto cloud_schema = schema::ParseSchemaDsl(R"(
      node VM : Node { owner: string; }
      node HostRef : Node {}
      edge on_server : Edge {}
      allow on_server (VM -> HostRef);
    )");
    ASSERT_TRUE(cloud_schema.ok());
    cloud_ = std::make_unique<storage::GraphDb>(
        *cloud_schema, nepal::testing::MakeBackend(BackendKind::kGraphStore,
                                                   *cloud_schema));
    auto phys_schema = schema::ParseSchemaDsl(R"(
      node Server : Node { site: string; }
      node Circuit : Node {}
      edge terminates : Edge {}
      allow terminates (Server -> Circuit);
      allow terminates (Circuit -> Server);
    )");
    ASSERT_TRUE(phys_schema.ok());
    physical_ = std::make_unique<storage::GraphDb>(
        *phys_schema, nepal::testing::MakeBackend(BackendKind::kRelational,
                                                  *phys_schema));

    auto n = [](storage::GraphDb& db, const char* cls,
                schema::FieldValues f) {
      auto r = db.AddNode(cls, f);
      EXPECT_TRUE(r.ok()) << r.status();
      return *r;
    };
    Uid vm1 = n(*cloud_, "VM",
                {{"name", Value("vm-1")}, {"owner", Value("acme")}});
    Uid vm2 = n(*cloud_, "VM",
                {{"name", Value("vm-2")}, {"owner", Value("globex")}});
    Uid ref1 = n(*cloud_, "HostRef", {{"name", Value("srv-1")}});
    Uid ref2 = n(*cloud_, "HostRef", {{"name", Value("srv-2")}});
    ASSERT_TRUE(cloud_->AddEdge("on_server", vm1, ref1, {}).ok());
    ASSERT_TRUE(cloud_->AddEdge("on_server", vm2, ref2, {}).ok());

    Uid s1 = n(*physical_, "Server",
               {{"name", Value("srv-1")}, {"site", Value("ATL")}});
    Uid s2 = n(*physical_, "Server",
               {{"name", Value("srv-2")}, {"site", Value("DFW")}});
    Uid ckt = n(*physical_, "Circuit", {{"name", Value("ckt-1")}});
    ASSERT_TRUE(physical_->AddEdge("terminates", s1, ckt, {}).ok());
    ASSERT_TRUE(physical_->AddEdge("terminates", ckt, s2, {}).ok());

    engine_ = std::make_unique<nql::QueryEngine>(cloud_.get());
    nql::SourceDescriptor cloud_desc;
    cloud_desc.db = cloud_.get();
    ASSERT_TRUE(engine_->catalog().Register("cloud", cloud_desc).ok());
    nql::SourceDescriptor physical_desc;
    physical_desc.db = physical_.get();
    ASSERT_TRUE(engine_->catalog().Register("physical", physical_desc).ok());
  }

  std::unique_ptr<storage::GraphDb> cloud_, physical_;
  std::unique_ptr<nql::QueryEngine> engine_;
};

TEST_F(FederationTest, DefaultSourceIsUsedWithoutIn) {
  auto result = engine_->Run("Retrieve P From PATHS P Where P MATCHES VM()");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rows.size(), 2u);
}

TEST_F(FederationTest, PerVariableSourceResolution) {
  auto result = engine_->Run(
      "Retrieve P, Q From PATHS P In 'cloud', PATHS Q In 'physical' "
      "Where P MATCHES VM(owner='acme') And Q MATCHES Circuit()");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);  // cross product 1 x 1
  EXPECT_EQ(result->rows[0].paths.size(), 2u);
}

TEST_F(FederationTest, ValueJoinAcrossSources) {
  auto result = engine_->Run(
      "Select source(V).name, target(C).name "
      "From PATHS V In 'cloud', PATHS C In 'physical' "
      "Where V MATCHES VM()->on_server()->HostRef() "
      "And C MATCHES Server()->terminates()->Circuit() "
      "And target(V).name = source(C).name");
  ASSERT_TRUE(result.ok()) << result.status();
  // Only srv-1 terminates a circuit in that direction.
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].values[0], Value("vm-1"));
  EXPECT_EQ(result->rows[0].values[1], Value("ckt-1"));
}

TEST_F(FederationTest, ClassResolutionIsPerSourceSchema) {
  // Circuit only exists in the physical schema: binding the variable to the
  // cloud source must fail to resolve.
  auto wrong = engine_->Run(
      "Retrieve C From PATHS C In 'cloud' Where C MATCHES Circuit()");
  ASSERT_FALSE(wrong.ok());
  EXPECT_EQ(wrong.status().code(), StatusCode::kNotFound);
}

TEST_F(FederationTest, UnknownSourceIsRejected) {
  auto result = engine_->Run(
      "Retrieve P From PATHS P In 'mars' Where P MATCHES VM()");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(FederationTest, CatalogDescribesRegisteredSources) {
  // Plain registrations are writable primaries, and Describe renders one
  // line per source.
  auto names = engine_->catalog().Names();
  EXPECT_EQ(names, (std::vector<std::string>{"cloud", "physical"}));
  for (const auto& name : names) {
    auto writable = engine_->catalog().Writable(name);
    ASSERT_TRUE(writable.ok()) << writable.status();
    auto looked_up = engine_->catalog().Lookup(name);
    ASSERT_TRUE(looked_up.ok()) << looked_up.status();
    EXPECT_EQ(*writable, looked_up->db);
  }
  const std::string described = engine_->catalog().Describe();
  EXPECT_NE(described.find("cloud: primary"), std::string::npos) << described;
  EXPECT_NE(described.find("physical: primary"), std::string::npos)
      << described;
}

TEST_F(FederationTest, CatalogEnforcesReplicaAndReadOnlyRoles) {
  // A source registered as a replica is forced read-only: reads route,
  // writes are refused with kReadOnly (not kNotFound — the source exists).
  nql::SourceDescriptor standby;
  standby.db = physical_.get();
  standby.role = nql::SourceRole::kReplica;
  ASSERT_TRUE(engine_->catalog().Register("standby", standby).ok());
  auto reads = engine_->Run(
      "Retrieve P From PATHS P In 'standby' Where P MATCHES Server()");
  ASSERT_TRUE(reads.ok()) << reads.status();
  EXPECT_EQ(reads->rows.size(), 2u);
  auto writable = engine_->catalog().Writable("standby");
  ASSERT_FALSE(writable.ok());
  EXPECT_EQ(writable.status().code(), StatusCode::kReadOnly);

  // Null registrations are rejected outright.
  nql::SourceDescriptor empty;
  EXPECT_EQ(engine_->catalog().Register("void", empty).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FederationTest, UidJoinsDoNotSeedAcrossSources) {
  // source(P) = target(Q) across different databases compares raw uids —
  // legal, but the engine must not try to import anchors across sources.
  // Construct a Q that cannot anchor structurally; since the only join is
  // cross-source, planning must fail rather than mis-seed.
  auto result = engine_->Run(
      "Retrieve Q From PATHS P In 'cloud', PATHS Q In 'physical' "
      "Where P MATCHES VM(owner='acme') "
      "And Q MATCHES [terminates()]{0,2}->[terminates()]{0,2} "
      "And source(Q) = target(P)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kPlanError);
}

TEST_F(FederationTest, SeedingWorksWithinOneSource) {
  // The same unanchorable RPE seeds fine when the join stays in-source.
  // (P is a single-node pathway, so source(P) == target(P) == the server.)
  auto result = engine_->Run(
      "Retrieve Q From PATHS P In 'physical', PATHS Q In 'physical' "
      "Where P MATCHES Server(site='ATL') "
      "And Q MATCHES [terminates()]{1,2} "
      "And source(Q) = target(P)");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_FALSE(result->rows.empty());
  for (const auto& row : result->rows) {
    EXPECT_EQ(row.paths[0].concepts[1]->name(), "terminates");
    EXPECT_EQ(row.paths[0].uids[0], row.paths[0].uids[0]);
  }
  // Seeding at the target side runs the program backwards: paths *into*
  // the ATL server. None exist (the circuit only terminates outward).
  result = engine_->Run(
      "Retrieve Q From PATHS P In 'physical', PATHS Q In 'physical' "
      "Where P MATCHES Server(site='ATL') "
      "And Q MATCHES [terminates()]{1,2} "
      "And target(Q) = target(P)");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->rows.empty());
}

}  // namespace
}  // namespace nepal
