// Unit tests for the durability primitives: CRC32C, the logical record
// codec, segment framing (torn tails vs corruption), checkpoint images, and
// the exact GraphStats snapshot codec.

#include <filesystem>
#include <fstream>
#include <shared_mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "persist/checkpoint.h"
#include "persist/crc32c.h"
#include "persist/wal.h"
#include "persist/wal_format.h"
#include "stats/stats.h"
#include "tests/testutil.h"

namespace nepal {
namespace {

namespace fs = std::filesystem;
using persist::Crc32c;
using persist::DecodeWalRecord;
using persist::EncodeWalRecord;
using persist::MaskCrc;
using persist::ReadWalSegment;
using persist::UnmaskCrc;
using persist::WalReadResult;
using persist::WalRecord;
using persist::WalRecordType;
using persist::WalWriter;
using persist::WalWriterOptions;

std::string FreshDir(const std::string& name) {
  // Suffix with the full test name (param included) so parameterized
  // instantiations never share a directory when ctest runs them in parallel.
  std::string unique = "nepal_" + name;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    unique += "_";
    unique += info->name();
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
  }
  fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

TEST(Crc32cTest, KnownAnswer) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4 vector).
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, SeedChaining) {
  const std::string data = "nepal durability";
  uint32_t whole = Crc32c(data.data(), data.size());
  uint32_t part = Crc32c(data.data(), 5);
  EXPECT_EQ(Crc32c(data.data() + 5, data.size() - 5, part), whole);
}

TEST(Crc32cTest, MaskRoundTrip) {
  for (uint32_t crc : {0u, 1u, 0xDEADBEEFu, 0xFFFFFFFFu}) {
    EXPECT_EQ(UnmaskCrc(MaskCrc(crc)), crc);
    EXPECT_NE(MaskCrc(crc), crc);  // masking must actually change the value
  }
}

TEST(WalRecordCodecTest, RoundTripsEveryType) {
  schema::SchemaPtr schema = nepal::testing::Figure3Schema();
  const schema::ClassDef* vm = schema->FindClass("VM");
  ASSERT_NE(vm, nullptr);

  std::vector<WalRecord> records;
  WalRecord set_time;
  set_time.type = WalRecordType::kSetTime;
  set_time.time = 1234567;
  records.push_back(set_time);

  WalRecord add_node;
  add_node.type = WalRecordType::kAddNode;
  add_node.time = 42;
  add_node.uid = 7;
  add_node.class_name = "VM";
  add_node.row.assign(vm->fields().size(), Value());
  add_node.row[0] = Value("vm1");
  records.push_back(add_node);

  WalRecord add_edge;
  add_edge.type = WalRecordType::kAddEdge;
  add_edge.time = 43;
  add_edge.uid = 9;
  add_edge.class_name = "OnServer";
  add_edge.source = 7;
  add_edge.target = 8;
  records.push_back(add_edge);

  WalRecord update;
  update.type = WalRecordType::kUpdate;
  update.time = 44;
  update.uid = 7;
  update.changes.emplace_back(1, Value("migrating"));
  update.changes.emplace_back(2, Value());  // null clears a field
  records.push_back(update);

  WalRecord remove;
  remove.type = WalRecordType::kRemove;
  remove.time = 45;
  remove.uid = 9;
  records.push_back(remove);

  for (const WalRecord& rec : records) {
    std::string payload;
    EncodeWalRecord(rec, &payload);
    auto decoded = DecodeWalRecord(payload);
    ASSERT_TRUE(decoded.ok())
        << persist::WalRecordTypeToString(rec.type) << ": "
        << decoded.status();
    EXPECT_EQ(decoded->type, rec.type);
    EXPECT_EQ(decoded->time, rec.time);
    EXPECT_EQ(decoded->uid, rec.uid);
    EXPECT_EQ(decoded->class_name, rec.class_name);
    EXPECT_EQ(decoded->source, rec.source);
    EXPECT_EQ(decoded->target, rec.target);
    ASSERT_EQ(decoded->row.size(), rec.row.size());
    for (size_t i = 0; i < rec.row.size(); ++i) {
      EXPECT_TRUE(decoded->row[i] == rec.row[i]);
    }
    ASSERT_EQ(decoded->changes.size(), rec.changes.size());
    for (size_t i = 0; i < rec.changes.size(); ++i) {
      EXPECT_EQ(decoded->changes[i].first, rec.changes[i].first);
      EXPECT_TRUE(decoded->changes[i].second == rec.changes[i].second);
    }
  }
}

TEST(WalRecordCodecTest, RejectsDamage) {
  WalRecord rec;
  rec.type = WalRecordType::kRemove;
  rec.time = 1;
  rec.uid = 5;
  std::string payload;
  EncodeWalRecord(rec, &payload);

  // Trailing garbage.
  auto r = DecodeWalRecord(payload + "x");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);

  // Truncation.
  r = DecodeWalRecord(std::string_view(payload.data(), payload.size() - 3));
  EXPECT_FALSE(r.ok());

  // Unknown type byte.
  std::string bad = payload;
  bad[0] = 99;
  r = DecodeWalRecord(bad);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

std::vector<WalRecord> SampleRecords(int n) {
  std::vector<WalRecord> out;
  for (int i = 0; i < n; ++i) {
    WalRecord rec;
    rec.type = WalRecordType::kRemove;
    rec.time = 100 + i;
    rec.uid = static_cast<Uid>(1 + i);
    out.push_back(rec);
  }
  return out;
}

Status WriteSegment(const std::string& path, uint64_t seq, uint64_t fp,
                    const std::vector<WalRecord>& records) {
  auto writer = WalWriter::Create(path, seq, fp, WalWriterOptions{});
  NEPAL_RETURN_NOT_OK(writer.status());
  for (const WalRecord& rec : records) {
    std::string payload;
    EncodeWalRecord(rec, &payload);
    NEPAL_RETURN_NOT_OK((*writer)->Append(payload));
  }
  return (*writer)->Close();
}

TEST(WalSegmentTest, WriteReadRoundTrip) {
  const std::string dir = FreshDir("wal_roundtrip");
  const std::string path = dir + "/wal-00000001.log";
  auto records = SampleRecords(5);
  ASSERT_TRUE(WriteSegment(path, 1, 77, records).ok());

  std::vector<Uid> seen;
  auto read = ReadWalSegment(path, 1, 77, [&](const WalRecord& rec) {
    seen.push_back(rec.uid);
    return Status::OK();
  });
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->records, 5u);
  EXPECT_FALSE(read->torn_tail);
  EXPECT_EQ(seen, (std::vector<Uid>{1, 2, 3, 4, 5}));
}

TEST(WalSegmentTest, HeaderMismatchesAreCorruption) {
  const std::string dir = FreshDir("wal_header");
  const std::string path = dir + "/wal-00000002.log";
  ASSERT_TRUE(WriteSegment(path, 2, 77, SampleRecords(1)).ok());
  auto ok_cb = [](const WalRecord&) { return Status::OK(); };

  auto wrong_seq = ReadWalSegment(path, 3, 77, ok_cb);
  ASSERT_FALSE(wrong_seq.ok());
  EXPECT_EQ(wrong_seq.status().code(), StatusCode::kCorruption);

  auto wrong_fp = ReadWalSegment(path, 2, 78, ok_cb);
  ASSERT_FALSE(wrong_fp.ok());
  EXPECT_NE(wrong_fp.status().message().find("schema"), std::string::npos);

  std::string data = ReadAll(path);
  data[0] = 'X';
  WriteAll(path, data);
  auto bad_magic = ReadWalSegment(path, 2, 77, ok_cb);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_NE(bad_magic.status().message().find("magic"), std::string::npos);
}

TEST(WalSegmentTest, TornTailIsToleratedAtEveryCut) {
  const std::string dir = FreshDir("wal_torn");
  const std::string path = dir + "/wal-00000001.log";
  ASSERT_TRUE(WriteSegment(path, 1, 77, SampleRecords(3)).ok());
  const std::string full = ReadAll(path);

  // Truncating anywhere strictly inside the record region must yield a
  // clean stop: the complete prefix replays, the tail is reported torn.
  for (size_t cut = persist::kWalHeaderSize; cut < full.size(); ++cut) {
    WriteAll(path, full.substr(0, cut));
    size_t seen = 0;
    auto read = ReadWalSegment(path, 1, 77, [&](const WalRecord&) {
      ++seen;
      return Status::OK();
    });
    ASSERT_TRUE(read.ok()) << "cut at " << cut << ": " << read.status();
    EXPECT_EQ(read->records, seen);
    if (cut < full.size()) {
      EXPECT_TRUE(read->torn_tail || read->valid_bytes == cut)
          << "cut at " << cut;
    }
  }

  // A file shorter than the header is a torn segment creation.
  WriteAll(path, full.substr(0, persist::kWalHeaderSize / 2));
  auto read = ReadWalSegment(path, 1, 77,
                             [](const WalRecord&) { return Status::OK(); });
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(read->records, 0u);
  EXPECT_TRUE(read->torn_tail);
}

TEST(WalSegmentTest, BitFlipIsCorruptionNotTornTail) {
  const std::string dir = FreshDir("wal_bitflip");
  const std::string path = dir + "/wal-00000001.log";
  ASSERT_TRUE(WriteSegment(path, 1, 77, SampleRecords(3)).ok());
  std::string data = ReadAll(path);
  // Flip one byte inside the middle record's payload (all three framed
  // records have identical size).
  const size_t framed = (data.size() - persist::kWalHeaderSize) / 3;
  const size_t offset =
      persist::kWalHeaderSize + framed + persist::kWalFrameHeaderSize + 2;
  data[offset] = static_cast<char>(data[offset] ^ 0x40);
  WriteAll(path, data);

  size_t seen = 0;
  auto read = ReadWalSegment(path, 1, 77, [&](const WalRecord&) {
    ++seen;
    return Status::OK();
  });
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorruption);
  EXPECT_NE(read.status().message().find("crc"), std::string::npos);
  EXPECT_EQ(seen, 1u);  // the record before the damage already applied
}

class CheckpointCodecTest
    : public ::testing::TestWithParam<nepal::testing::BackendKind> {};

TEST_P(CheckpointCodecTest, ImageRoundTripsAndRejectsDamage) {
  auto net = nepal::testing::MakeTinyNetwork(GetParam());
  auto& db = *net.db;
  // Add some history so chains have closed versions.
  ASSERT_TRUE(db.SetTime(db.Now() + 1000).ok());
  ASSERT_TRUE(
      db.UpdateElement(net.vm1, {{"status", Value("migrating")}}).ok());
  ASSERT_TRUE(db.RemoveElement(net.rt1).ok());

  const uint64_t fp = persist::SchemaFingerprint(db.schema());
  std::string image;
  {
    std::shared_lock<std::shared_mutex> lock(db.mutex());
    image = persist::EncodeCheckpointLocked(db, fp, /*wal_seq=*/3);
  }
  const std::string dir = FreshDir("ckpt_codec");
  const std::string path = dir + "/checkpoint-00000003.ckp";
  ASSERT_TRUE(
      persist::WriteFileAtomic(dir, "checkpoint-00000003.ckp", image).ok());

  auto loaded = persist::LoadCheckpoint(path, db.schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->fingerprint, fp);
  EXPECT_EQ(loaded->wal_seq, 3u);
  EXPECT_EQ(loaded->now, db.Now());
  // Every element ever inserted appears (rt1's chain is fully closed but
  // still present; its cascade-removed edges too): 16 nodes + 27 edges.
  EXPECT_EQ(loaded->chains.size(), 43u);

  // Any single-byte flip must be caught by the CRC.
  std::string damaged = image;
  damaged[image.size() / 2] =
      static_cast<char>(damaged[image.size() / 2] ^ 0x01);
  WriteAll(path, damaged);
  auto bad = persist::LoadCheckpoint(path, db.schema());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);

  // Truncation as well.
  WriteAll(path, image.substr(0, image.size() - 5));
  bad = persist::LoadCheckpoint(path, db.schema());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, CheckpointCodecTest,
    ::testing::Values(nepal::testing::BackendKind::kGraphStore,
                      nepal::testing::BackendKind::kRelational),
    [](const auto& info) { return nepal::testing::BackendName(info.param); });

class StatsCodecTest
    : public ::testing::TestWithParam<nepal::testing::BackendKind> {};

TEST_P(StatsCodecTest, SnapshotRoundTripsExactly) {
  auto net = nepal::testing::MakeTinyNetwork(GetParam());
  auto& db = *net.db;
  ASSERT_TRUE(db.SetTime(db.Now() + 500).ok());
  ASSERT_TRUE(db.UpdateElement(net.vm2, {{"status", Value("off")}}).ok());
  ASSERT_TRUE(db.RemoveElement(net.sw2).ok());

  const stats::GraphStats& live = db.backend().stats();
  std::string blob;
  live.SerializeTo(&blob);
  auto restored = stats::GraphStats::DeserializeFrom(&db.schema(), blob);
  ASSERT_TRUE(restored.ok()) << restored.status();

  // Exactness check: re-serializing the restored stats reproduces the blob
  // byte for byte (the codec sorts unordered state deterministically).
  std::string blob2;
  restored->SerializeTo(&blob2);
  EXPECT_EQ(blob, blob2);

  auto damaged = stats::GraphStats::DeserializeFrom(
      &db.schema(), std::string_view(blob.data(), blob.size() - 1));
  EXPECT_FALSE(damaged.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Backends, StatsCodecTest,
    ::testing::Values(nepal::testing::BackendKind::kGraphStore,
                      nepal::testing::BackendKind::kRelational),
    [](const auto& info) { return nepal::testing::BackendName(info.param); });

}  // namespace
}  // namespace nepal
