// Materialized pathway views (src/views): initial build and serving,
// byte-identity of served rows against cold evaluation pinned to the same
// commit epoch (both backends, parallelism 1 and N, under live concurrent
// ingest), incremental repair — not rebuild — for ordinary writes,
// footprint-based skipping of irrelevant writes, SetTime rebuild fallback,
// AsOf views, engine routing (plain MATCHES, named view, SERVE VIEW) and
// the EXPLAIN ServeView plan line.

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nepal/engine.h"
#include "nepal/executor.h"
#include "nepal/snapshot.h"
#include "obs/metrics.h"
#include "persist/durable_store.h"
#include "tests/testutil.h"
#include "views/view_catalog.h"

namespace nepal {
namespace {

namespace fs = std::filesystem;
using nepal::testing::BackendKind;
using persist::DurableOptions;
using persist::DurableStore;
using storage::PathSet;
using storage::PathState;
using storage::TimeView;
using views::ViewCatalog;
using views::ViewInfo;

constexpr const char* kHotRpe = "VNF()->[Vertical()]{1,6}->Host()";
constexpr const char* kHotQuery =
    "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()";

std::string FreshDir(const std::string& name) {
  std::string unique = "nepal_views_" + name;
  const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    unique += "_";
    unique += info->name();
    for (char& c : unique) {
      if (c == '/') c = '_';
    }
  }
  fs::path dir = fs::path(::testing::TempDir()) / unique;
  fs::remove_all(dir);
  return dir.string();
}

Result<std::unique_ptr<DurableStore>> OpenStore(const std::string& dir,
                                                BackendKind kind) {
  DurableOptions options;
  options.fsync_policy = persist::FsyncPolicy::kNone;
  return DurableStore::Open(
      dir, nepal::testing::Figure3Schema(),
      [kind](schema::SchemaPtr s) {
        return nepal::testing::MakeBackend(kind, std::move(s));
      },
      options);
}

struct Net {
  Uid vnf1, vnf2, vfc1, vfc2, vm1, vm2, host1, host2, sw1;
};

/// vnf1(DNS)->vfc1->vm1->host1, vnf2(Firewall)->vfc2->vm2->host2, plus a
/// switch between the hosts — two VNF-to-Host pathway chains for kHotRpe.
Net Populate(storage::GraphDb* db) {
  Net net;
  auto node = [&](const char* cls, const char* name) {
    auto r = db->AddNode(cls, {{"name", Value(name)}});
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : 0;
  };
  auto edge = [&](const char* cls, Uid s, Uid t) {
    auto r = db->AddEdge(cls, s, t, {});
    EXPECT_TRUE(r.ok()) << r.status();
  };
  net.vnf1 = node("DNS", "vnf1");
  net.vnf2 = node("Firewall", "vnf2");
  net.vfc1 = node("VFC", "vfc1");
  net.vfc2 = node("VFC", "vfc2");
  net.vm1 = node("VMWare", "vm1");
  net.vm2 = node("OnMetal", "vm2");
  net.host1 = node("Host", "host1");
  net.host2 = node("Host", "host2");
  net.sw1 = node("Switch", "sw1");
  edge("composed_of", net.vnf1, net.vfc1);
  edge("composed_of", net.vnf2, net.vfc2);
  edge("hosted_on", net.vfc1, net.vm1);
  edge("hosted_on", net.vfc2, net.vm2);
  edge("OnServer", net.vm1, net.host1);
  edge("OnServer", net.vm2, net.host2);
  edge("Connects", net.host1, net.sw1);
  edge("Connects", net.sw1, net.host2);
  return net;
}

/// One line per path: uids, class names and validity — the byte-identity
/// comparison key.
std::vector<std::string> RenderPaths(const PathSet& paths) {
  std::vector<std::string> out;
  out.reserve(paths.size());
  for (const PathState& s : paths) {
    std::string line;
    for (size_t i = 0; i < s.uids.size(); ++i) {
      if (i > 0) line += "->";
      line += s.concepts[i]->name() + "#" + std::to_string(s.uids[i]);
    }
    line += " @" + s.valid.ToString();
    out.push_back(std::move(line));
  }
  return out;
}

std::vector<std::string> SortedRows(const nql::QueryResult& result) {
  std::vector<std::string> out;
  for (const auto& row : result.rows) {
    out.push_back(row.paths[0].ToString() + " " + row.valid.ToString());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Cold evaluation of `rpe_text` pinned to `epoch`, canonicalized — the
/// oracle every served snapshot must equal byte for byte.
PathSet ColdAtEpoch(storage::GraphDb* db, const std::string& rpe_text,
                    uint64_t epoch, int parallelism,
                    std::optional<Timestamp> as_of = std::nullopt) {
  auto rpe = nql::ParseRpe(rpe_text);
  EXPECT_TRUE(rpe.ok()) << rpe.status();
  nql::RpeNode resolved = nql::Normalize(*std::move(rpe));
  nql::PlanOptions options;
  options.parallelism = parallelism;
  EXPECT_TRUE(
      nql::ResolveRpe(db->schema(), options.max_repetition, &resolved).ok());
  nql::LockedBackend backend(db);
  auto exec = backend.CreateExecutor();
  TimeView view =
      (as_of ? TimeView::AsOf(*as_of) : TimeView::Current()).WithEpoch(epoch);
  auto paths = nql::EvaluateMatch(*exec, backend, resolved, view, options);
  EXPECT_TRUE(paths.ok()) << paths.status();
  PathSet out = paths.ok() ? *std::move(paths) : PathSet{};
  storage::CanonicalizePaths(&out);
  return out;
}

uint64_t ServedCount() {
  return obs::MetricsRegistry::Global().GetCounter("nepal.views.served")
      ->Value();
}

ViewInfo InfoOf(const ViewCatalog& catalog, const std::string& name) {
  for (const ViewInfo& info : catalog.List()) {
    if (info.name == name) return info;
  }
  ADD_FAILURE() << "view " << name << " not listed";
  return {};
}

TEST(ViewsTest, ServedQueryIsByteIdenticalToColdEvaluation) {
  for (auto kind : {BackendKind::kGraphStore, BackendKind::kRelational}) {
    SCOPED_TRACE(nepal::testing::BackendName(kind));
    auto store = OpenStore(FreshDir(nepal::testing::BackendName(kind)), kind);
    ASSERT_TRUE(store.ok()) << store.status();
    storage::GraphDb* db = &(*store)->db();
    Populate(db);
    auto catalog = ViewCatalog::Open(store->get());
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    ASSERT_TRUE(
        (*catalog)->CreateView("hot", *nql::ParseRpe(kHotRpe)).ok());

    nql::EngineOptions options;
    options.plan.parallelism = 4;
    nql::QueryEngine served_engine(db, options);
    served_engine.set_view_provider(catalog->get());
    nql::QueryEngine cold_engine(db, options);

    // Plain MATCHES query routed through Match(): identical rows, and the
    // served counter proves the cache answered it.
    const uint64_t before = ServedCount();
    auto served = served_engine.Run(kHotQuery);
    auto cold = cold_engine.Run(kHotQuery);
    ASSERT_TRUE(served.ok()) << served.status();
    ASSERT_TRUE(cold.ok()) << cold.status();
    EXPECT_FALSE(served->rows.empty());
    EXPECT_EQ(SortedRows(*served), SortedRows(*cold));
    EXPECT_EQ(ServedCount(), before + 1);

    // Named-view routing and the SERVE VIEW shorthand return the same rows.
    auto named = served_engine.Run("Retrieve P From hot P");
    ASSERT_TRUE(named.ok()) << named.status();
    EXPECT_EQ(SortedRows(*named), SortedRows(*cold));
    auto serve = served_engine.Run("SERVE VIEW hot");
    ASSERT_TRUE(serve.ok()) << serve.status();
    EXPECT_EQ(SortedRows(*serve), SortedRows(*cold));

    // EXPLAIN on a served query prints the one-line ServeView plan.
    auto plan = served_engine.Run(std::string("EXPLAIN ") + kHotQuery);
    ASSERT_TRUE(plan.ok()) << plan.status();
    EXPECT_NE(plan->explain_text.find("ServeView(hot, epoch="),
              std::string::npos)
        << plan->explain_text;

    // Explain() on the SERVE VIEW shorthand prints the same served plan
    // (there is no cold plan to trace for a provider-named view).
    auto serve_plan = served_engine.Explain("SERVE VIEW hot");
    ASSERT_TRUE(serve_plan.ok()) << serve_plan.status();
    EXPECT_NE(serve_plan->find("ServeView(hot, epoch="), std::string::npos)
        << *serve_plan;

    // The raw snapshot equals canonicalized cold evaluation at the same
    // epoch byte for byte — order included.
    auto sv = (*catalog)->Serve("hot");
    ASSERT_TRUE(sv.has_value());
    EXPECT_EQ(RenderPaths(*sv->paths),
              RenderPaths(ColdAtEpoch(db, kHotRpe, sv->epoch, 1)));

    // EXPLAIN VERBOSE keeps the serial trace and must not serve.
    auto verbose =
        served_engine.Run(std::string("EXPLAIN VERBOSE ") + kHotQuery);
    ASSERT_TRUE(verbose.ok()) << verbose.status();
    EXPECT_EQ(verbose->explain_text.find("ServeView"), std::string::npos);
  }
}

TEST(ViewsTest, OrdinaryWritesRepairIncrementally) {
  for (auto kind : {BackendKind::kGraphStore, BackendKind::kRelational}) {
    SCOPED_TRACE(nepal::testing::BackendName(kind));
    auto store = OpenStore(FreshDir(nepal::testing::BackendName(kind)), kind);
    ASSERT_TRUE(store.ok()) << store.status();
    storage::GraphDb* db = &(*store)->db();
    Net net = Populate(db);
    auto catalog = ViewCatalog::Open(store->get());
    ASSERT_TRUE(catalog.ok()) << catalog.status();
    ASSERT_TRUE(
        (*catalog)->CreateView("hot", *nql::ParseRpe(kHotRpe)).ok());
    ASSERT_EQ(InfoOf(**catalog, "hot").rebuilds, 1u);  // the initial build

    // The four ordinary write kinds: every one must be absorbed by
    // incremental repair, never a rebuild.
    Uid vfc = *db->AddNode("VFC", {{"name", Value("vfc-new")}});
    ASSERT_TRUE(db->AddEdge("composed_of", net.vnf1, vfc, {}).ok());
    ASSERT_TRUE(db->AddEdge("hosted_on", vfc, net.vm2, {}).ok());
    ASSERT_TRUE(
        db->UpdateElement(net.host1, {{"serial", Value("sn-1")}}).ok());
    Uid vfc2 = *db->AddNode("VFC", {{"name", Value("vfc-gone")}});
    ASSERT_TRUE(db->AddEdge("composed_of", net.vnf2, vfc2, {}).ok());
    ASSERT_TRUE(db->RemoveElement(vfc2).ok());  // cascades onto the edge

    ASSERT_TRUE((*catalog)
                    ->WaitUntilFresh("hot", db->commit_epoch(),
                                     std::chrono::milliseconds(30000))
                    .ok());
    ViewInfo info = InfoOf(**catalog, "hot");
    EXPECT_EQ(info.rebuilds, 1u) << "ordinary writes must not rebuild";
    EXPECT_GT(info.repairs, 0u);
    EXPECT_EQ(info.staleness, 0u);

    auto sv = (*catalog)->Serve("hot");
    ASSERT_TRUE(sv.has_value());
    EXPECT_EQ(RenderPaths(*sv->paths),
              RenderPaths(ColdAtEpoch(db, kHotRpe, sv->epoch, 1)));
  }
}

TEST(ViewsTest, IrrelevantWritesAreSkippedButAdvanceFreshness) {
  auto store = OpenStore(FreshDir("skip"), BackendKind::kGraphStore);
  ASSERT_TRUE(store.ok()) << store.status();
  storage::GraphDb* db = &(*store)->db();
  Net net = Populate(db);
  auto catalog = ViewCatalog::Open(store->get());
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  // Fully explicit node-edge-node expression: no implicit elements, so the
  // footprint is exactly {VNF, composed_of, VFC}.
  ASSERT_TRUE(
      (*catalog)
          ->CreateView("comp", *nql::ParseRpe("VNF()->composed_of()->VFC()"))
          .ok());

  // Switch/Connects churn is outside the footprint: freshness must advance
  // without a single repair or rebuild beyond the initial build.
  Uid sw = *db->AddNode("Switch", {{"name", Value("sw-extra")}});
  ASSERT_TRUE(db->AddEdge("Connects", net.host2, sw, {}).ok());
  ASSERT_TRUE(db->AddEdge("Connects", sw, net.host1, {}).ok());
  ASSERT_TRUE((*catalog)
                  ->WaitUntilFresh("comp", db->commit_epoch(),
                                   std::chrono::milliseconds(30000))
                  .ok());
  ViewInfo info = InfoOf(**catalog, "comp");
  EXPECT_EQ(info.repairs, 0u);
  EXPECT_EQ(info.rebuilds, 1u);
  EXPECT_GT(info.skipped_records, 0u);
  EXPECT_EQ(info.staleness, 0u);

  auto sv = (*catalog)->Serve("comp");
  ASSERT_TRUE(sv.has_value());
  EXPECT_EQ(
      RenderPaths(*sv->paths),
      RenderPaths(ColdAtEpoch(db, "VNF()->composed_of()->VFC()", sv->epoch,
                              1)));
}

TEST(ViewsTest, SetTimeForcesRebuild) {
  auto store = OpenStore(FreshDir("settime"), BackendKind::kGraphStore);
  ASSERT_TRUE(store.ok()) << store.status();
  storage::GraphDb* db = &(*store)->db();
  Populate(db);
  auto catalog = ViewCatalog::Open(store->get());
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  ASSERT_TRUE((*catalog)->CreateView("hot", *nql::ParseRpe(kHotRpe)).ok());
  ASSERT_EQ(InfoOf(**catalog, "hot").rebuilds, 1u);

  // A bare SetTime() does not advance the commit epoch; an epoch-bumping
  // commit that moves the clock is what invalidates incremental repair.
  std::vector<storage::Mutation> batch;
  batch.push_back(storage::Mutation::SetTime(db->Now() + 3600 * 1000000LL));
  ASSERT_TRUE(db->ApplyBatch(batch).ok());
  ASSERT_TRUE((*catalog)
                  ->WaitUntilFresh("hot", db->commit_epoch(),
                                   std::chrono::milliseconds(30000))
                  .ok());
  EXPECT_EQ(InfoOf(**catalog, "hot").rebuilds, 2u);
}

TEST(ViewsTest, ByteIdentityUnderLiveConcurrentIngest) {
  for (auto kind : {BackendKind::kGraphStore, BackendKind::kRelational}) {
    for (int parallelism : {1, 4}) {
      SCOPED_TRACE(nepal::testing::BackendName(kind) + "/p" +
                   std::to_string(parallelism));
      auto store = OpenStore(
          FreshDir(nepal::testing::BackendName(kind) + "_p" +
                   std::to_string(parallelism)),
          kind);
      ASSERT_TRUE(store.ok()) << store.status();
      storage::GraphDb* db = &(*store)->db();
      Net net = Populate(db);
      // Victim chains born at t0: the writer updates / removes these at t1.
      // Mutating an element at the same transaction instant it was created
      // collapses its version to "never existed", which an epoch-pinned
      // snapshot cannot reproduce (the snapshot_reads caveat) — so every
      // mutated element must predate the clock step below.
      std::vector<Uid> victims;
      for (int v = 0; v < 12; ++v) {
        Uid vfc = *db->AddNode(
            "VFC", {{"name", Value("victim" + std::to_string(v))}});
        ASSERT_TRUE(db->AddEdge("composed_of", net.vnf1, vfc, {}).ok());
        ASSERT_TRUE(db->AddEdge("hosted_on", vfc, net.vm1, {}).ok());
        victims.push_back(vfc);
      }
      ASSERT_TRUE(db->SetTime(db->Now() + 1000000).ok());  // t1 = t0 + 1s

      auto catalog = ViewCatalog::Open(store->get());
      ASSERT_TRUE(catalog.ok()) << catalog.status();
      ASSERT_TRUE(
          (*catalog)->CreateView("hot", *nql::ParseRpe(kHotRpe)).ok());

      // A saturating writer mixing all four ordinary write kinds, single-op
      // and batched commits: adds fresh chains, removes the first half of
      // the victims, renames the second half.
      std::atomic<bool> done{false};
      std::thread writer([&] {
        int round = 0;
        // Bounded: unthrottled growth makes the cold-evaluation oracle
        // quadratically slower (and TSan runs 10x slower still).
        while (!done.load(std::memory_order_acquire) && round < 120) {
          ++round;
          if (round % 2 == 0) {
            Uid vfc = *db->AddNode(
                "VFC", {{"name", Value("w" + std::to_string(round))}});
            (void)db->AddEdge("composed_of", net.vnf1, vfc, {});
            (void)db->AddEdge("hosted_on", vfc, net.vm1, {});
          } else {
            std::vector<storage::Mutation> batch;
            batch.push_back(storage::Mutation::AddNode(
                "VFC", {{"name", Value("b" + std::to_string(round))}}));
            ASSERT_TRUE(db->ApplyBatch(batch).ok());
            std::vector<storage::Mutation> wire;
            wire.push_back(storage::Mutation::AddEdge(
                "composed_of", net.vnf2, batch[0].uid, {}));
            wire.push_back(storage::Mutation::AddEdge(
                "hosted_on", batch[0].uid, net.vm2, {}));
            ASSERT_TRUE(db->ApplyBatch(wire).ok());
          }
          const size_t idx = static_cast<size_t>(round - 1);
          if (idx < 6) {
            ASSERT_TRUE(db->RemoveElement(victims[idx]).ok());  // cascades
          } else if (idx < victims.size()) {
            ASSERT_TRUE(db->UpdateElement(
                            victims[idx],
                            {{"name", Value("renamed" + std::to_string(idx))}})
                            .ok());
          }
        }
      });

      // Every served snapshot must equal cold evaluation pinned to its
      // freshness epoch — byte for byte, while the writer keeps committing.
      for (int i = 0; i < 25; ++i) {
        auto sv = (*catalog)->Serve("hot");
        ASSERT_TRUE(sv.has_value());
        EXPECT_EQ(RenderPaths(*sv->paths),
                  RenderPaths(ColdAtEpoch(db, kHotRpe, sv->epoch,
                                          parallelism)))
            << "iteration " << i << " epoch " << sv->epoch;
      }
      done.store(true, std::memory_order_release);
      writer.join();

      // Quiesced: the view catches up to the last commit and still agrees.
      ASSERT_TRUE((*catalog)
                      ->WaitUntilFresh("hot", db->commit_epoch(),
                                       std::chrono::milliseconds(30000))
                      .ok());
      auto sv = (*catalog)->Serve("hot");
      ASSERT_TRUE(sv.has_value());
      EXPECT_EQ(sv->epoch, db->commit_epoch());
      EXPECT_EQ(
          RenderPaths(*sv->paths),
          RenderPaths(ColdAtEpoch(db, kHotRpe, sv->epoch, parallelism)));
      EXPECT_EQ(InfoOf(**catalog, "hot").rebuilds, 1u);
    }
  }
}

TEST(ViewsTest, AsOfViewServesHistoricalSlice) {
  auto store = OpenStore(FreshDir("asof"), BackendKind::kGraphStore);
  ASSERT_TRUE(store.ok()) << store.status();
  storage::GraphDb* db = &(*store)->db();
  const Timestamp t0 = db->Now();
  Net net = Populate(db);
  const Timestamp t1 = t0 + 3600 * 1000000LL;
  ASSERT_TRUE(db->SetTime(t1).ok());
  Uid vfc = *db->AddNode("VFC", {{"name", Value("late")}});
  ASSERT_TRUE(db->AddEdge("composed_of", net.vnf1, vfc, {}).ok());
  ASSERT_TRUE(db->AddEdge("hosted_on", vfc, net.vm2, {}).ok());

  auto catalog = ViewCatalog::Open(store->get());
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  ASSERT_TRUE(
      (*catalog)->CreateView("past", *nql::ParseRpe(kHotRpe), t0).ok());

  // Mutations after registration maintain the historical slice too (a
  // removal patches cached rows' validity intervals).
  ASSERT_TRUE(db->RemoveElement(net.vm1).ok());
  ASSERT_TRUE((*catalog)
                  ->WaitUntilFresh("past", db->commit_epoch(),
                                   std::chrono::milliseconds(30000))
                  .ok());
  auto sv = (*catalog)->Serve("past");
  ASSERT_TRUE(sv.has_value());
  ASSERT_TRUE(sv->as_of.has_value());
  EXPECT_EQ(*sv->as_of, t0);
  EXPECT_EQ(RenderPaths(*sv->paths),
            RenderPaths(ColdAtEpoch(db, kHotRpe, sv->epoch, 1, t0)));

  // Engine routing honors the AT clause: same temporal mode serves, a
  // different one evaluates cold.
  nql::QueryEngine engine(db);
  engine.set_view_provider(catalog->get());
  const uint64_t before = ServedCount();
  auto served = engine.Run("AT '" + FormatTimestamp(t0) + "' " + kHotQuery);
  ASSERT_TRUE(served.ok()) << served.status();
  EXPECT_EQ(ServedCount(), before + 1);
  auto cold = engine.Run("AT '" + FormatTimestamp(t1) + "' " + kHotQuery);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(ServedCount(), before + 1) << "different AT must not serve";
}

TEST(ViewsTest, CatalogLifecycleAndEngineDdlRouting) {
  auto store = OpenStore(FreshDir("lifecycle"), BackendKind::kGraphStore);
  ASSERT_TRUE(store.ok()) << store.status();
  storage::GraphDb* db = &(*store)->db();
  Populate(db);
  auto catalog = ViewCatalog::Open(store->get());
  ASSERT_TRUE(catalog.ok()) << catalog.status();
  ASSERT_TRUE((*catalog)->CreateView("hot", *nql::ParseRpe(kHotRpe)).ok());
  EXPECT_EQ((*catalog)->CreateView("hot", *nql::ParseRpe(kHotRpe)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ((*catalog)->DropView("nosuch").code(), StatusCode::kNotFound);

  nql::QueryEngine engine(db);
  engine.set_view_provider(catalog->get());
  // CREATE/DROP are catalog operations; the engine rejects them.
  EXPECT_EQ(
      engine.Run("CREATE VIEW x AS VNF()->VFC()").status().code(),
      StatusCode::kUnsupported);
  EXPECT_FALSE(engine.Run("SERVE VIEW nosuch").ok());
  ASSERT_TRUE(engine.Run("SERVE VIEW hot").ok());

  ASSERT_TRUE((*catalog)->DropView("hot").ok());
  EXPECT_FALSE((*catalog)->Serve("hot").has_value());
  EXPECT_FALSE(engine.Run("SERVE VIEW hot").ok());
}

}  // namespace
}  // namespace nepal
