// Replication microbenchmarks (the src/replication subsystem):
//
//   - end-to-end ship+apply throughput under each primary fsync policy:
//     MB/s of WAL frames shipped and records/s applied at the follower,
//   - steady-state replication lag: the round-trip from a primary commit
//     to that commit being visible at the follower, in milliseconds.
//
// The follower runs over the in-process transport, so the numbers bound
// the pipeline itself (encode → publish → apply through the public
// GraphDb API) without socket noise.
//
// Scale knob: NEPAL_BENCH_REPLICATION_ELEMENTS (default 2000 elements).
// Results land in BENCH_replication_throughput.json as counter records.

#include <chrono>
#include <filesystem>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "obs/metrics.h"
#include "persist/durable_store.h"
#include "replication/replica_store.h"
#include "replication/transport.h"
#include "schema/dsl_parser.h"

namespace nepal::bench {
namespace {

namespace fs = std::filesystem;

schema::SchemaPtr ReplicationSchema() {
  static schema::SchemaPtr schema = [] {
    auto s = schema::ParseSchemaDsl(R"(
      node Host : Node { serial: string; }
      node VM : Node { status: string; }
      edge OnServer : Edge {}
      allow OnServer (VM -> Host);
    )");
    if (!s.ok()) std::abort();
    return *s;
  }();
  return schema;
}

int NumElements() {
  return EnvInt("NEPAL_BENCH_REPLICATION_ELEMENTS", 2000);
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("nepal_bench_repl_" + name);
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory() {
  return [](schema::SchemaPtr s)
             -> std::unique_ptr<storage::StorageBackend> {
    return std::make_unique<graphstore::GraphStore>(std::move(s));
  };
}

/// Hosts, VMs and placements — every write one shipped WAL record.
void Ingest(storage::GraphDb& db, int elements) {
  std::vector<Uid> hosts;
  for (int i = 0; i < elements; ++i) {
    if (i % 3 == 0 || hosts.empty()) {
      hosts.push_back(*db.AddNode(
          "Host", {{"name", Value("h" + std::to_string(i))},
                   {"serial", Value("sn" + std::to_string(i))}}));
    } else {
      Uid vm = *db.AddNode("VM", {{"name", Value("vm" + std::to_string(i))},
                                  {"status", Value("up")}});
      if (!db.AddEdge("OnServer", vm, hosts.back(), {}).ok()) std::abort();
    }
  }
}

bool WaitForCatchUp(const persist::DurableStore& primary,
                    const replication::ReplicaStore& follower) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (follower.records_applied() < primary.records_appended()) {
    if (!follower.status().ok() ||
        std::chrono::steady_clock::now() > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

// ---- Ship + apply throughput per fsync policy ----

void BM_ShipApply(benchmark::State& state) {
  const auto policy = static_cast<persist::FsyncPolicy>(state.range(0));
  const int elements = NumElements();
  persist::DurableOptions options;
  options.fsync_policy = policy;
  auto* shipped_bytes = obs::MetricsRegistry::Global().GetCounter(
      "nepal.replication.shipped_bytes");

  uint64_t records = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string pdir = FreshDir("ship_p");
    const std::string fdir = FreshDir("ship_f");
    auto primary = persist::DurableStore::Open(pdir, ReplicationSchema(),
                                               Factory(), options);
    if (!primary.ok()) {
      state.SkipWithError(primary.status().ToString().c_str());
      return;
    }
    auto transport = replication::InProcessTransport::Connect(**primary);
    if (!transport.ok()) {
      state.SkipWithError(transport.status().ToString().c_str());
      return;
    }
    auto follower = replication::ReplicaStore::Open(
        fdir, ReplicationSchema(), Factory(), std::move(*transport));
    if (!follower.ok()) {
      state.SkipWithError(follower.status().ToString().c_str());
      return;
    }
    const uint64_t bytes_before = shipped_bytes->Value();
    state.ResumeTiming();

    const auto t0 = std::chrono::steady_clock::now();
    Ingest((*primary)->db(), elements);
    if (!WaitForCatchUp(**primary, **follower)) {
      state.SkipWithError("follower never caught up");
      return;
    }
    seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    records += (*follower)->records_applied();
    bytes += shipped_bytes->Value() - bytes_before;

    state.PauseTiming();
    follower->reset();
    primary->reset();
    fs::remove_all(pdir);
    fs::remove_all(fdir);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<int64_t>(records));
  const std::string label = std::string("ShipApply/") +
                            persist::FsyncPolicyToString(policy);
  BenchJson::Instance().Counter(label, "elements",
                                static_cast<double>(elements));
  if (seconds > 0) {
    BenchJson::Instance().Counter(label, "ship_mb_per_s",
                                  static_cast<double>(bytes) / 1e6 / seconds);
    BenchJson::Instance().Counter(
        label, "apply_records_per_s",
        static_cast<double>(records) / seconds);
  }
}
BENCHMARK(BM_ShipApply)
    ->Arg(static_cast<int>(persist::FsyncPolicy::kNone))
    ->Arg(static_cast<int>(persist::FsyncPolicy::kInterval))
    ->Arg(static_cast<int>(persist::FsyncPolicy::kAlways))
    ->ArgName("fsync")
    ->Iterations(1);

// ---- Steady-state lag: commit-to-visible round trip ----

void BM_SteadyLag(benchmark::State& state) {
  const std::string pdir = FreshDir("lag_p");
  const std::string fdir = FreshDir("lag_f");
  persist::DurableOptions options;
  options.fsync_policy = persist::FsyncPolicy::kNone;
  auto primary = persist::DurableStore::Open(pdir, ReplicationSchema(),
                                             Factory(), options);
  if (!primary.ok()) {
    state.SkipWithError(primary.status().ToString().c_str());
    return;
  }
  auto transport = replication::InProcessTransport::Connect(**primary);
  if (!transport.ok()) {
    state.SkipWithError(transport.status().ToString().c_str());
    return;
  }
  auto follower = replication::ReplicaStore::Open(
      fdir, ReplicationSchema(), Factory(), std::move(*transport));
  if (!follower.ok()) {
    state.SkipWithError(follower.status().ToString().c_str());
    return;
  }
  // Warm the pipeline so the measurement sees steady state, not bootstrap.
  Ingest((*primary)->db(), 64);
  if (!WaitForCatchUp(**primary, **follower)) {
    state.SkipWithError("follower never caught up");
    return;
  }

  double total_ms = 0;
  uint64_t samples = 0;
  int i = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    if (!(*primary)
             ->db()
             .AddNode("Host", {{"name", Value("lag" + std::to_string(i))},
                               {"serial", Value("ls" + std::to_string(i))}})
             .ok()) {
      state.SkipWithError("append failed");
      return;
    }
    ++i;
    const uint64_t target = (*primary)->records_appended();
    while ((*follower)->records_applied() < target) {
      if (!(*follower)->status().ok()) {
        state.SkipWithError("apply loop failed");
        return;
      }
      std::this_thread::yield();
    }
    total_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    ++samples;
  }
  if (samples > 0) {
    BenchJson::Instance().Counter("SteadyLag", "steady_lag_ms",
                                  total_ms / static_cast<double>(samples));
    BenchJson::Instance().Counter("SteadyLag", "samples",
                                  static_cast<double>(samples));
  }
  follower->reset();
  primary->reset();
  fs::remove_all(pdir);
  fs::remove_all(fdir);
}
BENCHMARK(BM_SteadyLag);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("replication_throughput");
