// Ablation: retargeting — the same queries on both execution backends.
//
// Nepal compiles one operator DAG; the graphstore executes it with
// per-traverser adjacency steps (the Gremlin strategy), the relational
// engine with bulk hash joins over per-class tables (the Postgres
// strategy). Results are identical (asserted by the differential property
// tests); this bench compares their performance profiles on the Table-1
// query mix.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct BackendLoad {
  netmodel::VirtualizedNetwork net;
  std::unique_ptr<nql::QueryEngine> engine;
  InstanceSet topdown, bottomup, vmvm;
};

struct BackendsFixture {
  BackendLoad graphstore, relational;

  static void Build(const netmodel::BackendFactory& factory,
                    BackendLoad* load) {
    netmodel::VirtualizedParams params;
    params.history_days = 0;
    auto built = BuildVirtualizedNetwork(params, factory);
    if (!built.ok()) std::abort();
    load->net = std::move(*built);
    load->engine = std::make_unique<nql::QueryEngine>(load->net.db.get());

    Rng rng(5);
    size_t want = static_cast<size_t>(NumInstances());
    std::vector<std::string> candidates;
    for (Uid vnf : load->net.vnfs) {
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES VNF(id=" +
          std::to_string(vnf) + ")->[Vertical()]{1,6}->Host()");
    }
    load->topdown = SampleNonEmpty(*load->engine, candidates, want);
    candidates.clear();
    for (size_t i = 0; i < load->net.hosts.size(); ++i) {
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host(id=" +
          std::to_string(load->net.hosts[rng.Below(load->net.hosts.size())]) +
          ")");
    }
    load->bottomup = SampleNonEmpty(*load->engine, candidates, want);
    candidates.clear();
    for (int i = 0; i < 400; ++i) {
      const std::string a =
          NameOf(*load->net.db, load->net.vms[rng.Below(load->net.vms.size())]);
      const std::string b =
          NameOf(*load->net.db, load->net.vms[rng.Below(load->net.vms.size())]);
      if (a == b) continue;
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES VM(name='" + a +
          "')->[virtual_connects()]{1,4}->VM(name='" + b + "')");
    }
    load->vmvm = SampleNonEmpty(*load->engine, candidates, want);
  }

  BackendsFixture() {
    Build(GraphStoreFactory(), &graphstore);
    Build(RelationalFactory(), &relational);
  }
};

BackendsFixture& Fixture() {
  static BackendsFixture* fixture = new BackendsFixture();
  return *fixture;
}

void RunInstances(benchmark::State& state, const char* label,
                  const BackendLoad& load, const InstanceSet& set) {
  if (set.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  BenchJson::Instance().Begin(label, load.net.db->backend().name(),
                              set.queries.front());
  size_t i = 0;
  size_t paths = 0;
  for (auto _ : state) {
    paths += MustRun(*load.engine, set.Next(i++));
  }
  state.counters["paths"] =
      static_cast<double>(paths) / static_cast<double>(i);
}

#define BACKEND_BENCH(query)                                        \
  void BM_##query##_GraphStore(benchmark::State& state) {          \
    RunInstances(state, #query "_GraphStore", Fixture().graphstore, \
                 Fixture().graphstore.query);                       \
  }                                                                 \
  BENCHMARK(BM_##query##_GraphStore)->Unit(benchmark::kMillisecond); \
  void BM_##query##_Relational(benchmark::State& state) {          \
    RunInstances(state, #query "_Relational", Fixture().relational, \
                 Fixture().relational.query);                       \
  }                                                                 \
  BENCHMARK(BM_##query##_Relational)->Unit(benchmark::kMillisecond)

BACKEND_BENCH(topdown);
BACKEND_BENCH(bottomup);
BACKEND_BENCH(vmvm);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("ablation_backends");
