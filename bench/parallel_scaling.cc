// Parallel scaling: the same multi-hop RPE workload at parallelism
// 1/2/4/8. The parallelism=1 rows are the exact pre-concurrency serial
// executor; on a multi-core machine the 8-lane rows should come in at
// least 2x faster on the frontier-heavy query types (on a single-core
// machine all rows degenerate to serial and merely measure the sharding
// overhead, which kMinStatesPerShard keeps small).
//
// Query mix (frontier-heavy on purpose):
//   topdown    — VNF()->[Vertical()]{1,6}->Host() with an unconditioned
//                VNF anchor class: hundreds of seed states fan out.
//   fullsweep  — every VNF-to-Host vertical pathway in one query.
//   eastwest   — Host()->[connects()]{1,4}->Host(): the physical-layer
//                neighborhood walk with the widest frontiers.

#include <benchmark/benchmark.h>

#include <map>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct ScalingLoad {
  netmodel::VirtualizedNetwork net;
  /// One engine per parallelism level, all over the same store.
  std::map<int, std::unique_ptr<nql::QueryEngine>> engines;
};

struct ScalingFixture {
  ScalingLoad graphstore, relational;

  static void Build(const netmodel::BackendFactory& factory,
                    ScalingLoad* load) {
    netmodel::VirtualizedParams params;
    params.history_days = 0;
    auto built = BuildVirtualizedNetwork(params, factory);
    if (!built.ok()) std::abort();
    load->net = std::move(*built);
    for (int parallelism : {1, 2, 4, 8}) {
      nql::EngineOptions options;
      options.plan.parallelism = parallelism;
      load->engines[parallelism] =
          std::make_unique<nql::QueryEngine>(load->net.db.get(), options);
    }
  }

  ScalingFixture() {
    Build(GraphStoreFactory(), &graphstore);
    Build(RelationalFactory(), &relational);
  }
};

ScalingFixture& Fixture() {
  static ScalingFixture* fixture = new ScalingFixture();
  return *fixture;
}

const char* QueryFor(const std::string& kind) {
  if (kind == "topdown") {
    return "Retrieve P From PATHS P Where P MATCHES "
           "VNF()->[Vertical()]{1,6}->Host()";
  }
  if (kind == "fullsweep") {
    return "Retrieve P From PATHS P Where P MATCHES "
           "Service()->[Vertical()]{1,7}->Host()";
  }
  return "Retrieve P From PATHS P Where P MATCHES "
         "Host()->[connects()]{1,4}->Host()";
}

void RunScaling(benchmark::State& state, const char* label,
                ScalingLoad& load, const std::string& kind) {
  const int parallelism = static_cast<int>(state.range(0));
  const nql::QueryEngine& engine = *load.engines.at(parallelism);
  const std::string query = QueryFor(kind);
  BenchJson::Instance().Begin(
      std::string(label) + "/lanes:" + std::to_string(parallelism),
      load.net.db->backend().name(), query);
  size_t paths = 0;
  size_t iters = 0;
  for (auto _ : state) {
    paths += MustRun(engine, query);
    ++iters;
  }
  state.counters["paths"] =
      static_cast<double>(paths) / static_cast<double>(iters == 0 ? 1 : iters);
  state.counters["lanes"] = parallelism;
}

#define SCALING_BENCH(kind)                                                 \
  void BM_##kind##_GraphStore(benchmark::State& state) {                    \
    RunScaling(state, #kind "_GraphStore", Fixture().graphstore, #kind);    \
  }                                                                         \
  BENCHMARK(BM_##kind##_GraphStore)                                         \
      ->Arg(1)->Arg(2)->Arg(4)->Arg(8)                                      \
      ->Unit(benchmark::kMillisecond)->UseRealTime();                       \
  void BM_##kind##_Relational(benchmark::State& state) {                    \
    RunScaling(state, #kind "_Relational", Fixture().relational, #kind);    \
  }                                                                         \
  BENCHMARK(BM_##kind##_Relational)                                         \
      ->Arg(1)->Arg(2)->Arg(4)->Arg(8)                                      \
      ->Unit(benchmark::kMillisecond)->UseRealTime()

SCALING_BENCH(topdown);
SCALING_BENCH(fullsweep);
SCALING_BENCH(eastwest);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("parallel_scaling");
