// Ablation: NFA product-automaton evaluation vs unrolled repetition plans.
//
// Bounded repetitions can be compiled either into the planner's unrolled
// Union-of-optionals plan (one nested Union per optional iteration) or
// into a Thompson NFA whose executor advances a frontier of
// (state, node) tuples with per-state memoization. The unrolled plan's
// cost grows with the repetition bound even when the frontier saturates
// early; the automaton pays per *reached* (state, node) pair, so it
// should be no slower at moderate depths and scale strictly better at
// deep ones. Unbounded Kleene-star reachability has no unrolled
// counterpart at all — the automaton is the only plan shape that
// terminates — so it is recorded automaton-only.

#include <map>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct RaFixture {
  netmodel::VirtualizedNetwork net;
  std::unique_ptr<nql::QueryEngine> automaton;
  std::unique_ptr<nql::QueryEngine> unrolled;
  std::map<int, InstanceSet> by_depth;
  InstanceSet star;

  RaFixture() {
    netmodel::VirtualizedParams params;
    params.history_days = 0;
    // Pathways are simple paths, so deep repetitions enumerate every
    // acyclic wander through the switching core. Keep that core small
    // (2 routers + 2 aggs + 3 ToRs) so the depth-12 frontier stays
    // bounded while still being genuinely cyclic.
    params.num_hosts = 24;
    params.num_agg_switches = 2;
    params.num_routers = 2;
    params.num_datacenters = 1;
    params.num_services = 4;
    params.num_vnfs = 8;
    params.vfcs_per_vnf = 4;
    params.num_vnets = 20;
    params.num_vrouters = 6;
    auto built = BuildVirtualizedNetwork(params, RelationalFactory());
    if (!built.ok()) std::abort();
    net = std::move(*built);
    nql::EngineOptions nfa_options;
    nfa_options.plan.loop_strategy = nql::LoopStrategy::kAutomaton;
    automaton = std::make_unique<nql::QueryEngine>(net.db.get(), nfa_options);
    nql::EngineOptions unroll_options;
    unroll_options.plan.loop_strategy = nql::LoopStrategy::kUnroll;
    unrolled = std::make_unique<nql::QueryEngine>(net.db.get(), unroll_options);

    Rng rng(31);
    size_t want = static_cast<size_t>(NumInstances());
    // Both engines run the *same* sampled instance set per depth, so the
    // automaton/unrolled comparison is over identical work.
    for (int depth : {2, 6, 12}) {
      std::vector<std::string> candidates;
      for (int i = 0; i < 120; ++i) {
        const std::string a =
            NameOf(*net.db, net.hosts[rng.Below(net.hosts.size())]);
        const std::string b =
            NameOf(*net.db, net.hosts[rng.Below(net.hosts.size())]);
        if (a == b) continue;
        candidates.push_back(
            "Retrieve P From PATHS P Where P MATCHES Host(name='" + a +
            "')->[connects()]{1," + std::to_string(depth) +
            "}->Host(name='" + b + "')");
      }
      by_depth[depth] = SampleNonEmpty(*automaton, candidates, want);
    }
    {
      // Unbounded reachability: every router reachable from a host over
      // any number of physical links. No unrolled counterpart exists —
      // the automaton's memoized traversal is what makes `*` terminate.
      std::vector<std::string> candidates;
      for (int i = 0; i < 60; ++i) {
        const std::string a =
            NameOf(*net.db, net.hosts[rng.Below(net.hosts.size())]);
        candidates.push_back(
            "Retrieve P From PATHS P Where P MATCHES Host(name='" + a +
            "')->[connects()]*->Router()");
      }
      star = SampleNonEmpty(*automaton, candidates, want);
    }
  }
};

RaFixture& Fixture() {
  static RaFixture* fixture = new RaFixture();
  return *fixture;
}

void RunInstances(benchmark::State& state, const char* label,
                  const nql::QueryEngine& engine, const InstanceSet& set) {
  if (set.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  BenchJson::Instance().Begin(label, Fixture().net.db->backend().name(),
                              set.queries.front());
  size_t i = 0;
  size_t paths = 0;
  for (auto _ : state) {
    paths += MustRun(engine, set.Next(i++));
  }
  state.counters["paths"] =
      static_cast<double>(paths) / static_cast<double>(i);
}

void BM_Depth2_Automaton(benchmark::State& state) {
  RunInstances(state, "Depth2_Automaton", *Fixture().automaton,
               Fixture().by_depth[2]);
}
BENCHMARK(BM_Depth2_Automaton)->Unit(benchmark::kMillisecond);

void BM_Depth2_Unrolled(benchmark::State& state) {
  RunInstances(state, "Depth2_Unrolled", *Fixture().unrolled,
               Fixture().by_depth[2]);
}
BENCHMARK(BM_Depth2_Unrolled)->Unit(benchmark::kMillisecond);

void BM_Depth6_Automaton(benchmark::State& state) {
  RunInstances(state, "Depth6_Automaton", *Fixture().automaton,
               Fixture().by_depth[6]);
}
BENCHMARK(BM_Depth6_Automaton)->Unit(benchmark::kMillisecond);

void BM_Depth6_Unrolled(benchmark::State& state) {
  RunInstances(state, "Depth6_Unrolled", *Fixture().unrolled,
               Fixture().by_depth[6]);
}
BENCHMARK(BM_Depth6_Unrolled)->Unit(benchmark::kMillisecond);

void BM_Depth12_Automaton(benchmark::State& state) {
  RunInstances(state, "Depth12_Automaton", *Fixture().automaton,
               Fixture().by_depth[12]);
}
BENCHMARK(BM_Depth12_Automaton)->Unit(benchmark::kMillisecond);

void BM_Depth12_Unrolled(benchmark::State& state) {
  RunInstances(state, "Depth12_Unrolled", *Fixture().unrolled,
               Fixture().by_depth[12]);
}
BENCHMARK(BM_Depth12_Unrolled)->Unit(benchmark::kMillisecond);

void BM_StarReachability_Automaton(benchmark::State& state) {
  RunInstances(state, "StarReachability_Automaton", *Fixture().automaton,
               Fixture().star);
}
BENCHMARK(BM_StarReachability_Automaton)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("rpe_automaton");
