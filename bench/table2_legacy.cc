// Table 2 — query response times on the legacy topology (single-class
// load: one node class, one edge class, type_indicator predicates).
//
//   Service path  port(name=head) -> [service_hop]{1,4} -> port()
//   Reverse path  port() -> [service_hop]{1,4} -> port(name=egress)
//   Top-down      card(name=X) -> [contains]{1,3} -> port()
//   Bottom-up     device() -> [contains]{1,3} -> port(name=Y)
//
// The bottom-up instance mix includes ports on monitoring-flooded hub
// devices, reproducing the paper's bimodal latencies (34 fast / 16 slow of
// 50 samples). Scale with NEPAL_BENCH_LEGACY_DEVICES (default 1000; the
// paper's 1.6M-node data set corresponds to ~11000).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct Table2Fixture {
  netmodel::LegacyNetwork net;
  std::unique_ptr<nql::QueryEngine> engine;
  InstanceSet service_path, reverse_path, topdown, bottomup;

  explicit Table2Fixture(bool subclassed) {
    netmodel::LegacyParams params;
    params.num_devices = EnvInt("NEPAL_BENCH_LEGACY_DEVICES", 1000);
    params.subclassed = subclassed;
    auto built = BuildLegacyNetwork(params, RelationalFactory());
    if (!built.ok()) {
      std::fprintf(stderr, "table2 setup: %s\n",
                   built.status().ToString().c_str());
      std::abort();
    }
    net = std::move(*built);
    engine = std::make_unique<nql::QueryEngine>(net.db.get());
    std::fprintf(stderr,
                 "[legacy %s] %zu nodes, %zu edges, history +%.1f%% "
                 "versions\n",
                 subclassed ? "subclassed" : "single-class",
                 net.db->node_count(), net.db->edge_count(),
                 100.0 *
                     static_cast<double>(net.final_version_count -
                                         net.initial_version_count) /
                     static_cast<double>(net.initial_version_count));

    size_t want = static_cast<size_t>(NumInstances());
    Rng rng(31337);
    const std::string hop = net.EdgeAtom("service_hop");
    const std::string contains = net.EdgeAtom("contains");

    // Forward service paths, anchored at chain heads.
    std::vector<std::string> candidates;
    for (Uid head : net.chain_heads) {
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES legacy_node(name='" +
          NameOf(*net.db, head) + "')->[" + hop +
          "]{1,4}->legacy_node(type_indicator='port')");
    }
    service_path = SampleNonEmpty(*engine, candidates, want);

    // Reverse service paths, anchored at the egress ports. These return
    // hundreds of thousands of paths; a few instances characterize them.
    candidates.clear();
    for (Uid egress : net.egress_ports) {
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES "
          "legacy_node(type_indicator='port')->[" +
          hop + "]{1,4}->legacy_node(name='" + NameOf(*net.db, egress) + "')");
    }
    reverse_path.queries = candidates;  // sampling would pre-run 3s queries

    // Top-down: from a card through the containment hierarchy.
    candidates.clear();
    for (size_t i = 0; i < 4 * want; ++i) {
      Uid dev = net.devices[rng.Below(net.devices.size())];
      std::string card = NameOf(*net.db, dev) + "-sh" +
                         std::to_string(rng.Below(2)) + "-c" +
                         std::to_string(rng.Below(4));
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES legacy_node(name='" +
          card + "', type_indicator='card')->[" + contains +
          "]{1,3}->legacy_node(type_indicator='port')");
    }
    topdown = SampleNonEmpty(*engine, candidates, want);

    // Bottom-up: anchored at a port, traversing containment backwards.
    // Roughly a third of the instances target hub-device ports (the
    // paper's 16-of-50 slow samples).
    candidates.clear();
    for (size_t i = 0; i < 4 * want; ++i) {
      std::string port;
      if (i % 3 == 0 && !net.hub_devices.empty()) {
        Uid dev = net.hub_devices[rng.Below(net.hub_devices.size())];
        port = NameOf(*net.db, dev) + "-sh0-c0-p" + std::to_string(rng.Below(4));
      } else {
        port = NameOf(*net.db, net.ports[rng.Below(net.ports.size())]);
      }
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES "
          "legacy_node(type_indicator='device')->[" +
          contains + "]{1,3}->legacy_node(name='" + port +
          "', type_indicator='port')");
    }
    bottomup = SampleNonEmpty(*engine, candidates, want);
  }
};

Table2Fixture& Fixture() {
  static Table2Fixture* fixture = new Table2Fixture(/*subclassed=*/false);
  return *fixture;
}

void RunInstances(benchmark::State& state, const char* label,
                  const InstanceSet& set, bool history) {
  Table2Fixture& fx = Fixture();
  if (set.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  BenchJson::Instance().Begin(
      label, fx.net.db->backend().name(),
      history ? OnHistory(set.queries.front(), fx.net.end_time)
              : set.queries.front());
  size_t i = 0;
  size_t paths = 0;
  for (auto _ : state) {
    const std::string& q = set.Next(i++);
    paths += MustRun(*fx.engine,
                     history ? OnHistory(q, fx.net.end_time) : q);
  }
  state.counters["paths"] =
      static_cast<double>(paths) / static_cast<double>(i);
  state.counters["instances"] = static_cast<double>(set.queries.size());
}

#define TABLE2_BENCH(name, member, iters)                        \
  void BM_##name##_Snapshot(benchmark::State& state) {           \
    RunInstances(state, #name "_Snapshot", Fixture().member,     \
                 /*history=*/false);                             \
  }                                                              \
  BENCHMARK(BM_##name##_Snapshot)                                \
      ->Unit(benchmark::kMillisecond)                            \
      ->Iterations(iters);                                       \
  void BM_##name##_History(benchmark::State& state) {            \
    RunInstances(state, #name "_History", Fixture().member,      \
                 /*history=*/true);                              \
  }                                                              \
  BENCHMARK(BM_##name##_History)                                 \
      ->Unit(benchmark::kMillisecond)                            \
      ->Iterations(iters)

TABLE2_BENCH(Table2_ServicePath, service_path, 50);
TABLE2_BENCH(Table2_ReversePath, reverse_path, 4);
TABLE2_BENCH(Table2_TopDown, topdown, 50);
TABLE2_BENCH(Table2_BottomUp, bottomup, 50);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("table2_legacy");
