// Materialized pathway-view serving (the src/views subsystem):
//
//   - served vs cold QPS for the hot pathway query while a saturating
//     writer churns footprint-relevant chains (each churn removes and
//     recreates a VNF->VFC->VM->Host chain's VFC, so the maintenance
//     thread repairs the view continuously),
//   - the incremental-repair latency histogram (nepal.views.repair_ns).
//
// Results land in BENCH_view_serving.json as one counter record per
// backend: served_qps, cold_qps, speedup, repairs, rebuilds and repair
// latency quantiles. The CI bench-smoke step asserts speedup >= 5.
//
// Topology: a few complete VNF->VFC->VM->Host chains (the cached rows the
// writer churns) inside a much larger inventory of idle elements — VNFs
// fanning out into VFC/VM subtrees that never reach a Host, and Hosts
// reachable from VM/VFC subtrees that no VNF composes. Whichever end the
// planner anchors at, cold evaluation chases a combinatorial set of dead
// partial paths each time; the view serves only the finished rows.
//
// Scale knobs:
//   NEPAL_BENCH_VIEW_CHAINS   — complete pathway chains (default 16)
//   NEPAL_BENCH_VIEW_IDLE     — idle VNF dead-ends / idle Hosts
//                               (default 400 each)
//   NEPAL_BENCH_VIEW_QUERIES  — served executions (default 300; cold runs
//                               1/5 of that, it is the slow side)

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "persist/durable_store.h"
#include "schema/dsl_parser.h"
#include "views/view_catalog.h"

namespace nepal::bench {
namespace {

namespace fs = std::filesystem;

constexpr const char* kHotQuery =
    "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()";

schema::SchemaPtr ViewSchema() {
  static schema::SchemaPtr schema = [] {
    auto s = schema::ParseSchemaDsl(R"(
      node VNF : Node {}
      node VFC : Node {}
      node VM : Node {}
      node Host : Node { serial: string; }
      edge Vertical : Edge {}
      edge composed_of : Vertical {}
      edge hosted_on : Vertical {}
      edge OnServer : Vertical {}
      allow composed_of (VNF -> VFC);
      allow hosted_on (VFC -> VM);
      allow OnServer (VM -> Host);
    )");
    if (!s.ok()) std::abort();
    return *s;
  }();
  return schema;
}

int NumChains() { return EnvInt("NEPAL_BENCH_VIEW_CHAINS", 16); }
int NumIdle() { return EnvInt("NEPAL_BENCH_VIEW_IDLE", 400); }
int NumQueries() { return EnvInt("NEPAL_BENCH_VIEW_QUERIES", 300); }

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("nepal_bench_views_" + name);
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory(bool relational) {
  if (relational) {
    return [](schema::SchemaPtr s)
               -> std::unique_ptr<storage::StorageBackend> {
      return std::make_unique<relational::RelationalStore>(std::move(s));
    };
  }
  return
      [](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
        return std::make_unique<graphstore::GraphStore>(std::move(s));
      };
}

struct Chain {
  Uid vnf, vfc, vm, host;
};

/// QPS over `runs` sequential executions (aborts on query failure).
double MeasureQps(const nql::QueryEngine& engine, int runs) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < runs; ++i) MustRun(engine, kHotQuery);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  return seconds > 0 ? runs / seconds : 0;
}

void BM_ViewServing(benchmark::State& state) {
  const bool relational = state.range(0) == 1;
  const std::string backend = relational ? "relational" : "graphstore";
  for (auto _ : state) {
    obs::MetricsRegistry::Global().ResetValuesForTest();
    persist::DurableOptions options;
    options.fsync_policy = persist::FsyncPolicy::kNone;
    auto store = persist::DurableStore::Open(
        FreshDir(backend), ViewSchema(), Factory(relational), options);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    storage::GraphDb& db = (*store)->db();

    std::vector<Chain> chains(static_cast<size_t>(NumChains()));
    for (size_t i = 0; i < chains.size(); ++i) {
      Chain& c = chains[i];
      const std::string n = std::to_string(i);
      c.vnf = *db.AddNode("VNF", {{"name", Value("vnf" + n)}});
      c.vfc = *db.AddNode("VFC", {{"name", Value("vfc" + n)}});
      c.vm = *db.AddNode("VM", {{"name", Value("vm" + n)}});
      c.host = *db.AddNode("Host", {{"name", Value("host" + n)},
                                    {"serial", Value("sn" + n)}});
      if (!db.AddEdge("composed_of", c.vnf, c.vfc, {}).ok() ||
          !db.AddEdge("hosted_on", c.vfc, c.vm, {}).ok() ||
          !db.AddEdge("OnServer", c.vm, c.host, {}).ok()) {
        state.SkipWithError("chain construction failed");
        return;
      }
    }
    for (int i = 0; i < NumIdle(); ++i) {
      const std::string n = "idle" + std::to_string(i);
      Uid vnf = *db.AddNode("VNF", {{"name", Value(n)}});
      for (int f = 0; f < 3; ++f) {
        const std::string fn = n + "c" + std::to_string(f);
        Uid vfc = *db.AddNode("VFC", {{"name", Value(fn)}});
        if (!db.AddEdge("composed_of", vnf, vfc, {}).ok()) {
          state.SkipWithError("idle construction failed");
          return;
        }
        for (int m = 0; m < 3; ++m) {
          Uid vm = *db.AddNode("VM", {{"name", Value(fn + "m" +
                                                     std::to_string(m))}});
          if (!db.AddEdge("hosted_on", vfc, vm, {}).ok()) {
            state.SkipWithError("idle construction failed");
            return;
          }
        }
      }
      // Host-side dead-end: a Host reachable from VMs and VFCs that no VNF
      // composes, so a Host-anchored plan chases partials too.
      Uid host = *db.AddNode("Host", {{"name", Value(n + "h")},
                                      {"serial", Value(n + "sn")}});
      for (int m = 0; m < 3; ++m) {
        const std::string mn = n + "hm" + std::to_string(m);
        Uid vm = *db.AddNode("VM", {{"name", Value(mn)}});
        if (!db.AddEdge("OnServer", vm, host, {}).ok()) {
          state.SkipWithError("idle construction failed");
          return;
        }
        for (int f = 0; f < 3; ++f) {
          Uid vfc = *db.AddNode("VFC", {{"name", Value(mn + "f" +
                                                       std::to_string(f))}});
          if (!db.AddEdge("hosted_on", vfc, vm, {}).ok()) {
            state.SkipWithError("idle construction failed");
            return;
          }
        }
      }
    }

    auto catalog = views::ViewCatalog::Open(store->get());
    if (!catalog.ok()) {
      state.SkipWithError(catalog.status().ToString().c_str());
      return;
    }
    auto rpe = nql::ParseRpe("VNF()->[Vertical()]{1,6}->Host()");
    Status created = (*catalog)->CreateView("hot", *std::move(rpe));
    if (!created.ok()) {
      state.SkipWithError(created.ToString().c_str());
      return;
    }

    // Saturating writer: each round tears one chain's VFC out (cascading
    // onto its edges) and rebuilds it — every commit is footprint-relevant,
    // so the maintenance thread repairs the view the whole time.
    std::atomic<bool> done{false};
    std::thread writer([&] {
      size_t i = 0;
      while (!done.load(std::memory_order_acquire)) {
        Chain& c = chains[i++ % chains.size()];
        if (!db.RemoveElement(c.vfc).ok()) break;
        auto vfc = db.AddNode("VFC", {{"name", Value("r" + std::to_string(i))}});
        if (!vfc.ok()) break;
        c.vfc = *vfc;
        if (!db.AddEdge("composed_of", c.vnf, c.vfc, {}).ok()) break;
        if (!db.AddEdge("hosted_on", c.vfc, c.vm, {}).ok()) break;
      }
    });

    nql::QueryEngine served_engine(&db);
    served_engine.set_view_provider(catalog->get());
    nql::QueryEngine cold_engine(&db);

    BenchJson::Instance().Begin("served_" + backend, backend, kHotQuery);
    const double served_qps = MeasureQps(served_engine, NumQueries());
    BenchJson::Instance().Begin("cold_" + backend, backend, kHotQuery);
    const double cold_qps =
        MeasureQps(cold_engine, std::max(1, NumQueries() / 5));

    done.store(true, std::memory_order_release);
    writer.join();

    auto& reg = obs::MetricsRegistry::Global();
    const auto repair = reg.GetHistogram("nepal.views.repair_ns",
                                         obs::DefaultLatencyBucketsNs())
                            ->Snap();
    BenchJson::Instance().Counter(backend, "served_qps", served_qps);
    BenchJson::Instance().Counter(backend, "cold_qps", cold_qps);
    BenchJson::Instance().Counter(
        backend, "speedup", cold_qps > 0 ? served_qps / cold_qps : 0);
    BenchJson::Instance().Counter(
        backend, "repairs",
        static_cast<double>(reg.GetCounter("nepal.views.repairs")->Value()));
    BenchJson::Instance().Counter(
        backend, "rebuilds",
        static_cast<double>(reg.GetCounter("nepal.views.rebuilds")->Value()));
    BenchJson::Instance().Counter(backend, "repair_count",
                                  static_cast<double>(repair.count));
    BenchJson::Instance().Counter(
        backend, "repair_p50_ns",
        static_cast<double>(repair.count > 0 ? repair.Quantile(0.5) : 0));
    BenchJson::Instance().Counter(
        backend, "repair_p99_ns",
        static_cast<double>(repair.count > 0 ? repair.Quantile(0.99) : 0));
    state.counters["served_qps"] = served_qps;
    state.counters["cold_qps"] = cold_qps;
  }
}
BENCHMARK(BM_ViewServing)
    ->Arg(0)
    ->Arg(1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("view_serving")
