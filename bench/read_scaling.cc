// Read scaling across the replication fleet: the same reader pool (a
// fixed number of threads issuing path-count queries through one
// replica_ok-routed QueryEngine) measured against fleets of 0, 1, 2 and
// 3 socket followers, while a saturating writer keeps appending to the
// fsync=always primary the whole time.
//
// With zero followers every read queues behind the writer's exclusive
// lock, held for the in-memory apply of each group-commit batch. Each
// follower adds an independent store (fed its own copy of the write
// stream by its apply loop, re-logged without syncing) that the router
// rotates reads onto, so with a core per store the blocked fraction per
// read falls with fleet size — the multi-core headline is followers:3
// at >= 2.5x followers:0. On a single-core host the rows degenerate the
// same way parallel_scaling's lane counts do: every store timeshares
// the one core, the primary's lock is never contended long enough to
// matter, and the fleet rows instead price the replication pipeline
// itself (shipping plus N apply loops) — expect a mildly *declining*
// curve there, not a scaling one.
//
// Scale knobs:
//   NEPAL_BENCH_READ_SEED     — pre-loaded hosts (default 200)
//   NEPAL_BENCH_READ_MS       — measured window per fleet size (default 800)
//   NEPAL_BENCH_READ_THREADS  — reader threads (default 4)
//
// Results land in BENCH_read_scaling.json as counter records
// (ReadScaling/followers:N -> read_qps, replica_share, speedup).

#include <atomic>
#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "persist/durable_store.h"
#include "replication/listener.h"
#include "replication/replica_store.h"
#include "replication/socket_util.h"
#include "schema/dsl_parser.h"

namespace nepal::bench {
namespace {

namespace fs = std::filesystem;

schema::SchemaPtr ReadScalingSchema() {
  static schema::SchemaPtr schema = [] {
    auto s = schema::ParseSchemaDsl(R"(
      node Host : Node { serial: string; }
      node Probe : Node { serial: string; }
    )");
    if (!s.ok()) std::abort();
    return *s;
  }();
  return schema;
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("nepal_bench_rs_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::string FreshSocket(const std::string& tag) {
  const std::string path = "/tmp/nepal_bench_rs_" +
                           std::to_string(::getpid()) + "_" + tag + ".sock";
  ::unlink(path.c_str());
  return path;
}

persist::BackendFactory Factory() {
  return [](schema::SchemaPtr s)
             -> std::unique_ptr<storage::StorageBackend> {
    return std::make_unique<graphstore::GraphStore>(std::move(s));
  };
}

int SeedHosts() { return EnvInt("NEPAL_BENCH_READ_SEED", 200); }
int MeasureMs() { return EnvInt("NEPAL_BENCH_READ_MS", 800); }
int ReaderThreads() { return EnvInt("NEPAL_BENCH_READ_THREADS", 4); }

/// Mutations per writer batch — big enough that the exclusive-lock hold
/// per group commit dominates a routed read.
constexpr size_t kWriteBatch = 64;

/// followers -> measured QPS, so later fleet sizes can report their
/// speedup against the followers:0 baseline in the same JSON record.
std::map<int, double>& QpsByFleet() {
  static std::map<int, double>* qps = new std::map<int, double>();
  return *qps;
}

void BM_ReadScaling(benchmark::State& state) {
  const int followers = static_cast<int>(state.range(0));
  const std::string tag = "f" + std::to_string(followers);

  for (auto _ : state) {
    // The primary pays full durability: with fsync=always every commit
    // holds the store's exclusive lock across a disk sync, which is
    // exactly the stall replica reads exist to dodge. Followers re-log
    // without syncing — their durability story is "re-bootstrap from the
    // primary", so the apply loop holds locks only briefly.
    persist::DurableOptions durable;
    durable.fsync_policy = persist::FsyncPolicy::kAlways;
    auto primary = persist::DurableStore::Open(
        FreshDir(tag + "_p"), ReadScalingSchema(), Factory(), durable);
    if (!primary.ok()) {
      state.SkipWithError(primary.status().ToString().c_str());
      return;
    }
    // The read working set is a class the writer never touches, so a
    // routed read costs the same no matter how many live Hosts the
    // writer managed to land in any given configuration.
    for (int i = 0; i < SeedHosts(); ++i) {
      if (!(*primary)
               ->db()
               .AddNode("Probe",
                        {{"name", Value("seed" + std::to_string(i))},
                         {"serial", Value("sn" + std::to_string(i))}})
               .ok()) {
        state.SkipWithError("seed ingest failed");
        return;
      }
    }

    auto address =
        replication::ParseSocketAddress("unix:" + FreshSocket(tag));
    if (!address.ok()) {
      state.SkipWithError(address.status().ToString().c_str());
      return;
    }
    std::unique_ptr<replication::ReplicationListener> listener;
    std::vector<std::unique_ptr<replication::ReplicaStore>> fleet;
    if (followers > 0) {
      auto started = replication::ReplicationListener::Start(**primary,
                                                             *address);
      if (!started.ok()) {
        state.SkipWithError(started.status().ToString().c_str());
        return;
      }
      listener = std::move(*started);
      for (int i = 0; i < followers; ++i) {
        replication::ConnectOptions connect;
        connect.name = "bench-f" + std::to_string(i);
        connect.replica.durable.fsync_policy = persist::FsyncPolicy::kNone;
        auto follower = replication::ReplicaStore::Connect(
            FreshDir(tag + "_r" + std::to_string(i)), ReadScalingSchema(),
            Factory(), *address, connect);
        if (!follower.ok()) {
          state.SkipWithError(follower.status().ToString().c_str());
          return;
        }
        fleet.push_back(std::move(*follower));
      }
    }

    nql::EngineOptions options;
    options.routing.policy = nql::ReadPolicy::kRoundRobin;
    options.routing.max_lag_ms = 60000;
    nql::QueryEngine engine(&(*primary)->db(), options);
    for (size_t i = 0; i < fleet.size(); ++i) {
      if (!engine.catalog()
               .AttachReplica("bench-f" + std::to_string(i), fleet[i].get())
               .ok()) {
        state.SkipWithError("AttachReplica failed");
        return;
      }
    }
    // Let the fleet absorb the seed so the window measures steady-state
    // tailing, not bootstrap. Converged content, not applied-record
    // counters, is the signal: bootstrap images carry data the applied
    // counter never saw.
    for (const auto& f : fleet) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (f->serving() &&
             f->db().node_count() < (*primary)->db().node_count() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    // Saturating writer for the whole measured window: back-to-back
    // group-commit batches, each holding the primary's exclusive lock for
    // the in-memory apply of the whole batch. This is the ingest shape
    // the fleet exists for — reads on the primary queue behind every
    // batch, reads routed to a follower only queue behind that one
    // follower's (asynchronous, amortized) apply loop.
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> writes{0};
    std::thread writer([&] {
      size_t serial = 0;
      while (!stop.load(std::memory_order_acquire)) {
        std::vector<storage::Mutation> muts;
        muts.reserve(kWriteBatch);
        for (size_t i = 0; i < kWriteBatch; ++i) {
          const std::string t =
              std::to_string(serial) + "_" + std::to_string(i);
          muts.push_back(storage::Mutation::AddNode(
              "Host",
              {{"name", Value("live" + t)}, {"serial", Value("lv" + t)}}));
        }
        ++serial;
        if ((*primary)->db().ApplyBatch(muts).ok()) {
          writes.fetch_add(kWriteBatch, std::memory_order_relaxed);
        }
      }
    });

    const std::string query =
        "Select count(P) From PATHS P Where P MATCHES Probe()";
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> readers;
    const auto until = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(MeasureMs());
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < ReaderThreads(); ++t) {
      readers.emplace_back([&] {
        while (std::chrono::steady_clock::now() < until) {
          if (engine.Run(query).ok()) {
            reads.fetch_add(1, std::memory_order_relaxed);
          } else {
            failures.fetch_add(1, std::memory_order_relaxed);
          }
          // A touch of think time makes the readers open-loop clients.
          // Closed-loop hammering never drains the reader count to zero,
          // so the (reader-preferring) store lock starves the writer and
          // the baseline quietly measures an idle-primary fleet.
          std::this_thread::sleep_for(std::chrono::microseconds(300));
        }
      });
    }
    for (auto& r : readers) r.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    stop.store(true, std::memory_order_release);
    writer.join();
    if (failures.load() > 0) {
      state.SkipWithError("routed reads failed during the window");
      return;
    }

    const double qps = static_cast<double>(reads.load()) / seconds;
    QpsByFleet()[followers] = qps;
    state.SetItemsProcessed(static_cast<int64_t>(reads.load()));
    state.counters["read_qps"] = qps;
    state.counters["writes"] = static_cast<double>(writes.load());

    const std::string label = "ReadScaling/followers:" +
                              std::to_string(followers);
    BenchJson::Instance().Counter(label, "followers",
                                  static_cast<double>(followers));
    BenchJson::Instance().Counter(label, "reader_threads",
                                  static_cast<double>(ReaderThreads()));
    BenchJson::Instance().Counter(label, "read_qps", qps);
    BenchJson::Instance().Counter(
        label, "reads", static_cast<double>(reads.load()));
    BenchJson::Instance().Counter(
        label, "writes_during_window",
        static_cast<double>(writes.load()));
    const auto baseline = QpsByFleet().find(0);
    if (baseline != QpsByFleet().end() && baseline->second > 0) {
      BenchJson::Instance().Counter(label, "speedup_vs_primary_only",
                                    qps / baseline->second);
    }
  }
}
BENCHMARK(BM_ReadScaling)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->ArgName("followers")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("read_scaling");
