// Ablation: anchor position.
//
// The same Host-to-Host reachability question posed three ways:
//   both ends named   — the planner picks the cheaper anchor,
//   start named only  — forward extension from the anchor,
//   end named only    — backward extension from the anchor.
// The paper observes that forward and backward execution differ mainly in
// the fanout they encounter; an unanchored far end turns a point-to-point
// query into a one-to-many sweep, which is why anchor selection matters.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct AnchorFixture {
  netmodel::VirtualizedNetwork net;
  std::unique_ptr<nql::QueryEngine> engine;
  InstanceSet both_ends, start_only, end_only;

  AnchorFixture() {
    netmodel::VirtualizedParams params;
    params.history_days = 0;
    auto built = BuildVirtualizedNetwork(params, RelationalFactory());
    if (!built.ok()) std::abort();
    net = std::move(*built);
    engine = std::make_unique<nql::QueryEngine>(net.db.get());

    Rng rng(17);
    std::vector<std::string> both, starts, ends;
    size_t want = static_cast<size_t>(NumInstances());
    for (size_t i = 0; i < 6 * want && both.size() < 2 * want; ++i) {
      const std::string a =
          NameOf(*net.db, net.hosts[rng.Below(net.hosts.size())]);
      const std::string b =
          NameOf(*net.db, net.hosts[rng.Below(net.hosts.size())]);
      if (a == b) continue;
      both.push_back("Retrieve P From PATHS P Where P MATCHES Host(name='" +
                     a + "')->[connects()]{1,4}->Host(name='" + b + "')");
      starts.push_back("Retrieve P From PATHS P Where P MATCHES Host(name='" +
                       a + "')->[connects()]{1,4}->Host()");
      ends.push_back("Retrieve P From PATHS P Where P MATCHES "
                     "Host()->[connects()]{1,4}->Host(name='" + b + "')");
    }
    both_ends = SampleNonEmpty(*engine, both, want);
    start_only = SampleNonEmpty(*engine, starts, want);
    end_only = SampleNonEmpty(*engine, ends, want);
  }
};

AnchorFixture& Fixture() {
  static AnchorFixture* fixture = new AnchorFixture();
  return *fixture;
}

void RunInstances(benchmark::State& state, const char* label,
                  const InstanceSet& set) {
  if (set.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  BenchJson::Instance().Begin(label, Fixture().net.db->backend().name(),
                              set.queries.front());
  size_t i = 0;
  size_t paths = 0;
  for (auto _ : state) {
    paths += MustRun(*Fixture().engine, set.Next(i++));
  }
  state.counters["paths"] =
      static_cast<double>(paths) / static_cast<double>(i);
}

void BM_Anchor_BothEnds(benchmark::State& state) {
  RunInstances(state, "Anchor_BothEnds", Fixture().both_ends);
}
BENCHMARK(BM_Anchor_BothEnds)->Unit(benchmark::kMillisecond);

void BM_Anchor_StartOnly(benchmark::State& state) {
  RunInstances(state, "Anchor_StartOnly", Fixture().start_only);
}
BENCHMARK(BM_Anchor_StartOnly)->Unit(benchmark::kMillisecond);

void BM_Anchor_EndOnly(benchmark::State& state) {
  RunInstances(state, "Anchor_EndOnly", Fixture().end_only);
}
BENCHMARK(BM_Anchor_EndOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("ablation_anchors");
