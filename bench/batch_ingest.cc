// Group-commit ingest microbenchmarks (GraphDb::ApplyBatch + the
// src/persist WAL fast path):
//
//   - mutations/s as a function of batch size (1, 8, 128) under each
//     durable fsync policy — the group-commit payoff is one WAL write
//     and at most one fsync per batch instead of per mutation,
//   - snapshot-read QPS while a concurrent writer continuously holds
//     the write path with batched inserts (EngineOptions::snapshot_reads
//     pins reads to a commit epoch instead of queueing on the writer
//     lock).
//
// Scale knob: NEPAL_BENCH_BATCH_SECONDS (default 1 second per
// configuration for the reader/writer benchmark). Results land in
// BENCH_batch_ingest.json as counter records; the CI bench-smoke step
// asserts the batch-128 vs batch-1 speedup under the `always` policy.

#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "persist/durable_store.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace nepal::bench {
namespace {

namespace fs = std::filesystem;

schema::SchemaPtr IngestSchema() {
  static schema::SchemaPtr schema = [] {
    auto s = schema::ParseSchemaDsl(R"(
      node Host : Node { serial: string; }
      node VM : Node { status: string; }
      edge OnServer : Edge {}
      allow OnServer (VM -> Host);
    )");
    if (!s.ok()) std::abort();
    return *s;
  }();
  return schema;
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("nepal_bench_" + name);
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory() {
  return [](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
    return std::make_unique<graphstore::GraphStore>(std::move(s));
  };
}

const char* PolicyName(persist::FsyncPolicy policy) {
  return persist::FsyncPolicyToString(policy);
}

std::vector<storage::Mutation> NodeBatch(size_t batch, size_t serial) {
  std::vector<storage::Mutation> muts;
  muts.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    const std::string tag = std::to_string(serial) + "_" + std::to_string(i);
    muts.push_back(storage::Mutation::AddNode(
        "VM", {{"name", Value("vm" + tag)}, {"status", Value("up")}}));
  }
  return muts;
}

// ---- mutations/s vs batch size x fsync policy ----

void BM_BatchIngest(benchmark::State& state) {
  const auto policy = static_cast<persist::FsyncPolicy>(state.range(0));
  const auto batch = static_cast<size_t>(state.range(1));
  const std::string dir =
      FreshDir(std::string("batch_ingest_") + PolicyName(policy) + "_" +
               std::to_string(batch));
  persist::DurableOptions options;
  options.fsync_policy = policy;
  auto store =
      persist::DurableStore::Open(dir, IngestSchema(), Factory(), options);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  storage::GraphDb& db = (*store)->db();
  if (!db.SetTime(1500000000000000).ok()) {
    state.SkipWithError("SetTime failed");
    return;
  }
  size_t serial = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<storage::Mutation> muts = NodeBatch(batch, serial++);
    if (!db.ApplyBatch(muts).ok()) {
      state.SkipWithError("ApplyBatch failed");
      return;
    }
    benchmark::DoNotOptimize(muts[0].uid);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double mutations =
      static_cast<double>(state.iterations()) * static_cast<double>(batch);
  state.SetItemsProcessed(static_cast<int64_t>(mutations));
  const std::string label = std::string("BatchIngest/") + PolicyName(policy) +
                            "/batch" + std::to_string(batch);
  BenchJson::Instance().Counter(label, "batch_size",
                                static_cast<double>(batch));
  if (seconds > 0) {
    BenchJson::Instance().Counter(label, "mutations_per_s",
                                  mutations / seconds);
  }
  store->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_BatchIngest)
    ->Args({static_cast<int>(persist::FsyncPolicy::kAlways), 1})
    ->Args({static_cast<int>(persist::FsyncPolicy::kAlways), 8})
    ->Args({static_cast<int>(persist::FsyncPolicy::kAlways), 128})
    ->Args({static_cast<int>(persist::FsyncPolicy::kInterval), 1})
    ->Args({static_cast<int>(persist::FsyncPolicy::kInterval), 8})
    ->Args({static_cast<int>(persist::FsyncPolicy::kInterval), 128})
    ->ArgNames({"fsync", "batch"})
    ->Unit(benchmark::kMicrosecond);

// ---- snapshot-read QPS under a concurrent batched writer ----

// The writer thread keeps the write path saturated with group commits;
// the timed loop runs a path query with snapshot_reads on, so each read
// pins a commit epoch and never queues behind the exclusive lock for the
// whole query. The QPS counter is the acceptance signal: it must stay
// nonzero (reads make progress while the writer runs), and the writer
// batch counter shows the write path really was busy.
void BM_SnapshotReadUnderWriter(benchmark::State& state) {
  storage::GraphDb db(IngestSchema(),
                      std::make_unique<graphstore::GraphStore>(IngestSchema()));
  if (!db.SetTime(1500000000000000).ok()) {
    state.SkipWithError("SetTime failed");
    return;
  }
  // Seed a small placement fabric so the query has paths to find.
  std::vector<Uid> hosts;
  for (int i = 0; i < 8; ++i) {
    hosts.push_back(*db.AddNode(
        "Host", {{"name", Value("h" + std::to_string(i))},
                 {"serial", Value("sn" + std::to_string(i))}}));
  }
  for (int i = 0; i < 64; ++i) {
    Uid vm = *db.AddNode("VM", {{"name", Value("seed" + std::to_string(i))},
                                {"status", Value("up")}});
    if (!db.AddEdge("OnServer", vm, hosts[static_cast<size_t>(i % 8)], {})
             .ok()) {
      state.SkipWithError("seed AddEdge failed");
      return;
    }
  }

  nql::EngineOptions opts;
  opts.snapshot_reads = true;
  nql::QueryEngine engine(&db, opts);
  const std::string query =
      "Retrieve P From PATHS P Where P MATCHES VM()->OnServer()->Host()";

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> writer_batches{0};
  std::thread writer([&] {
    size_t serial = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<storage::Mutation> muts = NodeBatch(64, 100000 + serial++);
      if (!db.ApplyBatch(muts).ok()) return;
      writer_batches.fetch_add(1, std::memory_order_relaxed);
    }
  });

  size_t queries = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto result = engine.Run(query);
    if (!result.ok() || result->rows.empty()) {
      stop.store(true);
      writer.join();
      state.SkipWithError("snapshot read failed under concurrent writer");
      return;
    }
    ++queries;
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop.store(true);
  writer.join();
  state.SetItemsProcessed(static_cast<int64_t>(queries));
  BenchJson::Instance().Counter("SnapshotReadUnderWriter", "snapshot_read_qps",
                                seconds > 0
                                    ? static_cast<double>(queries) / seconds
                                    : 0);
  BenchJson::Instance().Counter(
      "SnapshotReadUnderWriter", "writer_batches",
      static_cast<double>(writer_batches.load(std::memory_order_relaxed)));
  BenchJson::Instance().Counter(
      "SnapshotReadUnderWriter", "writer_mutations_per_s",
      seconds > 0 ? static_cast<double>(
                        writer_batches.load(std::memory_order_relaxed)) *
                        64.0 / seconds
                  : 0);
}
BENCHMARK(BM_SnapshotReadUnderWriter)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("batch_ingest");
