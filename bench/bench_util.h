// Shared benchmark fixtures: lazily-built networks, query-instance
// sampling (zero-path instances excluded, as in the paper), and helpers.
//
// Scale knobs (environment variables):
//   NEPAL_BENCH_LEGACY_DEVICES  — legacy topology size (default 1000;
//                                 ~11000 reproduces the paper's 1.6M-node
//                                 data set).
//   NEPAL_BENCH_INSTANCES       — query instances per type (default 50).

#ifndef NEPAL_BENCH_BENCH_UTIL_H_
#define NEPAL_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "graphstore/graph_store.h"
#include "nepal/engine.h"
#include "netmodel/legacy.h"
#include "netmodel/virtualized.h"
#include "relational/relational_store.h"

namespace nepal::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline int NumInstances() { return EnvInt("NEPAL_BENCH_INSTANCES", 50); }

inline netmodel::BackendFactory RelationalFactory() {
  return [](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
    return std::make_unique<relational::RelationalStore>(std::move(s));
  };
}
inline netmodel::BackendFactory GraphStoreFactory() {
  return [](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
    return std::make_unique<graphstore::GraphStore>(std::move(s));
  };
}

/// Runs a query, aborting the benchmark on error (a bench must not silently
/// measure failures).
inline size_t MustRun(const nql::QueryEngine& engine,
                      const std::string& query) {
  auto result = engine.Run(query);
  if (!result.ok()) {
    std::fprintf(stderr, "bench query failed: %s\n  query: %s\n",
                 result.status().ToString().c_str(), query.c_str());
    std::abort();
  }
  return result->rows.size();
}

inline std::string NameOf(const storage::GraphDb& db, Uid uid) {
  auto v = db.GetCurrent(uid);
  if (!v.ok()) return "";
  int idx = v->cls->FieldIndex("name");
  return v->fields[static_cast<size_t>(idx)].AsString();
}

/// A set of query instances of one type plus bookkeeping for cycling
/// through them inside the benchmark loop.
struct InstanceSet {
  std::vector<std::string> queries;
  double avg_paths = 0;  // measured during sampling (zero-path skipped)

  const std::string& Next(size_t iteration) const {
    return queries[iteration % queries.size()];
  }
};

/// Keeps instances whose query returns at least one path, up to `want`.
inline InstanceSet SampleNonEmpty(const nql::QueryEngine& engine,
                                  const std::vector<std::string>& candidates,
                                  size_t want) {
  InstanceSet set;
  double paths = 0;
  for (const std::string& q : candidates) {
    if (set.queries.size() >= want) break;
    auto result = engine.Run(q);
    if (!result.ok()) {
      std::fprintf(stderr, "instance sampling failed: %s\n  query: %s\n",
                   result.status().ToString().c_str(), q.c_str());
      std::abort();
    }
    if (result->rows.empty()) continue;  // the paper skips zero-path runs
    paths += static_cast<double>(result->rows.size());
    set.queries.push_back(q);
  }
  if (!set.queries.empty()) {
    set.avg_paths = paths / static_cast<double>(set.queries.size());
  }
  return set;
}

/// Prefixes a query with a timeslice at `t`, turning a current-snapshot
/// query into one against the full history store (the paper's
/// "Time (hist)" columns).
inline std::string OnHistory(const std::string& query, Timestamp t) {
  return "AT '" + FormatTimestamp(t) + "' " + query;
}

}  // namespace nepal::bench

#endif  // NEPAL_BENCH_BENCH_UTIL_H_
