// Shared benchmark fixtures: lazily-built networks, query-instance
// sampling (zero-path instances excluded, as in the paper), helpers, and
// the machine-readable result recorder (BENCH_<name>.json).
//
// Scale knobs (environment variables):
//   NEPAL_BENCH_LEGACY_DEVICES  — legacy topology size (default 1000;
//                                 ~11000 reproduces the paper's 1.6M-node
//                                 data set).
//   NEPAL_BENCH_INSTANCES       — query instances per type (default 50).

#ifndef NEPAL_BENCH_BENCH_UTIL_H_
#define NEPAL_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "graphstore/graph_store.h"
#include "nepal/engine.h"
#include "netmodel/legacy.h"
#include "netmodel/virtualized.h"
#include "obs/metrics.h"
#include "obs/query_stats.h"
#include "relational/relational_store.h"

namespace nepal::bench {

inline int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

inline int NumInstances() { return EnvInt("NEPAL_BENCH_INSTANCES", 50); }

inline netmodel::BackendFactory RelationalFactory() {
  return [](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
    return std::make_unique<relational::RelationalStore>(std::move(s));
  };
}
inline netmodel::BackendFactory GraphStoreFactory() {
  return [](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
    return std::make_unique<graphstore::GraphStore>(std::move(s));
  };
}

/// Machine-readable benchmark results. Each benchmark's measurement helper
/// calls Begin(label, backend, query) before its timing loop to mark the
/// active record; MustRun then feeds every execution's wall time, row count
/// and per-operator stats (engine.LastQueryStats()) into it. Benchmarks
/// without a query loop record plain Counter values instead. The
/// NEPAL_BENCH_MAIN macro writes the accumulated records to
/// BENCH_<bench_name>.json in the working directory — the file the CI
/// bench-smoke step validates and archives.
class BenchJson {
 public:
  static BenchJson& Instance() {
    static BenchJson* instance = new BenchJson();
    return *instance;
  }

  /// Marks (creating on first use) the record that subsequent Observe
  /// calls accumulate into. Re-running the same benchmark (estimation
  /// passes) keeps accumulating into the same record.
  void Begin(const std::string& name, const std::string& backend,
             const std::string& query) {
    std::lock_guard<std::mutex> lock(mu_);
    Record& r = Lookup(name);
    r.backend = backend;
    r.query = query;
    active_ = &r;
  }

  /// One query execution. No-op while no record is active (fixture setup,
  /// instance sampling).
  void Observe(double ms, size_t rows, obs::QueryStats stats) {
    std::lock_guard<std::mutex> lock(mu_);
    if (active_ == nullptr) return;
    ++active_->executions;
    active_->total_rows += static_cast<double>(rows);
    active_->ms_samples.push_back(ms);
    active_->stats.MergeFrom(stats);
  }

  /// Standalone numeric result for non-query benchmarks (storage overhead,
  /// ingest throughput).
  void Counter(const std::string& name, const std::string& key,
               double value) {
    std::lock_guard<std::mutex> lock(mu_);
    Lookup(name).counters[key] = value;
  }

  /// Writes BENCH_<bench_name>.json. Query records carry
  /// executions/paths/mean_ms/median_ms plus the merged per-operator
  /// stats; counter records carry their key/value map.
  void WriteFile(const std::string& bench_name) {
    std::lock_guard<std::mutex> lock(mu_);
    std::string out = "{\"bench\":\"" + obs::JsonEscape(bench_name) +
                      "\",\"records\":[";
    bool first = true;
    for (const std::string& name : order_) {
      Record& r = records_.at(name);
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + obs::JsonEscape(name) + "\"";
      if (r.executions > 0) {
        double n = static_cast<double>(r.executions);
        double mean = 0;
        for (double ms : r.ms_samples) mean += ms;
        mean /= n;
        std::vector<double> sorted = r.ms_samples;
        std::sort(sorted.begin(), sorted.end());
        double median = sorted[sorted.size() / 2];
        out += ",\"backend\":\"" + obs::JsonEscape(r.backend) + "\"";
        out += ",\"query\":\"" + obs::JsonEscape(r.query) + "\"";
        out += ",\"executions\":" + std::to_string(r.executions);
        out += ",\"paths\":" + FormatDouble(r.total_rows / n);
        out += ",\"mean_ms\":" + FormatDouble(mean);
        out += ",\"median_ms\":" + FormatDouble(median);
        // Mean MatchPlan cost per execution (QueryStats::plan_cost sums
        // across merged runs) and the optimizer's aggregate row-estimation
        // error: sum |est - actual| over estimated operators, normalized by
        // the actual rows they emitted.
        out += ",\"plan_cost\":" + FormatDouble(r.stats.plan_cost / n);
        double err_num = 0, err_den = 0;
        for (const auto& op : r.stats.operators) {
          if (op.est_rows < 0) continue;
          err_num += std::fabs(op.est_rows - static_cast<double>(op.rows_out));
          err_den += static_cast<double>(op.rows_out);
        }
        out += ",\"est_row_error\":" +
               FormatDouble(err_den > 0 ? err_num / err_den : err_num);
        out += ",\"operators\":[";
        for (size_t i = 0; i < r.stats.operators.size(); ++i) {
          if (i > 0) out += ",";
          r.stats.operators[i].AppendJson(&out);
        }
        out += "]";
      }
      if (!r.counters.empty()) {
        out += ",\"counters\":{";
        bool first_counter = true;
        for (const auto& [key, value] : r.counters) {
          if (!first_counter) out += ",";
          first_counter = false;
          out += "\"" + obs::JsonEscape(key) + "\":" + FormatDouble(value);
        }
        out += "}";
      }
      out += "}";
    }
    out += "]}\n";
    const std::string path = "BENCH_" + bench_name + ".json";
    FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s (%zu record(s))\n", path.c_str(),
                 records_.size());
  }

 private:
  struct Record {
    std::string backend, query;
    size_t executions = 0;
    double total_rows = 0;
    std::vector<double> ms_samples;
    obs::QueryStats stats;
    std::map<std::string, double> counters;
  };

  Record& Lookup(const std::string& name) {
    auto [it, inserted] = records_.try_emplace(name);
    if (inserted) order_.push_back(name);
    return it->second;
  }

  static std::string FormatDouble(double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }

  std::mutex mu_;
  std::map<std::string, Record> records_;
  std::vector<std::string> order_;  // insertion order for stable output
  Record* active_ = nullptr;        // stable: map nodes don't move
};

/// Runs a query, aborting the benchmark on error (a bench must not silently
/// measure failures). Feeds timing, row count and per-operator stats into
/// the active BenchJson record.
inline size_t MustRun(const nql::QueryEngine& engine,
                      const std::string& query) {
  auto start = std::chrono::steady_clock::now();
  auto result = engine.Run(query);
  if (!result.ok()) {
    std::fprintf(stderr, "bench query failed: %s\n  query: %s\n",
                 result.status().ToString().c_str(), query.c_str());
    std::abort();
  }
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  BenchJson::Instance().Observe(ms, result->rows.size(),
                                engine.LastQueryStats());
  return result->rows.size();
}

inline std::string NameOf(const storage::GraphDb& db, Uid uid) {
  auto v = db.GetCurrent(uid);
  if (!v.ok()) return "";
  int idx = v->cls->FieldIndex("name");
  return v->fields[static_cast<size_t>(idx)].AsString();
}

/// A set of query instances of one type plus bookkeeping for cycling
/// through them inside the benchmark loop.
struct InstanceSet {
  std::vector<std::string> queries;
  double avg_paths = 0;  // measured during sampling (zero-path skipped)

  const std::string& Next(size_t iteration) const {
    return queries[iteration % queries.size()];
  }
};

/// Keeps instances whose query returns at least one path, up to `want`.
inline InstanceSet SampleNonEmpty(const nql::QueryEngine& engine,
                                  const std::vector<std::string>& candidates,
                                  size_t want) {
  InstanceSet set;
  double paths = 0;
  for (const std::string& q : candidates) {
    if (set.queries.size() >= want) break;
    auto result = engine.Run(q);
    if (!result.ok()) {
      std::fprintf(stderr, "instance sampling failed: %s\n  query: %s\n",
                   result.status().ToString().c_str(), q.c_str());
      std::abort();
    }
    if (result->rows.empty()) continue;  // the paper skips zero-path runs
    paths += static_cast<double>(result->rows.size());
    set.queries.push_back(q);
  }
  if (!set.queries.empty()) {
    set.avg_paths = paths / static_cast<double>(set.queries.size());
  }
  return set;
}

/// Prefixes a query with a timeslice at `t`, turning a current-snapshot
/// query into one against the full history store (the paper's
/// "Time (hist)" columns).
inline std::string OnHistory(const std::string& query, Timestamp t) {
  return "AT '" + FormatTimestamp(t) + "' " + query;
}

}  // namespace nepal::bench

/// BENCHMARK_MAIN plus the BENCH_<name>.json dump after the run.
#define NEPAL_BENCH_MAIN(bench_name)                                    \
  int main(int argc, char** argv) {                                     \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    ::nepal::bench::BenchJson::Instance().WriteFile(bench_name);        \
    return 0;                                                           \
  }

#endif  // NEPAL_BENCH_BENCH_UTIL_H_
