// Ingest-path microbenchmarks (the write side the paper's Section 3.1
// architecture feeds from A&AI and legacy sources).
//
//   - validated node / edge inserts per second, per backend,
//   - field updates (temporal version creation),
//   - the update-by-snapshot diff service with varying change ratios
//     (an unchanged snapshot must be cheap: diff detection, no writes).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "schema/dsl_parser.h"
#include "temporal/snapshot.h"

namespace nepal::bench {
namespace {

schema::SchemaPtr IngestSchema() {
  static schema::SchemaPtr schema = [] {
    auto s = schema::ParseSchemaDsl(R"(
      node Item : Node { val: int; status: string; }
      edge link : Edge {}
      allow link (Item -> Item);
    )");
    if (!s.ok()) std::abort();
    return *s;
  }();
  return schema;
}

std::unique_ptr<storage::GraphDb> MakeDb(bool relational) {
  schema::SchemaPtr schema = IngestSchema();
  std::unique_ptr<storage::StorageBackend> backend;
  if (relational) {
    backend = std::make_unique<relational::RelationalStore>(schema);
  } else {
    backend = std::make_unique<graphstore::GraphStore>(schema);
  }
  return std::make_unique<storage::GraphDb>(schema, std::move(backend));
}

void BM_InsertNodes(benchmark::State& state) {
  auto db = MakeDb(state.range(0) != 0);
  int64_t i = 0;
  for (auto _ : state) {
    auto uid = db->AddNode(
        "Item", {{"name", Value("item-" + std::to_string(i++))},
                 {"val", Value(i)},
                 {"status", Value("up")}});
    if (!uid.ok()) state.SkipWithError("insert failed");
  }
  state.SetItemsProcessed(state.iterations());
  BenchJson::Instance().Counter(
      std::string("InsertNodes/") + db->backend().name(), "items",
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_InsertNodes)->Arg(0)->Arg(1)->ArgName("relational");

void BM_InsertEdges(benchmark::State& state) {
  auto db = MakeDb(state.range(0) != 0);
  std::vector<Uid> nodes;
  for (int i = 0; i < 1000; ++i) {
    nodes.push_back(*db->AddNode(
        "Item", {{"name", Value("n" + std::to_string(i))}}));
  }
  Rng rng(1);
  for (auto _ : state) {
    Uid s = nodes[rng.Below(nodes.size())];
    Uid t = nodes[rng.Below(nodes.size())];
    if (s == t) continue;
    auto uid = db->AddEdge("link", s, t, {});
    if (!uid.ok()) state.SkipWithError("insert failed");
  }
  state.SetItemsProcessed(state.iterations());
  BenchJson::Instance().Counter(
      std::string("InsertEdges/") + db->backend().name(), "items",
      static_cast<double>(state.iterations()));
}
BENCHMARK(BM_InsertEdges)->Arg(0)->Arg(1)->ArgName("relational");

void BM_TemporalUpdates(benchmark::State& state) {
  auto db = MakeDb(state.range(0) != 0);
  std::vector<Uid> nodes;
  for (int i = 0; i < 1000; ++i) {
    nodes.push_back(*db->AddNode(
        "Item", {{"name", Value("n" + std::to_string(i))},
                 {"val", Value(0)}}));
  }
  Rng rng(2);
  int64_t tick = 0;
  for (auto _ : state) {
    // Each update at a new instant creates one history version.
    if (db->SetTime(db->Now() + 1 + (tick++ % 3)).ok()) {
      Uid uid = nodes[rng.Below(nodes.size())];
      auto st = db->UpdateElement(
          uid, {{"val", Value(static_cast<int64_t>(rng.Below(1000)))}});
      if (!st.ok()) state.SkipWithError("update failed");
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["versions"] =
      static_cast<double>(db->backend().VersionCount());
  BenchJson::Instance().Counter(
      std::string("TemporalUpdates/") + db->backend().name(), "versions",
      static_cast<double>(db->backend().VersionCount()));
}
BENCHMARK(BM_TemporalUpdates)->Arg(0)->Arg(1)->ArgName("relational");

/// Applies daily snapshots where `change_permille` of elements changed.
void BM_SnapshotDiff(benchmark::State& state) {
  auto db = MakeDb(/*relational=*/true);
  temporal::SnapshotUpdater updater(db.get());
  constexpr int kNodes = 2000;
  temporal::Snapshot snap;
  for (int i = 0; i < kNodes; ++i) {
    snap.nodes.push_back(temporal::SnapshotNode{
        "n" + std::to_string(i), "Item",
        {{"name", Value("n" + std::to_string(i))}, {"val", Value(0)}}});
  }
  for (int i = 0; i + 1 < kNodes; ++i) {
    snap.edges.push_back(temporal::SnapshotEdge{
        "e" + std::to_string(i), "link", "n" + std::to_string(i),
        "n" + std::to_string(i + 1), {}});
  }
  Timestamp t = *ParseTimestamp("2017-02-01 00:00:00");
  if (!updater.Apply(snap, t).ok()) {
    state.SkipWithError("initial load failed");
    return;
  }
  Rng rng(3);
  int64_t day = 0;
  const auto change_permille = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    size_t changes = kNodes * change_permille / 1000;
    for (size_t c = 0; c < changes; ++c) {
      auto& node = snap.nodes[rng.Below(snap.nodes.size())];
      node.fields[1].second = Value(static_cast<int64_t>(rng.Below(1u << 30)));
    }
    t += 86400LL * 1000000;
    state.ResumeTiming();
    auto stats = updater.Apply(snap, t);
    if (!stats.ok()) state.SkipWithError("apply failed");
    ++day;
  }
  state.counters["elements"] =
      static_cast<double>(snap.nodes.size() + snap.edges.size());
  state.counters["versions"] =
      static_cast<double>(db->backend().VersionCount());
  const std::string label =
      "SnapshotDiff/change_permille:" + std::to_string(change_permille);
  BenchJson::Instance().Counter(
      label, "elements",
      static_cast<double>(snap.nodes.size() + snap.edges.size()));
  BenchJson::Instance().Counter(
      label, "versions", static_cast<double>(db->backend().VersionCount()));
}
BENCHMARK(BM_SnapshotDiff)
    ->Arg(0)     // unchanged snapshot: pure diff detection
    ->Arg(10)    // 1% daily churn
    ->Arg(100)   // 10% daily churn
    ->ArgName("change_permille")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("ingest_throughput");
