// Section 6.1 storage-overhead result.
//
// The paper stores 60 days of graph history in the transaction-time store
// at a 16% space overhead over the current snapshot — versus ~5,900% for
// the conventional approach of materializing 60 separate graph copies.
//
// This binary builds the legacy graph once without churn (pure snapshot)
// and once with the 60-day churn replay, and reports:
//   temporal_overhead_pct — (temporal - snapshot) / snapshot
//   naive_overhead_pct    — storing 60 separate copies
//   version_growth_pct    — version-count growth from churn

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

void BM_Table4_StorageOverhead(benchmark::State& state) {
  netmodel::LegacyParams params;
  params.num_devices = EnvInt("NEPAL_BENCH_LEGACY_DEVICES", 1000) / 4;

  params.history_days = 0;
  auto snapshot_only = BuildLegacyNetwork(params, RelationalFactory());
  params.history_days = 60;
  auto with_history = BuildLegacyNetwork(params, RelationalFactory());
  if (!snapshot_only.ok() || !with_history.ok()) {
    state.SkipWithError("legacy build failed");
    return;
  }
  double snapshot_bytes = static_cast<double>(
      snapshot_only->db->backend().MemoryUsage());
  double temporal_bytes = static_cast<double>(
      with_history->db->backend().MemoryUsage());
  // 60 days of separate graphs = 60 full copies alongside the current one.
  double naive_bytes = 60.0 * snapshot_bytes;

  for (auto _ : state) {
    // The measurement is the build above; the loop exists so the reporter
    // emits one row.
    benchmark::DoNotOptimize(temporal_bytes);
  }
  state.counters["snapshot_mb"] = snapshot_bytes / 1e6;
  state.counters["temporal_mb"] = temporal_bytes / 1e6;
  state.counters["temporal_overhead_pct"] =
      100.0 * (temporal_bytes - snapshot_bytes) / snapshot_bytes;
  state.counters["naive_overhead_pct"] =
      100.0 * (naive_bytes - snapshot_bytes) / snapshot_bytes;
  state.counters["version_growth_pct"] =
      100.0 *
      static_cast<double>(with_history->final_version_count -
                          with_history->initial_version_count) /
      static_cast<double>(with_history->initial_version_count);
  BenchJson& json = BenchJson::Instance();
  json.Counter("Table4_StorageOverhead", "snapshot_mb", snapshot_bytes / 1e6);
  json.Counter("Table4_StorageOverhead", "temporal_mb", temporal_bytes / 1e6);
  json.Counter("Table4_StorageOverhead", "temporal_overhead_pct",
               100.0 * (temporal_bytes - snapshot_bytes) / snapshot_bytes);
  json.Counter("Table4_StorageOverhead", "naive_overhead_pct",
               100.0 * (naive_bytes - snapshot_bytes) / snapshot_bytes);
}
BENCHMARK(BM_Table4_StorageOverhead)->Iterations(1);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("table4_storage_overhead");
