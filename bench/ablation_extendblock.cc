// Ablation: the ExtendBlock operator (paper Section 5.2).
//
// Repetition blocks whose payload is an atom (or alternation of atoms) can
// either be delegated to the backend's ExtendBlock — a tight loop inside
// the store — or unrolled by the planner into nested Union steps. The
// paper introduced ExtendBlock to avoid shipping intermediate frontiers
// out of the Gremlin store; in-process the effect is smaller but the
// unrolled plan still pays for extra frontier materialization and
// deduplication.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct EbFixture {
  netmodel::VirtualizedNetwork net;
  std::unique_ptr<nql::QueryEngine> with_block;
  std::unique_ptr<nql::QueryEngine> unrolled;
  InstanceSet vmvm, hosthost6;

  EbFixture() {
    netmodel::VirtualizedParams params;
    params.history_days = 0;
    auto built = BuildVirtualizedNetwork(params, RelationalFactory());
    if (!built.ok()) std::abort();
    net = std::move(*built);
    with_block = std::make_unique<nql::QueryEngine>(net.db.get());
    nql::EngineOptions no_block;
    no_block.plan.loop_strategy = nql::LoopStrategy::kUnroll;
    unrolled = std::make_unique<nql::QueryEngine>(net.db.get(), no_block);

    Rng rng(23);
    size_t want = static_cast<size_t>(NumInstances());
    std::vector<std::string> vm_candidates, hh_candidates;
    for (int i = 0; i < 500; ++i) {
      const std::string a = NameOf(*net.db, net.vms[rng.Below(net.vms.size())]);
      const std::string b = NameOf(*net.db, net.vms[rng.Below(net.vms.size())]);
      if (a == b) continue;
      vm_candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES VM(name='" + a +
          "')->[virtual_connects()]{1,4}->VM(name='" + b + "')");
    }
    for (int i = 0; i < 100; ++i) {
      const std::string a =
          NameOf(*net.db, net.hosts[rng.Below(net.hosts.size())]);
      const std::string b =
          NameOf(*net.db, net.hosts[rng.Below(net.hosts.size())]);
      if (a == b) continue;
      hh_candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES Host(name='" + a +
          "')->[connects()]{1,6}->Host(name='" + b + "')");
    }
    vmvm = SampleNonEmpty(*with_block, vm_candidates, want);
    hosthost6 = SampleNonEmpty(*with_block, hh_candidates, 6);
  }
};

EbFixture& Fixture() {
  static EbFixture* fixture = new EbFixture();
  return *fixture;
}

void RunInstances(benchmark::State& state, const char* label,
                  const nql::QueryEngine& engine, const InstanceSet& set) {
  if (set.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  BenchJson::Instance().Begin(label, Fixture().net.db->backend().name(),
                              set.queries.front());
  size_t i = 0;
  size_t paths = 0;
  for (auto _ : state) {
    paths += MustRun(engine, set.Next(i++));
  }
  state.counters["paths"] =
      static_cast<double>(paths) / static_cast<double>(i);
}

void BM_VmVm4_ExtendBlock(benchmark::State& state) {
  RunInstances(state, "VmVm4_ExtendBlock", *Fixture().with_block,
               Fixture().vmvm);
}
BENCHMARK(BM_VmVm4_ExtendBlock)->Unit(benchmark::kMillisecond);

void BM_VmVm4_Unrolled(benchmark::State& state) {
  RunInstances(state, "VmVm4_Unrolled", *Fixture().unrolled, Fixture().vmvm);
}
BENCHMARK(BM_VmVm4_Unrolled)->Unit(benchmark::kMillisecond);

void BM_HostHost6_ExtendBlock(benchmark::State& state) {
  RunInstances(state, "HostHost6_ExtendBlock", *Fixture().with_block,
               Fixture().hosthost6);
}
BENCHMARK(BM_HostHost6_ExtendBlock)->Unit(benchmark::kMillisecond);

void BM_HostHost6_Unrolled(benchmark::State& state) {
  RunInstances(state, "HostHost6_Unrolled", *Fixture().unrolled,
               Fixture().hosthost6);
}
BENCHMARK(BM_HostHost6_Unrolled)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("ablation_extendblock");
