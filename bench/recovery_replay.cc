// Durability microbenchmarks (the src/persist subsystem):
//
//   - WAL append throughput (MB/s) under each fsync policy,
//   - crash-recovery replay rate (logged elements/s through the public
//     GraphDb API, uid verification included),
//   - checkpoint save and cold-start load latency (ms) — the load path
//     restores GraphStats wholesale instead of re-deriving them.
//
// Scale knob: NEPAL_BENCH_RECOVERY_ELEMENTS (default 2000 nodes+edges).
// Results land in BENCH_recovery_replay.json as counter records.

#include <filesystem>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "persist/durable_store.h"
#include "persist/wal.h"
#include "persist/wal_format.h"
#include "schema/dsl_parser.h"

namespace nepal::bench {
namespace {

namespace fs = std::filesystem;

schema::SchemaPtr RecoverySchema() {
  static schema::SchemaPtr schema = [] {
    auto s = schema::ParseSchemaDsl(R"(
      node Host : Node { serial: string; }
      node VM : Node { status: string; }
      edge OnServer : Edge {}
      allow OnServer (VM -> Host);
    )");
    if (!s.ok()) std::abort();
    return *s;
  }();
  return schema;
}

int NumElements() { return EnvInt("NEPAL_BENCH_RECOVERY_ELEMENTS", 2000); }

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("nepal_bench_" + name);
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory(bool relational) {
  return [relational](schema::SchemaPtr s)
             -> std::unique_ptr<storage::StorageBackend> {
    if (relational) {
      return std::make_unique<relational::RelationalStore>(std::move(s));
    }
    return std::make_unique<graphstore::GraphStore>(std::move(s));
  };
}

/// Hosts, VMs and placements — every write a WAL record.
void Ingest(storage::GraphDb& db, int elements) {
  std::vector<Uid> hosts;
  for (int i = 0; i < elements; ++i) {
    if (i % 3 == 0 || hosts.empty()) {
      hosts.push_back(*db.AddNode(
          "Host", {{"name", Value("h" + std::to_string(i))},
                   {"serial", Value("sn" + std::to_string(i))}}));
    } else {
      Uid vm = *db.AddNode("VM", {{"name", Value("vm" + std::to_string(i))},
                                  {"status", Value("up")}});
      if (!db.AddEdge("OnServer", vm, hosts.back(), {}).ok()) std::abort();
    }
  }
}

// ---- WAL append throughput ----

void BM_WalAppend(benchmark::State& state) {
  const auto policy = static_cast<persist::FsyncPolicy>(state.range(0));
  const std::string dir = FreshDir("wal_append");
  fs::create_directories(dir);
  persist::WalRecord rec;
  rec.type = persist::WalRecordType::kAddNode;
  rec.uid = 42;
  rec.class_name = "VM";
  rec.time = 1500000000000000;
  rec.row = {Value("vm-sample"), Value("Green")};
  std::string payload;
  persist::EncodeWalRecord(rec, &payload);

  persist::WalWriterOptions options;
  options.fsync_policy = policy;
  auto writer = persist::WalWriter::Create(dir + "/wal-00000001.log",
                                           /*segment_seq=*/1,
                                           /*fingerprint=*/0, options);
  if (!writer.ok()) {
    state.SkipWithError(writer.status().ToString().c_str());
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    if (!(*writer)->Append(payload).ok()) {
      state.SkipWithError("append failed");
      return;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const double bytes = static_cast<double>(state.iterations()) *
                       static_cast<double>(payload.size() +
                                           persist::kWalFrameHeaderSize);
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  const std::string label =
      std::string("WalAppend/") + persist::FsyncPolicyToString(policy);
  BenchJson::Instance().Counter(label, "record_bytes",
                                static_cast<double>(payload.size()));
  if (seconds > 0) {
    BenchJson::Instance().Counter(label, "append_mb_per_s",
                                  bytes / 1e6 / seconds);
  }
  (*writer)->Close().IgnoreError();
  fs::remove_all(dir);
}
BENCHMARK(BM_WalAppend)
    ->Arg(static_cast<int>(persist::FsyncPolicy::kNone))
    ->Arg(static_cast<int>(persist::FsyncPolicy::kInterval))
    ->Arg(static_cast<int>(persist::FsyncPolicy::kAlways))
    ->ArgName("fsync");

// ---- Recovery replay rate ----

void BM_RecoveryReplay(benchmark::State& state) {
  const bool relational = state.range(0) != 0;
  const std::string dir = FreshDir(std::string("replay_") +
                                   (relational ? "rel" : "gs"));
  const int elements = NumElements();
  persist::DurableOptions options;
  options.fsync_policy = persist::FsyncPolicy::kNone;
  {
    auto store = persist::DurableStore::Open(dir, RecoverySchema(),
                                             Factory(relational), options);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    Ingest((*store)->db(), elements);
  }
  size_t replayed = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto store = persist::DurableStore::Open(dir, RecoverySchema(),
                                             Factory(relational), options);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    replayed = (*store)->recovery_info().records_replayed;
    benchmark::DoNotOptimize(replayed);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(replayed));
  const std::string label = std::string("RecoveryReplay/") +
                            (relational ? "relational" : "graphstore");
  BenchJson::Instance().Counter(label, "records_replayed",
                                static_cast<double>(replayed));
  if (seconds > 0 && state.iterations() > 0) {
    BenchJson::Instance().Counter(
        label, "replay_elements_per_s",
        static_cast<double>(state.iterations()) *
            static_cast<double>(replayed) / seconds);
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoveryReplay)->Arg(0)->Arg(1)->ArgName("relational");

// ---- Checkpoint save / cold-start load ----

void BM_CheckpointSave(benchmark::State& state) {
  const std::string dir = FreshDir("ckpt_save");
  persist::DurableOptions options;
  options.fsync_policy = persist::FsyncPolicy::kNone;
  auto store = persist::DurableStore::Open(dir, RecoverySchema(),
                                           Factory(false), options);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  Ingest((*store)->db(), NumElements());
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    if (!(*store)->Checkpoint().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(NumElements()));
  BenchJson::Instance().Counter("CheckpointSave", "elements",
                                static_cast<double>(NumElements()));
  if (state.iterations() > 0) {
    BenchJson::Instance().Counter(
        "CheckpointSave", "save_ms",
        seconds * 1e3 / static_cast<double>(state.iterations()));
  }
  store->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointSave);

void BM_CheckpointLoad(benchmark::State& state) {
  const std::string dir = FreshDir("ckpt_load");
  persist::DurableOptions options;
  options.fsync_policy = persist::FsyncPolicy::kNone;
  {
    auto store = persist::DurableStore::Open(dir, RecoverySchema(),
                                             Factory(false), options);
    if (!store.ok()) {
      state.SkipWithError(store.status().ToString().c_str());
      return;
    }
    Ingest((*store)->db(), NumElements());
    if (!(*store)->Checkpoint().ok()) {
      state.SkipWithError("checkpoint failed");
      return;
    }
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    auto store = persist::DurableStore::Open(dir, RecoverySchema(),
                                             Factory(false), options);
    if (!store.ok() || !(*store)->recovery_info().restored_checkpoint) {
      state.SkipWithError("cold start did not restore the checkpoint");
      return;
    }
    benchmark::DoNotOptimize((*store)->db().backend().VersionCount());
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(NumElements()));
  BenchJson::Instance().Counter("CheckpointLoad", "elements",
                                static_cast<double>(NumElements()));
  if (state.iterations() > 0) {
    BenchJson::Instance().Counter(
        "CheckpointLoad", "load_ms",
        seconds * 1e3 / static_cast<double>(state.iterations()));
  }
  fs::remove_all(dir);
}
BENCHMARK(BM_CheckpointLoad);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("recovery_replay");
