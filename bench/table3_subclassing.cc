// Section 6 subclassing re-evaluation (in-text table).
//
// The paper reloads the legacy graph with 66 edge subclasses (one per
// type_indicator value) and re-runs the two slowest queries:
//   reverse service path:  9.844s -> 8.390s  (modest improvement)
//   bottom-up:             0.672s -> 0.049s  (interactive!)
// The per-class table partitioning automatically eliminates irrelevant
// edges from the navigation joins; the reverse path is dominated by
// *relevant* fanout, so it improves only modestly.
//
// This binary builds both loads and benchmarks the same instances on each.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct Load {
  netmodel::LegacyNetwork net;
  std::unique_ptr<nql::QueryEngine> engine;
  InstanceSet reverse_path, bottomup;
};

struct Table3Fixture {
  Load single, subclassed;

  static void Build(bool subclassed, Load* load) {
    netmodel::LegacyParams params;
    params.num_devices = EnvInt("NEPAL_BENCH_LEGACY_DEVICES", 1000);
    params.subclassed = subclassed;
    params.history_days = 0;  // the re-evaluation is about the snapshot
    auto built = BuildLegacyNetwork(params, RelationalFactory());
    if (!built.ok()) {
      std::fprintf(stderr, "table3 setup: %s\n",
                   built.status().ToString().c_str());
      std::abort();
    }
    load->net = std::move(*built);
    load->engine = std::make_unique<nql::QueryEngine>(load->net.db.get());

    const std::string hop = load->net.EdgeAtom("service_hop");
    const std::string contains = load->net.EdgeAtom("contains");
    Rng rng(31337);

    for (Uid egress : load->net.egress_ports) {
      load->reverse_path.queries.push_back(
          "Retrieve P From PATHS P Where P MATCHES "
          "legacy_node(type_indicator='port')->[" +
          hop + "]{1,4}->legacy_node(name='" +
          NameOf(*load->net.db, egress) + "')");
    }
    std::vector<std::string> candidates;
    size_t want = static_cast<size_t>(NumInstances());
    for (size_t i = 0; i < 4 * want; ++i) {
      std::string port;
      if (i % 3 == 0 && !load->net.hub_devices.empty()) {
        Uid dev =
            load->net.hub_devices[rng.Below(load->net.hub_devices.size())];
        port = NameOf(*load->net.db, dev) + "-sh0-c0-p" + std::to_string(rng.Below(4));
      } else {
        port = NameOf(*load->net.db,
                      load->net.ports[rng.Below(load->net.ports.size())]);
      }
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES "
          "legacy_node(type_indicator='device')->[" +
          contains + "]{1,3}->legacy_node(name='" + port +
          "', type_indicator='port')");
    }
    load->bottomup = SampleNonEmpty(*load->engine, candidates, want);
  }

  Table3Fixture() {
    Build(false, &single);
    Build(true, &subclassed);
    std::fprintf(stderr, "[table3] single-class: %zu edges; subclassed: %zu "
                         "edges over %d classes\n",
                 single.net.db->edge_count(),
                 subclassed.net.db->edge_count(),
                 netmodel::kLegacyEdgeTypes);
  }
};

Table3Fixture& Fixture() {
  static Table3Fixture* fixture = new Table3Fixture();
  return *fixture;
}

void RunInstances(benchmark::State& state, const char* label,
                  const Load& load, const InstanceSet& set) {
  if (set.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  BenchJson::Instance().Begin(label, load.net.db->backend().name(),
                              set.queries.front());
  size_t i = 0;
  size_t paths = 0;
  for (auto _ : state) {
    paths += MustRun(*load.engine, set.Next(i++));
  }
  state.counters["paths"] =
      static_cast<double>(paths) / static_cast<double>(i);
}

void BM_Table3_ReversePath_SingleClass(benchmark::State& state) {
  RunInstances(state, "Table3_ReversePath_SingleClass", Fixture().single,
               Fixture().single.reverse_path);
}
BENCHMARK(BM_Table3_ReversePath_SingleClass)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(4);

void BM_Table3_ReversePath_Subclassed(benchmark::State& state) {
  RunInstances(state, "Table3_ReversePath_Subclassed", Fixture().subclassed,
               Fixture().subclassed.reverse_path);
}
BENCHMARK(BM_Table3_ReversePath_Subclassed)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(4);

void BM_Table3_BottomUp_SingleClass(benchmark::State& state) {
  RunInstances(state, "Table3_BottomUp_SingleClass", Fixture().single,
               Fixture().single.bottomup);
}
BENCHMARK(BM_Table3_BottomUp_SingleClass)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(50);

void BM_Table3_BottomUp_Subclassed(benchmark::State& state) {
  RunInstances(state, "Table3_BottomUp_Subclassed", Fixture().subclassed,
               Fixture().subclassed.bottomup);
}
BENCHMARK(BM_Table3_BottomUp_Subclassed)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(50);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("table3_subclassing");
