// History-depth sweep (figure-style ablation).
//
// The paper's claim that "queries on the full history are only moderately
// slower than queries on the current snapshot" is a point measurement at
// 60 days; this sweep characterizes the curve: snapshot-query and
// timeslice-query latency as the stored history deepens (0, 30, 60, 120
// days of churn), plus the version-count growth. Run on the virtualized
// service graph / relational backend.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct DepthLoad {
  netmodel::VirtualizedNetwork net;
  std::unique_ptr<nql::QueryEngine> engine;
  InstanceSet topdown;
};

DepthLoad& LoadFor(int days) {
  static std::map<int, DepthLoad>* loads = new std::map<int, DepthLoad>();
  auto it = loads->find(days);
  if (it != loads->end()) return it->second;
  DepthLoad& load = (*loads)[days];
  netmodel::VirtualizedParams params;
  params.history_days = days;
  auto built = BuildVirtualizedNetwork(params, RelationalFactory());
  if (!built.ok()) std::abort();
  load.net = std::move(*built);
  load.engine = std::make_unique<nql::QueryEngine>(load.net.db.get());
  std::vector<std::string> candidates;
  for (Uid vnf : load.net.vnfs) {
    candidates.push_back(
        "Retrieve P From PATHS P Where P MATCHES VNF(id=" +
        std::to_string(vnf) + ")->[Vertical()]{1,6}->Host()");
  }
  load.topdown = SampleNonEmpty(*load.engine, candidates, candidates.size());
  return load;
}

void BM_HistoryDepth_Snapshot(benchmark::State& state) {
  DepthLoad& load = LoadFor(static_cast<int>(state.range(0)));
  if (load.topdown.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  BenchJson::Instance().Begin(
      "HistoryDepth_Snapshot/days:" + std::to_string(state.range(0)),
      load.net.db->backend().name(), load.topdown.queries.front());
  size_t i = 0;
  for (auto _ : state) {
    MustRun(*load.engine, load.topdown.Next(i++));
  }
  state.counters["versions"] =
      static_cast<double>(load.net.db->backend().VersionCount());
}
BENCHMARK(BM_HistoryDepth_Snapshot)
    ->Arg(0)->Arg(30)->Arg(60)->Arg(120)
    ->ArgName("days")
    ->Unit(benchmark::kMillisecond);

void BM_HistoryDepth_Timeslice(benchmark::State& state) {
  DepthLoad& load = LoadFor(static_cast<int>(state.range(0)));
  if (load.topdown.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  // Slice in the middle of the recorded history.
  Timestamp mid =
      load.net.snapshot_time +
      (load.net.end_time - load.net.snapshot_time) / 2;
  BenchJson::Instance().Begin(
      "HistoryDepth_Timeslice/days:" + std::to_string(state.range(0)),
      load.net.db->backend().name(),
      OnHistory(load.topdown.queries.front(), mid));
  size_t i = 0;
  for (auto _ : state) {
    MustRun(*load.engine, OnHistory(load.topdown.Next(i++), mid));
  }
  state.counters["versions"] =
      static_cast<double>(load.net.db->backend().VersionCount());
}
BENCHMARK(BM_HistoryDepth_Timeslice)
    ->Arg(0)->Arg(30)->Arg(60)->Arg(120)
    ->ArgName("days")
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("history_depth_sweep");
