// Table 1 — query response times on the virtualized service graph.
//
// Reproduces the five query types of the paper's Table 1, each on the
// current snapshot and on the full history store:
//   Top-down     VNF(id=X) -> [Vertical()]{1,6} -> Host()        (33 inst.)
//   Bottom-up    VNF() -> [Vertical()]{1,6} -> Host(id=Y)
//   VM-VM (4)    VM(name=a) -> [virtual_connects()]{1,4} -> VM(name=b)
//   Host-Host(4) Host(name=a) -> [connects()]{1,4} -> Host(name=b)
//   Host-Host(6) same pairs with {1,6}
//
// The `paths` counter is the average number of pathways per instance
// (zero-path instances excluded, as in the paper). Runs on the relational
// backend, matching the paper's PostgreSQL measurements.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

namespace nepal::bench {
namespace {

struct Table1Fixture {
  netmodel::VirtualizedNetwork net;
  std::unique_ptr<nql::QueryEngine> engine;
  InstanceSet topdown, bottomup, vmvm, hosthost4, hosthost6;

  Table1Fixture() {
    netmodel::VirtualizedParams params;
    auto built = BuildVirtualizedNetwork(params, RelationalFactory());
    if (!built.ok()) {
      std::fprintf(stderr, "table1 setup: %s\n",
                   built.status().ToString().c_str());
      std::abort();
    }
    net = std::move(*built);
    engine = std::make_unique<nql::QueryEngine>(net.db.get());
    std::fprintf(stderr,
                 "[table1] virtualized graph: %zu nodes, %zu edges, history "
                 "+%.1f%% versions\n",
                 net.db->node_count(), net.db->edge_count(),
                 100.0 *
                     static_cast<double>(net.final_version_count -
                                         net.initial_version_count) /
                     static_cast<double>(net.initial_version_count));

    size_t want = static_cast<size_t>(NumInstances());
    Rng rng(99);

    // Top-down: one instance per distinct VNF (33 in the paper).
    std::vector<std::string> candidates;
    for (Uid vnf : net.vnfs) {
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES VNF(id=" +
          std::to_string(vnf) + ")->[Vertical()]{1,6}->Host()");
    }
    topdown = SampleNonEmpty(*engine, candidates, candidates.size());

    // Bottom-up: anchored at the host end.
    candidates.clear();
    for (size_t i = 0; i < net.hosts.size(); ++i) {
      Uid host = net.hosts[rng.Below(net.hosts.size())];
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES "
          "VNF()->[Vertical()]{1,6}->Host(id=" +
          std::to_string(host) + ")");
    }
    bottomup = SampleNonEmpty(*engine, candidates, want);

    // VM-VM (4): pairs sampled from VMs sharing virtual-network
    // neighbourhoods (random pairs, zero-path pairs skipped).
    candidates.clear();
    for (int i = 0; i < 400; ++i) {
      const std::string a = NameOf(*net.db, net.vms[rng.Below(net.vms.size())]);
      const std::string b = NameOf(*net.db, net.vms[rng.Below(net.vms.size())]);
      if (a == b) continue;
      candidates.push_back(
          "Retrieve P From PATHS P Where P MATCHES VM(name='" + a +
          "')->[virtual_connects()]{1,4}->VM(name='" + b + "')");
    }
    vmvm = SampleNonEmpty(*engine, candidates, want);

    // Host-Host (4) and (6): the same pairs, radius expanded by two.
    std::vector<std::string> pairs4, pairs6;
    for (int i = 0; i < 600 && pairs4.size() < 2 * want; ++i) {
      size_t ai = rng.Below(net.hosts.size());
      size_t bi = rng.Below(net.hosts.size());
      if (ai == bi) continue;
      const std::string a = NameOf(*net.db, net.hosts[ai]);
      const std::string b = NameOf(*net.db, net.hosts[bi]);
      pairs4.push_back("Retrieve P From PATHS P Where P MATCHES Host(name='" +
                       a + "')->[connects()]{1,4}->Host(name='" + b + "')");
      pairs6.push_back("Retrieve P From PATHS P Where P MATCHES Host(name='" +
                       a + "')->[connects()]{1,6}->Host(name='" + b + "')");
    }
    hosthost4 = SampleNonEmpty(*engine, pairs4, want);
    // Host-Host(6) is expensive; a handful of instances characterizes it.
    hosthost6 = SampleNonEmpty(*engine, pairs6, std::min<size_t>(want, 8));
  }
};

Table1Fixture& Fixture() {
  static Table1Fixture* fixture = new Table1Fixture();
  return *fixture;
}

void RunInstances(benchmark::State& state, const char* label,
                  const InstanceSet& set, bool history) {
  Table1Fixture& fx = Fixture();
  if (set.queries.empty()) {
    state.SkipWithError("no non-empty instances sampled");
    return;
  }
  BenchJson::Instance().Begin(
      label, fx.net.db->backend().name(),
      history ? OnHistory(set.queries.front(), fx.net.end_time)
              : set.queries.front());
  size_t i = 0;
  size_t paths = 0;
  for (auto _ : state) {
    const std::string& q = set.Next(i++);
    paths += MustRun(*fx.engine,
                     history ? OnHistory(q, fx.net.end_time) : q);
  }
  state.counters["paths"] =
      static_cast<double>(paths) / static_cast<double>(i);
  state.counters["instances"] = static_cast<double>(set.queries.size());
}

#define TABLE1_BENCH(name, member)                              \
  void BM_##name##_Snapshot(benchmark::State& state) {          \
    RunInstances(state, #name "_Snapshot", Fixture().member,    \
                 /*history=*/false);                            \
  }                                                             \
  BENCHMARK(BM_##name##_Snapshot)->Unit(benchmark::kMillisecond); \
  void BM_##name##_History(benchmark::State& state) {           \
    RunInstances(state, #name "_History", Fixture().member,     \
                 /*history=*/true);                             \
  }                                                             \
  BENCHMARK(BM_##name##_History)->Unit(benchmark::kMillisecond)

TABLE1_BENCH(Table1_TopDown, topdown);
TABLE1_BENCH(Table1_BottomUp, bottomup);
TABLE1_BENCH(Table1_VmVm4, vmvm);
TABLE1_BENCH(Table1_HostHost4, hosthost4);
TABLE1_BENCH(Table1_HostHost6, hosthost6);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("table1_virtualized");
