// Tracing overhead microbenchmark (obs/trace.h on the ApplyBatch path):
//
//   - TraceOverhead/off   — tracing disabled; the fast path must be a
//     single thread-local null check. This configuration is the CI bar:
//     its mutations/s must stay within 5% of the untraced batch-ingest
//     baseline (BatchIngest/always/batch128 from batch_ingest.cc, run in
//     the same bench-smoke job), and it must record zero spans.
//   - TraceOverhead/slow  — slow-keep armed with an unreachably high
//     threshold: every commit records spans, none are kept.
//   - TraceOverhead/on    — sample_rate 1.0: every commit records and
//     keeps a full span tree.
//
// Each mode mirrors the batch-128 / fsync-always ingest loop, so the
// numbers are directly comparable. Results land in
// BENCH_trace_overhead.json with mutations_per_s and spans_recorded
// counters per mode.

#include <chrono>
#include <filesystem>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "obs/trace.h"
#include "persist/durable_store.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace nepal::bench {
namespace {

namespace fs = std::filesystem;

schema::SchemaPtr IngestSchema() {
  static schema::SchemaPtr schema = [] {
    auto s = schema::ParseSchemaDsl(R"(
      node Host : Node { serial: string; }
      node VM : Node { status: string; }
      edge OnServer : Edge {}
      allow OnServer (VM -> Host);
    )");
    if (!s.ok()) std::abort();
    return *s;
  }();
  return schema;
}

std::string FreshDir(const std::string& name) {
  fs::path dir = fs::temp_directory_path() / ("nepal_bench_" + name);
  fs::remove_all(dir);
  return dir.string();
}

persist::BackendFactory Factory() {
  return [](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
    return std::make_unique<graphstore::GraphStore>(std::move(s));
  };
}

std::vector<storage::Mutation> NodeBatch(size_t batch, size_t serial) {
  std::vector<storage::Mutation> muts;
  muts.reserve(batch);
  for (size_t i = 0; i < batch; ++i) {
    const std::string tag = std::to_string(serial) + "_" + std::to_string(i);
    muts.push_back(storage::Mutation::AddNode(
        "VM", {{"name", Value("vm" + tag)}, {"status", Value("up")}}));
  }
  return muts;
}

enum class TraceMode { kOff = 0, kSlowOnly = 1, kOn = 2 };

const char* ModeName(TraceMode mode) {
  switch (mode) {
    case TraceMode::kOff: return "off";
    case TraceMode::kSlowOnly: return "slow";
    case TraceMode::kOn: return "on";
  }
  return "?";
}

obs::Tracer::Options ModeOptions(TraceMode mode) {
  obs::Tracer::Options options;
  switch (mode) {
    case TraceMode::kOff:
      break;  // sample_rate 0, slow_keep_ns 0: tracing fully off
    case TraceMode::kSlowOnly:
      // Record every commit's spans but keep none: an unreachably high
      // slow threshold isolates the recording cost from ring churn.
      options.slow_keep_ns = 3600ull * 1000 * 1000 * 1000;
      break;
    case TraceMode::kOn:
      options.sample_rate = 1.0;
      break;
  }
  options.ring_capacity = 32;
  return options;
}

void BM_TraceOverhead(benchmark::State& state) {
  const auto mode = static_cast<TraceMode>(state.range(0));
  constexpr size_t kBatch = 128;
  const std::string dir =
      FreshDir(std::string("trace_overhead_") + ModeName(mode));
  persist::DurableOptions options;
  options.fsync_policy = persist::FsyncPolicy::kAlways;
  auto store =
      persist::DurableStore::Open(dir, IngestSchema(), Factory(), options);
  if (!store.ok()) {
    state.SkipWithError(store.status().ToString().c_str());
    return;
  }
  storage::GraphDb& db = (*store)->db();
  if (!db.SetTime(1500000000000000).ok()) {
    state.SkipWithError("SetTime failed");
    return;
  }
  obs::Tracer::Global().Configure(ModeOptions(mode));
  const obs::Tracer::Stats before = obs::Tracer::Global().stats();
  size_t serial = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (auto _ : state) {
    std::vector<storage::Mutation> muts = NodeBatch(kBatch, serial++);
    if (!db.ApplyBatch(muts).ok()) {
      state.SkipWithError("ApplyBatch failed");
      return;
    }
    benchmark::DoNotOptimize(muts[0].uid);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const obs::Tracer::Stats after = obs::Tracer::Global().stats();
  // Leave the tracer off for whatever runs after this benchmark.
  obs::Tracer::Global().Configure(obs::Tracer::Options{});

  const double mutations =
      static_cast<double>(state.iterations()) * static_cast<double>(kBatch);
  state.SetItemsProcessed(static_cast<int64_t>(mutations));
  const std::string label = std::string("TraceOverhead/") + ModeName(mode);
  BenchJson::Instance().Counter(label, "batch_size",
                                static_cast<double>(kBatch));
  if (seconds > 0) {
    BenchJson::Instance().Counter(label, "mutations_per_s",
                                  mutations / seconds);
  }
  BenchJson::Instance().Counter(
      label, "spans_recorded",
      static_cast<double>(after.spans - before.spans));
  BenchJson::Instance().Counter(
      label, "traces_kept", static_cast<double>(after.kept - before.kept));
  store->reset();
  fs::remove_all(dir);
}
BENCHMARK(BM_TraceOverhead)
    ->Arg(static_cast<int>(TraceMode::kOff))
    ->Arg(static_cast<int>(TraceMode::kSlowOnly))
    ->Arg(static_cast<int>(TraceMode::kOn))
    ->ArgName("mode")
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace nepal::bench

NEPAL_BENCH_MAIN("trace_overhead");
