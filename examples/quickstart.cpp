// Quickstart: define a schema, load a small inventory, ask path questions.
//
//   $ ./build/examples/quickstart
//   $ ./build/examples/quickstart --data-dir /tmp/nepal-data   # durable
//
// Walks through the core Nepal workflow:
//   1. parse a TOSCA-flavoured schema (strongly-typed node/edge classes),
//   2. open a GraphDb on an execution backend — with --data-dir, behind
//      the durability layer (WAL + checkpoints; a second run recovers the
//      inventory instead of re-inserting it),
//   3. insert nodes and edges (validated against the schema),
//   4. run NQL pathway queries, including the paper's generic
//      VNF -> ... -> Host navigation,
//   5. inspect the query plan with Explain.

#include <cstdio>
#include <cstring>
#include <memory>

#include "graphstore/graph_store.h"
#include "nepal/engine.h"
#include "persist/durable_store.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace {

constexpr const char* kSchema = R"(
node VNF : Node {}
node DNS : VNF {}
node VFC : Node {}
node VM : Node { status: string; }
node Host : Node { serial: string unique; }

edge Vertical : Edge {}
edge composed_of : Vertical {}
edge hosted_on : Vertical {}
edge on_server : Vertical {}
edge connects : Edge {}

allow composed_of (VNF -> VFC);
allow hosted_on (VFC -> VM);
allow on_server (VM -> Host);
allow connects (Host -> Host);
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace nepal;
  std::string data_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    }
  }

  // 1. Schema.
  auto schema = schema::ParseSchemaDsl(kSchema);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  auto die = [](const Status& st) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  };

  // 2. Database on the property-graph backend (swap in
  //    relational::RelationalStore for the relational one — queries are
  //    backend-agnostic). With --data-dir, the durability layer wraps the
  //    database: writes go to a write-ahead log and a rerun recovers them.
  std::unique_ptr<storage::GraphDb> mem_db;
  std::unique_ptr<persist::DurableStore> store;
  bool fresh = true;
  if (!data_dir.empty()) {
    auto opened = persist::DurableStore::Open(
        data_dir, *schema, [](schema::SchemaPtr s) {
          return std::make_unique<graphstore::GraphStore>(std::move(s));
        });
    if (!opened.ok()) die(opened.status());
    store = std::move(*opened);
    const persist::RecoveryInfo& info = store->recovery_info();
    fresh = !info.restored_checkpoint && info.records_replayed == 0;
    std::printf("durable mode: %s (%zu record(s) replayed%s)\n\n",
                data_dir.c_str(), info.records_replayed,
                info.restored_checkpoint ? ", checkpoint restored" : "");
  } else {
    mem_db = std::make_unique<storage::GraphDb>(
        *schema, std::make_unique<graphstore::GraphStore>(*schema));
  }
  storage::GraphDb& db = store ? store->db() : *mem_db;

  // 3. A miniature deployment: one DNS VNF on two hosts.
  if (fresh) {
  auto node = [&](const char* cls, const char* name,
                  schema::FieldValues extra = {}) {
    extra.emplace_back("name", Value(name));
    auto r = db.AddNode(cls, extra);
    if (!r.ok()) die(r.status());
    return *r;
  };
  Uid vnf = node("DNS", "dns-east");
  Uid vfc1 = node("VFC", "resolver");
  Uid vfc2 = node("VFC", "cache");
  Uid vm1 = node("VM", "vm-1", {{"status", Value("Green")}});
  Uid vm2 = node("VM", "vm-2", {{"status", Value("Red")}});
  Uid host1 = node("Host", "host-1", {{"serial", Value("SN001")}});
  Uid host2 = node("Host", "host-2", {{"serial", Value("SN002")}});

  auto edge = [&](const char* cls, Uid s, Uid t) {
    auto r = db.AddEdge(cls, s, t, {});
    if (!r.ok()) die(r.status());
  };
  edge("composed_of", vnf, vfc1);
  edge("composed_of", vnf, vfc2);
  edge("hosted_on", vfc1, vm1);
  edge("hosted_on", vfc2, vm2);
  edge("on_server", vm1, host1);
  edge("on_server", vm2, host2);
  edge("connects", host1, host2);
  edge("connects", host2, host1);

  // The schema keeps garbage out: a VFC cannot run directly on a Host.
  auto rejected = db.AddEdge("on_server", vfc1, host1, {});
  std::printf("inserting VFC -on_server-> Host: %s\n\n",
              rejected.status().ToString().c_str());
  } else {
    std::printf("inventory recovered from %s; skipping inserts\n\n",
                data_dir.c_str());
  }

  // 4. Pathway queries.
  nql::QueryEngine engine(&db);
  auto run = [&](const char* title, const std::string& query) {
    std::printf("-- %s\n   %s\n", title, query.c_str());
    auto result = engine.Run(query);
    if (!result.ok()) die(result.status());
    std::printf("%s\n", result->ToString().c_str());
  };

  run("Which hosts does the DNS VNF depend on? (generic Vertical walk)",
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()");

  run("Shared fate: what is affected if host-2 fails?",
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host(serial='SN002')");

  run("Post-processing with Select: names of red VMs and their hosts",
      "Select source(P).name, target(P).name From PATHS P "
      "Where P MATCHES VM(status='Red')->Host()");

  // 5. Look at the plan: the serial-constrained Host atom is the anchor
  //    and the traversal runs backwards from it.
  auto plan = engine.Explain(
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host(serial='SN002')");
  if (!plan.ok()) die(plan.status());
  std::printf("-- Explain\n%s\n", plan->c_str());
  return 0;
}
