// Quickstart: define a schema, load a small inventory, ask path questions.
//
//   $ ./build/examples/quickstart
//
// Walks through the core Nepal workflow:
//   1. parse a TOSCA-flavoured schema (strongly-typed node/edge classes),
//   2. open a GraphDb on an execution backend,
//   3. insert nodes and edges (validated against the schema),
//   4. run NQL pathway queries, including the paper's generic
//      VNF -> ... -> Host navigation,
//   5. inspect the query plan with Explain.

#include <cstdio>

#include "graphstore/graph_store.h"
#include "nepal/engine.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace {

constexpr const char* kSchema = R"(
node VNF : Node {}
node DNS : VNF {}
node VFC : Node {}
node VM : Node { status: string; }
node Host : Node { serial: string unique; }

edge Vertical : Edge {}
edge composed_of : Vertical {}
edge hosted_on : Vertical {}
edge on_server : Vertical {}
edge connects : Edge {}

allow composed_of (VNF -> VFC);
allow hosted_on (VFC -> VM);
allow on_server (VM -> Host);
allow connects (Host -> Host);
)";

}  // namespace

int main() {
  using namespace nepal;

  // 1. Schema.
  auto schema = schema::ParseSchemaDsl(kSchema);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema error: %s\n",
                 schema.status().ToString().c_str());
    return 1;
  }

  // 2. Database on the property-graph backend (swap in
  //    relational::RelationalStore for the relational one — queries are
  //    backend-agnostic).
  storage::GraphDb db(*schema,
                      std::make_unique<graphstore::GraphStore>(*schema));

  // 3. A miniature deployment: one DNS VNF on two hosts.
  auto die = [](const Status& st) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  };
  auto node = [&](const char* cls, const char* name,
                  schema::FieldValues extra = {}) {
    extra.emplace_back("name", Value(name));
    auto r = db.AddNode(cls, extra);
    if (!r.ok()) die(r.status());
    return *r;
  };
  Uid vnf = node("DNS", "dns-east");
  Uid vfc1 = node("VFC", "resolver");
  Uid vfc2 = node("VFC", "cache");
  Uid vm1 = node("VM", "vm-1", {{"status", Value("Green")}});
  Uid vm2 = node("VM", "vm-2", {{"status", Value("Red")}});
  Uid host1 = node("Host", "host-1", {{"serial", Value("SN001")}});
  Uid host2 = node("Host", "host-2", {{"serial", Value("SN002")}});

  auto edge = [&](const char* cls, Uid s, Uid t) {
    auto r = db.AddEdge(cls, s, t, {});
    if (!r.ok()) die(r.status());
  };
  edge("composed_of", vnf, vfc1);
  edge("composed_of", vnf, vfc2);
  edge("hosted_on", vfc1, vm1);
  edge("hosted_on", vfc2, vm2);
  edge("on_server", vm1, host1);
  edge("on_server", vm2, host2);
  edge("connects", host1, host2);
  edge("connects", host2, host1);

  // The schema keeps garbage out: a VFC cannot run directly on a Host.
  auto rejected = db.AddEdge("on_server", vfc1, host1, {});
  std::printf("inserting VFC -on_server-> Host: %s\n\n",
              rejected.status().ToString().c_str());

  // 4. Pathway queries.
  nql::QueryEngine engine(&db);
  auto run = [&](const char* title, const std::string& query) {
    std::printf("-- %s\n   %s\n", title, query.c_str());
    auto result = engine.Run(query);
    if (!result.ok()) die(result.status());
    std::printf("%s\n", result->ToString().c_str());
  };

  run("Which hosts does the DNS VNF depend on? (generic Vertical walk)",
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host()");

  run("Shared fate: what is affected if host-2 fails?",
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host(serial='SN002')");

  run("Post-processing with Select: names of red VMs and their hosts",
      "Select source(P).name, target(P).name From PATHS P "
      "Where P MATCHES VM(status='Red')->Host()");

  // 5. Look at the plan: the serial-constrained Host atom is the anchor
  //    and the traversal runs backwards from it.
  auto plan = engine.Explain(
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host(serial='SN002')");
  if (!plan.ok()) die(plan.status());
  std::printf("-- Explain\n%s\n", plan->c_str());
  return 0;
}
