# Demo schema for the Nepal shell: the Figure-3 style underlay/overlay.
node VNF : Node { vnf_type: string; }
node VFC : Node {}
node VM : Node { status: string; }
node Host : Node { serial: string unique; }
node Switch : Node {}

edge Vertical : Edge {}
edge composed_of : Vertical {}
edge hosted_on : Vertical {}
edge on_server : Vertical {}
edge connects : Edge { bandwidth: int; }

allow composed_of (VNF -> VFC);
allow hosted_on (VFC -> VM);
allow on_server (VM -> Host);
allow connects (Host -> Switch);
allow connects (Switch -> Host);
allow connects (Switch -> Switch);
