// Service-path analysis on a generated virtualized network (Section 2.3).
//
//   $ ./build/examples/service_paths
//
// Uses the layered-model workload generator to build a realistic
// multi-layer inventory, then demonstrates the path calculations the paper
// motivates:
//   - service dependency footprint (VNF -> physical servers),
//   - shared fate (which VNFs a failing host takes down),
//   - induced physical path between two VNFs (the paper's join example,
//     with the Phys variable's anchor imported from the joined variables),
//   - route calculation with the path count by length.

#include <cstdio>
#include <map>

#include "nepal/engine.h"
#include "netmodel/virtualized.h"
#include "relational/relational_store.h"

int main() {
  using namespace nepal;

  netmodel::VirtualizedParams params;
  params.history_days = 0;
  auto net = netmodel::BuildVirtualizedNetwork(
      params, [](schema::SchemaPtr s) {
        return std::make_unique<relational::RelationalStore>(std::move(s));
      });
  if (!net.ok()) {
    std::fprintf(stderr, "generator: %s\n", net.status().ToString().c_str());
    return 1;
  }
  std::printf("generated layered network: %zu nodes, %zu edges\n\n",
              net->db->node_count(), net->db->edge_count());

  nql::QueryEngine engine(net->db.get());
  auto die = [](const Status& st) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  };

  // ---- 1. Dependency footprint of one VNF ----
  Uid vnf = net->vnfs[0];
  auto footprint = engine.Run(
      "Select target(P).name From PATHS P Where P MATCHES VNF(id=" +
      std::to_string(vnf) + ")->[Vertical()]{1,6}->Host()");
  if (!footprint.ok()) die(footprint.status());
  std::map<std::string, int> hosts;
  for (const auto& row : footprint->rows) {
    hosts[row.values[0].ToString()]++;
  }
  std::printf("-- VNF #%llu runs on %zu distinct hosts (%zu paths)\n",
              static_cast<unsigned long long>(vnf), hosts.size(),
              footprint->rows.size());

  // ---- 2. Shared fate of a host ----
  std::string host_name = hosts.begin()->first;  // quoted 'host-N'
  host_name = host_name.substr(1, host_name.size() - 2);
  auto fate = engine.Run(
      "Select source(P).name From PATHS P Where P MATCHES "
      "VNF()->[Vertical()]{1,6}->Host(name='" + host_name + "')");
  if (!fate.ok()) die(fate.status());
  std::map<std::string, int> vnfs;
  for (const auto& row : fate->rows) vnfs[row.values[0].ToString()]++;
  std::printf("-- if %s fails, %zu VNFs are affected:", host_name.c_str(),
              vnfs.size());
  for (const auto& [name, count] : vnfs) std::printf(" %s", name.c_str());
  std::printf("\n");

  // ---- 3. Induced physical path between two VNFs (join query) ----
  // The Phys variable has no selective atom of its own; its anchors are
  // imported from D1 and D2 through the endpoint joins — exactly the
  // paper's Section 3.4 example.
  Uid vnf2 = net->vnfs[1];
  std::string join_query =
      "Retrieve Phys From PATHS D1, PATHS D2, PATHS Phys "
      "Where D1 MATCHES VNF(id=" + std::to_string(vnf) +
      ")->[Vertical()]{1,6}->Host() "
      "And D2 MATCHES VNF(id=" + std::to_string(vnf2) +
      ")->[Vertical()]{1,6}->Host() "
      "And Phys MATCHES [connects()]{1,4} "
      "And source(Phys) = target(D1) "
      "And target(Phys) = target(D2)";
  auto induced = engine.Run(join_query);
  if (!induced.ok()) die(induced.status());
  std::printf(
      "-- induced physical paths between VNF #%llu and VNF #%llu: %zu\n",
      static_cast<unsigned long long>(vnf),
      static_cast<unsigned long long>(vnf2), induced->rows.size());
  if (!induced->rows.empty()) {
    std::printf("   e.g. %s\n",
                induced->rows[0].paths[0].ToString().c_str());
  }

  // ---- 4. Route calculation: paths by hop count ----
  std::string a = "host-1", b = "host-2";
  auto routes = engine.Run(
      "Select length(P) From PATHS P Where P MATCHES Host(name='" + a +
      "')->[connects()]{1,6}->Host(name='" + b + "')");
  if (!routes.ok()) die(routes.status());
  std::map<int64_t, int> by_length;
  for (const auto& row : routes->rows) {
    by_length[(row.values[0].AsInt() - 1) / 2]++;  // elements -> hops
  }
  std::printf("-- routes %s -> %s within 6 hops: %zu total\n", a.c_str(),
              b.c_str(), routes->rows.size());
  for (const auto& [hops, count] : by_length) {
    std::printf("   %lld hops: %d path(s)\n",
                static_cast<long long>(hops), count);
  }
  return 0;
}
