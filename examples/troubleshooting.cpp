// Troubleshooting with time travel (the paper's Section 4 scenario).
//
//   $ ./build/examples/troubleshooting
//
// "Dropped calls started at 10:00" — but it is 13:00 now and the network
// has already healed itself. The current snapshot looks fine; the engineer
// needs the 10:00 state:
//   - a timeslice query reconstructs the service's footprint at 10:00,
//   - a time-range query shows how the placement evolved,
//   - First/Last Time When Exists brackets the faulty configuration,
//   - a path-evolution query drills into the offending pathway.

#include <cstdio>

#include "nepal/engine.h"
#include "relational/relational_store.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"
#include "temporal/evolution.h"

namespace {

constexpr const char* kSchema = R"(
node VNF : Node {}
node VFC : Node {}
node VM : Node { status: string; }
node Host : Node { health: string; }
edge Vertical : Edge {}
edge composed_of : Vertical {}
edge hosted_on : Vertical {}
edge on_server : Vertical {}
allow composed_of (VNF -> VFC);
allow hosted_on (VFC -> VM);
allow on_server (VM -> Host);
)";

nepal::Timestamp Ts(const char* s) {
  auto r = nepal::ParseTimestamp(s);
  if (!r.ok()) std::abort();
  return *r;
}

}  // namespace

int main() {
  using namespace nepal;
  auto schema = schema::ParseSchemaDsl(kSchema);
  if (!schema.ok()) return 1;
  storage::GraphDb db(*schema,
                      std::make_unique<relational::RelationalStore>(*schema));
  auto die = [](const Status& st) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  };
  auto must = [&](auto result) {
    if (!result.ok()) die(result.status());
    return *result;
  };

  // ---- Build the timeline ----
  // 08:00 — voice-core VNF runs on host-a (healthy).
  (void)db.SetTime(Ts("2017-02-15 08:00"));
  Uid vnf = must(db.AddNode("VNF", {{"name", Value("voice-core")}}));
  Uid vfc = must(db.AddNode("VFC", {{"name", Value("media-gw")}}));
  Uid vm = must(db.AddNode(
      "VM", {{"name", Value("vm-7")}, {"status", Value("Green")}}));
  Uid host_a = must(db.AddNode(
      "Host", {{"name", Value("host-a")}, {"health", Value("ok")}}));
  Uid host_b = must(db.AddNode(
      "Host", {{"name", Value("host-b")}, {"health", Value("ok")}}));
  must(db.AddEdge("composed_of", vnf, vfc, {}));
  must(db.AddEdge("hosted_on", vfc, vm, {}));
  Uid placement_a = must(db.AddEdge("on_server", vm, host_a, {}));

  // 10:00 — host-a degrades; the orchestrator live-migrates vm-7 onto
  // host-b, which is ALSO degraded (the root cause of the dropped calls).
  (void)db.SetTime(Ts("2017-02-15 10:00"));
  if (auto st = db.UpdateElement(host_a, {{"health", Value("degraded")}});
      !st.ok()) {
    die(st);
  }
  if (auto st = db.UpdateElement(host_b, {{"health", Value("degraded")}});
      !st.ok()) {
    die(st);
  }
  if (auto st = db.RemoveElement(placement_a); !st.ok()) die(st);
  Uid placement_b = must(db.AddEdge("on_server", vm, host_b, {}));
  (void)placement_b;

  // 11:30 — host-b recovers; calls stop dropping.
  (void)db.SetTime(Ts("2017-02-15 11:30"));
  if (auto st = db.UpdateElement(host_b, {{"health", Value("ok")}}); !st.ok()) {
    die(st);
  }

  // 13:00 — now. Everything looks healthy.
  (void)db.SetTime(Ts("2017-02-15 13:00"));

  nql::QueryEngine engine(&db);
  auto run = [&](const char* title, const std::string& query) {
    std::printf("-- %s\n   %s\n", title, query.c_str());
    auto result = engine.Run(query);
    if (!result.ok()) die(result.status());
    std::printf("%s\n", result->ToString().c_str());
  };

  run("Current state (13:00): is voice-core on a degraded host? — no",
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF(name='voice-core')->[Vertical()]{1,4}->Host(health='degraded')");

  run("Timeslice at 10:00: the same question in the past — found it",
      "AT '2017-02-15 10:00' "
      "Retrieve P From PATHS P Where P MATCHES "
      "VNF(name='voice-core')->[Vertical()]{1,4}->Host(health='degraded')");

  run("Time range 08:00-13:00: every placement and when it held",
      "AT '2017-02-15 08:00' : '2017-02-15 13:00' "
      "Select target(P).name From PATHS P "
      "Where P MATCHES VM(name='vm-7')->Host()");

  run("Exactly when did the service sit on a degraded host?",
      "AT '2017-02-15 08:00' : '2017-02-15 13:00' "
      "When Exists Retrieve P From PATHS P Where P MATCHES "
      "VNF(name='voice-core')->[Vertical()]{1,4}->Host(health='degraded')");

  run("First moment of exposure (correlate with the alarm at 10:00)",
      "AT '2017-02-15 08:00' : '2017-02-15 13:00' "
      "First Time When Exists Retrieve P From PATHS P Where P MATCHES "
      "VNF(name='voice-core')->[Vertical()]{1,4}->Host(health='degraded')");

  // Path evolution: drill into the pathway the timeslice query returned.
  std::printf("-- Path evolution of vm-7 / host-b over the morning\n");
  temporal::PathEvolution evo = temporal::TrackPathEvolution(
      db.backend(), {vm, host_b},
      Interval{Ts("2017-02-15 08:00"), Ts("2017-02-15 13:00")});
  for (const auto& elem : evo.elements) {
    std::printf("  element #%llu (%s): existed %s\n",
                static_cast<unsigned long long>(elem.uid),
                elem.cls->name().c_str(), elem.existence.ToString().c_str());
    for (const auto& tr : elem.transitions) {
      for (const auto& change : tr.changes) {
        std::printf("    %s: %s -> %s at %s\n", change.field.c_str(),
                    change.before.ToString().c_str(),
                    change.after.ToString().c_str(),
                    FormatTimestamp(tr.at).c_str());
      }
    }
  }
  return 0;
}
