// nepal_shell — an interactive NQL shell.
//
//   $ ./build/examples/nepal_shell schema.dsl [feed.txt ...] [--relational]
//   nepal> Retrieve P From PATHS P Where P MATCHES VNF()->VFC();
//   nepal> .explain Select count(P) From PATHS P Where P MATCHES VM();
//   nepal> .help
//
// Loads a schema (Nepal schema DSL) and zero or more inventory feed files,
// then evaluates NQL queries from stdin (terminated by ';'). Dot-commands:
//   .help               this text
//   .schema             print the schema back as DSL
//   .stats              node/edge/version counts and memory use
//   .load <feed-file>   replay another feed file
//   .export             dump the current snapshot as a feed
//   .explain <query>;   show anchor choice, programs and backend trace
//   .quit               exit
// Observability commands:
//   \metrics [json]     dump the process-wide metrics registry
//   \timing             toggle per-query wall time + operator summary
//   \slow [json]        show the engine's slow-query log
//   \trace              list captured traces (queries and commits)
//   \trace json         dump the trace ring as JSON
//   \trace <id>         render one trace's span tree (hex trace id)
// Durability commands (src/persist):
//   \save <dir>         write a loadable snapshot of the current state
//   \load <dir>         open a data directory (recovers, then runs durably)
//   \checkpoint         rotate the WAL and write a checkpoint (durable mode)
// With --data-dir <dir> the shell opens the directory at startup (crash
// recovery included) and every subsequent write is logged to its WAL;
// --fsync always|interval|none picks the commit durability policy.
// Replication commands (src/replication):
//   --ship <addr>       (primary, needs --data-dir) serve the WAL to any
//                       number of followers. unix:<path> / tcp:<host>:<port>
//                       starts the fleet listener (resume, acks); a bare
//                       path keeps the legacy single-follower FIFO stream
//   --follow <addr>     (follower, needs --data-dir) bootstrap + tail the
//                       stream; socket addresses reconnect and resume,
//                       FIFO paths are single-shot. The shell is read-only
//   --name <name>       this follower's identity on the primary
//   --quorum <k>        (primary) semi-sync: each commit waits for k
//                       follower acks (degrades to async on timeout)
//   \replication        role, per-follower fleet table, lag, link status
//   \promote [<addr>]   stop applying and accept writes (failover); with
//                       an address, also start a fleet listener there so
//                       surviving followers can \repoint to this shell
//   \repoint <addr>     (socket follower) re-point at another primary
// Materialized views (src/views, durable mode only):
//   CREATE VIEW <name> AS <rpe> [AT '<time>'];   register + build a view
//   DROP VIEW <name>;   unregister a view
//   SERVE VIEW <name>;  answer from the cache (also: any matching query)
//   \views              list views with freshness/staleness and counters
// And EXPLAIN ANALYZE <query>; runs the query with per-operator stats.

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "graphstore/graph_store.h"
#include "nepal/engine.h"
#include "netmodel/feed.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/durable_store.h"
#include "relational/relational_store.h"
#include "replication/listener.h"
#include "replication/replica_store.h"
#include "replication/socket_util.h"
#include "replication/transport.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"
#include "views/view_catalog.h"

namespace {

void PrintHelp() {
  std::printf(
      "Enter NQL queries terminated by ';'. Dot-commands:\n"
      "  .help / .schema / .stats / .load <file> / .export / .quit\n"
      "  .explain <query>;   show the plan and executor trace\n"
      "Observability:\n"
      "  \\metrics [json]     dump the metrics registry (text or JSON)\n"
      "  \\timing             toggle per-query timing output\n"
      "  \\slow [json]        show the slow-query log (text or JSON)\n"
      "  \\trace              list captured traces (queries and commits)\n"
      "  \\trace json         dump the trace ring as JSON\n"
      "  \\trace <id>         render one trace's span tree (hex id)\n"
      "Durability:\n"
      "  \\save <dir>         write a loadable snapshot of the current state\n"
      "  \\load <dir>         open a data directory and switch to it\n"
      "  \\checkpoint         rotate the WAL and write a checkpoint\n"
      "Replication:\n"
      "  \\replication        role, per-follower fleet table, lag, status\n"
      "  \\promote [<addr>]   promote a follower to a writable primary\n"
      "                      (with <addr>: serve the fleet from there)\n"
      "  \\repoint <addr>     re-point a socket follower at a new primary\n"
      "Materialized views (durable mode):\n"
      "  CREATE VIEW <name> AS <rpe> [AT '<time>'];   register + build\n"
      "  DROP VIEW <name>;   unregister\n"
      "  SERVE VIEW <name>;  answer from the cache\n"
      "  \\views              list views (freshness, repairs, rebuilds)\n"
      "  EXPLAIN ANALYZE <query>;   per-operator execution stats\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nepal;
  bool relational = false;
  std::string data_dir;
  std::string ship_path;
  std::string follow_path;
  std::string follower_name = "follower";
  int quorum = 0;
  persist::DurableOptions durable_options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--relational") == 0) {
      relational = true;
    } else if (std::strcmp(argv[i], "--graphstore") == 0) {
      relational = false;
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && i + 1 < argc) {
      data_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--ship") == 0 && i + 1 < argc) {
      ship_path = argv[++i];
    } else if (std::strcmp(argv[i], "--follow") == 0 && i + 1 < argc) {
      follow_path = argv[++i];
    } else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) {
      follower_name = argv[++i];
    } else if (std::strcmp(argv[i], "--quorum") == 0 && i + 1 < argc) {
      quorum = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--fsync") == 0 && i + 1 < argc) {
      auto policy = persist::ParseFsyncPolicy(argv[++i]);
      if (!policy.ok()) {
        std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
        return 2;
      }
      durable_options.fsync_policy = *policy;
    } else {
      files.emplace_back(argv[i]);
    }
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "usage: nepal_shell <schema.dsl> [feed.txt ...] "
                 "[--relational|--graphstore] [--data-dir <dir>] "
                 "[--fsync always|interval|none] "
                 "[--ship <addr>] [--follow <addr>] "
                 "[--name <follower>] [--quorum <k>]\n"
                 "  <addr>: unix:<path> | tcp:<host>:<port> (fleet) or a "
                 "FIFO path (legacy single stream)\n");
    return 2;
  }
  if ((!ship_path.empty() || !follow_path.empty()) && data_dir.empty()) {
    std::fprintf(stderr, "--ship/--follow require --data-dir\n");
    return 2;
  }
  if (!ship_path.empty() && !follow_path.empty()) {
    std::fprintf(stderr, "--ship and --follow are mutually exclusive\n");
    return 2;
  }
  // The shipper writes into a pipe/FIFO; a follower hanging up must surface
  // as a write error on the pump thread, not kill the shell.
  if (!ship_path.empty()) signal(SIGPIPE, SIG_IGN);

  // Interactive volume is human-scale, so trace every request — the
  // `\trace` commands need material, and commit annotations must ride the
  // shipped frames for a follower to join.
  {
    obs::Tracer::Options trace_options;
    trace_options.sample_rate = 1.0;
    trace_options.ring_capacity = 64;
    obs::Tracer::Global().Configure(trace_options);
  }

  // Schema.
  std::string schema_text;
  {
    FILE* f = std::fopen(files[0].c_str(), "rb");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open schema file %s\n", files[0].c_str());
      return 2;
    }
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
      schema_text.append(buf, n);
    }
    std::fclose(f);
  }
  auto schema = schema::ParseSchemaDsl(schema_text);
  if (!schema.ok()) {
    std::fprintf(stderr, "%s\n", schema.status().ToString().c_str());
    return 1;
  }

  auto make_backend =
      [relational](schema::SchemaPtr s) -> std::unique_ptr<storage::StorageBackend> {
    if (relational) return std::make_unique<relational::RelationalStore>(std::move(s));
    return std::make_unique<graphstore::GraphStore>(std::move(s));
  };
  auto print_recovery = [](const persist::DurableStore& store) {
    const persist::RecoveryInfo& info = store.recovery_info();
    std::printf("data dir %s: %s, %zu record(s) replayed from %zu segment(s)%s\n",
                store.dir().c_str(),
                info.restored_checkpoint ? "checkpoint restored"
                                         : "no checkpoint",
                info.records_replayed, info.segments_replayed,
                info.torn_tail ? " (torn tail truncated)" : "");
  };

  std::unique_ptr<storage::GraphDb> mem_db;              // in-memory mode
  std::unique_ptr<persist::DurableStore> store;          // durable mode
  std::unique_ptr<replication::ReplicaStore> replica;    // follower mode
  std::unique_ptr<replication::WalShipper> shipper;      // legacy FIFO ship
  std::unique_ptr<replication::ReplicationListener> listener;  // fleet ship
  // Declared after `store`: the catalog tails the store's WAL and must be
  // destroyed (thread joined, subscription dropped) before the store.
  std::unique_ptr<views::ViewCatalog> views_catalog;     // durable mode
  storage::GraphDb* db = nullptr;
  if (!follow_path.empty()) {
    if (replication::LooksLikeSocketAddress(follow_path)) {
      auto address = replication::ParseSocketAddress(follow_path);
      if (!address.ok()) {
        std::fprintf(stderr, "%s\n", address.status().ToString().c_str());
        return 2;
      }
      std::printf("follower '%s': connecting to %s ...\n",
                  follower_name.c_str(), follow_path.c_str());
      std::fflush(stdout);
      replication::ConnectOptions connect_options;
      connect_options.replica.durable = durable_options;
      connect_options.name = follower_name;
      auto opened = replication::ReplicaStore::Connect(
          data_dir, *schema, make_backend, *address, connect_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
        return 1;
      }
      replica = std::move(*opened);
      std::printf("follower '%s': bootstrapped from the primary's "
                  "checkpoint; resumes across disconnects; read-only until "
                  "\\promote\n",
                  follower_name.c_str());
    } else {
      std::printf("follower: waiting for a primary on %s ...\n",
                  follow_path.c_str());
      std::fflush(stdout);
      int fd = ::open(follow_path.c_str(), O_RDONLY);
      if (fd < 0) {
        std::fprintf(stderr, "cannot open %s for reading\n",
                     follow_path.c_str());
        return 1;
      }
      replication::ReplicaOptions replica_options;
      replica_options.durable = durable_options;
      auto opened = replication::ReplicaStore::Open(
          data_dir, *schema, make_backend,
          std::make_unique<replication::FdTransport>(fd), replica_options);
      if (!opened.ok()) {
        std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
        return 1;
      }
      replica = std::move(*opened);
      std::printf("follower: bootstrapped from the primary's checkpoint; "
                  "read-only until \\promote\n");
    }
    db = &replica->db();
  } else if (!data_dir.empty()) {
    auto opened = persist::DurableStore::Open(data_dir, *schema, make_backend,
                                              durable_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
      return 1;
    }
    store = std::move(*opened);
    db = &store->db();
    print_recovery(*store);
    if (!ship_path.empty()) {
      if (replication::LooksLikeSocketAddress(ship_path)) {
        auto address = replication::ParseSocketAddress(ship_path);
        if (!address.ok()) {
          std::fprintf(stderr, "%s\n", address.status().ToString().c_str());
          return 2;
        }
        auto started = replication::ReplicationListener::Start(*store,
                                                               *address);
        if (!started.ok()) {
          std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
          return 1;
        }
        listener = std::move(*started);
        std::printf("primary: replication listener on %s\n",
                    listener->address().ToString().c_str());
        if (quorum > 0) {
          persist::DurableStore::SemiSyncOptions semisync;
          semisync.quorum = quorum;
          store->SetSemiSync(semisync);
          std::printf("primary: semi-sync commits, quorum=%d (degrades to "
                      "async after %d ms)\n",
                      quorum, semisync.timeout_ms);
        }
      } else {
        std::printf("primary: waiting for a follower on %s ...\n",
                    ship_path.c_str());
        std::fflush(stdout);
        int fd = ::open(ship_path.c_str(), O_WRONLY);
        if (fd < 0) {
          std::fprintf(stderr, "cannot open %s for writing\n",
                       ship_path.c_str());
          return 1;
        }
        auto started = replication::WalShipper::Start(*store, fd);
        if (!started.ok()) {
          std::fprintf(stderr, "%s\n", started.status().ToString().c_str());
          return 1;
        }
        shipper = std::move(*started);
        std::printf("primary: shipping the WAL to %s\n", ship_path.c_str());
      }
    }
  } else {
    mem_db = std::make_unique<storage::GraphDb>(*schema, make_backend(*schema));
    db = mem_db.get();
  }
  if (replica != nullptr && files.size() > 1) {
    std::fprintf(stderr,
                 "a follower is read-only; feed files cannot be loaded\n");
    return 2;
  }
  auto loader = std::make_unique<netmodel::FeedLoader>(db);
  for (size_t i = 1; i < files.size(); ++i) {
    auto stats = loader->LoadFile(files[i]);
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    std::printf("loaded %s: %s\n", files[i].c_str(),
                stats->ToString().c_str());
  }
  auto engine = std::make_unique<nql::QueryEngine>(db);
  {
    nql::SourceDescriptor local;
    local.db = db;
    local.role = replica != nullptr ? nql::SourceRole::kReplica
                                    : nql::SourceRole::kPrimary;
    engine->catalog().Register("local", local).IgnoreError();
  }
  // Materialized views ride the durable store's WAL subscription; without
  // one there is nothing to maintain views from.
  auto attach_views = [&]() {
    if (store == nullptr) return;
    auto opened_views = views::ViewCatalog::Open(store.get());
    if (!opened_views.ok()) {
      std::fprintf(stderr, "view catalog: %s\n",
                   opened_views.status().ToString().c_str());
      return;
    }
    views_catalog = std::move(*opened_views);
    engine->set_view_provider(views_catalog.get());
  };
  attach_views();
  std::printf("Nepal shell — backend: %s. Type .help for help.\n",
              db->backend().name().c_str());

  std::string pending;
  std::string line;
  bool timing = false;
  while (true) {
    std::fputs(pending.empty() ? "nepal> " : "  ...> ", stdout);
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (pending.empty() && !line.empty() && line[0] == '\\') {
      if (line == "\\metrics") {
        std::printf("%s", obs::MetricsRegistry::Global().RenderText().c_str());
      } else if (line == "\\metrics json") {
        std::printf("%s\n",
                    obs::MetricsRegistry::Global().RenderJson().c_str());
      } else if (line == "\\timing") {
        timing = !timing;
        std::printf("timing %s\n", timing ? "on" : "off");
      } else if (line == "\\slow") {
        auto slow = engine->SlowQueries();
        if (slow.empty()) std::printf("slow-query log is empty\n");
        for (const auto& entry : slow) {
          std::printf("%10.3f ms  %zu row(s)  %s\n",
                      static_cast<double>(entry.wall_ns) / 1e6, entry.rows,
                      entry.query.c_str());
        }
      } else if (line == "\\slow json") {
        auto slow = engine->SlowQueries();
        std::string out = "{\"slow_queries\":[";
        for (size_t i = 0; i < slow.size(); ++i) {
          if (i > 0) out += ",";
          out += "{\"query\":\"" + obs::JsonEscape(slow[i].query) +
                 "\",\"wall_ns\":" + std::to_string(slow[i].wall_ns) +
                 ",\"rows\":" + std::to_string(slow[i].rows) + "}";
        }
        out += "]}";
        std::printf("%s\n", out.c_str());
      } else if (line == "\\trace") {
        auto traces = obs::Tracer::Global().Completed();
        if (traces.empty()) {
          std::printf("trace ring is empty\n");
        } else {
          for (const auto& t : traces) {
            std::printf("%016llx  %-12s %10.3f ms  %zu span(s)\n",
                        static_cast<unsigned long long>(t->trace_id()),
                        t->root_name().c_str(),
                        static_cast<double>(t->duration_ns()) / 1e6,
                        t->SpanCount());
          }
          std::printf("(\\trace <id> renders one span tree)\n");
        }
      } else if (line == "\\trace json") {
        std::printf("%s\n", obs::Tracer::Global().ExportJson().c_str());
      } else if (line.rfind("\\trace ", 0) == 0) {
        const uint64_t id =
            std::strtoull(line.substr(7).c_str(), nullptr, 16);
        auto t = obs::Tracer::Global().Find(id);
        if (t == nullptr) {
          std::printf("no trace %s in the ring\n", line.substr(7).c_str());
        } else {
          std::printf("%s", t->ToText().c_str());
        }
      } else if (line.rfind("\\save ", 0) == 0) {
        auto s = persist::DurableStore::SaveSnapshot(line.substr(6), *db);
        std::printf("%s\n", s.ok() ? "saved" : s.ToString().c_str());
      } else if (line.rfind("\\load ", 0) == 0) {
        auto opened = persist::DurableStore::Open(line.substr(6), *schema,
                                                  make_backend,
                                                  durable_options);
        if (!opened.ok()) {
          std::printf("error: %s\n", opened.status().ToString().c_str());
          continue;
        }
        engine.reset();
        loader.reset();
        views_catalog.reset();       // tails the store being replaced
        store = std::move(*opened);  // detaches and frees any previous store
        mem_db.reset();
        db = &store->db();
        loader = std::make_unique<netmodel::FeedLoader>(db);
        engine = std::make_unique<nql::QueryEngine>(db);
        attach_views();
        print_recovery(*store);
      } else if (line == "\\checkpoint") {
        if (store == nullptr) {
          std::printf("not in durable mode; start with --data-dir or use "
                      "\\load <dir>\n");
        } else {
          auto s = store->Checkpoint();
          std::printf("%s\n", s.ok() ? "checkpoint written" : s.ToString().c_str());
        }
      } else if (line == "\\replication") {
        auto& registry = obs::MetricsRegistry::Global();
        if (replica != nullptr) {
          std::printf("role: follower%s\n",
                      replica->promoted() ? " (promoted)" : "");
          std::printf("applied: %llu record(s), lag %lld ms\n",
                      static_cast<unsigned long long>(
                          replica->records_applied()),
                      static_cast<long long>(
                          registry.GetGauge("nepal.replication.lag_ms")
                              ->Value()));
          const uint64_t skew_clamped =
              registry
                  .GetCounter("nepal.replication.clock_skew_clamped")
                  ->Value();
          if (skew_clamped > 0) {
            // Frames stamped "in the future" mean the primary's clock runs
            // ahead; the lag figure above is biased low.
            std::printf("clock skew: %llu frame batch(es) clamped to 0 ms "
                        "lag (primary clock ahead)\n",
                        static_cast<unsigned long long>(skew_clamped));
          }
          const auto traced = replica->last_traced_apply();
          if (traced.trace_id != 0) {
            // The follower half of commit-to-visible, keyed by the
            // primary's trace id (the CI drill greps this line).
            std::printf("joined trace: %016llx  wire %.3f ms, decode %.3f "
                        "ms, apply %.3f ms (%llu frame(s))\n",
                        static_cast<unsigned long long>(traced.trace_id),
                        static_cast<double>(traced.wire_us) / 1e3,
                        static_cast<double>(traced.decode_us) / 1e3,
                        static_cast<double>(traced.apply_us) / 1e3,
                        static_cast<unsigned long long>(traced.frames));
          }
          if (replica->reconnects() > 0 || replica->resumes() > 0 ||
              replica->rebootstraps() > 0) {
            std::printf("fleet: %llu reconnect(s), %llu resume(s), "
                        "%llu re-bootstrap(s)\n",
                        static_cast<unsigned long long>(
                            replica->reconnects()),
                        static_cast<unsigned long long>(replica->resumes()),
                        static_cast<unsigned long long>(
                            replica->rebootstraps()));
          }
          std::printf("link: %s\n", replica->status().ToString().c_str());
        } else if (listener != nullptr) {
          std::printf("role: primary (fleet listener on %s)\n",
                      listener->address().ToString().c_str());
          std::printf("sessions: %llu accepted, %llu resume(s), "
                      "%llu bootstrap(s)\n",
                      static_cast<unsigned long long>(
                          listener->sessions_accepted()),
                      static_cast<unsigned long long>(listener->resumes()),
                      static_cast<unsigned long long>(
                          listener->bootstraps()));
          if (quorum > 0) {
            std::printf("semi-sync: quorum=%d, %s\n", quorum,
                        store->semisync_degraded()
                            ? "DEGRADED to async (quorum unreachable)"
                            : "armed");
          }
          auto followers = listener->Followers();
          if (followers.empty()) {
            std::printf("no followers connected yet\n");
          } else {
            std::printf("%-16s %-9s %-7s %10s %10s %12s %9s\n", "follower",
                        "state", "mode", "frames", "acked", "lag(rec)",
                        "stale(ms)");
            for (const auto& f : followers) {
              std::printf("%-16s %-9s %-7s %10llu %10llu %12llu %9u\n",
                          f.name.c_str(),
                          f.connected ? "connected" : "gone",
                          f.resumed ? "resume" : "boot",
                          static_cast<unsigned long long>(f.frames_shipped),
                          static_cast<unsigned long long>(f.acked_records),
                          static_cast<unsigned long long>(f.lag_records),
                          f.staleness_ms);
            }
          }
        } else if (shipper != nullptr) {
          std::printf("role: primary (shipping)\n");
          std::printf("shipped: %llu frame(s), %.1f MB\n",
                      static_cast<unsigned long long>(
                          shipper->frames_shipped()),
                      static_cast<double>(shipper->bytes_shipped()) / 1e6);
          std::printf("link: %s\n", shipper->status().ToString().c_str());
        } else {
          std::printf("role: standalone (no --ship/--follow)\n");
        }
        std::printf("sources:\n%s", engine->catalog().Describe().c_str());
      } else if (line == "\\views") {
        if (views_catalog == nullptr) {
          std::printf("materialized views need durable mode; start with "
                      "--data-dir or use \\load <dir>\n");
        } else {
          auto infos = views_catalog->List();
          if (infos.empty()) {
            std::printf("no views registered; CREATE VIEW <name> AS "
                        "<rpe>;\n");
          }
          for (const auto& info : infos) {
            std::printf(
                "%-16s %s  [%s]\n"
                "  epoch %llu (%llu behind), %zu path(s), "
                "%llu repair(s), %llu rebuild(s), %llu skipped%s\n"
                "  footprint %s\n",
                info.name.c_str(), info.rpe.c_str(), info.mode.c_str(),
                static_cast<unsigned long long>(info.fresh_epoch),
                static_cast<unsigned long long>(info.staleness),
                info.paths,
                static_cast<unsigned long long>(info.repairs),
                static_cast<unsigned long long>(info.rebuilds),
                static_cast<unsigned long long>(info.skipped_records),
                info.rebuild_pending ? " (rebuild pending)" : "",
                info.footprint.c_str());
          }
        }
      } else if (line == "\\promote" || line.rfind("\\promote ", 0) == 0) {
        const std::string listen_addr =
            line.size() > 9 ? line.substr(9) : std::string();
        if (replica == nullptr) {
          std::printf("not a follower; start with --follow <path>\n");
        } else if (replica->promoted()) {
          std::printf("already promoted\n");
        } else if (!listen_addr.empty() &&
                   !replication::LooksLikeSocketAddress(listen_addr)) {
          std::printf("usage: \\promote [unix:<path> | tcp:<host>:<port>]\n");
        } else {
          auto s = replica->Promote();
          if (!s.ok()) {
            std::printf("error: %s\n", s.ToString().c_str());
          } else {
            nql::SourceDescriptor local;
            local.db = db;
            engine->catalog().Register("local", local).IgnoreError();
            std::printf("promoted: this shell now accepts writes\n");
            // With an address, the new primary immediately serves the
            // rest of the fleet — survivors \repoint here.
            if (!listen_addr.empty()) {
              auto address = replication::ParseSocketAddress(listen_addr);
              if (!address.ok()) {
                std::printf("error: %s\n",
                            address.status().ToString().c_str());
              } else {
                auto started = replication::ReplicationListener::Start(
                    replica->store(), *address);
                if (!started.ok()) {
                  std::printf("error: %s\n",
                              started.status().ToString().c_str());
                } else {
                  listener = std::move(*started);
                  std::printf("promoted primary: replication listener "
                              "on %s\n",
                              listener->address().ToString().c_str());
                }
              }
            }
          }
        }
      } else if (line.rfind("\\repoint ", 0) == 0) {
        const std::string target = line.substr(9);
        if (replica == nullptr) {
          std::printf("not a follower; start with --follow <addr>\n");
        } else if (!replication::LooksLikeSocketAddress(target)) {
          std::printf("usage: \\repoint unix:<path> | tcp:<host>:<port>\n");
        } else {
          auto address = replication::ParseSocketAddress(target);
          if (!address.ok()) {
            std::printf("error: %s\n", address.status().ToString().c_str());
            continue;
          }
          const uint64_t before = replica->rebootstraps();
          auto s = replica->Repoint(*address);
          if (!s.ok()) {
            std::printf("error: %s\n", s.ToString().c_str());
            continue;
          }
          // Re-pointing always re-bootstraps (the old position means
          // nothing against a different primary's WAL); wait for the new
          // generation so the shell can rebind to its database.
          std::printf("repointing to %s ...\n", target.c_str());
          std::fflush(stdout);
          bool bootstrapped = false;
          for (int i = 0; i < 600; ++i) {  // up to ~60 s
            if (replica->rebootstraps() > before) {
              bootstrapped = true;
              break;
            }
            if (!replica->serving()) break;
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
          }
          if (!bootstrapped) {
            std::printf("repoint pending: %s\n",
                        replica->status().ToString().c_str());
            continue;
          }
          // The follower swapped to a fresh generation; rebind everything
          // that held the old database pointer.
          engine.reset();
          loader.reset();
          db = &replica->db();
          loader = std::make_unique<netmodel::FeedLoader>(db);
          engine = std::make_unique<nql::QueryEngine>(db);
          {
            nql::SourceDescriptor local;
            local.db = db;
            local.role = nql::SourceRole::kReplica;
            engine->catalog().Register("local", local).IgnoreError();
          }
          std::printf("repointed: re-bootstrapped from %s\n",
                      target.c_str());
        }
      } else {
        std::printf("unknown command; try .help\n");
      }
      continue;
    }
    if (pending.empty() && !line.empty() && line[0] == '.') {
      if (line == ".quit" || line == ".exit") break;
      if (line == ".help") {
        PrintHelp();
        continue;
      }
      if (line == ".schema") {
        std::printf("%s", db->schema().ToDsl().c_str());
        continue;
      }
      if (line == ".stats") {
        std::printf("%zu nodes, %zu edges, %zu versions, ~%.1f MB, now=%s\n",
                    db->node_count(), db->edge_count(),
                    db->backend().VersionCount(),
                    static_cast<double>(db->backend().MemoryUsage()) / 1e6,
                    FormatTimestamp(db->Now()).c_str());
        continue;
      }
      if (line.rfind(".load ", 0) == 0) {
        auto stats = loader->LoadFile(line.substr(6));
        if (!stats.ok()) {
          std::printf("error: %s\n", stats.status().ToString().c_str());
        } else {
          std::printf("%s\n", stats->ToString().c_str());
        }
        continue;
      }
      if (line == ".export") {
        size_t skipped = 0;
        std::printf("%s", netmodel::ExportFeed(*db, &skipped).c_str());
        if (skipped > 0) {
          std::printf("# %zu unnamed element(s) skipped\n", skipped);
        }
        continue;
      }
      if (line.rfind(".explain ", 0) == 0) {
        pending = "\x01" + line.substr(9);  // marker: explain mode
        if (pending.find(';') == std::string::npos) continue;
      } else {
        std::printf("unknown command; try .help\n");
        continue;
      }
    } else {
      pending += (pending.empty() ? "" : "\n") + line;
    }

    size_t semi = pending.find(';');
    if (semi == std::string::npos) continue;
    bool explain = !pending.empty() && pending[0] == '\x01';
    std::string query = pending.substr(explain ? 1 : 0,
                                       semi - (explain ? 1 : 0));
    pending.clear();
    if (explain) {
      auto plan = engine->Explain(query);
      if (!plan.ok()) {
        std::printf("error: %s\n", plan.status().ToString().c_str());
      } else {
        std::printf("%s", plan->c_str());
      }
      continue;
    }
    // CREATE / DROP VIEW act on the view catalog; everything else —
    // SERVE VIEW included — goes to the engine.
    if (auto ddl = nql::ParseViewDdl(query);
        ddl.ok() && ddl->has_value() &&
        (*ddl)->kind != nql::ViewDdl::Kind::kServe) {
      if (views_catalog == nullptr) {
        std::printf("materialized views need durable mode; start with "
                    "--data-dir or use \\load <dir>\n");
        continue;
      }
      Status s = (*ddl)->kind == nql::ViewDdl::Kind::kCreate
                     ? views_catalog->CreateView((*ddl)->name, (*ddl)->rpe,
                                                 (*ddl)->as_of)
                     : views_catalog->DropView((*ddl)->name);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
      } else if ((*ddl)->kind == nql::ViewDdl::Kind::kCreate) {
        std::printf("view %s built; \\views shows freshness\n",
                    (*ddl)->name.c_str());
      } else {
        std::printf("view %s dropped\n", (*ddl)->name.c_str());
      }
      continue;
    }
    auto result = engine->Run(query);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
    } else {
      std::printf("%s", result->ToString(50).c_str());
      if (timing) {
        auto stats = engine->LastQueryStats();
        std::printf("Time: %.3f ms  (%zu operator(s), parallelism %d)\n",
                    static_cast<double>(stats.wall_ns) / 1e6,
                    stats.operators.size(), stats.parallelism);
      }
    }
  }
  std::printf("\n");
  return 0;
}
