// Federated queries over fragmented inventories (Section 1 / Section 3.1).
//
//   $ ./build/examples/federation
//
// Large operators keep network data in multiple inventories: here a cloud
// inventory (virtual layer, property-graph backend) and a legacy physical
// inventory (relational backend). Neither system alone can answer
// "which physical circuits carry the traffic of this customer's VMs?" —
// Nepal's mediator evaluates each range variable against its own source
// and joins the pathways, shipping only endpoints between systems.
// Hostnames are the shared key between the two inventories.

#include <cstdio>

#include "graphstore/graph_store.h"
#include "nepal/engine.h"
#include "relational/relational_store.h"
#include "schema/dsl_parser.h"
#include "storage/graphdb.h"

namespace {

constexpr const char* kCloudSchema = R"(
node VM : Node { owner: string; }
node HostRef : Node {}   # the cloud's view of a physical server
edge on_server : Edge {}
allow on_server (VM -> HostRef);
)";

constexpr const char* kPhysicalSchema = R"(
node Server : Node { site: string; }
node Circuit : Node { capacity_gbps: int; }
edge terminates : Edge {}
allow terminates (Server -> Circuit);
allow terminates (Circuit -> Server);
)";

}  // namespace

int main() {
  using namespace nepal;
  auto die = [](const Status& st) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    std::exit(1);
  };

  // ---- The cloud inventory (graphstore backend) ----
  auto cloud_schema = schema::ParseSchemaDsl(kCloudSchema);
  if (!cloud_schema.ok()) die(cloud_schema.status());
  storage::GraphDb cloud(
      *cloud_schema, std::make_unique<graphstore::GraphStore>(*cloud_schema));
  auto must = [&die](auto r) {
    if (!r.ok()) die(r.status());
    return *r;
  };
  Uid vm1 = must(cloud.AddNode(
      "VM", {{"name", Value("vm-1")}, {"owner", Value("acme")}}));
  Uid vm2 = must(cloud.AddNode(
      "VM", {{"name", Value("vm-2")}, {"owner", Value("acme")}}));
  Uid vm3 = must(cloud.AddNode(
      "VM", {{"name", Value("vm-3")}, {"owner", Value("globex")}}));
  Uid ref_a = must(cloud.AddNode("HostRef", {{"name", Value("srv-17")}}));
  Uid ref_b = must(cloud.AddNode("HostRef", {{"name", Value("srv-42")}}));
  must(cloud.AddEdge("on_server", vm1, ref_a, {}));
  must(cloud.AddEdge("on_server", vm2, ref_b, {}));
  must(cloud.AddEdge("on_server", vm3, ref_b, {}));

  // ---- The legacy physical inventory (relational backend) ----
  auto phys_schema = schema::ParseSchemaDsl(kPhysicalSchema);
  if (!phys_schema.ok()) die(phys_schema.status());
  storage::GraphDb physical(
      *phys_schema,
      std::make_unique<relational::RelationalStore>(*phys_schema));
  Uid srv17 = must(physical.AddNode(
      "Server", {{"name", Value("srv-17")}, {"site", Value("ATL")}}));
  Uid srv42 = must(physical.AddNode(
      "Server", {{"name", Value("srv-42")}, {"site", Value("DFW")}}));
  Uid circuit = must(physical.AddNode(
      "Circuit", {{"name", Value("ckt-atl-dfw")},
                  {"capacity_gbps", Value(100)}}));
  must(physical.AddEdge("terminates", srv17, circuit, {}));
  must(physical.AddEdge("terminates", circuit, srv42, {}));

  // ---- The mediator ----
  nql::QueryEngine engine(&cloud);
  nql::SourceDescriptor cloud_desc;
  cloud_desc.db = &cloud;
  nql::SourceDescriptor physical_desc;
  physical_desc.db = &physical;
  Status bound = engine.catalog().Register("cloud", cloud_desc);
  if (bound.ok()) bound = engine.catalog().Register("physical", physical_desc);
  if (!bound.ok()) die(bound);

  // Which circuits carry acme's VM traffic? V runs on the cloud source,
  // C on the physical one; the join key is the shared hostname.
  std::string query =
      "Select source(V).name, target(V).name, C "
      "From PATHS V In 'cloud', PATHS C In 'physical' "
      "Where V MATCHES VM(owner='acme')->on_server()->HostRef() "
      "And C MATCHES Server()->terminates()->Circuit() "
      "And target(V).name = source(C).name";
  std::printf("federated query:\n%s\n\n", query.c_str());
  auto result = engine.Run(query);
  if (!result.ok()) die(result.status());
  std::printf("%s\n", result->ToString().c_str());

  // And the reverse direction: who is exposed if the circuit fails?
  query =
      "Select source(V).owner, source(V).name "
      "From PATHS C In 'physical', PATHS V In 'cloud' "
      "Where C MATCHES Circuit(name='ckt-atl-dfw')->terminates()->Server() "
      "And V MATCHES VM()->on_server()->HostRef() "
      "And target(V).name = target(C).name";
  std::printf("shared fate of circuit ckt-atl-dfw:\n%s\n\n", query.c_str());
  result = engine.Run(query);
  if (!result.ok()) die(result.status());
  std::printf("%s\n", result->ToString().c_str());
  return 0;
}
