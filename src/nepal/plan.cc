#include "nepal/plan.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <thread>

#include "nepal/optimizer.h"
#include "obs/trace.h"

namespace nepal::nql {

size_t EffectiveParallelism(const PlanOptions& options) {
  if (options.parallelism > 1) {
    return static_cast<size_t>(options.parallelism);
  }
  if (options.parallelism <= 0) {
    size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return 1;
}

std::string Step::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return "Extend(" + atom.ToString() + ")";
    case Kind::kUnion: {
      std::string out = "Union(";
      for (size_t i = 0; i < branches.size(); ++i) {
        if (i > 0) out += " | ";
        out += ProgramToString(branches[i]);
      }
      return out + ")";
    }
    case Kind::kLoop:
      return "Loop{" + std::to_string(min_rep) + "," +
             std::to_string(max_rep) + "}(" + ProgramToString(body) + ")";
    case Kind::kAutomaton:
      return "Automaton" + RepSuffix(min_rep, max_rep) + "(" +
             std::to_string(nfa == nullptr ? 0 : nfa->num_states()) +
             " states, " +
             std::to_string(nfa == nullptr ? 0 : nfa->num_transitions()) +
             " transitions)";
  }
  return "?";
}

std::string ProgramToString(const Program& program) {
  if (program.empty()) return "<empty>";
  std::string out;
  for (size_t i = 0; i < program.size(); ++i) {
    if (i > 0) out += " ; ";
    out += program[i].ToString();
  }
  return out;
}

namespace {

std::string FormatEstimate(double rows) {
  char buf[32];
  if (rows >= 100.0 || rows == std::floor(rows)) {
    std::snprintf(buf, sizeof(buf), "~%.0f", rows);
  } else {
    std::snprintf(buf, sizeof(buf), "~%.2f", rows);
  }
  return buf;
}

/// Appends one indented state-table block per Automaton step found in
/// `program` (recursing into Unions and Loops) for EXPLAIN output.
void AppendAutomatonDetail(const Program& program, const std::string& label,
                           std::string* out) {
  for (const Step& step : program) {
    switch (step.kind) {
      case Step::Kind::kAtom:
        break;
      case Step::Kind::kUnion:
        for (const Program& branch : step.branches) {
          AppendAutomatonDetail(branch, label, out);
        }
        break;
      case Step::Kind::kLoop:
        AppendAutomatonDetail(step.body, label, out);
        break;
      case Step::Kind::kAutomaton: {
        if (step.nfa == nullptr) break;
        *out += "\n  automaton " + label + " " +
                RepSuffix(step.min_rep, step.max_rep) + ":";
        std::string body = step.nfa->ToString(
            step.state_est.empty() ? nullptr : &step.state_est);
        *out += "\n    ";
        for (char c : body) {
          *out += c;
          if (c == '\n') *out += "    ";
        }
        break;
      }
    }
  }
}

}  // namespace

std::string ProgramToStringWithEstimates(const Program& program) {
  if (program.empty()) return "<empty>";
  std::string out;
  for (size_t i = 0; i < program.size(); ++i) {
    if (i > 0) out += " ; ";
    out += program[i].ToString();
    if (program[i].est_rows >= 0) out += FormatEstimate(program[i].est_rows);
  }
  return out;
}

Program ReverseProgram(const Program& program) {
  Program out;
  out.reserve(program.size());
  for (auto it = program.rbegin(); it != program.rend(); ++it) {
    Step step = *it;
    if (step.kind == Step::Kind::kUnion) {
      for (Program& branch : step.branches) {
        branch = ReverseProgram(branch);
      }
    } else if (step.kind == Step::Kind::kLoop) {
      step.body = ReverseProgram(step.body);
    } else if (step.kind == Step::Kind::kAutomaton) {
      if (step.nfa != nullptr) {
        step.nfa = std::make_shared<const Nfa>(ReverseNfa(*step.nfa));
      }
      step.state_est.clear();  // stale: states were renumbered
    }
    out.push_back(std::move(step));
  }
  return out;
}

// ---- Physical emission (stage 3) ----

Program EmitProgram(const LogicalNode& node, const PlanOptions& options) {
  switch (node.kind) {
    case LogicalNode::Kind::kAtom: {
      if (node.pruned) return {};
      Step step;
      step.kind = Step::Kind::kAtom;
      step.atom = node.atom;
      return {std::move(step)};
    }
    case LogicalNode::Kind::kSeq: {
      Program out;
      for (const LogicalNode& child : node.children) {
        // A pruned optional child matches only the empty sequence.
        if (child.pruned) continue;
        Program part = EmitProgram(child, options);
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }
    case LogicalNode::Kind::kAlt: {
      Step step;
      step.kind = Step::Kind::kUnion;
      for (const LogicalNode& child : node.children) {
        if (child.pruned) {
          // A pruned optional branch still matches the empty sequence; a
          // pruned mandatory branch emits nothing at all.
          if (child.is_optional()) step.branches.push_back(Program{});
          continue;
        }
        step.branches.push_back(EmitProgram(child, options));
      }
      return {std::move(step)};
    }
    case LogicalNode::Kind::kRep: {
      if (node.pruned) return {};
      // Unbounded repetitions can only run as an automaton; bounded ones
      // also take this route under the kAutomaton parity strategy.
      if (node.max_rep == kUnboundedRep ||
          options.loop_strategy == LoopStrategy::kAutomaton) {
        obs::ScopedSpan span("nfa.build");
        Step step;
        step.kind = Step::Kind::kAutomaton;
        step.min_rep = node.min_rep;
        step.max_rep = node.max_rep;
        step.nfa = std::make_shared<const Nfa>(BuildNfa(node));
        return {std::move(step)};
      }
      Program body = EmitProgram(node.children[0], options);
      if (options.loop_strategy == LoopStrategy::kUnroll) {
        // Unrolled form: body^min followed by nested optionals.
        // Opt(p) = Union(<empty> | p);
        // Rep{m,n} = body^m -> Opt(body -> Opt(...)).
        Program tail;
        for (int i = 0; i < node.max_rep - node.min_rep; ++i) {
          Program inner = body;
          inner.insert(inner.end(), std::make_move_iterator(tail.begin()),
                       std::make_move_iterator(tail.end()));
          Step opt;
          opt.kind = Step::Kind::kUnion;
          opt.branches.push_back(Program{});  // zero more iterations
          opt.branches.push_back(std::move(inner));
          tail.clear();
          tail.push_back(std::move(opt));
        }
        Program out;
        for (int i = 0; i < node.min_rep; ++i) {
          out.insert(out.end(), body.begin(), body.end());
        }
        out.insert(out.end(), std::make_move_iterator(tail.begin()),
                   std::make_move_iterator(tail.end()));
        return out;
      }
      if (node.unroll && node.min_rep == node.max_rep) {
        // Cost-gated inline unroll of a fixed-count repetition: only the
        // final frontier is admissible, so body^n is output-identical to
        // the Loop but exposes per-step operator stats.
        Program out;
        for (int i = 0; i < node.min_rep; ++i) {
          out.insert(out.end(), body.begin(), body.end());
        }
        return out;
      }
      Step step;
      step.kind = Step::Kind::kLoop;
      step.body = std::move(body);
      step.min_rep = node.min_rep;
      step.max_rep = node.max_rep;
      return {std::move(step)};
    }
  }
  return {};
}

namespace {

/// Marks fixed-count repetitions for inline unrolling when no statistics
/// are available (the backend-free compile path under kCostBased).
void MarkStructuralUnroll(LogicalNode* node) {
  for (LogicalNode& child : node->children) MarkStructuralUnroll(&child);
  if (node->kind == LogicalNode::Kind::kRep &&
      node->min_rep == node->max_rep && node->min_rep <= 8) {
    node->unroll = true;
  }
}

}  // namespace

Program CompileProgram(const RpeNode& rpe, const PlanOptions& options) {
  LogicalPlan plan = BuildLogicalPlan(rpe);
  if (options.loop_strategy == LoopStrategy::kCostBased) {
    MarkStructuralUnroll(&plan.root);
  }
  return EmitProgram(plan.root, options);
}

Program CompileSeededProgram(const RpeNode& rpe,
                             const storage::StorageBackend& backend,
                             const PlanOptions& options,
                             const storage::TimeView& view, double seed_rows) {
  LogicalPlan plan = BuildLogicalPlan(rpe);
  OptimizeLogicalPlan(&plan, backend, options, view);
  if (plan.statically_empty) {
    // A Union with zero branches yields the empty path set: the seeds are
    // dropped instead of being finalized as trivial matches.
    Step dead;
    dead.kind = Step::Kind::kUnion;
    dead.est_rows = 0;
    return {std::move(dead)};
  }
  Program program = EmitProgram(plan.root, options);
  if (seed_rows >= 0) {
    CostEstimator est(backend, view);
    // Seeds are bare node frontiers not yet recorded in the path.
    TraversalState st{nullptr, false};
    double work = 0;
    AnnotateProgram(&program, seed_rows, storage::Direction::kOut, &st, est,
                    &work);
  }
  return program;
}

// ---- Anchor selection (stage 2, candidate enumeration) ----

namespace {

/// One costed anchor occurrence: the split programs plus the figures the
/// optimizer minimizes. Memoized per logical atom node.
struct CostedOccurrence {
  double scan_raw = 0;   // bare EstimateScan (the legacy anchor cost)
  double total = 0;      // scan + estimated traversal work (or scan_raw
                         // when the cost-based rule is disabled)
  int conditions = 0;
  Program reversed_prefix;
  Program suffix;
  double est_after_suffix = -1;
  double est_rows = -1;
};

struct Candidate {
  std::vector<const LogicalNode*> atoms;
  double total = 0;
  double scan_total = 0;
  int conditions = 0;
};

/// Strict "a beats b" with a relative epsilon: on (near-)equal totals the
/// candidate carrying more conditions wins (a conditioned atom is the
/// better anchor even when the estimates tie), then the earlier one.
bool Better(double a_total, int a_conds, double b_total, int b_conds) {
  double eps = 1e-9 * std::max({1.0, std::fabs(a_total), std::fabs(b_total)});
  if (a_total < b_total - eps) return true;
  if (a_total > b_total + eps) return false;
  return a_conds > b_conds;
}

/// Splits the optimized logical tree around the `target` atom: `prefix`
/// holds the program for everything left of the anchor (in RPE order) and
/// `suffix` everything right of it.
bool SplitAroundAnchor(const LogicalNode& node, const LogicalNode* target,
                       const PlanOptions& options, Program* prefix,
                       Program* suffix) {
  if (&node == target) return true;
  switch (node.kind) {
    case LogicalNode::Kind::kAtom:
      return false;
    case LogicalNode::Kind::kSeq: {
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (!SplitAroundAnchor(node.children[i], target, options, prefix,
                               suffix)) {
          continue;
        }
        Program before;
        for (size_t j = 0; j < i; ++j) {
          Program part = EmitProgram(node.children[j], options);
          before.insert(before.end(), std::make_move_iterator(part.begin()),
                        std::make_move_iterator(part.end()));
        }
        prefix->insert(prefix->begin(),
                       std::make_move_iterator(before.begin()),
                       std::make_move_iterator(before.end()));
        for (size_t j = i + 1; j < node.children.size(); ++j) {
          Program part = EmitProgram(node.children[j], options);
          suffix->insert(suffix->end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
        }
        return true;
      }
      return false;
    }
    case LogicalNode::Kind::kAlt: {
      for (const LogicalNode& child : node.children) {
        if (child.pruned) continue;
        if (SplitAroundAnchor(child, target, options, prefix, suffix)) {
          // The other branches are covered by their own anchor occurrences.
          return true;
        }
      }
      return false;
    }
    case LogicalNode::Kind::kRep: {
      if (!SplitAroundAnchor(node.children[0], target, options, prefix,
                             suffix)) {
        return false;
      }
      // The anchor sits in the first iteration; the remaining iterations
      // form Rep(r, n-1, m-1) on the suffix side. An unbounded maximum
      // stays unbounded: {1,∞} minus one iteration is {0,∞}.
      const bool unbounded = node.max_rep == kUnboundedRep;
      if (unbounded || node.max_rep - 1 >= 1) {
        LogicalNode rest;
        rest.kind = LogicalNode::Kind::kRep;
        rest.children.push_back(node.children[0]);
        rest.min_rep = std::max(node.min_rep - 1, 0);
        rest.max_rep = unbounded ? kUnboundedRep : node.max_rep - 1;
        rest.unroll = node.unroll && rest.min_rep == rest.max_rep;
        Program part = EmitProgram(rest, options);
        suffix->insert(suffix->end(), std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
      }
      return true;
    }
  }
  return false;
}

struct AnchorContext {
  const LogicalNode* root;
  const PlanOptions* options;
  const CostEstimator* est;
  std::map<const LogicalNode*, CostedOccurrence> memo;
};

CostedOccurrence& CostOccurrence(AnchorContext* ctx, const LogicalNode* atom) {
  auto it = ctx->memo.find(atom);
  if (it != ctx->memo.end()) return it->second;
  CostedOccurrence occ;
  occ.scan_raw = ctx->est->ScanRaw(atom->atom);
  occ.conditions = static_cast<int>(atom->atom.conditions.size());
  Program prefix;
  SplitAroundAnchor(*ctx->root, atom, *ctx->options, &prefix, &occ.suffix);
  occ.reversed_prefix = ReverseProgram(prefix);
  // Annotate both sides with row estimates (cardinality × expected
  // traversal fan-out). Execution runs the suffix forwards first, then the
  // reversed prefix backwards over the survivors.
  double work = 0;
  TraversalState st =
      AnchorState(atom->atom, storage::Direction::kOut, *ctx->est);
  double rows = ctx->est->Scan(atom->atom);
  occ.est_after_suffix = AnnotateProgram(&occ.suffix, rows,
                                         storage::Direction::kOut, &st,
                                         *ctx->est, &work);
  TraversalState pst =
      AnchorState(atom->atom, storage::Direction::kIn, *ctx->est);
  occ.est_rows = AnnotateProgram(&occ.reversed_prefix, occ.est_after_suffix,
                                 storage::Direction::kIn, &pst, *ctx->est,
                                 &work);
  occ.total = ctx->options->optimize_cost_anchor
                  ? ctx->est->Scan(atom->atom) + work
                  : occ.scan_raw;
  return ctx->memo.emplace(atom, std::move(occ)).first->second;
}

/// Enumerates anchor candidates per the paper's rules (Section 5.1). Empty
/// result means "no anchor in this subtree".
std::vector<Candidate> EnumerateCandidates(const LogicalNode& node,
                                           AnchorContext* ctx) {
  if (node.pruned) return {};
  switch (node.kind) {
    case LogicalNode::Kind::kAtom: {
      const CostedOccurrence& occ = CostOccurrence(ctx, &node);
      Candidate c;
      c.atoms = {&node};
      c.total = occ.total;
      c.scan_total = occ.scan_raw;
      c.conditions = occ.conditions;
      return {std::move(c)};
    }
    case LogicalNode::Kind::kSeq: {
      std::vector<Candidate> out;
      for (const LogicalNode& child : node.children) {
        std::vector<Candidate> sub = EnumerateCandidates(child, ctx);
        out.insert(out.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
      }
      return out;
    }
    case LogicalNode::Kind::kAlt: {
      // Cross product of per-branch candidate sets, approximated (as in
      // the paper) by the union of each branch's best. Pruned mandatory
      // branches need no anchor; a branch reduced to the empty match makes
      // the whole Alt unanchorable (like any other unanchorable branch).
      Candidate combined;
      for (const LogicalNode& child : node.children) {
        if (child.pruned && !child.is_optional()) continue;
        std::vector<Candidate> sub = EnumerateCandidates(child, ctx);
        if (sub.empty()) return {};  // unanchorable branch => Alt is too
        const Candidate* best = &sub[0];
        for (const Candidate& c : sub) {
          if (Better(c.total, c.conditions, best->total, best->conditions)) {
            best = &c;
          }
        }
        combined.atoms.insert(combined.atoms.end(), best->atoms.begin(),
                              best->atoms.end());
        combined.total += best->total;
        combined.scan_total += best->scan_total;
        combined.conditions += best->conditions;
      }
      if (combined.atoms.empty()) return {};
      return {std::move(combined)};
    }
    case LogicalNode::Kind::kRep:
      // Rep(r,n,m) ~ Seq(r, Rep(r,n-1,m-1)): the first iteration is
      // mandatory iff n >= 1.
      if (node.min_rep == 0) return {};
      return EnumerateCandidates(node.children[0], ctx);
  }
  return {};
}

}  // namespace

Result<MatchPlan> PlanMatch(const RpeNode& rpe,
                            const storage::StorageBackend& backend,
                            const PlanOptions& options,
                            const storage::TimeView& view) {
  LogicalPlan logical = BuildLogicalPlan(rpe);
  OptimizeLogicalPlan(&logical, backend, options, view);

  MatchPlan plan;
  plan.logical = logical.ToString();
  plan.rewrites = logical.rewrites;
  if (logical.statically_empty) {
    plan.statically_empty = true;
    return plan;
  }

  CostEstimator est(backend, view);
  AnchorContext ctx{&logical.root, &options, &est, {}};
  std::vector<Candidate> candidates = EnumerateCandidates(logical.root, &ctx);
  if (candidates.empty()) {
    return Status::PlanError(
        "RPE '" + rpe.ToString() +
        "' has no anchor: every atom sits inside a {0,n} repetition block. "
        "Rewrite the RPE or provide an anchor through a join.");
  }
  const Candidate* best = &candidates[0];
  for (const Candidate& c : candidates) {
    if (Better(c.total, c.conditions, best->total, best->conditions)) {
      best = &c;
    }
  }
  plan.total_cost = best->scan_total;
  plan.optimizer_cost = best->total;
  for (const LogicalNode* atom : best->atoms) {
    CostedOccurrence& occ = CostOccurrence(&ctx, atom);
    AnchoredPlan anchored;
    anchored.anchor = atom->atom;
    anchored.anchor_cost = occ.scan_raw;
    anchored.est_after_suffix = occ.est_after_suffix;
    anchored.est_rows = occ.est_rows;
    anchored.reversed_prefix = std::move(occ.reversed_prefix);
    anchored.suffix = std::move(occ.suffix);
    plan.anchors.push_back(std::move(anchored));
  }
  return plan;
}

std::string MatchPlan::ToString() const {
  std::string out;
  if (!logical.empty()) out += "logical  : " + logical + "\n";
  for (const std::string& rw : rewrites) {
    out += "rewrite  : " + rw + "\n";
  }
  if (statically_empty) {
    out += "statically empty: the allowed-edge rules admit no match";
    return out;
  }
  for (size_t i = 0; i < anchors.size(); ++i) {
    const AnchoredPlan& a = anchors[i];
    if (i > 0) out += "\n";
    out += "anchor " + a.anchor.ToString() + " (cost " +
           std::to_string(a.anchor_cost) + ")\n";
    out += "  forwards : " + ProgramToStringWithEstimates(a.suffix) + "\n";
    out += "  backwards: " + ProgramToStringWithEstimates(a.reversed_prefix);
    AppendAutomatonDetail(a.suffix, "(forwards)", &out);
    AppendAutomatonDetail(a.reversed_prefix, "(backwards)", &out);
  }
  return out;
}

}  // namespace nepal::nql
