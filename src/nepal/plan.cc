#include "nepal/plan.h"

#include <algorithm>
#include <limits>
#include <thread>

namespace nepal::nql {

size_t EffectiveParallelism(const PlanOptions& options) {
  if (options.parallelism > 1) {
    return static_cast<size_t>(options.parallelism);
  }
  if (options.parallelism <= 0) {
    size_t hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  return 1;
}

std::string Step::ToString() const {
  switch (kind) {
    case Kind::kAtom:
      return "Extend(" + atom.ToString() + ")";
    case Kind::kUnion: {
      std::string out = "Union(";
      for (size_t i = 0; i < branches.size(); ++i) {
        if (i > 0) out += " | ";
        out += ProgramToString(branches[i]);
      }
      return out + ")";
    }
    case Kind::kLoop:
      return "Loop{" + std::to_string(min_rep) + "," +
             std::to_string(max_rep) + "}(" + ProgramToString(body) + ")";
  }
  return "?";
}

std::string ProgramToString(const Program& program) {
  if (program.empty()) return "<empty>";
  std::string out;
  for (size_t i = 0; i < program.size(); ++i) {
    if (i > 0) out += " ; ";
    out += program[i].ToString();
  }
  return out;
}

Program ReverseProgram(const Program& program) {
  Program out;
  out.reserve(program.size());
  for (auto it = program.rbegin(); it != program.rend(); ++it) {
    Step step = *it;
    if (step.kind == Step::Kind::kUnion) {
      for (Program& branch : step.branches) {
        branch = ReverseProgram(branch);
      }
    } else if (step.kind == Step::Kind::kLoop) {
      step.body = ReverseProgram(step.body);
    }
    out.push_back(std::move(step));
  }
  return out;
}

Program CompileProgram(const RpeNode& rpe, const PlanOptions& options) {
  switch (rpe.kind) {
    case RpeNode::Kind::kAtom: {
      Step step;
      step.kind = Step::Kind::kAtom;
      step.atom = rpe.atom;
      return {std::move(step)};
    }
    case RpeNode::Kind::kSeq: {
      Program out;
      for (const RpeNode& child : rpe.children) {
        Program part = CompileProgram(child, options);
        out.insert(out.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
      }
      return out;
    }
    case RpeNode::Kind::kAlt: {
      Step step;
      step.kind = Step::Kind::kUnion;
      for (const RpeNode& child : rpe.children) {
        step.branches.push_back(CompileProgram(child, options));
      }
      return {std::move(step)};
    }
    case RpeNode::Kind::kRep: {
      Program body = CompileProgram(rpe.children[0], options);
      if (options.use_extend_block) {
        Step step;
        step.kind = Step::Kind::kLoop;
        step.body = std::move(body);
        step.min_rep = rpe.min_rep;
        step.max_rep = rpe.max_rep;
        return {std::move(step)};
      }
      // Unrolled form: body^min followed by nested optionals.
      // Opt(p) = Union(<empty> | p); Rep{m,n} = body^m -> Opt(body -> Opt(...)).
      Program tail;
      for (int i = 0; i < rpe.max_rep - rpe.min_rep; ++i) {
        Program inner = body;
        inner.insert(inner.end(), std::make_move_iterator(tail.begin()),
                     std::make_move_iterator(tail.end()));
        Step opt;
        opt.kind = Step::Kind::kUnion;
        opt.branches.push_back(Program{});  // zero more iterations
        opt.branches.push_back(std::move(inner));
        tail.clear();
        tail.push_back(std::move(opt));
      }
      Program out;
      for (int i = 0; i < rpe.min_rep; ++i) {
        out.insert(out.end(), body.begin(), body.end());
      }
      out.insert(out.end(), std::make_move_iterator(tail.begin()),
                 std::make_move_iterator(tail.end()));
      return out;
    }
  }
  return {};
}

namespace {

struct Occurrence {
  const RpeNode* atom;
  double cost;
};

struct Candidate {
  std::vector<Occurrence> atoms;
  double cost = 0;
};

/// Enumerates anchor candidates per the paper's rules. Empty result means
/// "no anchor in this subtree".
std::vector<Candidate> EnumerateCandidates(
    const RpeNode& node, const storage::StorageBackend& backend) {
  switch (node.kind) {
    case RpeNode::Kind::kAtom: {
      double cost = backend.EstimateScan(node.atom.ToScanSpec());
      return {Candidate{{Occurrence{&node, cost}}, cost}};
    }
    case RpeNode::Kind::kSeq: {
      std::vector<Candidate> out;
      for (const RpeNode& child : node.children) {
        std::vector<Candidate> sub = EnumerateCandidates(child, backend);
        out.insert(out.end(), std::make_move_iterator(sub.begin()),
                   std::make_move_iterator(sub.end()));
      }
      return out;
    }
    case RpeNode::Kind::kAlt: {
      // Cross product of per-branch candidate sets, approximated by the
      // union of each branch's best (avoids the exponential blowup the
      // paper describes).
      Candidate combined;
      for (const RpeNode& child : node.children) {
        std::vector<Candidate> sub = EnumerateCandidates(child, backend);
        if (sub.empty()) return {};  // one branch unanchorable => Alt is too
        const Candidate* best = &sub[0];
        for (const Candidate& c : sub) {
          if (c.cost < best->cost) best = c.cost < best->cost ? &c : best;
        }
        combined.atoms.insert(combined.atoms.end(), best->atoms.begin(),
                              best->atoms.end());
        combined.cost += best->cost;
      }
      return {std::move(combined)};
    }
    case RpeNode::Kind::kRep:
      // Rep(r,n,m) ~ Seq(r, Rep(r,n-1,m-1)): the first iteration is
      // mandatory iff n >= 1.
      if (node.min_rep == 0) return {};
      return EnumerateCandidates(node.children[0], backend);
  }
  return {};
}

/// Splits `node` around the `target` atom. On success, `prefix` holds the
/// program for everything left of the anchor (in RPE order) and `suffix`
/// everything right of it.
bool SplitAroundAnchor(const RpeNode& node, const RpeNode* target,
                       const PlanOptions& options, Program* prefix,
                       Program* suffix) {
  if (&node == target) return true;
  switch (node.kind) {
    case RpeNode::Kind::kAtom:
      return false;
    case RpeNode::Kind::kSeq: {
      for (size_t i = 0; i < node.children.size(); ++i) {
        if (!SplitAroundAnchor(node.children[i], target, options, prefix,
                               suffix)) {
          continue;
        }
        Program before;
        for (size_t j = 0; j < i; ++j) {
          Program part = CompileProgram(node.children[j], options);
          before.insert(before.end(), std::make_move_iterator(part.begin()),
                        std::make_move_iterator(part.end()));
        }
        prefix->insert(prefix->begin(),
                       std::make_move_iterator(before.begin()),
                       std::make_move_iterator(before.end()));
        for (size_t j = i + 1; j < node.children.size(); ++j) {
          Program part = CompileProgram(node.children[j], options);
          suffix->insert(suffix->end(), std::make_move_iterator(part.begin()),
                         std::make_move_iterator(part.end()));
        }
        return true;
      }
      return false;
    }
    case RpeNode::Kind::kAlt: {
      for (const RpeNode& child : node.children) {
        if (SplitAroundAnchor(child, target, options, prefix, suffix)) {
          // The other branches are covered by their own anchor occurrences.
          return true;
        }
      }
      return false;
    }
    case RpeNode::Kind::kRep: {
      if (!SplitAroundAnchor(node.children[0], target, options, prefix,
                             suffix)) {
        return false;
      }
      // The anchor sits in the first iteration; the remaining iterations
      // form Rep(r, n-1, m-1) on the suffix side.
      if (node.max_rep - 1 >= 1) {
        RpeNode rest = RpeNode::Rep(node.children[0],
                                    std::max(node.min_rep - 1, 0),
                                    node.max_rep - 1);
        Program part = CompileProgram(rest, options);
        suffix->insert(suffix->end(), std::make_move_iterator(part.begin()),
                       std::make_move_iterator(part.end()));
      }
      return true;
    }
  }
  return false;
}

}  // namespace

Result<MatchPlan> PlanMatch(const RpeNode& rpe,
                            const storage::StorageBackend& backend,
                            const PlanOptions& options) {
  std::vector<Candidate> candidates = EnumerateCandidates(rpe, backend);
  if (candidates.empty()) {
    return Status::PlanError(
        "RPE '" + rpe.ToString() +
        "' has no anchor: every atom sits inside a {0,n} repetition block. "
        "Rewrite the RPE or provide an anchor through a join.");
  }
  const Candidate* best = &candidates[0];
  for (const Candidate& c : candidates) {
    if (c.cost < best->cost) best = &c;
  }
  MatchPlan plan;
  plan.total_cost = best->cost;
  for (const Occurrence& occ : best->atoms) {
    AnchoredPlan anchored;
    anchored.anchor = occ.atom->atom;
    anchored.anchor_cost = occ.cost;
    Program prefix, suffix;
    if (!SplitAroundAnchor(rpe, occ.atom, options, &prefix, &suffix)) {
      return Status::Internal("anchor occurrence not found in RPE tree");
    }
    anchored.reversed_prefix = ReverseProgram(prefix);
    anchored.suffix = std::move(suffix);
    plan.anchors.push_back(std::move(anchored));
  }
  return plan;
}

std::string MatchPlan::ToString() const {
  std::string out;
  for (size_t i = 0; i < anchors.size(); ++i) {
    const AnchoredPlan& a = anchors[i];
    if (i > 0) out += "\n";
    out += "anchor " + a.anchor.ToString() + " (cost " +
           std::to_string(a.anchor_cost) + ")\n";
    out += "  forwards : " + ProgramToString(a.suffix) + "\n";
    out += "  backwards: " + ProgramToString(a.reversed_prefix);
  }
  return out;
}

}  // namespace nepal::nql
