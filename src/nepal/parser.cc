#include "nepal/parser.h"

#include <cctype>

namespace nepal::nql {

namespace {

struct Token {
  enum Kind { kIdent, kString, kInt, kDouble, kPunct, kEnd } kind;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0;
  size_t pos = 0;
};

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<Token> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ >= text_.size()) return Token{Token::kEnd, "", 0, 0, pos_};
    size_t start = pos_;
    char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      return Token{Token::kIdent, text_.substr(start, pos_ - start), 0, 0,
                   start};
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      bool is_double = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '.')) {
        if (text_[pos_] == '.') {
          // `1.` followed by a non-digit is a field access, not a double.
          if (pos_ + 1 >= text_.size() ||
              !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1]))) {
            break;
          }
          is_double = true;
        }
        ++pos_;
      }
      std::string num = text_.substr(start, pos_ - start);
      Token t{is_double ? Token::kDouble : Token::kInt, num, 0, 0, start};
      if (is_double) {
        t.double_value = std::stod(num);
      } else {
        t.int_value = std::stoll(num);
      }
      return t;
    }
    if (c == '\'') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '\'') {
        value += text_[pos_++];
      }
      if (pos_ >= text_.size()) {
        return Status::ParseError("unterminated string literal at offset " +
                                  std::to_string(start));
      }
      ++pos_;  // closing quote
      return Token{Token::kString, value, 0, 0, start};
    }
    // Multi-character punctuation.
    auto two = [&](const char* p) {
      return pos_ + 1 < text_.size() && text_[pos_] == p[0] &&
             text_[pos_ + 1] == p[1];
    };
    for (const char* p : {"->", "<>", "<=", ">="}) {
      if (two(p)) {
        pos_ += 2;
        return Token{Token::kPunct, p, 0, 0, start};
      }
    }
    if (std::string("()[]{},.|=<>@:;-*+").find(c) != std::string::npos) {
      ++pos_;
      return Token{Token::kPunct, std::string(1, c), 0, 0, start};
    }
    return Status::ParseError("unexpected character '" + std::string(1, c) +
                              "' at offset " + std::to_string(start));
  }

 private:
  const std::string& text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text) {}

  Result<Query> ParseFullQuery() {
    NEPAL_RETURN_NOT_OK(Advance());
    ExplainMode explain = ExplainMode::kNone;
    if (IsKeyword("EXPLAIN")) {
      NEPAL_RETURN_NOT_OK(Advance());
      if (IsKeyword("ANALYZE")) {
        explain = ExplainMode::kAnalyze;
        NEPAL_RETURN_NOT_OK(Advance());
      } else if (IsKeyword("VERBOSE")) {
        explain = ExplainMode::kVerbose;
        NEPAL_RETURN_NOT_OK(Advance());
      } else {
        explain = ExplainMode::kPlan;
      }
    }
    NEPAL_ASSIGN_OR_RETURN(Query q, ParseQueryBody());
    q.explain = explain;
    if (cur_.kind != Token::kEnd) {
      return Status::ParseError("trailing input after query: '" + cur_.text +
                                "'");
    }
    return q;
  }

  Result<RpeNode> ParseBareRpe() {
    NEPAL_RETURN_NOT_OK(Advance());
    NEPAL_ASSIGN_OR_RETURN(RpeNode rpe, ParseRpeAlt());
    if (cur_.kind != Token::kEnd) {
      return Status::ParseError("trailing input after RPE: '" + cur_.text +
                                "'");
    }
    return Normalize(std::move(rpe));
  }

  Result<std::optional<ViewDdl>> ParseViewDdlStatement() {
    NEPAL_RETURN_NOT_OK(Advance());
    ViewDdl ddl;
    if (IsKeyword("CREATE")) {
      ddl.kind = ViewDdl::Kind::kCreate;
    } else if (IsKeyword("DROP")) {
      ddl.kind = ViewDdl::Kind::kDrop;
    } else if (IsKeyword("SERVE")) {
      ddl.kind = ViewDdl::Kind::kServe;
    } else {
      return std::optional<ViewDdl>{};  // not a DDL statement
    }
    NEPAL_RETURN_NOT_OK(Advance());
    NEPAL_RETURN_NOT_OK(ExpectKeyword("VIEW"));
    NEPAL_ASSIGN_OR_RETURN(ddl.name, ExpectIdent("a view name"));
    if (ddl.kind == ViewDdl::Kind::kCreate) {
      if (IsKeyword("AT")) {
        NEPAL_RETURN_NOT_OK(Advance());
        NEPAL_ASSIGN_OR_RETURN(Timestamp ts, ExpectTimestampLiteral());
        ddl.as_of = ts;
      }
      NEPAL_RETURN_NOT_OK(ExpectKeyword("AS"));
      NEPAL_ASSIGN_OR_RETURN(RpeNode rpe, ParseRpeAlt());
      ddl.rpe = Normalize(std::move(rpe));
      ddl.rpe_text = ddl.rpe.ToString();
    }
    if (IsPunct(";")) NEPAL_RETURN_NOT_OK(Advance());
    if (cur_.kind != Token::kEnd) {
      return Err("trailing input after view statement");
    }
    return std::optional<ViewDdl>(std::move(ddl));
  }

 private:
  Status Advance() {
    NEPAL_ASSIGN_OR_RETURN(cur_, lexer_.Next());
    return Status::OK();
  }

  bool IsKeyword(const char* kw) const {
    return cur_.kind == Token::kIdent && Upper(cur_.text) == kw;
  }
  bool IsPunct(const char* p) const {
    return cur_.kind == Token::kPunct && cur_.text == p;
  }

  Status Err(const std::string& msg) {
    return Status::ParseError(msg + " (at offset " + std::to_string(cur_.pos) +
                              ", near '" + cur_.text + "')");
  }

  Status ExpectKeyword(const char* kw) {
    if (!IsKeyword(kw)) return Err(std::string("expected ") + kw);
    return Advance();
  }
  Status ExpectPunct(const char* p) {
    if (!IsPunct(p)) return Err(std::string("expected '") + p + "'");
    return Advance();
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (cur_.kind != Token::kIdent) {
      return Status::ParseError(std::string("expected ") + what +
                                " (at offset " + std::to_string(cur_.pos) +
                                ")");
    }
    std::string name = cur_.text;
    NEPAL_RETURN_NOT_OK(Advance());
    return name;
  }

  Result<Timestamp> ExpectTimestampLiteral() {
    if (cur_.kind != Token::kString) {
      return Status::ParseError("expected a quoted timestamp literal");
    }
    NEPAL_ASSIGN_OR_RETURN(Timestamp ts, ParseTimestamp(cur_.text));
    NEPAL_RETURN_NOT_OK(Advance());
    return ts;
  }

  // [AT 't' [: 't']]
  Result<std::optional<TimeSpec>> ParseOptionalAt() {
    if (!IsKeyword("AT")) return std::optional<TimeSpec>{};
    NEPAL_RETURN_NOT_OK(Advance());
    TimeSpec spec;
    NEPAL_ASSIGN_OR_RETURN(spec.start, ExpectTimestampLiteral());
    if (IsPunct(":")) {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_ASSIGN_OR_RETURN(Timestamp end, ExpectTimestampLiteral());
      spec.end = end;
    }
    return std::optional<TimeSpec>(spec);
  }

  Result<Query> ParseQueryBody() {
    Query q;
    NEPAL_ASSIGN_OR_RETURN(q.at, ParseOptionalAt());

    // Temporal aggregation prefixes.
    if (IsKeyword("FIRST") || IsKeyword("LAST")) {
      bool first = IsKeyword("FIRST");
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_RETURN_NOT_OK(ExpectKeyword("TIME"));
      NEPAL_RETURN_NOT_OK(ExpectKeyword("WHEN"));
      NEPAL_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      q.agg = first ? TemporalAgg::kFirstTime : TemporalAgg::kLastTime;
    } else if (IsKeyword("WHEN")) {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      q.agg = TemporalAgg::kWhenExists;
    }

    if (IsKeyword("RETRIEVE")) {
      NEPAL_RETURN_NOT_OK(Advance());
      q.is_select = false;
      while (true) {
        NEPAL_ASSIGN_OR_RETURN(std::string var,
                               ExpectIdent("a range variable name"));
        q.retrieve_vars.push_back(std::move(var));
        if (!IsPunct(",")) break;
        NEPAL_RETURN_NOT_OK(Advance());
      }
    } else if (IsKeyword("SELECT")) {
      NEPAL_RETURN_NOT_OK(Advance());
      q.is_select = true;
      while (true) {
        NEPAL_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
        q.select_items.push_back(std::move(item));
        if (!IsPunct(",")) break;
        NEPAL_RETURN_NOT_OK(Advance());
      }
    } else {
      return Err("expected Retrieve or Select");
    }

    NEPAL_RETURN_NOT_OK(ExpectKeyword("FROM"));
    bool first_range_var = true;
    std::string last_view = "PATHS";
    while (true) {
      // Each entry is `<view> <var>` where <view> is PATHS or a registered
      // pathway view. The view may be elided after the first variable, as
      // in the paper's "From PATHS P(@...), Q(@...)" example — the
      // previous entry's view carries over.
      RangeVarDecl decl;
      NEPAL_ASSIGN_OR_RETURN(std::string head,
                             ExpectIdent(first_range_var
                                             ? "a pathway view (e.g. PATHS)"
                                             : "a view or variable name"));
      if (cur_.kind == Token::kIdent && !IsKeyword("IN")) {
        decl.view = head;
        last_view = head;
        NEPAL_ASSIGN_OR_RETURN(decl.name,
                               ExpectIdent("a range variable name"));
      } else if (first_range_var) {
        return Err("the first range variable needs a pathway view, e.g. "
                   "'From PATHS " + head + "'");
      } else {
        decl.view = last_view;
        decl.name = std::move(head);
      }
      first_range_var = false;
      if (IsPunct("(")) {
        NEPAL_RETURN_NOT_OK(Advance());
        NEPAL_RETURN_NOT_OK(ExpectPunct("@"));
        TimeSpec spec;
        NEPAL_ASSIGN_OR_RETURN(spec.start, ExpectTimestampLiteral());
        if (IsPunct(":")) {
          NEPAL_RETURN_NOT_OK(Advance());
          NEPAL_ASSIGN_OR_RETURN(Timestamp end, ExpectTimestampLiteral());
          spec.end = end;
        }
        decl.at = spec;
        NEPAL_RETURN_NOT_OK(ExpectPunct(")"));
      }
      if (IsKeyword("IN")) {
        NEPAL_RETURN_NOT_OK(Advance());
        if (cur_.kind != Token::kString) {
          return Err("expected a quoted data source name after In");
        }
        decl.source = cur_.text;
        NEPAL_RETURN_NOT_OK(Advance());
      }
      q.range_vars.push_back(std::move(decl));
      if (!IsPunct(",")) break;
      NEPAL_RETURN_NOT_OK(Advance());
    }

    // The Where clause is optional only when every range variable can get
    // its RPE elsewhere — i.e. it ranges over a named pathway view
    // ("Retrieve P From HOTPATHS P"). A variable over PATHS has no other
    // source of pathway structure, so a Where-less PATHS query is malformed
    // at parse time already.
    if (!IsKeyword("WHERE")) {
      for (const RangeVarDecl& decl : q.range_vars) {
        std::string upper = decl.view;
        for (char& c : upper) c = static_cast<char>(std::toupper(c));
        if (upper == "PATHS") {
          return Err("range variable '" + decl.name +
                     "' ranges over PATHS and needs a Where ... MATCHES "
                     "predicate");
        }
      }
    }
    if (IsKeyword("WHERE")) {
      NEPAL_RETURN_NOT_OK(Advance());
      while (true) {
        NEPAL_ASSIGN_OR_RETURN(Predicate pred, ParsePredicate());
        q.where.push_back(std::move(pred));
        if (!IsKeyword("AND")) break;
        NEPAL_RETURN_NOT_OK(Advance());
      }
    }
    if (IsKeyword("GROUP")) {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_RETURN_NOT_OK(ExpectKeyword("BY"));
      while (true) {
        NEPAL_ASSIGN_OR_RETURN(PathExpr expr, ParsePathExpr());
        q.group_by.push_back(std::move(expr));
        if (!IsPunct(",")) break;
        NEPAL_RETURN_NOT_OK(Advance());
      }
    }
    return q;
  }

  // select_item := agg '(' ['DISTINCT'] path_expr ')' | path_expr
  // where agg is COUNT | MIN | MAX | SUM.
  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    using Agg = SelectItem::Agg;
    Agg agg = Agg::kNone;
    if (IsKeyword("COUNT")) {
      agg = Agg::kCount;
    } else if (IsKeyword("MIN")) {
      agg = Agg::kMin;
    } else if (IsKeyword("MAX")) {
      agg = Agg::kMax;
    } else if (IsKeyword("SUM")) {
      agg = Agg::kSum;
    }
    if (agg == Agg::kNone) {
      NEPAL_ASSIGN_OR_RETURN(item.expr, ParsePathExpr());
      return item;
    }
    NEPAL_RETURN_NOT_OK(Advance());
    NEPAL_RETURN_NOT_OK(ExpectPunct("("));
    if (agg == Agg::kCount && IsKeyword("DISTINCT")) {
      agg = Agg::kCountDistinct;
      NEPAL_RETURN_NOT_OK(Advance());
    }
    item.agg = agg;
    NEPAL_ASSIGN_OR_RETURN(item.expr, ParsePathExpr());
    NEPAL_RETURN_NOT_OK(ExpectPunct(")"));
    // count(P).field etc. is meaningless; field access belongs inside.
    return item;
  }

  Result<Predicate> ParsePredicate() {
    Predicate pred;
    if (IsKeyword("NOT") || IsKeyword("EXISTS")) {
      pred.kind = Predicate::Kind::kExists;
      if (IsKeyword("NOT")) {
        pred.negate_exists = true;
        NEPAL_RETURN_NOT_OK(Advance());
      }
      NEPAL_RETURN_NOT_OK(ExpectKeyword("EXISTS"));
      NEPAL_RETURN_NOT_OK(ExpectPunct("("));
      NEPAL_ASSIGN_OR_RETURN(Query sub, ParseQueryBody());
      pred.subquery = std::make_shared<Query>(std::move(sub));
      NEPAL_RETURN_NOT_OK(ExpectPunct(")"));
      return pred;
    }
    // Either `Var MATCHES rpe` or a comparison of path expressions.
    if (cur_.kind == Token::kIdent && !IsKeyword("SOURCE") &&
        !IsKeyword("TARGET") && !IsKeyword("LENGTH")) {
      std::string name = cur_.text;
      NEPAL_RETURN_NOT_OK(Advance());
      if (IsKeyword("MATCHES")) {
        NEPAL_RETURN_NOT_OK(Advance());
        pred.kind = Predicate::Kind::kMatches;
        pred.var = std::move(name);
        NEPAL_ASSIGN_OR_RETURN(RpeNode rpe, ParseRpeAlt());
        pred.rpe = Normalize(std::move(rpe));
        return pred;
      }
      // A bare variable in a comparison.
      pred.lhs.kind = PathExpr::Kind::kVar;
      pred.lhs.var = std::move(name);
    } else {
      NEPAL_ASSIGN_OR_RETURN(pred.lhs, ParsePathExpr());
    }
    pred.kind = Predicate::Kind::kCompare;
    if (IsPunct("=")) {
      pred.negate_compare = false;
    } else if (IsPunct("<>")) {
      pred.negate_compare = true;
    } else {
      return Err("expected '=' or '<>' in comparison");
    }
    NEPAL_RETURN_NOT_OK(Advance());
    NEPAL_ASSIGN_OR_RETURN(pred.rhs, ParsePathExpr());
    return pred;
  }

  Result<PathExpr> ParsePathExpr() {
    PathExpr expr;
    if (cur_.kind == Token::kString) {
      expr.kind = PathExpr::Kind::kLiteral;
      expr.literal = Value(cur_.text);
      NEPAL_RETURN_NOT_OK(Advance());
      return expr;
    }
    if (cur_.kind == Token::kInt) {
      expr.kind = PathExpr::Kind::kLiteral;
      expr.literal = Value(cur_.int_value);
      NEPAL_RETURN_NOT_OK(Advance());
      return expr;
    }
    if (cur_.kind == Token::kDouble) {
      expr.kind = PathExpr::Kind::kLiteral;
      expr.literal = Value(cur_.double_value);
      NEPAL_RETURN_NOT_OK(Advance());
      return expr;
    }
    if (IsKeyword("TRUE") || IsKeyword("FALSE")) {
      expr.kind = PathExpr::Kind::kLiteral;
      expr.literal = Value(IsKeyword("TRUE"));
      NEPAL_RETURN_NOT_OK(Advance());
      return expr;
    }
    if (IsKeyword("SOURCE") || IsKeyword("TARGET") || IsKeyword("LENGTH")) {
      expr.kind = IsKeyword("SOURCE")   ? PathExpr::Kind::kSource
                  : IsKeyword("TARGET") ? PathExpr::Kind::kTarget
                                        : PathExpr::Kind::kLength;
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_RETURN_NOT_OK(ExpectPunct("("));
      NEPAL_ASSIGN_OR_RETURN(expr.var, ExpectIdent("a range variable name"));
      NEPAL_RETURN_NOT_OK(ExpectPunct(")"));
      if (IsPunct(".")) {
        NEPAL_RETURN_NOT_OK(Advance());
        NEPAL_ASSIGN_OR_RETURN(std::string field,
                               ExpectIdent("a field name"));
        expr.field = std::move(field);
      }
      return expr;
    }
    if (cur_.kind == Token::kIdent) {
      expr.kind = PathExpr::Kind::kVar;
      expr.var = cur_.text;
      NEPAL_RETURN_NOT_OK(Advance());
      return expr;
    }
    return Err("expected a path expression");
  }

  // ---- RPE grammar ----

  Result<RpeNode> ParseRpeAlt() {
    NEPAL_ASSIGN_OR_RETURN(RpeNode first, ParseRpeSeq());
    if (!IsPunct("|")) return first;
    std::vector<RpeNode> branches;
    branches.push_back(std::move(first));
    while (IsPunct("|")) {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_ASSIGN_OR_RETURN(RpeNode next, ParseRpeSeq());
      branches.push_back(std::move(next));
    }
    return RpeNode::Alt(std::move(branches));
  }

  Result<RpeNode> ParseRpeSeq() {
    NEPAL_ASSIGN_OR_RETURN(RpeNode first, ParseRpeUnit());
    if (!IsPunct("->")) return first;
    std::vector<RpeNode> parts;
    parts.push_back(std::move(first));
    while (IsPunct("->")) {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_ASSIGN_OR_RETURN(RpeNode next, ParseRpeUnit());
      parts.push_back(std::move(next));
    }
    return RpeNode::Seq(std::move(parts));
  }

  // unit := (atom | '('alt')' | '['alt']') ['{' i (','|'-') [j] '}' | '*' | '+']
  Result<RpeNode> ParseRpeUnit() {
    RpeNode unit;
    if (IsPunct("(")) {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_ASSIGN_OR_RETURN(unit, ParseRpeAlt());
      NEPAL_RETURN_NOT_OK(ExpectPunct(")"));
    } else if (IsPunct("[")) {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_ASSIGN_OR_RETURN(unit, ParseRpeAlt());
      NEPAL_RETURN_NOT_OK(ExpectPunct("]"));
    } else {
      NEPAL_ASSIGN_OR_RETURN(unit, ParseRpeAtom());
    }
    if (IsPunct("*")) {
      NEPAL_RETURN_NOT_OK(Advance());
      return RpeNode::Rep(std::move(unit), 0, kUnboundedRep);
    }
    if (IsPunct("+")) {
      NEPAL_RETURN_NOT_OK(Advance());
      return RpeNode::Rep(std::move(unit), 1, kUnboundedRep);
    }
    if (IsPunct("{")) {
      NEPAL_RETURN_NOT_OK(Advance());
      if (cur_.kind != Token::kInt) return Err("expected repetition minimum");
      int min_rep = static_cast<int>(cur_.int_value);
      NEPAL_RETURN_NOT_OK(Advance());
      // Accept both {i,j} and the paper's occasional {i-j}; an omitted
      // maximum ({i,}) means unbounded.
      if (IsPunct(",")) {
        NEPAL_RETURN_NOT_OK(Advance());
      } else if (cur_.kind == Token::kPunct && cur_.text == "-") {
        NEPAL_RETURN_NOT_OK(Advance());
      } else {
        return Err("expected ',' or '-' in repetition bounds");
      }
      if (IsPunct("}")) {
        NEPAL_RETURN_NOT_OK(Advance());
        return RpeNode::Rep(std::move(unit), min_rep, kUnboundedRep);
      }
      if (cur_.kind != Token::kInt) return Err("expected repetition maximum");
      int max_rep = static_cast<int>(cur_.int_value);
      if (max_rep < min_rep) {
        return Err("repetition bounds {" + std::to_string(min_rep) + "," +
                   std::to_string(max_rep) + "} are malformed (min > max)");
      }
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_RETURN_NOT_OK(ExpectPunct("}"));
      return RpeNode::Rep(std::move(unit), min_rep, max_rep);
    }
    return unit;
  }

  Result<RpeNode> ParseRpeAtom() {
    NEPAL_ASSIGN_OR_RETURN(std::string cls, ExpectIdent("a class name"));
    while (IsPunct(":")) {
      NEPAL_RETURN_NOT_OK(Advance());
      NEPAL_ASSIGN_OR_RETURN(std::string part, ExpectIdent("a class name"));
      cls += ":" + part;
    }
    NEPAL_RETURN_NOT_OK(ExpectPunct("("));
    std::vector<RawCondition> conds;
    while (!IsPunct(")")) {
      RawCondition cond;
      NEPAL_ASSIGN_OR_RETURN(cond.field, ExpectIdent("a field name"));
      while (IsPunct(".")) {
        NEPAL_RETURN_NOT_OK(Advance());
        NEPAL_ASSIGN_OR_RETURN(std::string key,
                               ExpectIdent("a member or map key"));
        cond.subpath.push_back(std::move(key));
      }
      using Op = storage::FieldCondition::Op;
      if (IsPunct("=")) {
        cond.op = Op::kEq;
      } else if (IsPunct("<>")) {
        cond.op = Op::kNe;
      } else if (IsPunct("<")) {
        cond.op = Op::kLt;
      } else if (IsPunct("<=")) {
        cond.op = Op::kLe;
      } else if (IsPunct(">")) {
        cond.op = Op::kGt;
      } else if (IsPunct(">=")) {
        cond.op = Op::kGe;
      } else {
        return Err("expected a comparison operator in atom condition");
      }
      NEPAL_RETURN_NOT_OK(Advance());
      if (cur_.kind == Token::kString) {
        cond.value = Value(cur_.text);
      } else if (cur_.kind == Token::kInt) {
        cond.value = Value(cur_.int_value);
      } else if (cur_.kind == Token::kDouble) {
        cond.value = Value(cur_.double_value);
      } else if (IsKeyword("TRUE") || IsKeyword("FALSE")) {
        cond.value = Value(IsKeyword("TRUE"));
      } else {
        return Err("expected a literal in atom condition");
      }
      NEPAL_RETURN_NOT_OK(Advance());
      conds.push_back(std::move(cond));
      if (IsPunct(",")) NEPAL_RETURN_NOT_OK(Advance());
    }
    NEPAL_RETURN_NOT_OK(Advance());  // ')'
    return RpeNode::Atom(std::move(cls), std::move(conds));
  }

  Lexer lexer_;
  Token cur_{Token::kEnd, "", 0, 0, 0};
};

}  // namespace

Result<Query> ParseQuery(const std::string& text) {
  Parser parser(text);
  return parser.ParseFullQuery();
}

Result<RpeNode> ParseRpe(const std::string& text) {
  Parser parser(text);
  return parser.ParseBareRpe();
}

Result<std::optional<ViewDdl>> ParseViewDdl(const std::string& text) {
  Parser parser(text);
  return parser.ParseViewDdlStatement();
}

std::string SelectItem::ToString() const {
  switch (agg) {
    case Agg::kNone:
      return expr.ToString();
    case Agg::kCount:
      return "count(" + expr.ToString() + ")";
    case Agg::kCountDistinct:
      return "count(distinct " + expr.ToString() + ")";
    case Agg::kMin:
      return "min(" + expr.ToString() + ")";
    case Agg::kMax:
      return "max(" + expr.ToString() + ")";
    case Agg::kSum:
      return "sum(" + expr.ToString() + ")";
  }
  return "?";
}

std::string PathExpr::ToString() const {
  switch (kind) {
    case Kind::kSource:
      return "source(" + var + ")" + (field ? "." + *field : "");
    case Kind::kTarget:
      return "target(" + var + ")" + (field ? "." + *field : "");
    case Kind::kLength:
      return "length(" + var + ")";
    case Kind::kVar:
      return var;
    case Kind::kLiteral:
      return literal.ToString();
  }
  return "?";
}

}  // namespace nepal::nql
