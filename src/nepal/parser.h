// The NQL parser: text -> Query AST. Keywords are case-insensitive;
// identifiers (class, field and variable names) are case-sensitive.

#ifndef NEPAL_NEPAL_PARSER_H_
#define NEPAL_NEPAL_PARSER_H_

#include <string>

#include "common/status.h"
#include "nepal/ast.h"

namespace nepal::nql {

/// Parses a full NQL query. Errors carry the offending token position.
Result<Query> ParseQuery(const std::string& text);

/// Parses a bare RPE, e.g. "VNF()->[Vertical()]{1,6}->Host(id=5)".
/// Useful for tests and the programmatic API.
Result<RpeNode> ParseRpe(const std::string& text);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_PARSER_H_
