// The NQL parser: text -> Query AST. Keywords are case-insensitive;
// identifiers (class, field and variable names) are case-sensitive.

#ifndef NEPAL_NEPAL_PARSER_H_
#define NEPAL_NEPAL_PARSER_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "nepal/ast.h"

namespace nepal::nql {

/// Parses a full NQL query. Errors carry the offending token position.
Result<Query> ParseQuery(const std::string& text);

/// Parses a bare RPE, e.g. "VNF()->[Vertical()]{1,6}->Host(id=5)".
/// Useful for tests and the programmatic API.
Result<RpeNode> ParseRpe(const std::string& text);

/// A materialized-view management statement:
///
///   CREATE VIEW <name> [AT '<timestamp>'] AS <rpe>
///   DROP VIEW <name>
///   SERVE VIEW <name>
///
/// CREATE/DROP act on a views::ViewCatalog (the shell wires them up);
/// SERVE VIEW desugars inside the engine to `Retrieve P From <name> P`,
/// answered from the cache by the attached PathwayViewProvider.
struct ViewDdl {
  enum class Kind { kCreate, kDrop, kServe };
  Kind kind = Kind::kServe;
  std::string name;
  /// kCreate: the pathway expression, normalized; `rpe_text` is its
  /// canonical rendering (the registration key providers match against).
  RpeNode rpe;
  std::string rpe_text;
  /// kCreate: AsOf mode when the AT clause is present; Current otherwise.
  std::optional<Timestamp> as_of;
};

/// Recognizes a view DDL statement. Returns nullopt (not an error) when
/// the text does not start with CREATE / DROP / SERVE — callers then hand
/// the text to ParseQuery as usual.
Result<std::optional<ViewDdl>> ParseViewDdl(const std::string& text);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_PARSER_H_
