#include "nepal/snapshot.h"

#include <shared_mutex>

namespace nepal::nql {

using storage::PathSet;
using storage::TimeView;

PathSet LockedExecutor::Select(const storage::CompiledAtom& atom,
                               const TimeView& view) {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->Select(atom, view);
}

PathSet LockedExecutor::SelectSeeds(const std::vector<Uid>& nodes,
                                    const TimeView& view) {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->SelectSeeds(nodes, view);
}

PathSet LockedExecutor::ExtendAtom(const PathSet& frontier,
                                   const storage::CompiledAtom& atom,
                                   storage::Direction dir,
                                   const TimeView& view) {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->ExtendAtom(frontier, atom, dir, view);
}

PathSet LockedExecutor::ExtendBlock(
    const PathSet& frontier,
    const std::vector<storage::CompiledAtom>& alternatives, int min_rep,
    int max_rep, storage::Direction dir, const TimeView& view) {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->ExtendBlock(frontier, alternatives, min_rep, max_rep, dir,
                             view);
}

PathSet LockedExecutor::FinalizeTail(const PathSet& frontier,
                                     const TimeView& view) {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->FinalizeTail(frontier, view);
}

LockedBackend::LockedBackend(storage::GraphDb* db)
    : db_(db), inner_(&db->backend()) {}

const stats::GraphStats& LockedBackend::stats() const {
  std::call_once(stats_once_, [this] {
    std::shared_lock<std::shared_mutex> lock(db_->mutex());
    const_cast<LockedBackend*>(this)->RestoreStats(inner_->stats());
  });
  return StorageBackend::stats();
}

void LockedBackend::Scan(const storage::ScanSpec& spec, const TimeView& view,
                         const storage::ElementSink& sink) const {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  inner_->Scan(spec, view, sink);
}

void LockedBackend::Get(Uid uid, const TimeView& view,
                        const storage::ElementSink& sink) const {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  inner_->Get(uid, view, sink);
}

void LockedBackend::IncidentEdges(Uid node, storage::Direction dir,
                                  const schema::ClassDef* edge_cls,
                                  const TimeView& view,
                                  const storage::ElementSink& sink) const {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  inner_->IncidentEdges(node, dir, edge_cls, view, sink);
}

bool LockedBackend::Exists(Uid uid, const TimeView& view) const {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->Exists(uid, view);
}

size_t LockedBackend::CountClass(const schema::ClassDef* cls) const {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->CountClass(cls);
}

size_t LockedBackend::MemoryUsage() const {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->MemoryUsage();
}

size_t LockedBackend::VersionCount() const {
  std::shared_lock<std::shared_mutex> lock(db_->mutex());
  return inner_->VersionCount();
}

std::unique_ptr<storage::PathOperatorExecutor> LockedBackend::CreateExecutor()
    const {
  return std::make_unique<LockedExecutor>(db_, inner_->CreateExecutor());
}

}  // namespace nepal::nql
