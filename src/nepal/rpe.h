// Regular Pathway Expressions (RPEs) — Section 3.3 of the paper.
//
// An RPE is built from atoms (class name + field conditions over nodes *or*
// edges, treated symmetrically), concatenation (->), disjunction (|) and
// bounded repetition ([r]{i,j}). Parsing produces a tree with textual class
// and field names; Resolve() binds it to a schema, producing CompiledAtoms.

#ifndef NEPAL_NEPAL_RPE_H_
#define NEPAL_NEPAL_RPE_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "schema/schema.h"
#include "storage/pathset.h"

namespace nepal::nql {

/// Sentinel for an open upper repetition bound: `[r]*` is {0,kUnboundedRep},
/// `[r]+` is {1,kUnboundedRep} and `[r]{i,}` is {i,kUnboundedRep}. Chosen as
/// INT_MAX (rather than -1) so `min_rep <= max_rep` validations hold
/// unchanged; it doubles as the saturation ceiling of MinAtoms/MaxAtoms.
constexpr int kUnboundedRep = std::numeric_limits<int>::max();

/// Pre-resolution atom condition: field name (with optional dotted path
/// into structured data), operator, literal.
struct RawCondition {
  std::string field;
  std::vector<std::string> subpath;
  storage::FieldCondition::Op op = storage::FieldCondition::Op::kEq;
  Value value;
};

struct RpeNode {
  enum class Kind { kAtom, kSeq, kAlt, kRep };

  Kind kind = Kind::kAtom;

  // kAtom.
  std::string class_name;
  std::vector<RawCondition> raw_conditions;
  storage::CompiledAtom atom;  // valid after Resolve()

  // kSeq / kAlt / kRep.
  std::vector<RpeNode> children;

  // kRep bounds (inclusive).
  int min_rep = 1;
  int max_rep = 1;

  static RpeNode Atom(std::string cls, std::vector<RawCondition> conds = {}) {
    RpeNode n;
    n.kind = Kind::kAtom;
    n.class_name = std::move(cls);
    n.raw_conditions = std::move(conds);
    return n;
  }
  static RpeNode Seq(std::vector<RpeNode> children) {
    RpeNode n;
    n.kind = Kind::kSeq;
    n.children = std::move(children);
    return n;
  }
  static RpeNode Alt(std::vector<RpeNode> children) {
    RpeNode n;
    n.kind = Kind::kAlt;
    n.children = std::move(children);
    return n;
  }
  static RpeNode Rep(RpeNode body, int min_rep, int max_rep) {
    RpeNode n;
    n.kind = Kind::kRep;
    n.children.push_back(std::move(body));
    n.min_rep = min_rep;
    n.max_rep = max_rep;
    return n;
  }

  /// Source-like rendering, e.g. "VNF()->[HostedOn()]{1,6}->Host(id=23245)".
  std::string ToString() const;
};

/// Canonical rendering of repetition bounds: "*" for {0,unbounded}, "+" for
/// {1,unbounded}, "{i,}" for {i,unbounded} and "{i,j}" otherwise. Shared by
/// RPE, logical-plan and physical-step printers so EXPLAIN output round-trips
/// through the parser.
std::string RepSuffix(int min_rep, int max_rep);

/// Flattens nested Seq/Alt nodes and collapses single-child containers.
RpeNode Normalize(RpeNode node);

/// Binds every atom to `schema`: resolves class names, field indexes and
/// type-checks literals. `max_repetition` bounds repetition blocks (the
/// length-limitation requirement).
Status ResolveRpe(const schema::Schema& schema, int max_repetition,
                  RpeNode* node);

/// Minimum / maximum number of atoms a matching fragment consumes. Used for
/// length-limit checks and diagnostics. Both saturate at kUnboundedRep
/// instead of overflowing int on nested large repetitions; MaxAtoms of an
/// unbounded repetition with a non-empty body is kUnboundedRep.
int MinAtoms(const RpeNode& node);
int MaxAtoms(const RpeNode& node);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_RPE_H_
