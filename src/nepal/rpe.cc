#include "nepal/rpe.h"

#include <algorithm>

namespace nepal::nql {

namespace {

// Saturating arithmetic over non-negative atom counts: anything that would
// exceed kUnboundedRep clamps to it, so nested large repetitions (e.g.
// [[r]{32,32}]{32,32}...) never overflow int, and kUnboundedRep is absorbing.
int SatAdd(int a, int b) {
  if (a > kUnboundedRep - b) return kUnboundedRep;
  return a + b;
}

int SatMul(int a, int b) {
  if (a == 0 || b == 0) return 0;
  if (a > kUnboundedRep / b) return kUnboundedRep;
  return a * b;
}

}  // namespace

std::string RepSuffix(int min_rep, int max_rep) {
  if (max_rep == kUnboundedRep) {
    if (min_rep == 0) return "*";
    if (min_rep == 1) return "+";
    return "{" + std::to_string(min_rep) + ",}";
  }
  return "{" + std::to_string(min_rep) + "," + std::to_string(max_rep) + "}";
}

std::string RpeNode::ToString() const {
  switch (kind) {
    case Kind::kAtom: {
      std::string out = class_name + "(";
      for (size_t i = 0; i < raw_conditions.size(); ++i) {
        if (i > 0) out += ", ";
        storage::FieldCondition fc;
        fc.field_name = raw_conditions[i].field;
        fc.field_index = raw_conditions[i].field == "id" ? -1 : 0;
        fc.op = raw_conditions[i].op;
        fc.value = raw_conditions[i].value;
        out += fc.ToString();
      }
      return out + ")";
    }
    case Kind::kSeq: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += "->";
        bool paren = children[i].kind == Kind::kAlt;
        if (paren) out += "(";
        out += children[i].ToString();
        if (paren) out += ")";
      }
      return out;
    }
    case Kind::kAlt: {
      std::string out;
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += "|";
        out += children[i].ToString();
      }
      return out;
    }
    case Kind::kRep:
      return "[" + children[0].ToString() + "]" + RepSuffix(min_rep, max_rep);
  }
  return "?";
}

RpeNode Normalize(RpeNode node) {
  if (node.kind == RpeNode::Kind::kAtom) return node;
  for (RpeNode& child : node.children) child = Normalize(std::move(child));
  if (node.kind == RpeNode::Kind::kRep) {
    // [r]{1,1} is just r.
    if (node.min_rep == 1 && node.max_rep == 1) {
      return std::move(node.children[0]);
    }
    return node;
  }
  // Flatten same-kind children (Seq in Seq, Alt in Alt) and collapse
  // single-child containers.
  std::vector<RpeNode> flat;
  for (RpeNode& child : node.children) {
    if (child.kind == node.kind) {
      for (RpeNode& grandchild : child.children) {
        flat.push_back(std::move(grandchild));
      }
    } else {
      flat.push_back(std::move(child));
    }
  }
  if (flat.size() == 1) return std::move(flat[0]);
  node.children = std::move(flat);
  return node;
}

int MinAtoms(const RpeNode& node) {
  switch (node.kind) {
    case RpeNode::Kind::kAtom:
      return 1;
    case RpeNode::Kind::kSeq: {
      int total = 0;
      for (const RpeNode& child : node.children) {
        total = SatAdd(total, MinAtoms(child));
      }
      return total;
    }
    case RpeNode::Kind::kAlt: {
      int best = MinAtoms(node.children[0]);
      for (const RpeNode& child : node.children) {
        best = std::min(best, MinAtoms(child));
      }
      return best;
    }
    case RpeNode::Kind::kRep:
      return SatMul(node.min_rep, MinAtoms(node.children[0]));
  }
  return 0;
}

int MaxAtoms(const RpeNode& node) {
  switch (node.kind) {
    case RpeNode::Kind::kAtom:
      return 1;
    case RpeNode::Kind::kSeq: {
      int total = 0;
      for (const RpeNode& child : node.children) {
        total = SatAdd(total, MaxAtoms(child));
      }
      return total;
    }
    case RpeNode::Kind::kAlt: {
      int best = 0;
      for (const RpeNode& child : node.children) {
        best = std::max(best, MaxAtoms(child));
      }
      return best;
    }
    case RpeNode::Kind::kRep:
      return SatMul(node.max_rep, MaxAtoms(node.children[0]));
  }
  return 0;
}

Status ResolveRpe(const schema::Schema& schema, int max_repetition,
                  RpeNode* node) {
  switch (node->kind) {
    case RpeNode::Kind::kAtom: {
      NEPAL_ASSIGN_OR_RETURN(const schema::ClassDef* cls,
                             schema.GetClass(node->class_name));
      node->atom.cls = cls;
      node->atom.conditions.clear();
      for (const RawCondition& raw : node->raw_conditions) {
        storage::FieldCondition cond;
        cond.field_name = raw.field;
        cond.op = raw.op;
        cond.value = raw.value;
        if (raw.field == "id") {
          cond.field_index = -1;
          if (!raw.subpath.empty()) {
            return Status::InvalidArgument(
                "atom " + node->class_name +
                ": the id pseudo-field has no members");
          }
          if (raw.value.kind() != ValueKind::kInt) {
            return Status::InvalidArgument(
                "atom " + node->class_name +
                ": the id pseudo-field compares against integers, got " +
                raw.value.ToString());
          }
        } else {
          int idx = cls->FieldIndex(raw.field);
          if (idx < 0) {
            return Status::InvalidArgument("atom " + node->class_name +
                                           ": class " + cls->name() +
                                           " has no field '" + raw.field +
                                           "' (atoms are strongly typed)");
          }
          cond.field_index = idx;
          cond.subpath = raw.subpath;
          schema::TypeRef type = cls->fields()[static_cast<size_t>(idx)].type;
          // Dotted paths dig through map keys and composite members.
          for (const std::string& key : raw.subpath) {
            if (type.container == schema::ContainerKind::kMap) {
              type.container = schema::ContainerKind::kNone;
              continue;  // any key yields the map's element type
            }
            if (type.container == schema::ContainerKind::kNone &&
                type.is_composite()) {
              const schema::DataTypeDef* dt =
                  schema.FindDataType(type.data_type);
              const schema::FieldDef* member = nullptr;
              for (const schema::FieldDef& f : dt->fields) {
                if (f.name == key) member = &f;
              }
              if (member == nullptr) {
                return Status::InvalidArgument(
                    "atom " + node->class_name + ": data type " + dt->name +
                    " has no member '" + key + "'");
              }
              type = member->type;
              continue;
            }
            return Status::Unsupported(
                "atom " + node->class_name + ": '" + raw.field + "." + key +
                "' — only map keys and data-type members are addressable in "
                "predicates");
          }
          if (type.container != schema::ContainerKind::kNone ||
              type.is_composite()) {
            return Status::Unsupported(
                "atom " + node->class_name + ": predicates on list/set or "
                "whole composite field '" + raw.field +
                "' are not yet supported (address a member with a dotted "
                "path)");
          }
          // Literal type agreement: numerics mix, everything else must match.
          ValueKind declared = type.primitive;
          ValueKind literal = raw.value.kind();
          if (declared == ValueKind::kIp && literal == ValueKind::kString) {
            // IP fields accept dotted-quad string literals.
            NEPAL_ASSIGN_OR_RETURN(cond.value,
                                   Value::ParseIp(raw.value.AsString()));
            literal = ValueKind::kIp;
          }
          bool numeric_ok =
              (declared == ValueKind::kInt || declared == ValueKind::kDouble) &&
              (literal == ValueKind::kInt || literal == ValueKind::kDouble);
          if (!numeric_ok && declared != literal) {
            return Status::InvalidArgument(
                "atom " + node->class_name + ": field '" + raw.field +
                "' has type " + std::string(ValueKindToString(declared)) +
                " but the literal is " + ValueKindToString(literal));
          }
        }
        node->atom.conditions.push_back(std::move(cond));
      }
      return Status::OK();
    }
    case RpeNode::Kind::kSeq:
    case RpeNode::Kind::kAlt:
      for (RpeNode& child : node->children) {
        NEPAL_RETURN_NOT_OK(ResolveRpe(schema, max_repetition, &child));
      }
      return Status::OK();
    case RpeNode::Kind::kRep:
      if (node->min_rep < 0 || node->max_rep < node->min_rep) {
        return Status::InvalidArgument(
            "repetition bounds {" + std::to_string(node->min_rep) + "," +
            std::to_string(node->max_rep) + "} are malformed");
      }
      // Unbounded repetitions are exempt from the static length limit: the
      // automaton evaluator bounds them dynamically (paths are simple, so
      // traversal terminates regardless of the expression).
      if (node->max_rep != kUnboundedRep && node->max_rep > max_repetition) {
        return Status::PlanError(
            "repetition bound " + std::to_string(node->max_rep) +
            " exceeds the length limit (" + std::to_string(max_repetition) +
            "); RPEs must be length-limited");
      }
      return ResolveRpe(schema, max_repetition, &node->children[0]);
  }
  return Status::Internal("unknown RPE node kind");
}

}  // namespace nepal::nql
