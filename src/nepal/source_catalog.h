// SourceCatalog: the named data sources a QueryEngine can route to — and,
// since the replication fleet, the engine's read-path router.
//
// Federation used to be a bare name->GraphDb* map; replication makes a
// source's *role* matter: a warm-standby follower may serve reads (`From
// PATHS P In 'standby'`) but must never be routed writes, or it diverges
// from its primary. The catalog keeps one descriptor per name — the
// database, its role, whether it accepts writes, and a slot for
// per-source statistics (reserved for federated cost-based planning) —
// and is the single place that decides whether a routed operation is
// legal for that source.
//
// Read routing: replicas attach live endpoints (AttachReplica) that
// report their current database, applied position and staleness.
// RouteRead() picks where a read goes under a policy:
//
//   kPrimaryOnly  always the primary (the default; identical to the
//                 pre-fleet behavior),
//   kReplicaOk    the least-lagged replica whose staleness is within
//                 max_lag_ms, else the primary,
//   kRoundRobin   rotate across all replicas within the bound (and the
//                 primary), spreading read load.
//
// A replica route carries the replica's commit epoch pinned at decision
// time; the engine evaluates the whole query at that epoch (snapshot
// mode), so a routed read never straddles replica apply batches — bounded
// staleness, exact snapshot.
//
// The catalog is thread-safe: queries route reads concurrently with
// replicas (re)attaching and the shell inspecting it.

#ifndef NEPAL_NEPAL_SOURCE_CATALOG_H_
#define NEPAL_NEPAL_SOURCE_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/graphdb.h"

namespace nepal::stats {
class GraphStats;
}  // namespace nepal::stats

namespace nepal::nql {

enum class SourceRole {
  kPrimary,  // authoritative, writable copy
  kReplica,  // warm-standby follower; reads only
};

inline const char* SourceRoleToString(SourceRole role) {
  switch (role) {
    case SourceRole::kPrimary:
      return "primary";
    case SourceRole::kReplica:
      return "replica";
  }
  return "?";
}

/// A live replica as the router sees it. Implemented by
/// replication::ReplicaStore; the indirection exists because a follower
/// can re-bootstrap into a fresh generation mid-life — the endpoint
/// always reports the *current* database, while queries already running
/// against a retired generation keep reading it safely.
class ReplicaEndpoint {
 public:
  virtual ~ReplicaEndpoint() = default;

  /// The replica's current (generation's) database.
  virtual storage::GraphDb& replica_db() = 0;

  /// Milliseconds since the replica last applied a frame or confirmed it
  /// is caught up; grows while disconnected from its primary.
  virtual uint32_t staleness_ms() const = 0;

  /// Frames applied since bootstrap (monotone within a generation).
  virtual uint64_t records_applied() const = 0;

  /// False once the replica stopped following (promoted, or its apply
  /// loop failed); the router skips it.
  virtual bool serving() const = 0;
};

struct SourceDescriptor {
  storage::GraphDb* db = nullptr;
  SourceRole role = SourceRole::kPrimary;
  /// Writes routed at this source fail with kReadOnly. Forced true for
  /// replicas on registration; may also be set on a primary (e.g. a
  /// snapshot opened for forensics).
  bool read_only = false;
  /// Per-source statistics for federated cost-based planning. Reserved:
  /// registered but not yet consulted by the optimizer (see ROADMAP).
  const stats::GraphStats* stats = nullptr;
  /// Live handle for replica sources attached via AttachReplica; null for
  /// plain registrations.
  ReplicaEndpoint* endpoint = nullptr;

  /// The database to read: the endpoint's current generation when one is
  /// attached, else the registered pointer.
  storage::GraphDb* database() const {
    return endpoint != nullptr ? &endpoint->replica_db() : db;
  }
};

enum class ReadPolicy {
  kPrimaryOnly,
  kReplicaOk,
  kRoundRobin,
};

inline const char* ReadPolicyToString(ReadPolicy policy) {
  switch (policy) {
    case ReadPolicy::kPrimaryOnly:
      return "primary_only";
    case ReadPolicy::kReplicaOk:
      return "replica_ok";
    case ReadPolicy::kRoundRobin:
      return "round_robin";
  }
  return "?";
}

struct RoutingOptions {
  ReadPolicy policy = ReadPolicy::kPrimaryOnly;
  /// A replica staler than this is not read from (bounded staleness).
  uint32_t max_lag_ms = 250;
};

/// Where one read went and the consistency it got.
struct RouteDecision {
  storage::GraphDb* db = nullptr;
  std::string source = "primary";  // catalog name, or "primary"
  bool replica = false;
  uint32_t staleness_ms = 0;  // the chosen replica's lag at decision time
  /// The replica's commit epoch pinned at decision time (0 for primary
  /// routes); the engine evaluates the routed query exactly there.
  uint64_t epoch = 0;
};

class SourceCatalog {
 public:
  /// Registers (or replaces) `name`. A replica is forcibly read-only.
  Status Register(const std::string& name, SourceDescriptor desc);

  /// Registers `name` as a replica read target backed by a live endpoint.
  /// The endpoint must outlive the catalog entry (Detach before
  /// destroying the replica).
  Status AttachReplica(const std::string& name, ReplicaEndpoint* endpoint);

  /// Removes `name`; no-op when absent.
  void Detach(const std::string& name);

  Result<SourceDescriptor> Lookup(const std::string& name) const;

  /// The database for read routing; any registered source qualifies.
  Result<storage::GraphDb*> Readable(const std::string& name) const;

  /// The database for write routing; kReadOnly for replicas and other
  /// read-only sources.
  Result<storage::GraphDb*> Writable(const std::string& name) const;

  /// Routes one read issued against `primary` under `options`. Falls back
  /// to the primary when no replica is attached, serving and within the
  /// staleness bound. Updates nepal.router.* counters.
  RouteDecision RouteRead(storage::GraphDb* primary,
                          const RoutingOptions& options) const;

  std::vector<std::string> Names() const;
  /// Snapshot iteration: descriptors are copied out under the lock, then
  /// `fn` runs without it (safe to touch the catalog from `fn`).
  void ForEach(const std::function<void(const std::string&,
                                        const SourceDescriptor&)>& fn) const;

  /// One line per source: "name: role[, read-only]", with lag/staleness
  /// for live replica endpoints — shell `\replication`.
  std::string Describe() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, SourceDescriptor> sources_;
  mutable uint64_t rr_cursor_ = 0;  // round-robin position, guarded by mu_
};

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_SOURCE_CATALOG_H_
