// SourceCatalog: the named data sources a QueryEngine can route to.
//
// Federation used to be a bare name->GraphDb* map; replication makes a
// source's *role* matter: a warm-standby follower may serve reads (`From
// PATHS P In 'standby'`) but must never be routed writes, or it diverges
// from its primary. The catalog keeps one descriptor per name — the
// database, its role, whether it accepts writes, and a slot for
// per-source statistics (reserved for federated cost-based planning; the
// optimizer today only costs the local source) — and is the single place
// that decides whether a routed operation is legal for that source.

#ifndef NEPAL_NEPAL_SOURCE_CATALOG_H_
#define NEPAL_NEPAL_SOURCE_CATALOG_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/graphdb.h"

namespace nepal::stats {
class GraphStats;
}  // namespace nepal::stats

namespace nepal::nql {

enum class SourceRole {
  kPrimary,  // authoritative, writable copy
  kReplica,  // warm-standby follower; reads only
};

inline const char* SourceRoleToString(SourceRole role) {
  switch (role) {
    case SourceRole::kPrimary:
      return "primary";
    case SourceRole::kReplica:
      return "replica";
  }
  return "?";
}

struct SourceDescriptor {
  storage::GraphDb* db = nullptr;
  SourceRole role = SourceRole::kPrimary;
  /// Writes routed at this source fail with kReadOnly. Forced true for
  /// replicas on registration; may also be set on a primary (e.g. a
  /// snapshot opened for forensics).
  bool read_only = false;
  /// Per-source statistics for federated cost-based planning. Reserved:
  /// registered but not yet consulted by the optimizer (see ROADMAP).
  const stats::GraphStats* stats = nullptr;
};

class SourceCatalog {
 public:
  /// Registers (or replaces) `name`. A replica is forcibly read-only.
  Status Register(const std::string& name, SourceDescriptor desc);

  Result<const SourceDescriptor*> Lookup(const std::string& name) const;

  /// The database for read routing; any registered source qualifies.
  Result<storage::GraphDb*> Readable(const std::string& name) const;

  /// The database for write routing; kReadOnly for replicas and other
  /// read-only sources.
  Result<storage::GraphDb*> Writable(const std::string& name) const;

  std::vector<std::string> Names() const;
  void ForEach(const std::function<void(const std::string&,
                                        const SourceDescriptor&)>& fn) const;

  /// One line per source: "name: role[, read-only]" — shell `\replication`.
  std::string Describe() const;

 private:
  std::map<std::string, SourceDescriptor> sources_;
};

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_SOURCE_CATALOG_H_
