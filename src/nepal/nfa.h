// Regular-path automaton — the NFA side of the graph × NFA product.
//
// A resolved RPE compiles to a Thompson-style epsilon-NFA (one fragment per
// Atom/Seq/Alt/Rep node) whose transitions carry CompiledAtoms instead of
// characters. Epsilon transitions are then eliminated by closure, states are
// renumbered in BFS order from the start state (so construction is
// deterministic and EXPLAIN output is stable), and the result is a plain
// table: per-state transition lists plus an accept bitmap.
//
// Bounded repetitions [r]{i,j} expand to i mandatory body copies followed by
// j-i optional ones (a DAG — each copy encodes a distinct iteration count),
// exactly mirroring the legacy unroll emission. Unbounded repetitions
// ([r]*, [r]+, [r]{i,}) add a single looping body copy, which is the part
// no finite unroll can express. The executor (nepal/executor.cc) runs the
// product traversal with memoized (state, path) visitation, so cyclic
// automata terminate on cyclic graphs.

#ifndef NEPAL_NEPAL_NFA_H_
#define NEPAL_NEPAL_NFA_H_

#include <string>
#include <vector>

#include "nepal/logical_plan.h"
#include "nepal/rpe.h"
#include "storage/pathset.h"

namespace nepal::nql {

struct NfaTransition {
  int target = -1;
  storage::CompiledAtom atom;
};

struct Nfa {
  /// Start state; 0 after renumbering (−1 only for the empty automaton).
  int start = -1;
  /// Per-state outgoing transitions, indexed by state id.
  std::vector<std::vector<NfaTransition>> states;
  /// Accept bitmap, indexed by state id.
  std::vector<bool> accept;

  size_t num_states() const { return states.size(); }
  size_t num_transitions() const {
    size_t n = 0;
    for (const auto& out : states) n += out.size();
    return n;
  }
  /// True when the start state accepts: the automaton matches the empty
  /// atom sequence, i.e. the input frontier passes through unchanged.
  bool accepts_empty() const {
    return start >= 0 && static_cast<size_t>(start) < accept.size() &&
           accept[static_cast<size_t>(start)];
  }

  /// Multi-line rendering for EXPLAIN: one line per state with its
  /// transitions; when `state_est` is non-null (per-state arrival estimates
  /// from the optimizer, parallel to `states`), appends "~N" to each state.
  std::string ToString(const std::vector<double>* state_est = nullptr) const;
};

/// Compiles an optimized logical subtree (typically a kRep node) into an
/// epsilon-free NFA. Pruned subtrees follow EmitProgram's conventions: a
/// pruned child inside a sequence or a pruned optional branch matches only
/// the empty sequence.
Nfa BuildNfa(const LogicalNode& node);

/// Convenience overload for a resolved RPE subtree (no optimizer
/// annotations).
Nfa BuildNfa(const RpeNode& resolved);

/// The automaton recognizing the reversed atom sequences, used when a
/// program runs backwards (prefix side of an anchored plan, or seeded
/// evaluation from the target side).
Nfa ReverseNfa(const Nfa& nfa);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_NFA_H_
