// Snapshot-read decorators (EngineOptions::snapshot_reads, src/views).
//
// In snapshot mode a reader does not hold a source's shared lock across a
// whole evaluation; every TimeView is pinned to a commit epoch captured at
// the start, which keeps results identical to a locked read at capture
// time even while writers commit underneath. The stores' data structures
// are plain std containers though, so each primitive read still has to
// exclude writers for its own duration — these decorators wrap the real
// backend/executor and take the db's lock shared around every call.
//
// Shared by the query engine (snapshot-mode queries) and the materialized
// view catalog (initial builds and incremental repairs pinned to a repair
// epoch).

#ifndef NEPAL_NEPAL_SNAPSHOT_H_
#define NEPAL_NEPAL_SNAPSHOT_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "storage/backend.h"
#include "storage/graphdb.h"
#include "storage/pathset.h"

namespace nepal::nql {

/// Forwards one operator call at a time under a brief shared lock of the
/// source's mutex. ExtendBlock is forwarded too (not defaulted) so a
/// backend's specialized block implementation runs, under one lock hold.
class LockedExecutor final : public storage::PathOperatorExecutor {
 public:
  LockedExecutor(storage::GraphDb* db,
                 std::unique_ptr<storage::PathOperatorExecutor> inner)
      : db_(db), inner_(std::move(inner)) {}

  storage::PathSet Select(const storage::CompiledAtom& atom,
                          const storage::TimeView& view) override;
  storage::PathSet SelectSeeds(const std::vector<Uid>& nodes,
                               const storage::TimeView& view) override;
  storage::PathSet ExtendAtom(const storage::PathSet& frontier,
                              const storage::CompiledAtom& atom,
                              storage::Direction dir,
                              const storage::TimeView& view) override;
  storage::PathSet ExtendBlock(
      const storage::PathSet& frontier,
      const std::vector<storage::CompiledAtom>& alternatives, int min_rep,
      int max_rep, storage::Direction dir,
      const storage::TimeView& view) override;
  storage::PathSet FinalizeTail(const storage::PathSet& frontier,
                                const storage::TimeView& view) override;

 private:
  storage::GraphDb* db_;
  std::unique_ptr<storage::PathOperatorExecutor> inner_;
};

/// Read-only view of a source's backend for snapshot evaluation: reads
/// forward under a brief shared lock, statistics are copied once on first
/// use (so anchor costing works off one stable snapshot; queries that skip
/// planning — e.g. served from a materialized view — never take the source
/// lock at all), and writes fail.
class LockedBackend final : public storage::StorageBackend {
 public:
  explicit LockedBackend(storage::GraphDb* db);

  std::string name() const override { return inner_->name(); }

  Status InsertNode(Uid, const schema::ClassDef*, std::vector<Value>,
                    Timestamp) override {
    return WriteRejected();
  }
  Status InsertEdge(Uid, const schema::ClassDef*, std::vector<Value>, Uid, Uid,
                    Timestamp) override {
    return WriteRejected();
  }
  Status Update(Uid, const std::vector<std::pair<int, Value>>&,
                Timestamp) override {
    return WriteRejected();
  }
  Status Delete(Uid, Timestamp) override { return WriteRejected(); }
  Status RestoreChain(Uid, std::vector<storage::ElementVersion>) override {
    return WriteRejected();
  }

  void Scan(const storage::ScanSpec& spec, const storage::TimeView& view,
            const storage::ElementSink& sink) const override;
  void Get(Uid uid, const storage::TimeView& view,
           const storage::ElementSink& sink) const override;
  void IncidentEdges(Uid node, storage::Direction dir,
                     const schema::ClassDef* edge_cls,
                     const storage::TimeView& view,
                     const storage::ElementSink& sink) const override;
  bool Exists(Uid uid, const storage::TimeView& view) const override;
  size_t CountClass(const schema::ClassDef* cls) const override;
  size_t MemoryUsage() const override;
  size_t VersionCount() const override;

  /// Copies the source's statistics under a brief shared lock the first
  /// time a planner asks; concurrent shards race through call_once.
  const stats::GraphStats& stats() const override;

  std::unique_ptr<storage::PathOperatorExecutor> CreateExecutor()
      const override;

 private:
  Status WriteRejected() const {
    return Status::Internal("snapshot-read backend is read-only");
  }

  storage::GraphDb* db_;
  const storage::StorageBackend* inner_;
  mutable std::once_flag stats_once_;
};

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_SNAPSHOT_H_
