#include "nepal/logical_plan.h"

namespace nepal::nql {

namespace {

LogicalNode BuildNode(const RpeNode& rpe) {
  LogicalNode node;
  switch (rpe.kind) {
    case RpeNode::Kind::kAtom:
      node.kind = LogicalNode::Kind::kAtom;
      node.atom = rpe.atom;
      break;
    case RpeNode::Kind::kSeq:
      node.kind = LogicalNode::Kind::kSeq;
      break;
    case RpeNode::Kind::kAlt:
      node.kind = LogicalNode::Kind::kAlt;
      break;
    case RpeNode::Kind::kRep:
      node.kind = LogicalNode::Kind::kRep;
      node.min_rep = rpe.min_rep;
      node.max_rep = rpe.max_rep;
      break;
  }
  for (const RpeNode& child : rpe.children) {
    node.children.push_back(BuildNode(child));
  }
  return node;
}

}  // namespace

LogicalPlan BuildLogicalPlan(const RpeNode& resolved) {
  LogicalPlan plan;
  plan.root = BuildNode(resolved);
  return plan;
}

std::string LogicalNode::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kAtom:
      out = atom.ToString();
      break;
    case Kind::kSeq: {
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += "->";
        out += children[i].ToString();
      }
      break;
    }
    case Kind::kAlt: {
      out = "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += "|";
        out += children[i].ToString();
      }
      out += ")";
      break;
    }
    case Kind::kRep:
      out = "[" + children[0].ToString() + "]" + RepSuffix(min_rep, max_rep);
      if (unroll) out += "[unrolled]";
      break;
  }
  if (pruned) out += "[pruned]";
  return out;
}

}  // namespace nepal::nql
