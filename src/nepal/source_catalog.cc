#include "nepal/source_catalog.h"

namespace nepal::nql {

Status SourceCatalog::Register(const std::string& name,
                               SourceDescriptor desc) {
  if (desc.db == nullptr) {
    return Status::InvalidArgument("data source '" + name +
                                   "' registered without a database");
  }
  if (desc.role == SourceRole::kReplica) desc.read_only = true;
  sources_[name] = desc;
  return Status::OK();
}

Result<const SourceDescriptor*> SourceCatalog::Lookup(
    const std::string& name) const {
  auto it = sources_.find(name);
  if (it == sources_.end()) {
    return Status::NotFound("no data source bound under the name '" + name +
                            "'");
  }
  return &it->second;
}

Result<storage::GraphDb*> SourceCatalog::Readable(
    const std::string& name) const {
  NEPAL_ASSIGN_OR_RETURN(const SourceDescriptor* desc, Lookup(name));
  return desc->db;
}

Result<storage::GraphDb*> SourceCatalog::Writable(
    const std::string& name) const {
  NEPAL_ASSIGN_OR_RETURN(const SourceDescriptor* desc, Lookup(name));
  if (desc->read_only) {
    return Status::ReadOnly(
        "data source '" + name + "' is a " +
        std::string(SourceRoleToString(desc->role)) +
        (desc->role == SourceRole::kReplica
             ? "; route writes to its primary"
             : " registered read-only") +
        "");
  }
  return desc->db;
}

std::vector<std::string> SourceCatalog::Names() const {
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, desc] : sources_) names.push_back(name);
  return names;
}

void SourceCatalog::ForEach(
    const std::function<void(const std::string&, const SourceDescriptor&)>&
        fn) const {
  for (const auto& [name, desc] : sources_) fn(name, desc);
}

std::string SourceCatalog::Describe() const {
  std::string out;
  for (const auto& [name, desc] : sources_) {
    out += name;
    out += ": ";
    out += SourceRoleToString(desc.role);
    if (desc.read_only && desc.role != SourceRole::kReplica) {
      out += ", read-only";
    }
    out += "\n";
  }
  return out;
}

}  // namespace nepal::nql
