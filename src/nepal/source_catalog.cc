#include "nepal/source_catalog.h"

#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace nepal::nql {

Status SourceCatalog::Register(const std::string& name,
                               SourceDescriptor desc) {
  if (desc.db == nullptr && desc.endpoint == nullptr) {
    return Status::InvalidArgument("data source '" + name +
                                   "' registered without a database");
  }
  if (desc.role == SourceRole::kReplica) desc.read_only = true;
  std::lock_guard<std::mutex> lock(mu_);
  sources_[name] = desc;
  return Status::OK();
}

Status SourceCatalog::AttachReplica(const std::string& name,
                                    ReplicaEndpoint* endpoint) {
  if (endpoint == nullptr) {
    return Status::InvalidArgument("data source '" + name +
                                   "' attached without an endpoint");
  }
  SourceDescriptor desc;
  desc.db = &endpoint->replica_db();
  desc.role = SourceRole::kReplica;
  desc.endpoint = endpoint;
  return Register(name, desc);
}

void SourceCatalog::Detach(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.erase(name);
}

Result<SourceDescriptor> SourceCatalog::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sources_.find(name);
  if (it == sources_.end()) {
    return Status::NotFound("no data source bound under the name '" + name +
                            "'");
  }
  return it->second;
}

Result<storage::GraphDb*> SourceCatalog::Readable(
    const std::string& name) const {
  NEPAL_ASSIGN_OR_RETURN(SourceDescriptor desc, Lookup(name));
  return desc.database();
}

Result<storage::GraphDb*> SourceCatalog::Writable(
    const std::string& name) const {
  NEPAL_ASSIGN_OR_RETURN(SourceDescriptor desc, Lookup(name));
  if (desc.read_only) {
    return Status::ReadOnly(
        "data source '" + name + "' is a " +
        std::string(SourceRoleToString(desc.role)) +
        (desc.role == SourceRole::kReplica
             ? "; route writes to its primary"
             : " registered read-only") +
        "");
  }
  return desc.database();
}

RouteDecision SourceCatalog::RouteRead(storage::GraphDb* primary,
                                       const RoutingOptions& options) const {
  RouteDecision decision;
  decision.db = primary;
  auto& reg = obs::MetricsRegistry::Global();
  if (options.policy == ReadPolicy::kPrimaryOnly) {
    reg.GetCounter("nepal.router.primary_reads")->Add(1);
    return decision;
  }

  // Collect the eligible replicas: attached endpoint, still following, and
  // within the staleness bound.
  struct Candidate {
    const std::string* name;
    ReplicaEndpoint* endpoint;
    uint32_t staleness_ms;
  };
  std::vector<Candidate> eligible;
  bool any_replica = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, desc] : sources_) {
      if (desc.role != SourceRole::kReplica || desc.endpoint == nullptr) {
        continue;
      }
      any_replica = true;
      if (!desc.endpoint->serving()) continue;
      const uint32_t staleness = desc.endpoint->staleness_ms();
      if (staleness > options.max_lag_ms) continue;
      eligible.push_back(Candidate{&name, desc.endpoint, staleness});
    }
    if (eligible.empty()) {
      // No replica can serve this read within the bound; the primary
      // always can. Count a fallback only when replicas exist but none
      // qualified (a healthy fleet with policy=replica_ok and zero
      // attached replicas is not "falling back", it IS primary-only).
      reg.GetCounter(any_replica ? "nepal.router.fallbacks"
                                 : "nepal.router.primary_reads")
          ->Add(1);
      return decision;
    }

    const Candidate* chosen = nullptr;
    if (options.policy == ReadPolicy::kRoundRobin) {
      // Rotate across primary + eligible replicas so the primary keeps a
      // share of the read load instead of starving.
      const uint64_t slot = rr_cursor_++ % (eligible.size() + 1);
      if (slot == eligible.size()) {
        reg.GetCounter("nepal.router.primary_reads")->Add(1);
        return decision;
      }
      chosen = &eligible[slot];
    } else {  // kReplicaOk: least lagged wins
      uint32_t best = std::numeric_limits<uint32_t>::max();
      for (const Candidate& c : eligible) {
        if (c.staleness_ms < best) {
          best = c.staleness_ms;
          chosen = &c;
        }
      }
    }
    decision.source = *chosen->name;
    decision.replica = true;
    decision.staleness_ms = chosen->staleness_ms;
    decision.db = &chosen->endpoint->replica_db();
  }
  // Pin the snapshot epoch outside the catalog lock; commit_epoch() is an
  // atomic read on the chosen database.
  decision.epoch = decision.db->commit_epoch();
  reg.GetCounter("nepal.router.replica_reads")->Add(1);
  return decision;
}

std::vector<std::string> SourceCatalog::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(sources_.size());
  for (const auto& [name, desc] : sources_) names.push_back(name);
  return names;
}

void SourceCatalog::ForEach(
    const std::function<void(const std::string&, const SourceDescriptor&)>&
        fn) const {
  std::vector<std::pair<std::string, SourceDescriptor>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot.reserve(sources_.size());
    for (const auto& [name, desc] : sources_) snapshot.emplace_back(name, desc);
  }
  for (const auto& [name, desc] : snapshot) fn(name, desc);
}

std::string SourceCatalog::Describe() const {
  std::vector<std::pair<std::string, SourceDescriptor>> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, desc] : sources_) snapshot.emplace_back(name, desc);
  }
  std::string out;
  for (const auto& [name, desc] : snapshot) {
    out += name;
    out += ": ";
    out += SourceRoleToString(desc.role);
    if (desc.read_only && desc.role != SourceRole::kReplica) {
      out += ", read-only";
    }
    if (desc.endpoint != nullptr) {
      out += desc.endpoint->serving() ? ", serving" : ", not serving";
      out += ", staleness=" + std::to_string(desc.endpoint->staleness_ms()) +
             "ms, applied=" + std::to_string(desc.endpoint->records_applied());
    }
    out += "\n";
  }
  return out;
}

}  // namespace nepal::nql
