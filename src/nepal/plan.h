// Query planning for one MATCHES predicate.
//
// A resolved RPE is compiled into an anchored plan (Section 5.1):
//  1. enumerate anchor candidates following the paper's rules —
//       Atom: the atom itself;
//       Sequence: candidates of every child (all are mandatory);
//       Alternation: the cross product of the children's candidates,
//         approximated (as in the paper) by the union of each child's best;
//       Repetition: Rep(r,n,m) -> Seq(r, Rep(r,n-1,m-1)), candidates of the
//         first r; repetitions with n == 0 contribute none;
//  2. cost every candidate with backend statistics / schema hints and pick
//     the cheapest;
//  3. split the RPE around each anchor occurrence into a prefix program
//     (run backwards) and a suffix program (run forwards).
//
// Programs are linear step lists; Alternation compiles to a Union of
// sub-programs, Repetition to a Loop step (delegated to the backend's
// ExtendBlock when its body is an alternation of atoms).

#ifndef NEPAL_NEPAL_PLAN_H_
#define NEPAL_NEPAL_PLAN_H_

#include <string>
#include <vector>

#include "nepal/rpe.h"
#include "storage/backend.h"
#include "storage/pathset.h"

namespace nepal::nql {

struct Step;
using Program = std::vector<Step>;

struct Step {
  enum class Kind { kAtom, kUnion, kLoop };
  Kind kind = Kind::kAtom;

  storage::CompiledAtom atom;      // kAtom
  std::vector<Program> branches;   // kUnion
  Program body;                    // kLoop
  int min_rep = 1;                 // kLoop
  int max_rep = 1;                 // kLoop

  /// Operator-stats node id (obs::QueryStatsGroup), assigned by the
  /// executor when it registers the plan for EXPLAIN ANALYZE; -1 when the
  /// step is not instrumented.
  int op_id = -1;

  std::string ToString() const;
};

/// Mirror-image of a program: steps reversed, recursively.
Program ReverseProgram(const Program& program);

std::string ProgramToString(const Program& program);

/// One way to evaluate the RPE: Select the anchor atom, extend forwards
/// through `suffix`, then backwards through `prefix` (already reversed).
struct AnchoredPlan {
  storage::CompiledAtom anchor;
  double anchor_cost = 0;
  Program reversed_prefix;  // run with Direction::kIn after reversal
  Program suffix;           // run with Direction::kOut
};

/// The full plan for a MATCHES predicate: the union over the chosen anchor
/// set (one AnchoredPlan per alternation branch covered).
struct MatchPlan {
  std::vector<AnchoredPlan> anchors;
  double total_cost = 0;
  std::string ToString() const;
};

struct PlanOptions {
  /// Upper bound accepted for repetition maxima (length limitation).
  int max_repetition = 32;
  /// When false, Loop steps are unrolled into plain atom steps instead of
  /// being delegated to ExtendBlock (the ablation knob).
  bool use_extend_block = true;
  /// Worker lanes for frontier-parallel evaluation. 1 runs the exact serial
  /// executor (pre-concurrency behavior, byte-identical output); 0 resolves
  /// to std::thread::hardware_concurrency(). Values > 1 shard each
  /// Extend/ExtendBlock frontier over the shared work-stealing pool and
  /// merge with canonical-order deduplication, so parallel results are
  /// deterministic regardless of thread count or scheduling.
  int parallelism = 0;
};

/// Resolves PlanOptions::parallelism to the worker-lane count actually
/// used (0 maps to std::thread::hardware_concurrency()).
size_t EffectiveParallelism(const PlanOptions& options);

/// Builds the anchored plan for a resolved, normalized RPE against the
/// statistics of `backend`. Fails with PlanError if the RPE has no anchor
/// (every atom sits inside a {0,n} repetition).
Result<MatchPlan> PlanMatch(const RpeNode& rpe,
                            const storage::StorageBackend& backend,
                            const PlanOptions& options);

/// Compiles an RPE (sub)tree into a program (used for seeded evaluation,
/// where the anchor is imported and no split is needed).
Program CompileProgram(const RpeNode& rpe, const PlanOptions& options);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_PLAN_H_
