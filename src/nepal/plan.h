// Query planning for one MATCHES predicate.
//
// Planning is a three-stage pipeline:
//  1. logical plan — an Atom/Seq/Alt/Rep algebra tree built from the
//     resolved RPE (nepal/logical_plan.h);
//  2. cost-based optimizer — rewrite rules (predicate pushdown, dead-branch
//     pruning against allowed-edge rules, cost-gated loop unrolling) and
//     anchor selection over the statistics subsystem (nepal/optimizer.h,
//     src/stats);
//  3. physical plan — the Step/Program operator DAG emitted below.
//
// Anchored evaluation follows Section 5.1 of the paper:
//  1. enumerate anchor candidates —
//       Atom: the atom itself;
//       Sequence: candidates of every child (all are mandatory);
//       Alternation: the cross product of the children's candidates,
//         approximated (as in the paper) by the union of each child's best;
//       Repetition: Rep(r,n,m) -> Seq(r, Rep(r,n-1,m-1)), candidates of the
//         first r; repetitions with n == 0 contribute none;
//  2. cost every candidate — by estimated scan rows plus expected traversal
//     fan-out of its prefix/suffix programs (or bare scan estimates when the
//     cost-based rule is disabled) — and pick the cheapest;
//  3. split the RPE around each anchor occurrence into a prefix program
//     (run backwards) and a suffix program (run forwards).
//
// Programs are linear step lists; Alternation compiles to a Union of
// sub-programs, Repetition to a Loop step (delegated to the backend's
// ExtendBlock when its body is an alternation of atoms). Unbounded
// repetitions ([r]*, [r]+, [r]{i,}) — and every repetition under
// LoopStrategy::kAutomaton — compile to an Automaton step (nepal/nfa.h)
// evaluated as a graph × NFA product with memoized visitation.

#ifndef NEPAL_NEPAL_PLAN_H_
#define NEPAL_NEPAL_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "nepal/logical_plan.h"
#include "nepal/nfa.h"
#include "nepal/rpe.h"
#include "storage/backend.h"
#include "storage/pathset.h"

namespace nepal::nql {

struct Step;
using Program = std::vector<Step>;

struct Step {
  enum class Kind { kAtom, kUnion, kLoop, kAutomaton };
  Kind kind = Kind::kAtom;

  storage::CompiledAtom atom;      // kAtom
  std::vector<Program> branches;   // kUnion
  Program body;                    // kLoop
  int min_rep = 1;                 // kLoop / kAutomaton
  int max_rep = 1;                 // kLoop / kAutomaton (kUnboundedRep = open)

  /// kAutomaton: the compiled regular-path automaton. Immutable and shared,
  /// so copying a Step (program reversal, sharded execution) is cheap and
  /// thread-safe.
  std::shared_ptr<const Nfa> nfa;
  /// kAutomaton: per-state arrival estimates (parallel to nfa->states),
  /// filled in by AnnotateProgram and printed by EXPLAIN.
  std::vector<double> state_est;

  /// Optimizer row estimate for this step's output (cardinality × expected
  /// fan-out); -1 when not annotated. Threaded into obs::QueryStats so
  /// EXPLAIN ANALYZE can report estimated vs actual rows.
  double est_rows = -1;

  /// Operator-stats node id (obs::QueryStatsGroup), assigned by the
  /// executor when it registers the plan for EXPLAIN ANALYZE; -1 when the
  /// step is not instrumented.
  int op_id = -1;

  std::string ToString() const;
};

/// Mirror-image of a program: steps reversed, recursively.
Program ReverseProgram(const Program& program);

std::string ProgramToString(const Program& program);
/// As ProgramToString, appending "~N" row estimates to annotated steps.
std::string ProgramToStringWithEstimates(const Program& program);

/// One way to evaluate the RPE: Select the anchor atom, extend forwards
/// through `suffix`, then backwards through `prefix` (already reversed).
struct AnchoredPlan {
  storage::CompiledAtom anchor;
  /// Estimated rows the anchor Select emits (bare scan estimate).
  double anchor_cost = 0;
  /// Estimated rows after the suffix / after both sides; -1 if unannotated.
  double est_after_suffix = -1;
  double est_rows = -1;
  Program reversed_prefix;  // run with Direction::kIn after reversal
  Program suffix;           // run with Direction::kOut
};

/// The full plan for a MATCHES predicate: the union over the chosen anchor
/// set (one AnchoredPlan per alternation branch covered).
struct MatchPlan {
  std::vector<AnchoredPlan> anchors;
  /// Estimated anchor scan rows of the chosen candidate (the legacy cost
  /// metric; the engine compares it against join-seed counts).
  double total_cost = 0;
  /// Full cost-model total: scan + estimated traversal work. This is the
  /// figure the optimizer minimized and the one recorded in bench output.
  double optimizer_cost = 0;
  /// True when dead-branch pruning proved the RPE matches nothing under
  /// the allowed-edge rules; `anchors` is empty and evaluation yields an
  /// empty pathway set.
  bool statically_empty = false;
  /// Rendered logical plan and the optimizer rewrites applied to it.
  std::string logical;
  std::vector<std::string> rewrites;
  std::string ToString() const;
};

/// How Rep blocks are emitted into the physical plan.
enum class LoopStrategy {
  /// Cost-gated: fixed-count repetitions ({n,n}) whose estimated fan-out is
  /// small are unrolled inline (identical output order to ExtendBlock);
  /// everything else becomes a Loop step delegated to ExtendBlock.
  kCostBased,
  /// Always delegate to the backend's ExtendBlock (the legacy behaviour).
  kExtendBlock,
  /// Always unroll into body^min plus nested optional Unions (ablation).
  kUnroll,
  /// Compile every repetition to an NFA and evaluate the graph × NFA
  /// product (parity testing; unbounded repetitions use this route
  /// regardless of the configured strategy).
  kAutomaton,
};

struct PlanOptions {
  /// Upper bound accepted for repetition maxima (length limitation).
  int max_repetition = 32;
  LoopStrategy loop_strategy = LoopStrategy::kCostBased;
  // ---- Optimizer rewrite rules, individually toggleable for ablation ----
  /// Push the most selective equality (by value-counter statistics) into
  /// the ScanSpec instead of the first one.
  bool optimize_pushdown = true;
  /// Prune alternation branches that the allowed-edge rules prove empty.
  bool optimize_prune = true;
  /// Pick anchors by estimated scan rows × expected traversal fan-out
  /// instead of bare EstimateScan.
  bool optimize_cost_anchor = true;
  /// Worker lanes for frontier-parallel evaluation. 1 runs the exact serial
  /// executor (pre-concurrency behavior, byte-identical output); 0 resolves
  /// to std::thread::hardware_concurrency(). Values > 1 shard each
  /// Extend/ExtendBlock frontier over the shared work-stealing pool and
  /// merge with canonical-order deduplication, so parallel results are
  /// deterministic regardless of thread count or scheduling.
  int parallelism = 0;
};

/// Resolves PlanOptions::parallelism to the worker-lane count actually
/// used (0 maps to std::thread::hardware_concurrency()).
size_t EffectiveParallelism(const PlanOptions& options);

/// Builds the anchored plan for a resolved, normalized RPE: logical plan,
/// optimizer rewrites, anchor selection, physical emission. The `view`
/// scales estimates for historical reads (history-depth statistics). Fails
/// with PlanError if the RPE has no anchor (every atom sits inside a {0,n}
/// repetition).
Result<MatchPlan> PlanMatch(
    const RpeNode& rpe, const storage::StorageBackend& backend,
    const PlanOptions& options,
    const storage::TimeView& view = storage::TimeView::Current());

/// Emits the physical program for an optimized logical subtree.
Program EmitProgram(const LogicalNode& node, const PlanOptions& options);

/// Compiles an RPE (sub)tree into a program without optimizer rewrites
/// (no backend statistics available; fixed-count loops still unroll under
/// LoopStrategy::kCostBased).
Program CompileProgram(const RpeNode& rpe, const PlanOptions& options);

/// Compiles an RPE for seeded evaluation (imported anchor, no split):
/// builds the logical plan, applies the optimizer rewrites, and emits the
/// physical program annotated with row estimates starting from `seed_rows`
/// seed states (skipped when seed_rows < 0).
Program CompileSeededProgram(const RpeNode& rpe,
                             const storage::StorageBackend& backend,
                             const PlanOptions& options,
                             const storage::TimeView& view, double seed_rows);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_PLAN_H_
