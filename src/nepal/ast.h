// Abstract syntax of NQL (the Nepal query language).
//
//   [AT '<ts>' [: '<ts>']]
//   [First Time When Exists | Last Time When Exists | When Exists]
//   (Retrieve <var>[, ...] | Select <expr>[, ...])
//   From PATHS <var> [(@'<ts>'[:'<ts>'])] [In '<source>'] , ...
//   Where <var> MATCHES <rpe>
//     And source(P) = target(Q)
//     And source(P).status = 'Green'
//     And [Not] Exists ( <query> )
//     ...
//
// `In '<source>'` is the federation extension: it binds a range variable to
// a named data source of the engine, letting one query join pathways from
// different databases (the paper's retargetable / data-integration story).

#ifndef NEPAL_NEPAL_AST_H_
#define NEPAL_NEPAL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "nepal/rpe.h"

namespace nepal::nql {

/// AT 't' or AT 't1' : 't2' — on the query or on a range variable.
struct TimeSpec {
  Timestamp start = 0;
  std::optional<Timestamp> end;  // set => time-range

  bool is_range() const { return end.has_value(); }
};

struct RangeVarDecl {
  /// The pathway view the variable ranges over. "PATHS" — the built-in
  /// view of all pathways — or a view registered on the engine.
  std::string view = "PATHS";
  std::string name;
  std::optional<TimeSpec> at;    // P(@'...') — variable-level time binding
  std::optional<std::string> source;  // In 'name' — federation binding
};

/// source(P) / target(P) optionally followed by a field access, or a bare
/// variable reference (the pathway itself), or a literal.
struct PathExpr {
  enum class Kind { kSource, kTarget, kVar, kLiteral, kLength };
  Kind kind = Kind::kLiteral;
  std::string var;
  std::optional<std::string> field;  // .name / .id
  Value literal;

  std::string ToString() const;
};

/// One Select output: a plain expression or an aggregate over the result
/// set (the result-processing layer of Section 3.4). Non-aggregated items
/// must appear in Group By when any aggregate is present.
struct SelectItem {
  enum class Agg { kNone, kCount, kCountDistinct, kMin, kMax, kSum };
  Agg agg = Agg::kNone;
  PathExpr expr;

  std::string ToString() const;
};

struct Query;

struct Predicate {
  enum class Kind { kMatches, kCompare, kExists };
  Kind kind = Kind::kMatches;

  // kMatches.
  std::string var;
  RpeNode rpe;

  // kCompare: lhs op rhs where op is = or <>.
  PathExpr lhs;
  bool negate_compare = false;  // <> instead of =
  PathExpr rhs;

  // kExists.
  bool negate_exists = false;  // NOT EXISTS
  std::shared_ptr<Query> subquery;
};

enum class TemporalAgg { kNone, kFirstTime, kLastTime, kWhenExists };

/// EXPLAIN prefix of a top-level query.
///  - kPlan    (`EXPLAIN`): anchor choices, programs and result counts;
///    runs at full PlanOptions::parallelism.
///  - kAnalyze (`EXPLAIN ANALYZE`): per-operator execution stats
///    (obs::QueryStats); runs at full parallelism.
///  - kVerbose (`EXPLAIN VERBOSE`): adds the legacy backend string trace
///    (operator/SQL lines); trace buffers are order-sensitive, so the run
///    is forced serial (see storage/pathset.h).
enum class ExplainMode { kNone, kPlan, kAnalyze, kVerbose };

struct Query {
  ExplainMode explain = ExplainMode::kNone;
  std::optional<TimeSpec> at;  // query-level AT
  TemporalAgg agg = TemporalAgg::kNone;
  bool is_select = false;  // Select (post-processing) vs Retrieve (pathways)
  std::vector<std::string> retrieve_vars;  // Retrieve
  std::vector<SelectItem> select_items;    // Select
  std::vector<PathExpr> group_by;          // Group By (with aggregates)
  std::vector<RangeVarDecl> range_vars;
  std::vector<Predicate> where;
};

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_AST_H_
