// PathwayViewProvider: the engine-side interface to materialized pathway
// views (implemented by views::ViewCatalog, src/views).
//
// The engine never depends on the view subsystem directly — it asks an
// attached provider two questions while planning a query:
//
//   - Match(): "is there a registered view whose definition (canonical RPE
//     text + temporal mode) equals this variable's?" — answering a plain
//     MATCHES query from the cache;
//   - Serve(): "give me the named view's rows" — answering
//     `SERVE VIEW <name>` / `From <name> P`.
//
// Either returns a ServedView: an immutable snapshot of the cached pathway
// set plus the commit epoch it is exact at. The engine then evaluates the
// rest of the query (joins, Select expressions, subqueries) pinned to that
// epoch, so the whole result is byte-identical to cold evaluation at the
// freshness epoch.

#ifndef NEPAL_NEPAL_VIEW_PROVIDER_H_
#define NEPAL_NEPAL_VIEW_PROVIDER_H_

#include <memory>
#include <optional>
#include <string>

#include "common/time.h"
#include "storage/graphdb.h"
#include "storage/pathset.h"

namespace nepal::nql {

/// One answer from a provider: a shared immutable snapshot of the view's
/// pathway set (already deduplicated and in canonical order) and the
/// commit epoch the rows are exact at.
struct ServedView {
  std::string name;
  storage::GraphDb* db = nullptr;
  /// Temporal mode: unset = Current, set = AsOf(*as_of).
  std::optional<Timestamp> as_of;
  /// Freshness: cold evaluation pinned to this commit epoch returns the
  /// same rows.
  uint64_t epoch = 0;
  std::shared_ptr<const storage::PathSet> paths;
};

class PathwayViewProvider {
 public:
  virtual ~PathwayViewProvider() = default;

  /// Looks up a view by definition: `canonical_rpe` is the normalized
  /// rendering (Normalize(rpe).ToString()) of the query's pathway
  /// expression, `as_of` its temporal mode. Returns nullopt when no
  /// registered view on `db` matches (the query evaluates cold).
  virtual std::optional<ServedView> Match(
      const storage::GraphDb* db, const std::string& canonical_rpe,
      const std::optional<Timestamp>& as_of) const = 0;

  /// Looks up a view by name (`SERVE VIEW <name>`, `From <name> P`).
  virtual std::optional<ServedView> Serve(const std::string& name) const = 0;
};

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_VIEW_PROVIDER_H_
