#include "nepal/nfa.h"

#include <cstdio>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace nepal::nql {

namespace {

// Thompson construction scratchpad: states with both epsilon and atom
// edges. Fragments are (start, end) state pairs; end is always a distinct
// junction state so fragments compose by epsilon-wiring alone.
class EpsNfa {
 public:
  struct Frag {
    int start = -1;
    int end = -1;
  };

  int NewState() {
    atom_out_.emplace_back();
    eps_out_.emplace_back();
    return static_cast<int>(atom_out_.size()) - 1;
  }

  void Eps(int from, int to) { eps_out_[static_cast<size_t>(from)].push_back(to); }

  void AtomEdge(int from, const storage::CompiledAtom& atom, int to) {
    NfaTransition tr;
    tr.target = to;
    tr.atom = atom;
    atom_out_[static_cast<size_t>(from)].push_back(std::move(tr));
  }

  // Emits the fragment for a logical subtree, following EmitProgram's
  // pruning conventions: a pruned node matches only the empty sequence
  // (the enclosing Seq/Alt/root decide whether that is reachable at all).
  Frag Emit(const LogicalNode& node) {
    switch (node.kind) {
      case LogicalNode::Kind::kAtom: {
        if (node.pruned) return EmptyFrag();
        Frag f;
        f.start = NewState();
        f.end = NewState();
        AtomEdge(f.start, node.atom, f.end);
        return f;
      }
      case LogicalNode::Kind::kSeq: {
        Frag f;
        f.start = NewState();
        int cur = f.start;
        for (const LogicalNode& child : node.children) {
          // A pruned optional child matches only the empty sequence.
          if (child.pruned) continue;
          Frag part = Emit(child);
          Eps(cur, part.start);
          cur = part.end;
        }
        f.end = cur;
        return f;
      }
      case LogicalNode::Kind::kAlt: {
        Frag f;
        f.start = NewState();
        f.end = NewState();
        for (const LogicalNode& child : node.children) {
          if (child.pruned) {
            // A pruned optional branch still matches the empty sequence; a
            // pruned mandatory branch contributes nothing.
            if (child.is_optional()) Eps(f.start, f.end);
            continue;
          }
          Frag part = Emit(child);
          Eps(f.start, part.start);
          Eps(part.end, f.end);
        }
        return f;
      }
      case LogicalNode::Kind::kRep: {
        if (node.pruned) return EmptyFrag();
        Frag f;
        f.start = NewState();
        int cur = f.start;
        const bool unbounded = node.max_rep == kUnboundedRep;
        // Mandatory copies: body^min.
        for (int i = 0; i < node.min_rep; ++i) {
          Frag part = Emit(node.children[0]);
          Eps(cur, part.start);
          cur = part.end;
        }
        int end = NewState();
        Eps(cur, end);  // stop after the minimum
        if (unbounded) {
          // One looping copy recognizes every further iteration count —
          // the part a finite unroll cannot express.
          Frag part = Emit(node.children[0]);
          Eps(cur, part.start);
          Eps(part.end, part.start);
          Eps(part.end, end);
        } else {
          // Optional copies: a DAG where each copy encodes one extra
          // iteration, mirroring the legacy unroll emission.
          for (int i = node.min_rep; i < node.max_rep; ++i) {
            Frag part = Emit(node.children[0]);
            Eps(cur, part.start);
            cur = part.end;
            Eps(cur, end);
          }
        }
        f.end = end;
        return f;
      }
    }
    return EmptyFrag();
  }

  // Eliminates epsilon transitions by closure and renumbers states in BFS
  // order from the start, so identical inputs always yield an identical
  // table (stable EXPLAIN output, reproducible tests).
  Nfa Finalize(int start, int accept) const {
    const size_t n = atom_out_.size();
    std::vector<std::vector<int>> closures(n);
    for (size_t s = 0; s < n; ++s) {
      std::vector<bool> seen(n, false);
      std::vector<int> stack = {static_cast<int>(s)};
      seen[s] = true;
      while (!stack.empty()) {
        int t = stack.back();
        stack.pop_back();
        closures[s].push_back(t);
        for (int u : eps_out_[static_cast<size_t>(t)]) {
          if (!seen[static_cast<size_t>(u)]) {
            seen[static_cast<size_t>(u)] = true;
            stack.push_back(u);
          }
        }
      }
    }

    // Epsilon-free view: state s accepts iff its closure reaches `accept`;
    // its transitions are the union of its closure members' atom edges.
    auto accepts = [&](int s) {
      for (int t : closures[static_cast<size_t>(s)]) {
        if (t == accept) return true;
      }
      return false;
    };

    // BFS from the start over atom transitions, renumbering on discovery.
    std::vector<int> renumber(n, -1);
    std::vector<int> order;
    renumber[static_cast<size_t>(start)] = 0;
    order.push_back(start);
    for (size_t head = 0; head < order.size(); ++head) {
      int s = order[head];
      for (int t : closures[static_cast<size_t>(s)]) {
        for (const NfaTransition& tr : atom_out_[static_cast<size_t>(t)]) {
          if (renumber[static_cast<size_t>(tr.target)] < 0) {
            renumber[static_cast<size_t>(tr.target)] =
                static_cast<int>(order.size());
            order.push_back(tr.target);
          }
        }
      }
    }

    Nfa out;
    out.start = 0;
    out.states.resize(order.size());
    out.accept.resize(order.size(), false);
    for (size_t i = 0; i < order.size(); ++i) {
      int s = order[i];
      out.accept[i] = accepts(s);
      // Dedup structurally identical transitions (same target, same atom):
      // distinct closure members often share edges.
      std::unordered_set<std::string> dedup;
      for (int t : closures[static_cast<size_t>(s)]) {
        for (const NfaTransition& tr : atom_out_[static_cast<size_t>(t)]) {
          NfaTransition moved;
          moved.target = renumber[static_cast<size_t>(tr.target)];
          moved.atom = tr.atom;
          std::string key =
              std::to_string(moved.target) + "\x1f" + moved.atom.ToString();
          if (!dedup.insert(std::move(key)).second) continue;
          out.states[i].push_back(std::move(moved));
        }
      }
    }
    return out;
  }

 private:
  Frag EmptyFrag() {
    Frag f;
    f.start = NewState();
    f.end = f.start;
    return f;
  }

  std::vector<std::vector<NfaTransition>> atom_out_;
  std::vector<std::vector<int>> eps_out_;
};

}  // namespace

Nfa BuildNfa(const LogicalNode& node) {
  EpsNfa eps;
  EpsNfa::Frag frag = eps.Emit(node);
  return eps.Finalize(frag.start, frag.end);
}

Nfa BuildNfa(const RpeNode& resolved) {
  return BuildNfa(BuildLogicalPlan(resolved).root);
}

Nfa ReverseNfa(const Nfa& nfa) {
  EpsNfa eps;
  // Mirror every state, flip every atom edge, then epsilon-wire a fresh
  // start to the old accept states; the old start becomes the accept.
  const size_t n = nfa.num_states();
  for (size_t s = 0; s < n; ++s) eps.NewState();
  int start = eps.NewState();
  int accept = eps.NewState();
  for (size_t s = 0; s < n; ++s) {
    for (const NfaTransition& tr : nfa.states[s]) {
      eps.AtomEdge(tr.target, tr.atom, static_cast<int>(s));
    }
    if (nfa.accept[s]) eps.Eps(start, static_cast<int>(s));
  }
  if (nfa.start >= 0) eps.Eps(nfa.start, accept);
  return eps.Finalize(start, accept);
}

std::string Nfa::ToString(const std::vector<double>* state_est) const {
  std::string out;
  for (size_t s = 0; s < states.size(); ++s) {
    if (s > 0) out += "\n";
    out += "state " + std::to_string(s);
    if (static_cast<int>(s) == start) out += " [start]";
    if (accept[s]) out += " [accept]";
    if (state_est != nullptr && s < state_est->size()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), " ~%.0f", (*state_est)[s]);
      out += buf;
    }
    for (const NfaTransition& tr : states[s]) {
      out += "\n  -" + tr.atom.ToString() + "-> " +
             std::to_string(tr.target);
    }
  }
  return out;
}

}  // namespace nepal::nql
