// QueryEngine: the public query API of Nepal.
//
//   storage::GraphDb db(schema, std::make_unique<graphstore::GraphStore>(...));
//   nql::QueryEngine engine(&db);
//   auto result = engine.Run(
//       "Retrieve P From PATHS P "
//       "Where P MATCHES VNF()->[Vertical()]{1,6}->Host(id=23245)");
//
// The engine parses NQL, resolves every range variable's RPE against its
// data source's schema, plans anchors, evaluates through the source
// backend's operator executor, joins pathway sets, applies subqueries, and
// post-processes Select expressions. Additional data sources can be bound
// by name for federated queries (From PATHS P In 'siteA', ...).

#ifndef NEPAL_NEPAL_ENGINE_H_
#define NEPAL_NEPAL_ENGINE_H_

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "nepal/ast.h"
#include "nepal/executor.h"
#include "nepal/parser.h"
#include "nepal/source_catalog.h"
#include "obs/query_stats.h"
#include "storage/graphdb.h"

namespace nepal::nql {

class PathwayViewProvider;

/// A completed pathway: alternating node/edge uids with their classes and
/// the maximal validity interval over which the pathway existed.
struct Pathway {
  std::vector<Uid> uids;
  std::vector<const schema::ClassDef*> concepts;
  Interval valid = Interval::All();

  Uid source_uid() const { return uids.front(); }
  Uid target_uid() const { return uids.back(); }
  size_t length() const { return uids.size(); }

  /// "VNF#12 -> HostedOn#55 -> VM#13" style rendering.
  std::string ToString() const;
};

struct ResultRow {
  std::vector<Pathway> paths;  // one per path column
  std::vector<Value> values;   // one per value column (Select)
  /// Joint validity: for query-level AT queries, the maximal interval over
  /// which all the row's pathways coexisted.
  Interval valid = Interval::All();
};

struct QueryResult {
  std::vector<std::string> path_columns;   // Retrieve: variable names
  std::vector<std::string> value_columns;  // Select: expression renderings
  std::vector<ResultRow> rows;

  /// Non-empty for EXPLAIN / EXPLAIN ANALYZE / EXPLAIN VERBOSE queries:
  /// the rendered plan or per-operator stats. ToString() returns it
  /// directly and `rows` stays empty.
  std::string explain_text;

  TemporalAgg agg = TemporalAgg::kNone;
  /// When Exists: union of validity intervals of all results.
  IntervalSet when_exists;
  /// First/Last Time When Exists (unset when no satisfying pathway).
  std::optional<Timestamp> agg_time;

  std::string ToString(size_t max_rows = 20) const;
};

struct EngineOptions {
  PlanOptions plan;
  /// Hard cap on result rows after join (0 = unlimited).
  size_t max_rows = 0;
  /// Top-level queries slower than this land in the slow-query log
  /// (SlowQueries()); 0 disables the log.
  double slow_query_ms = 250.0;
  /// Snapshot reads: instead of holding every source's shared lock for the
  /// whole evaluation, the engine captures each source's commit epoch up
  /// front and evaluates against epoch-pinned TimeViews. Each primitive
  /// read still takes the lock briefly, but writers interleave between
  /// operator calls instead of waiting out the whole query, so batched
  /// ingest and long analytical reads stop serializing each other. Results
  /// match a fully-locked read at capture time. EXPLAIN / EXPLAIN VERBOSE
  /// fall back to locked evaluation (their serial trace bypasses the
  /// decorators); EXPLAIN ANALYZE runs in snapshot mode. Off by default:
  /// an insert+delete at the same transaction instant collapses to "never
  /// existed" in the version store, which a snapshot pinned between the
  /// two epochs cannot reproduce — enable when writers always advance time
  /// or never delete what they just inserted.
  bool snapshot_reads = false;
  /// Read routing across the replication fleet (see SourceCatalog). Under
  /// a non-default policy, each top-level non-EXPLAIN read consults the
  /// catalog's attached replicas and may evaluate on one instead of the
  /// primary, pinned (snapshot mode) to the replica's commit epoch at the
  /// routing decision — bounded staleness, exact snapshot. Writes never
  /// route; queries that can be served from the materialized-view
  /// provider stay on the primary (the cache is primary-bound).
  RoutingOptions routing;
};

/// One slow-query log entry (see EngineOptions::slow_query_ms).
struct SlowQuery {
  std::string query;  // NQL text ("<ast>" for RunQuery callers)
  uint64_t wall_ns = 0;
  size_t rows = 0;
};

class QueryEngine {
 public:
  /// `db` is the default data source; it must outlive the engine.
  explicit QueryEngine(storage::GraphDb* db, EngineOptions options = {});

  /// The named data sources `In '<name>'` clauses route to. Register
  /// primaries with `catalog().Register(name, {.db = &db})`; attach live
  /// replicas with `catalog().AttachReplica(name, &replica)` so reads
  /// work (and can be routed) but writes are rejected with kReadOnly.
  SourceCatalog& catalog() { return catalog_; }
  const SourceCatalog& catalog() const { return catalog_; }

  /// Registers a pathway view: a named, unmaterialized subset of PATHS
  /// defined by an RPE (Section 3.4: "Additional views can be defined").
  /// `From <name> P` ranges P over pathways matching the view; a MATCHES
  /// predicate on P further constrains it (intersection).
  Status DefineView(const std::string& name, const std::string& rpe_text);

  /// Attaches a materialized-view provider (views::ViewCatalog). A
  /// single-variable query whose pathway definition (canonical RPE +
  /// temporal mode) matches a registered view — or that ranges over a
  /// registered view name, including the `SERVE VIEW <name>` shorthand —
  /// is answered from the provider's cache, pinned to the cache's
  /// freshness epoch; results are byte-identical to cold evaluation at
  /// that epoch. nullptr detaches. The provider must outlive the engine.
  void set_view_provider(const PathwayViewProvider* provider) {
    view_provider_ = provider;
  }

  EngineOptions& options() { return options_; }

  /// Parses and runs an NQL query. An `EXPLAIN [ANALYZE|VERBOSE]` prefix
  /// returns the plan / per-operator stats / backend trace as
  /// QueryResult::explain_text (see ExplainMode in ast.h).
  Result<QueryResult> Run(const std::string& nql) const;

  /// Runs a pre-built AST (programmatic clients, subqueries).
  Result<QueryResult> RunQuery(const Query& query) const;

  /// Parses and plans the query, returning the anchor choices, per-variable
  /// programs, and (for the relational backend) the generated SQL.
  /// Equivalent to Run("EXPLAIN VERBOSE " + nql): the run is serial (the
  /// string trace is order-sensitive) — prefer EXPLAIN ANALYZE for runtime
  /// numbers under parallelism.
  Result<std::string> Explain(const std::string& nql) const;

  /// Per-operator stats of the most recent successful top-level query run
  /// on this engine (thread-safe; concurrent runs race benignly on "most
  /// recent").
  obs::QueryStats LastQueryStats() const;

  /// The most recent slow queries (newest last, bounded ring).
  std::vector<SlowQuery> SlowQueries() const;

  /// Where the most recent top-level query (on any thread) was routed —
  /// primary or which replica, at what staleness/epoch. Meaningful under
  /// a non-default EngineOptions::routing policy; tests and the shell's
  /// `\replication` use it.
  RouteDecision LastRoute() const;

 private:
  struct OuterBinding {
    const Pathway* path;
    storage::GraphDb* db;
  };
  using OuterEnv = std::map<std::string, OuterBinding>;

  /// Plan-line capture for EXPLAIN modes. `lines` collects the per-variable
  /// plan text; `trace` additionally turns on the executors' legacy string
  /// trace (EXPLAIN VERBOSE only — forces serial evaluation).
  struct ExplainCapture {
    std::vector<std::string>* lines = nullptr;
    bool trace = false;
  };

  /// Top-level entry shared by Run/RunQuery/Explain: routes the explain
  /// mode, collects per-operator stats, updates engine metrics and the
  /// slow-query log.
  Result<QueryResult> RunParsed(const Query& query,
                                const std::string& text) const;

  /// `locks_held` is set on recursive (subquery) calls: the top-level call
  /// already holds shared locks on every data source, and shared_mutex
  /// must not be re-acquired recursively on the same thread. When the
  /// top-level call runs in snapshot mode instead (see
  /// EngineOptions::snapshot_reads) it passes its per-source commit-epoch
  /// map via `outer_epochs`, and the subquery evaluates against the same
  /// pinned epochs rather than taking locks it was never protected by.
  /// `run_db` is the database unnamed range variables evaluate against:
  /// the engine's primary by default, a routed replica when the read
  /// router picked one (RunParsed then also passes the pinned epoch map
  /// via `outer_epochs`, entering snapshot mode).
  Result<QueryResult> RunInternal(
      const Query& query, const OuterEnv& outer,
      const ExplainCapture& capture, obs::QueryStatsBuilder* stats,
      bool locks_held = false,
      const std::map<storage::GraphDb*, uint64_t>* outer_epochs = nullptr,
      storage::GraphDb* run_db = nullptr) const;

  Result<storage::GraphDb*> SourceFor(const RangeVarDecl& decl,
                                      storage::GraphDb* run_db) const;

  storage::GraphDb* default_db_;
  SourceCatalog catalog_;
  std::map<std::string, RpeNode> views_;
  const PathwayViewProvider* view_provider_ = nullptr;
  EngineOptions options_;

  static constexpr size_t kSlowLogCapacity = 32;
  mutable std::mutex stats_mu_;
  mutable obs::QueryStats last_stats_;
  mutable std::deque<SlowQuery> slow_log_;
  mutable RouteDecision last_route_;
};

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_ENGINE_H_
