// Cost-based optimizer — stage 2 of the planning pipeline.
//
// Rewrite rules over the logical plan (each toggleable via PlanOptions):
//   - predicate pushdown: choose the most selective equality condition
//     (by exact value-counter statistics) to push into the ScanSpec;
//   - dead-branch pruning: alternation branches (and optional repetitions)
//     that the schema's allowed-edge rules prove can never match a single
//     element sequence are marked pruned and emit nothing;
//   - loop strategy: fixed-count repetitions with small estimated fan-out
//     are unrolled inline (output-order identical to ExtendBlock).
//
// Plus the cost model used for anchor selection: scan estimates scaled by
// history depth for temporal views, and per-step row propagation through
// physical programs (cardinality × expected traversal fan-out) following
// the paper's four-way concatenation semantics.

#ifndef NEPAL_NEPAL_OPTIMIZER_H_
#define NEPAL_NEPAL_OPTIMIZER_H_

#include <string>

#include "nepal/logical_plan.h"
#include "nepal/plan.h"
#include "storage/backend.h"

namespace nepal::nql {

/// Estimation facade over one backend's statistics and the query's time
/// view. All row estimates are current-snapshot figures scaled by the
/// history-depth statistic when the view needs closed versions.
class CostEstimator {
 public:
  CostEstimator(const storage::StorageBackend& backend,
                const storage::TimeView& view)
      : backend_(backend), view_(view) {}

  const storage::StorageBackend& backend() const { return backend_; }
  const stats::GraphStats& stats() const { return backend_.stats(); }
  const schema::Schema* schema() const { return stats().schema(); }

  /// Rows a Select/scan of the atom emits, unscaled (the legacy anchor
  /// cost; what StorageBackend::EstimateScan returns).
  double ScanRaw(const storage::CompiledAtom& atom) const;
  /// As ScanRaw, scaled by the class's history depth for temporal views.
  double Scan(const storage::CompiledAtom& atom) const;

  /// Fraction of `cls` elements the atom's conditions keep (0..1).
  double ConditionSelectivity(const storage::CompiledAtom& atom) const;

  /// Average `edge_cls`-subtree edges per `node_cls` element in `dir`
  /// (history-scaled for temporal views). `node_cls` nullptr means the
  /// node root. The per-node denominator counts only elements whose class
  /// the schema's allow rules permit to carry such an edge: a frontier
  /// whose class guess widened to the node root must not dilute a hub's
  /// degree across node classes that can never be incident to the edge.
  double Fanout(const schema::ClassDef* node_cls, storage::Direction dir,
                const schema::ClassDef* edge_cls) const;

  double Cardinality(const schema::ClassDef* cls) const;

  /// Best guess for the class of the node reached by traversing an
  /// `edge_cls` edge from a `from_node`-class node in `dir` (LCA of the
  /// far-side classes of the matching allow rules; node root if unknown).
  const schema::ClassDef* FarNodeClass(const schema::ClassDef* from_node,
                                       const schema::ClassDef* edge_cls,
                                       storage::Direction dir) const;

  double HistoryScale(const schema::ClassDef* cls) const;

 private:
  const storage::StorageBackend& backend_;
  storage::TimeView view_;
};

/// Applies the enabled rewrite rules in place (pushdown, pruning, loop
/// strategy), appending one line per applied rewrite to plan->rewrites and
/// setting plan->statically_empty when a mandatory element is infeasible.
void OptimizeLogicalPlan(LogicalPlan* plan,
                         const storage::StorageBackend& backend,
                         const PlanOptions& options,
                         const storage::TimeView& view);

/// Frontier bookkeeping for the row-propagation walk, mirroring
/// PathState::frontier_in_path: after a node atom the frontier node is
/// part of the path; after an edge atom it is the unmatched far endpoint.
struct TraversalState {
  const schema::ClassDef* cls = nullptr;  // best class guess; null = unknown
  bool in_path = true;
};

/// Propagates row estimates through a physical program, setting
/// Step::est_rows on every step (including union branches and loop
/// bodies). Returns the estimated rows flowing out; accumulates the sum of
/// all intermediate row counts (the traversal work) into *work.
double AnnotateProgram(Program* program, double rows_in,
                       storage::Direction dir, TraversalState* state,
                       const CostEstimator& est, double* work);

/// Initial traversal state right after Select(anchor) on the growing
/// (suffix, kOut) or head (prefix, kIn) side.
TraversalState AnchorState(const storage::CompiledAtom& anchor,
                           storage::Direction dir, const CostEstimator& est);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_OPTIMIZER_H_
