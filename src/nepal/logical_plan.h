// Logical plan IR — stage 1 of the three-stage planning pipeline
// (logical plan -> cost-based optimizer -> physical Step/Program plan).
//
// The logical tree mirrors the resolved RPE's shape (Atom / Seq / Alt /
// Rep) but is owned by the planner, so the optimizer (nepal/optimizer.h)
// can rewrite it — push predicates into atoms, prune statically-dead
// alternation branches against the allowed-edge rules, and pick a loop
// emission strategy — before the physical program is emitted. Keeping an
// explicit algebra between the AST and the operators is the classic
// G-CORE-style separation: rewrites happen here, operator selection later.

#ifndef NEPAL_NEPAL_LOGICAL_PLAN_H_
#define NEPAL_NEPAL_LOGICAL_PLAN_H_

#include <string>
#include <vector>

#include "nepal/rpe.h"
#include "storage/pathset.h"

namespace nepal::nql {

struct LogicalNode {
  enum class Kind { kAtom, kSeq, kAlt, kRep };

  Kind kind = Kind::kAtom;

  storage::CompiledAtom atom;        // kAtom
  std::vector<LogicalNode> children;  // kSeq / kAlt / kRep (Rep: exactly one)

  // kRep bounds (inclusive).
  int min_rep = 1;
  int max_rep = 1;

  // ---- Optimizer annotations ----

  /// Statically empty: the allowed-edge rules admit no element sequence
  /// through this subtree. Pruned Alt branches emit nothing; a pruned
  /// mandatory node makes the whole plan statically empty.
  bool pruned = false;

  /// kRep only: emit the body inline (min == max fixed-count repetition)
  /// instead of a Loop step. Set by the cost-gated loop-strategy rewrite.
  bool unroll = false;

  bool is_optional() const { return kind == Kind::kRep && min_rep == 0; }

  std::string ToString() const;
};

struct LogicalPlan {
  LogicalNode root;

  /// Set by the pruning rewrite when a mandatory element is infeasible:
  /// the query is provably empty and needs no anchors at all.
  bool statically_empty = false;

  /// Human-readable log of the rewrites the optimizer applied, surfaced by
  /// EXPLAIN.
  std::vector<std::string> rewrites;

  std::string ToString() const { return root.ToString(); }
};

/// Builds the logical tree for a resolved RPE (structure copy; atoms are
/// already CompiledAtoms after ResolveRpe).
LogicalPlan BuildLogicalPlan(const RpeNode& resolved);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_LOGICAL_PLAN_H_
