// Program evaluation: drives a backend's PathOperatorExecutor through the
// step list of an anchored plan.

#ifndef NEPAL_NEPAL_EXECUTOR_H_
#define NEPAL_NEPAL_EXECUTOR_H_

#include "nepal/plan.h"
#include "obs/query_stats.h"
#include "storage/pathset.h"

namespace nepal::nql {

/// Runs `program` over `frontier`, growing every path at its tail.
/// kOut follows edge direction, kIn runs against it (prefix side).
storage::PathSet RunProgram(storage::PathOperatorExecutor& exec,
                            const Program& program,
                            storage::PathSet frontier, storage::Direction dir,
                            const storage::TimeView& view);

/// Full evaluation of one MATCHES predicate: plan, Select each anchor,
/// extend forwards/backwards, finalize both ends. Returns canonical
/// (source-to-target ordered) completed paths, deduplicated.
///
/// When `stats` is non-null, the evaluation registers one operator node
/// per Select/Extend/ExtendBlock/Union/Loop step and records rows_in /
/// rows_out / dedup_dropped / shards / wall_ns samples into it; recording
/// is associative (see obs/query_stats.h), so it works under any
/// PlanOptions::parallelism.
Result<storage::PathSet> EvaluateMatch(storage::PathOperatorExecutor& exec,
                                       const storage::StorageBackend& backend,
                                       const RpeNode& resolved_rpe,
                                       const storage::TimeView& view,
                                       const PlanOptions& options,
                                       obs::QueryStatsGroup* stats = nullptr);

enum class SeedSide { kSource, kTarget };

/// Seeded evaluation (imported anchor): the pathway's source (or target)
/// node is pinned to one of `seeds`, so no structural anchor is needed.
/// The backend supplies the statistics for the optimizer rewrites and the
/// row estimates (seeded from `seeds.size()`).
storage::PathSet EvaluateMatchSeeded(storage::PathOperatorExecutor& exec,
                                     const storage::StorageBackend& backend,
                                     const RpeNode& resolved_rpe,
                                     const std::vector<Uid>& seeds,
                                     SeedSide side,
                                     const storage::TimeView& view,
                                     const PlanOptions& options,
                                     obs::QueryStatsGroup* stats = nullptr);

}  // namespace nepal::nql

#endif  // NEPAL_NEPAL_EXECUTOR_H_
