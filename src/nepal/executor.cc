#include "nepal/executor.h"

#include <optional>

namespace nepal::nql {

using storage::Direction;
using storage::PathSet;
using storage::PathState;
using storage::TimeView;

namespace {

/// If the loop body is an atom or an alternation of atoms (the ExtendBlock
/// payload restriction), returns the atom list.
std::optional<std::vector<storage::CompiledAtom>> AsAtomAlternation(
    const Program& body) {
  if (body.size() != 1) return std::nullopt;
  const Step& step = body[0];
  if (step.kind == Step::Kind::kAtom) {
    return std::vector<storage::CompiledAtom>{step.atom};
  }
  if (step.kind == Step::Kind::kUnion) {
    std::vector<storage::CompiledAtom> atoms;
    for (const Program& branch : step.branches) {
      if (branch.size() != 1 || branch[0].kind != Step::Kind::kAtom) {
        return std::nullopt;
      }
      atoms.push_back(branch[0].atom);
    }
    return atoms;
  }
  return std::nullopt;
}

PathSet RunStep(storage::PathOperatorExecutor& exec, const Step& step,
                const PathSet& frontier, Direction dir, const TimeView& view) {
  switch (step.kind) {
    case Step::Kind::kAtom:
      return exec.ExtendAtom(frontier, step.atom, dir, view);
    case Step::Kind::kUnion: {
      PathSet out;
      for (const Program& branch : step.branches) {
        PathSet result = RunProgram(exec, branch, frontier, dir, view);
        out.insert(out.end(), std::make_move_iterator(result.begin()),
                   std::make_move_iterator(result.end()));
      }
      storage::DedupPaths(&out);
      return out;
    }
    case Step::Kind::kLoop: {
      if (auto atoms = AsAtomAlternation(step.body)) {
        // Delegate to the backend's ExtendBlock operator (loop unrolling
        // inside the store, no per-step frontier shipping).
        return exec.ExtendBlock(frontier, *atoms, step.min_rep, step.max_rep,
                                dir, view);
      }
      // General repetition: iterate the body program, collecting the
      // frontier after every admissible repetition count.
      PathSet collected;
      PathSet current = frontier;
      if (step.min_rep == 0) {
        collected.insert(collected.end(), current.begin(), current.end());
      }
      for (int k = 1; k <= step.max_rep && !current.empty(); ++k) {
        current = RunProgram(exec, step.body, std::move(current), dir, view);
        storage::DedupPaths(&current);
        if (k >= step.min_rep) {
          collected.insert(collected.end(), current.begin(), current.end());
        }
      }
      storage::DedupPaths(&collected);
      return collected;
    }
  }
  return {};
}

void ReverseAll(PathSet* paths) {
  for (PathState& state : *paths) state = state.Reversed();
}

}  // namespace

PathSet RunProgram(storage::PathOperatorExecutor& exec, const Program& program,
                   PathSet frontier, Direction dir, const TimeView& view) {
  for (const Step& step : program) {
    if (frontier.empty()) return frontier;
    frontier = RunStep(exec, step, frontier, dir, view);
  }
  return frontier;
}

Result<PathSet> EvaluateMatch(storage::PathOperatorExecutor& exec,
                              const storage::StorageBackend& backend,
                              const RpeNode& resolved_rpe,
                              const TimeView& view,
                              const PlanOptions& options) {
  NEPAL_ASSIGN_OR_RETURN(MatchPlan plan,
                         PlanMatch(resolved_rpe, backend, options));
  PathSet all;
  for (const AnchoredPlan& anchored : plan.anchors) {
    PathSet current = exec.Select(anchored.anchor, view);
    current = RunProgram(exec, anchored.suffix, std::move(current),
                         Direction::kOut, view);
    current = exec.FinalizeTail(current, view);
    ReverseAll(&current);
    current = RunProgram(exec, anchored.reversed_prefix, std::move(current),
                         Direction::kIn, view);
    current = exec.FinalizeTail(current, view);
    ReverseAll(&current);
    all.insert(all.end(), std::make_move_iterator(current.begin()),
               std::make_move_iterator(current.end()));
  }
  storage::DedupPaths(&all);
  return all;
}

PathSet EvaluateMatchSeeded(storage::PathOperatorExecutor& exec,
                            const RpeNode& resolved_rpe,
                            const std::vector<Uid>& seeds, SeedSide side,
                            const TimeView& view, const PlanOptions& options) {
  Program program = CompileProgram(resolved_rpe, options);
  PathSet current = exec.SelectSeeds(seeds, view);
  if (side == SeedSide::kSource) {
    current = RunProgram(exec, program, std::move(current), Direction::kOut,
                         view);
    current = exec.FinalizeTail(current, view);
  } else {
    current = RunProgram(exec, ReverseProgram(program), std::move(current),
                         Direction::kIn, view);
    current = exec.FinalizeTail(current, view);
    ReverseAll(&current);
  }
  storage::DedupPaths(&current);
  return current;
}

}  // namespace nepal::nql
