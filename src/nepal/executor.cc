#include "nepal/executor.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <optional>
#include <string>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "nepal/optimizer.h"

namespace nepal::nql {

using storage::Direction;
using storage::PathSet;
using storage::PathState;
using storage::TimeView;

namespace {

/// Below this many frontier states a shard is not worth the scheduling
/// overhead; the step runs serially.
constexpr size_t kMinStatesPerShard = 8;

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Resolved concurrency settings for one MATCHES evaluation. Per-state
/// independence of Extend/ExtendBlock (the paper's Section 3.3 operators
/// never look across states) is what makes frontier sharding legal.
struct ParallelContext {
  common::ThreadPool* pool = nullptr;
  size_t parallelism = 1;
  /// Operator-stats sink for this evaluation (null: not instrumented).
  obs::QueryStatsGroup* stats = nullptr;

  bool enabled() const { return pool != nullptr && parallelism > 1; }
};

ParallelContext ContextFor(const storage::PathOperatorExecutor& exec,
                           const PlanOptions& options) {
  ParallelContext ctx;
  ctx.parallelism = EffectiveParallelism(options);
  // The legacy string trace (EXPLAIN VERBOSE) appends to a shared
  // per-executor buffer; keep traced runs serial so the rendered
  // operator/SQL sequence stays coherent. Structured stats (EXPLAIN /
  // EXPLAIN ANALYZE) merge associatively and put no such restriction on
  // parallelism.
  if (exec.trace_enabled()) ctx.parallelism = 1;
  if (ctx.parallelism > 1) ctx.pool = &common::ThreadPool::Shared();
  return ctx;
}

/// If the loop body is an atom or an alternation of atoms (the ExtendBlock
/// payload restriction), returns the atom list.
std::optional<std::vector<storage::CompiledAtom>> AsAtomAlternation(
    const Program& body) {
  if (body.size() != 1) return std::nullopt;
  const Step& step = body[0];
  if (step.kind == Step::Kind::kAtom) {
    return std::vector<storage::CompiledAtom>{step.atom};
  }
  if (step.kind == Step::Kind::kUnion) {
    std::vector<storage::CompiledAtom> atoms;
    for (const Program& branch : step.branches) {
      if (branch.size() != 1 || branch[0].kind != Step::Kind::kAtom) {
        return std::nullopt;
      }
      atoms.push_back(branch[0].atom);
    }
    return atoms;
  }
  return std::nullopt;
}

/// Short operator rendering for the stats table.
std::string StepLabel(const Step& step) {
  switch (step.kind) {
    case Step::Kind::kAtom:
      return "Extend " + step.atom.ToString();
    case Step::Kind::kUnion:
      return "Union x" + std::to_string(step.branches.size());
    case Step::Kind::kLoop: {
      std::string rep = "{" + std::to_string(step.min_rep) + "," +
                        std::to_string(step.max_rep) + "}";
      if (auto atoms = AsAtomAlternation(step.body)) {
        std::string alts;
        for (size_t i = 0; i < atoms->size(); ++i) {
          if (i > 0) alts += "|";
          alts += (*atoms)[i].ToString();
        }
        return "ExtendBlock" + rep + " " + alts;
      }
      return "Loop" + rep;
    }
    case Step::Kind::kAutomaton:
      return "Automaton" + RepSuffix(step.min_rep, step.max_rep) + " " +
             std::to_string(step.nfa == nullptr ? 0
                                                : step.nfa->num_states()) +
             " states";
  }
  return "?";
}

/// Graph × NFA product traversal for an Automaton step. The frontier is a
/// set of (path, NFA-state set) entries — classic NFA simulation over the
/// product with the store. Entries are grouped by state set and extended
/// with one batched ExtendAtom call per *distinct* transition atom, so
/// both backends (and the snapshot-read decorators) serve the traversal
/// through the same operator as every other step, and a path occupying
/// many states is still extended only once per atom. (Reversed bounded
/// automata need this: their start's ε-closure fans into every iteration
/// copy, so per-state frontiers would re-extend each path per copy.)
///
/// A per-path memo of occupied states admits each (path, state) pair
/// once, which is what makes cyclic automata — unbounded repetitions —
/// terminate: path states are simple paths over a finite store, so the
/// memo domain is finite, and a suppressed re-arrival could only spawn
/// the exact continuations its first arrival already spawned. For bounded
/// automata (a DAG with one state set per iteration copy) the memo is
/// equivalent to the legacy loop's per-round DedupPaths, so the final
/// output sets match.
///
/// Parallelism: the automaton usually sits right after the anchor Select,
/// so its *input* frontier is tiny and input sharding buys nothing — the
/// work lives in the per-round intermediate frontiers. Each round's
/// (group, atom) extensions are therefore sliced across the pool, while
/// memo admission stays serial in fixed slice order; the output is
/// byte-identical to the serial traversal for every thread count.
PathSet RunAutomaton(storage::PathOperatorExecutor& exec, const Step& step,
                     const PathSet& frontier, Direction dir,
                     const TimeView& view, const ParallelContext& ctx,
                     size_t* before_dedup) {
  PathSet out;
  *before_dedup = 0;
  if (step.nfa == nullptr) return out;
  const Nfa& nfa = *step.nfa;
  const size_t n = nfa.num_states();
  if (n == 0 || nfa.start < 0) return out;
  const size_t start = static_cast<size_t>(nfa.start);

  struct Entry {
    PathState path;
    std::vector<int> states;  // occupied NFA states, sorted
  };
  struct Memo {
    std::vector<bool> visited;  // states this path has ever occupied
    bool emitted = false;
  };
  std::unordered_map<std::string, Memo> seen;

  std::vector<Entry> cur;
  cur.reserve(frontier.size());
  for (const PathState& p : frontier) {
    Memo& memo = seen[p.DedupKey()];
    if (memo.visited.empty()) memo.visited.assign(n, false);
    if (memo.visited[start]) continue;
    memo.visited[start] = true;
    if (nfa.accept[start] && !memo.emitted) {
      // Zero iterations are admissible: the input passes through.
      memo.emitted = true;
      out.push_back(p);
    }
    cur.push_back({p, {static_cast<int>(start)}});
  }

  while (!cur.empty()) {
    // Group entries by state set; a group's outgoing arcs are the distinct
    // transition atoms of its states with their merged target sets.
    struct Arc {
      const storage::CompiledAtom* atom = nullptr;
      std::vector<int> targets;
    };
    struct Group {
      std::vector<size_t> entries;       // indices into cur
      std::map<std::string, Arc> arcs;   // atom rendering -> arc
    };
    std::map<std::string, Group> groups;  // deterministic iteration order
    for (size_t i = 0; i < cur.size(); ++i) {
      std::string key;
      for (int s : cur[i].states) key += std::to_string(s) + ",";
      Group& group = groups[key];
      if (group.entries.empty()) {
        for (int s : cur[i].states) {
          for (const NfaTransition& tr :
               nfa.states[static_cast<size_t>(s)]) {
            Arc& arc = group.arcs[tr.atom.ToString()];
            arc.atom = &tr.atom;
            arc.targets.push_back(tr.target);
          }
        }
        for (auto& [unused, arc] : group.arcs) {
          std::sort(arc.targets.begin(), arc.targets.end());
          arc.targets.erase(
              std::unique(arc.targets.begin(), arc.targets.end()),
              arc.targets.end());
        }
      }
      group.entries.push_back(i);
    }

    // One extension task per (group, arc, chunk). Slice boundaries are a
    // pure function of the frontier, so the admission order below is
    // scheduling-independent.
    struct Slice {
      const Group* group;
      const Arc* arc;
      size_t begin, end;  // range within group->entries
    };
    size_t round_rows = 0;
    for (const auto& [unused, group] : groups) {
      round_rows += group.entries.size() * group.arcs.size();
    }
    const size_t shards =
        ctx.enabled()
            ? std::min(ctx.parallelism * 2, round_rows / kMinStatesPerShard)
            : 0;
    const size_t chunk =
        shards >= 2 ? std::max(kMinStatesPerShard, round_rows / shards)
                    : std::max<size_t>(round_rows, 1);
    std::vector<Slice> slices;
    for (const auto& [unused, group] : groups) {
      for (const auto& [unused2, arc] : group.arcs) {
        for (size_t b = 0; b < group.entries.size(); b += chunk) {
          slices.push_back(
              {&group, &arc, b, std::min(b + chunk, group.entries.size())});
        }
      }
    }
    if (slices.empty()) break;

    std::vector<PathSet> ext(slices.size());
    auto run_slice = [&exec, dir, &view, &cur, &slices, &ext](size_t i) {
      const Slice& sl = slices[i];
      PathSet input;
      input.reserve(sl.end - sl.begin);
      for (size_t k = sl.begin; k < sl.end; ++k) {
        input.push_back(cur[sl.group->entries[k]].path);
      }
      ext[i] = exec.ExtendAtom(input, *sl.arc->atom, dir, view);
    };
    if (shards >= 2 && slices.size() >= 2) {
      std::vector<std::function<void()>> tasks;
      tasks.reserve(slices.size());
      for (size_t i = 0; i < slices.size(); ++i) {
        tasks.push_back([&run_slice, i] { run_slice(i); });
      }
      ctx.pool->RunBatch(std::move(tasks));
    } else {
      for (size_t i = 0; i < slices.size(); ++i) run_slice(i);
    }

    std::vector<Entry> next;
    for (size_t i = 0; i < slices.size(); ++i) {
      const Arc& arc = *slices[i].arc;
      for (PathState& p : ext[i]) {
        Memo& memo = seen[p.DedupKey()];
        if (memo.visited.empty()) memo.visited.assign(n, false);
        std::vector<int> fresh;
        for (int t : arc.targets) {
          if (!memo.visited[static_cast<size_t>(t)]) {
            memo.visited[static_cast<size_t>(t)] = true;
            fresh.push_back(t);
          }
        }
        if (fresh.empty()) continue;
        if (!memo.emitted) {
          for (int t : fresh) {
            if (nfa.accept[static_cast<size_t>(t)]) {
              memo.emitted = true;
              out.push_back(p);
              break;
            }
          }
        }
        next.push_back({std::move(p), std::move(fresh)});
      }
    }
    cur = std::move(next);
  }
  *before_dedup = out.size();
  storage::DedupPaths(&out);
  return out;
}

/// Registers one stats node per step, recursing into union branches and
/// general loop bodies. Bodies delegated to ExtendBlock are not recursed
/// into — their steps never execute individually.
void RegisterProgram(Program* program, obs::QueryStatsGroup* stats) {
  for (Step& step : *program) {
    step.op_id = stats->AddOp(StepLabel(step), step.est_rows);
    if (step.kind == Step::Kind::kUnion) {
      for (Program& branch : step.branches) RegisterProgram(&branch, stats);
    } else if (step.kind == Step::Kind::kLoop &&
               !AsAtomAlternation(step.body).has_value()) {
      RegisterProgram(&step.body, stats);
    }
  }
}

/// How much a step invocation records about itself. Shard slices of a
/// sharded step contribute only strategy-level fields (wall time, shard
/// count); the enclosing logical invocation records the partition-invariant
/// row counts once.
enum class RecordKind { kFull, kShardSlice };

PathSet RunProgramCtx(storage::PathOperatorExecutor& exec,
                      const Program& program, PathSet frontier, Direction dir,
                      const TimeView& view, const ParallelContext& ctx);

PathSet RunStepCtx(storage::PathOperatorExecutor& exec, const Step& step,
                   PathSet frontier, Direction dir, const TimeView& view,
                   const ParallelContext& ctx,
                   RecordKind record_kind = RecordKind::kFull);

/// Splits `frontier` into `shards` contiguous chunks, runs the step over
/// each chunk on the pool, and merges the outputs in shard order. Because
/// sharding is a pure function of (frontier size, parallelism) and each
/// state extends independently, the merged output is deterministic; the
/// cross-shard DedupPaths restores the single-frontier dedup semantics of
/// the serial step. `merged_before_dedup` reports the summed shard output
/// size (the pre-dedup row count of the logical invocation).
PathSet RunStepSharded(storage::PathOperatorExecutor& exec, const Step& step,
                       PathSet frontier, Direction dir, const TimeView& view,
                       const ParallelContext& ctx, size_t shards,
                       size_t* merged_before_dedup) {
  std::vector<PathSet> inputs(shards);
  const size_t base = frontier.size() / shards;
  const size_t rem = frontier.size() % shards;
  size_t pos = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t len = base + (s < rem ? 1 : 0);
    inputs[s].reserve(len);
    for (size_t k = 0; k < len; ++k) {
      inputs[s].push_back(std::move(frontier[pos++]));
    }
  }
  frontier.clear();
  frontier.shrink_to_fit();

  // Each shard runs the step serially; the parallelism budget is already
  // spent on the shard fan-out itself. The stats sink is carried over so
  // slices report their wall time and nested steps keep recording.
  ParallelContext serial;
  serial.stats = ctx.stats;
  std::vector<PathSet> outputs(shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    tasks.push_back([&exec, &step, dir, &view, &serial, &inputs, &outputs,
                     s] {
      outputs[s] = RunStepCtx(exec, step, std::move(inputs[s]), dir, view,
                              serial, RecordKind::kShardSlice);
    });
  }
  ctx.pool->RunBatch(std::move(tasks));

  size_t total = 0;
  for (const PathSet& out : outputs) total += out.size();
  *merged_before_dedup = total;
  PathSet merged;
  merged.reserve(total);
  for (PathSet& out : outputs) {
    merged.insert(merged.end(), std::make_move_iterator(out.begin()),
                  std::make_move_iterator(out.end()));
  }
  // A plain Extend never dedups serially, so neither does its sharded form
  // (multiplicity must match); Union/Loop steps dedup their whole output.
  if (step.kind != Step::Kind::kAtom) storage::DedupPaths(&merged);
  return merged;
}

PathSet RunStepCtx(storage::PathOperatorExecutor& exec, const Step& step,
                   PathSet frontier, Direction dir, const TimeView& view,
                   const ParallelContext& ctx, RecordKind record_kind) {
  obs::QueryStatsGroup* stats = ctx.stats;
  const bool record = stats != nullptr && step.op_id >= 0;
  const size_t rows_in = frontier.size();
  const uint64_t start = record ? NowNs() : 0;

  if (ctx.enabled()) {
    size_t shards = std::min(ctx.parallelism * 2,
                             frontier.size() / kMinStatesPerShard);
    if (shards >= 2) {
      size_t before_dedup = 0;
      PathSet out = RunStepSharded(exec, step, std::move(frontier), dir, view,
                                   ctx, shards, &before_dedup);
      if (record) {
        // The logical invocation: partition-invariant row counts. Wall
        // time and shard counts were recorded by the slices themselves.
        obs::OpSample sample;
        sample.rows_in = rows_in;
        sample.rows_out = out.size();
        sample.dedup_dropped = before_dedup - out.size();
        sample.invocations = 1;
        stats->Record(step.op_id, sample);
      }
      return out;
    }
  }

  size_t before_dedup = 0;
  PathSet out;
  switch (step.kind) {
    case Step::Kind::kAtom:
      out = exec.ExtendAtom(frontier, step.atom, dir, view);
      before_dedup = out.size();
      break;
    case Step::Kind::kUnion: {
      for (const Program& branch : step.branches) {
        PathSet result = RunProgramCtx(exec, branch, frontier, dir, view,
                                       ctx);
        out.insert(out.end(), std::make_move_iterator(result.begin()),
                   std::make_move_iterator(result.end()));
      }
      before_dedup = out.size();
      storage::DedupPaths(&out);
      break;
    }
    case Step::Kind::kLoop: {
      if (auto atoms = AsAtomAlternation(step.body)) {
        // Delegate to the backend's ExtendBlock operator (loop unrolling
        // inside the store, no per-step frontier shipping).
        out = exec.ExtendBlock(frontier, *atoms, step.min_rep, step.max_rep,
                               dir, view);
        before_dedup = out.size();
        break;
      }
      // General repetition: iterate the body program, collecting the
      // frontier after every admissible repetition count.
      PathSet collected;
      PathSet current = frontier;
      if (step.min_rep == 0) {
        collected.insert(collected.end(), current.begin(), current.end());
      }
      for (int k = 1; k <= step.max_rep && !current.empty(); ++k) {
        current = RunProgramCtx(exec, step.body, std::move(current), dir,
                                view, ctx);
        storage::DedupPaths(&current);
        if (k >= step.min_rep) {
          collected.insert(collected.end(), current.begin(), current.end());
        }
      }
      before_dedup = collected.size();
      storage::DedupPaths(&collected);
      out = std::move(collected);
      break;
    }
    case Step::Kind::kAutomaton:
      out = RunAutomaton(exec, step, frontier, dir, view, ctx, &before_dedup);
      break;
  }

  if (record) {
    obs::OpSample sample;
    sample.wall_ns = NowNs() - start;
    sample.shards = 1;
    if (record_kind == RecordKind::kFull) {
      sample.rows_in = rows_in;
      sample.rows_out = out.size();
      sample.dedup_dropped = before_dedup - out.size();
      sample.invocations = 1;
    }
    stats->Record(step.op_id, sample);
  }
  return out;
}

PathSet RunProgramCtx(storage::PathOperatorExecutor& exec,
                      const Program& program, PathSet frontier, Direction dir,
                      const TimeView& view, const ParallelContext& ctx) {
  for (const Step& step : program) {
    if (frontier.empty()) return frontier;
    frontier = RunStepCtx(exec, step, std::move(frontier), dir, view, ctx);
  }
  return frontier;
}

void ReverseAll(PathSet* paths) {
  for (PathState& state : *paths) state = state.Reversed();
}

/// Stats node ids of the non-step operators of one anchored plan.
struct AnchorOpIds {
  int select = -1;
  int finalize_tail = -1;
  int finalize_head = -1;
};

/// Times `fn` and records an (rows_in, rows_out) sample against `op_id`.
PathSet RecordedCall(obs::QueryStatsGroup* stats, int op_id, size_t rows_in,
                     const std::function<PathSet()>& fn) {
  if (stats == nullptr || op_id < 0) return fn();
  const uint64_t start = NowNs();
  PathSet out = fn();
  obs::OpSample sample;
  sample.rows_in = rows_in;
  sample.rows_out = out.size();
  sample.shards = 1;
  sample.wall_ns = NowNs() - start;
  sample.invocations = 1;
  stats->Record(op_id, sample);
  return out;
}

/// One anchored plan, end to end: Select the anchor, grow the suffix
/// forwards, then the prefix backwards over the reversed states.
PathSet RunAnchoredPlan(storage::PathOperatorExecutor& exec,
                        const AnchoredPlan& anchored, const TimeView& view,
                        const ParallelContext& ctx, const AnchorOpIds& ids) {
  PathSet current = RecordedCall(ctx.stats, ids.select, 0, [&] {
    return exec.Select(anchored.anchor, view);
  });
  current = RunProgramCtx(exec, anchored.suffix, std::move(current),
                          Direction::kOut, view, ctx);
  size_t in = current.size();
  current = RecordedCall(ctx.stats, ids.finalize_tail, in, [&] {
    return exec.FinalizeTail(current, view);
  });
  ReverseAll(&current);
  current = RunProgramCtx(exec, anchored.reversed_prefix, std::move(current),
                          Direction::kIn, view, ctx);
  in = current.size();
  current = RecordedCall(ctx.stats, ids.finalize_head, in, [&] {
    return exec.FinalizeTail(current, view);
  });
  ReverseAll(&current);
  return current;
}

}  // namespace

PathSet RunProgram(storage::PathOperatorExecutor& exec, const Program& program,
                   PathSet frontier, Direction dir, const TimeView& view) {
  return RunProgramCtx(exec, program, std::move(frontier), dir, view,
                       ParallelContext{});
}

Result<PathSet> EvaluateMatch(storage::PathOperatorExecutor& exec,
                              const storage::StorageBackend& backend,
                              const RpeNode& resolved_rpe,
                              const TimeView& view,
                              const PlanOptions& options,
                              obs::QueryStatsGroup* stats) {
  NEPAL_ASSIGN_OR_RETURN(MatchPlan plan,
                         PlanMatch(resolved_rpe, backend, options, view));
  ParallelContext ctx = ContextFor(exec, options);
  ctx.stats = stats;

  // Register every operator node up front — ids live in this call's own
  // MatchPlan, and registration must be sequenced before any (possibly
  // concurrent) recording.
  std::vector<AnchorOpIds> ids(plan.anchors.size());
  int merge_id = -1;
  if (stats != nullptr) {
    double merge_est = plan.anchors.empty() ? 0 : -1;
    for (size_t i = 0; i < plan.anchors.size(); ++i) {
      AnchoredPlan& anchored = plan.anchors[i];
      ids[i].select = stats->AddOp("Select " + anchored.anchor.ToString(),
                                   anchored.anchor_cost);
      RegisterProgram(&anchored.suffix, stats);
      ids[i].finalize_tail =
          stats->AddOp("Finalize(tail)", anchored.est_after_suffix);
      RegisterProgram(&anchored.reversed_prefix, stats);
      ids[i].finalize_head = stats->AddOp("Finalize(head)", anchored.est_rows);
      if (anchored.est_rows >= 0) {
        merge_est = merge_est < 0 ? anchored.est_rows
                                  : merge_est + anchored.est_rows;
      }
    }
    merge_id = stats->AddOp("Merge " + std::to_string(plan.anchors.size()) +
                                " anchor(s)",
                            merge_est);
  }

  PathSet all;
  if (ctx.enabled() && plan.anchors.size() > 1) {
    // Anchored plans are independent of one another (their union is the
    // match result): evaluate them concurrently, merge in plan order.
    std::vector<PathSet> results(plan.anchors.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(plan.anchors.size());
    for (size_t i = 0; i < plan.anchors.size(); ++i) {
      tasks.push_back([&exec, &plan, &view, &ctx, &results, &ids, i] {
        results[i] = RunAnchoredPlan(exec, plan.anchors[i], view, ctx,
                                     ids[i]);
      });
    }
    ctx.pool->RunBatch(std::move(tasks));
    for (PathSet& result : results) {
      all.insert(all.end(), std::make_move_iterator(result.begin()),
                 std::make_move_iterator(result.end()));
    }
  } else {
    for (size_t i = 0; i < plan.anchors.size(); ++i) {
      PathSet current = RunAnchoredPlan(exec, plan.anchors[i], view, ctx,
                                        ids[i]);
      all.insert(all.end(), std::make_move_iterator(current.begin()),
                 std::make_move_iterator(current.end()));
    }
  }
  const size_t before_dedup = all.size();
  const uint64_t merge_start = stats != nullptr ? NowNs() : 0;
  storage::DedupPaths(&all);
  // Parallel mode pins the output to canonical order: the result is then
  // byte-identical for every thread count, machine, and anchor choice.
  // parallelism == 1 keeps the historical serial order untouched.
  if (ctx.enabled()) storage::CanonicalizePaths(&all);
  if (stats != nullptr) {
    obs::OpSample sample;
    sample.rows_in = before_dedup;
    sample.rows_out = all.size();
    sample.dedup_dropped = before_dedup - all.size();
    sample.shards = 1;
    sample.wall_ns = NowNs() - merge_start;
    sample.invocations = 1;
    stats->Record(merge_id, sample);
  }
  return all;
}

PathSet EvaluateMatchSeeded(storage::PathOperatorExecutor& exec,
                            const storage::StorageBackend& backend,
                            const RpeNode& resolved_rpe,
                            const std::vector<Uid>& seeds, SeedSide side,
                            const TimeView& view, const PlanOptions& options,
                            obs::QueryStatsGroup* stats) {
  // Compile unannotated, orient for the seeded side, then annotate with
  // row estimates in the direction the program will actually run.
  Program compiled =
      CompileSeededProgram(resolved_rpe, backend, options, view, -1);
  Program program = side == SeedSide::kSource ? std::move(compiled)
                                              : ReverseProgram(compiled);
  const Direction dir =
      side == SeedSide::kSource ? Direction::kOut : Direction::kIn;
  double final_est = -1;
  {
    CostEstimator est(backend, view);
    TraversalState st{nullptr, false};  // seeds: bare node frontiers
    double work = 0;
    final_est = AnnotateProgram(&program, static_cast<double>(seeds.size()),
                                dir, &st, est, &work);
  }
  ParallelContext ctx = ContextFor(exec, options);
  ctx.stats = stats;
  int select_id = -1, finalize_id = -1, merge_id = -1;
  if (stats != nullptr) {
    select_id =
        stats->AddOp("SelectSeeds", static_cast<double>(seeds.size()));
    RegisterProgram(&program, stats);
    finalize_id = stats->AddOp("Finalize(tail)", final_est);
    merge_id = stats->AddOp("Merge 1 anchor(s)", final_est);
  }
  PathSet current = RecordedCall(stats, select_id, seeds.size(), [&] {
    return exec.SelectSeeds(seeds, view);
  });
  current = RunProgramCtx(exec, program, std::move(current),
                          side == SeedSide::kSource ? Direction::kOut
                                                    : Direction::kIn,
                          view, ctx);
  size_t in = current.size();
  current = RecordedCall(stats, finalize_id, in, [&] {
    return exec.FinalizeTail(current, view);
  });
  if (side == SeedSide::kTarget) ReverseAll(&current);
  const size_t before_dedup = current.size();
  const uint64_t merge_start = stats != nullptr ? NowNs() : 0;
  storage::DedupPaths(&current);
  if (ctx.enabled()) storage::CanonicalizePaths(&current);
  if (stats != nullptr) {
    obs::OpSample sample;
    sample.rows_in = before_dedup;
    sample.rows_out = current.size();
    sample.dedup_dropped = before_dedup - current.size();
    sample.shards = 1;
    sample.wall_ns = NowNs() - merge_start;
    sample.invocations = 1;
    stats->Record(merge_id, sample);
  }
  return current;
}

}  // namespace nepal::nql
