#include "nepal/executor.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <thread>

#include "common/thread_pool.h"

namespace nepal::nql {

using storage::Direction;
using storage::PathSet;
using storage::PathState;
using storage::TimeView;

namespace {

/// Below this many frontier states a shard is not worth the scheduling
/// overhead; the step runs serially.
constexpr size_t kMinStatesPerShard = 8;

/// Resolved concurrency settings for one MATCHES evaluation. Per-state
/// independence of Extend/ExtendBlock (the paper's Section 3.3 operators
/// never look across states) is what makes frontier sharding legal.
struct ParallelContext {
  common::ThreadPool* pool = nullptr;
  size_t parallelism = 1;

  bool enabled() const { return pool != nullptr && parallelism > 1; }
};

ParallelContext ContextFor(const storage::PathOperatorExecutor& exec,
                           const PlanOptions& options) {
  ParallelContext ctx;
  if (options.parallelism > 1) {
    ctx.parallelism = static_cast<size_t>(options.parallelism);
  } else if (options.parallelism <= 0) {
    size_t hw = std::thread::hardware_concurrency();
    ctx.parallelism = hw == 0 ? 1 : hw;
  }
  // Tracing (EXPLAIN) appends to a shared per-executor buffer; keep traced
  // runs serial so the rendered operator/SQL sequence stays coherent.
  if (exec.trace_enabled()) ctx.parallelism = 1;
  if (ctx.parallelism > 1) ctx.pool = &common::ThreadPool::Shared();
  return ctx;
}

/// If the loop body is an atom or an alternation of atoms (the ExtendBlock
/// payload restriction), returns the atom list.
std::optional<std::vector<storage::CompiledAtom>> AsAtomAlternation(
    const Program& body) {
  if (body.size() != 1) return std::nullopt;
  const Step& step = body[0];
  if (step.kind == Step::Kind::kAtom) {
    return std::vector<storage::CompiledAtom>{step.atom};
  }
  if (step.kind == Step::Kind::kUnion) {
    std::vector<storage::CompiledAtom> atoms;
    for (const Program& branch : step.branches) {
      if (branch.size() != 1 || branch[0].kind != Step::Kind::kAtom) {
        return std::nullopt;
      }
      atoms.push_back(branch[0].atom);
    }
    return atoms;
  }
  return std::nullopt;
}

PathSet RunProgramCtx(storage::PathOperatorExecutor& exec,
                      const Program& program, PathSet frontier, Direction dir,
                      const TimeView& view, const ParallelContext& ctx);

PathSet RunStepCtx(storage::PathOperatorExecutor& exec, const Step& step,
                   PathSet frontier, Direction dir, const TimeView& view,
                   const ParallelContext& ctx);

/// Splits `frontier` into `shards` contiguous chunks, runs the step over
/// each chunk on the pool, and merges the outputs in shard order. Because
/// sharding is a pure function of (frontier size, parallelism) and each
/// state extends independently, the merged output is deterministic; the
/// cross-shard DedupPaths restores the single-frontier dedup semantics of
/// the serial step.
PathSet RunStepSharded(storage::PathOperatorExecutor& exec, const Step& step,
                       PathSet frontier, Direction dir, const TimeView& view,
                       const ParallelContext& ctx, size_t shards) {
  std::vector<PathSet> inputs(shards);
  const size_t base = frontier.size() / shards;
  const size_t rem = frontier.size() % shards;
  size_t pos = 0;
  for (size_t s = 0; s < shards; ++s) {
    size_t len = base + (s < rem ? 1 : 0);
    inputs[s].reserve(len);
    for (size_t k = 0; k < len; ++k) {
      inputs[s].push_back(std::move(frontier[pos++]));
    }
  }
  frontier.clear();
  frontier.shrink_to_fit();

  // Each shard runs the step serially; the parallelism budget is already
  // spent on the shard fan-out itself.
  const ParallelContext serial;
  std::vector<PathSet> outputs(shards);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    tasks.push_back([&exec, &step, dir, &view, &serial, &inputs, &outputs,
                     s] {
      outputs[s] =
          RunStepCtx(exec, step, std::move(inputs[s]), dir, view, serial);
    });
  }
  ctx.pool->RunBatch(std::move(tasks));

  size_t total = 0;
  for (const PathSet& out : outputs) total += out.size();
  PathSet merged;
  merged.reserve(total);
  for (PathSet& out : outputs) {
    merged.insert(merged.end(), std::make_move_iterator(out.begin()),
                  std::make_move_iterator(out.end()));
  }
  // A plain Extend never dedups serially, so neither does its sharded form
  // (multiplicity must match); Union/Loop steps dedup their whole output.
  if (step.kind != Step::Kind::kAtom) storage::DedupPaths(&merged);
  return merged;
}

PathSet RunStepCtx(storage::PathOperatorExecutor& exec, const Step& step,
                   PathSet frontier, Direction dir, const TimeView& view,
                   const ParallelContext& ctx) {
  if (ctx.enabled()) {
    size_t shards = std::min(ctx.parallelism * 2,
                             frontier.size() / kMinStatesPerShard);
    if (shards >= 2) {
      return RunStepSharded(exec, step, std::move(frontier), dir, view, ctx,
                            shards);
    }
  }
  switch (step.kind) {
    case Step::Kind::kAtom:
      return exec.ExtendAtom(frontier, step.atom, dir, view);
    case Step::Kind::kUnion: {
      PathSet out;
      for (const Program& branch : step.branches) {
        PathSet result = RunProgramCtx(exec, branch, frontier, dir, view,
                                       ctx);
        out.insert(out.end(), std::make_move_iterator(result.begin()),
                   std::make_move_iterator(result.end()));
      }
      storage::DedupPaths(&out);
      return out;
    }
    case Step::Kind::kLoop: {
      if (auto atoms = AsAtomAlternation(step.body)) {
        // Delegate to the backend's ExtendBlock operator (loop unrolling
        // inside the store, no per-step frontier shipping).
        return exec.ExtendBlock(frontier, *atoms, step.min_rep, step.max_rep,
                                dir, view);
      }
      // General repetition: iterate the body program, collecting the
      // frontier after every admissible repetition count.
      PathSet collected;
      PathSet current = frontier;
      if (step.min_rep == 0) {
        collected.insert(collected.end(), current.begin(), current.end());
      }
      for (int k = 1; k <= step.max_rep && !current.empty(); ++k) {
        current = RunProgramCtx(exec, step.body, std::move(current), dir,
                                view, ctx);
        storage::DedupPaths(&current);
        if (k >= step.min_rep) {
          collected.insert(collected.end(), current.begin(), current.end());
        }
      }
      storage::DedupPaths(&collected);
      return collected;
    }
  }
  return {};
}

PathSet RunProgramCtx(storage::PathOperatorExecutor& exec,
                      const Program& program, PathSet frontier, Direction dir,
                      const TimeView& view, const ParallelContext& ctx) {
  for (const Step& step : program) {
    if (frontier.empty()) return frontier;
    frontier = RunStepCtx(exec, step, std::move(frontier), dir, view, ctx);
  }
  return frontier;
}

void ReverseAll(PathSet* paths) {
  for (PathState& state : *paths) state = state.Reversed();
}

/// One anchored plan, end to end: Select the anchor, grow the suffix
/// forwards, then the prefix backwards over the reversed states.
PathSet RunAnchoredPlan(storage::PathOperatorExecutor& exec,
                        const AnchoredPlan& anchored, const TimeView& view,
                        const ParallelContext& ctx) {
  PathSet current = exec.Select(anchored.anchor, view);
  current = RunProgramCtx(exec, anchored.suffix, std::move(current),
                          Direction::kOut, view, ctx);
  current = exec.FinalizeTail(current, view);
  ReverseAll(&current);
  current = RunProgramCtx(exec, anchored.reversed_prefix, std::move(current),
                          Direction::kIn, view, ctx);
  current = exec.FinalizeTail(current, view);
  ReverseAll(&current);
  return current;
}

}  // namespace

PathSet RunProgram(storage::PathOperatorExecutor& exec, const Program& program,
                   PathSet frontier, Direction dir, const TimeView& view) {
  return RunProgramCtx(exec, program, std::move(frontier), dir, view,
                       ParallelContext{});
}

Result<PathSet> EvaluateMatch(storage::PathOperatorExecutor& exec,
                              const storage::StorageBackend& backend,
                              const RpeNode& resolved_rpe,
                              const TimeView& view,
                              const PlanOptions& options) {
  NEPAL_ASSIGN_OR_RETURN(MatchPlan plan,
                         PlanMatch(resolved_rpe, backend, options));
  ParallelContext ctx = ContextFor(exec, options);
  PathSet all;
  if (ctx.enabled() && plan.anchors.size() > 1) {
    // Anchored plans are independent of one another (their union is the
    // match result): evaluate them concurrently, merge in plan order.
    std::vector<PathSet> results(plan.anchors.size());
    std::vector<std::function<void()>> tasks;
    tasks.reserve(plan.anchors.size());
    for (size_t i = 0; i < plan.anchors.size(); ++i) {
      tasks.push_back([&exec, &plan, &view, &ctx, &results, i] {
        results[i] = RunAnchoredPlan(exec, plan.anchors[i], view, ctx);
      });
    }
    ctx.pool->RunBatch(std::move(tasks));
    for (PathSet& result : results) {
      all.insert(all.end(), std::make_move_iterator(result.begin()),
                 std::make_move_iterator(result.end()));
    }
  } else {
    for (const AnchoredPlan& anchored : plan.anchors) {
      PathSet current = RunAnchoredPlan(exec, anchored, view, ctx);
      all.insert(all.end(), std::make_move_iterator(current.begin()),
                 std::make_move_iterator(current.end()));
    }
  }
  storage::DedupPaths(&all);
  // Parallel mode pins the output to canonical order: the result is then
  // byte-identical for every thread count, machine, and anchor choice.
  // parallelism == 1 keeps the historical serial order untouched.
  if (ctx.enabled()) storage::CanonicalizePaths(&all);
  return all;
}

PathSet EvaluateMatchSeeded(storage::PathOperatorExecutor& exec,
                            const RpeNode& resolved_rpe,
                            const std::vector<Uid>& seeds, SeedSide side,
                            const TimeView& view, const PlanOptions& options) {
  Program program = CompileProgram(resolved_rpe, options);
  ParallelContext ctx = ContextFor(exec, options);
  PathSet current = exec.SelectSeeds(seeds, view);
  if (side == SeedSide::kSource) {
    current = RunProgramCtx(exec, program, std::move(current),
                            Direction::kOut, view, ctx);
    current = exec.FinalizeTail(current, view);
  } else {
    current = RunProgramCtx(exec, ReverseProgram(program), std::move(current),
                            Direction::kIn, view, ctx);
    current = exec.FinalizeTail(current, view);
    ReverseAll(&current);
  }
  storage::DedupPaths(&current);
  if (ctx.enabled()) storage::CanonicalizePaths(&current);
  return current;
}

}  // namespace nepal::nql
