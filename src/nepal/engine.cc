#include "nepal/engine.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <functional>
#include <set>
#include <shared_mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "common/thread_pool.h"
#include "nepal/snapshot.h"
#include "nepal/view_provider.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace nepal::nql {

using storage::PathSet;
using storage::PathState;
using storage::TimeView;

namespace {

std::string RenderInterval(const Interval& iv) {
  if (iv == Interval::All()) return "";
  return " @" + iv.ToString();
}

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Converts a completed PathState into a result Pathway.
Pathway ToPathway(const PathState& state) {
  Pathway p;
  p.uids = state.uids;
  p.concepts = state.concepts;
  p.valid = state.valid;
  return p;
}

/// Groups states with identical uid sequences and re-emits them with
/// maximal validity intervals (coalescing adjacent version intervals).
void CoalescePathSet(PathSet* paths) {
  std::unordered_map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < paths->size(); ++i) {
    const PathState& s = (*paths)[i];
    std::string key;
    key.reserve(s.uids.size() * sizeof(Uid));
    for (Uid u : s.uids) {
      key.append(reinterpret_cast<const char*>(&u), sizeof(u));
    }
    groups[key].push_back(i);
  }
  PathSet out;
  out.reserve(groups.size());
  for (auto& [key, indexes] : groups) {
    if (indexes.size() == 1) {
      out.push_back(std::move((*paths)[indexes[0]]));
      continue;
    }
    IntervalSet merged;
    for (size_t i : indexes) merged.Add((*paths)[i].valid);
    for (const Interval& iv : merged.intervals()) {
      PathState state = (*paths)[indexes[0]];
      state.valid = iv;
      out.push_back(std::move(state));
    }
  }
  *paths = std::move(out);
}

TimeView ViewFor(const std::optional<TimeSpec>& var_at,
                 const std::optional<TimeSpec>& query_at) {
  const std::optional<TimeSpec>& spec = var_at.has_value() ? var_at : query_at;
  if (!spec.has_value()) return TimeView::Current();
  if (spec->is_range()) return TimeView::Range(spec->start, *spec->end);
  return TimeView::AsOf(spec->start);
}

/// Version of an element consistent with a pathway's validity interval.
/// `epoch` is non-zero in snapshot mode: the view is pinned to it and the
/// lookup takes its own brief shared lock (locked mode already holds one
/// for the whole evaluation).
Result<storage::ElementVersion> FetchVersion(storage::GraphDb* db, Uid uid,
                                             const Interval& valid,
                                             uint64_t epoch) {
  TimeView view = valid.end == kTimestampMax && valid.start == kTimestampMin
                      ? TimeView::Current()
                  : valid.end == kTimestampMax ? TimeView::Current()
                                               : TimeView::AsOf(valid.start);
  if (epoch != 0) view = view.WithEpoch(epoch);
  storage::ElementVersion out;
  bool found = false;
  auto sink = [&](const storage::ElementVersion& v) {
    if (!found) {
      out = v;
      found = true;
    }
  };
  if (epoch != 0) {
    std::shared_lock<std::shared_mutex> lock(db->mutex());
    db->backend().Get(uid, view, sink);
  } else {
    db->backend().Get(uid, view, sink);
  }
  if (!found) {
    return Status::Internal("pathway element uid " + std::to_string(uid) +
                            " not found while post-processing");
  }
  return out;
}

}  // namespace

std::string Pathway::ToString() const {
  std::string out;
  for (size_t i = 0; i < uids.size(); ++i) {
    if (i > 0) out += "->";
    out += concepts[i]->name() + "#" + std::to_string(uids[i]);
  }
  out += RenderInterval(valid);
  return out;
}

std::string QueryResult::ToString(size_t max_rows) const {
  if (!explain_text.empty()) return explain_text;
  std::string out;
  if (agg != TemporalAgg::kNone) {
    switch (agg) {
      case TemporalAgg::kFirstTime:
        out += "First Time When Exists: " +
               (agg_time ? FormatTimestamp(*agg_time) : "<never>") + "\n";
        break;
      case TemporalAgg::kLastTime:
        out += "Last Time When Exists: " +
               (agg_time
                    ? (*agg_time == kTimestampMax ? "<still exists>"
                                                  : FormatTimestamp(*agg_time))
                    : "<never>") +
               "\n";
        break;
      case TemporalAgg::kWhenExists:
        out += "When Exists: " + when_exists.ToString() + "\n";
        break;
      default:
        break;
    }
  }
  out += std::to_string(rows.size()) + " row(s)\n";
  size_t shown = 0;
  for (const ResultRow& row : rows) {
    if (max_rows != 0 && shown++ >= max_rows) {
      out += "...\n";
      break;
    }
    std::string line;
    for (size_t i = 0; i < row.paths.size(); ++i) {
      if (!line.empty()) line += " | ";
      line += path_columns[i] + ": " + row.paths[i].ToString();
    }
    for (size_t i = 0; i < row.values.size(); ++i) {
      if (!line.empty()) line += " | ";
      line += value_columns[i] + "=" + row.values[i].ToString();
    }
    // Pathway columns already render their own validity interval.
    if (row.paths.empty()) line += RenderInterval(row.valid);
    out += line + "\n";
  }
  return out;
}

QueryEngine::QueryEngine(storage::GraphDb* db, EngineOptions options)
    : default_db_(db), options_(options) {}

Status QueryEngine::DefineView(const std::string& name,
                               const std::string& rpe_text) {
  if (name == "PATHS" || name == "paths") {
    return Status::InvalidArgument("PATHS is the built-in view of all "
                                   "pathways and cannot be redefined");
  }
  NEPAL_ASSIGN_OR_RETURN(RpeNode rpe, ParseRpe(rpe_text));
  views_[name] = std::move(rpe);
  return Status::OK();
}

Result<storage::GraphDb*> QueryEngine::SourceFor(
    const RangeVarDecl& decl, storage::GraphDb* run_db) const {
  if (!decl.source.has_value()) return run_db;
  // Queries only read, so any catalog entry — replica included — routes.
  return catalog_.Readable(*decl.source);
}

Result<QueryResult> QueryEngine::Run(const std::string& nql) const {
  // `SERVE VIEW <name>` desugars to `Retrieve P From <name> P`, answered
  // from the attached provider's cache. CREATE / DROP VIEW act on the view
  // catalog itself, which the engine has no mutable handle on — the shell
  // routes them to views::ViewCatalog.
  NEPAL_ASSIGN_OR_RETURN(std::optional<ViewDdl> ddl, ParseViewDdl(nql));
  if (ddl.has_value()) {
    if (ddl->kind != ViewDdl::Kind::kServe) {
      return Status::Unsupported(
          "CREATE VIEW / DROP VIEW manage the materialized-view catalog; "
          "run them through the shell (or views::ViewCatalog directly), "
          "not the query engine");
    }
    Query query;
    query.retrieve_vars.push_back("P");
    RangeVarDecl decl;
    decl.view = ddl->name;
    decl.name = "P";
    query.range_vars.push_back(std::move(decl));
    obs::ScopedTrace serve_trace(obs::Tracer::Global().StartTrace("query"));
    return RunParsed(query, nql);
  }
  obs::ScopedTrace trace(obs::Tracer::Global().StartTrace("query"));
  const uint64_t t_parse = trace.active() ? obs::TraceNowNs() : 0;
  NEPAL_ASSIGN_OR_RETURN(Query query, ParseQuery(nql));
  if (trace.active()) {
    trace.trace()->AddSpan(trace.trace()->root_span(), "parse",
                           obs::TraceNowNs() - t_parse);
  }
  return RunParsed(query, nql);
}

Result<QueryResult> QueryEngine::RunQuery(const Query& query) const {
  obs::ScopedTrace trace(obs::Tracer::Global().StartTrace("query"));
  return RunParsed(query, "<ast>");
}

Result<std::string> QueryEngine::Explain(const std::string& nql) const {
  // `SERVE VIEW <name>` has no cold plan to trace — the one-line served
  // plan is the whole story, so it explains under kPlan (which may serve)
  // rather than kVerbose (which never does).
  NEPAL_ASSIGN_OR_RETURN(std::optional<ViewDdl> ddl, ParseViewDdl(nql));
  if (ddl.has_value()) {
    if (ddl->kind != ViewDdl::Kind::kServe) {
      return Status::Unsupported(
          "CREATE VIEW / DROP VIEW manage the materialized-view catalog; "
          "run them through the shell (or views::ViewCatalog directly), "
          "not the query engine");
    }
    Query query;
    query.retrieve_vars.push_back("P");
    RangeVarDecl decl;
    decl.view = ddl->name;
    decl.name = "P";
    query.range_vars.push_back(std::move(decl));
    query.explain = ExplainMode::kPlan;
    NEPAL_ASSIGN_OR_RETURN(QueryResult result, RunParsed(query, nql));
    return result.explain_text;
  }
  NEPAL_ASSIGN_OR_RETURN(Query query, ParseQuery(nql));
  query.explain = ExplainMode::kVerbose;
  NEPAL_ASSIGN_OR_RETURN(QueryResult result, RunParsed(query, nql));
  return result.explain_text;
}

obs::QueryStats QueryEngine::LastQueryStats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_stats_;
}

std::vector<SlowQuery> QueryEngine::SlowQueries() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return std::vector<SlowQuery>(slow_log_.begin(), slow_log_.end());
}

RouteDecision QueryEngine::LastRoute() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return last_route_;
}

Result<QueryResult> QueryEngine::RunParsed(const Query& query,
                                           const std::string& text) const {
  const std::string& backend_name = default_db_->backend().name();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();

  ExplainCapture capture;
  std::vector<std::string> lines;
  if (query.explain == ExplainMode::kPlan ||
      query.explain == ExplainMode::kVerbose) {
    capture.lines = &lines;
    capture.trace = query.explain == ExplainMode::kVerbose;
  }

  // ---- Read routing ----
  // Under a non-default policy, the whole query may evaluate on a replica:
  // the router pins the replica's commit epoch at decision time and the
  // query runs in snapshot mode there — it never observes state older than
  // the staleness bound, and never straddles replica apply batches. EXPLAIN
  // stays on the primary (its plan/trace capture is the point), as do
  // queries the materialized-view provider might serve: the view cache is
  // primary-bound, and a provider-registered view *name* only resolves
  // through it.
  RouteDecision route;
  route.db = default_db_;
  std::map<storage::GraphDb*, uint64_t> routed_epochs;
  const std::map<storage::GraphDb*, uint64_t>* outer_epochs = nullptr;
  if (options_.routing.policy != ReadPolicy::kPrimaryOnly &&
      query.explain == ExplainMode::kNone) {
    bool routable = true;
    if (view_provider_ != nullptr) {
      for (const RangeVarDecl& decl : query.range_vars) {
        std::string view_name = decl.view;
        for (char& c : view_name) c = static_cast<char>(std::toupper(c));
        if (view_name != "PATHS" && views_.find(decl.view) == views_.end()) {
          routable = false;  // provider-served view: primary only
          break;
        }
      }
    }
    if (routable) {
      route = catalog_.RouteRead(default_db_, options_.routing);
      if (route.replica) {
        routed_epochs.emplace(route.db, route.epoch);
        routed_epochs.emplace(default_db_, default_db_->commit_epoch());
        catalog_.ForEach([&routed_epochs](const std::string&,
                                          const SourceDescriptor& desc) {
          storage::GraphDb* db = desc.database();
          routed_epochs.emplace(db, db->commit_epoch());
        });
        outer_epochs = &routed_epochs;
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_route_ = route;
  }

  obs::QueryStatsBuilder builder;
  // Read-path execute span. Per-operator children are synthesized below
  // from the partition-invariant QueryStats totals rather than recorded
  // live: pool threads have no ambient context, and the associative
  // totals give the tree an identical shape at parallelism 1 and N.
  obs::TraceContext tctx = obs::Tracer::CurrentContext();
  uint32_t exec_span = 0;
  if (tctx) exec_span = tctx.trace->OpenSpan(tctx.span_id, "execute");
  const uint64_t start = NowNs();
  Result<QueryResult> result =
      RunInternal(query, OuterEnv{}, capture, &builder,
                  /*locks_held=*/false, outer_epochs, route.db);
  const uint64_t wall_ns = NowNs() - start;
  if (exec_span != 0) tctx.trace->CloseSpan(exec_span);

  if (!result.ok()) {
    registry.GetCounter("nepal.query_errors." + backend_name)->Add(1);
    return result;
  }
  registry.GetCounter("nepal.queries." + backend_name)->Add(1);
  registry.GetHistogram("nepal.query_wall_ns." + backend_name)
      ->Observe(wall_ns);

  obs::QueryStats stats = builder.Snapshot();
  stats.backend = backend_name;
  stats.query = text;
  stats.wall_ns = wall_ns;
  stats.result_rows = result->rows.size();
  stats.parallelism =
      static_cast<int>(EffectiveParallelism(options_.plan));
  if (exec_span != 0) {
    for (const obs::OperatorStats& op : stats.operators) {
      tctx.trace->AddSpan(exec_span, op.group + "/" + op.op, op.wall_ns,
                          op.invocations);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    last_stats_ = stats;
    if (options_.slow_query_ms > 0 &&
        static_cast<double>(wall_ns) / 1e6 >= options_.slow_query_ms) {
      slow_log_.push_back(SlowQuery{text, wall_ns, result->rows.size()});
      if (slow_log_.size() > kSlowLogCapacity) slow_log_.pop_front();
    }
  }
  if (options_.slow_query_ms > 0 &&
      static_cast<double>(wall_ns) / 1e6 >= options_.slow_query_ms) {
    registry.GetCounter("nepal.slow_queries." + backend_name)->Add(1);
    // A query slow by the engine's own threshold is always worth a
    // captured trace, even when the sampling coin said no.
    if (tctx) tctx.trace->ForceKeep();
  }

  switch (query.explain) {
    case ExplainMode::kNone:
      return result;
    case ExplainMode::kAnalyze: {
      QueryResult out;
      out.explain_text = stats.ToString();
      return out;
    }
    case ExplainMode::kPlan:
    case ExplainMode::kVerbose: {
      QueryResult out;
      for (const std::string& line : lines) {
        out.explain_text += line;
        out.explain_text += "\n";
      }
      return out;
    }
  }
  return result;
}

namespace {

struct VarState {
  const RangeVarDecl* decl = nullptr;
  storage::GraphDb* db = nullptr;
  /// The backend plan/evaluation runs against: the source's own backend in
  /// locked mode, its LockedBackend decorator in snapshot mode.
  const storage::StorageBackend* backend = nullptr;
  std::unique_ptr<storage::PathOperatorExecutor> exec;
  TimeView view = TimeView::Current();
  RpeNode rpe;
  bool has_rpe = false;
  /// Extra constraint from a named pathway view (resolved), if any.
  std::optional<RpeNode> view_rpe;
  double structural_cost = -1;  // < 0: no structural anchor
  bool evaluated = false;
  PathSet paths;
  /// Operator-stats group for this variable (null when not collected).
  /// Pre-created in declaration order so snapshots are deterministic even
  /// when variables evaluate as a parallel batch.
  obs::QueryStatsGroup* stats = nullptr;
};

/// True when the expression is a bare source()/target() endpoint reference
/// (no field access) of `var`.
bool IsEndpointRef(const PathExpr& e, const std::string& var) {
  return (e.kind == PathExpr::Kind::kSource ||
          e.kind == PathExpr::Kind::kTarget) &&
         !e.field.has_value() && e.var == var;
}

Uid EndpointOf(const Pathway& path, PathExpr::Kind kind) {
  return kind == PathExpr::Kind::kSource ? path.source_uid()
                                         : path.target_uid();
}

Uid EndpointOf(const PathState& state, PathExpr::Kind kind) {
  return kind == PathExpr::Kind::kSource ? state.uids.front()
                                         : state.uids.back();
}

/// Pinned epoch for `db`, falling back to its live commit epoch when the
/// map predates the source (a replica re-bootstrapped mid-query, or a
/// source registered between capture and use). The fallback is still a
/// consistent read — it just isn't pinned to the query's snapshot.
uint64_t EpochFor(const std::map<storage::GraphDb*, uint64_t>* epochs,
                  storage::GraphDb* db) {
  auto it = epochs->find(db);
  return it != epochs->end() ? it->second : db->commit_epoch();
}

}  // namespace

Result<QueryResult> QueryEngine::RunInternal(
    const Query& query, const OuterEnv& outer, const ExplainCapture& capture,
    obs::QueryStatsBuilder* stats, bool locks_held,
    const std::map<storage::GraphDb*, uint64_t>* outer_epochs,
    storage::GraphDb* run_db) const {
  if (run_db == nullptr) run_db = default_db_;
  std::vector<std::string>* explain = capture.lines;
  // ---- Validate structure and set up variable states ----
  if (query.range_vars.empty()) {
    return Status::InvalidArgument("a query needs at least one range variable");
  }

  // ---- Materialized-view routing ----
  // A single-variable top-level query is offered to the attached view
  // provider before anything is planned: `From <name> P` over a name the
  // engine's own (unmaterialized) views don't define is served by name,
  // and a plain MATCHES query whose canonical RPE and temporal mode equal
  // a registered view's definition is served by definition. Serving forces
  // snapshot mode with the variable's source pinned to the cache's
  // freshness epoch, so every other clause (compare predicates, EXISTS
  // subqueries, Select expressions) evaluates at exactly the epoch the
  // cached rows are exact at — the result is byte-identical to cold
  // evaluation there. EXPLAIN VERBOSE always runs cold (its serial
  // executor trace is the point); EXPLAIN / EXPLAIN ANALYZE may serve and
  // report a one-line ServeView plan.
  std::optional<ServedView> served;
  if (view_provider_ != nullptr && !locks_held && outer_epochs == nullptr &&
      !capture.trace && query.range_vars.size() == 1) {
    const RangeVarDecl& decl = query.range_vars[0];
    Result<storage::GraphDb*> src = SourceFor(decl, run_db);
    const std::optional<TimeSpec>& spec =
        decl.at.has_value() ? decl.at : query.at;
    const Predicate* matches = nullptr;
    bool single_matches = true;
    for (const Predicate& pred : query.where) {
      if (pred.kind != Predicate::Kind::kMatches) continue;
      if (pred.var != decl.name || matches != nullptr) {
        single_matches = false;
        break;
      }
      matches = &pred;
    }
    if (src.ok() && (!spec.has_value() || !spec->is_range())) {
      std::optional<Timestamp> as_of;
      if (spec.has_value()) as_of = spec->start;
      std::string view_name = decl.view;
      for (char& c : view_name) c = static_cast<char>(std::toupper(c));
      if (view_name != "PATHS") {
        // A MATCHES predicate on top of a named view means intersection —
        // the cache alone cannot answer that. The engine's own view names
        // shadow the provider's.
        if (matches == nullptr && single_matches &&
            views_.find(decl.view) == views_.end()) {
          served = view_provider_->Serve(decl.view);
        }
      } else if (single_matches && matches != nullptr) {
        const std::string canonical = Normalize(matches->rpe).ToString();
        served = view_provider_->Match(*src, canonical, as_of);
      }
      if (served.has_value() &&
          (served->db != *src || served->as_of != as_of ||
           served->paths == nullptr || served->epoch == 0)) {
        served.reset();  // different source or temporal mode: run cold
      }
    }
  }

  // ---- Snapshot mode ----
  // A subquery whose parent evaluated in snapshot mode inherits the
  // parent's pinned epochs (it holds no locks to fall back on). A
  // top-level call enters snapshot mode when enabled, except under
  // EXPLAIN / EXPLAIN VERBOSE whose serial plan/trace capture goes through
  // the raw backend.
  const bool snapshot_mode =
      served.has_value() || outer_epochs != nullptr ||
      (!locks_held && options_.snapshot_reads && capture.lines == nullptr);
  std::map<storage::GraphDb*, uint64_t> epoch_map;
  const std::map<storage::GraphDb*, uint64_t>* epochs = outer_epochs;
  if (snapshot_mode && epochs == nullptr) {
    // Capture every reachable source's commit epoch up front — lock-free
    // (commit_epoch() is an atomic published after the in-memory apply) —
    // so subqueries over any catalog source read the same snapshot.
    epoch_map.emplace(run_db, run_db->commit_epoch());
    catalog_.ForEach(
        [&epoch_map](const std::string&, const SourceDescriptor& desc) {
          storage::GraphDb* db = desc.database();
          epoch_map.emplace(db, db->commit_epoch());
        });
    // A served variable pins its source to the cache's freshness epoch
    // (never ahead of the commit epoch), keeping the whole query
    // consistent with the cached rows.
    if (served.has_value()) epoch_map[served->db] = served->epoch;
    epochs = &epoch_map;
  }
  // One read-only decorator per distinct source; VarStates point at these
  // instead of the raw backends.
  std::map<storage::GraphDb*, std::unique_ptr<LockedBackend>> snap_backends;

  // ---- Read locks ----
  // Query evaluation only reads the stores, but writers may run
  // concurrently: hold every involved data source's mutex shared for the
  // whole evaluation (all operator calls plus result post-processing see
  // one consistent store state). Acquisition is in ascending address order
  // — writers only ever hold a single lock, so readers locking a sorted
  // set cannot form a cycle. Subquery recursion runs on the same thread
  // over the same source set and must not re-lock. Snapshot mode replaces
  // the whole-evaluation hold with epoch pinning + per-call locks.
  std::vector<std::shared_lock<std::shared_mutex>> read_locks;
  if (!locks_held && !snapshot_mode) {
    std::vector<storage::GraphDb*> dbs{run_db};
    catalog_.ForEach([&dbs](const std::string&, const SourceDescriptor& desc) {
      dbs.push_back(desc.database());
    });
    std::sort(dbs.begin(), dbs.end());
    dbs.erase(std::unique(dbs.begin(), dbs.end()), dbs.end());
    read_locks.reserve(dbs.size());
    for (storage::GraphDb* db : dbs) read_locks.emplace_back(db->mutex());
  }
  std::map<std::string, size_t> var_index;
  std::vector<VarState> vars(query.range_vars.size());
  for (size_t i = 0; i < query.range_vars.size(); ++i) {
    const RangeVarDecl& decl = query.range_vars[i];
    if (!var_index.emplace(decl.name, i).second) {
      return Status::InvalidArgument("duplicate range variable '" + decl.name +
                                     "'");
    }
    vars[i].decl = &decl;
    NEPAL_ASSIGN_OR_RETURN(vars[i].db, SourceFor(decl, run_db));
    if (snapshot_mode) {
      std::unique_ptr<LockedBackend>& snap = snap_backends[vars[i].db];
      if (snap == nullptr) {
        snap = std::make_unique<LockedBackend>(vars[i].db);
      }
      vars[i].backend = snap.get();
    } else {
      vars[i].backend = &vars[i].db->backend();
    }
    vars[i].exec = vars[i].backend->CreateExecutor();
    // Only EXPLAIN VERBOSE turns the legacy string trace on (and thereby
    // forces serial evaluation); EXPLAIN and EXPLAIN ANALYZE rely on the
    // structured stats and keep full parallelism.
    if (explain != nullptr && capture.trace) vars[i].exec->EnableTrace(true);
    if (stats != nullptr) {
      vars[i].stats = stats->AddGroup("var " + decl.name);
    }
    vars[i].view = ViewFor(decl.at, query.at);
    if (snapshot_mode) {
      vars[i].view = vars[i].view.WithEpoch(EpochFor(epochs, vars[i].db));
    }
    std::string view_name = decl.view;
    for (char& c : view_name) c = static_cast<char>(std::toupper(c));
    if (view_name != "PATHS" && !served.has_value()) {
      auto view_it = views_.find(decl.view);
      if (view_it == views_.end()) {
        return Status::NotFound("no pathway view named '" + decl.view +
                                "' is defined on this engine");
      }
      RpeNode resolved = view_it->second;
      NEPAL_RETURN_NOT_OK(ResolveRpe(vars[i].db->schema(),
                                     options_.plan.max_repetition,
                                     &resolved));
      vars[i].view_rpe = std::move(resolved);
    }
  }

  // Each range variable needs exactly one MATCHES predicate.
  std::vector<const Predicate*> compare_preds;
  std::vector<const Predicate*> exists_preds;
  std::vector<bool> has_matches(vars.size(), false);
  for (const Predicate& pred : query.where) {
    switch (pred.kind) {
      case Predicate::Kind::kMatches: {
        auto it = var_index.find(pred.var);
        if (it == var_index.end()) {
          return Status::InvalidArgument("MATCHES references unknown range "
                                         "variable '" + pred.var + "'");
        }
        VarState& vs = vars[it->second];
        if (has_matches[it->second]) {
          return Status::InvalidArgument("range variable '" + pred.var +
                                         "' has multiple MATCHES predicates");
        }
        has_matches[it->second] = true;
        vs.has_rpe = true;
        vs.rpe = pred.rpe;
        NEPAL_RETURN_NOT_OK(ResolveRpe(vs.db->schema(),
                                       options_.plan.max_repetition, &vs.rpe));
        break;
      }
      case Predicate::Kind::kCompare:
        compare_preds.push_back(&pred);
        break;
      case Predicate::Kind::kExists:
        exists_preds.push_back(&pred);
        break;
    }
  }
  for (size_t i = 0; i < vars.size(); ++i) {
    if (has_matches[i]) continue;
    // A served variable's rows come from the provider, not an RPE.
    if (served.has_value()) continue;
    // A named view can stand in for the MATCHES predicate.
    if (vars[i].view_rpe.has_value()) {
      vars[i].rpe = *vars[i].view_rpe;
      vars[i].has_rpe = true;
      vars[i].view_rpe.reset();
      continue;
    }
    return Status::InvalidArgument("range variable '" + vars[i].decl->name +
                                   "' has no MATCHES predicate (and ranges "
                                   "over PATHS, not a view)");
  }

  // ---- Install served rows ----
  // The cached snapshot is already deduplicated and in canonical order;
  // the variable is pre-evaluated and skips planning entirely.
  if (served.has_value()) {
    VarState& vs = vars[0];
    vs.paths = *served->paths;  // copy: downstream phases mutate in place
    vs.evaluated = true;
    vs.view_rpe.reset();
    if (explain != nullptr) {
      explain->push_back("var " + vs.decl->name + ": ServeView(" +
                         served->name + ", epoch=" +
                         std::to_string(served->epoch) + ")");
    }
    if (vs.stats != nullptr) {
      obs::OpSample sample;
      sample.rows_out = vs.paths.size();
      sample.shards = 1;
      sample.invocations = 1;
      vs.stats->Record(
          vs.stats->AddOp("ServeView(" + served->name + ")",
                          static_cast<double>(vs.paths.size())),
          sample);
    }
    obs::MetricsRegistry::Global().GetCounter("nepal.views.served")->Add(1);
  }

  // ---- Structural anchor costs ----
  for (VarState& vs : vars) {
    if (vs.evaluated) continue;
    Result<MatchPlan> plan = PlanMatch(vs.rpe, *vs.backend,
                                       options_.plan, vs.view);
    vs.structural_cost = plan.ok() ? plan->total_cost : -1;
  }

  // Looks for an equality predicate that can seed `vi`'s anchor from an
  // already-evaluated variable (or an outer binding) in the same database.
  // Returns the seed uids and which endpoint of vi they pin.
  auto find_seed = [&](size_t vi, std::vector<Uid>* seeds,
                       SeedSide* side) -> bool {
    const std::string& name = vars[vi].decl->name;
    for (const Predicate* pred : compare_preds) {
      if (pred->negate_compare) continue;
      for (int flip = 0; flip < 2; ++flip) {
        const PathExpr& mine = flip == 0 ? pred->lhs : pred->rhs;
        const PathExpr& other = flip == 0 ? pred->rhs : pred->lhs;
        if (!IsEndpointRef(mine, name)) continue;
        std::unordered_set<Uid> uids;
        if (other.kind == PathExpr::Kind::kSource ||
            other.kind == PathExpr::Kind::kTarget) {
          if (other.field.has_value()) continue;
          auto it = var_index.find(other.var);
          if (it != var_index.end()) {
            const VarState& ovs = vars[it->second];
            if (!ovs.evaluated || ovs.db != vars[vi].db) continue;
            for (const PathState& s : ovs.paths) {
              uids.insert(EndpointOf(s, other.kind));
            }
          } else {
            auto oit = outer.find(other.var);
            if (oit == outer.end() || oit->second.db != vars[vi].db) continue;
            uids.insert(EndpointOf(*oit->second.path, other.kind));
          }
        } else {
          continue;
        }
        seeds->assign(uids.begin(), uids.end());
        std::sort(seeds->begin(), seeds->end());
        *side = mine.kind == PathExpr::Kind::kSource ? SeedSide::kSource
                                                     : SeedSide::kTarget;
        return true;
      }
    }
    return false;
  };

  // Post-evaluation per-variable steps shared by the serial and parallel
  // paths: named-view intersection and Range-view coalescing.
  auto finish_var = [&](VarState& vs) -> Status {
    if (vs.view_rpe.has_value()) {
      // Intersect with the named view: a pathway qualifies when the view
      // RPE also matches it, over the overlap of their validity.
      NEPAL_ASSIGN_OR_RETURN(PathSet view_paths,
                             EvaluateMatch(*vs.exec, *vs.backend,
                                           *vs.view_rpe, vs.view,
                                           options_.plan, vs.stats));
      std::unordered_map<std::string, std::vector<const PathState*>> by_uids;
      for (const PathState& state : view_paths) {
        std::string key;
        for (Uid u : state.uids) {
          key.append(reinterpret_cast<const char*>(&u), sizeof(u));
        }
        by_uids[key].push_back(&state);
      }
      PathSet intersected;
      for (PathState& state : vs.paths) {
        std::string key;
        for (Uid u : state.uids) {
          key.append(reinterpret_cast<const char*>(&u), sizeof(u));
        }
        auto it = by_uids.find(key);
        if (it == by_uids.end()) continue;
        for (const PathState* other : it->second) {
          Interval overlap = state.valid.Intersect(other->valid);
          if (overlap.empty()) continue;
          PathState keep = state;
          keep.valid = overlap;
          intersected.push_back(std::move(keep));
        }
      }
      storage::DedupPaths(&intersected);
      vs.paths = std::move(intersected);
    }
    if (vs.view.kind() == TimeView::Kind::kRange) {
      CoalescePathSet(&vs.paths);
    }
    return Status::OK();
  };

  const size_t effective_parallelism = EffectiveParallelism(options_.plan);

  // ---- Evaluate range variables, cheapest anchor first ----
  std::vector<size_t> eval_order;
  size_t remaining = 0;
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i].evaluated) {
      eval_order.push_back(i);  // pre-evaluated (served from a view cache)
    } else {
      ++remaining;
    }
  }
  while (remaining > 0) {
    // Independent structurally-anchored variables (typically federated
    // sub-matches over different sources) have no evaluation-order
    // dependency: run them as one concurrent batch. Variables that a join
    // could seed stay serial so the cheapest-first seeding still applies.
    if (effective_parallelism > 1 && explain == nullptr) {
      std::vector<size_t> batch;
      for (size_t i = 0; i < vars.size(); ++i) {
        if (vars[i].evaluated || vars[i].structural_cost < 0) continue;
        std::vector<Uid> seeds;
        SeedSide side;
        if (find_seed(i, &seeds, &side)) continue;
        batch.push_back(i);
      }
      if (batch.size() >= 2) {
        // Deterministic evaluation order: cheapest first, index breaking
        // ties — the same order the serial loop would have produced.
        std::sort(batch.begin(), batch.end(), [&](size_t a, size_t b) {
          if (vars[a].structural_cost != vars[b].structural_cost) {
            return vars[a].structural_cost < vars[b].structural_cost;
          }
          return a < b;
        });
        std::vector<Status> statuses(batch.size(), Status::OK());
        std::vector<std::function<void()>> tasks;
        tasks.reserve(batch.size());
        for (size_t k = 0; k < batch.size(); ++k) {
          VarState& vs = vars[batch[k]];
          Status& status = statuses[k];
          tasks.push_back([this, &vs, &status, &finish_var] {
            auto paths = EvaluateMatch(*vs.exec, *vs.backend, vs.rpe,
                                       vs.view, options_.plan, vs.stats);
            if (!paths.ok()) {
              status = paths.status();
              return;
            }
            vs.paths = *std::move(paths);
            status = finish_var(vs);
          });
        }
        common::ThreadPool::Shared().RunBatch(std::move(tasks));
        for (const Status& status : statuses) NEPAL_RETURN_NOT_OK(status);
        for (size_t vi : batch) {
          vars[vi].evaluated = true;
          eval_order.push_back(vi);
          if (stats != nullptr) stats->AddPlanCost(vars[vi].structural_cost);
        }
        remaining -= batch.size();
        continue;
      }
    }
    double best_cost = -1;
    size_t best_var = vars.size();
    bool best_seeded = false;
    std::vector<Uid> best_seeds;
    SeedSide best_side = SeedSide::kSource;
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i].evaluated) continue;
      std::vector<Uid> seeds;
      SeedSide side;
      bool seedable = find_seed(i, &seeds, &side);
      double cost = -1;
      bool seeded = false;
      if (vars[i].structural_cost >= 0) cost = vars[i].structural_cost;
      if (seedable &&
          (cost < 0 || static_cast<double>(seeds.size()) < cost)) {
        cost = static_cast<double>(seeds.size());
        seeded = true;
      }
      if (cost < 0) continue;
      if (best_var == vars.size() || cost < best_cost) {
        best_cost = cost;
        best_var = i;
        best_seeded = seeded;
        best_seeds = std::move(seeds);
        best_side = side;
      }
    }
    if (best_var == vars.size()) {
      std::string pending;
      for (const VarState& vs : vars) {
        if (!vs.evaluated) pending += " " + vs.decl->name;
      }
      return Status::PlanError(
          "no anchor for range variable(s):" + pending +
          " — every atom is unselective/optional and no join provides one");
    }
    VarState& vs = vars[best_var];
    if (best_seeded) {
      if (explain != nullptr) {
        explain->push_back("var " + vs.decl->name + ": anchor imported via "
                           "join (" + std::to_string(best_seeds.size()) +
                           " seed nodes)");
      }
      vs.paths = EvaluateMatchSeeded(*vs.exec, *vs.backend, vs.rpe,
                                     best_seeds, best_side, vs.view,
                                     options_.plan, vs.stats);
    } else {
      if (explain != nullptr) {
        NEPAL_ASSIGN_OR_RETURN(MatchPlan plan,
                               PlanMatch(vs.rpe, *vs.backend,
                                         options_.plan, vs.view));
        explain->push_back("var " + vs.decl->name + ":\n" + plan.ToString());
      }
      NEPAL_ASSIGN_OR_RETURN(vs.paths,
                             EvaluateMatch(*vs.exec, *vs.backend, vs.rpe,
                                           vs.view, options_.plan, vs.stats));
      if (stats != nullptr) stats->AddPlanCost(vs.structural_cost);
    }
    NEPAL_RETURN_NOT_OK(finish_var(vs));
    vs.evaluated = true;
    eval_order.push_back(best_var);
    --remaining;
    if (explain != nullptr) {
      explain->push_back("var " + vs.decl->name + ": " +
                         std::to_string(vs.paths.size()) + " pathway(s)");
      for (const std::string& line : vs.exec->trace()) {
        explain->push_back("  " + line);
      }
      vs.exec->ClearTrace();
    }
  }

  // ---- Expression evaluation over a joined row ----
  // `row` maps var index -> path index. Outer bindings resolve by name.
  using JoinedRow = std::vector<size_t>;  // parallel to eval_order
  auto pathway_for = [&](const JoinedRow& row, const std::string& name,
                         storage::GraphDb** db_out) -> const PathState* {
    auto it = var_index.find(name);
    if (it == var_index.end()) return nullptr;
    for (size_t k = 0; k < eval_order.size() && k < row.size(); ++k) {
      if (eval_order[k] == it->second) {
        *db_out = vars[it->second].db;
        return &vars[it->second].paths[row[k]];
      }
    }
    return nullptr;
  };

  std::function<Result<Value>(const PathExpr&, const JoinedRow&)> eval_expr =
      [&](const PathExpr& e, const JoinedRow& row) -> Result<Value> {
    switch (e.kind) {
      case PathExpr::Kind::kLiteral:
        return e.literal;
      case PathExpr::Kind::kVar: {
        storage::GraphDb* db = nullptr;
        const PathState* state = pathway_for(row, e.var, &db);
        if (state == nullptr) {
          return Status::InvalidArgument("unknown variable '" + e.var +
                                         "' in expression");
        }
        return Value(ToPathway(*state).ToString());
      }
      case PathExpr::Kind::kLength: {
        storage::GraphDb* db = nullptr;
        const PathState* state = pathway_for(row, e.var, &db);
        if (state == nullptr) {
          return Status::InvalidArgument("unknown variable '" + e.var +
                                         "' in length()");
        }
        return Value(static_cast<int64_t>(state->uids.size()));
      }
      case PathExpr::Kind::kSource:
      case PathExpr::Kind::kTarget: {
        storage::GraphDb* db = nullptr;
        Uid uid = kInvalidUid;
        Interval valid = Interval::All();
        if (const PathState* state = pathway_for(row, e.var, &db)) {
          uid = EndpointOf(*state, e.kind);
          valid = state->valid;
        } else {
          auto oit = outer.find(e.var);
          if (oit == outer.end()) {
            return Status::InvalidArgument("unknown variable '" + e.var +
                                           "' in expression");
          }
          db = oit->second.db;
          uid = EndpointOf(*oit->second.path, e.kind);
          valid = oit->second.path->valid;
        }
        if (!e.field.has_value()) {
          return Value(static_cast<int64_t>(uid));
        }
        if (*e.field == "id") return Value(static_cast<int64_t>(uid));
        NEPAL_ASSIGN_OR_RETURN(
            storage::ElementVersion v,
            FetchVersion(db, uid, valid,
                         snapshot_mode ? EpochFor(epochs, db) : 0));
        int idx = v.cls->FieldIndex(*e.field);
        if (idx < 0) {
          return Status::InvalidArgument("class " + v.cls->name() +
                                         " has no field '" + *e.field + "'");
        }
        return v.fields[static_cast<size_t>(idx)];
      }
    }
    return Status::Internal("unhandled expression kind");
  };

  // A compare predicate is evaluable once all its variables are bound.
  auto pred_vars_bound = [&](const Predicate& pred,
                             const std::unordered_set<size_t>& bound) -> bool {
    for (const PathExpr* e : {&pred.lhs, &pred.rhs}) {
      if (e->kind == PathExpr::Kind::kLiteral) continue;
      auto it = var_index.find(e->var);
      if (it != var_index.end()) {
        if (!bound.count(it->second)) return false;
      } else if (!outer.count(e->var)) {
        return false;  // resolves nowhere; reported at evaluation
      }
    }
    return true;
  };

  auto eval_compare = [&](const Predicate& pred,
                          const JoinedRow& row) -> Result<bool> {
    NEPAL_ASSIGN_OR_RETURN(Value lhs, eval_expr(pred.lhs, row));
    NEPAL_ASSIGN_OR_RETURN(Value rhs, eval_expr(pred.rhs, row));
    bool eq = lhs == rhs;
    return pred.negate_compare ? !eq : eq;
  };

  // ---- Join phase ----
  // The join runs after every variable has finished evaluating, so op
  // registration and recording are strictly sequential here.
  obs::QueryStatsGroup* join_stats =
      stats != nullptr ? stats->AddGroup("join") : nullptr;
  std::vector<JoinedRow> rows;
  {
    std::unordered_set<size_t> bound;
    std::unordered_set<const Predicate*> applied;
    for (size_t k = 0; k < eval_order.size(); ++k) {
      size_t vi = eval_order[k];
      bound.insert(vi);
      const uint64_t join_start = join_stats != nullptr ? NowNs() : 0;
      const size_t join_rows_in = k == 0 ? vars[vi].paths.size()
                                         : rows.size();
      std::vector<const Predicate*> now_evaluable;
      for (const Predicate* pred : compare_preds) {
        if (applied.count(pred)) continue;
        if (pred_vars_bound(*pred, bound)) {
          now_evaluable.push_back(pred);
          applied.insert(pred);
        }
      }
      // Prefer a hash join: an equality between a bare endpoint of the new
      // variable and a bare endpoint of an already-bound variable lets us
      // bucket the new variable's pathways instead of forming the product.
      const Predicate* hash_pred = nullptr;
      PathExpr::Kind vi_side = PathExpr::Kind::kSource;
      const PathExpr* other_side = nullptr;
      const std::string& vi_name = vars[vi].decl->name;
      for (const Predicate* pred : now_evaluable) {
        if (pred->negate_compare) continue;
        for (int flip = 0; flip < 2 && hash_pred == nullptr; ++flip) {
          const PathExpr& mine = flip == 0 ? pred->lhs : pred->rhs;
          const PathExpr& other = flip == 0 ? pred->rhs : pred->lhs;
          if (!IsEndpointRef(mine, vi_name)) continue;
          if (other.kind != PathExpr::Kind::kSource &&
              other.kind != PathExpr::Kind::kTarget) {
            continue;
          }
          if (other.field.has_value() || other.var == vi_name) continue;
          hash_pred = pred;
          vi_side = mine.kind;
          other_side = &other;
        }
        if (hash_pred != nullptr) break;
      }

      std::vector<JoinedRow> next;
      const PathSet& paths = vars[vi].paths;
      if (k == 0) {
        next.reserve(paths.size());
        for (size_t p = 0; p < paths.size(); ++p) next.push_back({p});
      } else if (hash_pred != nullptr) {
        std::unordered_map<Uid, std::vector<size_t>> buckets;
        buckets.reserve(paths.size());
        for (size_t p = 0; p < paths.size(); ++p) {
          buckets[EndpointOf(paths[p], vi_side)].push_back(p);
        }
        for (const JoinedRow& row : rows) {
          Uid key = kInvalidUid;
          storage::GraphDb* other_db = nullptr;
          if (const PathState* state =
                  pathway_for(row, other_side->var, &other_db)) {
            key = EndpointOf(*state, other_side->kind);
          } else {
            auto oit = outer.find(other_side->var);
            if (oit == outer.end()) continue;
            key = EndpointOf(*oit->second.path, other_side->kind);
          }
          auto bucket = buckets.find(key);
          if (bucket == buckets.end()) continue;
          for (size_t p : bucket->second) {
            JoinedRow candidate = row;
            candidate.push_back(p);
            next.push_back(std::move(candidate));
          }
        }
      } else {
        for (const JoinedRow& row : rows) {
          for (size_t p = 0; p < paths.size(); ++p) {
            JoinedRow candidate = row;
            candidate.push_back(p);
            next.push_back(std::move(candidate));
          }
        }
      }
      if (!now_evaluable.empty()) {
        std::vector<JoinedRow> filtered;
        filtered.reserve(next.size());
        for (JoinedRow& row : next) {
          bool keep = true;
          for (const Predicate* pred : now_evaluable) {
            NEPAL_ASSIGN_OR_RETURN(bool pass, eval_compare(*pred, row));
            if (!pass) {
              keep = false;
              break;
            }
          }
          if (keep) filtered.push_back(std::move(row));
        }
        next = std::move(filtered);
      }
      rows = std::move(next);
      if (join_stats != nullptr) {
        std::string label =
            k == 0 ? "Init " + vars[vi].decl->name
                   : "Join " + vars[vi].decl->name +
                         (hash_pred != nullptr ? " (hash)" : " (product)");
        if (!now_evaluable.empty()) {
          label += " +" + std::to_string(now_evaluable.size()) + " filter(s)";
        }
        obs::OpSample sample;
        sample.rows_in = join_rows_in;
        sample.rows_out = rows.size();
        sample.shards = 1;
        sample.wall_ns = NowNs() - join_start;
        sample.invocations = 1;
        join_stats->Record(join_stats->AddOp(std::move(label)), sample);
      }
      if (rows.empty()) break;
    }
    // Any compare predicate never applied references unknown variables.
    for (const Predicate* pred : compare_preds) {
      if (!applied.count(pred)) {
        return Status::InvalidArgument(
            "comparison '" + pred->lhs.ToString() +
            (pred->negate_compare ? " <> " : " = ") + pred->rhs.ToString() +
            "' references an unknown range variable");
      }
    }
  }

  // ---- Subqueries ----
  for (const Predicate* pred : exists_preds) {
    const uint64_t exists_start = join_stats != nullptr ? NowNs() : 0;
    const size_t exists_rows_in = rows.size();
    std::vector<JoinedRow> kept;
    for (const JoinedRow& row : rows) {
      OuterEnv env = outer;
      // Bind the row's pathways for correlation. Pathways must outlive the
      // recursive call; materialize them.
      std::vector<std::unique_ptr<Pathway>> owned;
      for (size_t k = 0; k < eval_order.size(); ++k) {
        size_t vi = eval_order[k];
        owned.push_back(std::make_unique<Pathway>(
            ToPathway(vars[vi].paths[row[k]])));
        env[vars[vi].decl->name] = OuterBinding{owned.back().get(),
                                                vars[vi].db};
      }
      // Subqueries are not instrumented: their per-row operator stats
      // would swamp the outer query's table.
      NEPAL_ASSIGN_OR_RETURN(
          QueryResult sub,
          RunInternal(*pred->subquery, env, ExplainCapture{}, nullptr,
                      /*locks_held=*/true,
                      snapshot_mode ? epochs : nullptr, run_db));
      bool exists = !sub.rows.empty();
      if (exists != pred->negate_exists) kept.push_back(row);
    }
    rows = std::move(kept);
    if (join_stats != nullptr) {
      obs::OpSample sample;
      sample.rows_in = exists_rows_in;
      sample.rows_out = rows.size();
      sample.shards = 1;
      sample.wall_ns = NowNs() - exists_start;
      sample.invocations = 1;
      join_stats->Record(
          join_stats->AddOp(std::string(pred->negate_exists ? "Not " : "") +
                            "Exists subquery"),
          sample);
    }
  }

  // ---- Joint temporal semantics ----
  // Under a query-level AT, all pathways of a row must coexist; the row's
  // validity is the maximal interval where they do. Per-variable @ bindings
  // leave the variables temporally unrelated.
  bool shared_view = true;
  for (const VarState& vs : vars) {
    if (vs.decl->at.has_value()) shared_view = false;
  }

  // ---- Materialize result rows ----
  QueryResult result;
  result.agg = query.agg;
  if (!query.is_select) {
    for (const std::string& name : query.retrieve_vars) {
      if (!var_index.count(name)) {
        return Status::InvalidArgument("Retrieve references unknown range "
                                       "variable '" + name + "'");
      }
      result.path_columns.push_back(name);
    }
  } else {
    for (const SelectItem& item : query.select_items) {
      result.value_columns.push_back(item.ToString());
    }
  }

  // ---- Aggregation (the result-processing layer) ----
  bool aggregated = !query.group_by.empty();
  for (const SelectItem& item : query.select_items) {
    if (item.agg != SelectItem::Agg::kNone) aggregated = true;
  }
  if (aggregated) {
    if (!query.is_select) {
      return Status::InvalidArgument(
          "aggregates and Group By require a Select clause");
    }
    if (query.agg != TemporalAgg::kNone) {
      return Status::Unsupported(
          "temporal aggregation cannot be combined with Group By "
          "aggregates");
    }
    // Every non-aggregated output must be a grouping expression.
    for (const SelectItem& item : query.select_items) {
      if (item.agg != SelectItem::Agg::kNone) continue;
      bool grouped = false;
      for (const PathExpr& g : query.group_by) {
        if (g.ToString() == item.expr.ToString()) grouped = true;
      }
      if (!grouped) {
        return Status::InvalidArgument(
            "Select item '" + item.expr.ToString() +
            "' must appear in Group By when aggregates are used");
      }
    }
    struct Group {
      std::vector<Value> keys;
      std::vector<JoinedRow> members;
    };
    std::map<std::string, Group> groups;
    std::vector<std::string> group_order;
    for (const JoinedRow& row : rows) {
      std::vector<Value> keys;
      std::string key_str;
      for (const PathExpr& g : query.group_by) {
        NEPAL_ASSIGN_OR_RETURN(Value v, eval_expr(g, row));
        key_str += v.ToString();
        key_str.push_back('|');
        keys.push_back(std::move(v));
      }
      auto [it, inserted] = groups.emplace(key_str, Group{});
      if (inserted) {
        it->second.keys = std::move(keys);
        group_order.push_back(key_str);
      }
      it->second.members.push_back(row);
    }
    for (const std::string& key : group_order) {
      const Group& group = groups[key];
      ResultRow out_row;
      for (const SelectItem& item : query.select_items) {
        switch (item.agg) {
          case SelectItem::Agg::kNone: {
            NEPAL_ASSIGN_OR_RETURN(
                Value v, eval_expr(item.expr, group.members.front()));
            out_row.values.push_back(std::move(v));
            break;
          }
          case SelectItem::Agg::kCount:
            out_row.values.push_back(
                Value(static_cast<int64_t>(group.members.size())));
            break;
          case SelectItem::Agg::kCountDistinct: {
            std::set<std::string> distinct;
            for (const JoinedRow& row : group.members) {
              NEPAL_ASSIGN_OR_RETURN(Value v, eval_expr(item.expr, row));
              distinct.insert(v.ToString());
            }
            out_row.values.push_back(
                Value(static_cast<int64_t>(distinct.size())));
            break;
          }
          case SelectItem::Agg::kMin:
          case SelectItem::Agg::kMax: {
            std::optional<Value> best;
            for (const JoinedRow& row : group.members) {
              NEPAL_ASSIGN_OR_RETURN(Value v, eval_expr(item.expr, row));
              if (v.is_null()) continue;
              if (!best ||
                  (item.agg == SelectItem::Agg::kMin ? v < *best
                                                     : *best < v)) {
                best = std::move(v);
              }
            }
            out_row.values.push_back(best.value_or(Value::Null()));
            break;
          }
          case SelectItem::Agg::kSum: {
            int64_t int_sum = 0;
            double dbl_sum = 0;
            bool any_double = false, any = false;
            for (const JoinedRow& row : group.members) {
              NEPAL_ASSIGN_OR_RETURN(Value v, eval_expr(item.expr, row));
              if (v.kind() == ValueKind::kInt) {
                int_sum += v.AsInt();
                any = true;
              } else if (v.kind() == ValueKind::kDouble) {
                dbl_sum += v.AsDouble();
                any_double = true;
                any = true;
              } else if (!v.is_null()) {
                return Status::InvalidArgument(
                    "sum() needs numeric values, got " +
                    std::string(ValueKindToString(v.kind())));
              }
            }
            if (!any) {
              out_row.values.push_back(Value::Null());
            } else if (any_double) {
              out_row.values.push_back(
                  Value(dbl_sum + static_cast<double>(int_sum)));
            } else {
              out_row.values.push_back(Value(int_sum));
            }
            break;
          }
        }
      }
      result.rows.push_back(std::move(out_row));
      if (options_.max_rows != 0 && result.rows.size() >= options_.max_rows) {
        break;
      }
    }
    if (stats != nullptr) {
      obs::QueryStatsGroup* result_stats = stats->AddGroup("result");
      obs::OpSample sample;
      sample.rows_in = rows.size();
      sample.rows_out = result.rows.size();
      sample.shards = 1;
      sample.invocations = 1;
      result_stats->Record(result_stats->AddOp("Aggregate"), sample);
    }
    return result;
  }

  obs::QueryStatsGroup* result_stats =
      stats != nullptr ? stats->AddGroup("result") : nullptr;
  const uint64_t materialize_start = result_stats != nullptr ? NowNs() : 0;
  const size_t materialize_rows_in = rows.size();
  for (const JoinedRow& row : rows) {
    ResultRow out_row;
    Interval joint = Interval::All();
    for (size_t k = 0; k < eval_order.size(); ++k) {
      joint = joint.Intersect(vars[eval_order[k]].paths[row[k]].valid);
    }
    if (shared_view) {
      if (joint.empty()) continue;  // pathways never coexisted
      out_row.valid = joint;
    }
    if (!query.is_select) {
      for (const std::string& name : query.retrieve_vars) {
        size_t vi = var_index[name];
        for (size_t k = 0; k < eval_order.size(); ++k) {
          if (eval_order[k] == vi) {
            Pathway p = ToPathway(vars[vi].paths[row[k]]);
            if (!shared_view) {
              // keep per-path interval
            } else {
              p.valid = out_row.valid;
            }
            out_row.paths.push_back(std::move(p));
          }
        }
      }
    } else {
      for (const SelectItem& item : query.select_items) {
        NEPAL_ASSIGN_OR_RETURN(Value v, eval_expr(item.expr, row));
        out_row.values.push_back(std::move(v));
      }
    }
    result.rows.push_back(std::move(out_row));
    if (options_.max_rows != 0 && result.rows.size() >= options_.max_rows) {
      break;
    }
  }
  if (result_stats != nullptr) {
    obs::OpSample sample;
    sample.rows_in = materialize_rows_in;
    sample.rows_out = result.rows.size();
    sample.shards = 1;
    sample.wall_ns = NowNs() - materialize_start;
    sample.invocations = 1;
    result_stats->Record(result_stats->AddOp("Materialize"), sample);
  }

  // ---- Row-level dedup / coalescing ----
  {
    const uint64_t coalesce_start = result_stats != nullptr ? NowNs() : 0;
    const size_t coalesce_rows_in = result.rows.size();
    std::unordered_map<std::string, std::vector<size_t>> groups;
    std::vector<std::string> order;
    for (size_t i = 0; i < result.rows.size(); ++i) {
      const ResultRow& row = result.rows[i];
      std::string key;
      for (const Pathway& p : row.paths) {
        for (Uid u : p.uids) {
          key.append(reinterpret_cast<const char*>(&u), sizeof(u));
        }
        key.push_back('|');
      }
      for (const Value& v : row.values) {
        key += v.ToString();
        key.push_back('|');
      }
      auto [it, inserted] = groups.emplace(key, std::vector<size_t>{});
      if (inserted) order.push_back(key);
      it->second.push_back(i);
    }
    std::vector<ResultRow> coalesced;
    coalesced.reserve(order.size());
    for (const std::string& key : order) {
      const std::vector<size_t>& indexes = groups[key];
      if (indexes.size() == 1 || !shared_view) {
        // Distinct rows (or rows whose intervals are per-path): keep the
        // first occurrence of each identical row.
        coalesced.push_back(std::move(result.rows[indexes[0]]));
        continue;
      }
      IntervalSet merged;
      for (size_t i : indexes) merged.Add(result.rows[i].valid);
      for (const Interval& iv : merged.intervals()) {
        ResultRow row = result.rows[indexes[0]];
        row.valid = iv;
        for (Pathway& p : row.paths) p.valid = iv;
        coalesced.push_back(std::move(row));
      }
    }
    result.rows = std::move(coalesced);
    if (result_stats != nullptr) {
      obs::OpSample sample;
      sample.rows_in = coalesce_rows_in;
      sample.rows_out = result.rows.size();
      sample.dedup_dropped = coalesce_rows_in - result.rows.size();
      sample.shards = 1;
      sample.wall_ns = NowNs() - coalesce_start;
      sample.invocations = 1;
      result_stats->Record(result_stats->AddOp("Coalesce"), sample);
    }
  }

  // ---- Temporal aggregation ----
  if (query.agg != TemporalAgg::kNone) {
    IntervalSet exists;
    for (const ResultRow& row : result.rows) exists.Add(row.valid);
    result.when_exists = exists;
    if (!exists.empty()) {
      if (query.agg == TemporalAgg::kFirstTime) {
        result.agg_time = exists.FirstTime();
      } else if (query.agg == TemporalAgg::kLastTime) {
        result.agg_time = exists.LastTime();
      }
    }
  }

  return result;
}

}  // namespace nepal::nql
