#include "nepal/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>

namespace nepal::nql {

namespace {

using storage::CompiledAtom;
using storage::Direction;

/// Two class subtrees intersect iff one contains the other's root
/// (pre-order intervals are nested or disjoint).
bool Overlaps(const schema::ClassDef* a, const schema::ClassDef* b) {
  return a->SubtreeContains(b) || b->SubtreeContains(a);
}

/// True if some allow rule admits edges of `cls` at all.
bool EdgeClassFeasible(const schema::ClassDef* cls,
                       const schema::Schema& schema) {
  for (const schema::EdgeRule& rule : schema.edge_rules()) {
    if (Overlaps(rule.edge_class, cls)) return true;
  }
  return false;
}

/// Can an element matching `b` directly follow an element matching `a` in
/// a pathway? Four-way concatenation semantics (Section 3.3) against the
/// allowed-edge rules: node->edge needs a rule sourcing the node class,
/// edge->node a rule targeting it, node->node an implicit (unconstrained)
/// edge between the classes, edge->edge an implicit node that is target of
/// one rule and source of another.
bool FeasiblePair(const CompiledAtom& a, const CompiledAtom& b,
                  const schema::Schema& schema) {
  const auto& rules = schema.edge_rules();
  if (!a.is_edge() && b.is_edge()) {
    for (const auto& r : rules) {
      if (Overlaps(r.edge_class, b.cls) && Overlaps(r.source_class, a.cls)) {
        return true;
      }
    }
    return false;
  }
  if (a.is_edge() && !b.is_edge()) {
    for (const auto& r : rules) {
      if (Overlaps(r.edge_class, a.cls) && Overlaps(r.target_class, b.cls)) {
        return true;
      }
    }
    return false;
  }
  if (!a.is_edge() && !b.is_edge()) {
    for (const auto& r : rules) {
      if (Overlaps(r.source_class, a.cls) && Overlaps(r.target_class, b.cls)) {
        return true;
      }
    }
    return false;
  }
  // edge -> edge: the implicit node in between must be reachable as a
  // target of some rule admitting `a` and a source of some rule admitting
  // `b`, with overlapping node classes.
  for (const auto& r1 : rules) {
    if (!Overlaps(r1.edge_class, a.cls)) continue;
    for (const auto& r2 : rules) {
      if (!Overlaps(r2.edge_class, b.cls)) continue;
      if (Overlaps(r1.target_class, r2.source_class)) return true;
    }
  }
  return false;
}

bool AnyFeasiblePair(const std::vector<const CompiledAtom*>& lasts,
                     const std::vector<const CompiledAtom*>& firsts,
                     const schema::Schema& schema) {
  for (const CompiledAtom* a : lasts) {
    for (const CompiledAtom* b : firsts) {
      if (FeasiblePair(*a, *b, schema)) return true;
    }
  }
  return false;
}

// ---- Predicate pushdown ----

bool PushableEq(const storage::FieldCondition& cond) {
  return cond.op == storage::FieldCondition::Op::kEq &&
         cond.field_index >= 0 && cond.subpath.empty();
}

void ApplyPushdown(LogicalNode* node, const CostEstimator& est,
                   std::vector<std::string>* log) {
  if (node->kind == LogicalNode::Kind::kAtom) {
    CompiledAtom& atom = node->atom;
    int first_pushable = -1;
    int best = -1;
    double best_count = 0;
    for (size_t i = 0; i < atom.conditions.size(); ++i) {
      if (!PushableEq(atom.conditions[i])) continue;
      if (first_pushable < 0) first_pushable = static_cast<int>(i);
      auto exact = est.stats().EqCount(atom.cls, atom.conditions[i].field_index,
                                       atom.conditions[i].value);
      if (!exact) continue;  // untracked: selectivity unknown
      if (best < 0 || *exact < best_count) {
        best = static_cast<int>(i);
        best_count = *exact;
      }
    }
    if (best >= 0 && best != first_pushable) {
      atom.pushdown_condition = best;
      log->push_back("pushdown: " + atom.cls->name() + " scans by " +
                     atom.conditions[static_cast<size_t>(best)].ToString() +
                     " (" + std::to_string(static_cast<long long>(best_count)) +
                     " rows, most selective equality)");
    }
    return;
  }
  for (LogicalNode& child : node->children) ApplyPushdown(&child, est, log);
}

// ---- Dead-branch pruning ----

/// Which atoms can start / end a match of this subtree, and whether it can
/// match the empty sequence. A pruned node reports the empty boundary.
struct Boundary {
  std::vector<const CompiledAtom*> firsts, lasts;
  bool can_be_empty = false;
};

bool Skippable(const LogicalNode& node, const Boundary& b) {
  return b.can_be_empty || (node.pruned && node.is_optional());
}

Boundary PruneNode(LogicalNode* node, const schema::Schema& schema,
                   std::vector<std::string>* log) {
  switch (node->kind) {
    case LogicalNode::Kind::kAtom: {
      if (node->atom.is_edge() && !EdgeClassFeasible(node->atom.cls, schema)) {
        node->pruned = true;
        log->push_back("prune: no allow rule admits edge class " +
                       node->atom.cls->name());
        return {};
      }
      return Boundary{{&node->atom}, {&node->atom}, false};
    }
    case LogicalNode::Kind::kSeq: {
      std::vector<Boundary> bounds;
      bounds.reserve(node->children.size());
      for (LogicalNode& child : node->children) {
        bounds.push_back(PruneNode(&child, schema, log));
      }
      // A dead mandatory child kills the sequence; a dead optional child
      // simply matches the empty sequence and is skipped at emission.
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (node->children[i].pruned && !node->children[i].is_optional()) {
          node->pruned = true;
          return {};
        }
      }
      // Adjacency feasibility between directly consecutive mandatory
      // children (a skippable child in between makes the crossing
      // avoidable, so nothing can be concluded there).
      const Boundary* prev = nullptr;
      const LogicalNode* prev_node = nullptr;
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (Skippable(node->children[i], bounds[i])) {
          prev = nullptr;
          continue;
        }
        if (prev != nullptr &&
            !AnyFeasiblePair(prev->lasts, bounds[i].firsts, schema)) {
          node->pruned = true;
          log->push_back("prune: no allowed edge lets " +
                         prev_node->ToString() + " precede " +
                         node->children[i].ToString());
          return {};
        }
        prev = &bounds[i];
        prev_node = &node->children[i];
      }
      Boundary out;
      out.can_be_empty = true;
      for (size_t i = 0; i < node->children.size(); ++i) {
        out.firsts.insert(out.firsts.end(), bounds[i].firsts.begin(),
                          bounds[i].firsts.end());
        if (!Skippable(node->children[i], bounds[i])) break;
      }
      for (size_t i = node->children.size(); i-- > 0;) {
        out.lasts.insert(out.lasts.end(), bounds[i].lasts.begin(),
                         bounds[i].lasts.end());
        if (!Skippable(node->children[i], bounds[i])) break;
      }
      for (size_t i = 0; i < node->children.size(); ++i) {
        if (!Skippable(node->children[i], bounds[i])) {
          out.can_be_empty = false;
          break;
        }
      }
      return out;
    }
    case LogicalNode::Kind::kAlt: {
      Boundary out;
      size_t alive = 0;
      for (LogicalNode& child : node->children) {
        Boundary b = PruneNode(&child, schema, log);
        if (child.pruned && !child.is_optional()) {
          log->push_back("prune: dead alternation branch " + child.ToString());
          continue;
        }
        ++alive;
        out.firsts.insert(out.firsts.end(), b.firsts.begin(), b.firsts.end());
        out.lasts.insert(out.lasts.end(), b.lasts.begin(), b.lasts.end());
        out.can_be_empty = out.can_be_empty || Skippable(child, b);
      }
      if (alive == 0) {
        node->pruned = true;
        return {};
      }
      return out;
    }
    case LogicalNode::Kind::kRep: {
      Boundary body = PruneNode(&node->children[0], schema, log);
      if (node->children[0].pruned && !node->children[0].is_optional()) {
        node->pruned = true;
        if (node->is_optional()) {
          // {0,n} over a dead body can only match zero iterations.
          log->push_back("prune: optional repetition " + node->ToString() +
                         " reduced to the empty match");
          return Boundary{{}, {}, true};
        }
        return {};
      }
      body.can_be_empty = body.can_be_empty || node->min_rep == 0;
      return body;
    }
  }
  return {};
}

// ---- Cost-gated loop strategy ----

void ApplyLoopGate(LogicalNode* node, const CostEstimator& est,
                   std::vector<std::string>* log) {
  for (LogicalNode& child : node->children) ApplyLoopGate(&child, est, log);
  if (node->kind != LogicalNode::Kind::kRep || node->pruned) return;
  if (node->min_rep != node->max_rep || node->min_rep > 8) return;
  // Fixed-count repetition: inline body^n is output-identical to a Loop
  // (only the final frontier is admissible) and gives per-step operator
  // stats. Gate on the estimated per-iteration fan-out so huge frontiers
  // keep the single ExtendBlock operator.
  const schema::Schema* schema = est.schema();
  if (schema == nullptr) return;
  std::function<double(const LogicalNode&)> fanout =
      [&](const LogicalNode& n) -> double {
    switch (n.kind) {
      case LogicalNode::Kind::kAtom:
        if (n.atom.is_edge()) {
          return std::max(
              est.Fanout(schema->node_root(), Direction::kOut, n.atom.cls),
              est.Fanout(schema->node_root(), Direction::kIn, n.atom.cls));
        }
        return std::max(
            est.Fanout(schema->node_root(), Direction::kOut, nullptr),
            est.Fanout(schema->node_root(), Direction::kIn, nullptr));
      case LogicalNode::Kind::kSeq: {
        double f = 1.0;
        for (const LogicalNode& c : n.children) f *= std::max(fanout(c), 1e-3);
        return f;
      }
      case LogicalNode::Kind::kAlt: {
        double f = 0.0;
        for (const LogicalNode& c : n.children) {
          if (!c.pruned) f += fanout(c);
        }
        return f;
      }
      case LogicalNode::Kind::kRep: {
        double f = fanout(n.children[0]);
        return std::pow(std::max(f, 1e-3), n.max_rep);
      }
    }
    return 1.0;
  };
  double per_iter = fanout(node->children[0]);
  double blowup = std::pow(std::max(per_iter, 1e-3), node->min_rep);
  if (blowup <= 4096.0) {
    node->unroll = true;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "loop: unrolled fixed-count %s inline (est fan-out "
                  "%.2f/iter)",
                  node->ToString().c_str(), per_iter);
    log->push_back(buf);
  }
}

}  // namespace

// ---- CostEstimator ----

double CostEstimator::ScanRaw(const CompiledAtom& atom) const {
  return backend_.EstimateScan(atom.ToScanSpec());
}

double CostEstimator::HistoryScale(const schema::ClassDef* cls) const {
  if (!view_.needs_history()) return 1.0;
  return stats().HistoryDepth(cls);
}

double CostEstimator::Scan(const CompiledAtom& atom) const {
  return ScanRaw(atom) * HistoryScale(atom.cls);
}

double CostEstimator::Cardinality(const schema::ClassDef* cls) const {
  if (cls == nullptr) return 0.0;
  return stats().bound() ? stats().Cardinality(cls)
                         : static_cast<double>(backend_.CountClass(cls));
}

double CostEstimator::ConditionSelectivity(const CompiledAtom& atom) const {
  double sel = 1.0;
  double card = std::max(1.0, Cardinality(atom.cls));
  for (const storage::FieldCondition& cond : atom.conditions) {
    double s;
    if (cond.field_index < 0) {
      // `id` pseudo-field.
      s = cond.op == storage::FieldCondition::Op::kEq ? 1.0 / card : 1.0 / 3.0;
    } else if (PushableEq(cond)) {
      auto exact = stats().EqCount(atom.cls, cond.field_index, cond.value);
      s = exact ? *exact / card : 0.1;
    } else if (cond.op == storage::FieldCondition::Op::kNe) {
      s = 0.9;
    } else {
      s = 1.0 / 3.0;
    }
    sel *= std::clamp(s, 0.0, 1.0);
  }
  return sel;
}

double CostEstimator::Fanout(const schema::ClassDef* node_cls, Direction dir,
                             const schema::ClassDef* edge_cls) const {
  const schema::Schema* s = schema();
  if (s == nullptr) return 0.0;
  if (node_cls == nullptr) node_cls = s->node_root();
  if (edge_cls == nullptr) edge_cls = s->edge_root();
  auto per_dir = [&](stats::DegreeDir d) {
    double edges =
        static_cast<double>(stats().EdgeCount(node_cls, d, edge_cls));
    if (edges <= 0.0) return 0.0;
    // Denominator: only the elements of node_cls whose class some allow
    // rule permits on this side of the edge. A frontier widened to the
    // node root must not dilute a hub class's degree across classes that
    // can never carry such an edge — that bias made full-edge scans look
    // cheaper than selective endpoint anchors.
    std::vector<const schema::ClassDef*> near;
    for (const schema::EdgeRule& rule : s->edge_rules()) {
      if (!Overlaps(rule.edge_class, edge_cls)) continue;
      const schema::ClassDef* side =
          d == stats::DegreeDir::kIn ? rule.target_class : rule.source_class;
      if (side->SubtreeContains(node_cls)) {
        near.push_back(node_cls);
      } else if (node_cls->SubtreeContains(side)) {
        near.push_back(side);
      }
    }
    double denom = 0.0;
    for (size_t i = 0; i < near.size(); ++i) {
      bool covered = false;
      for (size_t j = 0; j < near.size() && !covered; ++j) {
        if (j == i) continue;
        if (near[j] == near[i]) {
          if (j < i) covered = true;  // exact duplicate: count once
        } else if (near[j]->SubtreeContains(near[i])) {
          covered = true;  // nested class: the ancestor's count includes it
        }
      }
      if (!covered) denom += Cardinality(near[i]);
    }
    if (denom <= 0.0) {
      // No rule narrows the incident side: plain average over the class.
      return stats().AvgDegree(node_cls, d, edge_cls);
    }
    return edges / denom;
  };
  double f = 0.0;
  if (dir == Direction::kOut || dir == Direction::kBoth) {
    f += per_dir(stats::DegreeDir::kOut);
  }
  if (dir == Direction::kIn || dir == Direction::kBoth) {
    f += per_dir(stats::DegreeDir::kIn);
  }
  return f * HistoryScale(edge_cls);
}

const schema::ClassDef* CostEstimator::FarNodeClass(
    const schema::ClassDef* from_node, const schema::ClassDef* edge_cls,
    Direction dir) const {
  const schema::Schema* s = schema();
  if (s == nullptr) return nullptr;
  if (edge_cls == nullptr) edge_cls = s->edge_root();
  // Rules at or below the queried edge class shadow ancestor rules: an
  // OnServer traversal is described by `allow OnServer (Container -> Host)`,
  // not by the wider `allow hosted_on (...)` it specializes — folding the
  // ancestor rule in would widen the far class all the way to the node root.
  const schema::ClassDef* folded = nullptr;
  for (bool specific_only : {true, false}) {
    for (const schema::EdgeRule& rule : s->edge_rules()) {
      if (specific_only ? !edge_cls->SubtreeContains(rule.edge_class)
                        : !Overlaps(rule.edge_class, edge_cls)) {
        continue;
      }
      const schema::ClassDef* near =
          dir == Direction::kIn ? rule.target_class : rule.source_class;
      const schema::ClassDef* far =
          dir == Direction::kIn ? rule.source_class : rule.target_class;
      if (from_node != nullptr && !Overlaps(near, from_node)) continue;
      folded = folded == nullptr ? far : s->LeastCommonAncestor(folded, far);
    }
    if (folded != nullptr) break;
  }
  return folded == nullptr ? s->node_root() : folded;
}

// ---- Row propagation ----

TraversalState AnchorState(const CompiledAtom& anchor, Direction dir,
                           const CostEstimator& est) {
  TraversalState st;
  if (anchor.is_edge()) {
    st.cls = est.FarNodeClass(nullptr, anchor.cls, dir);
    st.in_path = false;
  } else {
    st.cls = anchor.cls;
    st.in_path = true;
  }
  return st;
}

namespace {

double ClassSelectivity(const CostEstimator& est,
                        const schema::ClassDef* frontier,
                        const schema::ClassDef* atom_cls) {
  if (frontier != nullptr && atom_cls->SubtreeContains(frontier)) return 1.0;
  if (frontier != nullptr && frontier->SubtreeContains(atom_cls)) {
    double fc = est.Cardinality(frontier);
    return fc > 0 ? std::min(1.0, est.Cardinality(atom_cls) / fc) : 1.0;
  }
  // Unknown or unrelated frontier guess: the atom's share of all nodes.
  const schema::Schema* s = est.schema();
  double root = s != nullptr ? est.Cardinality(s->node_root()) : 0.0;
  return root > 0 ? std::min(1.0, est.Cardinality(atom_cls) / root) : 1.0;
}

double AtomStepRows(double rows, const CompiledAtom& atom, Direction dir,
                    TraversalState* st, const CostEstimator& est) {
  if (atom.is_edge()) {
    // Edge after edge first materializes the implicit node (1:1); either
    // way the step's fan-out is the frontier node's average degree over
    // the atom's edge class, filtered by the edge conditions.
    rows *= est.Fanout(st->cls, dir, atom.cls) * est.ConditionSelectivity(atom);
    st->cls = est.FarNodeClass(st->cls, atom.cls, dir);
    st->in_path = false;
  } else {
    if (st->in_path) {
      // Node after node traverses one implicit, unconstrained edge.
      rows *= est.Fanout(st->cls, dir, nullptr);
      st->cls = est.FarNodeClass(st->cls, nullptr, dir);
    }
    rows *= ClassSelectivity(est, st->cls, atom.cls) *
            est.ConditionSelectivity(atom);
    if (st->cls == nullptr || !atom.cls->SubtreeContains(st->cls)) {
      st->cls = atom.cls;
    }
    st->in_path = true;
  }
  return rows;
}

}  // namespace

double AnnotateProgram(Program* program, double rows_in, Direction dir,
                       TraversalState* state, const CostEstimator& est,
                       double* work) {
  double rows = rows_in;
  for (Step& step : *program) {
    // Nested bodies/branches are annotated recursively but their work is
    // already reflected in the enclosing step's own output estimate, so
    // only top-level steps feed the work accumulator (no double counting).
    double nested_work = 0;
    switch (step.kind) {
      case Step::Kind::kAtom:
        rows = AtomStepRows(rows, step.atom, dir, state, est);
        break;
      case Step::Kind::kUnion: {
        double total = 0;
        TraversalState out_state = *state;
        bool picked = false;
        for (Program& branch : step.branches) {
          TraversalState bs = *state;
          total += AnnotateProgram(&branch, rows, dir, &bs, est, &nested_work);
          if (!picked && !branch.empty()) {
            out_state = bs;
            picked = true;
          }
        }
        *state = out_state;
        rows = total;
        break;
      }
      case Step::Kind::kLoop: {
        // Per-iteration costing: the frontier's class context evolves as
        // the body traverses (a selective endpoint widens toward the edge
        // rules' LCA class after one hop), so each iteration is re-costed
        // with the state the previous one produced instead of extrapolating
        // the first iteration's fan-out geometrically — the latter wildly
        // overprices anchors whose first hop is denser than the rest.
        TraversalState bs = *state;
        double total = step.min_rep == 0 ? rows : 0.0;
        double cur = rows;
        for (int k = 1; k <= step.max_rep; ++k) {
          if (k == 1) {
            cur = AnnotateProgram(&step.body, cur, dir, &bs, est, &nested_work);
          } else {
            // Scratch copy: the displayed body annotation keeps the
            // first-iteration estimates.
            Program scratch = step.body;
            cur = AnnotateProgram(&scratch, cur, dir, &bs, est, &nested_work);
          }
          if (k >= step.min_rep) total += cur;
        }
        *state = bs;
        rows = total;
        break;
      }
      case Step::Kind::kAutomaton: {
        // Per-state mass propagation over the automaton. Each state's
        // cumulative arrivals are capped by the cardinality of its
        // frontier-class guess (history-scaled): the executor's memoized
        // visitation never admits more distinct (state, node) pairs than
        // that, which is what lets cyclic automata converge here instead
        // of extrapolating fan-out geometrically per iteration.
        if (step.nfa == nullptr || step.nfa->num_states() == 0 ||
            step.nfa->start < 0) {
          step.state_est.clear();
          rows = 0;
          break;
        }
        const Nfa& nfa = *step.nfa;
        const size_t n = nfa.num_states();
        const size_t nstart = static_cast<size_t>(nfa.start);
        std::vector<double> arrivals(n, 0.0);
        std::vector<double> cur(n, 0.0);
        std::vector<TraversalState> scls(n, *state);
        std::vector<bool> has_cls(n, false);
        arrivals[nstart] = cur[nstart] = rows;
        has_cls[nstart] = true;
        double out_rows = nfa.accept[nstart] ? rows : 0.0;
        auto cap_for = [&](const TraversalState& ts) {
          const schema::ClassDef* cls = ts.cls;
          if (cls == nullptr && est.schema() != nullptr) {
            cls = est.schema()->node_root();
          }
          double card = cls != nullptr
                            ? est.Cardinality(cls) * est.HistoryScale(cls)
                            : 0.0;
          // Unknown statistics: effectively uncapped, bounded by rounds.
          return card > 0 ? card : 1e12;
        };
        // Bounded automata are DAGs of depth <= n; cyclic ones converge
        // once every state saturates its cap, so n rounds suffice for the
        // caps to bite and 2n+2 is a safe fixpoint bound.
        const size_t max_rounds = 2 * n + 2;
        for (size_t round = 0; round < max_rounds; ++round) {
          std::vector<double> next(n, 0.0);
          for (size_t s = 0; s < n; ++s) {
            if (cur[s] <= 0) continue;
            for (const NfaTransition& tr : nfa.states[s]) {
              const size_t t = static_cast<size_t>(tr.target);
              TraversalState ts = scls[s];
              next[t] += AtomStepRows(cur[s], tr.atom, dir, &ts, est);
              if (!has_cls[t]) {
                scls[t] = ts;
                has_cls[t] = true;
              }
            }
          }
          bool moved = false;
          for (size_t t = 0; t < n; ++t) {
            double room = std::max(0.0, cap_for(scls[t]) - arrivals[t]);
            double fresh = std::min(next[t], room);
            cur[t] = fresh;
            if (fresh > 1e-9) {
              arrivals[t] += fresh;
              if (nfa.accept[t]) out_rows += fresh;
              nested_work += fresh;
              moved = true;
            }
          }
          if (!moved) break;
        }
        step.state_est = std::move(arrivals);
        // The frontier leaves through an accept state; prefer one with a
        // class guess over keeping the incoming state unchanged.
        for (size_t t = 0; t < n; ++t) {
          if (nfa.accept[t] && has_cls[t] && t != nstart) {
            *state = scls[t];
            break;
          }
        }
        rows = out_rows;
        break;
      }
    }
    step.est_rows = rows;
    *work += rows;
  }
  return rows;
}

// ---- Rewrite driver ----

void OptimizeLogicalPlan(LogicalPlan* plan,
                         const storage::StorageBackend& backend,
                         const PlanOptions& options,
                         const storage::TimeView& view) {
  CostEstimator est(backend, view);
  if (options.optimize_pushdown) {
    ApplyPushdown(&plan->root, est, &plan->rewrites);
  }
  if (options.optimize_prune && est.schema() != nullptr) {
    PruneNode(&plan->root, *est.schema(), &plan->rewrites);
    if (plan->root.pruned && !plan->root.is_optional()) {
      plan->statically_empty = true;
    }
  }
  if (options.loop_strategy == LoopStrategy::kCostBased) {
    ApplyLoopGate(&plan->root, est, &plan->rewrites);
  }
}

}  // namespace nepal::nql
