#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

namespace nepal::obs {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

size_t ThreadShardSlot() {
  static std::atomic<size_t> next{0};
  thread_local size_t slot = next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

Histogram::Histogram(std::vector<uint64_t> bounds)
    : bounds_(std::move(bounds)), shards_(kShards) {
  for (Shard& shard : shards_) {
    shard.counts =
        std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i) shard.counts[i] = 0;
  }
}

void Histogram::Observe(uint64_t value) {
  size_t bucket = std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                  bounds_.begin();
  Shard& shard = shards_[ThreadShardSlot() % kShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      snap.counts[i] += shard.counts[i].load(std::memory_order_relaxed);
    }
    snap.sum += shard.sum.load(std::memory_order_relaxed);
  }
  for (uint64_t c : snap.counts) snap.count += c;
  return snap;
}

void Histogram::Reset() {
  for (Shard& shard : shards_) {
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      shard.counts[i].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0, std::memory_order_relaxed);
  }
}

uint64_t Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0;
  q = std::min(1.0, std::max(0.0, q));
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (seen + counts[i] > rank) {
      // Interpolate within (lo, hi] by the rank's one-based position in the
      // bucket, so the last rank of a bucket reports the bucket's upper
      // bound rather than its lower one.
      uint64_t lo = i == 0 ? 0 : bounds[i - 1];
      uint64_t hi = i < bounds.size() ? bounds[i] : lo * 2 + 1;
      double frac = static_cast<double>(rank - seen + 1) /
                    static_cast<double>(counts[i]);
      return lo + static_cast<uint64_t>(frac * static_cast<double>(hi - lo));
    }
    seen += counts[i];
  }
  return bounds.empty() ? 0 : bounds.back();
}

const std::vector<uint64_t>& DefaultLatencyBucketsNs() {
  static const std::vector<uint64_t>* buckets = new std::vector<uint64_t>{
      10'000,        30'000,        100'000,        300'000,
      1'000'000,     3'000'000,     10'000'000,     30'000'000,
      100'000'000,   300'000'000,   1'000'000'000,  3'000'000'000,
      10'000'000'000, 30'000'000'000};
  return *buckets;
}

const std::vector<uint64_t>& DefaultMillisBuckets() {
  static const std::vector<uint64_t>* buckets = new std::vector<uint64_t>{
      1, 3, 10, 30, 100, 300, 1'000, 3'000, 10'000, 30'000};
  return *buckets;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: hot paths cache metric pointers and worker threads
  // may still increment them during static destruction.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<uint64_t>& bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(bounds);
  return slot.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, counter] : counters_) {
    out += "counter " + name + " " + std::to_string(counter->Value()) + "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out += "gauge " + name + " " + std::to_string(gauge->Value()) + "\n";
  }
  for (const auto& [name, hist] : histograms_) {
    Histogram::Snapshot snap = hist->Snap();
    out += "histogram " + name + " count=" + std::to_string(snap.count) +
           " sum=" + std::to_string(snap.sum) +
           " p50=" + std::to_string(snap.Quantile(0.5)) +
           " p95=" + std::to_string(snap.Quantile(0.95)) +
           " p99=" + std::to_string(snap.Quantile(0.99)) + "\n";
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(counter->Value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(gauge->Value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!first) out += ",";
    first = false;
    Histogram::Snapshot snap = hist->Snap();
    out += "\"" + JsonEscape(name) +
           "\":{\"count\":" + std::to_string(snap.count) +
           ",\"sum\":" + std::to_string(snap.sum) + ",\"buckets\":[";
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      if (i > 0) out += ",";
      std::string le = i < snap.bounds.size()
                           ? std::to_string(snap.bounds[i])
                           : "\"+inf\"";
      out += "{\"le\":" + le + ",\"count\":" +
             std::to_string(snap.counts[i]) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetValuesForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace nepal::obs
