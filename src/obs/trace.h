// Dapper-style span tracing for per-request latency attribution.
//
// A Trace is a tree of named spans with steady-clock timestamps; the
// process-wide Tracer decides which requests record one, keeps finished
// traces in a fixed-size ring, and exposes them as text or JSON (the
// shell's `\trace` family). Two hot paths are instrumented:
//
//  - writes: GraphDb::ApplyBatch opens a root span whose children
//    decompose commit latency into lock-wait / validate / apply /
//    wal.encode / wal.write / wal.fsync / publish. The trace id and root
//    span id ride along with the shipped WAL frame group (an optional
//    NPLSHP01 annotation — old followers ignore it), so a follower's
//    wire/decode/apply segments join the primary's trace and
//    commit-to-visible time decomposes end to end;
//  - reads: QueryEngine wraps parse / plan / execute, then projects one
//    child span per operator from the partition-invariant EXPLAIN
//    ANALYZE totals (obs/query_stats.h), so the span tree has identical
//    shape at parallelism 1 and N.
//
// Propagation is ambient: Tracer::CurrentContext() is a thread-local
// {trace, span} pair installed by ScopedTrace/ScopedSpan, so lower
// layers (persist, replication) attach children without any API changes
// — and without a dependency cycle, since obs sits below everything.
//
// Sampling policy ("probabilistic + always-on-slow"):
//  - sample_rate = 0 and slow_keep_ns = 0: tracing is OFF. StartTrace
//    returns nullptr and every scoped helper is a no-op — the fast path
//    allocates zero spans (a single thread-local null check).
//  - sample_rate > 0: each StartTrace flips a coin; sampled traces are
//    recorded and kept at Finish.
//  - slow_keep_ns > 0: every trace is recorded (cheap span arena), but
//    an unsampled one is kept at Finish only if its root duration
//    reached the threshold — tail-based capture of slow requests.
//  - Trace::ForceKeep() pins a trace into the ring regardless of the
//    coin (used by the engine's slow-query ring and by joined replica
//    traces).
//
// Threading contract: OpenSpan/AddSpan/CloseSpan/AddDuration are
// thread-safe and remain valid after Finish — a deadline-flusher fsync
// or an in-process follower may attach spans to a trace that already
// sits in the ring; Snapshot/export see them on the next render.

#ifndef NEPAL_OBS_TRACE_H_
#define NEPAL_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nepal::obs {

inline uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Immutable snapshot of one span, for exposition.
struct SpanView {
  uint32_t id = 0;
  uint32_t parent = 0;  // 0: this is the root
  std::string name;
  uint64_t start_ns = 0;  // offset from the trace's start
  uint64_t dur_ns = 0;
  uint64_t count = 0;  // logical invocations merged into this span
};

class Trace {
 public:
  Trace(uint64_t trace_id, std::string root_name, bool sampled);

  uint64_t trace_id() const { return trace_id_; }
  /// The root span always has id 1 (ids are 1-based; 0 means "none").
  uint32_t root_span() const { return 1; }
  bool sampled() const { return sampled_; }

  /// Opens a child span of `parent` and returns its id. Thread-safe.
  uint32_t OpenSpan(uint32_t parent, std::string name);
  /// Closes an open span, fixing its duration at now - start.
  void CloseSpan(uint32_t id);
  /// Records an already-measured span (cross-thread attribution, e.g.
  /// the WAL deadline flusher, or a follower's wire segment).
  uint32_t AddSpan(uint32_t parent, std::string name, uint64_t dur_ns,
                   uint64_t count = 1);
  /// Associatively folds another measured slice into span `id` — the
  /// partition-invariant merge used by per-operator spans.
  void AddDuration(uint32_t id, uint64_t dur_ns, uint64_t count = 1);

  /// Pins this trace into the ring regardless of the sampling coin.
  void ForceKeep() { keep_forced_.store(true, std::memory_order_relaxed); }
  bool keep_forced() const {
    return keep_forced_.load(std::memory_order_relaxed);
  }

  /// Root span duration; 0 until the root is closed.
  uint64_t duration_ns() const {
    return root_dur_ns_.load(std::memory_order_relaxed);
  }
  const std::string& root_name() const { return root_name_; }
  size_t SpanCount() const;

  std::vector<SpanView> Snapshot() const;
  /// {"trace_id":"<hex>","root":..,"dur_ns":..,"spans":[...]}
  void AppendJson(std::string* out) const;
  /// Indented tree, one span per line, durations in ms.
  std::string ToText() const;

 private:
  friend class Tracer;
  struct Span {
    std::string name;
    uint32_t parent = 0;
    uint64_t start_ns = 0;  // relative to base_
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> count{1};
    bool open = true;
    Span(std::string n, uint32_t p, uint64_t s)
        : name(std::move(n)), parent(p), start_ns(s) {}
  };

  const uint64_t trace_id_;
  const std::string root_name_;
  const bool sampled_;
  const uint64_t base_ns_;  // steady-clock birth of the trace
  std::atomic<uint64_t> root_dur_ns_{0};
  std::atomic<bool> keep_forced_{false};
  std::atomic<bool> finished_{false};
  mutable std::mutex mu_;
  std::deque<Span> spans_;  // deque: stable refs; span id = index + 1
};

/// Ambient trace context for the calling thread. `span_id` is the parent
/// newly opened spans attach under.
struct TraceContext {
  std::shared_ptr<Trace> trace;
  uint32_t span_id = 0;

  explicit operator bool() const { return trace != nullptr; }
};

class Tracer {
 public:
  struct Options {
    /// Probability a StartTrace is head-sampled (kept unconditionally).
    double sample_rate = 0.0;
    /// When > 0, every trace records and slow ones (root duration at or
    /// above this) are kept even if the coin said no. 0 disables.
    uint64_t slow_keep_ns = 0;
    /// Completed-trace ring capacity (FIFO eviction).
    size_t ring_capacity = 32;
  };

  struct Stats {
    uint64_t started = 0;  // traces that recorded spans
    uint64_t kept = 0;     // pushed into the ring at Finish
    uint64_t dropped = 0;  // finished but discarded (coin lost, not slow)
    uint64_t spans = 0;    // spans allocated across all recorded traces
  };

  /// A follower's attachment to a (possibly remote) trace id.
  struct Joined {
    std::shared_ptr<Trace> trace;
    /// Parent span id the caller should attach segments under.
    uint32_t parent = 0;
    /// True when the trace was created on this side (the primary lives
    /// in another process); FinishJoined then closes and keeps it.
    bool local = false;

    explicit operator bool() const { return trace != nullptr; }
  };

  static Tracer& Global();

  /// Installs new options and clears the ring and stats (tests, shell).
  void Configure(const Options& options);
  Options options() const;
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Starts a trace, or returns nullptr when this request records
  /// nothing (tracing off, or coin lost with no slow capture armed).
  std::shared_ptr<Trace> StartTrace(const char* root_name);

  /// Joins the trace `trace_id` shipped by a primary: in-process, the
  /// original Trace object is found and segments land in the same tree;
  /// cross-process, a local trace is created under the same id (so the
  /// follower visibly carries the primary's trace id). Returns a null
  /// Joined when tracing is off.
  Joined JoinTrace(uint64_t trace_id, const char* local_root_name);
  /// Completes a locally-created Joined trace (closes its root and
  /// pushes it into the ring). No-op for in-process joins.
  void FinishJoined(Joined& joined);

  /// Closes the root span if still open, applies the keep policy, and
  /// pushes kept traces into the ring. Idempotent.
  void Finish(const std::shared_ptr<Trace>& trace);

  /// Ring contents, oldest first.
  std::vector<std::shared_ptr<Trace>> Completed() const;
  /// Looks up a trace by id — ring first (newest wins), then live
  /// traces that have not finished yet.
  std::shared_ptr<Trace> Find(uint64_t trace_id) const;

  std::string ExportText() const;
  /// {"traces":[{...oldest...},...,{...newest...}]}
  std::string ExportJson() const;
  Stats stats() const;

  /// The calling thread's ambient context (installed by ScopedTrace).
  static TraceContext& CurrentContext();

 private:
  Tracer();
  void RecordStarted(size_t span_count_delta);

  mutable std::mutex mu_;
  Options options_;
  std::atomic<bool> enabled_{false};
  std::deque<std::shared_ptr<Trace>> ring_;
  std::vector<std::weak_ptr<Trace>> live_;
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> kept_{0};
  std::atomic<uint64_t> dropped_{0};
  std::atomic<uint64_t> spans_{0};

  friend class Trace;
};

/// RAII root-span holder: installs the ambient context on construction
/// and (closes root + Finish + restores the previous context) on
/// destruction. Safe to construct from a null trace — everything no-ops.
class ScopedTrace {
 public:
  explicit ScopedTrace(std::shared_ptr<Trace> trace);
  ~ScopedTrace();
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

  bool active() const { return trace_ != nullptr; }
  Trace* trace() const { return trace_.get(); }
  const std::shared_ptr<Trace>& handle() const { return trace_; }

 private:
  std::shared_ptr<Trace> trace_;
  TraceContext saved_;
};

/// RAII child span of the ambient context; no-op when untraced. While
/// alive, nested ScopedSpans parent under it.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  bool active() const { return span_id_ != 0; }
  uint32_t span_id() const { return span_id_; }

 private:
  uint32_t span_id_ = 0;
  uint32_t saved_parent_ = 0;
};

}  // namespace nepal::obs

#endif  // NEPAL_OBS_TRACE_H_
