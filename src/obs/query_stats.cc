#include "obs/query_stats.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/metrics.h"

namespace nepal::obs {

void OperatorStats::MergeCountsFrom(const OperatorStats& other) {
  rows_in += other.rows_in;
  rows_out += other.rows_out;
  dedup_dropped += other.dedup_dropped;
  shards += other.shards;
  wall_ns += other.wall_ns;
  invocations += other.invocations;
  // Estimates are per-execution figures: merging repeated runs of the same
  // plan sums them alongside the actual rows (est/actual ratios survive).
  if (other.est_rows >= 0) {
    est_rows = est_rows >= 0 ? est_rows + other.est_rows : other.est_rows;
  }
}

namespace {

std::string JsonDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void OperatorStats::AppendJson(std::string* out) const {
  *out += "{\"group\":\"" + JsonEscape(group) + "\",\"op\":\"" +
          JsonEscape(op) + "\",\"rows_in\":" + std::to_string(rows_in) +
          ",\"rows_out\":" + std::to_string(rows_out) +
          ",\"est_rows\":" + JsonDouble(est_rows) +
          ",\"dedup_dropped\":" + std::to_string(dedup_dropped) +
          ",\"shards\":" + std::to_string(shards) +
          ",\"wall_ns\":" + std::to_string(wall_ns) +
          ",\"invocations\":" + std::to_string(invocations) + "}";
}

void QueryStats::MergeFrom(const QueryStats& other) {
  std::map<std::pair<std::string, std::string>, size_t> index;
  for (size_t i = 0; i < operators.size(); ++i) {
    index[{operators[i].group, operators[i].op}] = i;
  }
  for (const OperatorStats& op : other.operators) {
    auto it = index.find({op.group, op.op});
    if (it == index.end()) {
      index[{op.group, op.op}] = operators.size();
      operators.push_back(op);
    } else {
      operators[it->second].MergeCountsFrom(op);
    }
  }
  wall_ns += other.wall_ns;
  result_rows += other.result_rows;
  plan_cost += other.plan_cost;
}

std::string QueryStats::ToString() const {
  size_t op_width = 8;
  for (const OperatorStats& op : operators) {
    op_width = std::max(op_width, op.op.size() + 2);
  }
  op_width = std::min<size_t>(op_width, 60);
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-*s %9s %9s %9s %7s %6s %6s %10s\n",
                static_cast<int>(op_width), "operator", "rows_in", "rows_out",
                "est_rows", "dedup", "shards", "invocs", "wall_ms");
  out += line;
  std::string current_group;
  for (const OperatorStats& op : operators) {
    if (op.group != current_group) {
      current_group = op.group;
      out += current_group + "\n";
    }
    std::string name = "  " + op.op;
    if (name.size() > op_width) name = name.substr(0, op_width - 3) + "...";
    char est[16];
    if (op.est_rows >= 0) {
      std::snprintf(est, sizeof(est), "%9.1f", op.est_rows);
    } else {
      std::snprintf(est, sizeof(est), "%9s", "-");
    }
    std::snprintf(line, sizeof(line),
                  "%-*s %9llu %9llu %s %7llu %6llu %6llu %10.3f\n",
                  static_cast<int>(op_width), name.c_str(),
                  static_cast<unsigned long long>(op.rows_in),
                  static_cast<unsigned long long>(op.rows_out), est,
                  static_cast<unsigned long long>(op.dedup_dropped),
                  static_cast<unsigned long long>(op.shards),
                  static_cast<unsigned long long>(op.invocations),
                  static_cast<double>(op.wall_ns) / 1e6);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "total: %llu row(s) in %.3f ms, parallelism %d, backend %s\n",
                static_cast<unsigned long long>(result_rows),
                static_cast<double>(wall_ns) / 1e6, parallelism,
                backend.c_str());
  out += line;
  return out;
}

void QueryStats::AppendJson(std::string* out) const {
  *out += "{\"backend\":\"" + JsonEscape(backend) + "\",\"query\":\"" +
          JsonEscape(query) + "\",\"wall_ns\":" + std::to_string(wall_ns) +
          ",\"result_rows\":" + std::to_string(result_rows) +
          ",\"parallelism\":" + std::to_string(parallelism) +
          ",\"plan_cost\":" + JsonDouble(plan_cost) +
          ",\"operators\":[";
  for (size_t i = 0; i < operators.size(); ++i) {
    if (i > 0) *out += ",";
    operators[i].AppendJson(out);
  }
  *out += "]}";
}

int QueryStatsGroup::AddOp(std::string op, double est_rows) {
  nodes_.emplace_back(std::move(op), est_rows);
  return static_cast<int>(nodes_.size()) - 1;
}

void QueryStatsGroup::Record(int op_id, const OpSample& sample) {
  if (op_id < 0 || static_cast<size_t>(op_id) >= nodes_.size()) return;
  Node& node = nodes_[static_cast<size_t>(op_id)];
  node.rows_in.fetch_add(sample.rows_in, std::memory_order_relaxed);
  node.rows_out.fetch_add(sample.rows_out, std::memory_order_relaxed);
  node.dedup_dropped.fetch_add(sample.dedup_dropped,
                               std::memory_order_relaxed);
  node.shards.fetch_add(sample.shards, std::memory_order_relaxed);
  node.wall_ns.fetch_add(sample.wall_ns, std::memory_order_relaxed);
  node.invocations.fetch_add(sample.invocations, std::memory_order_relaxed);
}

QueryStatsGroup* QueryStatsBuilder::AddGroup(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_.emplace_back(std::move(name));
  return &groups_.back();
}

void QueryStatsBuilder::AddPlanCost(double cost) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_cost_ += cost;
}

QueryStats QueryStatsBuilder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryStats stats;
  stats.plan_cost = plan_cost_;
  for (const QueryStatsGroup& group : groups_) {
    for (const QueryStatsGroup::Node& node : group.nodes_) {
      OperatorStats op;
      op.group = group.name();
      op.op = node.op;
      op.est_rows = node.est_rows;
      op.rows_in = node.rows_in.load(std::memory_order_relaxed);
      op.rows_out = node.rows_out.load(std::memory_order_relaxed);
      op.dedup_dropped = node.dedup_dropped.load(std::memory_order_relaxed);
      op.shards = node.shards.load(std::memory_order_relaxed);
      op.wall_ns = node.wall_ns.load(std::memory_order_relaxed);
      op.invocations = node.invocations.load(std::memory_order_relaxed);
      stats.operators.push_back(std::move(op));
    }
  }
  return stats;
}

}  // namespace nepal::obs
