// Process-wide metrics: counters, gauges and fixed-bucket histograms,
// collected in a name-keyed registry with text and JSON exposition.
//
// Counters and histograms are written from query hot paths (one increment
// per operator invocation, one observation per query), so their cells are
// sharded: each thread picks a cache-line-padded atomic slot by a
// thread-local index and increments without contending with other threads.
// Reads (Value / Snapshot / Render*) sum over the shards; they are
// wait-free for writers and only approximately ordered against concurrent
// increments, which is the usual contract for monitoring data.
//
// Metric objects are owned by the registry and never deallocated, so
// callers may cache the returned pointers (the thread pool does).

#ifndef NEPAL_OBS_METRICS_H_
#define NEPAL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace nepal::obs {

/// Escapes `s` as the body of a JSON string literal (no quotes added).
std::string JsonEscape(const std::string& s);

/// Index of the calling thread into a fixed shard array: threads get
/// monotonically increasing slots on first use, wrapped by the caller.
size_t ThreadShardSlot();

class Counter {
 public:
  static constexpr size_t kShards = 16;

  void Add(uint64_t n = 1) {
    shards_[ThreadShardSlot() % kShards].v.fetch_add(
        n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void Reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> v{0};
  };
  Shard shards_[kShards];
};

/// A point-in-time signed value (queue depths, live object counts).
/// Gauges are read-modify-write by many threads but only a handful of
/// times per batch, so a single atomic cell suffices.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket histogram. `bounds` are ascending upper bounds (inclusive);
/// an implicit overflow bucket catches everything above the last bound.
class Histogram {
 public:
  static constexpr size_t kShards = 8;

  explicit Histogram(std::vector<uint64_t> bounds);

  void Observe(uint64_t value);

  struct Snapshot {
    std::vector<uint64_t> bounds;   // same size as counts minus overflow
    std::vector<uint64_t> counts;   // bounds.size() + 1 (last = overflow)
    uint64_t count = 0;
    uint64_t sum = 0;

    /// Bucket-interpolated quantile estimate (q in [0, 1]); 0 when empty.
    uint64_t Quantile(double q) const;
  };
  Snapshot Snap() const;
  void Reset();

 private:
  struct Shard {
    alignas(64) std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<uint64_t> sum{0};
  };
  std::vector<uint64_t> bounds_;
  std::vector<Shard> shards_;
};

/// Default latency bucket ladder (nanoseconds): 10us .. 30s, roughly
/// half-decade steps — wide enough for single-operator and whole-query
/// timings alike.
const std::vector<uint64_t>& DefaultLatencyBucketsNs();

/// Millisecond bucket ladder (1ms .. 30s) for coarse durations measured
/// across processes — e.g. replication apply lag, where nanosecond
/// resolution is noise.
const std::vector<uint64_t>& DefaultMillisBuckets();

/// Name-keyed metric registry. Get* registers on first use and returns a
/// stable pointer; the process-wide instance lives for the program's
/// lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` only applies on first registration of `name`.
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<uint64_t>& bounds =
                              DefaultLatencyBucketsNs());

  /// One metric per line: `counter nepal.queries.graphstore 42`;
  /// histograms add count/sum/p50/p95/p99.
  std::string RenderText() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {name:
  ///  {"count":..,"sum":..,"buckets":[{"le":..,"count":..},...]}}}
  std::string RenderJson() const;

  /// Zeroes every metric value but keeps all registrations (cached
  /// pointers stay valid). Intended for tests.
  void ResetValuesForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace nepal::obs

#endif  // NEPAL_OBS_METRICS_H_
