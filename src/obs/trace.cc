#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/metrics.h"

namespace nepal::obs {
namespace {

// splitmix64: per-thread PRNG for the sampling coin and trace ids. Seeded
// from the steady clock and the slot address so threads diverge.
uint64_t NextRand() {
  thread_local uint64_t state = [] {
    static std::atomic<uint64_t> salt{0x9e3779b97f4a7c15ULL};
    return TraceNowNs() ^ salt.fetch_add(0xbf58476d1ce4e5b9ULL,
                                         std::memory_order_relaxed);
  }();
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double RandUnit() {
  return static_cast<double>(NextRand() >> 11) * 0x1.0p-53;
}

uint64_t NewTraceId() {
  uint64_t id;
  do {
    id = NextRand();
  } while (id == 0);
  return id;
}

std::string HexTraceId(uint64_t id) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, id);
  return buf;
}

void AppendMs(uint64_t ns, std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms",
                static_cast<double>(ns) / 1e6);
  out->append(buf);
}

}  // namespace

// ---- Trace ----

Trace::Trace(uint64_t trace_id, std::string root_name, bool sampled)
    : trace_id_(trace_id),
      root_name_(root_name),
      sampled_(sampled),
      base_ns_(TraceNowNs()) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.emplace_back(std::move(root_name), 0, 0);
}

uint32_t Trace::OpenSpan(uint32_t parent, std::string name) {
  const uint64_t start = TraceNowNs() - base_ns_;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.emplace_back(std::move(name), parent, start);
  return static_cast<uint32_t>(spans_.size());
}

void Trace::CloseSpan(uint32_t id) {
  if (id == 0) return;
  const uint64_t now = TraceNowNs() - base_ns_;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  Span& span = spans_[id - 1];
  if (!span.open) return;
  span.open = false;
  const uint64_t dur = now >= span.start_ns ? now - span.start_ns : 0;
  span.dur_ns.store(dur, std::memory_order_relaxed);
  if (id == root_span()) {
    root_dur_ns_.store(dur, std::memory_order_relaxed);
  }
}

uint32_t Trace::AddSpan(uint32_t parent, std::string name, uint64_t dur_ns,
                        uint64_t count) {
  const uint64_t start = TraceNowNs() - base_ns_;
  std::lock_guard<std::mutex> lock(mu_);
  spans_.emplace_back(std::move(name), parent,
                      start >= dur_ns ? start - dur_ns : 0);
  Span& span = spans_.back();
  span.open = false;
  span.dur_ns.store(dur_ns, std::memory_order_relaxed);
  span.count.store(count, std::memory_order_relaxed);
  return static_cast<uint32_t>(spans_.size());
}

void Trace::AddDuration(uint32_t id, uint64_t dur_ns, uint64_t count) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (id > spans_.size()) return;
  Span& span = spans_[id - 1];
  span.dur_ns.fetch_add(dur_ns, std::memory_order_relaxed);
  span.count.fetch_add(count, std::memory_order_relaxed);
}

size_t Trace::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::vector<SpanView> Trace::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SpanView> out;
  out.reserve(spans_.size());
  uint32_t id = 0;
  for (const Span& span : spans_) {
    SpanView view;
    view.id = ++id;
    view.parent = span.parent;
    view.name = span.name;
    view.start_ns = span.start_ns;
    view.dur_ns = span.dur_ns.load(std::memory_order_relaxed);
    view.count = span.count.load(std::memory_order_relaxed);
    out.push_back(std::move(view));
  }
  return out;
}

void Trace::AppendJson(std::string* out) const {
  const std::vector<SpanView> spans = Snapshot();
  out->append("{\"trace_id\":\"");
  out->append(HexTraceId(trace_id_));
  out->append("\",\"root\":\"");
  out->append(JsonEscape(root_name_));
  out->append("\",\"dur_ns\":");
  out->append(std::to_string(duration_ns()));
  out->append(",\"sampled\":");
  out->append(sampled_ ? "true" : "false");
  out->append(",\"spans\":[");
  bool first = true;
  for (const SpanView& span : spans) {
    if (!first) out->push_back(',');
    first = false;
    out->append("{\"id\":");
    out->append(std::to_string(span.id));
    out->append(",\"parent\":");
    out->append(std::to_string(span.parent));
    out->append(",\"name\":\"");
    out->append(JsonEscape(span.name));
    out->append("\",\"start_ns\":");
    out->append(std::to_string(span.start_ns));
    out->append(",\"dur_ns\":");
    out->append(std::to_string(span.dur_ns));
    out->append(",\"count\":");
    out->append(std::to_string(span.count));
    out->push_back('}');
  }
  out->append("]}");
}

std::string Trace::ToText() const {
  const std::vector<SpanView> spans = Snapshot();
  std::string out = "trace " + HexTraceId(trace_id_) + "  " + root_name_ +
                    "  ";
  AppendMs(duration_ns(), &out);
  out.append("  (" + std::to_string(spans.size()) + " span(s))\n");
  // Children in recording order under each parent; spans.size() is small
  // (bounded by the operators of one request), so O(n^2) is fine.
  std::vector<std::pair<uint32_t, int>> stack;  // (span id, depth)
  for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
    if (it->parent == 0) stack.push_back({it->id, 1});
  }
  while (!stack.empty()) {
    auto [id, depth] = stack.back();
    stack.pop_back();
    const SpanView& span = spans[id - 1];
    std::string line(static_cast<size_t>(depth) * 2, ' ');
    line += span.name;
    if (line.size() < 40) line.resize(40, ' ');
    line += "  ";
    out.append(line);
    AppendMs(span.dur_ns, &out);
    if (span.count > 1) {
      out.append("  x" + std::to_string(span.count));
    }
    out.push_back('\n');
    for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
      if (it->parent == id) stack.push_back({it->id, depth + 1});
    }
  }
  return out;
}

// ---- Tracer ----

Tracer::Tracer() = default;

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

TraceContext& Tracer::CurrentContext() {
  thread_local TraceContext context;
  return context;
}

void Tracer::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  if (options_.ring_capacity == 0) options_.ring_capacity = 1;
  enabled_.store(options_.sample_rate > 0 || options_.slow_keep_ns > 0,
                 std::memory_order_relaxed);
  ring_.clear();
  live_.clear();
  started_.store(0, std::memory_order_relaxed);
  kept_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  spans_.store(0, std::memory_order_relaxed);
}

Tracer::Options Tracer::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

void Tracer::RecordStarted(size_t span_count_delta) {
  started_.fetch_add(1, std::memory_order_relaxed);
  spans_.fetch_add(span_count_delta, std::memory_order_relaxed);
  MetricsRegistry::Global().GetCounter("nepal.trace.started")->Add();
}

std::shared_ptr<Trace> Tracer::StartTrace(const char* root_name) {
  if (!enabled()) return nullptr;
  Options options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    options = options_;
  }
  const bool sampled =
      options.sample_rate > 0 && RandUnit() < options.sample_rate;
  if (!sampled && options.slow_keep_ns == 0) return nullptr;
  auto trace = std::make_shared<Trace>(NewTraceId(), root_name, sampled);
  RecordStarted(1);
  std::lock_guard<std::mutex> lock(mu_);
  // Prune dead weak refs opportunistically so live_ stays O(in-flight).
  live_.erase(std::remove_if(live_.begin(), live_.end(),
                             [](const std::weak_ptr<Trace>& w) {
                               return w.expired();
                             }),
              live_.end());
  live_.push_back(trace);
  return trace;
}

Tracer::Joined Tracer::JoinTrace(uint64_t trace_id,
                                 const char* local_root_name) {
  Joined joined;
  if (!enabled() || trace_id == 0) return joined;
  if (std::shared_ptr<Trace> found = Find(trace_id)) {
    // In-process primary: attach follower segments to the same tree.
    joined.trace = std::move(found);
    joined.parent = joined.trace->root_span();
    joined.local = false;
    return joined;
  }
  // Cross-process primary: record a local trace under the remote id so
  // the follower visibly carries the primary's trace id.
  joined.trace =
      std::make_shared<Trace>(trace_id, local_root_name, /*sampled=*/true);
  joined.trace->ForceKeep();
  joined.parent = joined.trace->root_span();
  joined.local = true;
  RecordStarted(1);
  return joined;
}

void Tracer::FinishJoined(Joined& joined) {
  if (!joined.trace || !joined.local) return;
  joined.trace->CloseSpan(joined.trace->root_span());
  Finish(joined.trace);
}

void Tracer::Finish(const std::shared_ptr<Trace>& trace) {
  if (!trace) return;
  trace->CloseSpan(trace->root_span());
  if (trace->finished_.exchange(true, std::memory_order_acq_rel)) return;
  spans_.fetch_add(trace->SpanCount() - 1, std::memory_order_relaxed);
  uint64_t slow_keep_ns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    slow_keep_ns = options_.slow_keep_ns;
  }
  const bool keep = trace->keep_forced() || trace->sampled() ||
                    (slow_keep_ns > 0 && trace->duration_ns() >= slow_keep_ns);
  if (!keep) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    MetricsRegistry::Global().GetCounter("nepal.trace.dropped")->Add();
    return;
  }
  kept_.fetch_add(1, std::memory_order_relaxed);
  MetricsRegistry::Global().GetCounter("nepal.trace.kept")->Add();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(trace);
  while (ring_.size() > options_.ring_capacity) ring_.pop_front();
}

std::vector<std::shared_ptr<Trace>> Tracer::Completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {ring_.begin(), ring_.end()};
}

std::shared_ptr<Trace> Tracer::Find(uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = ring_.rbegin(); it != ring_.rend(); ++it) {
    if ((*it)->trace_id() == trace_id) return *it;
  }
  for (auto it = live_.rbegin(); it != live_.rend(); ++it) {
    if (std::shared_ptr<Trace> trace = it->lock()) {
      if (trace->trace_id() == trace_id) return trace;
    }
  }
  return nullptr;
}

std::string Tracer::ExportText() const {
  std::string out;
  for (const auto& trace : Completed()) out.append(trace->ToText());
  if (out.empty()) out = "no completed traces\n";
  return out;
}

std::string Tracer::ExportJson() const {
  std::string out = "{\"traces\":[";
  bool first = true;
  for (const auto& trace : Completed()) {
    if (!first) out.push_back(',');
    first = false;
    trace->AppendJson(&out);
  }
  out.append("]}");
  return out;
}

Tracer::Stats Tracer::stats() const {
  Stats stats;
  stats.started = started_.load(std::memory_order_relaxed);
  stats.kept = kept_.load(std::memory_order_relaxed);
  stats.dropped = dropped_.load(std::memory_order_relaxed);
  stats.spans = spans_.load(std::memory_order_relaxed);
  return stats;
}

// ---- scoped helpers ----

ScopedTrace::ScopedTrace(std::shared_ptr<Trace> trace)
    : trace_(std::move(trace)) {
  if (!trace_) return;
  TraceContext& context = Tracer::CurrentContext();
  saved_ = context;
  context.trace = trace_;
  context.span_id = trace_->root_span();
}

ScopedTrace::~ScopedTrace() {
  if (!trace_) return;
  Tracer::CurrentContext() = saved_;
  Tracer::Global().Finish(trace_);
}

ScopedSpan::ScopedSpan(const char* name) {
  TraceContext& context = Tracer::CurrentContext();
  if (!context.trace) return;
  span_id_ = context.trace->OpenSpan(context.span_id, name);
  saved_parent_ = context.span_id;
  context.span_id = span_id_;
}

ScopedSpan::~ScopedSpan() {
  if (span_id_ == 0) return;
  TraceContext& context = Tracer::CurrentContext();
  context.trace->CloseSpan(span_id_);
  context.span_id = saved_parent_;
}

}  // namespace nepal::obs
