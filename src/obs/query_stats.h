// Structured per-operator execution statistics (EXPLAIN ANALYZE).
//
// One QueryStatsBuilder lives for the duration of a top-level query run.
// The engine registers a QueryStatsGroup per range variable (plus "join"
// and "result" groups); the executor registers one operator node per
// Select / Extend / ExtendBlock / Union / Loop / Join step and records
// samples into it. Samples are plain additive tuples, so recording is
// associative and commutative: per-shard samples from the frontier-parallel
// executor merge into the same totals no matter how many shards ran or in
// what order. That is what lets EXPLAIN ANALYZE run at full
// PlanOptions::parallelism (unlike the legacy string trace, which is
// order-sensitive and forces serial execution — see
// storage/pathset.h).
//
// Partition invariance: for an operator node, `rows_in`, `rows_out` and
// `invocations` are recorded at the *logical* invocation level (the whole
// frontier entering/leaving the operator), so their totals are identical
// for parallelism = 1 and parallelism = N. `shards` and `wall_ns`
// deliberately reflect the execution strategy (a sharded step reports one
// slice per shard and the summed slice time); `dedup_dropped` counts
// duplicates removed at that node and can differ for operators *nested
// inside* a sharded step, where per-shard dedup sees only its slice.
//
// Threading contract: AddGroup is thread-safe; within one group, AddOp
// calls are sequenced before any Record on that group (registration
// happens before evaluation starts); Record is thread-safe (atomic adds).
// Snapshot must only be called after all recording is done.

#ifndef NEPAL_OBS_QUERY_STATS_H_
#define NEPAL_OBS_QUERY_STATS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace nepal::obs {

/// Accumulated totals for one operator node.
struct OperatorStats {
  std::string group;  // range variable / phase the operator belongs to
  std::string op;     // operator rendering, e.g. "ExtendBlock{1,6} Vertical()"
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t dedup_dropped = 0;
  uint64_t shards = 0;       // shard slices executed (serial: = invocations)
  uint64_t wall_ns = 0;      // summed across shard slices
  uint64_t invocations = 0;  // logical invocations
  /// Optimizer row estimate for this operator's output, set at plan
  /// registration time; -1 when the plan carried no estimate. EXPLAIN
  /// ANALYZE reports it next to the actual rows_out.
  double est_rows = -1;

  /// Adds `other`'s numeric fields into this node (labels must match).
  void MergeCountsFrom(const OperatorStats& other);
  void AppendJson(std::string* out) const;
};

/// One additive sample recorded against an operator node.
struct OpSample {
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t dedup_dropped = 0;
  uint64_t shards = 0;
  uint64_t wall_ns = 0;
  uint64_t invocations = 0;
};

/// The finished, immutable stats of one query run.
struct QueryStats {
  std::string backend;
  std::string query;
  uint64_t wall_ns = 0;
  uint64_t result_rows = 0;
  int parallelism = 0;
  /// Summed MatchPlan::total_cost of the plans this run evaluated (the
  /// optimizer's anchor-scan estimate); 0 when no MATCHES plan ran.
  double plan_cost = 0;
  std::vector<OperatorStats> operators;  // group order, then op order

  /// Folds `other` in, matching operators by (group, op) label and
  /// appending unmatched ones; numeric fields are summed. Used by the
  /// bench recorder to aggregate stats across repeated executions.
  void MergeFrom(const QueryStats& other);

  /// Aligned EXPLAIN ANALYZE table.
  std::string ToString() const;
  /// {"backend":..,"query":..,"wall_ns":..,"result_rows":..,
  ///  "parallelism":..,"operators":[...]}
  void AppendJson(std::string* out) const;
};

/// Registration + recording handle for one group of operator nodes.
class QueryStatsGroup {
 public:
  explicit QueryStatsGroup(std::string name) : name_(std::move(name)) {}

  /// Registers an operator node; returns its id. `est_rows` is the
  /// optimizer's output-row estimate (-1: no estimate). Must not race with
  /// Record on the same group (see the threading contract above).
  int AddOp(std::string op, double est_rows = -1);

  /// Atomically folds `sample` into node `op_id`. Thread-safe.
  void Record(int op_id, const OpSample& sample);

  const std::string& name() const { return name_; }

 private:
  friend class QueryStatsBuilder;
  struct Node {
    std::string op;
    double est_rows = -1;  // fixed at registration, no atomics needed
    std::atomic<uint64_t> rows_in{0};
    std::atomic<uint64_t> rows_out{0};
    std::atomic<uint64_t> dedup_dropped{0};
    std::atomic<uint64_t> shards{0};
    std::atomic<uint64_t> wall_ns{0};
    std::atomic<uint64_t> invocations{0};
    Node(std::string o, double est) : op(std::move(o)), est_rows(est) {}
  };
  std::string name_;
  std::deque<Node> nodes_;  // deque: stable references across AddOp
};

/// Collects groups for one query run. Groups are snapshotted in creation
/// order, so the engine creates them deterministically (declaration order)
/// before any parallel evaluation starts.
class QueryStatsBuilder {
 public:
  /// Thread-safe; the returned handle stays valid for the builder's life.
  QueryStatsGroup* AddGroup(std::string name);

  /// Accumulates the MatchPlan cost of a structurally-anchored evaluation
  /// into the run's QueryStats::plan_cost. Thread-safe.
  void AddPlanCost(double cost);

  /// Flattens all groups into a QueryStats (operators only; the caller
  /// fills the query-level fields). Call after evaluation has finished.
  QueryStats Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::deque<QueryStatsGroup> groups_;
  double plan_cost_ = 0;
};

}  // namespace nepal::obs

#endif  // NEPAL_OBS_QUERY_STATS_H_
