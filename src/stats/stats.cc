#include "stats/stats.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/binary.h"

namespace nepal::stats {

namespace {

// Orders are pre-order indexes < number of classes; 12 bits cover 4096
// classes, far beyond any Nepal schema (the paper's largest has ~100).
constexpr int kFieldKeyBits = 12;

uint64_t FieldKey(int order, int field_index) {
  return (static_cast<uint64_t>(order) << kFieldKeyBits) |
         static_cast<uint64_t>(field_index);
}

uint64_t NodeDegreeKey(Uid uid, int edge_order, DegreeDir dir) {
  return (uid << 21) | (static_cast<uint64_t>(edge_order) << 1) |
         static_cast<uint64_t>(dir);
}

}  // namespace

GraphStats::GraphStats(const schema::Schema* schema) : schema_(schema) {
  if (schema_ == nullptr) return;
  num_orders_ = schema_->classes().size();
  current_.assign(num_orders_, 0);
  versions_.assign(num_orders_, 0);
  degree_totals_.assign(num_orders_ * num_orders_ * 2, 0);
  degree_max_.assign(num_orders_ * num_orders_ * 2, 0);
}

bool GraphStats::Trackable(const Value& v) {
  switch (v.kind()) {
    case ValueKind::kBool:
    case ValueKind::kInt:
    case ValueKind::kDouble:
    case ValueKind::kString:
    case ValueKind::kIp:
      return true;
    default:
      return false;
  }
}

GraphStats::FieldCounter* GraphStats::CounterFor(int order, int field_index,
                                                 bool create) {
  uint64_t key = FieldKey(order, field_index);
  auto it = field_counters_.find(key);
  if (it == field_counters_.end()) {
    if (!create) return nullptr;
    it = field_counters_.emplace(key, FieldCounter{}).first;
  }
  return &it->second;
}

const GraphStats::FieldCounter* GraphStats::CounterFor(int order,
                                                       int field_index) const {
  auto it = field_counters_.find(FieldKey(order, field_index));
  return it == field_counters_.end() ? nullptr : &it->second;
}

void GraphStats::CountValue(const schema::ClassDef* cls, int field_index,
                            const Value& v, int64_t delta) {
  if (!Trackable(v)) return;
  FieldCounter* c = CounterFor(cls->order(), field_index, /*create=*/true);
  if (c->saturated) return;
  if (delta > 0) {
    uint64_t& n = c->counts[v];
    n += static_cast<uint64_t>(delta);
    if (c->counts.size() > kMaxDistinctValues) {
      // Too many distinct values to track exactly; degrade this field to the
      // schema-hint selectivity for good (re-counting existing rows is not
      // possible from here).
      c->saturated = true;
      c->counts.clear();
    }
  } else {
    auto it = c->counts.find(v);
    if (it != c->counts.end()) {
      uint64_t d = static_cast<uint64_t>(-delta);
      if (it->second <= d) {
        c->counts.erase(it);
      } else {
        it->second -= d;
      }
    }
  }
}

void GraphStats::OnInsert(const schema::ClassDef* cls,
                          const std::vector<Value>& row) {
  if (schema_ == nullptr || cls == nullptr) return;
  size_t o = static_cast<size_t>(cls->order());
  if (o >= num_orders_) return;
  ++current_[o];
  ++versions_[o];
  for (size_t i = 0; i < row.size(); ++i) {
    CountValue(cls, static_cast<int>(i), row[i], +1);
  }
}

void GraphStats::OnRemove(const schema::ClassDef* cls,
                          const std::vector<Value>& row) {
  if (schema_ == nullptr || cls == nullptr) return;
  size_t o = static_cast<size_t>(cls->order());
  if (o >= num_orders_ || current_[o] == 0) return;
  --current_[o];
  for (size_t i = 0; i < row.size(); ++i) {
    CountValue(cls, static_cast<int>(i), row[i], -1);
  }
}

void GraphStats::OnUpdate(const schema::ClassDef* cls,
                          const std::vector<Value>& old_row,
                          const std::vector<Value>& new_row) {
  if (schema_ == nullptr || cls == nullptr) return;
  size_t o = static_cast<size_t>(cls->order());
  if (o >= num_orders_) return;
  ++versions_[o];
  size_t n = std::min(old_row.size(), new_row.size());
  for (size_t i = 0; i < n; ++i) {
    if (old_row[i] == new_row[i]) continue;
    CountValue(cls, static_cast<int>(i), old_row[i], -1);
    CountValue(cls, static_cast<int>(i), new_row[i], +1);
  }
}

void GraphStats::BumpDegree(Uid node, const schema::ClassDef* node_cls,
                            const schema::ClassDef* edge_cls, DegreeDir dir,
                            int64_t delta) {
  if (node_cls == nullptr) return;
  size_t no = static_cast<size_t>(node_cls->order());
  size_t eo = static_cast<size_t>(edge_cls->order());
  if (no >= num_orders_ || eo >= num_orders_) return;
  size_t cell = Cell(static_cast<int>(no), static_cast<int>(eo), dir);
  uint64_t& per_node = node_degrees_[NodeDegreeKey(node, edge_cls->order(), dir)];
  if (delta > 0) {
    degree_totals_[cell] += static_cast<uint64_t>(delta);
    per_node += static_cast<uint64_t>(delta);
    degree_max_[cell] = std::max(degree_max_[cell], per_node);
  } else {
    uint64_t d = static_cast<uint64_t>(-delta);
    degree_totals_[cell] -= std::min(degree_totals_[cell], d);
    per_node -= std::min(per_node, d);
  }
}

void GraphStats::OnEdgeLinked(const schema::ClassDef* edge_cls, Uid source,
                              const schema::ClassDef* source_cls, Uid target,
                              const schema::ClassDef* target_cls) {
  if (schema_ == nullptr || edge_cls == nullptr) return;
  BumpDegree(source, source_cls, edge_cls, DegreeDir::kOut, +1);
  BumpDegree(target, target_cls, edge_cls, DegreeDir::kIn, +1);
}

void GraphStats::OnEdgeUnlinked(const schema::ClassDef* edge_cls, Uid source,
                                const schema::ClassDef* source_cls, Uid target,
                                const schema::ClassDef* target_cls) {
  if (schema_ == nullptr || edge_cls == nullptr) return;
  BumpDegree(source, source_cls, edge_cls, DegreeDir::kOut, -1);
  BumpDegree(target, target_cls, edge_cls, DegreeDir::kIn, -1);
}

double GraphStats::Cardinality(const schema::ClassDef* cls) const {
  if (schema_ == nullptr || cls == nullptr) return 0.0;
  uint64_t total = 0;
  size_t end = std::min(static_cast<size_t>(cls->subtree_end()), num_orders_);
  for (size_t o = static_cast<size_t>(cls->order()); o < end; ++o) {
    total += current_[o];
  }
  return static_cast<double>(total);
}

std::optional<double> GraphStats::EqCount(const schema::ClassDef* cls,
                                          int field_index,
                                          const Value& v) const {
  if (schema_ == nullptr || cls == nullptr) return std::nullopt;
  if (!Trackable(v)) return std::nullopt;
  uint64_t total = 0;
  size_t end = std::min(static_cast<size_t>(cls->subtree_end()), num_orders_);
  for (size_t o = static_cast<size_t>(cls->order()); o < end; ++o) {
    const FieldCounter* c =
        CounterFor(static_cast<int>(o), field_index);
    if (c == nullptr) continue;  // no non-null value of this field here
    if (c->saturated) return std::nullopt;
    auto it = c->counts.find(v);
    if (it != c->counts.end()) total += it->second;
  }
  return static_cast<double>(total);
}

uint64_t GraphStats::EdgeCount(const schema::ClassDef* node_cls, DegreeDir dir,
                               const schema::ClassDef* edge_cls) const {
  if (schema_ == nullptr || node_cls == nullptr || edge_cls == nullptr) {
    return 0;
  }
  uint64_t total = 0;
  size_t nend =
      std::min(static_cast<size_t>(node_cls->subtree_end()), num_orders_);
  size_t eend =
      std::min(static_cast<size_t>(edge_cls->subtree_end()), num_orders_);
  for (size_t no = static_cast<size_t>(node_cls->order()); no < nend; ++no) {
    for (size_t eo = static_cast<size_t>(edge_cls->order()); eo < eend; ++eo) {
      total += degree_totals_[Cell(static_cast<int>(no),
                                   static_cast<int>(eo), dir)];
    }
  }
  return total;
}

double GraphStats::AvgDegree(const schema::ClassDef* node_cls, DegreeDir dir,
                             const schema::ClassDef* edge_cls) const {
  double nodes = Cardinality(node_cls);
  if (nodes <= 0.0) return 0.0;
  return static_cast<double>(EdgeCount(node_cls, dir, edge_cls)) / nodes;
}

uint64_t GraphStats::MaxDegree(const schema::ClassDef* node_cls, DegreeDir dir,
                               const schema::ClassDef* edge_cls) const {
  if (schema_ == nullptr || node_cls == nullptr || edge_cls == nullptr) {
    return 0;
  }
  uint64_t best = 0;
  size_t nend =
      std::min(static_cast<size_t>(node_cls->subtree_end()), num_orders_);
  size_t eend =
      std::min(static_cast<size_t>(edge_cls->subtree_end()), num_orders_);
  for (size_t no = static_cast<size_t>(node_cls->order()); no < nend; ++no) {
    for (size_t eo = static_cast<size_t>(edge_cls->order()); eo < eend; ++eo) {
      best = std::max(
          best, degree_max_[Cell(static_cast<int>(no), static_cast<int>(eo),
                                 dir)]);
    }
  }
  return best;
}

uint64_t GraphStats::VersionCount(const schema::ClassDef* cls) const {
  if (schema_ == nullptr || cls == nullptr) return 0;
  uint64_t total = 0;
  size_t end = std::min(static_cast<size_t>(cls->subtree_end()), num_orders_);
  for (size_t o = static_cast<size_t>(cls->order()); o < end; ++o) {
    total += versions_[o];
  }
  return total;
}

double GraphStats::HistoryDepth(const schema::ClassDef* cls) const {
  double cur = Cardinality(cls);
  if (cur <= 0.0) return 1.0;
  return std::max(1.0, static_cast<double>(VersionCount(cls)) / cur);
}

namespace {

// Bumped when the serialized layout changes; mismatches are Corruption, not
// silent misreads.
constexpr uint8_t kStatsCodecVersion = 1;

void PutU64Vector(std::string* out, const std::vector<uint64_t>& v) {
  PutFixed64(out, v.size());
  for (uint64_t x : v) PutFixed64(out, x);
}

Status ReadU64Vector(BinaryReader* reader, size_t expected_size,
                     std::vector<uint64_t>* v) {
  uint64_t n = 0;
  NEPAL_RETURN_NOT_OK(reader->ReadFixed64(&n));
  if (n != expected_size) {
    return Status::Corruption("stats vector sized " + std::to_string(n) +
                              ", schema implies " +
                              std::to_string(expected_size));
  }
  v->assign(expected_size, 0);
  for (size_t i = 0; i < expected_size; ++i) {
    NEPAL_RETURN_NOT_OK(reader->ReadFixed64(&(*v)[i]));
  }
  return Status::OK();
}

}  // namespace

void GraphStats::SerializeTo(std::string* out) const {
  PutFixed8(out, kStatsCodecVersion);
  PutFixed64(out, num_orders_);
  PutU64Vector(out, current_);
  PutU64Vector(out, versions_);
  PutU64Vector(out, degree_totals_);
  PutU64Vector(out, degree_max_);

  // node_degrees_ in ascending key order.
  std::vector<std::pair<uint64_t, uint64_t>> degrees(node_degrees_.begin(),
                                                     node_degrees_.end());
  std::sort(degrees.begin(), degrees.end());
  PutFixed64(out, degrees.size());
  for (const auto& [key, count] : degrees) {
    PutFixed64(out, key);
    PutFixed64(out, count);
  }

  // field_counters_ in ascending key order; each counter's values in
  // ascending Value order (kind() breaks cross-kind numeric ties so equal
  // maps always render identically).
  std::vector<uint64_t> counter_keys;
  counter_keys.reserve(field_counters_.size());
  for (const auto& [key, counter] : field_counters_) {
    counter_keys.push_back(key);
  }
  std::sort(counter_keys.begin(), counter_keys.end());
  PutFixed64(out, counter_keys.size());
  for (uint64_t key : counter_keys) {
    const FieldCounter& counter = field_counters_.at(key);
    PutFixed64(out, key);
    PutFixed8(out, counter.saturated ? 1 : 0);
    std::vector<std::pair<const Value*, uint64_t>> values;
    values.reserve(counter.counts.size());
    for (const auto& [v, n] : counter.counts) values.emplace_back(&v, n);
    std::sort(values.begin(), values.end(),
              [](const auto& a, const auto& b) {
                int cmp = a.first->Compare(*b.first);
                if (cmp != 0) return cmp < 0;
                return a.first->kind() < b.first->kind();
              });
    PutFixed64(out, values.size());
    for (const auto& [v, n] : values) {
      v->EncodeBinary(out);
      PutFixed64(out, n);
    }
  }
}

Result<GraphStats> GraphStats::DeserializeFrom(const schema::Schema* schema,
                                               std::string_view data) {
  if (schema == nullptr) {
    return Status::InvalidArgument("stats deserialization needs a schema");
  }
  BinaryReader reader(data);
  uint8_t version = 0;
  NEPAL_RETURN_NOT_OK(reader.ReadFixed8(&version));
  if (version != kStatsCodecVersion) {
    return Status::Corruption("stats codec version " +
                              std::to_string(version) + " (expected " +
                              std::to_string(kStatsCodecVersion) + ")");
  }
  GraphStats stats(schema);
  uint64_t num_orders = 0;
  NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&num_orders));
  if (num_orders != stats.num_orders_) {
    return Status::Corruption(
        "stats snapshot covers " + std::to_string(num_orders) +
        " classes, schema has " + std::to_string(stats.num_orders_));
  }
  size_t n = stats.num_orders_;
  NEPAL_RETURN_NOT_OK(ReadU64Vector(&reader, n, &stats.current_));
  NEPAL_RETURN_NOT_OK(ReadU64Vector(&reader, n, &stats.versions_));
  NEPAL_RETURN_NOT_OK(ReadU64Vector(&reader, n * n * 2,
                                    &stats.degree_totals_));
  NEPAL_RETURN_NOT_OK(ReadU64Vector(&reader, n * n * 2, &stats.degree_max_));

  uint64_t degree_entries = 0;
  NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&degree_entries));
  for (uint64_t i = 0; i < degree_entries; ++i) {
    uint64_t key = 0, count = 0;
    NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&key));
    NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&count));
    stats.node_degrees_[key] = count;
  }

  uint64_t counter_entries = 0;
  NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&counter_entries));
  for (uint64_t i = 0; i < counter_entries; ++i) {
    uint64_t key = 0;
    NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&key));
    FieldCounter& counter = stats.field_counters_[key];
    uint8_t saturated = 0;
    NEPAL_RETURN_NOT_OK(reader.ReadFixed8(&saturated));
    counter.saturated = saturated != 0;
    uint64_t value_entries = 0;
    NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&value_entries));
    for (uint64_t j = 0; j < value_entries; ++j) {
      NEPAL_ASSIGN_OR_RETURN(Value v, Value::DecodeBinary(&reader));
      uint64_t count = 0;
      NEPAL_RETURN_NOT_OK(reader.ReadFixed64(&count));
      counter.counts.emplace(std::move(v), count);
    }
  }
  if (!reader.done()) {
    return Status::Corruption("stats snapshot has " +
                              std::to_string(reader.remaining()) +
                              " trailing byte(s)");
  }
  return stats;
}

std::string GraphStats::ToString() const {
  std::string out;
  if (schema_ == nullptr) return "stats: unbound\n";
  char line[256];
  for (const schema::ClassDef* cls : schema_->classes()) {
    size_t o = static_cast<size_t>(cls->order());
    if (o >= num_orders_ || versions_[o] == 0) continue;
    std::snprintf(line, sizeof(line),
                  "%-24s current=%" PRIu64 " versions=%" PRIu64 "\n",
                  cls->name().c_str(), current_[o], versions_[o]);
    out += line;
  }
  return out;
}

}  // namespace nepal::stats
