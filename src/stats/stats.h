// GraphStats: incrementally maintained database statistics.
//
// The paper's planner picks anchors with "database statistics if available,
// otherwise schema hints" (Section 5.1). This subsystem is the "statistics"
// half: every write that flows through a StorageBackend updates
//
//   - per-class current-snapshot cardinalities,
//   - per-(node class, direction, edge class) edge totals, giving average
//     and maximum degree (traversal fan-out),
//   - exact per-value counters for scalar fields (predicate selectivity),
//     bounded per field and degraded to a schema hint once a field exceeds
//     the distinct-value cap,
//   - version counts per class (history depth: how much wider a historical
//     scan is than a current-snapshot scan).
//
// All hooks are called on the write path, which GraphDb serializes under an
// exclusive lock; reads happen under the shared lock, so no internal
// synchronization is needed. Estimates are over the *current* snapshot —
// historical scaling is applied by the optimizer via HistoryDepth().
//
// Classes are addressed by their pre-order index (ClassDef::order()), so a
// class-subtree aggregate is a contiguous range sum.

#ifndef NEPAL_STATS_STATS_H_
#define NEPAL_STATS_STATS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/value.h"
#include "schema/class_def.h"
#include "schema/schema.h"

namespace nepal::stats {

enum class DegreeDir { kOut = 0, kIn = 1 };

class GraphStats {
 public:
  /// Distinct values tracked per (class, field) before the counter saturates
  /// and the field permanently falls back to the schema-hint selectivity.
  static constexpr size_t kMaxDistinctValues = 1024;

  GraphStats() = default;
  explicit GraphStats(const schema::Schema* schema);

  // ---- Maintenance hooks (write path; caller holds the writer lock) ----

  /// A new element (node or edge) of exactly `cls` became current.
  void OnInsert(const schema::ClassDef* cls, const std::vector<Value>& row);
  /// The current version of a `cls` element was closed without a successor.
  void OnRemove(const schema::ClassDef* cls, const std::vector<Value>& row);
  /// A new version replaced the current one (field update; cardinality is
  /// unchanged, value counters move, version count grows).
  void OnUpdate(const schema::ClassDef* cls, const std::vector<Value>& old_row,
                const std::vector<Value>& new_row);
  /// An edge of exactly `edge_cls` now links source -> target.
  void OnEdgeLinked(const schema::ClassDef* edge_cls, Uid source,
                    const schema::ClassDef* source_cls, Uid target,
                    const schema::ClassDef* target_cls);
  void OnEdgeUnlinked(const schema::ClassDef* edge_cls, Uid source,
                      const schema::ClassDef* source_cls, Uid target,
                      const schema::ClassDef* target_cls);

  // ---- Estimates (read path) ----

  /// Current-snapshot cardinality of the class subtree.
  double Cardinality(const schema::ClassDef* cls) const;

  /// Exact number of current rows in the `cls` subtree whose field
  /// `field_index` equals `v`, or nullopt when the statistic is unavailable
  /// (no schema bound, counter saturated, or `v` is not a trackable scalar).
  std::optional<double> EqCount(const schema::ClassDef* cls, int field_index,
                                const Value& v) const;

  /// Average number of `edge_cls`-subtree edges per current `node_cls`
  /// element in the given direction (kOut: edges whose source is the node).
  double AvgDegree(const schema::ClassDef* node_cls, DegreeDir dir,
                   const schema::ClassDef* edge_cls) const;

  /// High-water mark of the per-node degree (never decremented; an upper
  /// bound usable for worst-case fan-out).
  uint64_t MaxDegree(const schema::ClassDef* node_cls, DegreeDir dir,
                     const schema::ClassDef* edge_cls) const;

  /// Total current `edge_cls`-subtree edges from the `node_cls` subtree.
  uint64_t EdgeCount(const schema::ClassDef* node_cls, DegreeDir dir,
                     const schema::ClassDef* edge_cls) const;

  /// Versions stored per current element of the subtree (>= 1 once any row
  /// exists): how much a historical view widens a scan of this class.
  double HistoryDepth(const schema::ClassDef* cls) const;

  /// Total versions ever opened for the subtree (current + history).
  uint64_t VersionCount(const schema::ClassDef* cls) const;

  bool bound() const { return schema_ != nullptr; }
  const schema::Schema* schema() const { return schema_; }

  /// One line per non-empty class: cardinality, versions, degree totals.
  std::string ToString() const;

  // ---- Checkpoint codec (see src/persist) ----

  /// Appends an exact, deterministic binary snapshot of every maintained
  /// statistic (unordered maps are written in sorted key order, so equal
  /// stats always serialize to equal bytes). Deserializing it yields a
  /// GraphStats whose every estimate — EstimateScan inputs included — is
  /// identical to the live-maintained one, without replaying any element.
  void SerializeTo(std::string* out) const;
  /// Inverse of SerializeTo against the same schema. Fails with Corruption
  /// on truncation, version mismatch, or a class-count mismatch (the blob
  /// belongs to a different schema).
  static Result<GraphStats> DeserializeFrom(const schema::Schema* schema,
                                            std::string_view data);

 private:
  struct FieldCounter {
    std::unordered_map<Value, uint64_t, ValueHash> counts;
    bool saturated = false;
  };

  static bool Trackable(const Value& v);
  FieldCounter* CounterFor(int order, int field_index, bool create);
  const FieldCounter* CounterFor(int order, int field_index) const;
  void CountValue(const schema::ClassDef* cls, int field_index,
                  const Value& v, int64_t delta);
  void BumpDegree(Uid node, const schema::ClassDef* node_cls,
                  const schema::ClassDef* edge_cls, DegreeDir dir,
                  int64_t delta);
  size_t Cell(int node_order, int edge_order, DegreeDir dir) const {
    return (static_cast<size_t>(node_order) * num_orders_ +
            static_cast<size_t>(edge_order)) *
               2 +
           static_cast<size_t>(dir);
  }

  const schema::Schema* schema_ = nullptr;
  size_t num_orders_ = 0;

  // Indexed by ClassDef::order().
  std::vector<uint64_t> current_;
  std::vector<uint64_t> versions_;

  // Dense (node order x edge order x dir) matrices; subtree aggregates are
  // rectangle sums. Sized num_orders_^2 * 2 (class counts are small).
  std::vector<uint64_t> degree_totals_;
  std::vector<uint64_t> degree_max_;

  // Per-node degree counters feeding the max watermark.
  // Key: (uid << 21) | (edge order << 1) | dir  (uids are sequential).
  std::unordered_map<uint64_t, uint64_t> node_degrees_;

  // Key: (order << 12) | field index.
  std::unordered_map<uint64_t, FieldCounter> field_counters_;
};

}  // namespace nepal::stats

#endif  // NEPAL_STATS_STATS_H_
