#include "temporal/snapshot.h"

#include <set>

namespace nepal::temporal {

using storage::ElementVersion;

std::string SnapshotStats::ToString() const {
  return "nodes +" + std::to_string(nodes_inserted) + " ~" +
         std::to_string(nodes_updated) + " -" + std::to_string(nodes_deleted) +
         ", edges +" + std::to_string(edges_inserted) + " ~" +
         std::to_string(edges_updated) + " -" + std::to_string(edges_deleted) +
         ", unchanged " + std::to_string(unchanged);
}

Uid SnapshotUpdater::Lookup(const std::string& key) const {
  auto node_it = node_keys_.find(key);
  if (node_it != node_keys_.end()) return node_it->second;
  auto edge_it = edge_keys_.find(key);
  if (edge_it != edge_keys_.end()) return edge_it->second.uid;
  return kInvalidUid;
}

namespace {

/// Field values that differ between the stored row and the new payload.
Result<schema::FieldValues> DiffFields(const storage::GraphDb& db,
                                       const ElementVersion& current,
                                       const std::string& class_name,
                                       const schema::FieldValues& fields) {
  NEPAL_ASSIGN_OR_RETURN(const schema::ClassDef* cls,
                         db.schema().GetClass(class_name));
  if (cls != current.cls) {
    return Status::InvalidArgument(
        "snapshot element changed class from " + current.cls->name() + " to " +
        class_name + "; reclassification requires delete + insert");
  }
  NEPAL_ASSIGN_OR_RETURN(std::vector<Value> row,
                         schema::ValidateRecord(db.schema(), *cls, fields));
  schema::FieldValues changed;
  for (size_t i = 0; i < row.size(); ++i) {
    if (!(row[i] == current.fields[i])) {
      changed.emplace_back(cls->fields()[i].name, row[i]);
    }
  }
  return changed;
}

}  // namespace

Result<SnapshotStats> SnapshotUpdater::Apply(const Snapshot& snapshot,
                                             Timestamp t) {
  NEPAL_RETURN_NOT_OK(db_->SetTime(t));
  SnapshotStats stats;

  std::set<std::string> seen_nodes, seen_edges;

  for (const SnapshotNode& node : snapshot.nodes) {
    if (!seen_nodes.insert(node.key).second) {
      return Status::InvalidArgument("duplicate node key '" + node.key +
                                     "' in snapshot");
    }
    auto it = node_keys_.find(node.key);
    if (it == node_keys_.end()) {
      NEPAL_ASSIGN_OR_RETURN(Uid uid,
                             db_->AddNode(node.class_name, node.fields));
      node_keys_[node.key] = uid;
      ++stats.nodes_inserted;
      continue;
    }
    NEPAL_ASSIGN_OR_RETURN(ElementVersion current, db_->GetCurrent(it->second));
    NEPAL_ASSIGN_OR_RETURN(
        schema::FieldValues changed,
        DiffFields(*db_, current, node.class_name, node.fields));
    if (changed.empty()) {
      ++stats.unchanged;
    } else {
      NEPAL_RETURN_NOT_OK(db_->UpdateElement(it->second, changed));
      ++stats.nodes_updated;
    }
  }

  for (const SnapshotEdge& edge : snapshot.edges) {
    if (!seen_edges.insert(edge.key).second) {
      return Status::InvalidArgument("duplicate edge key '" + edge.key +
                                     "' in snapshot");
    }
    if (!seen_nodes.count(edge.source_key) ||
        !seen_nodes.count(edge.target_key)) {
      return Status::InvalidArgument("edge '" + edge.key +
                                     "' references a node key absent from "
                                     "this snapshot");
    }
    auto src_it = node_keys_.find(edge.source_key);
    auto tgt_it = node_keys_.find(edge.target_key);
    auto it = edge_keys_.find(edge.key);
    if (it != edge_keys_.end() && (it->second.source != src_it->second ||
                                   it->second.target != tgt_it->second)) {
      // Rewired edge: a topology change, modeled as delete + insert.
      NEPAL_RETURN_NOT_OK(db_->RemoveElement(it->second.uid));
      edge_keys_.erase(it);
      it = edge_keys_.end();
      ++stats.edges_deleted;
    }
    if (it == edge_keys_.end()) {
      NEPAL_ASSIGN_OR_RETURN(
          Uid uid, db_->AddEdge(edge.class_name, src_it->second,
                                tgt_it->second, edge.fields));
      edge_keys_[edge.key] = EdgeEntry{uid, src_it->second, tgt_it->second};
      ++stats.edges_inserted;
      continue;
    }
    NEPAL_ASSIGN_OR_RETURN(ElementVersion current,
                           db_->GetCurrent(it->second.uid));
    NEPAL_ASSIGN_OR_RETURN(
        schema::FieldValues changed,
        DiffFields(*db_, current, edge.class_name, edge.fields));
    if (changed.empty()) {
      ++stats.unchanged;
    } else {
      NEPAL_RETURN_NOT_OK(db_->UpdateElement(it->second.uid, changed));
      ++stats.edges_updated;
    }
  }

  // Deletions: managed elements absent from this snapshot. Edges first so
  // node cascades do not double-delete.
  for (auto it = edge_keys_.begin(); it != edge_keys_.end();) {
    if (seen_edges.count(it->first)) {
      ++it;
      continue;
    }
    // The edge may already be gone via a node cascade below in a previous
    // call; tolerate NotFound.
    Status st = db_->RemoveElement(it->second.uid);
    if (!st.ok() && st.code() != StatusCode::kNotFound) return st;
    if (st.ok()) ++stats.edges_deleted;
    it = edge_keys_.erase(it);
  }
  for (auto it = node_keys_.begin(); it != node_keys_.end();) {
    if (seen_nodes.count(it->first)) {
      ++it;
      continue;
    }
    NEPAL_RETURN_NOT_OK(db_->RemoveElement(it->second));
    ++stats.nodes_deleted;
    it = node_keys_.erase(it);
  }
  return stats;
}

}  // namespace nepal::temporal
