// Update-by-snapshot service.
//
// Several of the paper's data sources (cloud management systems, legacy
// inventories) deliver periodic full snapshots rather than update streams;
// the graph data management layer diffs each snapshot against the stored
// current state and issues the implied inserts, updates and deletes — which
// is exactly how the 60-day histories of Section 6 are built.
//
// Snapshot elements carry a source-assigned external key (sources do not
// know Nepal uids); the updater owns the key -> uid mapping.

#ifndef NEPAL_TEMPORAL_SNAPSHOT_H_
#define NEPAL_TEMPORAL_SNAPSHOT_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "storage/graphdb.h"

namespace nepal::temporal {

struct SnapshotNode {
  std::string key;        // source-assigned stable identifier
  std::string class_name;
  schema::FieldValues fields;
};

struct SnapshotEdge {
  std::string key;
  std::string class_name;
  std::string source_key;
  std::string target_key;
  schema::FieldValues fields;
};

struct Snapshot {
  std::vector<SnapshotNode> nodes;
  std::vector<SnapshotEdge> edges;
};

struct SnapshotStats {
  size_t nodes_inserted = 0;
  size_t nodes_updated = 0;
  size_t nodes_deleted = 0;
  size_t edges_inserted = 0;
  size_t edges_updated = 0;
  size_t edges_deleted = 0;
  size_t unchanged = 0;

  std::string ToString() const;
};

class SnapshotUpdater {
 public:
  /// `db` must outlive the updater. The updater assumes it is the only
  /// writer for the elements it manages.
  explicit SnapshotUpdater(storage::GraphDb* db) : db_(db) {}

  /// Applies `snapshot` as the source's full state at time `t`:
  ///  - elements with unknown keys are inserted,
  ///  - known elements with differing field values are updated
  ///    (edge endpoint changes are modeled as delete + insert),
  ///  - known elements absent from the snapshot are deleted.
  Result<SnapshotStats> Apply(const Snapshot& snapshot, Timestamp t);

  /// uid previously assigned to a source key, or kInvalidUid.
  Uid Lookup(const std::string& key) const;

 private:
  storage::GraphDb* db_;
  std::unordered_map<std::string, Uid> node_keys_;
  struct EdgeEntry {
    Uid uid;
    Uid source;
    Uid target;
  };
  std::unordered_map<std::string, EdgeEntry> edge_keys_;
};

}  // namespace nepal::temporal

#endif  // NEPAL_TEMPORAL_SNAPSHOT_H_
