#include "temporal/evolution.h"

#include <algorithm>

namespace nepal::temporal {

using storage::ElementVersion;

PathEvolution TrackPathEvolution(const storage::StorageBackend& backend,
                                 const std::vector<Uid>& uids,
                                 const Interval& range) {
  PathEvolution out;
  bool first_element = true;
  for (Uid uid : uids) {
    ElementEvolution evo;
    evo.uid = uid;
    std::vector<ElementVersion> versions;
    backend.Get(uid, storage::TimeView::Range(range),
                [&](const ElementVersion& v) { versions.push_back(v); });
    std::sort(versions.begin(), versions.end(),
              [](const ElementVersion& a, const ElementVersion& b) {
                return a.valid.start < b.valid.start;
              });
    for (size_t i = 0; i < versions.size(); ++i) {
      evo.cls = versions[i].cls;
      evo.existence.Add(versions[i].valid.Intersect(range));
      if (i == 0) continue;
      const ElementVersion& prev = versions[i - 1];
      const ElementVersion& cur = versions[i];
      // A gap between versions means the element was deleted and later
      // re-created; that shows in `existence`, not as a field transition.
      if (prev.valid.end != cur.valid.start) continue;
      ElementTransition tr;
      tr.at = cur.valid.start;
      for (size_t f = 0; f < cur.fields.size(); ++f) {
        if (!(prev.fields[f] == cur.fields[f])) {
          tr.changes.push_back(FieldChange{cur.cls->fields()[f].name,
                                           prev.fields[f], cur.fields[f]});
        }
      }
      if (!tr.changes.empty()) evo.transitions.push_back(std::move(tr));
    }
    // Path existence: running intersection of element existence sets.
    if (first_element) {
      out.path_existence = evo.existence;
      first_element = false;
    } else {
      IntervalSet intersection;
      for (const Interval& a : out.path_existence.intervals()) {
        for (const Interval& b : evo.existence.intervals()) {
          Interval iv = a.Intersect(b);
          if (!iv.empty()) intersection.Add(iv);
        }
      }
      out.path_existence = std::move(intersection);
    }
    out.elements.push_back(std::move(evo));
  }
  return out;
}

}  // namespace nepal::temporal
