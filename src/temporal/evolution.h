// Path-evolution queries (Section 4): given a specific pathway (by element
// uids), report how the field values of its nodes and edges changed over a
// time range — a special case of the time-range query used by visualization
// applications to drill into one returned path.

#ifndef NEPAL_TEMPORAL_EVOLUTION_H_
#define NEPAL_TEMPORAL_EVOLUTION_H_

#include <string>
#include <vector>

#include "storage/backend.h"

namespace nepal::temporal {

struct FieldChange {
  std::string field;
  Value before;
  Value after;
};

/// One version-to-version transition of an element.
struct ElementTransition {
  Timestamp at;  // start of the new version
  std::vector<FieldChange> changes;
};

struct ElementEvolution {
  Uid uid = kInvalidUid;
  const schema::ClassDef* cls = nullptr;
  /// Interval(s) during which the element existed inside the query range.
  IntervalSet existence;
  std::vector<ElementTransition> transitions;
};

struct PathEvolution {
  std::vector<ElementEvolution> elements;
  /// Intersection of all elements' existence: when the whole path existed.
  IntervalSet path_existence;
};

/// Tracks the evolution of the path given by `uids` over `range`.
/// Elements with no version in the range get an empty existence set.
PathEvolution TrackPathEvolution(const storage::StorageBackend& backend,
                                 const std::vector<Uid>& uids,
                                 const Interval& range);

}  // namespace nepal::temporal

#endif  // NEPAL_TEMPORAL_EVOLUTION_H_
