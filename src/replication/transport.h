// Replication transports: how a follower receives a primary's log stream.
//
// The stream itself is defined by DurableStore::Subscribe (a checkpoint
// image followed by every committed WAL frame after it, in commit order);
// a transport only moves that stream between processes. Two
// implementations:
//
//  - InProcessTransport wraps a WalSubscription directly. Deterministic
//    and loss-free; what the tests and the throughput benchmark use.
//  - FdTransport reads the wire encoding below from a file descriptor
//    (pipe, FIFO, socketpair, socket). WalShipper is the matching primary
//    side: it pumps a subscription into a descriptor from its own thread.
//
// Wire encoding (little-endian, CRC32C masked as in the WAL):
//
//   hello:  "NPLSHP01" | u64 start_seq | u64 image_len
//           | image bytes | u32 masked_crc(image)
//   frame:  u8 0x02 | u64 segment_seq | i64 shipped_at_us
//           | u32 payload_len | u32 masked_crc(payload) | payload bytes
//   traced: u8 0x03 | u64 segment_seq | i64 shipped_at_us
//           | u64 trace_id | u32 root_span
//           | u32 payload_len | u32 masked_crc(payload) | payload bytes
//
// 0x03 is the optional trace annotation (obs/trace.h): it is emitted only
// for frames whose commit was traced on the primary, so untraced traffic
// remains byte-identical to the pre-tracing protocol.
//
// EOF mid-stream surfaces as kUnavailable("peer closed") — for a
// warm-standby follower that is the promotion trigger, not an error.
// The byte-level codec itself lives in replication/wire.h, shared with
// the socket fleet (ReplicationListener / ReplicaStore::Connect).

#ifndef NEPAL_REPLICATION_TRANSPORT_H_
#define NEPAL_REPLICATION_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/status.h"
#include "persist/durable_store.h"
#include "replication/socket_util.h"

namespace nepal::replication {

/// The bootstrap half of the stream: what the follower restores before it
/// starts applying frames.
struct ReplicationHello {
  std::string checkpoint_image;
  uint64_t start_seq = 0;
};

class ReplicationTransport {
 public:
  virtual ~ReplicationTransport() = default;

  /// Delivers the bootstrap image. Called once, before any Next().
  virtual Result<ReplicationHello> Handshake() = 0;

  /// Delivers the next committed frame: true with a frame, false on
  /// timeout (keep polling), kUnavailable when the stream has ended
  /// (primary gone, or the subscription lagged beyond its buffer).
  virtual Result<bool> Next(persist::WalShipFrame* frame,
                            std::chrono::milliseconds timeout) = 0;
};

/// Same-process transport: the follower consumes the primary's
/// subscription directly. Zero-copy of the stream semantics — no wire
/// encoding involved.
class InProcessTransport final : public ReplicationTransport {
 public:
  static Result<std::unique_ptr<InProcessTransport>> Connect(
      persist::DurableStore& primary, persist::SubscribeOptions options = {});
  ~InProcessTransport() override;

  Result<ReplicationHello> Handshake() override;
  Result<bool> Next(persist::WalShipFrame* frame,
                    std::chrono::milliseconds timeout) override;

 private:
  explicit InProcessTransport(
      std::shared_ptr<persist::WalSubscription> subscription);

  std::shared_ptr<persist::WalSubscription> subscription_;
};

/// Reads the wire encoding from a descriptor the caller connected (FIFO,
/// socketpair, socket). Takes ownership of `fd`; SocketUtil (OwnedFd,
/// ReadFully, PollReadable) carries the descriptor lifecycle.
class FdTransport final : public ReplicationTransport {
 public:
  explicit FdTransport(int fd) : fd_(fd) { IgnoreSigPipe(); }
  explicit FdTransport(OwnedFd fd) : fd_(std::move(fd)) { IgnoreSigPipe(); }

  Result<ReplicationHello> Handshake() override;
  Result<bool> Next(persist::WalShipFrame* frame,
                    std::chrono::milliseconds timeout) override;

 private:
  OwnedFd fd_;
};

/// Primary-side pump for FdTransport: subscribes to the store and writes
/// hello + frames into the descriptor from its own thread. Takes ownership
/// of `fd`.
class WalShipper {
 public:
  static Result<std::unique_ptr<WalShipper>> Start(
      persist::DurableStore& store, int fd,
      persist::SubscribeOptions options = {});
  ~WalShipper();

  /// Stops the pump thread and closes the descriptor. Idempotent.
  void Stop();

  /// OK while pumping; the terminal error once the thread has exited
  /// (kUnavailable when the store closed — the normal shutdown path).
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }
  uint64_t frames_shipped() const {
    return frames_shipped_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_shipped() const {
    return bytes_shipped_.load(std::memory_order_relaxed);
  }

 private:
  WalShipper(std::shared_ptr<persist::WalSubscription> subscription, int fd);
  void Run();

  std::shared_ptr<persist::WalSubscription> subscription_;
  OwnedFd fd_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> frames_shipped_{0};
  std::atomic<uint64_t> bytes_shipped_{0};
  mutable std::mutex mu_;
  Status status_;
  std::thread thread_;
};

}  // namespace nepal::replication

#endif  // NEPAL_REPLICATION_TRANSPORT_H_
