#include "replication/listener.h"

#include "common/binary.h"
#include "common/time.h"
#include "obs/metrics.h"
#include "replication/wire.h"

namespace nepal::replication {

ReplicationListener::ReplicationListener(persist::DurableStore& store,
                                         SocketAddress address,
                                         OwnedFd listen_fd,
                                         ListenerOptions options)
    : store_(store),
      address_(std::move(address)),
      listen_fd_(std::move(listen_fd)),
      options_(options) {}

Result<std::unique_ptr<ReplicationListener>> ReplicationListener::Start(
    persist::DurableStore& store, const SocketAddress& address,
    ListenerOptions options) {
  IgnoreSigPipe();
  NEPAL_ASSIGN_OR_RETURN(OwnedFd listen_fd, ListenOn(address));
  SocketAddress bound = address;
  if (!address.is_unix && address.port == 0) {
    NEPAL_ASSIGN_OR_RETURN(bound, LocalAddress(listen_fd.get()));
  }
  auto listener = std::unique_ptr<ReplicationListener>(new ReplicationListener(
      store, std::move(bound), std::move(listen_fd), options));
  listener->accept_.Start(
      [l = listener.get()](const std::atomic<bool>& stop) {
        l->AcceptLoop(stop);
      });
  return listener;
}

ReplicationListener::~ReplicationListener() { Stop(); }

void ReplicationListener::Stop() {
  stopping_.store(true, std::memory_order_release);
  accept_.Stop();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& session : sessions_) {
    persist::WalSubscription* sub =
        session->sub_raw.load(std::memory_order_acquire);
    if (sub != nullptr) sub->Cancel();
    ShutdownSocket(session->fd.get());
  }
  // Session threads never take sessions_mu_, so joining under it is safe.
  for (auto& session : sessions_) {
    if (session->thread.joinable()) session->thread.join();
  }
  sessions_.clear();
}

void ReplicationListener::AcceptLoop(const std::atomic<bool>& stop) {
  while (!stop.load(std::memory_order_acquire)) {
    Result<OwnedFd> accepted =
        AcceptOn(listen_fd_.get(),
                 std::chrono::milliseconds(options_.accept_poll_ms));
    if (!accepted.ok()) break;  // listen socket gone; nothing to serve
    std::lock_guard<std::mutex> lock(sessions_mu_);
    ReapDoneSessionsLocked();
    if (!accepted->valid()) continue;  // poll timeout
    sessions_accepted_.fetch_add(1, std::memory_order_relaxed);
    obs::MetricsRegistry::Global()
        .GetCounter("nepal.replication.listener.sessions")
        ->Add(1);
    auto session = std::make_unique<Session>();
    session->fd = std::move(*accepted);
    Session* raw = session.get();
    session->thread = std::thread([this, raw] { RunSession(raw); });
    sessions_.push_back(std::move(session));
  }
}

void ReplicationListener::ReapDoneSessionsLocked() {
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = sessions_.erase(it);
    } else {
      ++it;
    }
  }
}

Status ReplicationListener::HandshakeSession(Session* session) {
  wire::FollowerHello hello;
  NEPAL_RETURN_NOT_OK(wire::ReadFollowerHello(session->fd.get(), &hello));
  session->name = hello.name.empty() ? "anonymous" : hello.name;

  auto& reg = obs::MetricsRegistry::Global();
  if (hello.resume_seq != 0) {
    persist::SubscribeOptions resume = options_.subscribe;
    resume.resume_seq = hello.resume_seq;
    resume.resume_skip_records = hello.resume_skip_records;
    Result<std::shared_ptr<persist::WalSubscription>> sub =
        store_.Subscribe(resume);
    if (sub.ok()) {
      session->sub = std::move(*sub);
      session->sub_raw.store(session->sub.get(), std::memory_order_release);
      session->resumed = true;
      resumes_.fetch_add(1, std::memory_order_relaxed);
      reg.GetCounter("nepal.replication.listener.resumes")->Add(1);
      std::string response;
      PutFixed8(&response, wire::kModeResume);
      PutFixed64(&response, hello.resume_seq);
      return WriteFully(session->fd.get(), response.data(), response.size());
    }
    // Pruned beyond retention (kNotFound) or an implausible position
    // (e.g. a follower re-pointed at a different primary): fall back to a
    // full bootstrap rather than refusing the follower.
  }
  NEPAL_ASSIGN_OR_RETURN(session->sub, store_.Subscribe(options_.subscribe));
  session->sub_raw.store(session->sub.get(), std::memory_order_release);
  bootstraps_.fetch_add(1, std::memory_order_relaxed);
  reg.GetCounter("nepal.replication.listener.rebootstraps")->Add(1);
  std::string response;
  PutFixed8(&response, wire::kModeBootstrap);
  wire::HelloV1 v1;
  v1.checkpoint_image = session->sub->checkpoint_image();
  v1.start_seq = session->sub->start_seq();
  wire::AppendHelloV1(v1, &response);
  session->bytes_shipped.fetch_add(response.size(),
                                   std::memory_order_relaxed);
  return WriteFully(session->fd.get(), response.data(), response.size());
}

void ReplicationListener::RunSession(Session* session) {
  Status status = HandshakeSession(session);
  if (status.ok()) {
    session->named.store(true, std::memory_order_release);
    auto& reg = obs::MetricsRegistry::Global();
    const std::string prefix =
        "nepal.replication.follower." + session->name + ".";
    session->m_frames = reg.GetCounter(prefix + "frames_shipped");
    session->m_bytes = reg.GetCounter(prefix + "bytes_shipped");
    session->m_acks = reg.GetCounter(prefix + "acks");
    session->g_connected = reg.GetGauge(prefix + "connected");
    session->g_acked = reg.GetGauge(prefix + "acked_records");
    session->g_lag = reg.GetGauge(prefix + "lag_records");
    session->g_staleness = reg.GetGauge(prefix + "staleness_ms");
    session->g_connected->Set(1);
    session->ack_id = store_.RegisterAckSource(session->name);
    while (!stopping_.load(std::memory_order_acquire)) {
      status = PumpSession(session);
      if (!status.ok()) break;
    }
    store_.UnregisterAckSource(session->ack_id);
    session->g_connected->Set(0);
  }
  // The follower reconnects and resumes; nothing to do with `status`
  // beyond ending this session.
  session->done.store(true, std::memory_order_release);
}

Status ReplicationListener::PumpSession(Session* session) {
  // Ship: one bounded subscription poll, then drain whatever else is
  // already buffered so a commit group goes out in one write.
  persist::WalShipFrame frame;
  NEPAL_ASSIGN_OR_RETURN(
      bool got, session->sub->Next(
                    &frame, std::chrono::milliseconds(options_.frame_poll_ms)));
  if (got) {
    std::string out;
    size_t frames = 0;
    while (true) {
      ++session->session_frames;
      if (frame.primary_records != 0) {
        session->stamps.emplace_back(session->session_frames,
                                     frame.primary_records);
      }
      wire::AppendFrame(frame, &out);
      ++frames;
      if (frames >= options_.max_batch_frames) break;
      NEPAL_ASSIGN_OR_RETURN(
          bool more, session->sub->Next(&frame, std::chrono::milliseconds(0)));
      if (!more) break;
    }
    NEPAL_RETURN_NOT_OK(WriteFully(session->fd.get(), out.data(), out.size()));
    session->frames_shipped.fetch_add(frames, std::memory_order_relaxed);
    session->bytes_shipped.fetch_add(out.size(), std::memory_order_relaxed);
    session->m_frames->Add(frames);
    session->m_bytes->Add(out.size());
    if (session->stamps.size() > options_.max_unacked_frames) {
      return Status::Unavailable("follower '" + session->name +
                                 "' stopped acking; dropping the session");
    }
  }
  // Drain acks without blocking (the subscription poll above paces us).
  while (true) {
    wire::Ack ack;
    NEPAL_ASSIGN_OR_RETURN(
        bool acked,
        wire::ReadAck(session->fd.get(), &ack, std::chrono::milliseconds(0)));
    if (!acked) break;
    ProcessAck(session, ack.applied_records, ack.staleness_ms,
               WallClockMicros());
  }
  return Status::OK();
}

void ReplicationListener::ProcessAck(Session* session, uint64_t applied_frames,
                                     uint32_t staleness_ms, int64_t now_us) {
  // Translate "I applied my Nth session frame" into primary commit-token
  // units via the stamps recorded at ship time. Catch-up frames carry no
  // stamp, so coverage only moves once the follower reaches live traffic —
  // conservative, never early.
  uint64_t coverage = 0;
  while (!session->stamps.empty() &&
         session->stamps.front().first <= applied_frames) {
    coverage = session->stamps.front().second;
    session->stamps.pop_front();
  }
  if (coverage != 0) {
    session->acked_records.store(coverage, std::memory_order_relaxed);
    store_.ReportAck(session->ack_id, coverage);
    session->g_acked->Set(static_cast<int64_t>(coverage));
    const uint64_t appended = store_.records_appended();
    session->g_lag->Set(
        appended > coverage ? static_cast<int64_t>(appended - coverage) : 0);
  }
  session->staleness_ms.store(staleness_ms, std::memory_order_relaxed);
  session->g_staleness->Set(staleness_ms);
  session->last_ack_us.store(now_us, std::memory_order_relaxed);
  session->m_acks->Add(1);
}

std::vector<ReplicationListener::FollowerInfo>
ReplicationListener::Followers() const {
  std::vector<FollowerInfo> out;
  const uint64_t appended = store_.records_appended();
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& session : sessions_) {
    if (!session->named.load(std::memory_order_acquire)) {
      continue;  // handshake still in flight
    }
    FollowerInfo info;
    info.name = session->name;
    info.connected = !session->done.load(std::memory_order_acquire);
    info.resumed = session->resumed;
    info.frames_shipped =
        session->frames_shipped.load(std::memory_order_relaxed);
    info.bytes_shipped = session->bytes_shipped.load(std::memory_order_relaxed);
    info.acked_records = session->acked_records.load(std::memory_order_relaxed);
    info.lag_records =
        appended > info.acked_records ? appended - info.acked_records : 0;
    info.staleness_ms = session->staleness_ms.load(std::memory_order_relaxed);
    info.last_ack_us = session->last_ack_us.load(std::memory_order_relaxed);
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace nepal::replication
