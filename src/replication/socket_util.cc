#include "replication/socket_util.h"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace nepal::replication {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd, bool nonblocking) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  if (nonblocking) {
    flags |= O_NONBLOCK;
  } else {
    flags &= ~O_NONBLOCK;
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) return Errno("fcntl(F_SETFL)");
  return Status::OK();
}

Result<struct sockaddr_un> UnixSockaddr(const std::string& path) {
  struct sockaddr_un sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  if (path.size() >= sizeof(sa.sun_path)) {
    return Status::InvalidArgument("unix socket path too long (" +
                                   std::to_string(path.size()) + " bytes): " +
                                   path);
  }
  std::memcpy(sa.sun_path, path.data(), path.size());
  return sa;
}

}  // namespace

void OwnedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

std::string SocketAddress::ToString() const {
  if (is_unix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Result<SocketAddress> ParseSocketAddress(const std::string& spec) {
  SocketAddress addr;
  if (spec.rfind("unix:", 0) == 0) {
    addr.is_unix = true;
    addr.path = spec.substr(5);
    if (addr.path.empty()) {
      return Status::InvalidArgument("unix socket address without a path: " +
                                     spec);
    }
    return addr;
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument(
          "tcp address must be tcp:<host>:<port>: " + spec);
    }
    addr.host = rest.substr(0, colon);
    addr.port = std::atoi(rest.c_str() + colon + 1);
    if (addr.port <= 0 || addr.port > 65535) {
      return Status::InvalidArgument("bad tcp port in address: " + spec);
    }
    return addr;
  }
  return Status::InvalidArgument(
      "not a socket address (expected unix:<path> or tcp:<host>:<port>): " +
      spec);
}

bool LooksLikeSocketAddress(const std::string& spec) {
  return spec.rfind("unix:", 0) == 0 || spec.rfind("tcp:", 0) == 0;
}

void IgnoreSigPipe() {
  // Once per process is enough, but calling signal() repeatedly is cheap
  // and keeps every entry point self-sufficient.
  ::signal(SIGPIPE, SIG_IGN);
}

Result<OwnedFd> ListenOn(const SocketAddress& address, int backlog) {
  IgnoreSigPipe();
  if (address.is_unix) {
    NEPAL_ASSIGN_OR_RETURN(struct sockaddr_un sa,
                           UnixSockaddr(address.path));
    // A stale socket file from a previous run would make bind fail; only
    // actual sockets are removed, never a regular file at the same path.
    struct stat st;
    if (::lstat(address.path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) {
      ::unlink(address.path.c_str());
    }
    OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) return Errno("socket(AF_UNIX)");
    if (::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&sa),
               sizeof(sa)) < 0) {
      return Errno("bind " + address.ToString());
    }
    if (::listen(fd.get(), backlog) < 0) {
      return Errno("listen " + address.ToString());
    }
    return fd;
  }
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const std::string port = std::to_string(address.port);
  int rc = ::getaddrinfo(address.host.empty() ? nullptr : address.host.c_str(),
                         port.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("resolve " + address.ToString() + ": " +
                           ::gai_strerror(rc));
  }
  Status last = Status::IoError("no usable address for " + address.ToString());
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    OwnedFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Errno("socket");
      continue;
    }
    int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd.get(), ai->ai_addr, ai->ai_addrlen) < 0) {
      last = Errno("bind " + address.ToString());
      continue;
    }
    if (::listen(fd.get(), backlog) < 0) {
      last = Errno("listen " + address.ToString());
      continue;
    }
    ::freeaddrinfo(res);
    return fd;
  }
  ::freeaddrinfo(res);
  return last;
}

Result<OwnedFd> AcceptOn(int listen_fd, std::chrono::milliseconds timeout) {
  struct pollfd pfd;
  pfd.fd = listen_fd;
  pfd.events = POLLIN;
  int r = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (r < 0) {
    if (errno == EINTR) return OwnedFd();
    return Errno("poll listen socket");
  }
  if (r == 0) return OwnedFd();  // timeout
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      return OwnedFd();  // transient; the accept loop just polls again
    }
    return Errno("accept");
  }
  return OwnedFd(fd);
}

namespace {

/// Finishes a nonblocking connect: poll for writability within the
/// deadline, then check SO_ERROR.
Status FinishConnect(int fd, std::chrono::milliseconds deadline,
                     const std::string& where) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLOUT;
  int r = ::poll(&pfd, 1, static_cast<int>(deadline.count()));
  if (r < 0) return Errno("poll connect " + where);
  if (r == 0) {
    return Status::Unavailable("connect " + where + " timed out");
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    return Errno("getsockopt(SO_ERROR) " + where);
  }
  if (err != 0) {
    return Status::Unavailable("connect " + where + ": " +
                               std::strerror(err));
  }
  return Status::OK();
}

}  // namespace

Result<OwnedFd> ConnectWithDeadline(const SocketAddress& address,
                                    std::chrono::milliseconds deadline) {
  IgnoreSigPipe();
  if (address.is_unix) {
    NEPAL_ASSIGN_OR_RETURN(struct sockaddr_un sa,
                           UnixSockaddr(address.path));
    OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) return Errno("socket(AF_UNIX)");
    NEPAL_RETURN_NOT_OK(SetNonBlocking(fd.get(), true));
    if (::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&sa),
                  sizeof(sa)) < 0) {
      if (errno != EINPROGRESS && errno != EAGAIN) {
        return Status::Unavailable("connect " + address.ToString() + ": " +
                                   std::strerror(errno));
      }
      NEPAL_RETURN_NOT_OK(
          FinishConnect(fd.get(), deadline, address.ToString()));
    }
    NEPAL_RETURN_NOT_OK(SetNonBlocking(fd.get(), false));
    return fd;
  }
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port = std::to_string(address.port);
  int rc = ::getaddrinfo(address.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::IoError("resolve " + address.ToString() + ": " +
                           ::gai_strerror(rc));
  }
  Status last =
      Status::Unavailable("no usable address for " + address.ToString());
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    OwnedFd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last = Errno("socket");
      continue;
    }
    Status st = SetNonBlocking(fd.get(), true);
    if (st.ok() && ::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) < 0) {
      if (errno == EINPROGRESS || errno == EAGAIN) {
        st = FinishConnect(fd.get(), deadline, address.ToString());
      } else {
        st = Status::Unavailable("connect " + address.ToString() + ": " +
                                 std::strerror(errno));
      }
    }
    if (st.ok()) st = SetNonBlocking(fd.get(), false);
    if (st.ok()) {
      int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      ::freeaddrinfo(res);
      return fd;
    }
    last = st;
  }
  ::freeaddrinfo(res);
  return last;
}

Status ReadFully(int fd, char* buf, size_t n, bool eof_is_close) {
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::read(fd, buf + done, n - done);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET || errno == EPIPE || errno == ETIMEDOUT) {
        // The peer died or the connection dropped: retryable — the next
        // session re-ships from the acknowledged position.
        return Status::Unavailable(
            std::string("peer closed the replication stream: ") +
            std::strerror(errno));
      }
      return Status::IoError(std::string("read replication stream: ") +
                             std::strerror(errno));
    }
    if (r == 0) {
      if (eof_is_close && done == 0) {
        return Status::Unavailable("peer closed the replication stream");
      }
      // EOF mid-object: the peer went down mid-write. Nothing partial was
      // applied (frames apply only once fully read and CRC-checked), so
      // this too is a disconnect to recover from, not corruption.
      return Status::Unavailable(
          "replication stream ended mid-object (EOF after " +
          std::to_string(done) + " of " + std::to_string(n) + " bytes)");
    }
    done += static_cast<size_t>(r);
  }
  return Status::OK();
}

Status WriteFully(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable(
            std::string("peer closed the replication stream: ") +
            std::strerror(errno));
      }
      return Status::IoError(std::string("write replication stream: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}

void ShutdownSocket(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Result<SocketAddress> LocalAddress(int fd) {
  struct sockaddr_storage ss;
  socklen_t len = sizeof(ss);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&ss), &len) < 0) {
    return Errno("getsockname");
  }
  SocketAddress addr;
  if (ss.ss_family == AF_UNIX) {
    const auto* sa = reinterpret_cast<const struct sockaddr_un*>(&ss);
    addr.is_unix = true;
    addr.path = sa->sun_path;
    return addr;
  }
  char host[NI_MAXHOST];
  char serv[NI_MAXSERV];
  int rc = ::getnameinfo(reinterpret_cast<struct sockaddr*>(&ss), len, host,
                         sizeof(host), serv, sizeof(serv),
                         NI_NUMERICHOST | NI_NUMERICSERV);
  if (rc != 0) {
    return Status::IoError(std::string("getnameinfo: ") + ::gai_strerror(rc));
  }
  addr.host = host;
  addr.port = std::atoi(serv);
  return addr;
}

Result<bool> PollReadable(int fd, std::chrono::milliseconds timeout) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  int r = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
  if (r < 0) {
    if (errno == EINTR) return false;
    return Status::IoError(std::string("poll replication stream: ") +
                           std::strerror(errno));
  }
  return r > 0;
}

}  // namespace nepal::replication
