// Socket and descriptor lifecycle shared by every replication wire path:
// the listener, its per-follower shipper sessions, FdTransport, and the
// shell's --ship/--follow modes. One place owns descriptor cleanup,
// SIGPIPE suppression, address parsing, nonblocking connect deadlines and
// the exact-count read/write loops — instead of each call site
// re-implementing (and subtly diverging on) errno handling.
//
// Address syntax:
//   unix:<path>          stream socket bound to a filesystem path
//   tcp:<host>:<port>    TCP socket (host resolved via getaddrinfo)
//
// Anything else — e.g. a bare FIFO path — is not a socket address; the
// shell keeps its legacy FIFO shipping for those.

#ifndef NEPAL_REPLICATION_SOCKET_UTIL_H_
#define NEPAL_REPLICATION_SOCKET_UTIL_H_

#include <chrono>
#include <string>
#include <utility>

#include "common/status.h"

namespace nepal::replication {

/// Owns one file descriptor; closes it on destruction. Move-only.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) : fd_(fd) {}
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.release()) {}
  OwnedFd& operator=(OwnedFd&& other) noexcept {
    if (this != &other) reset(other.release());
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  ~OwnedFd() { reset(); }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  /// Relinquishes ownership without closing.
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  /// Closes the current descriptor (if any) and adopts `fd`.
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// A parsed listen/connect endpoint.
struct SocketAddress {
  bool is_unix = false;
  std::string path;  // unix
  std::string host;  // tcp
  int port = 0;      // tcp

  std::string ToString() const;
};

/// Parses "unix:<path>" / "tcp:<host>:<port>"; kInvalidArgument otherwise.
Result<SocketAddress> ParseSocketAddress(const std::string& spec);

/// True when `spec` uses one of the socket address schemes above (the
/// shell uses this to distinguish socket shipping from legacy FIFO paths).
bool LooksLikeSocketAddress(const std::string& spec);

/// Process-wide SIGPIPE suppression: a peer that disappears mid-write must
/// surface as EPIPE from the write loop, never kill the process.
/// Idempotent; every socket entry point calls it.
void IgnoreSigPipe();

/// Binds and listens. For unix addresses a stale socket file at the path
/// is removed first.
Result<OwnedFd> ListenOn(const SocketAddress& address, int backlog = 16);

/// Waits up to `timeout` for an inbound connection. Returns an invalid fd
/// (with OK status) on timeout so accept loops can poll their stop flag.
Result<OwnedFd> AcceptOn(int listen_fd, std::chrono::milliseconds timeout);

/// Nonblocking connect bounded by `deadline`, then back to blocking mode.
/// kUnavailable when the peer cannot be reached in time (reconnect loops
/// retry on that); other errors are address/setup problems.
Result<OwnedFd> ConnectWithDeadline(const SocketAddress& address,
                                    std::chrono::milliseconds deadline);

/// Blocking read of exactly `n` bytes. kUnavailable on clean EOF before
/// the first byte when `eof_is_close` (peer closed at an object boundary);
/// Corruption on EOF mid-object; IoError otherwise.
Status ReadFully(int fd, char* buf, size_t n, bool eof_is_close);

/// Blocking write of exactly `n` bytes; EPIPE surfaces as kUnavailable
/// (peer gone — the caller drops the session, nothing is corrupt).
Status WriteFully(int fd, const char* data, size_t n);

/// Waits for readability: true = data (or EOF) pending, false = timeout.
Result<bool> PollReadable(int fd, std::chrono::milliseconds timeout);

/// shutdown(SHUT_RDWR): wakes a thread blocked reading or writing `fd`
/// (it observes EOF / EPIPE) without closing the descriptor, so the owner
/// can still join that thread and close exactly once. No-op on fd < 0.
void ShutdownSocket(int fd);

/// The locally bound address of a listening socket — resolves the actual
/// port after binding "tcp:<host>:0" (tests and ephemeral listeners).
Result<SocketAddress> LocalAddress(int fd);

}  // namespace nepal::replication

#endif  // NEPAL_REPLICATION_SOCKET_UTIL_H_
