#include "replication/wire.h"

#include <cstring>

#include "common/binary.h"
#include "persist/crc32c.h"
#include "replication/socket_util.h"

namespace nepal::replication::wire {

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

void AppendHelloV1(const HelloV1& hello, std::string* out) {
  out->append(kMagicV1, sizeof(kMagicV1));
  PutFixed64(out, hello.start_seq);
  PutFixed64(out, hello.checkpoint_image.size());
  *out += hello.checkpoint_image;
  PutFixed32(out, persist::MaskCrc(persist::Crc32c(
                      hello.checkpoint_image.data(),
                      hello.checkpoint_image.size())));
}

void AppendFollowerHello(const FollowerHello& hello, std::string* out) {
  out->append(kMagicV2, sizeof(kMagicV2));
  PutFixed32(out, static_cast<uint32_t>(hello.name.size()));
  *out += hello.name;
  PutFixed64(out, hello.resume_seq);
  PutFixed64(out, hello.resume_skip_records);
}

void AppendFrame(const persist::WalShipFrame& frame, std::string* out) {
  const bool traced = frame.trace_id != 0;
  out->reserve(out->size() + 1 + 8 + 8 + 8 + 4 + 4 + 4 +
               frame.payload.size());
  PutFixed8(out, traced ? kFrameTagTraced : kFrameTag);
  PutFixed64(out, frame.segment_seq);
  PutFixed64(out, static_cast<uint64_t>(frame.shipped_at_us));
  if (traced) {
    PutFixed64(out, frame.trace_id);
    PutFixed32(out, frame.root_span);
  }
  PutFixed32(out, static_cast<uint32_t>(frame.payload.size()));
  PutFixed32(out, persist::MaskCrc(persist::Crc32c(frame.payload.data(),
                                                   frame.payload.size())));
  *out += frame.payload;
}

void AppendAck(const Ack& ack, std::string* out) {
  PutFixed8(out, kAckTag);
  PutFixed64(out, ack.applied_records);
  PutFixed64(out, ack.position_seq);
  PutFixed64(out, ack.position_records);
  PutFixed64(out, static_cast<uint64_t>(ack.applied_at_us));
  PutFixed32(out, ack.staleness_ms);
}

Status ReadHelloV1(int fd, HelloV1* out) {
  char header[8 + 8 + 8];
  NEPAL_RETURN_NOT_OK(ReadFully(fd, header, sizeof(header),
                                /*eof_is_close=*/true));
  if (std::memcmp(header, kMagicV1, sizeof(kMagicV1)) != 0) {
    return Status::Corruption("bad replication stream magic");
  }
  out->start_seq = ReadU64(header + 8);
  const uint64_t image_len = ReadU64(header + 16);
  if (image_len > kMaxWireObjectBytes) {
    return Status::Corruption("implausible checkpoint image length " +
                              std::to_string(image_len));
  }
  out->checkpoint_image.resize(image_len);
  NEPAL_RETURN_NOT_OK(ReadFully(fd, out->checkpoint_image.data(), image_len,
                                /*eof_is_close=*/false));
  char crc_buf[4];
  NEPAL_RETURN_NOT_OK(ReadFully(fd, crc_buf, sizeof(crc_buf),
                                /*eof_is_close=*/false));
  const uint32_t expected = persist::UnmaskCrc(ReadU32(crc_buf));
  const uint32_t actual = persist::Crc32c(out->checkpoint_image.data(),
                                          out->checkpoint_image.size());
  if (expected != actual) {
    return Status::Corruption("checkpoint image crc mismatch on the wire");
  }
  return Status::OK();
}

Status ReadFollowerHello(int fd, FollowerHello* out) {
  char header[8 + 4];
  NEPAL_RETURN_NOT_OK(ReadFully(fd, header, sizeof(header),
                                /*eof_is_close=*/true));
  if (std::memcmp(header, kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::Corruption(
        "bad follower hello magic (follower speaks a different protocol "
        "version)");
  }
  const uint32_t name_len = ReadU32(header + 8);
  if (name_len > 4096) {
    return Status::Corruption("implausible follower name length " +
                              std::to_string(name_len));
  }
  out->name.resize(name_len);
  NEPAL_RETURN_NOT_OK(ReadFully(fd, out->name.data(), name_len,
                                /*eof_is_close=*/false));
  char pos[8 + 8];
  NEPAL_RETURN_NOT_OK(ReadFully(fd, pos, sizeof(pos),
                                /*eof_is_close=*/false));
  out->resume_seq = ReadU64(pos);
  out->resume_skip_records = ReadU64(pos + 8);
  return Status::OK();
}

Result<bool> ReadFrame(int fd, persist::WalShipFrame* frame,
                       std::chrono::milliseconds timeout) {
  NEPAL_ASSIGN_OR_RETURN(bool readable, PollReadable(fd, timeout));
  if (!readable) return false;  // timeout, no data yet
  // Data (or EOF) is ready; the tag byte classifies it and selects the
  // header layout (0x02 plain, 0x03 trace-annotated).
  char tag_byte;
  NEPAL_RETURN_NOT_OK(ReadFully(fd, &tag_byte, 1, /*eof_is_close=*/true));
  const uint8_t tag = static_cast<uint8_t>(tag_byte);
  if (tag != kFrameTag && tag != kFrameTagTraced) {
    return Status::Corruption("unknown replication frame tag " +
                              std::to_string(tag));
  }
  char header[8 + 8 + 8 + 4 + 4 + 4];
  const size_t header_len =
      tag == kFrameTagTraced ? 8 + 8 + 8 + 4 + 4 + 4 : 8 + 8 + 4 + 4;
  NEPAL_RETURN_NOT_OK(ReadFully(fd, header, header_len,
                                /*eof_is_close=*/false));
  const char* p = header;
  frame->segment_seq = ReadU64(p);
  p += 8;
  frame->shipped_at_us = static_cast<int64_t>(ReadU64(p));
  p += 8;
  if (tag == kFrameTagTraced) {
    frame->trace_id = ReadU64(p);
    p += 8;
    frame->root_span = ReadU32(p);
    p += 4;
  } else {
    frame->trace_id = 0;
    frame->root_span = 0;
  }
  const uint32_t len = ReadU32(p);
  p += 4;
  const uint32_t masked_crc = ReadU32(p);
  if (len > kMaxWireObjectBytes) {
    return Status::Corruption("implausible replication frame length " +
                              std::to_string(len));
  }
  frame->payload.resize(len);
  NEPAL_RETURN_NOT_OK(ReadFully(fd, frame->payload.data(), len,
                                /*eof_is_close=*/false));
  if (persist::UnmaskCrc(masked_crc) !=
      persist::Crc32c(frame->payload.data(), frame->payload.size())) {
    return Status::Corruption("replication frame crc mismatch on the wire");
  }
  return true;
}

Result<bool> ReadAck(int fd, Ack* out, std::chrono::milliseconds timeout) {
  NEPAL_ASSIGN_OR_RETURN(bool readable, PollReadable(fd, timeout));
  if (!readable) return false;
  char tag_byte;
  NEPAL_RETURN_NOT_OK(ReadFully(fd, &tag_byte, 1, /*eof_is_close=*/true));
  if (static_cast<uint8_t>(tag_byte) != kAckTag) {
    return Status::Corruption("unknown ack channel tag " +
                              std::to_string(tag_byte));
  }
  char body[8 + 8 + 8 + 8 + 4];
  NEPAL_RETURN_NOT_OK(ReadFully(fd, body, sizeof(body),
                                /*eof_is_close=*/false));
  out->applied_records = ReadU64(body);
  out->position_seq = ReadU64(body + 8);
  out->position_records = ReadU64(body + 16);
  out->applied_at_us = static_cast<int64_t>(ReadU64(body + 24));
  out->staleness_ms = ReadU32(body + 32);
  return true;
}

}  // namespace nepal::replication::wire
