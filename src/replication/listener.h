// ReplicationListener: the primary side of the replication fleet.
//
// Where WalShipper pumps ONE pre-connected descriptor, the listener binds
// a socket address (unix:<path> or tcp:<host>:<port>) and serves any
// number of concurrent followers, each on its own session thread:
//
//   1. The follower opens with an NPLSHP02 hello carrying its name and
//      last applied position (segment, records-within-segment).
//   2. The session subscribes to the store at that position. If the WAL
//      retention still covers it, the primary answers "resume" and streams
//      only the missing tail — no checkpoint image re-ship. If the
//      segment was pruned (or the position is implausible), it answers
//      "bootstrap" with a full v1 hello block instead.
//   3. Frames then flow exactly as on the v1 wire; the follower sends an
//      ack (tag 0x04) after every batch it applies.
//
// Acks close the loop for semi-sync commit: each session registers itself
// as an ack source on the store (DurableStore::SetSemiSync /
// WaitCommitted) and converts the follower's session-relative ack counts
// into primary commit-token units via the per-frame `primary_records`
// stamp. They also feed the per-follower gauges
// (`nepal.replication.follower.<name>.*`) the shell's `\replication`
// table and the read router's lag accounting read.
//
// A session ends when its follower disconnects (clean EOF or error) or
// stops acking for too long; the follower is expected to reconnect and
// resume. Stop() shuts down the accept loop and every live session.

#ifndef NEPAL_REPLICATION_LISTENER_H_
#define NEPAL_REPLICATION_LISTENER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/status.h"
#include "persist/drain_thread.h"
#include "persist/durable_store.h"
#include "replication/socket_util.h"

namespace nepal::obs {
class Counter;
class Gauge;
}  // namespace nepal::obs

namespace nepal::replication {

struct ListenerOptions {
  /// Base subscription options for every session (buffer bound); the
  /// resume fields are filled per session from the follower's hello.
  persist::SubscribeOptions subscribe;
  /// Accept-loop poll interval (stop-flag latency).
  int accept_poll_ms = 100;
  /// One subscription poll per session iteration; also bounds how stale a
  /// pending ack can get before the session notices it.
  int frame_poll_ms = 20;
  /// Frames drained per iteration before acks are serviced.
  size_t max_batch_frames = 256;
  /// A follower that has this many shipped-but-unacked live frames is
  /// considered broken and disconnected (it would otherwise grow the
  /// session's ack-translation log without bound).
  size_t max_unacked_frames = 1u << 20;
};

class ReplicationListener {
 public:
  /// Binds `address` and starts accepting followers.
  static Result<std::unique_ptr<ReplicationListener>> Start(
      persist::DurableStore& store, const SocketAddress& address,
      ListenerOptions options = {});

  ~ReplicationListener();

  /// Stops the accept loop and tears down every live session. Idempotent.
  void Stop();

  /// The bound address — for "tcp:<host>:0" this carries the real port.
  const SocketAddress& address() const { return address_; }

  struct FollowerInfo {
    std::string name;
    bool connected = false;
    bool resumed = false;  // this session resumed (vs full bootstrap)
    uint64_t frames_shipped = 0;
    uint64_t bytes_shipped = 0;
    /// Ack coverage in primary commit-token units (records_appended()).
    uint64_t acked_records = 0;
    /// records_appended() - acked_records at snapshot time.
    uint64_t lag_records = 0;
    /// The follower's own staleness estimate, echoed from its last ack.
    uint32_t staleness_ms = 0;
    int64_t last_ack_us = 0;
  };
  /// One row per session, connected first; disconnected sessions linger
  /// until reaped by the accept loop.
  std::vector<FollowerInfo> Followers() const;

  uint64_t sessions_accepted() const {
    return sessions_accepted_.load(std::memory_order_relaxed);
  }
  /// Sessions that resumed from retained WAL (no image re-ship).
  uint64_t resumes() const {
    return resumes_.load(std::memory_order_relaxed);
  }
  /// Sessions that shipped a full bootstrap image (fresh follower, pruned
  /// resume position, or implausible hello).
  uint64_t bootstraps() const {
    return bootstraps_.load(std::memory_order_relaxed);
  }

 private:
  struct Session {
    OwnedFd fd;
    std::string name;
    bool resumed = false;
    std::shared_ptr<persist::WalSubscription> sub;
    /// Raw view of `sub` for cross-thread Cancel() from Stop(): the
    /// session thread assigns `sub` mid-handshake without sessions_mu_, so
    /// other threads reach the subscription only through this atomic.
    std::atomic<persist::WalSubscription*> sub_raw{nullptr};
    uint64_t ack_id = 0;  // RegisterAckSource handle; 0 = not registered
    /// Release-published once `name`/`resumed` are final (handshake done);
    /// Followers() reads them only after observing it.
    std::atomic<bool> named{false};
    std::atomic<bool> done{false};
    std::atomic<uint64_t> frames_shipped{0};
    std::atomic<uint64_t> bytes_shipped{0};
    std::atomic<uint64_t> acked_records{0};  // primary record units
    std::atomic<uint32_t> staleness_ms{0};
    std::atomic<int64_t> last_ack_us{0};
    /// (session frame index, primary_records stamp) for live frames, in
    /// ship order; popped as acks arrive. Session thread only.
    std::deque<std::pair<uint64_t, uint64_t>> stamps;
    uint64_t session_frames = 0;  // frames shipped this session
    // Cached per-follower metric cells (nepal.replication.follower.<name>.*),
    // resolved once after the handshake names the session.
    obs::Counter* m_frames = nullptr;
    obs::Counter* m_bytes = nullptr;
    obs::Counter* m_acks = nullptr;
    obs::Gauge* g_connected = nullptr;
    obs::Gauge* g_acked = nullptr;
    obs::Gauge* g_lag = nullptr;
    obs::Gauge* g_staleness = nullptr;
    std::thread thread;
  };

  ReplicationListener(persist::DurableStore& store, SocketAddress address,
                      OwnedFd listen_fd, ListenerOptions options);

  void AcceptLoop(const std::atomic<bool>& stop);
  void RunSession(Session* session);
  /// Reads the follower hello, subscribes (resume or bootstrap) and writes
  /// the mode response. Fills session->name/resumed/sub.
  Status HandshakeSession(Session* session);
  /// Ships buffered frames (bounded batch) and drains pending acks once.
  Status PumpSession(Session* session);
  void ProcessAck(Session* session, uint64_t applied_frames,
                  uint32_t staleness_ms, int64_t now_us);
  void ReapDoneSessionsLocked();

  persist::DurableStore& store_;
  SocketAddress address_;
  OwnedFd listen_fd_;
  ListenerOptions options_;
  std::atomic<bool> stopping_{false};
  std::atomic<uint64_t> sessions_accepted_{0};
  std::atomic<uint64_t> resumes_{0};
  std::atomic<uint64_t> bootstraps_{0};
  mutable std::mutex sessions_mu_;
  std::vector<std::unique_ptr<Session>> sessions_;
  persist::DrainThread accept_;
};

}  // namespace nepal::replication

#endif  // NEPAL_REPLICATION_LISTENER_H_
