// The NPLSHP replication wire codec, shared by every party that speaks it:
// WalShipper/FdTransport (v1, fd pipes), ReplicationListener (primary side
// of the socket fleet) and ReplicaStore's connected mode (follower side).
//
// v1 stream (one direction, primary → follower):
//
//   hello:  "NPLSHP01" | u64 start_seq | u64 image_len
//           | image bytes | u32 masked_crc(image)
//   frame:  u8 0x02 | u64 segment_seq | i64 shipped_at_us
//           | u32 payload_len | u32 masked_crc(payload) | payload bytes
//   traced: u8 0x03 | u64 segment_seq | i64 shipped_at_us
//           | u64 trace_id | u32 root_span
//           | u32 payload_len | u32 masked_crc(payload) | payload bytes
//
// v2 handshake (socket fleet, full duplex). The follower opens with its
// identity and last applied position; the primary answers with the chosen
// mode, then streams v1 frames unchanged:
//
//   follower hello: "NPLSHP02" | u32 name_len | name bytes
//                   | u64 resume_seq | u64 resume_skip_records
//                   (resume_seq 0 = fresh follower, full bootstrap)
//   response: u8 mode — 0 (bootstrap): a v1 hello block follows,
//                       1 (resume):    u64 resume_seq echo follows
//   ack (follower → primary, after every applied batch):
//           u8 0x04 | u64 applied_records | u64 position_seq
//           | u64 position_records | i64 applied_at_us | u32 staleness_ms
//
// All integers little-endian; CRC32C masked as in the WAL.

#ifndef NEPAL_REPLICATION_WIRE_H_
#define NEPAL_REPLICATION_WIRE_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"
#include "persist/durable_store.h"

namespace nepal::replication::wire {

inline constexpr char kMagicV1[8] = {'N', 'P', 'L', 'S', 'H', 'P', '0', '1'};
inline constexpr char kMagicV2[8] = {'N', 'P', 'L', 'S', 'H', 'P', '0', '2'};
inline constexpr uint8_t kFrameTag = 0x02;
inline constexpr uint8_t kFrameTagTraced = 0x03;
inline constexpr uint8_t kAckTag = 0x04;
inline constexpr uint8_t kModeBootstrap = 0;
inline constexpr uint8_t kModeResume = 1;
/// Sanity bound on wire lengths; anything larger is stream corruption.
inline constexpr uint64_t kMaxWireObjectBytes = 1ull << 32;

uint64_t ReadU64(const char* p);
uint32_t ReadU32(const char* p);

/// The bootstrap half of a v1 stream.
struct HelloV1 {
  std::string checkpoint_image;
  uint64_t start_seq = 0;
};

/// The follower's opening message on a v2 connection.
struct FollowerHello {
  std::string name;
  uint64_t resume_seq = 0;           // 0 = fresh, ship the image
  uint64_t resume_skip_records = 0;  // applied records within resume_seq
};

/// One follower acknowledgement.
struct Ack {
  uint64_t applied_records = 0;   // frames applied on THIS connection
  uint64_t position_seq = 0;      // segment the follower is inside
  uint64_t position_records = 0;  // records applied within it
  int64_t applied_at_us = 0;      // follower wall clock at apply
  uint32_t staleness_ms = 0;      // follower's own staleness estimate
};

// ---- encode (append to *out) ----

void AppendHelloV1(const HelloV1& hello, std::string* out);
void AppendFollowerHello(const FollowerHello& hello, std::string* out);
void AppendFrame(const persist::WalShipFrame& frame, std::string* out);
void AppendAck(const Ack& ack, std::string* out);

// ---- decode (blocking reads from a descriptor) ----

/// Reads a v1 hello block. kUnavailable on clean EOF before the first
/// byte; Corruption on a bad magic, CRC mismatch or truncation.
Status ReadHelloV1(int fd, HelloV1* out);

/// Reads the follower's v2 opening message (listener side).
Status ReadFollowerHello(int fd, FollowerHello* out);

/// Waits up to `timeout` for a frame: true with a frame, false on timeout.
/// kUnavailable on clean EOF at a frame boundary.
Result<bool> ReadFrame(int fd, persist::WalShipFrame* frame,
                       std::chrono::milliseconds timeout);

/// Waits up to `timeout` for an ack: true with an ack, false on timeout.
/// kUnavailable on clean EOF at a frame boundary (follower went away).
Result<bool> ReadAck(int fd, Ack* out, std::chrono::milliseconds timeout);

}  // namespace nepal::replication::wire

#endif  // NEPAL_REPLICATION_WIRE_H_
