// ReplicaStore: a warm-standby follower built from a primary's log stream.
//
// Open() bootstraps a fresh directory from the transport's handshake
// (the primary's checkpoint image is written locally under the exact file
// name recovery expects, then DurableStore::Open restores it), flips the
// database read-only, and starts an apply thread that tails the stream:
// each shipped frame is decoded and replayed through the public GraphDb
// API (persist::ApplyWalRecord), which also re-logs it into the
// follower's *own* WAL. That one decision buys two properties:
//
//  - the follower is durable in its own right — it can crash, recover
//    from its own directory, and resume (or be promoted) without the
//    primary;
//  - promotion is trivial: stop applying, flip read-only off, cut a
//    checkpoint. The data directory is already a complete primary
//    directory.
//
// Because replay drives the public API, the follower reproduces uid
// assignment, the transaction clock, cascades and unique-index state
// identically to the primary — on either execution backend, independent
// of the primary's backend. Reads (Current/AsOf/Range via a QueryEngine
// over db()) are answered byte-identically to the primary as of the
// follower's applied position.
//
// Replication lag is exported to obs: nepal.replication.applied_records
// (counter), nepal.replication.lag_ms (gauge, last applied frame) and
// nepal.replication.apply_lag_ms (histogram).

#ifndef NEPAL_REPLICATION_REPLICA_STORE_H_
#define NEPAL_REPLICATION_REPLICA_STORE_H_

#include <atomic>
#include <memory>
#include <string>

#include "common/status.h"
#include "persist/drain_thread.h"
#include "persist/durable_store.h"
#include "replication/transport.h"

namespace nepal::replication {

struct ReplicaOptions {
  /// Durability of the follower's own directory (its re-logged WAL).
  persist::DurableOptions durable;
  /// How long one transport poll waits before rechecking for shutdown.
  int poll_interval_ms = 20;
};

class ReplicaStore {
 public:
  /// Bootstraps `dir` (which must not already hold Nepal data files) from
  /// the transport and starts tailing. The returned store's db() is
  /// immediately queryable at the bootstrap position.
  static Result<std::unique_ptr<ReplicaStore>> Open(
      std::string dir, schema::SchemaPtr schema,
      const persist::BackendFactory& factory,
      std::unique_ptr<ReplicationTransport> transport,
      ReplicaOptions options = {});

  ~ReplicaStore();

  storage::GraphDb& db() { return store_->db(); }
  const storage::GraphDb& db() const { return store_->db(); }
  persist::DurableStore& store() { return *store_; }

  /// Frames applied since Open (bootstrap image excluded). Compare with
  /// the primary's DurableStore::records_appended() to measure lag in
  /// records.
  uint64_t records_applied() const {
    return records_applied_.load(std::memory_order_acquire);
  }

  /// OK while the apply loop is running (or stopped by Promote);
  /// kUnavailable once the primary is gone; any other error means the
  /// stream or replay failed and the follower is frozen at its last good
  /// position.
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

  bool promoted() const {
    return promoted_.load(std::memory_order_acquire);
  }

  /// Decomposed timing of the most recent apply batch that carried a
  /// trace annotation — the follower half of commit-to-visible, keyed by
  /// the primary's trace id (`\replication` renders it; the same
  /// segments are attached as spans to the joined trace). All zero until
  /// a traced frame arrives.
  struct LastTracedApply {
    uint64_t trace_id = 0;  // the primary's trace id
    int64_t wire_us = 0;    // ship -> receive (wall clocks, clamped >= 0)
    uint64_t decode_us = 0;
    uint64_t apply_us = 0;
    uint64_t frames = 0;  // frames in the re-batched apply
  };
  LastTracedApply last_traced_apply() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_traced_;
  }

  /// Turns the follower into a writable primary: stops the apply loop,
  /// drains nothing further, flips read-only off and cuts a checkpoint so
  /// the promotion point is a clean segment boundary on disk. After this,
  /// db() accepts writes and store() can itself be subscribed to.
  Status Promote();

 private:
  ReplicaStore(std::unique_ptr<persist::DurableStore> store,
               std::unique_ptr<ReplicationTransport> transport,
               ReplicaOptions options);
  void Run(const std::atomic<bool>& stop);
  /// Joins the primary's trace (newest annotated frame in the batch wins)
  /// and publishes the wire/decode/apply decomposition.
  void RecordTracedApply(const std::vector<persist::WalShipFrame>& frames,
                         int64_t received_us, uint64_t decode_ns,
                         uint64_t apply_ns);

  std::unique_ptr<persist::DurableStore> store_;
  std::unique_ptr<ReplicationTransport> transport_;
  ReplicaOptions options_;
  std::atomic<bool> promoted_{false};
  std::atomic<uint64_t> records_applied_{0};
  mutable std::mutex mu_;
  Status status_;
  LastTracedApply last_traced_;
  /// Apply-loop lifecycle (flag → wake → join shutdown ordering). The
  /// transport's bounded poll doubles as the wake-up, so no explicit wake
  /// callback is needed here.
  persist::DrainThread drain_;
};

}  // namespace nepal::replication

#endif  // NEPAL_REPLICATION_REPLICA_STORE_H_
