// ReplicaStore: a warm-standby follower built from a primary's log stream.
//
// Open() bootstraps a fresh directory from a pre-connected transport's
// handshake (the primary's checkpoint image is written locally under the
// exact file name recovery expects, then DurableStore::Open restores it),
// flips the database read-only, and starts an apply thread that tails the
// stream: each shipped frame is decoded and replayed through the public
// GraphDb API (persist::ApplyWalRecord), which also re-logs it into the
// follower's *own* WAL. That one decision buys two properties:
//
//  - the follower is durable in its own right — it can crash, recover
//    from its own directory, and resume (or be promoted) without the
//    primary;
//  - promotion is trivial: stop applying, flip read-only off, cut a
//    checkpoint. The data directory is already a complete primary
//    directory.
//
// Connect() is the fleet mode: instead of a pre-connected transport it
// takes a socket address served by a ReplicationListener and owns the
// whole connection lifecycle —
//
//  - NPLSHP02 handshake carrying the follower's name and last applied
//    position; the primary answers "resume" (stream the missing tail, no
//    image re-ship) while WAL retention covers the position, "bootstrap"
//    otherwise;
//  - an ack after every applied batch, closing the loop for the
//    primary's semi-sync commit and lag accounting;
//  - a reconnect loop with exponential backoff when the stream breaks —
//    the follower rides out primary restarts and resumes where it left
//    off;
//  - re-bootstrap into a fresh generation directory (<dir>/reboot-N) when
//    resume is impossible; the previous generation's store is retired but
//    kept alive so queries racing the swap finish safely, and db()
//    atomically flips to the new generation.
//
// Because replay drives the public API, the follower reproduces uid
// assignment, the transaction clock, cascades and unique-index state
// identically to the primary — on either execution backend, independent
// of the primary's backend. Reads (Current/AsOf/Range via a QueryEngine
// over db()) are answered byte-identically to the primary as of the
// follower's applied position.
//
// ReplicaStore implements nql::ReplicaEndpoint, so it can be attached to
// a QueryEngine's SourceCatalog (AttachReplica) and serve routed reads
// under a bounded-staleness policy.
//
// Replication lag is exported to obs: nepal.replication.applied_records
// (counter), nepal.replication.lag_ms (gauge, last applied frame),
// nepal.replication.apply_lag_ms (histogram), and connection churn under
// nepal.replication.replica.{reconnects,resumes,rebootstraps}.

#ifndef NEPAL_REPLICATION_REPLICA_STORE_H_
#define NEPAL_REPLICATION_REPLICA_STORE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "nepal/source_catalog.h"
#include "persist/drain_thread.h"
#include "persist/durable_store.h"
#include "replication/socket_util.h"
#include "replication/transport.h"
#include "replication/wire.h"

namespace nepal::obs {
class Counter;
class Gauge;
class Histogram;
}  // namespace nepal::obs

namespace nepal::replication {

struct ReplicaOptions {
  /// Durability of the follower's own directory (its re-logged WAL).
  persist::DurableOptions durable;
  /// How long one transport poll waits before rechecking for shutdown.
  int poll_interval_ms = 20;
};

/// Options for the socket fleet mode (Connect).
struct ConnectOptions {
  ReplicaOptions replica;
  /// The follower's identity in the primary's hello/metrics/`\replication`.
  std::string name = "follower";
  /// Per-attempt connect deadline inside the reconnect loop.
  int connect_timeout_ms = 2000;
  /// Deadline for the initial, synchronous connect in Connect() — the
  /// primary may still be coming up.
  int initial_connect_timeout_ms = 10000;
  /// Exponential reconnect backoff bounds.
  int reconnect_initial_backoff_ms = 50;
  int reconnect_max_backoff_ms = 2000;
};

class ReplicaStore : public nql::ReplicaEndpoint {
 public:
  /// Bootstraps `dir` (which must not already hold Nepal data files) from
  /// the transport and starts tailing. The returned store's db() is
  /// immediately queryable at the bootstrap position. No reconnect: when
  /// the transport's stream ends, the replica freezes at its last applied
  /// position (status() says why).
  static Result<std::unique_ptr<ReplicaStore>> Open(
      std::string dir, schema::SchemaPtr schema,
      const persist::BackendFactory& factory,
      std::unique_ptr<ReplicationTransport> transport,
      ReplicaOptions options = {});

  /// Fleet mode: connects to a ReplicationListener at `address`,
  /// bootstraps `dir`, and keeps following across disconnects (resume
  /// within WAL retention, re-bootstrap beyond it).
  static Result<std::unique_ptr<ReplicaStore>> Connect(
      std::string dir, schema::SchemaPtr schema,
      const persist::BackendFactory& factory, const SocketAddress& address,
      ConnectOptions options = {});

  ~ReplicaStore() override;

  /// The current generation's database. Stable for the duration of any
  /// one read (retired generations outlive racing queries), but a
  /// re-bootstrap swaps which database new calls see.
  storage::GraphDb& db() {
    return *db_ptr_.load(std::memory_order_acquire);
  }
  const storage::GraphDb& db() const {
    return *db_ptr_.load(std::memory_order_acquire);
  }
  persist::DurableStore& store() {
    return *store_ptr_.load(std::memory_order_acquire);
  }

  /// Frames applied since Open/Connect (bootstrap images excluded).
  /// Compare with the primary's DurableStore::records_appended() to
  /// measure lag in records.
  uint64_t records_applied() const override {
    return records_applied_.load(std::memory_order_acquire);
  }

  /// OK while the apply loop is running (or stopped by Promote);
  /// kUnavailable while disconnected from the primary; any other error
  /// means replay failed and the follower is frozen at its last good
  /// position.
  Status status() const {
    std::lock_guard<std::mutex> lock(mu_);
    return status_;
  }

  bool promoted() const {
    return promoted_.load(std::memory_order_acquire);
  }

  // --- nql::ReplicaEndpoint ---
  storage::GraphDb& replica_db() override { return db(); }
  /// Milliseconds since the last applied batch or caught-up poll; grows
  /// while disconnected, so a bounded-staleness router naturally stops
  /// reading from a partitioned follower.
  uint32_t staleness_ms() const override;
  /// False once promoted or frozen on a replay error.
  bool serving() const override {
    return !promoted_.load(std::memory_order_acquire) &&
           !fatal_.load(std::memory_order_acquire);
  }

  /// Successful re-handshakes after the initial connection.
  uint64_t reconnects() const {
    return reconnects_.load(std::memory_order_relaxed);
  }
  /// Sessions that resumed from the retained WAL (no image re-ship).
  uint64_t resumes() const {
    return resumes_.load(std::memory_order_relaxed);
  }
  /// Sessions that re-shipped a full bootstrap image (initial bootstrap
  /// excluded).
  uint64_t rebootstraps() const {
    return rebootstraps_.load(std::memory_order_relaxed);
  }

  /// Points the follower at a different primary (e.g. a freshly promoted
  /// sibling) and breaks the current stream. The next session always
  /// re-bootstraps: the follower's applied position is meaningless against
  /// another primary's WAL. Connect mode only.
  Status Repoint(const SocketAddress& address);

  /// Decomposed timing of the most recent apply batch that carried a
  /// trace annotation — the follower half of commit-to-visible, keyed by
  /// the primary's trace id (`\replication` renders it; the same
  /// segments are attached as spans to the joined trace). All zero until
  /// a traced frame arrives.
  struct LastTracedApply {
    uint64_t trace_id = 0;  // the primary's trace id
    int64_t wire_us = 0;    // ship -> receive (wall clocks, clamped >= 0)
    uint64_t decode_us = 0;
    uint64_t apply_us = 0;
    uint64_t frames = 0;  // frames in the re-batched apply
  };
  LastTracedApply last_traced_apply() const {
    std::lock_guard<std::mutex> lock(mu_);
    return last_traced_;
  }

  /// Turns the follower into a writable primary: stops the apply loop,
  /// drains nothing further, flips read-only off and cuts a checkpoint so
  /// the promotion point is a clean segment boundary on disk. After this,
  /// db() accepts writes and store() can itself be subscribed to.
  Status Promote();

 private:
  ReplicaStore(std::unique_ptr<persist::DurableStore> store,
               std::unique_ptr<ReplicationTransport> transport,
               ReplicaOptions options);
  /// Opens (or re-opens) a generation directory from a bootstrap hello.
  static Result<std::unique_ptr<persist::DurableStore>> BootstrapGeneration(
      const std::string& dir, const schema::SchemaPtr& schema,
      const persist::BackendFactory& factory,
      const persist::DurableOptions& durable, const wire::HelloV1& hello);
  /// v1 transport tail loop (Open mode).
  void Run(const std::atomic<bool>& stop);
  /// Fleet connection lifecycle (Connect mode): handshake, apply, backoff.
  void ConnectLoop(const std::atomic<bool>& stop);
  /// Sends the follower hello for the current position and consumes the
  /// mode response — re-bootstrapping a new generation when told to.
  Status HandshakeFollower(int fd);
  /// Tails one connected session; returns when the stream breaks (the
  /// status says how) or `stop` is raised (OK).
  Status ApplyStream(const std::atomic<bool>& stop, int fd);
  /// Decodes and applies one re-batched frame group; updates counters,
  /// lag metrics and the traced-apply record. Shared by both modes.
  Status ApplyFrameBatch(storage::GraphDb& db,
                         const std::vector<persist::WalShipFrame>& frames);
  void TouchProgress();
  /// Joins the primary's trace (newest annotated frame in the batch wins)
  /// and publishes the wire/decode/apply decomposition.
  void RecordTracedApply(const std::vector<persist::WalShipFrame>& frames,
                         int64_t received_us, uint64_t decode_ns,
                         uint64_t apply_ns);

  /// Current generation; swapped only by the drain thread (handshake),
  /// read through the atomics below everywhere else.
  std::unique_ptr<persist::DurableStore> store_;
  /// Generations replaced by a re-bootstrap, kept alive for readers that
  /// raced the swap. Drain thread appends; destructor reaps.
  std::vector<std::unique_ptr<persist::DurableStore>> retired_;
  std::atomic<persist::DurableStore*> store_ptr_{nullptr};
  std::atomic<storage::GraphDb*> db_ptr_{nullptr};

  std::unique_ptr<ReplicationTransport> transport_;  // Open mode only
  ReplicaOptions options_;

  // Connect mode state.
  std::string dir_;
  schema::SchemaPtr schema_;
  persist::BackendFactory factory_;
  ConnectOptions connect_options_;
  SocketAddress address_;     // guarded by mu_ (Repoint)
  bool force_bootstrap_ = false;  // guarded by mu_
  OwnedFd pending_fd_;        // initial connection, consumed by ConnectLoop
  std::atomic<int> live_fd_{-1};  // the in-flight session's socket
  uint64_t generation_ = 1;   // drain thread (and Connect) only
  uint64_t pos_seq_ = 0;      // applied position: segment... (drain only)
  uint64_t pos_records_ = 0;  // ...and frames applied within it

  std::atomic<bool> promoted_{false};
  std::atomic<bool> fatal_{false};
  std::atomic<uint64_t> records_applied_{0};
  std::atomic<int64_t> last_progress_us_{0};
  std::atomic<uint64_t> reconnects_{0};
  std::atomic<uint64_t> resumes_{0};
  std::atomic<uint64_t> rebootstraps_{0};
  mutable std::mutex mu_;
  Status status_;
  LastTracedApply last_traced_;
  // Lag metric cells, resolved once at construction.
  obs::Counter* m_applied_ = nullptr;
  obs::Counter* m_skew_ = nullptr;
  obs::Gauge* g_lag_ = nullptr;
  obs::Histogram* h_lag_ = nullptr;
  /// Apply-loop lifecycle (flag → wake → join shutdown ordering). The
  /// bounded socket/transport polls double as the wake-up, so no explicit
  /// wake callback is needed here.
  persist::DrainThread drain_;
};

}  // namespace nepal::replication

#endif  // NEPAL_REPLICATION_REPLICA_STORE_H_
