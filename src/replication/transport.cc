#include "replication/transport.h"

#include "replication/wire.h"

namespace nepal::replication {

// ---- InProcessTransport ----

InProcessTransport::InProcessTransport(
    std::shared_ptr<persist::WalSubscription> subscription)
    : subscription_(std::move(subscription)) {}

InProcessTransport::~InProcessTransport() {
  if (subscription_ != nullptr) subscription_->Cancel();
}

Result<std::unique_ptr<InProcessTransport>> InProcessTransport::Connect(
    persist::DurableStore& primary, persist::SubscribeOptions options) {
  NEPAL_ASSIGN_OR_RETURN(std::shared_ptr<persist::WalSubscription> sub,
                         primary.Subscribe(options));
  return std::unique_ptr<InProcessTransport>(
      new InProcessTransport(std::move(sub)));
}

Result<ReplicationHello> InProcessTransport::Handshake() {
  ReplicationHello hello;
  hello.checkpoint_image = subscription_->checkpoint_image();
  hello.start_seq = subscription_->start_seq();
  return hello;
}

Result<bool> InProcessTransport::Next(persist::WalShipFrame* frame,
                                      std::chrono::milliseconds timeout) {
  return subscription_->Next(frame, timeout);
}

// ---- FdTransport ----

Result<ReplicationHello> FdTransport::Handshake() {
  wire::HelloV1 hello;
  NEPAL_RETURN_NOT_OK(wire::ReadHelloV1(fd_.get(), &hello));
  ReplicationHello out;
  out.checkpoint_image = std::move(hello.checkpoint_image);
  out.start_seq = hello.start_seq;
  return out;
}

Result<bool> FdTransport::Next(persist::WalShipFrame* frame,
                               std::chrono::milliseconds timeout) {
  return wire::ReadFrame(fd_.get(), frame, timeout);
}

// ---- WalShipper ----

WalShipper::WalShipper(std::shared_ptr<persist::WalSubscription> subscription,
                       int fd)
    : subscription_(std::move(subscription)), fd_(fd) {
  IgnoreSigPipe();
}

WalShipper::~WalShipper() { Stop(); }

Result<std::unique_ptr<WalShipper>> WalShipper::Start(
    persist::DurableStore& store, int fd, persist::SubscribeOptions options) {
  NEPAL_ASSIGN_OR_RETURN(std::shared_ptr<persist::WalSubscription> sub,
                         store.Subscribe(options));
  auto shipper =
      std::unique_ptr<WalShipper>(new WalShipper(std::move(sub), fd));
  shipper->thread_ = std::thread([s = shipper.get()] { s->Run(); });
  return shipper;
}

void WalShipper::Stop() {
  stop_.store(true, std::memory_order_release);
  subscription_->Cancel();  // wakes a Next() blocked inside the pump
  if (thread_.joinable()) thread_.join();
  fd_.reset();
}

void WalShipper::Run() {
  Status status;
  // Hello first: magic, start sequence, then the checkpoint image.
  {
    wire::HelloV1 hello;
    hello.checkpoint_image = subscription_->checkpoint_image();
    hello.start_seq = subscription_->start_seq();
    std::string out;
    wire::AppendHelloV1(hello, &out);
    status = WriteFully(fd_.get(), out.data(), out.size());
    bytes_shipped_.fetch_add(out.size(), std::memory_order_relaxed);
  }
  while (status.ok() && !stop_.load(std::memory_order_acquire)) {
    persist::WalShipFrame frame;
    Result<bool> got =
        subscription_->Next(&frame, std::chrono::milliseconds(100));
    if (!got.ok()) {
      status = got.status();
      break;
    }
    if (!*got) continue;  // timeout; poll again
    std::string out;
    wire::AppendFrame(frame, &out);
    status = WriteFully(fd_.get(), out.data(), out.size());
    if (status.ok()) {
      frames_shipped_.fetch_add(1, std::memory_order_relaxed);
      bytes_shipped_.fetch_add(out.size(), std::memory_order_relaxed);
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  status_ = status;
}

}  // namespace nepal::replication
